// Package lpp_test holds the benchmark harness that regenerates every
// table and figure of the paper's evaluation (one testing.B benchmark
// per artifact, run at test scale) plus ablation benchmarks for the
// design choices called out in DESIGN.md: the wavelet family, the
// partition penalty α, and the phase-marker policies.
//
// Full-size regeneration is the job of cmd/lppbench; these benchmarks
// exist so `go test -bench=.` exercises every experiment end to end
// and times the analysis pipeline itself.
package lpp_test

import (
	"io"
	"testing"

	"lpp/internal/bbv"
	"lpp/internal/core"
	"lpp/internal/experiments"
	"lpp/internal/phasedet"
	"lpp/internal/predictor"
	"lpp/internal/reuse"
	"lpp/internal/sampling"
	"lpp/internal/stats"
	"lpp/internal/trace"
	"lpp/internal/wavelet"
	"lpp/internal/workload"
)

func benchExperiment(b *testing.B, name string) {
	e, err := experiments.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	opts := experiments.Options{W: io.Discard, Quick: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per table of the paper.
func BenchmarkTable1Benchmarks(b *testing.B)       { benchExperiment(b, "table1") }
func BenchmarkTable2AccuracyCoverage(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable3PhaseSizes(b *testing.B)       { benchExperiment(b, "table3") }
func BenchmarkTable4LocalityStdDev(b *testing.B)   { benchExperiment(b, "table4") }
func BenchmarkTable5ArrayRegrouping(b *testing.B)  { benchExperiment(b, "table5") }
func BenchmarkTable6ManualMarkers(b *testing.B)    { benchExperiment(b, "table6") }

// One benchmark per figure of the paper.
func BenchmarkFig1ReuseTrace(b *testing.B)         { benchExperiment(b, "fig1") }
func BenchmarkFig2WaveletFiltering(b *testing.B)   { benchExperiment(b, "fig2") }
func BenchmarkFig3PhaseVsIntervalBBV(b *testing.B) { benchExperiment(b, "fig3") }
func BenchmarkFig4NoisyMachine(b *testing.B)       { benchExperiment(b, "fig4") }
func BenchmarkFig5GccVortex(b *testing.B)          { benchExperiment(b, "fig5") }
func BenchmarkFig6CacheResizing(b *testing.B)      { benchExperiment(b, "fig6") }

// BenchmarkPipelineDetect times the complete off-line analysis on a
// Tomcatv training run (sampling + wavelets + partitioning + markers +
// hierarchy).
func BenchmarkPipelineDetect(b *testing.B) {
	spec, _ := workload.ByName("tomcatv")
	p := workload.Params{N: 48, Steps: 6, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Detect(spec.Make(p), core.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelinePredict times the run-time side: markers, cache
// simulation, and the predictor over a reference run.
func BenchmarkPipelinePredict(b *testing.B) {
	spec, _ := workload.ByName("tomcatv")
	det, err := core.Detect(spec.Make(workload.Params{N: 48, Steps: 6, Seed: 1}), core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	ref := workload.Params{N: 96, Steps: 10, Seed: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Predict(spec.Make(ref), det, predictor.Strict)
	}
}

// Ablation: the wavelet family used for sub-trace filtering. The paper
// reports that families other than Daubechies-6 "produce a similar
// result"; this benchmark lets that be timed and verified.
func BenchmarkAblationWaveletFamily(b *testing.B) {
	spec, _ := workload.ByName("tomcatv")
	p := workload.Params{N: 48, Steps: 6, Seed: 1}
	rec := trace.NewRecorder(0, 0)
	spec.Make(p).Run(rec)
	res := sampling.RunTrace(rec.T.Accesses, sampling.Config{})
	for _, fam := range []wavelet.Family{wavelet.Haar, wavelet.Daubechies4, wavelet.Daubechies6} {
		fam := fam
		b.Run(fam.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.FilterSamples(res, fam, 4)
			}
		})
	}
}

// Ablation: the recurrence penalty α of optimal phase partitioning.
// The paper finds partitions stable for α in [0.2, 0.8].
func BenchmarkAblationAlpha(b *testing.B) {
	rng := stats.NewRNG(5)
	ids := make([]int, 4000)
	for i := range ids {
		ids[i] = rng.Intn(64)
	}
	for _, alpha := range []float64{0.2, 0.5, 0.8} {
		alpha := alpha
		b.Run(formatAlpha(alpha), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				phasedet.Partition(ids, phasedet.Config{Alpha: alpha, MaxSpan: 1000})
			}
		})
	}
}

func formatAlpha(a float64) string {
	switch a {
	case 0.2:
		return "alpha=0.2"
	case 0.5:
		return "alpha=0.5"
	default:
		return "alpha=0.8"
	}
}

// Ablation: strict versus relaxed prediction over the same run.
func BenchmarkAblationPolicy(b *testing.B) {
	spec, _ := workload.ByName("compress")
	det, err := core.Detect(spec.Make(workload.Params{N: 8192, Steps: 5, Seed: 1}), core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	ref := workload.Params{N: 16384, Steps: 8, Seed: 2}
	for _, pol := range []predictor.Policy{predictor.Strict, predictor.Relaxed} {
		pol := pol
		b.Run(pol.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.Predict(spec.Make(ref), det, pol)
			}
		})
	}
}

// Extension experiments (beyond the paper's evaluation).
func BenchmarkXEnergySavings(b *testing.B)       { benchExperiment(b, "xenergy") }
func BenchmarkXDVFSScaling(b *testing.B)         { benchExperiment(b, "xdvfs") }
func BenchmarkXSimPointEstimation(b *testing.B)  { benchExperiment(b, "xsimpoint") }
func BenchmarkXPredictorComparison(b *testing.B) { benchExperiment(b, "xpredictors") }

// Ablation: exact versus approximate reuse-distance analysis.
func BenchmarkAblationReuseAnalyzer(b *testing.B) {
	rng := stats.NewRNG(9)
	addrs := make([]trace.Addr, 1<<18)
	for i := range addrs {
		addrs[i] = trace.Addr(rng.Intn(1 << 16))
	}
	b.Run("exact", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a := reuse.NewAnalyzer()
			for _, addr := range addrs {
				a.Access(addr)
			}
		}
	})
	b.Run("approx", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a := reuse.NewApproxAnalyzer(0.05)
			for _, addr := range addrs {
				a.Access(addr)
			}
		}
	})
}

// Ablation: BBV clustering algorithm.
func BenchmarkAblationClustering(b *testing.B) {
	spec, _ := workload.ByName("tomcatv")
	col := bbv.NewCollector(10_000, 7)
	spec.Make(workload.Params{N: 48, Steps: 8, Seed: 1}).Run(col)
	ivs := col.Intervals()
	b.Run("leader-follower", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bbv.Cluster(ivs, bbv.DefaultThreshold)
		}
	})
	b.Run("kmeans", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bbv.KMeans(ivs, 8, 42)
		}
	})
}
