module lpp

go 1.22
