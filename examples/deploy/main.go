// Deploy: the full production workflow — profile once, save the
// run-time artifact, load it in a "deployed" process, and predict with
// the policy that matches the program: exact prediction for consistent
// programs, distribution prediction for input-dependent ones.
//
//	go run ./examples/deploy
package main

import (
	"bytes"
	"fmt"
	"log"

	"lpp/internal/core"
	"lpp/internal/predictor"
	"lpp/internal/workload"
)

func main() {
	for _, name := range []string{"swim", "gcc"} {
		spec, err := workload.ByName(name)
		if err != nil {
			log.Fatal(err)
		}

		// Profiling side: one training run, one artifact.
		cfg := core.DefaultConfig()
		if !spec.Predictable {
			// Gcc-class programs need the irregular-sub-trace
			// extension to get their boundaries marked at all.
			cfg.KeepIrregular = true
		}
		train := spec.Train
		train.Steps = min(train.Steps, 10)
		det, err := core.Detect(spec.Make(train), cfg)
		if err != nil {
			log.Fatal(err)
		}
		var artifact bytes.Buffer
		if err := det.Save(&artifact); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: profile is %d bytes (%d markers, hierarchy %v, consistent=%v)\n",
			name, artifact.Len(), len(det.Selection.Markers), det.Hierarchy, det.Consistent())

		// Deployed side: load the artifact, pick the policy.
		loaded, err := core.Load(&artifact)
		if err != nil {
			log.Fatal(err)
		}
		ref := spec.Ref
		ref.Steps = min(ref.Steps, 20)
		if loaded.Consistent() {
			rep := core.Predict(spec.Make(ref), loaded, predictor.Strict)
			fmt.Printf("  strict prediction: accuracy %.1f%%, coverage %.1f%%\n",
				100*rep.Accuracy, 100*rep.Coverage)
		} else {
			rep := core.PredictStatistical(spec.Make(ref), loaded)
			fmt.Printf("  statistical prediction (lengths as mean±2σ intervals): "+
				"accuracy %.1f%%, coverage %.1f%%, %d predictions\n",
				100*rep.Accuracy, 100*rep.Coverage, rep.Predictions)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
