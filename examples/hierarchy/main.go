// Hierarchy: build a phase hierarchy from a raw phase sequence with
// SEQUITUR grammar compression and regular-expression extraction
// (Section 2.4), then use the compiled automaton to predict the next
// phase at run time.
//
//	go run ./examples/hierarchy
package main

import (
	"fmt"

	"lpp/internal/predictor"
	"lpp/internal/regexphase"
	"lpp/internal/sequitur"
)

func main() {
	// A Tomcatv-like training run: an initialization phase, then
	// time steps of five substeps each.
	seq := []int{9}
	for step := 0; step < 12; step++ {
		seq = append(seq, 1, 2, 3, 4, 5)
	}
	fmt.Printf("phase sequence (%d executions): %v...\n", len(seq), seq[:11])

	// SEQUITUR compresses the sequence into a context-free grammar.
	g := sequitur.Build(seq)
	fmt.Printf("\nSEQUITUR grammar (%d symbols on all right-hand sides):\n%s",
		g.Size(), g)

	// The hierarchy extraction converts the grammar into a regular
	// expression, merging adjacent equivalent parts into repetitions.
	h := regexphase.FromGrammar(g)
	fmt.Printf("\nphase hierarchy: %v\n", h)

	// The composite phase (one time step) contains five leaves.
	fmt.Printf("largest composite phase: %d leaf phases\n",
		regexphase.LargestComposite(h))

	// The compiled automaton predicts the next phase at run time —
	// even for a run with far more time steps than the training run.
	np := predictor.NewNextPhase(h)
	longRun := []int{9}
	for step := 0; step < 100; step++ {
		longRun = append(longRun, 1, 2, 3, 4, 5)
	}
	for _, ph := range longRun {
		np.Observe(ph)
	}
	fmt.Printf("next-phase prediction over a 100-step run: %.1f%% of %d predictions correct\n",
		100*np.Accuracy(), np.Predictions())
}
