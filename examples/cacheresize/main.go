// Cacheresize: use locality phase prediction to drive adaptive cache
// resizing (Section 3.2) — shrink the cache whenever the current phase
// doesn't need all of it, without increasing misses.
//
//	go run ./examples/cacheresize
package main

import (
	"fmt"
	"log"

	"lpp/internal/adapt"
	"lpp/internal/cache"
	"lpp/internal/core"
	"lpp/internal/interval"
	"lpp/internal/predictor"
	"lpp/internal/workload"
)

func main() {
	spec, err := workload.ByName("compress")
	if err != nil {
		log.Fatal(err)
	}
	det, err := core.Detect(spec.Make(workload.Params{N: 1 << 15, Steps: 5, Seed: 1}), core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Measure per-phase-execution locality on a production run.
	ref := workload.Params{N: 1 << 17, Steps: 10, Seed: 2}
	rep := core.Predict(spec.Make(ref), det, predictor.Relaxed)

	// Convert phase executions into resizing windows and let the
	// phase method pick the smallest safe size per phase.
	var wins []interval.Window
	var labels []int
	for _, e := range rep.Executions {
		wins = append(wins, interval.Window{EndAccess: e.Accesses, Loc: e.Locality})
		labels = append(labels, int(e.Phase))
	}
	for _, bound := range []float64{0, 0.05} {
		res := adapt.GroupedMethod(labels, wins, bound)
		full := adapt.FullSize(wins)
		fmt.Printf("miss-increase bound %.0f%%: average cache %.0f KB (vs %.0f KB full) — %.0f%% smaller\n",
			bound*100, res.AvgBytes/1024, full.AvgBytes/1024,
			100*(1-res.AvgBytes/full.AvgBytes))
		fmt.Printf("  explorations: %d, steady-state miss increase: %.2f%%\n",
			res.Explorations, 100*res.MissIncrease)
	}

	// Show what each phase asked for.
	fmt.Println("\nper-phase best size (0% bound):")
	seen := map[int]bool{}
	for i, w := range wins {
		if seen[labels[i]] || i < 2 {
			continue // skip cold executions
		}
		seen[labels[i]] = true
		fmt.Printf("  phase %d: %d KB\n", labels[i],
			adapt.BestAssoc(w.Loc, 0)*cache.DefaultSets*64/1024)
	}
}
