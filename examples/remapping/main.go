// Remapping: phase-based array regrouping (Section 3.3) — compute
// reference-affinity groups per phase and remap array layouts at every
// phase marker, the way an Impulse-style memory controller would.
//
//	go run ./examples/remapping
package main

import (
	"fmt"
	"log"

	"lpp/internal/affinity"
	"lpp/internal/cache"
	"lpp/internal/core"
	"lpp/internal/marker"
	"lpp/internal/trace"
	"lpp/internal/workload"
)

func main() {
	spec, err := workload.ByName("swim")
	if err != nil {
		log.Fatal(err)
	}
	train := workload.Params{N: 64, Steps: 6, Seed: 1}
	det, err := core.Detect(spec.Make(train), core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Affinity analysis per phase on the training trace.
	trainProg := spec.Make(train)
	rec := trace.NewRecorder(0, 0)
	trainProg.Run(rec)
	arrays := trainProg.(trace.HasArrays).Arrays()

	perPhase := map[marker.PhaseID][]affinity.Group{}
	for _, e := range marker.Executions(&rec.T, det.Selection.Markers) {
		if _, ok := perPhase[e.Phase]; ok {
			continue
		}
		seg := rec.T.Accesses[e.StartAccess:e.EndAccess]
		perPhase[e.Phase] = affinity.AnalyzeTrace(seg, arrays, 32, 0.3)
	}
	names := func(g affinity.Group) []string {
		var out []string
		for _, ai := range g {
			out = append(out, arrays[ai].Name)
		}
		return out
	}
	for ph, groups := range perPhase {
		fmt.Printf("phase %d affinity groups:", ph)
		for _, g := range groups {
			fmt.Printf(" %v", names(g))
		}
		fmt.Println()
	}

	// Replay a larger run three ways and compare misses.
	ref := workload.Params{N: 128, Steps: 10, Seed: 2}
	refArrays := spec.Make(ref).(trace.HasArrays).Arrays()
	run := func(setup func(*affinity.Remapper) marker.Callback) uint64 {
		sim := cache.NewSetAssoc(256, 2, 6) // 32KB 2-way
		rm := affinity.NewRemapper(refArrays, cache.Sink{C: sim})
		ins := marker.NewInstrumented(det.Selection.Markers, rm, setup(rm))
		spec.Make(ref).Run(ins)
		return sim.Misses()
	}
	orig := run(func(*affinity.Remapper) marker.Callback { return nil })
	phase := run(func(rm *affinity.Remapper) marker.Callback {
		return func(ph marker.PhaseID, _, _ int64) { rm.SetGroups(perPhase[ph]) }
	})
	fmt.Printf("\n32KB L1 misses: original %d, phase-remapped %d (%.1f%% fewer)\n",
		orig, phase, 100*(1-float64(phase)/float64(orig)))
}
