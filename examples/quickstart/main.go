// Quickstart: detect the locality phases of a program and predict a
// larger run — the complete pipeline of the paper in ~40 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lpp/internal/core"
	"lpp/internal/predictor"
	"lpp/internal/workload"
)

func main() {
	// Any trace.Runner works; the repository ships the paper's nine
	// benchmarks. Tomcatv is the running example: five substeps per
	// time step, each a locality phase.
	spec, err := workload.ByName("tomcatv")
	if err != nil {
		log.Fatal(err)
	}

	// Off-line analysis on a small training input: reuse-distance
	// sampling, wavelet filtering, optimal phase partitioning,
	// marker selection, hierarchy construction.
	train := workload.Params{N: 64, Steps: 6, Seed: 1}
	det, err := core.Detect(spec.Make(train), core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detected %d phases; hierarchy: %v\n",
		det.Selection.PhaseCount, det.Hierarchy)
	fmt.Printf("markers inserted at basic blocks: %v\n", det.Selection.Markers)

	// Run-time prediction on an input 4x larger and longer: each
	// phase's first executions predict all its later ones.
	ref := workload.Params{N: 128, Steps: 12, Seed: 7}
	rep := core.Predict(spec.Make(ref), det, predictor.Strict)
	fmt.Printf("prediction run: %d instructions in %d phase executions\n",
		rep.Instructions, len(rep.Executions))
	fmt.Printf("strict length prediction: accuracy %.1f%%, coverage %.1f%%\n",
		100*rep.Accuracy, 100*rep.Coverage)
	fmt.Printf("locality spread across executions of a phase: %.2e (≈0 means identical)\n",
		rep.LocalitySpread())
}
