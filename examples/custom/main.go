// Custom: instrument YOUR OWN program. Everything the library needs is
// the trace.Instrumenter event stream: call Block at loop headers and
// Access per data reference, and the whole pipeline — detection,
// markers, hierarchy, prediction, the composite-phase trigger for
// dynamic data reorganization — works on your code.
//
//	go run ./examples/custom
package main

import (
	"fmt"
	"log"

	"lpp/internal/core"
	"lpp/internal/predictor"
	"lpp/internal/trace"
)

// ocean is a user application: a toy ocean model that alternates an
// advection sweep and a pressure solve over two grids, per time step.
type ocean struct {
	n, steps int
	temp     uint64 // virtual base addresses, 8-byte cells
	pressure uint64
}

// Block IDs for the instrumented "binary". Any stable numbering works.
const (
	bStep trace.BlockID = iota + 1
	bAdvectHead
	bAdvectRow
	bSolveHead
	bSolveRow
)

// Run implements trace.Runner: the only integration point.
func (o *ocean) Run(ins trace.Instrumenter) {
	at := func(base uint64, i, j int) trace.Addr {
		return trace.Addr(base + uint64(j*o.n+i)*8)
	}
	for s := 0; s < o.steps; s++ {
		ins.Block(bStep, 2)

		// Advection: sweep temperature with a 5-point stencil.
		ins.Block(bAdvectHead, 2)
		for j := 1; j < o.n-1; j++ {
			ins.Block(bAdvectRow, 2+6*(o.n-2))
			for i := 1; i < o.n-1; i++ {
				ins.Access(at(o.temp, i, j))
				ins.Access(at(o.temp, i-1, j))
				ins.Access(at(o.temp, i+1, j))
				ins.Access(at(o.temp, i, j-1))
				ins.Access(at(o.temp, i, j+1))
			}
		}

		// Pressure solve: red-black-ish sweep over the other grid.
		ins.Block(bSolveHead, 2)
		for j := 1; j < o.n-1; j++ {
			ins.Block(bSolveRow, 2+8*(o.n-2))
			for i := 1; i < o.n-1; i++ {
				ins.Access(at(o.pressure, i, j))
				ins.Access(at(o.pressure, i-1, j))
				ins.Access(at(o.pressure, i+1, j))
				ins.Access(at(o.temp, i, j)) // coupling term
			}
		}
	}
}

func main() {
	train := &ocean{n: 64, steps: 6, temp: 1 << 20, pressure: 1 << 24}
	det, err := core.Detect(train, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detected %d phases in the ocean model; hierarchy %v\n",
		det.Selection.PhaseCount, det.Hierarchy)

	// Predict a production run 4x larger.
	prod := &ocean{n: 128, steps: 15, temp: 1 << 20, pressure: 1 << 24}
	rep := core.Predict(prod, det, predictor.Strict)
	fmt.Printf("production run: accuracy %.1f%%, coverage %.1f%%\n",
		100*rep.Accuracy, 100*rep.Coverage)

	// Fire a data-reorganization directive once per time step — the
	// automation goal of Section 3.4.
	trigger := predictor.NewCompositeTrigger(det.Hierarchy, func(n int64) {
		if n < 3 {
			fmt.Printf("  time step %d: reorganize data here\n", n)
		}
	})
	for _, e := range rep.Executions {
		trigger.Observe(int(e.Phase))
	}
	fmt.Printf("directive fired %d times over %d phase executions\n",
		trigger.Fires(), len(rep.Executions))
}
