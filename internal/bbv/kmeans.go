package bbv

import "lpp/internal/stats"

// KMeans clusters interval vectors with Lloyd's algorithm, the
// clustering SimPoint uses on basic-block vectors (Sherwood et al.
// [29, 30]); it is the off-line alternative to the on-line
// leader–follower Cluster. Seeding is k-means++-style from a
// deterministic generator; empty clusters are reseeded from the
// farthest point.
func KMeans(intervals []Interval, k int, seed uint64) []int {
	n := len(intervals)
	ids := make([]int, n)
	if n == 0 || k <= 1 {
		return ids
	}
	if k > n {
		k = n
	}
	rng := stats.NewRNG(seed)

	// k-means++ seeding.
	centroids := make([]Vector, 0, k)
	centroids = append(centroids, intervals[rng.Intn(n)].Vector)
	d2 := make([]float64, n)
	for len(centroids) < k {
		var sum float64
		for i, iv := range intervals {
			best := manhattan(iv.Vector, centroids[0])
			for _, c := range centroids[1:] {
				if d := manhattan(iv.Vector, c); d < best {
					best = d
				}
			}
			d2[i] = best * best
			sum += d2[i]
		}
		if sum == 0 {
			// All points coincide with a centroid already.
			centroids = append(centroids, intervals[rng.Intn(n)].Vector)
			continue
		}
		target := rng.Float64() * sum
		pick := 0
		for i, w := range d2 {
			target -= w
			if target <= 0 {
				pick = i
				break
			}
		}
		centroids = append(centroids, intervals[pick].Vector)
	}

	// Lloyd iterations.
	for iter := 0; iter < 50; iter++ {
		changed := false
		for i, iv := range intervals {
			best, bestD := 0, manhattan(iv.Vector, centroids[0])
			for c := 1; c < k; c++ {
				if d := manhattan(iv.Vector, centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if ids[i] != best {
				ids[i] = best
				changed = true
			}
		}
		// Recompute centroids.
		var sums [][Dims]float64
		sums = make([][Dims]float64, k)
		counts := make([]int, k)
		for i, iv := range intervals {
			c := ids[i]
			counts[c]++
			for d := 0; d < Dims; d++ {
				sums[c][d] += iv.Vector[d]
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Reseed an empty cluster from the farthest point.
				far, farD := 0, -1.0
				for i, iv := range intervals {
					if d := manhattan(iv.Vector, centroids[ids[i]]); d > farD {
						far, farD = i, d
					}
				}
				centroids[c] = intervals[far].Vector
				continue
			}
			for d := 0; d < Dims; d++ {
				centroids[c][d] = sums[c][d] / float64(counts[c])
			}
		}
		if !changed {
			break
		}
	}
	return ids
}

// Inertia returns the total Manhattan distance of each interval to its
// cluster centroid under the given assignment — the k-means objective,
// usable to pick k.
func Inertia(intervals []Interval, ids []int) float64 {
	if len(intervals) == 0 {
		return 0
	}
	k := 0
	for _, id := range ids {
		if id+1 > k {
			k = id + 1
		}
	}
	sums := make([][Dims]float64, k)
	counts := make([]int, k)
	for i, iv := range intervals {
		c := ids[i]
		counts[c]++
		for d := 0; d < Dims; d++ {
			sums[c][d] += iv.Vector[d]
		}
	}
	centroids := make([]Vector, k)
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			continue
		}
		for d := 0; d < Dims; d++ {
			centroids[c][d] = sums[c][d] / float64(counts[c])
		}
	}
	var total float64
	for i, iv := range intervals {
		total += manhattan(iv.Vector, centroids[ids[i]])
	}
	return total
}
