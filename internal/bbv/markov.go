package bbv

// RLEMarkov is the run-length-encoded Markov predictor of Sherwood et
// al. [30], the best of their predictors: the state is the pair
// (current cluster ID, length of the current run of that ID), and the
// table remembers the cluster that followed that state last time. When
// the state has never been seen, it falls back to last-value
// prediction (the run continues).
type RLEMarkov struct {
	table map[rleKey]int

	cur    int
	runLen int
	primed bool

	predictions int64
	correct     int64
}

type rleKey struct {
	id  int
	run int
}

// maxRun caps the run length used in the state so the table stays
// small, as in hardware implementations.
const maxRun = 64

// NewRLEMarkov returns an empty predictor.
func NewRLEMarkov() *RLEMarkov {
	return &RLEMarkov{table: make(map[rleKey]int)}
}

// Predict returns the predicted cluster of the next interval.
func (m *RLEMarkov) Predict() (int, bool) {
	if !m.primed {
		return 0, false
	}
	if next, ok := m.table[m.key()]; ok {
		return next, true
	}
	return m.cur, true // last-value fallback
}

func (m *RLEMarkov) key() rleKey {
	run := m.runLen
	if run > maxRun {
		run = maxRun
	}
	return rleKey{m.cur, run}
}

// Observe feeds the actual cluster of the next interval, scoring the
// outstanding prediction and updating the table.
func (m *RLEMarkov) Observe(id int) {
	if m.primed {
		if pred, ok := m.Predict(); ok {
			m.predictions++
			if pred == id {
				m.correct++
			}
		}
		if id != m.cur {
			// Record that this (id, run) state ended the run.
			m.table[m.key()] = id
			m.cur = id
			m.runLen = 1
		} else {
			m.runLen++
		}
		return
	}
	m.primed = true
	m.cur = id
	m.runLen = 1
}

// Accuracy returns the fraction of correct predictions (1 if none).
func (m *RLEMarkov) Accuracy() float64 {
	if m.predictions == 0 {
		return 1
	}
	return float64(m.correct) / float64(m.predictions)
}

// PredictSequence replays a cluster sequence through a fresh predictor
// and returns the prediction for each position from the second onward
// (position i holds the prediction made before observing ids[i]).
func PredictSequence(ids []int) []int {
	m := NewRLEMarkov()
	out := make([]int, len(ids))
	for i, id := range ids {
		if pred, ok := m.Predict(); ok {
			out[i] = pred
		} else {
			out[i] = -1
		}
		m.Observe(id)
	}
	return out
}
