package bbv

import (
	"math"
	"testing"

	"lpp/internal/workload"
)

func TestSimPointsOnePerCluster(t *testing.T) {
	ivs := twoCodeIntervals(8)
	ids := Cluster(ivs, DefaultThreshold)
	pts := SimPoints(ivs, ids)
	if len(pts) != 2 {
		t.Fatalf("simpoints = %d, want 2", len(pts))
	}
	var totalW float64
	for _, p := range pts {
		totalW += p.Weight
		if ids[p.Index] != p.Cluster {
			t.Error("representative not in its own cluster")
		}
	}
	if math.Abs(totalW-1) > 1e-12 {
		t.Errorf("weights sum to %g, want 1", totalW)
	}
}

func TestSimPointEstimateMatchesTrueAverage(t *testing.T) {
	// On a real phased workload: estimate the overall miss rate from
	// per-cluster representatives and compare with the truth.
	spec, _ := workload.ByName("tomcatv")
	col := NewCollectorWithLocality(15_000, 7)
	spec.Make(workload.Params{N: 48, Steps: 8, Seed: 1}).Run(col)
	ivs := col.Intervals()
	if len(ivs) < 20 {
		t.Fatalf("only %d intervals", len(ivs))
	}
	// Fixed-length windows cut the substeps at varying offsets, so
	// leader-follower fragments; k-means with a budget of k mirrors
	// SimPoint's usage.
	ids := KMeans(ivs, 8, 42)
	pts := SimPoints(ivs, ids)
	if len(pts) > 8 {
		t.Fatalf("simpoints (%d) exceed k", len(pts))
	}
	if len(pts) >= len(ivs)/3 {
		t.Fatalf("simpoints (%d) should be far fewer than intervals (%d)", len(pts), len(ivs))
	}
	est := Estimate(pts, func(i int) float64 { return ivs[i].Loc.MissAt(1) })
	var truth float64
	for _, iv := range ivs {
		truth += iv.Loc.MissAt(1)
	}
	truth /= float64(len(ivs))
	if diff := math.Abs(est - truth); diff > 0.05 {
		t.Errorf("simpoint estimate %.4f vs true %.4f (diff %.4f)", est, truth, diff)
	}
}

func TestSimPointsDegenerate(t *testing.T) {
	if pts := SimPoints(nil, nil); pts != nil {
		t.Error("empty input should give nil")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on mismatch")
		}
	}()
	SimPoints(make([]Interval, 2), []int{0})
}
