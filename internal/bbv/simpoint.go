package bbv

// SimPoint is one representative interval: simulate only it and weight
// its behavior by its cluster's share of the execution — the
// simulation-point methodology of Sherwood et al. [29, 30] that the
// paper's BBV baseline comes from.
type SimPoint struct {
	// Index of the representative interval.
	Index int
	// Cluster it represents.
	Cluster int
	// Weight is the cluster's fraction of all intervals.
	Weight float64
}

// SimPoints picks, for every cluster, the interval closest to the
// cluster centroid, weighted by cluster size. ids must be a clustering
// of ivs (from Cluster or KMeans).
func SimPoints(ivs []Interval, ids []int) []SimPoint {
	if len(ivs) != len(ids) {
		panic("bbv: SimPoints length mismatch")
	}
	if len(ivs) == 0 {
		return nil
	}
	k := 0
	for _, id := range ids {
		if id+1 > k {
			k = id + 1
		}
	}
	// Centroids.
	sums := make([][Dims]float64, k)
	counts := make([]int, k)
	for i, iv := range ivs {
		c := ids[i]
		counts[c]++
		for d := 0; d < Dims; d++ {
			sums[c][d] += iv.Vector[d]
		}
	}
	centroids := make([]Vector, k)
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			continue
		}
		for d := 0; d < Dims; d++ {
			centroids[c][d] = sums[c][d] / float64(counts[c])
		}
	}
	// Closest interval per cluster.
	best := make([]int, k)
	bestD := make([]float64, k)
	for c := range best {
		best[c] = -1
	}
	for i, iv := range ivs {
		c := ids[i]
		d := manhattan(iv.Vector, centroids[c])
		if best[c] < 0 || d < bestD[c] {
			best[c], bestD[c] = i, d
		}
	}
	var out []SimPoint
	for c := 0; c < k; c++ {
		if best[c] < 0 {
			continue
		}
		out = append(out, SimPoint{
			Index:   best[c],
			Cluster: c,
			Weight:  float64(counts[c]) / float64(len(ivs)),
		})
	}
	return out
}

// Estimate computes the weighted sum of a per-interval metric over the
// simulation points — the whole-program estimate one would get by
// simulating only the representatives.
func Estimate(points []SimPoint, metric func(intervalIndex int) float64) float64 {
	var sum float64
	for _, p := range points {
		sum += p.Weight * metric(p.Index)
	}
	return sum
}
