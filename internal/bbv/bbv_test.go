package bbv

import (
	"testing"

	"lpp/internal/trace"
)

// emit drives a Collector with `reps` repetitions of a block pattern.
func emit(c *Collector, pattern []trace.BlockID, instrsEach, reps int) {
	for r := 0; r < reps; r++ {
		for _, id := range pattern {
			c.Block(id, instrsEach)
		}
	}
}

func TestCollectorIntervalBoundaries(t *testing.T) {
	c := NewCollector(1000, 1)
	emit(c, []trace.BlockID{1, 2}, 100, 10) // 2000 instructions
	ivs := c.Intervals()
	if len(ivs) != 2 {
		t.Fatalf("intervals = %d, want 2", len(ivs))
	}
	if ivs[0].EndInstr != 1000 || ivs[1].StartInstr != 1000 {
		t.Errorf("interval extents wrong: %+v", ivs)
	}
}

func TestCollectorSameCodeSameVector(t *testing.T) {
	c := NewCollector(1000, 1)
	emit(c, []trace.BlockID{1, 2, 3, 4, 5}, 100, 12) // pattern divides the interval
	ivs := c.Intervals()
	if len(ivs) < 3 {
		t.Fatal("expected several intervals")
	}
	d := manhattan(ivs[0].Vector, ivs[1].Vector)
	if d > 1e-9 {
		t.Errorf("identical code produced distance %g", d)
	}
}

func TestCollectorDifferentCodeDifferentVector(t *testing.T) {
	c := NewCollector(1000, 1)
	emit(c, []trace.BlockID{1, 2}, 100, 5) // interval 1
	emit(c, []trace.BlockID{7, 8}, 100, 5) // interval 2
	ivs := c.Intervals()
	if len(ivs) != 2 {
		t.Fatalf("intervals = %d, want 2", len(ivs))
	}
	if d := manhattan(ivs[0].Vector, ivs[1].Vector); d < 1 {
		t.Errorf("different code produced distance %g, want >= 1", d)
	}
}

func TestCollectorPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewCollector(0, 1)
}

func TestClusterGroupsAlternation(t *testing.T) {
	c := NewCollector(1000, 1)
	for r := 0; r < 6; r++ {
		emit(c, []trace.BlockID{1, 2}, 100, 5) // code A
		emit(c, []trace.BlockID{7, 8}, 100, 5) // code B
	}
	ids := Cluster(c.Intervals(), DefaultThreshold)
	if len(ids) != 12 {
		t.Fatalf("intervals = %d", len(ids))
	}
	for i, id := range ids {
		if id != ids[i%2] {
			t.Fatalf("alternating code not clustered consistently: %v", ids)
		}
	}
	if ids[0] == ids[1] {
		t.Error("distinct code clustered together")
	}
}

func TestClusterThresholdExtremes(t *testing.T) {
	c := NewCollector(1000, 1)
	emit(c, []trace.BlockID{1, 2}, 100, 5)
	emit(c, []trace.BlockID{7, 8}, 100, 5)
	// Huge threshold: one cluster.
	ids := Cluster(c.Intervals(), 1e9)
	if ids[0] != ids[1] {
		t.Error("huge threshold should merge everything")
	}
	// Tiny threshold: every distinct vector separate.
	ids = Cluster(c.Intervals(), 1e-12)
	if ids[0] == ids[1] {
		t.Error("tiny threshold should split distinct vectors")
	}
}

func TestRLEMarkovLearnsPeriodicPattern(t *testing.T) {
	// Pattern AABB AABB ... : last-value fails at every run end;
	// RLE Markov learns the transitions.
	var seq []int
	for i := 0; i < 50; i++ {
		seq = append(seq, 0, 0, 1, 1)
	}
	m := NewRLEMarkov()
	var correctTail, totalTail int64
	for i, id := range seq {
		pred, ok := m.Predict()
		if ok && i >= len(seq)/2 { // score the second half (learned)
			totalTail++
			if pred == id {
				correctTail++
			}
		}
		m.Observe(id)
	}
	if totalTail == 0 || float64(correctTail)/float64(totalTail) < 0.99 {
		t.Errorf("learned accuracy = %d/%d, want ~1", correctTail, totalTail)
	}
}

func TestRLEMarkovFallbackLastValue(t *testing.T) {
	m := NewRLEMarkov()
	m.Observe(5)
	pred, ok := m.Predict()
	if !ok || pred != 5 {
		t.Errorf("fallback prediction = %d,%v, want 5,true", pred, ok)
	}
}

func TestRLEMarkovAccuracyVacuous(t *testing.T) {
	m := NewRLEMarkov()
	if m.Accuracy() != 1 {
		t.Error("vacuous accuracy should be 1")
	}
}

func TestPredictSequence(t *testing.T) {
	seq := []int{1, 1, 1, 1}
	preds := PredictSequence(seq)
	if preds[0] != -1 {
		t.Error("first position has no prediction")
	}
	for _, p := range preds[1:] {
		if p != 1 {
			t.Errorf("steady sequence predictions = %v", preds)
		}
	}
}

func TestProjectionDeterministic(t *testing.T) {
	c1 := NewCollector(1000, 42)
	c2 := NewCollector(1000, 42)
	v1 := c1.projection(7)
	v2 := c2.projection(7)
	if *v1 != *v2 {
		t.Error("projection must be deterministic per seed")
	}
	c3 := NewCollector(1000, 43)
	if *c3.projection(7) == *v1 {
		t.Error("different seeds should give different projections (overwhelmingly)")
	}
}

func TestCollectorWithLocality(t *testing.T) {
	c := NewCollectorWithLocality(1000, 1)
	for r := 0; r < 20; r++ {
		c.Block(1, 100)
		for i := 0; i < 10; i++ {
			c.Access(trace.Addr(i) * 64)
		}
	}
	ivs := c.Intervals()
	if len(ivs) != 2 {
		t.Fatalf("intervals = %d, want 2", len(ivs))
	}
	// First interval is cold, second fully warm.
	if ivs[0].Loc.MissAt(8) <= ivs[1].Loc.MissAt(8) {
		t.Errorf("locality not measured per interval: %v vs %v",
			ivs[0].Loc.MissAt(8), ivs[1].Loc.MissAt(8))
	}
	if ivs[1].Loc.MissAt(8) != 0 {
		t.Errorf("warm interval miss rate = %g, want 0", ivs[1].Loc.MissAt(8))
	}
}
