package bbv

import (
	"testing"

	"lpp/internal/trace"
)

// twoCodeIntervals builds intervals from two clearly distinct code
// regions, alternating.
func twoCodeIntervals(reps int) []Interval {
	c := NewCollector(1000, 1)
	for r := 0; r < reps; r++ {
		emit(c, []trace.BlockID{1, 2}, 100, 5)
		emit(c, []trace.BlockID{7, 8}, 100, 5)
	}
	return c.Intervals()
}

func TestKMeansSeparatesCode(t *testing.T) {
	ivs := twoCodeIntervals(8)
	ids := KMeans(ivs, 2, 42)
	// All even intervals in one cluster, all odd in the other.
	for i, id := range ids {
		if id != ids[i%2] {
			t.Fatalf("inconsistent clustering: %v", ids)
		}
	}
	if ids[0] == ids[1] {
		t.Error("distinct code should split into two clusters")
	}
}

func TestKMeansAgreesWithLeaderFollower(t *testing.T) {
	ivs := twoCodeIntervals(10)
	km := KMeans(ivs, 2, 42)
	lf := Cluster(ivs, DefaultThreshold)
	// Same partition up to label renaming: build the mapping.
	mapping := map[int]int{}
	for i := range ivs {
		if want, ok := mapping[km[i]]; ok {
			if lf[i] != want {
				t.Fatalf("partitions differ at %d", i)
			}
		} else {
			mapping[km[i]] = lf[i]
		}
	}
}

func TestKMeansDeterministic(t *testing.T) {
	ivs := twoCodeIntervals(6)
	a := KMeans(ivs, 2, 7)
	b := KMeans(ivs, 2, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give the same clustering")
		}
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	if got := KMeans(nil, 3, 1); len(got) != 0 {
		t.Error("empty input")
	}
	ivs := twoCodeIntervals(2)
	// k = 1: all in cluster 0.
	for _, id := range KMeans(ivs, 1, 1) {
		if id != 0 {
			t.Error("k=1 must put everything in cluster 0")
		}
	}
	// k > n: must not panic, must produce a valid assignment.
	ids := KMeans(ivs[:2], 10, 1)
	for _, id := range ids {
		if id < 0 || id >= 2 {
			t.Errorf("invalid cluster id %d", id)
		}
	}
}

func TestInertiaDecreasesWithK(t *testing.T) {
	ivs := twoCodeIntervals(10)
	i1 := Inertia(ivs, KMeans(ivs, 1, 3))
	i2 := Inertia(ivs, KMeans(ivs, 2, 3))
	if i2 >= i1 {
		t.Errorf("inertia did not decrease: k=1 %.3f, k=2 %.3f", i1, i2)
	}
	if i2 > 1e-9 {
		t.Errorf("two perfect clusters should have ~0 inertia, got %g", i2)
	}
}

func TestInertiaEmpty(t *testing.T) {
	if Inertia(nil, nil) != 0 {
		t.Error("empty inertia should be 0")
	}
}
