// Package bbv implements basic-block-vector phase analysis, the
// strongest interval-based baseline the paper compares against
// (Sherwood et al. [30]): execution is cut into fixed-length
// instruction intervals; each interval is summarized by a basic-block
// vector (per-block execution counts weighted by block size) randomly
// projected to 32 dimensions; intervals are clustered by a distance
// threshold; and a run-length-encoded Markov predictor forecasts the
// next interval's cluster.
package bbv

import (
	"lpp/internal/cache"
	"lpp/internal/trace"
)

// Dims is the projected vector dimensionality used by Sherwood et al.
const Dims = 32

// Vector is a projected, normalized basic-block vector.
type Vector [Dims]float64

// Interval is one fixed-length window of execution.
type Interval struct {
	Vector                 Vector
	StartInstr, EndInstr   int64
	StartAccess, EndAccess int64
	// Loc is the interval's measured locality vector when the
	// Collector was built with locality measurement.
	Loc cache.Vector
}

// Collector is a trace.Instrumenter that builds one projected BBV per
// interval of intervalLen instructions.
type Collector struct {
	intervalLen int64
	seed        uint64

	projCache map[trace.BlockID]*Vector

	cur        Vector
	curWeight  float64
	instrs     int64
	accesses   int64
	startInstr int64
	startAcc   int64

	sim  *cache.MultiAssoc
	snap cache.Snapshot

	intervals []Interval
}

// NewCollector returns a Collector with the given interval length in
// instructions (Sherwood et al. use 10M; scale to taste) and a seed
// for the random projection.
func NewCollector(intervalLen int64, seed uint64) *Collector {
	if intervalLen <= 0 {
		panic("bbv: interval length must be positive")
	}
	return &Collector{
		intervalLen: intervalLen,
		seed:        seed,
		projCache:   make(map[trace.BlockID]*Vector),
	}
}

// NewCollectorWithLocality additionally measures each interval's
// locality vector with the default multi-size cache simulator (warm
// across intervals).
func NewCollectorWithLocality(intervalLen int64, seed uint64) *Collector {
	c := NewCollector(intervalLen, seed)
	c.sim = cache.NewDefault()
	c.snap = c.sim.Snapshot()
	return c
}

// projection returns block id's random ±1 projection row, memoized.
func (c *Collector) projection(id trace.BlockID) *Vector {
	if v, ok := c.projCache[id]; ok {
		return v
	}
	var v Vector
	x := uint64(id)*0x9E3779B97F4A7C15 + c.seed
	for d := 0; d < Dims; d++ {
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		if z&1 == 0 {
			v[d] = 1
		} else {
			v[d] = -1
		}
	}
	c.projCache[id] = &v
	return &v
}

// Block implements trace.Instrumenter.
func (c *Collector) Block(id trace.BlockID, instrs int) {
	w := float64(instrs)
	p := c.projection(id)
	for d := 0; d < Dims; d++ {
		c.cur[d] += w * p[d]
	}
	c.curWeight += w
	c.instrs += int64(instrs)
	for c.instrs-c.startInstr >= c.intervalLen {
		c.close()
	}
}

// Access implements trace.Instrumenter.
func (c *Collector) Access(addr trace.Addr) {
	c.accesses++
	if c.sim != nil {
		c.sim.Access(addr)
	}
}

// close finishes the current interval.
func (c *Collector) close() {
	iv := Interval{
		StartInstr:  c.startInstr,
		EndInstr:    c.startInstr + c.intervalLen,
		StartAccess: c.startAcc,
		EndAccess:   c.accesses,
	}
	if c.curWeight > 0 {
		for d := 0; d < Dims; d++ {
			iv.Vector[d] = c.cur[d] / c.curWeight
		}
	}
	if c.sim != nil {
		iv.Loc, _ = c.sim.Since(c.snap)
		c.snap = c.sim.Snapshot()
	}
	c.intervals = append(c.intervals, iv)
	c.cur = Vector{}
	c.curWeight = 0
	c.startInstr = iv.EndInstr
	c.startAcc = c.accesses
}

// Intervals returns the completed intervals (a trailing partial
// interval is discarded, as in the original).
func (c *Collector) Intervals() []Interval {
	return c.intervals
}

// manhattan returns the L1 distance between two vectors.
func manhattan(a, b Vector) float64 {
	var s float64
	for d := 0; d < Dims; d++ {
		diff := a[d] - b[d]
		if diff < 0 {
			diff = -diff
		}
		s += diff
	}
	return s
}

// Cluster groups interval vectors with leader–follower threshold
// clustering: an interval joins the nearest existing cluster if its
// Manhattan distance to the centroid is below threshold, otherwise it
// founds a new cluster. Returns one cluster ID per interval.
func Cluster(intervals []Interval, threshold float64) []int {
	var centroids []Vector
	var sizes []int
	ids := make([]int, len(intervals))
	for i, iv := range intervals {
		best, bestDist := -1, threshold
		for c, cent := range centroids {
			if d := manhattan(iv.Vector, cent); d < bestDist {
				best, bestDist = c, d
			}
		}
		if best < 0 {
			centroids = append(centroids, iv.Vector)
			sizes = append(sizes, 1)
			ids[i] = len(centroids) - 1
			continue
		}
		// Update the centroid incrementally.
		n := float64(sizes[best])
		for d := 0; d < Dims; d++ {
			centroids[best][d] = (centroids[best][d]*n + iv.Vector[d]) / (n + 1)
		}
		sizes[best]++
		ids[i] = best
	}
	return ids
}

// DefaultThreshold is a clustering threshold that works well for the
// ±1 projection: vectors of identical code regions differ by ~0 while
// different regions differ by O(1) per dimension.
const DefaultThreshold = 4.0
