// Package durable persists streaming phase-detection sessions so a
// crash, deploy, or eviction loses nothing a detector has learned. Each
// session owns a directory holding two files:
//
//   - snapshot.bin — the latest detector checkpoint (opaque bytes from
//     online.Snapshot) plus the sequence number it covers and the
//     cached response of that sequence number, CRC-protected and
//     replaced atomically (write temp + rename);
//   - wal.log — a write-ahead log of every chunk accepted after the
//     checkpoint, framed with a length prefix and a per-record CRC.
//
// Recovery loads the snapshot and replays the WAL suffix. A torn final
// record (crash mid-append) is expected and repaired by truncation; a
// CRC mismatch anywhere else is real corruption and is reported, never
// silently accepted. Chunks are appended before they are processed, so
// a worker killed mid-chunk replays that chunk on recovery and the
// recovered detector emits exactly the boundaries of an uninterrupted
// run.
package durable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/url"
	"os"
	"path/filepath"

	"lpp/internal/faultfs"
	"lpp/internal/trace"
)

const (
	walMagic   = "LPPWAL1\n"
	ckptMagic  = "LPPCKPT1"
	walName    = "wal.log"
	ckptName   = "snapshot.bin"
	tmpSuffix  = ".tmp"
	walFlush   = 0x01 // flags bit: chunk requested a detector flush
	maxRecord  = 1 << 30
	maxRespLen = 1 << 30
)

// ErrCorrupt marks state that failed validation: a bad CRC, a broken
// frame, or a sequence gap. Distinguish it from a torn tail, which Load
// tolerates and repairs.
var ErrCorrupt = errors.New("durable: corrupt")

// Store manages the per-session durable state under one root
// directory.
type Store struct {
	dir  string
	fs   faultfs.FS
	sync bool
}

// Open returns a Store rooted at dir, creating it if needed. A nil fs
// uses the real filesystem; syncWrites fsyncs every WAL append and
// checkpoint (durability against power loss, at a latency cost).
func Open(dir string, fsys faultfs.FS, syncWrites bool) (*Store, error) {
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: open store: %w", err)
	}
	return &Store{dir: dir, fs: fsys, sync: syncWrites}, nil
}

// List returns the IDs of sessions with durable state.
func (s *Store) List() ([]string, error) {
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("durable: list: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		id, err := url.PathUnescape(e.Name())
		if err != nil {
			continue // not a session directory we created
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// Exists reports whether session id has durable state on disk.
func (s *Store) Exists(id string) bool {
	_, err := s.fs.Stat(s.sessionDir(id))
	return err == nil
}

// Session returns the session's log handle. No I/O happens until the
// first Load, Append, or Checkpoint.
func (s *Store) Session(id string) *Log {
	return &Log{dir: s.sessionDir(id), fs: s.fs, sync: s.sync}
}

func (s *Store) sessionDir(id string) string {
	return filepath.Join(s.dir, url.PathEscape(id))
}

// Log is one session's durable state: its checkpoint and write-ahead
// log. It is not safe for concurrent use; the session worker is the
// sole owner.
type Log struct {
	dir  string
	fs   faultfs.FS
	sync bool
	w    faultfs.File // open WAL append handle, nil until first Append
}

// Entry is one WAL record: an accepted chunk keyed by its session
// sequence number.
type Entry struct {
	Seq    uint64
	Flush  bool
	Events []trace.Event
}

// State is everything Load recovered for a session.
type State struct {
	// Seq is the checkpoint's sequence number (0 = no checkpoint).
	Seq uint64
	// Snapshot is the checkpointed detector image (nil = none).
	Snapshot []byte
	// Response is the cached NDJSON-able response bytes for Seq.
	Response []byte
	// Entries is the WAL suffix to replay, contiguous from Seq+1.
	Entries []Entry
	// TornTail reports that the WAL ended mid-record (crash during an
	// append); the torn bytes were discarded and the file repaired.
	TornTail bool
}

// LastSeq returns the highest sequence number covered by the state.
func (st *State) LastSeq() uint64 {
	if n := len(st.Entries); n > 0 {
		return st.Entries[n-1].Seq
	}
	return st.Seq
}

// Load reads the checkpoint and WAL. Missing files yield an empty
// state; a torn WAL tail is repaired; corruption returns an error
// wrapping ErrCorrupt together with whatever was recovered before it.
func (l *Log) Load() (*State, error) {
	st := &State{}
	ckpt, err := l.fs.ReadFile(filepath.Join(l.dir, ckptName))
	switch {
	case errors.Is(err, os.ErrNotExist):
	case err != nil:
		return st, fmt.Errorf("durable: read checkpoint: %w", err)
	default:
		if err := parseCheckpoint(ckpt, st); err != nil {
			return st, err
		}
	}
	wal, err := l.fs.ReadFile(filepath.Join(l.dir, walName))
	switch {
	case errors.Is(err, os.ErrNotExist):
		return st, nil
	case err != nil:
		return st, fmt.Errorf("durable: read wal: %w", err)
	}
	valid, err := parseWAL(wal, st)
	if err != nil {
		return st, err
	}
	if st.TornTail {
		// Repair: rewrite the valid prefix so the next append starts at
		// a clean record boundary.
		if err := l.writeAtomic(walName, wal[:valid]); err != nil {
			return st, fmt.Errorf("durable: repair torn wal: %w", err)
		}
	}
	return st, nil
}

// parseCheckpoint decodes snapshot.bin into st.
func parseCheckpoint(data []byte, st *State) error {
	if len(data) < len(ckptMagic)+4 || string(data[:len(ckptMagic)]) != ckptMagic {
		return fmt.Errorf("%w: checkpoint header", ErrCorrupt)
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return fmt.Errorf("%w: checkpoint checksum", ErrCorrupt)
	}
	rest := body[len(ckptMagic):]
	seq, n := binary.Uvarint(rest)
	if n <= 0 {
		return fmt.Errorf("%w: checkpoint seq", ErrCorrupt)
	}
	rest = rest[n:]
	snap, rest, err := readBlob(rest)
	if err != nil {
		return fmt.Errorf("%w: checkpoint snapshot field", ErrCorrupt)
	}
	resp, rest, err := readBlob(rest)
	if err != nil || len(rest) != 0 {
		return fmt.Errorf("%w: checkpoint response field", ErrCorrupt)
	}
	st.Seq = seq
	st.Snapshot = snap
	st.Response = resp
	return nil
}

func readBlob(data []byte) (blob, rest []byte, err error) {
	n, k := binary.Uvarint(data)
	if k <= 0 || n > maxRespLen || n > uint64(len(data)-k) {
		return nil, nil, errors.New("bad blob")
	}
	return data[k : k+int(n)], data[k+int(n):], nil
}

// parseWAL scans records into st.Entries and returns the byte offset of
// the end of the last whole record (the valid prefix).
func parseWAL(data []byte, st *State) (valid int, err error) {
	if len(data) < len(walMagic) {
		if string(data) == walMagic[:len(data)] {
			// Torn header write: treat as an empty log.
			st.TornTail = true
			return 0, nil
		}
		return 0, fmt.Errorf("%w: wal header", ErrCorrupt)
	}
	if string(data[:len(walMagic)]) != walMagic {
		return 0, fmt.Errorf("%w: wal header", ErrCorrupt)
	}
	off := len(walMagic)
	last := st.Seq
	for off < len(data) {
		recLen, n := binary.Uvarint(data[off:])
		if n <= 0 || recLen > maxRecord {
			st.TornTail = true
			return off, nil
		}
		end := off + n + int(recLen) + 4
		if int(recLen) > len(data)-off-n-4 {
			st.TornTail = true
			return off, nil
		}
		payload := data[off+n : end-4]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[end-4:]) {
			if end == len(data) {
				// The final record was torn mid-write, not corrupted at
				// rest: its frame is complete but its bytes are not.
				st.TornTail = true
				return off, nil
			}
			return off, fmt.Errorf("%w: wal record at %d: checksum", ErrCorrupt, off)
		}
		e, perr := parseRecord(payload)
		if perr != nil {
			return off, fmt.Errorf("%w: wal record at %d: %v", ErrCorrupt, off, perr)
		}
		if e.Seq > st.Seq { // records at or before the checkpoint are stale
			if e.Seq != last+1 {
				return off, fmt.Errorf("%w: wal sequence gap: %d after %d", ErrCorrupt, e.Seq, last)
			}
			last = e.Seq
			st.Entries = append(st.Entries, e)
		}
		off = end
	}
	return off, nil
}

func parseRecord(payload []byte) (Entry, error) {
	var e Entry
	seq, n := binary.Uvarint(payload)
	if n <= 0 || len(payload) < n+1 {
		return e, errors.New("bad frame")
	}
	e.Seq = seq
	flags := payload[n]
	if flags&^byte(walFlush) != 0 {
		return e, fmt.Errorf("unknown flags %#x", flags)
	}
	e.Flush = flags&walFlush != 0
	r := trace.NewReader(bytes.NewReader(payload[n+1:]))
	for {
		ev, err := r.Next()
		if err == io.EOF {
			return e, nil
		}
		if err != nil {
			return e, err
		}
		e.Events = append(e.Events, ev)
	}
}

// Append durably records an accepted chunk before it is processed.
func (l *Log) Append(e Entry) error {
	if l.w == nil {
		if err := l.openWAL(); err != nil {
			return err
		}
	}
	payload := binary.AppendUvarint(nil, e.Seq)
	flags := byte(0)
	if e.Flush {
		flags |= walFlush
	}
	payload = append(payload, flags)
	payload = appendEvents(payload, e.Events)

	rec := binary.AppendUvarint(nil, uint64(len(payload)))
	rec = append(rec, payload...)
	rec = binary.LittleEndian.AppendUint32(rec, crc32.ChecksumIEEE(payload))
	if _, err := l.w.Write(rec); err != nil {
		l.closeWAL()
		return fmt.Errorf("durable: wal append: %w", err)
	}
	if l.sync {
		if err := l.w.Sync(); err != nil {
			l.closeWAL()
			return fmt.Errorf("durable: wal sync: %w", err)
		}
	}
	return nil
}

// appendEvents encodes events in the trace file format.
func appendEvents(dst []byte, events []trace.Event) []byte {
	var sink byteSink
	sink.buf = dst
	w := trace.NewWriter(&sink)
	for _, ev := range events {
		ev.Feed(w)
	}
	w.Flush()
	return sink.buf
}

// EncodeCheckpoint renders a checkpoint image — the LPPCKPT1-framed,
// CRC-sealed bytes written to snapshot.bin. The same encoding doubles
// as the peer-replication wire format: a replica validates the frame
// and writes it through Checkpoint on its own store.
func EncodeCheckpoint(seq uint64, snapshot, response []byte) []byte {
	body := append([]byte(ckptMagic), binary.AppendUvarint(nil, seq)...)
	body = binary.AppendUvarint(body, uint64(len(snapshot)))
	body = append(body, snapshot...)
	body = binary.AppendUvarint(body, uint64(len(response)))
	body = append(body, response...)
	return binary.LittleEndian.AppendUint32(body, crc32.ChecksumIEEE(body))
}

// DecodeCheckpoint validates and splits a checkpoint image produced by
// EncodeCheckpoint. Corruption is reported wrapping ErrCorrupt; the
// returned slices alias data.
func DecodeCheckpoint(data []byte) (seq uint64, snapshot, response []byte, err error) {
	var st State
	if err := parseCheckpoint(data, &st); err != nil {
		return 0, nil, nil, err
	}
	return st.Seq, st.Snapshot, st.Response, nil
}

// ReadCheckpoint reads the session's current checkpoint without
// touching the WAL: the latest state image a peer replica needs during
// a full resync. A session with no checkpoint returns seq 0 and nil
// slices with no error; corruption is reported.
func (l *Log) ReadCheckpoint() (seq uint64, snapshot, response []byte, err error) {
	data, err := l.fs.ReadFile(filepath.Join(l.dir, ckptName))
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil, nil, nil
	}
	if err != nil {
		return 0, nil, nil, fmt.Errorf("durable: read checkpoint: %w", err)
	}
	return DecodeCheckpoint(data)
}

// Checkpoint atomically replaces the snapshot and resets the WAL. The
// snapshot is renamed into place before the WAL is reset, so a crash
// between the two leaves stale WAL records that recovery skips by
// sequence number.
func (l *Log) Checkpoint(seq uint64, snapshot, response []byte) error {
	body := EncodeCheckpoint(seq, snapshot, response)
	if err := l.writeAtomic(ckptName, body); err != nil {
		return fmt.Errorf("durable: checkpoint: %w", err)
	}
	l.closeWAL()
	if err := l.writeAtomic(walName, []byte(walMagic)); err != nil {
		return fmt.Errorf("durable: reset wal: %w", err)
	}
	return nil
}

// Remove deletes the session's durable state.
func (l *Log) Remove() error {
	l.closeWAL()
	return l.fs.RemoveAll(l.dir)
}

// Close releases the WAL handle (state stays on disk).
func (l *Log) Close() { l.closeWAL() }

func (l *Log) openWAL() error {
	if err := l.fs.MkdirAll(l.dir, 0o755); err != nil {
		return fmt.Errorf("durable: session dir: %w", err)
	}
	name := filepath.Join(l.dir, walName)
	fresh := false
	if fi, err := l.fs.Stat(name); err != nil || fi.Size() == 0 {
		fresh = true
	}
	f, err := l.fs.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("durable: open wal: %w", err)
	}
	if fresh {
		if _, err := f.Write([]byte(walMagic)); err != nil {
			f.Close()
			return fmt.Errorf("durable: wal header: %w", err)
		}
	}
	l.w = f
	return nil
}

func (l *Log) closeWAL() {
	if l.w != nil {
		l.w.Close()
		l.w = nil
	}
}

// writeAtomic writes name via a temp file and rename, syncing when the
// store syncs.
func (l *Log) writeAtomic(name string, data []byte) error {
	if err := l.fs.MkdirAll(l.dir, 0o755); err != nil {
		return err
	}
	tmp := filepath.Join(l.dir, name+tmpSuffix)
	f, err := l.fs.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if l.sync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	return l.fs.Rename(tmp, filepath.Join(l.dir, name))
}

// byteSink is an io.Writer over a growable byte slice (bytes.Buffer
// without the copy on Bytes()).
type byteSink struct{ buf []byte }

func (s *byteSink) Write(p []byte) (int, error) {
	s.buf = append(s.buf, p...)
	return len(p), nil
}
