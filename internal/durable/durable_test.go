package durable

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"lpp/internal/faultfs"
	"lpp/internal/trace"
)

func testEvents(seed int, n int) []trace.Event {
	events := make([]trace.Event, 0, n+1)
	events = append(events, trace.Event{Kind: trace.EventBlock, Block: trace.BlockID(seed), Instrs: 10})
	for i := 0; i < n; i++ {
		events = append(events, trace.Event{Kind: trace.EventAccess, Addr: trace.Addr(seed<<20 | i*8)})
	}
	return events
}

func sameEvents(a, b []trace.Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestAppendLoadRoundtrip(t *testing.T) {
	st, err := Open(t.TempDir(), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	l := st.Session("run/1") // exercises path escaping
	for seq := uint64(1); seq <= 5; seq++ {
		if err := l.Append(Entry{Seq: seq, Flush: seq == 5, Events: testEvents(int(seq), 100)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	got, err := st.Session("run/1").Load()
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 0 || got.Snapshot != nil {
		t.Fatalf("unexpected checkpoint: seq %d", got.Seq)
	}
	if len(got.Entries) != 5 || got.LastSeq() != 5 {
		t.Fatalf("got %d entries, last %d", len(got.Entries), got.LastSeq())
	}
	for i, e := range got.Entries {
		if e.Seq != uint64(i+1) || e.Flush != (e.Seq == 5) || !sameEvents(e.Events, testEvents(i+1, 100)) {
			t.Fatalf("entry %d mismatch: seq %d flush %v", i, e.Seq, e.Flush)
		}
	}
	ids, err := st.List()
	if err != nil || len(ids) != 1 || ids[0] != "run/1" {
		t.Fatalf("List = %v, %v", ids, err)
	}
	if !st.Exists("run/1") || st.Exists("other") {
		t.Fatal("Exists wrong")
	}
}

func TestCheckpointResetsWAL(t *testing.T) {
	st, _ := Open(t.TempDir(), nil, false)
	l := st.Session("s")
	for seq := uint64(1); seq <= 3; seq++ {
		if err := l.Append(Entry{Seq: seq, Events: testEvents(int(seq), 10)}); err != nil {
			t.Fatal(err)
		}
	}
	snap := []byte("detector-image")
	resp := []byte("cached-response")
	if err := l.Checkpoint(3, snap, resp); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Entry{Seq: 4, Events: testEvents(4, 10)}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	got, err := st.Session("s").Load()
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 3 || string(got.Snapshot) != string(snap) || string(got.Response) != string(resp) {
		t.Fatalf("checkpoint not recovered: seq %d", got.Seq)
	}
	if len(got.Entries) != 1 || got.Entries[0].Seq != 4 {
		t.Fatalf("wal suffix = %+v", got.Entries)
	}
}

// TestStaleWALEntriesSkipped models a crash between the checkpoint
// rename and the WAL reset: records at or below the checkpoint seq must
// be skipped, later ones kept.
func TestStaleWALEntriesSkipped(t *testing.T) {
	dir := t.TempDir()
	st, _ := Open(dir, nil, false)
	l := st.Session("s")
	for seq := uint64(1); seq <= 4; seq++ {
		if err := l.Append(Entry{Seq: seq, Events: testEvents(int(seq), 5)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	// Craft a checkpoint on a scratch log, then move just the snapshot
	// file over — leaving s's WAL unreset, as a crash between the
	// checkpoint rename and the WAL reset would.
	ck := st.Session("s")
	scratch := st.Session("scratch")
	if err := scratch.Checkpoint(2, []byte("snap"), nil); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(
		filepath.Join(dir, "scratch", ckptName),
		filepath.Join(dir, "s", ckptName),
	); err != nil {
		t.Fatal(err)
	}
	got, err := ck.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 2 || len(got.Entries) != 2 || got.Entries[0].Seq != 3 || got.Entries[1].Seq != 4 {
		t.Fatalf("state = seq %d entries %+v", got.Seq, got.Entries)
	}
}

// TestTornTailRepaired cuts bytes off the WAL at every offset inside
// the final record: Load must keep all whole records, flag the tear,
// and leave the file appendable.
func TestTornTailRepaired(t *testing.T) {
	dir := t.TempDir()
	st, _ := Open(dir, nil, false)
	l := st.Session("s")
	if err := l.Append(Entry{Seq: 1, Events: testEvents(1, 50)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Entry{Seq: 2, Events: testEvents(2, 50)}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	walPath := filepath.Join(dir, "s", walName)
	whole, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	for cut := int64(1); cut < 40; cut += 3 {
		if err := os.WriteFile(walPath, whole, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := faultfs.TruncateTail(walPath, cut); err != nil {
			t.Fatal(err)
		}
		got, err := st.Session("s").Load()
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !got.TornTail {
			t.Fatalf("cut %d: tear not flagged", cut)
		}
		if len(got.Entries) != 1 || got.Entries[0].Seq != 1 {
			t.Fatalf("cut %d: entries %+v", cut, got.Entries)
		}
		// The repaired file must accept the re-sent record cleanly.
		l := st.Session("s")
		if err := l.Append(Entry{Seq: 2, Events: testEvents(2, 50)}); err != nil {
			t.Fatalf("cut %d: append after repair: %v", cut, err)
		}
		l.Close()
		again, err := st.Session("s").Load()
		if err != nil || len(again.Entries) != 2 {
			t.Fatalf("cut %d: reload after repair: %d entries, %v", cut, len(again.Entries), err)
		}
	}
}

// TestCorruptionDetected flips bits in the middle of the WAL and the
// checkpoint: Load must report ErrCorrupt, not accept the data.
func TestCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	st, _ := Open(dir, nil, false)
	l := st.Session("s")
	for seq := uint64(1); seq <= 3; seq++ {
		if err := l.Append(Entry{Seq: seq, Events: testEvents(int(seq), 50)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Checkpoint(3, []byte("snapshot-bytes"), []byte("resp")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Entry{Seq: 4, Events: testEvents(4, 50)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Entry{Seq: 5, Events: testEvents(5, 50)}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Mid-WAL flip: inside the first record's payload, not the tail.
	if err := faultfs.FlipBit(filepath.Join(dir, "s", walName), 20, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Session("s").Load(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("wal bit flip: err = %v, want ErrCorrupt", err)
	}

	// Checkpoint flip.
	if err := faultfs.FlipBit(filepath.Join(dir, "s", ckptName), 12, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Session("s").Load(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("checkpoint bit flip: err = %v, want ErrCorrupt", err)
	}
}

func TestRemove(t *testing.T) {
	st, _ := Open(t.TempDir(), nil, false)
	l := st.Session("s")
	if err := l.Append(Entry{Seq: 1, Events: testEvents(1, 5)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Remove(); err != nil {
		t.Fatal(err)
	}
	if st.Exists("s") {
		t.Fatal("session survives Remove")
	}
}

// TestInjectedWriteErrors drives Append and Checkpoint into injected
// disk faults: every operation must surface the error, and the store
// must keep working once the fault clears.
func TestInjectedWriteErrors(t *testing.T) {
	inj := faultfs.NewInjector(nil)
	st, err := Open(t.TempDir(), inj, true)
	if err != nil {
		t.Fatal(err)
	}
	l := st.Session("s")
	if err := l.Append(Entry{Seq: 1, Events: testEvents(1, 20)}); err != nil {
		t.Fatal(err)
	}

	inj.FailWritesAfter(0, nil)
	if err := l.Append(Entry{Seq: 2, Events: testEvents(2, 20)}); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("append under fault: err = %v", err)
	}
	if err := l.Checkpoint(1, []byte("snap"), nil); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("checkpoint under fault: err = %v", err)
	}
	inj.Disarm()

	if err := l.Append(Entry{Seq: 2, Events: testEvents(2, 20)}); err != nil {
		t.Fatalf("append after fault cleared: %v", err)
	}
	l.Close()
	got, err := st.Session("s").Load()
	if err != nil {
		t.Fatal(err)
	}
	if got.LastSeq() != 2 {
		t.Fatalf("last seq %d after fault recovery, want 2", got.LastSeq())
	}
}

func TestCheckpointCodecRoundtrip(t *testing.T) {
	seq, snap, resp := uint64(42), []byte("LPPBUS1 framed image"), []byte(`{"kind":"boundary"}`+"\n")
	img := EncodeCheckpoint(seq, snap, resp)
	gotSeq, gotSnap, gotResp, err := DecodeCheckpoint(img)
	if err != nil {
		t.Fatal(err)
	}
	if gotSeq != seq || !bytes.Equal(gotSnap, snap) || !bytes.Equal(gotResp, resp) {
		t.Fatalf("decode = (%d, %q, %q), want (%d, %q, %q)", gotSeq, gotSnap, gotResp, seq, snap, resp)
	}
	// A flipped bit anywhere must be caught by the CRC.
	img[len(img)/2] ^= 0x10
	if _, _, _, err := DecodeCheckpoint(img); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupted image: err = %v, want ErrCorrupt", err)
	}
}

func TestReadCheckpoint(t *testing.T) {
	st, err := Open(t.TempDir(), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	l := st.Session("s")
	// No checkpoint yet: seq 0, no error.
	if seq, snap, _, err := l.ReadCheckpoint(); err != nil || seq != 0 || snap != nil {
		t.Fatalf("empty session: (%d, %v, %v)", seq, snap, err)
	}
	if err := l.Append(Entry{Seq: 1, Events: testEvents(1, 10)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(1, []byte("image"), []byte("resp")); err != nil {
		t.Fatal(err)
	}
	seq, snap, resp, err := l.ReadCheckpoint()
	if err != nil || seq != 1 || string(snap) != "image" || string(resp) != "resp" {
		t.Fatalf("ReadCheckpoint = (%d, %q, %q, %v)", seq, snap, resp, err)
	}
	// ReadCheckpoint must not disturb the WAL suffix.
	if err := l.Append(Entry{Seq: 2, Events: testEvents(2, 10)}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	got, err := st.Session("s").Load()
	if err != nil || got.Seq != 1 || got.LastSeq() != 2 {
		t.Fatalf("Load after ReadCheckpoint: seq %d last %d err %v", got.Seq, got.LastSeq(), err)
	}
}
