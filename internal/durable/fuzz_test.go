package durable

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// validWAL builds a real two-record WAL by writing through the Log.
func validWAL(t testing.TB) []byte {
	t.Helper()
	dir := t.TempDir()
	st, err := Open(dir, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	l := st.Session("s")
	if err := l.Append(Entry{Seq: 1, Events: testEvents(1, 30)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Entry{Seq: 2, Flush: true, Events: testEvents(2, 30)}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	data, err := os.ReadFile(filepath.Join(dir, "s", walName))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func validCheckpoint(t testing.TB) []byte {
	t.Helper()
	dir := t.TempDir()
	st, err := Open(dir, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Session("s").Checkpoint(7, []byte("snapshot-image"), []byte("resp")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "s", ckptName))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// FuzzParseWAL asserts WAL decoding never panics and that any parse
// that succeeds without a tear re-parses identically (stability).
func FuzzParseWAL(f *testing.F) {
	valid := validWAL(f)
	f.Add(valid)
	for cut := 0; cut < len(valid); cut += 1 + cut/8 {
		f.Add(valid[:cut]) // truncations, including mid-header
	}
	flip := append([]byte(nil), valid...)
	flip[len(flip)/2] ^= 0x08 // bit flip mid-record
	f.Add(flip)
	skew := append([]byte(nil), valid...)
	skew[6] = '9' // version-skewed header ("LPPWAL9\n")
	f.Add(skew)
	f.Add([]byte(walMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var st State
		valid, err := parseWAL(data, &st)
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid prefix %d out of [0,%d]", valid, len(data))
		}
		if err != nil {
			return
		}
		// Entries must be contiguous from Seq+1 whenever parse accepts.
		for i, e := range st.Entries {
			if e.Seq != st.Seq+uint64(i)+1 {
				t.Fatalf("entry %d has seq %d, checkpoint %d", i, e.Seq, st.Seq)
			}
		}
		if !st.TornTail {
			var again State
			if _, err := parseWAL(data, &again); err != nil || len(again.Entries) != len(st.Entries) {
				t.Fatal("clean parse not stable")
			}
		}
	})
}

// FuzzParseCheckpoint asserts checkpoint decoding never panics and that
// corrupt inputs are detected: any accepted input must carry a valid
// CRC, so mutations are rejected, not silently applied.
func FuzzParseCheckpoint(f *testing.F) {
	valid := validCheckpoint(f)
	f.Add(valid)
	for cut := 0; cut < len(valid); cut += 1 + cut/8 {
		f.Add(valid[:cut])
	}
	flip := append([]byte(nil), valid...)
	flip[len(flip)-6] ^= 0x01
	f.Add(flip)
	skew := append([]byte(nil), valid...)
	skew[len(ckptMagic)-1] = '9' // "LPPCKPT9": a future format version
	f.Add(skew)
	f.Add([]byte(ckptMagic))

	f.Fuzz(func(t *testing.T, data []byte) {
		var st State
		if err := parseCheckpoint(data, &st); err != nil {
			return
		}
		if len(data) < len(ckptMagic)+4 {
			t.Fatal("accepted impossibly short checkpoint")
		}
		body, trailer := data[:len(data)-4], data[len(data)-4:]
		if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
			t.Fatal("accepted checkpoint with bad CRC")
		}
	})
}

// TestWALSeeds pins the deterministic corruption cases the fuzz targets
// seed with: truncation → tolerated tear, mid-record flip → ErrCorrupt,
// header skew → ErrCorrupt.
func TestWALSeeds(t *testing.T) {
	valid := validWAL(t)

	var torn State
	if _, err := parseWAL(valid[:len(valid)-3], &torn); err != nil || !torn.TornTail {
		t.Fatalf("tail truncation: err=%v torn=%v", err, torn.TornTail)
	}
	if len(torn.Entries) != 1 {
		t.Fatalf("tail truncation kept %d entries, want 1", len(torn.Entries))
	}

	flip := append([]byte(nil), valid...)
	flip[len(walMagic)+3] ^= 0x10
	var st State
	if _, err := parseWAL(flip, &st); err == nil {
		t.Fatal("mid-record bit flip accepted")
	}

	skew := append([]byte(nil), valid...)
	skew[6] = '9'
	if _, err := parseWAL(skew, &State{}); err == nil {
		t.Fatal("version-skewed header accepted")
	}

	if !bytes.Contains(valid, []byte("LPPTRACE1\n")) {
		t.Fatal("wal records no longer embed the trace codec")
	}
}
