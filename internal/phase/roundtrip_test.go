package phase

import (
	"strings"
	"testing"
)

// TestKindRoundTrip pins the wire names: every defined kind parses
// back to itself, and the explicit unknown rendering does not parse.
func TestKindRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, ok := ParseKind(k.String())
		if !ok || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v; want %v", k.String(), got, ok, k)
		}
	}
	if _, ok := ParseKind(Kind(99).String()); ok {
		t.Fatalf("unknown kind rendering %q must not parse", Kind(99).String())
	}
	if _, ok := ParseKind("boundry"); ok {
		t.Fatalf("misspelled kind name parsed")
	}
}

// TestConsumerNamesRoundTrip pins registry/Name agreement: every
// registered stock name builds a consumer whose Name() is the
// registered name, option-carrying specs resolve to the base name, and
// a chain built from every name reports each consumer under it. This
// is the drift guard for the docs' consumer table: a consumer renamed
// or added without updating Names() fails here.
func TestConsumerNamesRoundTrip(t *testing.T) {
	names := Names()
	if len(names) == 0 {
		t.Fatal("no registered consumers")
	}
	for _, name := range names {
		c, err := Stock(name)
		if err != nil {
			t.Fatalf("Stock(%q): %v", name, err)
		}
		if c.Name() != name {
			t.Fatalf("Stock(%q).Name() = %q; registry and consumer disagree", name, c.Name())
		}
	}
	// Option-carrying specs keep the base name.
	c, err := Stock("predictor:strict")
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "predictor" {
		t.Fatalf(`Stock("predictor:strict").Name() = %q, want "predictor"`, c.Name())
	}

	chain, err := ParseChain(strings.Join(names, ","))
	if err != nil {
		t.Fatalf("ParseChain over all registered names: %v", err)
	}
	got := chain.Consumers()
	if len(got) != len(names) {
		t.Fatalf("chain has %d consumers, want %d", len(got), len(names))
	}
	for i, c := range got {
		if c.Name() != names[i] {
			t.Fatalf("chain consumer %d is %q, want %q", i, c.Name(), names[i])
		}
	}
}
