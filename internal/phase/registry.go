package phase

import (
	"fmt"
	"strings"

	"lpp/internal/adapt"
	"lpp/internal/predictor"
)

// Names returns the stock consumer names, in the order they are
// documented.
func Names() []string {
	return []string{"predictor", "cacheresize", "dvfs", "remap"}
}

// Stock builds a stock consumer by name with default configuration:
// the relaxed predictor policy and the paper's 5% adaptation budgets.
// A name may carry one ":"-separated option; today only the predictor
// takes one, selecting its policy ("predictor:strict" or the default
// "predictor:relaxed").
func Stock(name string) (Consumer, error) {
	base, opt, hasOpt := strings.Cut(name, ":")
	if hasOpt && (base != "predictor" || opt == "") {
		return nil, fmt.Errorf("phase: bad consumer option in %q (only predictor:strict|relaxed)", name)
	}
	switch base {
	case "predictor":
		policy := predictor.Relaxed
		switch opt {
		case "", "relaxed":
		case "strict":
			policy = predictor.Strict
		default:
			return nil, fmt.Errorf("phase: unknown predictor policy %q (strict or relaxed)", opt)
		}
		return NewPredictorConsumer(policy), nil
	case "cacheresize":
		return NewCacheResizer(DefaultResizeBound), nil
	case "dvfs":
		return NewDVFSConsumer(adapt.DefaultDVFS, DefaultDVFSBound), nil
	case "remap":
		return NewRemapConsumer(), nil
	}
	return nil, fmt.Errorf("phase: unknown consumer %q (stock consumers: %s)",
		base, strings.Join(Names(), ", "))
}

// ParseChain builds a chain from a comma-separated consumer list like
// "predictor,cacheresize". An empty spec yields an empty chain.
func ParseChain(spec string) (*Chain, error) {
	if strings.TrimSpace(spec) == "" {
		return NewChain(), nil
	}
	seen := make(map[string]bool)
	var consumers []Consumer
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("phase: empty consumer name in %q", spec)
		}
		base, _, _ := strings.Cut(name, ":")
		if seen[base] {
			return nil, fmt.Errorf("phase: duplicate consumer %q", base)
		}
		seen[base] = true
		c, err := Stock(name)
		if err != nil {
			return nil, err
		}
		consumers = append(consumers, c)
	}
	return NewChain(consumers...), nil
}
