package phase

import (
	"fmt"
	"strings"

	"lpp/internal/adapt"
	"lpp/internal/predictor"
)

// Names returns the stock consumer names, in the order they are
// documented.
func Names() []string {
	return []string{"predictor", "cacheresize", "dvfs", "remap"}
}

// Stock builds a stock consumer by name with default configuration:
// the relaxed predictor policy and the paper's 5% adaptation budgets.
func Stock(name string) (Consumer, error) {
	switch name {
	case "predictor":
		return NewPredictorConsumer(predictor.Relaxed), nil
	case "cacheresize":
		return NewCacheResizer(DefaultResizeBound), nil
	case "dvfs":
		return NewDVFSConsumer(adapt.DefaultDVFS, DefaultDVFSBound), nil
	case "remap":
		return NewRemapConsumer(), nil
	}
	return nil, fmt.Errorf("phase: unknown consumer %q (stock consumers: %s)",
		name, strings.Join(Names(), ", "))
}

// ParseChain builds a chain from a comma-separated consumer list like
// "predictor,cacheresize". An empty spec yields an empty chain.
func ParseChain(spec string) (*Chain, error) {
	if strings.TrimSpace(spec) == "" {
		return NewChain(), nil
	}
	seen := make(map[string]bool)
	var consumers []Consumer
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("phase: empty consumer name in %q", spec)
		}
		if seen[name] {
			return nil, fmt.Errorf("phase: duplicate consumer %q", name)
		}
		seen[name] = true
		c, err := Stock(name)
		if err != nil {
			return nil, err
		}
		consumers = append(consumers, c)
	}
	return NewChain(consumers...), nil
}
