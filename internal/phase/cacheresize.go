package phase

import (
	"fmt"

	"lpp/internal/adapt"
	"lpp/internal/cache"
)

// DefaultResizeBound is the paper's 5% miss-increase budget for
// adaptive cache resizing.
const DefaultResizeBound = 0.05

// resizeBytesPerAssoc is one associativity step in bytes (32KB), the
// same unit adapt's offline scoring uses.
const resizeBytesPerAssoc = cache.DefaultSets << cache.DefaultBlockBits

// CacheResizer replays adapt.GroupedMethod's learn-then-reuse
// discipline one event at a time: the first two executions of each
// phase are exploration trials (full size, then half size) while the
// phase's best size is learned; every later execution of that phase
// runs at the learned size. Each boundary ending an identified phase
// is one window, its length the access delta since the previous
// boundary and its locality the event's signature.
type CacheResizer struct {
	bound float64

	groups map[int]*resizeState

	prevTime int64

	explorations int64
	bytesSum     float64
	lenSum       float64
	misses       float64
	fullMisses   float64
}

type resizeState struct {
	seen    int64
	learned int64
}

// NewCacheResizer returns a resizer that accepts at most bound
// relative miss increase over the full 256KB cache.
func NewCacheResizer(bound float64) *CacheResizer {
	return &CacheResizer{bound: bound, groups: make(map[int]*resizeState)}
}

// Name implements Consumer.
func (c *CacheResizer) Name() string { return "cacheresize" }

// Consume implements Consumer.
func (c *CacheResizer) Consume(ev Event) error {
	if ev.Kind != BoundaryDetected {
		return nil
	}
	length := float64(ev.Time - c.prevTime)
	c.prevTime = ev.Time
	if ev.Phase < 0 || length <= 0 {
		return nil
	}
	g := c.groups[ev.Phase]
	if g == nil {
		g = &resizeState{}
		c.groups[ev.Phase] = g
		c.explorations++
	}
	var assigned int
	explore := false
	switch g.seen {
	case 0:
		assigned = cache.MaxAssoc
		explore = true
	case 1:
		assigned = cache.MaxAssoc / 2
		explore = true
	default:
		assigned = int(g.learned)
	}
	if explore {
		if b := adapt.BestAssoc(ev.Locality, c.bound); int64(b) > g.learned {
			g.learned = int64(b)
		}
		g.seen++
	}
	c.bytesSum += float64(assigned*resizeBytesPerAssoc) * length
	c.lenSum += length
	if !explore {
		c.misses += ev.Locality.MissAt(assigned) * length
		c.fullMisses += ev.Locality.MissAt(cache.MaxAssoc) * length
	}
	return nil
}

// Result folds the consumed stream into the same summary shape as the
// offline resizing experiment.
func (c *CacheResizer) Result() adapt.Result {
	r := adapt.Result{Explorations: int(c.explorations)}
	if c.lenSum > 0 {
		r.AvgBytes = c.bytesSum / c.lenSum
	}
	if c.fullMisses > 0 {
		r.MissIncrease = c.misses/c.fullMisses - 1
	}
	return r
}

// Report implements Reporter.
func (c *CacheResizer) Report() string {
	r := c.Result()
	return fmt.Sprintf("bound=%.2f avg-size=%.0fKB explorations=%d miss-increase=%.4f",
		c.bound, r.AvgBytes/1024, r.Explorations, r.MissIncrease)
}

const resizeSnapVersion = 1

// Snapshot implements Consumer.
func (c *CacheResizer) Snapshot() []byte {
	var e enc
	e.num(resizeSnapVersion)
	e.i64(c.prevTime)
	e.i64(c.explorations)
	e.f64(c.bytesSum)
	e.f64(c.lenSum)
	e.f64(c.misses)
	e.f64(c.fullMisses)
	e.num(len(c.groups))
	for _, ph := range sortedKeys(c.groups) {
		g := c.groups[ph]
		e.num(ph)
		e.i64(g.seen)
		e.i64(g.learned)
	}
	return e.buf
}

// Restore implements Consumer.
func (c *CacheResizer) Restore(data []byte) error {
	d := &dec{buf: data}
	if v := d.num(); d.err == nil && v != resizeSnapVersion {
		return fmt.Errorf("phase: unsupported cacheresize snapshot version %d", v)
	}
	prevTime := d.i64()
	explorations := d.i64()
	bytesSum := d.f64()
	lenSum := d.f64()
	misses := d.f64()
	fullMisses := d.f64()
	n := d.length(3)
	groups := make(map[int]*resizeState, n)
	for i := 0; i < n && d.err == nil; i++ {
		ph := d.num()
		groups[ph] = &resizeState{seen: d.i64(), learned: d.i64()}
	}
	if err := d.done(); err != nil {
		return err
	}
	if len(groups) != n {
		return fmt.Errorf("%w: duplicate resize group", ErrSnapshotCorrupt)
	}
	c.prevTime = prevTime
	c.explorations = explorations
	c.bytesSum, c.lenSum = bytesSum, lenSum
	c.misses, c.fullMisses = misses, fullMisses
	c.groups = groups
	return nil
}
