package phase

import (
	"fmt"

	"lpp/internal/affinity"
)

// RemapConsumer plans per-phase memory remapping (Section 4.3): each
// identified phase execution gets the data layout its affinity groups
// ask for, installed at the phase boundary by an Impulse-style
// controller. The consumer tracks how often the remap could be staged
// ahead of time — the phase was announced by a PhasePredicted event
// before it ran — versus installed reactively at the boundary, and how
// many announced plans had to be discarded because a different phase
// ran.
type RemapConsumer struct {
	// groups is the layout plan applied per remap; optional
	// configuration supplied by the offline pipeline.
	groups []affinity.Group

	// planned is the phase the bus announced as beginning the current
	// segment (-1 none), i.e. the layout staged ahead of time.
	planned int64

	installs     int64
	plannedAhead int64
	mispredicts  int64

	phases map[int]bool
}

// NewRemapConsumer returns a remap planner with no affinity groups
// configured.
func NewRemapConsumer() *RemapConsumer {
	return &RemapConsumer{planned: -1, phases: make(map[int]bool)}
}

// SetGroups configures the affinity groups the plans interleave.
// Configuration, not snapshotted state.
func (c *RemapConsumer) SetGroups(groups []affinity.Group) { c.groups = groups }

// Name implements Consumer.
func (c *RemapConsumer) Name() string { return "remap" }

// Consume implements Consumer.
func (c *RemapConsumer) Consume(ev Event) error {
	switch ev.Kind {
	case BoundaryDetected:
		// The segment this boundary ends is the one any pending plan
		// was staged for (the plan arrives right after the boundary
		// that started the segment).
		if c.planned >= 0 {
			if int(c.planned) == ev.Phase {
				c.plannedAhead++
			} else {
				c.mispredicts++
			}
			c.planned = -1
		}
		if ev.Phase >= 0 {
			c.installs++
			c.phases[ev.Phase] = true
		}
	case PhasePredicted:
		c.planned = int64(ev.Phase)
	case PhaseProfile:
	}
	return nil
}

// Report implements Reporter.
func (c *RemapConsumer) Report() string {
	return fmt.Sprintf("installs=%d planned-ahead=%d mispredicts=%d phases=%d groups=%d",
		c.installs, c.plannedAhead, c.mispredicts, len(c.phases), len(c.groups))
}

const remapSnapVersion = 1

// Snapshot implements Consumer.
func (c *RemapConsumer) Snapshot() []byte {
	var e enc
	e.num(remapSnapVersion)
	e.i64(c.planned)
	e.i64(c.installs)
	e.i64(c.plannedAhead)
	e.i64(c.mispredicts)
	e.num(len(c.phases))
	for _, ph := range sortedKeys(c.phases) {
		e.num(ph)
	}
	return e.buf
}

// Restore implements Consumer.
func (c *RemapConsumer) Restore(data []byte) error {
	d := &dec{buf: data}
	if v := d.num(); d.err == nil && v != remapSnapVersion {
		return fmt.Errorf("phase: unsupported remap snapshot version %d", v)
	}
	planned := d.i64()
	installs := d.i64()
	plannedAhead := d.i64()
	mispredicts := d.i64()
	n := d.length(1)
	phases := make(map[int]bool, n)
	for i := 0; i < n && d.err == nil; i++ {
		phases[d.num()] = true
	}
	if err := d.done(); err != nil {
		return err
	}
	if len(phases) != n {
		return fmt.Errorf("%w: duplicate remap phase", ErrSnapshotCorrupt)
	}
	c.planned = planned
	c.installs, c.plannedAhead, c.mispredicts = installs, plannedAhead, mispredicts
	c.phases = phases
	return nil
}
