package phase

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrSnapshotCorrupt reports a consumer or chain snapshot that fails
// structural validation; it is never partially applied.
var ErrSnapshotCorrupt = errors.New("phase: snapshot corrupt")

// enc builds deterministic snapshot bodies: varints for integers,
// fixed little-endian bits for floats, sorted order for every map.
type enc struct{ buf []byte }

func (e *enc) i64(v int64)  { e.buf = binary.AppendVarint(e.buf, v) }
func (e *enc) num(v int)    { e.i64(int64(v)) }
func (e *enc) u64(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *enc) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}
func (e *enc) str(s string) {
	e.num(len(s))
	e.buf = append(e.buf, s...)
}
func (e *enc) bytes(b []byte) {
	e.num(len(b))
	e.buf = append(e.buf, b...)
}

// sortedKeys returns a map's keys in ascending order, the only
// iteration order snapshots may use.
func sortedKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// dec decodes with sticky errors and bounds checks, so corrupt input
// cannot force huge allocations or panics.
type dec struct {
	buf []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrSnapshotCorrupt, fmt.Sprintf(format, args...))
	}
}

func (d *dec) i64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad varint at %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad uvarint at %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *dec) num() int {
	v := d.i64()
	if int64(int(v)) != v {
		d.fail("int overflow")
		return 0
	}
	return int(v)
}

func (d *dec) f64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail("short float at %d", d.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}

// length decodes a list length whose elements occupy at least elemSize
// bytes each, rejecting lengths the remaining input cannot hold.
func (d *dec) length(elemSize int) int {
	n := d.num()
	if n < 0 {
		d.fail("negative length")
		return 0
	}
	if elemSize < 1 {
		elemSize = 1
	}
	if n > (len(d.buf)-d.off)/elemSize {
		d.fail("length %d exceeds input", n)
		return 0
	}
	return n
}

func (d *dec) str() string {
	n := d.length(1)
	if d.err != nil {
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

func (d *dec) bytesField() []byte {
	n := d.length(1)
	if d.err != nil {
		return nil
	}
	b := make([]byte, n)
	copy(b, d.buf[d.off:d.off+n])
	d.off += n
	return b
}

// done reports trailing garbage as corruption.
func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrSnapshotCorrupt, len(d.buf)-d.off)
	}
	return nil
}
