package phase

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"strings"
)

// Chain fans one event stream out to an ordered list of consumers with
// per-consumer error isolation: a consumer that returns an error or
// panics is counted against (and only against) itself, and every other
// consumer still sees the event. The chain is the unit the server
// snapshots: its image embeds each consumer's state plus the delivery
// counters, so a recovered session resumes with exactly the adaptation
// state an uninterrupted run would have.
//
// Chain itself implements Consumer, so chains nest anywhere a single
// consumer is accepted (core.PredictAllWith takes one).
type Chain struct {
	consumers []Consumer
	stats     []ConsumerStats
}

// ConsumerStats counts one consumer's deliveries.
type ConsumerStats struct {
	Name     string
	Consumed int64
	Errors   int64
}

// NewChain composes consumers in delivery order.
func NewChain(consumers ...Consumer) *Chain {
	c := &Chain{consumers: consumers, stats: make([]ConsumerStats, len(consumers))}
	for i, cons := range consumers {
		c.stats[i].Name = cons.Name()
	}
	return c
}

// Name implements Consumer.
func (c *Chain) Name() string { return "chain" }

// Len returns the number of consumers in the chain.
func (c *Chain) Len() int { return len(c.consumers) }

// Consumers returns the chained consumers in delivery order.
func (c *Chain) Consumers() []Consumer { return c.consumers }

// Stats returns a copy of the per-consumer delivery counters.
func (c *Chain) Stats() []ConsumerStats {
	out := make([]ConsumerStats, len(c.stats))
	copy(out, c.stats)
	return out
}

// Consume delivers ev to every consumer in order. It never returns an
// error: failures are isolated per consumer and recorded in Stats.
func (c *Chain) Consume(ev Event) error {
	for i, cons := range c.consumers {
		c.stats[i].Consumed++
		if err := safeConsume(cons, ev); err != nil {
			c.stats[i].Errors++
		}
	}
	return nil
}

// safeConsume shields the chain (and the session worker above it) from
// a panicking consumer: adaptation policies are pluggable, and one
// broken policy must not take down detection or its peers.
func safeConsume(cons Consumer, ev Event) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("phase: consumer %s panicked: %v", cons.Name(), r)
		}
	}()
	return cons.Consume(ev)
}

// Chain snapshot format, CRC-sealed like the detector's:
//
//	"LPPCHN" | version byte | consumer count | per consumer:
//	name | consumed | errors | state bytes | ... | CRC32 (4B LE)
const (
	chainMagic   = "LPPCHN"
	chainVersion = 1
)

// Snapshot serializes every consumer's state plus the delivery
// counters. Deterministic: the same chain state always yields the same
// bytes.
func (c *Chain) Snapshot() []byte {
	var e enc
	e.buf = append(e.buf, chainMagic...)
	e.buf = append(e.buf, chainVersion)
	e.num(len(c.consumers))
	for i, cons := range c.consumers {
		e.str(c.stats[i].Name)
		e.i64(c.stats[i].Consumed)
		e.i64(c.stats[i].Errors)
		e.bytes(cons.Snapshot())
	}
	e.buf = binary.LittleEndian.AppendUint32(e.buf, crc32.ChecksumIEEE(e.buf))
	return e.buf
}

// Restore replaces the chain's state with a decoded snapshot. The
// receiver must be composed of the same consumers, by name and in the
// same order, as the chain that produced the snapshot; anything else
// is refused, because silently dropping a consumer's recovered state
// would fork adaptation decisions after recovery.
func (c *Chain) Restore(data []byte) error {
	header := len(chainMagic) + 1
	if len(data) < header+4 {
		return fmt.Errorf("%w: %d bytes is too short", ErrSnapshotCorrupt, len(data))
	}
	if string(data[:len(chainMagic)]) != chainMagic {
		return fmt.Errorf("%w: bad magic", ErrSnapshotCorrupt)
	}
	if v := data[len(chainMagic)]; v != chainVersion {
		return fmt.Errorf("phase: unsupported chain snapshot version %d", v)
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return fmt.Errorf("%w: checksum mismatch", ErrSnapshotCorrupt)
	}
	d := &dec{buf: body, off: header}
	n := d.num()
	if d.err == nil && n != len(c.consumers) {
		return fmt.Errorf("phase: snapshot has %d consumers, chain has %d", n, len(c.consumers))
	}
	stats := make([]ConsumerStats, len(c.consumers))
	states := make([][]byte, len(c.consumers))
	for i := 0; i < len(c.consumers) && d.err == nil; i++ {
		name := d.str()
		if d.err == nil && name != c.stats[i].Name {
			return fmt.Errorf("phase: snapshot consumer %d is %q, chain has %q", i, name, c.stats[i].Name)
		}
		stats[i] = ConsumerStats{Name: name, Consumed: d.i64(), Errors: d.i64()}
		states[i] = d.bytesField()
	}
	if err := d.done(); err != nil {
		return err
	}
	// Each consumer's Restore is atomic, but a failure here can leave
	// earlier consumers already restored — the caller must discard the
	// chain on error rather than keep using it.
	for i, cons := range c.consumers {
		if err := cons.Restore(states[i]); err != nil {
			return fmt.Errorf("phase: restore consumer %s: %w", cons.Name(), err)
		}
	}
	c.stats = stats
	return nil
}

// Report summarizes every reporting consumer, one line each.
func (c *Chain) Report() string {
	var b strings.Builder
	for i, cons := range c.consumers {
		if r, ok := cons.(Reporter); ok {
			fmt.Fprintf(&b, "%-11s %s", c.stats[i].Name, r.Report())
			if c.stats[i].Errors > 0 {
				fmt.Fprintf(&b, " (%d errors)", c.stats[i].Errors)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
