package phase

import (
	"fmt"

	"lpp/internal/adapt"
	"lpp/internal/cache"
)

// DefaultDVFSBound is the default 5% slowdown budget for frequency
// scaling.
const DefaultDVFSBound = 0.05

// DVFSConsumer replays adapt.GroupedDVFS one event at a time: the
// first two executions of each phase run at full frequency while its
// memory-boundedness is measured (the first sees a cold cache and
// overstates memory time), and later executions use the frequency
// learned from the last warm trial.
type DVFSConsumer struct {
	model adapt.DVFSModel
	bound float64

	learned map[int]*dvfsState

	prevTime int64

	baseTime   float64
	newTime    float64
	freqTime   float64
	baseEnergy float64
	newEnergy  float64
}

type dvfsState struct {
	seen int64
	f    float64
}

// NewDVFSConsumer returns a frequency-scaling consumer for the given
// model and slowdown budget.
func NewDVFSConsumer(model adapt.DVFSModel, bound float64) *DVFSConsumer {
	return &DVFSConsumer{model: model, bound: bound, learned: make(map[int]*dvfsState)}
}

// Name implements Consumer.
func (c *DVFSConsumer) Name() string { return "dvfs" }

// Consume implements Consumer.
func (c *DVFSConsumer) Consume(ev Event) error {
	if ev.Kind != BoundaryDetected {
		return nil
	}
	n := float64(ev.Time - c.prevTime)
	c.prevTime = ev.Time
	if ev.Phase < 0 || n <= 0 {
		return nil
	}
	compute := n
	memory := n * ev.Locality.MissAt(cache.MaxAssoc) * c.model.MissPenalty
	st := c.learned[ev.Phase]
	if st == nil {
		st = &dvfsState{}
		c.learned[ev.Phase] = st
	}
	var f float64
	if st.seen < 2 {
		st.f = c.model.Choose(compute, memory, c.bound)
		st.seen++
		f = 1
	} else {
		f = st.f
	}
	t := compute/f + memory
	c.baseTime += compute + memory
	c.newTime += t
	c.freqTime += f * t
	c.baseEnergy += compute
	c.newEnergy += compute * f * f
	return nil
}

// Result folds the consumed stream into the offline experiment's
// summary shape.
func (c *DVFSConsumer) Result() adapt.DVFSResult {
	r := adapt.DVFSResult{AvgFrequency: 1}
	if c.baseTime > 0 {
		r.Slowdown = c.newTime/c.baseTime - 1
	}
	if c.newTime > 0 {
		r.AvgFrequency = c.freqTime / c.newTime
	}
	if c.baseEnergy > 0 {
		r.EnergySavings = 1 - c.newEnergy/c.baseEnergy
	}
	return r
}

// Report implements Reporter.
func (c *DVFSConsumer) Report() string {
	r := c.Result()
	return fmt.Sprintf("bound=%.2f avg-freq=%.3f energy-savings=%.4f slowdown=%.4f",
		c.bound, r.AvgFrequency, r.EnergySavings, r.Slowdown)
}

const dvfsSnapVersion = 1

// Snapshot implements Consumer.
func (c *DVFSConsumer) Snapshot() []byte {
	var e enc
	e.num(dvfsSnapVersion)
	e.i64(c.prevTime)
	e.f64(c.baseTime)
	e.f64(c.newTime)
	e.f64(c.freqTime)
	e.f64(c.baseEnergy)
	e.f64(c.newEnergy)
	e.num(len(c.learned))
	for _, ph := range sortedKeys(c.learned) {
		st := c.learned[ph]
		e.num(ph)
		e.i64(st.seen)
		e.f64(st.f)
	}
	return e.buf
}

// Restore implements Consumer.
func (c *DVFSConsumer) Restore(data []byte) error {
	d := &dec{buf: data}
	if v := d.num(); d.err == nil && v != dvfsSnapVersion {
		return fmt.Errorf("phase: unsupported dvfs snapshot version %d", v)
	}
	prevTime := d.i64()
	baseTime := d.f64()
	newTime := d.f64()
	freqTime := d.f64()
	baseEnergy := d.f64()
	newEnergy := d.f64()
	n := d.length(10)
	learned := make(map[int]*dvfsState, n)
	for i := 0; i < n && d.err == nil; i++ {
		ph := d.num()
		learned[ph] = &dvfsState{seen: d.i64(), f: d.f64()}
	}
	if err := d.done(); err != nil {
		return err
	}
	if len(learned) != n {
		return fmt.Errorf("%w: duplicate dvfs group", ErrSnapshotCorrupt)
	}
	c.prevTime = prevTime
	c.baseTime, c.newTime, c.freqTime = baseTime, newTime, freqTime
	c.baseEnergy, c.newEnergy = baseEnergy, newEnergy
	c.learned = learned
	return nil
}
