package phase

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"lpp/internal/cache"
	"lpp/internal/predictor"
)

// TestKindString pins the NDJSON wire names and, critically, that an
// unknown kind renders explicitly instead of borrowing an existing
// name (the old online.Kind.String returned "prediction" for every
// non-boundary value, invalid kinds included).
func TestKindString(t *testing.T) {
	cases := []struct {
		k    Kind
		want string
	}{
		{BoundaryDetected, "boundary"},
		{PhasePredicted, "prediction"},
		{PhaseProfile, "profile"},
		{Kind(3), "kind(3)"},
		{Kind(42), "kind(42)"},
		{Kind(-1), "kind(-1)"},
	}
	for _, c := range cases {
		if got := c.k.String(); got != c.want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(c.k), got, c.want)
		}
	}
}

// testLocality is a plausible miss-rate signature: monotonically
// non-increasing in cache size.
func testLocality(scale float64) cache.Vector {
	return cache.Vector{
		0.5 * scale, 0.4 * scale, 0.3 * scale, 0.2 * scale,
		0.1 * scale, 0.05 * scale, 0.02 * scale, 0.01 * scale,
	}
}

// busStream synthesizes a deterministic event stream exercising every
// path consumers handle: an unidentified prelude, recurring phases with
// distinct localities, interleaved predictions (one of them wrong), and
// end-of-run profiles.
func busStream() []Event {
	var evs []Event
	t, instr := int64(0), int64(0)
	boundary := func(ph int, scale float64) {
		t += 1000
		instr += 4000
		evs = append(evs, Event{
			Kind: BoundaryDetected, Time: t, Instructions: instr,
			Phase: ph, Locality: testLocality(scale),
		})
	}
	predict := func(ph int) {
		evs = append(evs, Event{Kind: PhasePredicted, Time: t, Instructions: instr, Phase: ph})
	}
	boundary(-1, 0) // prelude
	predict(0)
	for i := 0; i < 4; i++ {
		boundary(0, 1.0)
		predict(1)
		boundary(1, 0.5)
		if i == 2 {
			predict(0) // wrong: phase 2 runs next
		} else {
			predict(2)
		}
		boundary(2, 0.25)
		predict(0)
	}
	evs = append(evs,
		Event{Kind: PhaseProfile, Time: t, Instructions: 16000, Phase: 0, Locality: testLocality(1.0)},
		Event{Kind: PhaseProfile, Time: t, Instructions: 16000, Phase: 1, Locality: testLocality(0.5)},
		Event{Kind: PhaseProfile, Time: t, Instructions: 16000, Phase: 2, Locality: testLocality(0.25)},
	)
	return evs
}

// flaky is a consumer that errors and panics on demand.
type flaky struct {
	name     string
	errEvery int // return an error on every nth event (0 = never)
	panicAt  int // panic on this 1-based event (0 = never)
	consumed int
	snap     []byte
}

func (f *flaky) Name() string { return f.name }
func (f *flaky) Consume(Event) error {
	f.consumed++
	if f.panicAt > 0 && f.consumed == f.panicAt {
		panic("synthetic consumer panic")
	}
	if f.errEvery > 0 && f.consumed%f.errEvery == 0 {
		return errors.New("synthetic consumer error")
	}
	return nil
}
func (f *flaky) Snapshot() []byte { return append([]byte(nil), f.snap...) }
func (f *flaky) Restore(data []byte) error {
	f.snap = append([]byte(nil), data...)
	return nil
}

// TestChainErrorIsolation feeds a stream through a chain whose middle
// consumer errors and panics; the chain must keep delivering to every
// consumer, never return an error itself, and account the failures to
// the failing consumer alone.
func TestChainErrorIsolation(t *testing.T) {
	good1 := &flaky{name: "good1"}
	bad := &flaky{name: "bad", errEvery: 3, panicAt: 5}
	good2 := &flaky{name: "good2"}
	ch := NewChain(good1, bad, good2)

	evs := busStream()
	for _, ev := range evs {
		if err := ch.Consume(ev); err != nil {
			t.Fatalf("chain.Consume returned %v; failures must stay isolated", err)
		}
	}
	if good1.consumed != len(evs) || good2.consumed != len(evs) || bad.consumed != len(evs) {
		t.Fatalf("deliveries = %d/%d/%d, want all %d",
			good1.consumed, bad.consumed, good2.consumed, len(evs))
	}
	st := ch.Stats()
	if st[0].Errors != 0 || st[2].Errors != 0 {
		t.Errorf("healthy consumers charged with errors: %+v", st)
	}
	wantErrs := int64(len(evs)/3 + 1) // every 3rd event, plus the panic at #5
	if st[1].Errors != wantErrs {
		t.Errorf("bad consumer errors = %d, want %d", st[1].Errors, wantErrs)
	}
	for i, s := range st {
		if s.Consumed != int64(len(evs)) {
			t.Errorf("stats[%d].Consumed = %d, want %d", i, s.Consumed, len(evs))
		}
	}
	if r := ch.Report(); r != "" { // non-Reporter consumers contribute no lines
		t.Errorf("Report() = %q, want empty", r)
	}
}

// fullChain builds the chain of all four stock consumers.
func fullChain(t *testing.T) *Chain {
	t.Helper()
	ch, err := ParseChain(strings.Join(Names(), ","))
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

// TestChainSnapshotRoundtrip checkpoints a mid-stream chain of all four
// stock consumers, restores it into a freshly built chain, and checks
// the recovered chain is byte-identical — both immediately and after
// both chains consume the rest of the stream (deterministic resumed
// behavior, the recovery guarantee the server relies on).
func TestChainSnapshotRoundtrip(t *testing.T) {
	evs := busStream()
	half := len(evs) / 2

	orig := fullChain(t)
	for _, ev := range evs[:half] {
		orig.Consume(ev)
	}
	snap := orig.Snapshot()

	if again := orig.Snapshot(); string(again) != string(snap) {
		t.Fatal("Snapshot is not deterministic")
	}

	recovered := fullChain(t)
	if err := recovered.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got := recovered.Snapshot(); string(got) != string(snap) {
		t.Fatal("restored chain's snapshot differs from the original")
	}
	for i, s := range recovered.Stats() {
		if o := orig.Stats()[i]; s != o {
			t.Errorf("stats[%d] = %+v, want %+v", i, s, o)
		}
	}

	for _, ev := range evs[half:] {
		orig.Consume(ev)
		recovered.Consume(ev)
	}
	if a, b := orig.Snapshot(), recovered.Snapshot(); string(a) != string(b) {
		t.Fatal("chains diverged after resuming from a restored snapshot")
	}
	if a, b := orig.Report(), recovered.Report(); a != b {
		t.Fatalf("reports diverged:\n%s\nvs\n%s", a, b)
	}
}

// TestChainRestoreRefusals covers every way a snapshot can fail to
// match the chain it is restored into.
func TestChainRestoreRefusals(t *testing.T) {
	src := NewChain(&flaky{name: "a"}, &flaky{name: "b"})
	for _, ev := range busStream() {
		src.Consume(ev)
	}
	snap := src.Snapshot()

	cases := []struct {
		name  string
		chain *Chain
		data  []byte
	}{
		{"wrong count", NewChain(&flaky{name: "a"}), snap},
		{"wrong name", NewChain(&flaky{name: "a"}, &flaky{name: "c"}), snap},
		{"wrong order", NewChain(&flaky{name: "b"}, &flaky{name: "a"}), snap},
		{"truncated", NewChain(&flaky{name: "a"}, &flaky{name: "b"}), snap[:len(snap)-6]},
		{"bad magic", NewChain(&flaky{name: "a"}, &flaky{name: "b"}),
			append([]byte("XXXXXX"), snap[6:]...)},
		{"empty", NewChain(&flaky{name: "a"}, &flaky{name: "b"}), nil},
	}
	for _, c := range cases {
		if err := c.chain.Restore(c.data); err == nil {
			t.Errorf("%s: Restore accepted a mismatched snapshot", c.name)
		}
	}

	// A flipped payload byte must fail the checksum.
	corrupt := append([]byte(nil), snap...)
	corrupt[len(corrupt)/2] ^= 0xff
	err := NewChain(&flaky{name: "a"}, &flaky{name: "b"}).Restore(corrupt)
	if !errors.Is(err, ErrSnapshotCorrupt) {
		t.Errorf("corrupt snapshot: err = %v, want ErrSnapshotCorrupt", err)
	}
}

// TestConsumerSnapshotRoundtrips checks each stock consumer alone:
// restore into a fresh instance reproduces both the snapshot bytes and
// the human report.
func TestConsumerSnapshotRoundtrips(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			orig, err := Stock(name)
			if err != nil {
				t.Fatal(err)
			}
			for _, ev := range busStream() {
				if err := orig.Consume(ev); err != nil {
					t.Fatalf("Consume: %v", err)
				}
			}
			snap := orig.Snapshot()
			fresh, err := Stock(name)
			if err != nil {
				t.Fatal(err)
			}
			if err := fresh.Restore(snap); err != nil {
				t.Fatalf("Restore: %v", err)
			}
			if got := fresh.Snapshot(); string(got) != string(snap) {
				t.Fatal("restored snapshot differs")
			}
			or, fr := orig.(Reporter).Report(), fresh.(Reporter).Report()
			if or != fr {
				t.Fatalf("reports diverge: %q vs %q", or, fr)
			}
			// Corruption and version checks must refuse, not misparse.
			if err := fresh.Restore(snap[:len(snap)/2]); err == nil {
				t.Error("Restore accepted a truncated snapshot")
			}
			bad := append([]byte{0xee, 0xee}, snap...)
			if err := fresh.Restore(bad); err == nil {
				t.Error("Restore accepted a wrong-version snapshot")
			}
		})
	}
}

// TestRegistry pins the stock names and ParseChain's validation.
func TestRegistry(t *testing.T) {
	for _, name := range Names() {
		c, err := Stock(name)
		if err != nil {
			t.Fatalf("Stock(%q): %v", name, err)
		}
		if c.Name() != name {
			t.Errorf("Stock(%q).Name() = %q", name, c.Name())
		}
	}
	if _, err := Stock("nonesuch"); err == nil {
		t.Error("Stock accepted an unknown consumer")
	}

	ch, err := ParseChain("")
	if err != nil || ch.Len() != 0 {
		t.Errorf("ParseChain(\"\") = len %d, %v; want empty chain", ch.Len(), err)
	}
	ch, err = ParseChain(" predictor , cacheresize ")
	if err != nil || ch.Len() != 2 {
		t.Errorf("ParseChain with spaces = len %d, %v; want 2 consumers", ch.Len(), err)
	}
	for _, bad := range []string{"predictor,predictor", "predictor,,dvfs", "bogus", ","} {
		if _, err := ParseChain(bad); err == nil {
			t.Errorf("ParseChain(%q) accepted an invalid spec", bad)
		}
	}

	// The predictor takes a policy option; nothing else takes any, and
	// policy variants still collide with the bare name on dedup.
	for spec, policy := range map[string]predictor.Policy{
		"predictor": predictor.Relaxed, "predictor:relaxed": predictor.Relaxed,
		"predictor:strict": predictor.Strict,
	} {
		c, err := Stock(spec)
		if err != nil {
			t.Fatalf("Stock(%q): %v", spec, err)
		}
		if got := c.(*PredictorConsumer).Predictor().Policy(); got != policy {
			t.Errorf("Stock(%q) policy = %v, want %v", spec, got, policy)
		}
	}
	for _, bad := range []string{"predictor:", "predictor:eager", "dvfs:strict", "predictor,predictor:strict"} {
		if _, err := ParseChain(bad); err == nil {
			t.Errorf("ParseChain(%q) accepted an invalid spec", bad)
		}
	}
}

// TestPredictorConsumerScoring walks the synthetic stream through the
// predictor consumer and checks the bus-level next-phase scoring: the
// stream announces 12 predictions that are scored (one wrong), and the
// one trailing announcement stays pending.
func TestPredictorConsumerScoring(t *testing.T) {
	c, err := Stock("predictor")
	if err != nil {
		t.Fatal(err)
	}
	pc := c.(*PredictorConsumer)
	for _, ev := range busStream() {
		pc.Consume(ev)
	}
	hits, misses := pc.NextPhaseHits()
	if hits != 11 || misses != 1 {
		t.Errorf("next-phase hits=%d misses=%d, want 11 and 1", hits, misses)
	}
	p := pc.Predictor()
	if p.Predictions() == 0 {
		t.Error("predictor learned nothing from the stream")
	}
	if got := fmt.Sprintf("%v", p.PhaseLengths()); !strings.Contains(got, "4000") {
		t.Errorf("phase lengths %s missing the 4000-instruction executions", got)
	}
}

// TestMarkInconsistent checks the consistency gate: a phase marked
// inconsistent is never predicted, mirroring core.Predict.
func TestMarkInconsistent(t *testing.T) {
	gated := NewPredictorConsumer(predictor.Relaxed)
	gated.MarkInconsistent(0)
	gated.MarkInconsistent(1)
	gated.MarkInconsistent(2)
	for _, ev := range busStream() {
		gated.Consume(ev)
	}
	if n := gated.Predictor().Predictions(); n != 0 {
		t.Errorf("inconsistent phases still produced %d predictions", n)
	}
	open := NewPredictorConsumer(predictor.Relaxed)
	for _, ev := range busStream() {
		open.Consume(ev)
	}
	if n := open.Predictor().Predictions(); n == 0 {
		t.Error("ungated consumer made no predictions; gate test is vacuous")
	}
}
