// Package phase defines the canonical phase-event model shared by the
// offline pipeline (internal/core) and the streaming detector
// (internal/online), and the consumer seam that turns detected phases
// into run-time adaptation.
//
// The paper's point is that detected phases drive adaptation — cache
// resizing, frequency scaling, memory remapping — so phase knowledge
// must flow past the detector. Both pipelines emit the same Event
// stream; anything that reacts to phase behavior implements Consumer
// and is composed into a Chain. Consumers carry Snapshot/Restore so
// they ride the same WAL/checkpoint machinery as the detector: a
// recovered session replays to byte-identical consumer state.
package phase

import (
	"fmt"

	"lpp/internal/cache"
)

// Kind discriminates phase events.
type Kind int

// Phase event kinds.
const (
	// BoundaryDetected reports a phase boundary at Time; Phase is the
	// ID of the segment that just ended.
	BoundaryDetected Kind = iota
	// PhasePredicted reports that the phase hierarchy uniquely
	// determines the phase now beginning.
	PhasePredicted
	// PhaseProfile reports a phase's accumulated behavior profile —
	// its locality signature and total instructions — once the
	// emitting pipeline has measured it (the offline pipeline emits
	// one per phase at end of run).
	PhaseProfile
)

// String returns the kind name used by the NDJSON wire format. Unknown
// kinds render explicitly as "kind(N)" so a future kind can never be
// silently mislabeled as an existing one.
func (k Kind) String() string {
	switch k {
	case BoundaryDetected:
		return "boundary"
	case PhasePredicted:
		return "prediction"
	case PhaseProfile:
		return "profile"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Kinds returns every defined event kind, in declaration order. New
// kinds must be added here; the round-trip test walks this list.
func Kinds() []Kind {
	return []Kind{BoundaryDetected, PhasePredicted, PhaseProfile}
}

// ParseKind inverts Kind.String for the defined kinds, so wire-format
// consumers (the NDJSON HTTP responses, the torture harness) can map
// names back without a private table of their own. The "kind(N)"
// rendering of an unknown kind does not parse: it exists to surface
// drift, not to round-trip it.
func ParseKind(s string) (Kind, bool) {
	for _, k := range Kinds() {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// Event is one phase-bus event: a boundary found in the stream, a
// prediction of the phase now beginning, or a phase's measured
// profile. Both pipelines speak it: the streaming detector emits
// boundaries and predictions as it cuts the stream; the offline
// predicted run synthesizes the same events from its phase markers,
// with the locality its cache simulator measured.
type Event struct {
	Kind Kind
	// Time is the logical time (data-access index) of the boundary,
	// or of the stream position when the event was emitted.
	Time int64
	// Instructions is the cumulative dynamic instruction count at
	// Time (for PhaseProfile: the phase's total instructions).
	Instructions int64
	// Phase is the ended phase's ID (BoundaryDetected), the predicted
	// next phase's ID (PhasePredicted), or the profiled phase's ID
	// (PhaseProfile). Negative IDs mark segments with no identified
	// phase (the offline run's unmarked prelude); consumers advance
	// their clocks on them but learn nothing.
	Phase int
	// Locality is the measured locality signature (miss rates at
	// 32KB..256KB) of the execution a boundary ends, or of the phase
	// a profile summarizes. Pipelines that do not measure locality
	// (the streaming detector) leave it zero.
	Locality cache.Vector
}

// Consumer is a run-time adaptation policy fed by the phase bus. One
// consumer instance belongs to one stream (session or offline run) and
// is never called concurrently. Consume errors are isolated per
// consumer by Chain; they never stop the stream.
//
// Snapshot must be deterministic — the same state always yields the
// same bytes — and Restore(Snapshot()) must reproduce the state
// exactly, so consumers ride the detector's WAL/checkpoint recovery
// with bit-identical replay.
type Consumer interface {
	// Name identifies the consumer in metrics and reports.
	Name() string
	Consume(Event) error
	Snapshot() []byte
	Restore([]byte) error
}

// Reporter is implemented by consumers that can summarize their
// accumulated adaptation decisions for humans.
type Reporter interface {
	Report() string
}
