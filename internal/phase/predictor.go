package phase

import (
	"fmt"

	"lpp/internal/cache"
	"lpp/internal/marker"
	"lpp/internal/predictor"
)

// PredictorConsumer wraps predictor.Predictor as a bus consumer: every
// boundary that ends an identified phase becomes one observed
// execution, and the predictor learns lengths and locality exactly as
// it does on the offline path.
//
// The offline path calls Begin when a phase starts and Complete when
// it ends; on the bus only the ending boundary is visible, so the
// consumer issues Begin immediately followed by Complete there. The
// two orderings are equivalent: between a phase's Begin and its
// Complete the offline path never touches that phase's history (phases
// do not nest), so deferring Begin to the ending boundary changes no
// prediction and no score.
type PredictorConsumer struct {
	policy predictor.Policy
	pred   *predictor.Predictor

	// inconsistent suppresses Begin for phases whose behavior the
	// offline detector found unstable, mirroring core.Predict's
	// PhaseConsistent gate. Configuration, not snapshotted state.
	inconsistent map[int]bool

	prevTime  int64
	prevInstr int64

	// predicted is the phase the bus announced as beginning the
	// current segment, or -1; it is scored against the phase the next
	// boundary reports as ended.
	predicted  int64
	predHits   int64
	predMisses int64
}

// NewPredictorConsumer returns a predictor consumer with the given
// policy.
func NewPredictorConsumer(policy predictor.Policy) *PredictorConsumer {
	return &PredictorConsumer{
		policy:       policy,
		pred:         predictor.New(policy),
		inconsistent: make(map[int]bool),
		predicted:    -1,
	}
}

// MarkInconsistent suppresses predictions for one phase, mirroring the
// offline pipeline's phase-consistency gate. Call before consuming.
func (c *PredictorConsumer) MarkInconsistent(phase int) { c.inconsistent[phase] = true }

// Predictor exposes the wrapped predictor for reports and tests.
func (c *PredictorConsumer) Predictor() *predictor.Predictor { return c.pred }

// NextPhaseHits returns how many bus-level next-phase announcements
// matched the phase that actually ran, and how many did not.
func (c *PredictorConsumer) NextPhaseHits() (hits, misses int64) {
	return c.predHits, c.predMisses
}

// Name implements Consumer.
func (c *PredictorConsumer) Name() string { return "predictor" }

// Consume implements Consumer.
func (c *PredictorConsumer) Consume(ev Event) error {
	switch ev.Kind {
	case BoundaryDetected:
		instrs := ev.Instructions - c.prevInstr
		accesses := ev.Time - c.prevTime
		c.prevInstr, c.prevTime = ev.Instructions, ev.Time
		if c.predicted >= 0 {
			if int(c.predicted) == ev.Phase {
				c.predHits++
			} else {
				c.predMisses++
			}
			c.predicted = -1
		}
		if ev.Phase < 0 {
			// Unidentified segment (offline prelude): the clock moved
			// but there is nothing to learn from.
			return nil
		}
		if !c.inconsistent[ev.Phase] {
			c.pred.Begin(marker.PhaseID(ev.Phase))
		}
		c.pred.Complete(predictor.Execution{
			Phase:        marker.PhaseID(ev.Phase),
			Instructions: instrs,
			Accesses:     accesses,
			Locality:     ev.Locality,
		})
	case PhasePredicted:
		c.predicted = int64(ev.Phase)
	case PhaseProfile:
		// Profiles restate what the boundaries already taught.
	}
	return nil
}

// WarmStart seeds the predictor's per-phase histories from knowledge a
// previous session of the same program learned, so a policy that needs
// repeated observations (Strict requires a phase's last two lengths to
// agree) can predict at the phase's first recurrence here instead of
// its third. Only histories transfer: the donor's pending predictions
// and scores are dropped, and this session's clock and score counters
// are kept, so accuracy and coverage still measure only what this
// session predicted. WarmStart refuses once this predictor has issued
// any prediction — knowledge arriving late must never overwrite
// predictions already being scored, and a consumer restored from a
// checkpoint past that point can therefore never be clobbered.
func (c *PredictorConsumer) WarmStart(st predictor.State) error {
	cur := c.pred.State()
	if cur.Predictions > 0 {
		return fmt.Errorf("phase: warm start refused after %d predictions", cur.Predictions)
	}
	st.Pending = nil
	st.Predictions, st.Correct = 0, 0
	st.CoveredInstrs = 0
	st.TotalInstrs = cur.TotalInstrs
	pred, err := predictor.NewFromState(c.policy, st)
	if err != nil {
		return fmt.Errorf("phase: warm start: %w", err)
	}
	c.pred = pred
	return nil
}

// Report implements Reporter.
func (c *PredictorConsumer) Report() string {
	return fmt.Sprintf("policy=%s predictions=%d accuracy=%.4f next-phase hits=%d misses=%d",
		c.policy, c.pred.Predictions(), c.pred.Accuracy(), c.predHits, c.predMisses)
}

const predictorSnapVersion = 1

// Snapshot implements Consumer.
func (c *PredictorConsumer) Snapshot() []byte {
	var e enc
	e.num(predictorSnapVersion)
	e.i64(c.prevTime)
	e.i64(c.prevInstr)
	e.i64(c.predicted)
	e.i64(c.predHits)
	e.i64(c.predMisses)
	st := c.pred.State()
	e.num(len(st.Phases))
	for _, ps := range st.Phases {
		e.i64(ps.ID)
		e.num(len(ps.Lengths))
		for _, l := range ps.Lengths {
			e.i64(l)
		}
		for _, v := range ps.Locality {
			encVector(&e, v)
		}
		e.i64(ps.InstrSum)
	}
	e.num(len(st.Pending))
	for _, ps := range st.Pending {
		e.i64(ps.ID)
		e.i64(ps.Instructions)
		encVector(&e, ps.Locality)
	}
	e.i64(st.Predictions)
	e.i64(st.Correct)
	e.i64(st.CoveredInstrs)
	e.i64(st.TotalInstrs)
	return e.buf
}

// Restore implements Consumer.
func (c *PredictorConsumer) Restore(data []byte) error {
	d := &dec{buf: data}
	if v := d.num(); d.err == nil && v != predictorSnapVersion {
		return fmt.Errorf("phase: unsupported predictor snapshot version %d", v)
	}
	prevTime := d.i64()
	prevInstr := d.i64()
	predicted := d.i64()
	predHits := d.i64()
	predMisses := d.i64()
	var st predictor.State
	nPhases := d.length(2)
	for i := 0; i < nPhases && d.err == nil; i++ {
		ps := predictor.PhaseState{ID: d.i64()}
		n := d.length(1)
		ps.Lengths = make([]int64, 0, n)
		for j := 0; j < n && d.err == nil; j++ {
			ps.Lengths = append(ps.Lengths, d.i64())
		}
		ps.Locality = make([]cache.Vector, 0, n)
		for j := 0; j < n && d.err == nil; j++ {
			ps.Locality = append(ps.Locality, decVector(d))
		}
		ps.InstrSum = d.i64()
		st.Phases = append(st.Phases, ps)
	}
	nPending := d.length(2)
	for i := 0; i < nPending && d.err == nil; i++ {
		st.Pending = append(st.Pending, predictor.PendingState{
			ID:           d.i64(),
			Instructions: d.i64(),
			Locality:     decVector(d),
		})
	}
	st.Predictions = d.i64()
	st.Correct = d.i64()
	st.CoveredInstrs = d.i64()
	st.TotalInstrs = d.i64()
	if err := d.done(); err != nil {
		return err
	}
	pred, err := predictor.NewFromState(c.policy, st)
	if err != nil {
		return err
	}
	c.pred = pred
	c.prevTime, c.prevInstr = prevTime, prevInstr
	c.predicted, c.predHits, c.predMisses = predicted, predHits, predMisses
	return nil
}

func encVector(e *enc, v cache.Vector) {
	for _, f := range v {
		e.f64(f)
	}
}

func decVector(d *dec) cache.Vector {
	var v cache.Vector
	for i := range v {
		v[i] = d.f64()
	}
	return v
}
