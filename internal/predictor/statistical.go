package predictor

import (
	"math"

	"lpp/internal/cache"
	"lpp/internal/marker"
)

// Statistical implements the prediction strategy the paper proposes
// for programs whose phase lengths are input-dependent ("Predictions
// based on statistics may be helpful for these programs", Section
// 3.1.2): instead of predicting an exact length, it predicts the
// distribution of each phase's behavior — mean and standard deviation
// of length, and mean locality — and scores a prediction correct when
// the actual execution falls inside the predicted interval. Unlike the
// Strict and Relaxed policies it is willing to predict phases flagged
// inconsistent, because an interval prediction cannot be "falsely
// exact".
type Statistical struct {
	// Sigmas is the half-width of the predicted interval in standard
	// deviations (default 2).
	Sigmas float64
	// Warmup is the number of executions observed before predicting
	// (default 3; a distribution needs more evidence than a value).
	Warmup int

	phases map[marker.PhaseID]*statHistory

	predictions   int64
	correct       int64
	coveredInstrs int64
	totalInstrs   int64
	pending       map[marker.PhaseID]StatPrediction
}

type statHistory struct {
	n          float64
	sum, sumSq float64
	locSum     cache.Vector
	instrSum   int64
}

// StatPrediction is an interval prediction for one phase execution.
type StatPrediction struct {
	// MeanInstructions and StdDev describe the predicted length
	// distribution; the predicted interval is Mean ± Sigmas·StdDev.
	MeanInstructions float64
	StdDev           float64
	// Locality is the mean locality vector of past executions.
	Locality cache.Vector
}

// Interval returns the predicted [lo, hi] length interval.
func (p StatPrediction) Interval(sigmas float64) (lo, hi float64) {
	w := sigmas * p.StdDev
	// A distribution estimated from few samples needs slack: allow
	// at least 10% of the mean.
	if min := 0.1 * p.MeanInstructions; w < min {
		w = min
	}
	return p.MeanInstructions - w, p.MeanInstructions + w
}

// NewStatistical returns a statistical predictor with defaults.
func NewStatistical() *Statistical {
	return &Statistical{
		Sigmas:  2,
		Warmup:  3,
		phases:  make(map[marker.PhaseID]*statHistory),
		pending: make(map[marker.PhaseID]StatPrediction),
	}
}

// Begin is called when a phase execution starts; it returns the
// distribution prediction if enough history exists.
func (s *Statistical) Begin(phase marker.PhaseID) (StatPrediction, bool) {
	h := s.phases[phase]
	if h == nil || int(h.n) < s.Warmup {
		return StatPrediction{}, false
	}
	mean := h.sum / h.n
	variance := h.sumSq/h.n - mean*mean
	if variance < 0 {
		variance = 0
	}
	var loc cache.Vector
	for d := range loc {
		loc[d] = h.locSum[d] / h.n
	}
	pred := StatPrediction{
		MeanInstructions: mean,
		StdDev:           math.Sqrt(variance),
		Locality:         loc,
	}
	s.pending[phase] = pred
	return pred, true
}

// Complete is called when a phase execution ends; it scores any
// outstanding prediction and folds the execution into the history.
func (s *Statistical) Complete(e Execution) {
	s.totalInstrs += e.Instructions
	if e.Partial {
		delete(s.pending, e.Phase)
		return
	}
	if pred, ok := s.pending[e.Phase]; ok {
		delete(s.pending, e.Phase)
		s.predictions++
		s.coveredInstrs += e.Instructions
		lo, hi := pred.Interval(s.Sigmas)
		if float64(e.Instructions) >= lo && float64(e.Instructions) <= hi {
			s.correct++
		}
	}
	h := s.phases[e.Phase]
	if h == nil {
		h = &statHistory{}
		s.phases[e.Phase] = h
	}
	l := float64(e.Instructions)
	h.n++
	h.sum += l
	h.sumSq += l * l
	for d := range h.locSum {
		h.locSum[d] += e.Locality[d]
	}
	h.instrSum += e.Instructions
}

// Accuracy returns the fraction of interval predictions that captured
// the actual length (1 if none were made).
func (s *Statistical) Accuracy() float64 {
	if s.predictions == 0 {
		return 1
	}
	return float64(s.correct) / float64(s.predictions)
}

// Coverage returns the fraction of observed instructions in predicted
// executions; totalRun overrides the denominator when positive.
func (s *Statistical) Coverage(totalRun int64) float64 {
	den := s.totalInstrs
	if totalRun > 0 {
		den = totalRun
	}
	if den == 0 {
		return 0
	}
	return float64(s.coveredInstrs) / float64(den)
}

// Predictions returns the number of interval predictions made.
func (s *Statistical) Predictions() int64 { return s.predictions }
