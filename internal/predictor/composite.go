package predictor

import "lpp/internal/regexphase"

// CompositeTrigger fires a callback once per execution of the largest
// composite phase — the "programmer-inserted directive, which must be
// executed once in each time step" that Ding and Kennedy's dynamic
// data packing needed and that Section 3.4 says this work set out to
// automate: "the largest composite phase in these four programs is the
// time step loop. Therefore, the phase prediction should help to fully
// automate dynamic data packing."
type CompositeTrigger struct {
	firstLeaf int
	valid     bool
	fires     int64
	cb        func(occurrence int64)
}

// NewCompositeTrigger builds a trigger from the phase hierarchy. The
// callback (may be nil) receives the 0-based occurrence count. If the
// hierarchy has no determined composite entry point, the trigger never
// fires and Valid reports false.
func NewCompositeTrigger(h regexphase.Expr, cb func(occurrence int64)) *CompositeTrigger {
	leaf, ok := regexphase.FirstLeafOfLargestComposite(h)
	return &CompositeTrigger{firstLeaf: leaf, valid: ok, cb: cb}
}

// Valid reports whether the hierarchy determines a composite entry.
func (c *CompositeTrigger) Valid() bool { return c.valid }

// Observe feeds the next leaf phase; it fires the callback when the
// phase begins a new composite execution.
func (c *CompositeTrigger) Observe(phase int) {
	if !c.valid || phase != c.firstLeaf {
		return
	}
	if c.cb != nil {
		c.cb(c.fires)
	}
	c.fires++
}

// Fires returns how many composite executions have begun.
func (c *CompositeTrigger) Fires() int64 { return c.fires }
