package predictor

import (
	"testing"

	"lpp/internal/regexphase"
)

func TestCompositeTriggerTimeSteps(t *testing.T) {
	// Tomcatv hierarchy: the trigger fires once per five-substep
	// time step.
	h := regexphase.Repeat{E: regexphase.Seq(0, 1, 2, 3, 4), Min: 1}
	var fired []int64
	c := NewCompositeTrigger(h, func(n int64) { fired = append(fired, n) })
	if !c.Valid() {
		t.Fatal("trigger should be valid")
	}
	for step := 0; step < 4; step++ {
		for ph := 0; ph < 5; ph++ {
			c.Observe(ph)
		}
	}
	if c.Fires() != 4 {
		t.Errorf("fires = %d, want 4", c.Fires())
	}
	for i, n := range fired {
		if n != int64(i) {
			t.Errorf("occurrence %d reported as %d", i, n)
		}
	}
}

func TestCompositeTriggerNestedHierarchy(t *testing.T) {
	// MolDyn hierarchy (0 (1 2)+)+: the largest composite body is
	// "0 (1 2)+", so the trigger fires at each neighbor-list rebuild
	// — exactly when dynamic data packing should reorganize.
	h, err := regexphase.Parse("(0 (1 2)+)+")
	if err != nil {
		t.Fatal(err)
	}
	c := NewCompositeTrigger(h, nil)
	seq := []int{0, 1, 2, 1, 2, 1, 2, 0, 1, 2, 1, 2}
	for _, ph := range seq {
		c.Observe(ph)
	}
	if c.Fires() != 2 {
		t.Errorf("fires = %d, want 2 (one per rebuild)", c.Fires())
	}
}

func TestCompositeTriggerPrefixedHierarchy(t *testing.T) {
	// "9 (1 2)+": initialization phase 9 is outside the composite.
	h, err := regexphase.Parse("9 (1 2)+")
	if err != nil {
		t.Fatal(err)
	}
	c := NewCompositeTrigger(h, nil)
	for _, ph := range []int{9, 1, 2, 1, 2, 1, 2} {
		c.Observe(ph)
	}
	if c.Fires() != 3 {
		t.Errorf("fires = %d, want 3", c.Fires())
	}
}

func TestCompositeTriggerAmbiguous(t *testing.T) {
	// (1 | 2)+: no determined first leaf — never fires, flags invalid.
	h := regexphase.Repeat{E: regexphase.Alt{Choices: []regexphase.Expr{
		regexphase.Lit{Sym: 1}, regexphase.Lit{Sym: 2}}}, Min: 1}
	c := NewCompositeTrigger(h, nil)
	if c.Valid() {
		t.Error("ambiguous hierarchy should be invalid")
	}
	c.Observe(1)
	if c.Fires() != 0 {
		t.Error("invalid trigger must not fire")
	}
}

func TestFirstLeafOfLargestComposite(t *testing.T) {
	cases := []struct {
		in   string
		leaf int
		ok   bool
	}{
		{"(0 1 2 3 4)+", 0, true},
		{"9 (1 2)+", 1, true},
		{"(0 (1 2)+)+", 0, true},
		{"7", 7, true},
	}
	for _, c := range cases {
		e, err := regexphase.Parse(c.in)
		if err != nil {
			t.Fatal(err)
		}
		leaf, ok := regexphase.FirstLeafOfLargestComposite(e)
		if ok != c.ok || (ok && leaf != c.leaf) {
			t.Errorf("%q: leaf=%d ok=%v, want %d %v", c.in, leaf, ok, c.leaf, c.ok)
		}
	}
}
