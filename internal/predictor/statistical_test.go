package predictor

import (
	"testing"

	"lpp/internal/stats"
)

func TestStatisticalWarmup(t *testing.T) {
	s := NewStatistical()
	for i := 0; i < 2; i++ {
		if _, ok := s.Begin(0); ok {
			t.Fatal("must not predict during warmup")
		}
		s.Complete(exec(0, 1000))
	}
	s.Complete(exec(0, 1000))
	if _, ok := s.Begin(0); !ok {
		t.Fatal("should predict after warmup")
	}
}

func TestStatisticalIntervalCapturesVariation(t *testing.T) {
	// Lengths drawn from a stable distribution: interval predictions
	// should capture nearly all executions even though exact
	// prediction would fail.
	s := NewStatistical()
	rng := stats.NewRNG(11)
	for i := 0; i < 200; i++ {
		length := int64(10000 + rng.Intn(2000) - 1000) // 10000 ± 1000
		s.Begin(0)
		s.Complete(exec(0, length))
	}
	if s.Predictions() == 0 {
		t.Fatal("no predictions made")
	}
	if s.Accuracy() < 0.9 {
		t.Errorf("interval accuracy = %.3f, want >= 0.9", s.Accuracy())
	}
	// A strict predictor on the same stream would be hopeless.
	p := New(Strict)
	correctStrict := 0.0
	rng = stats.NewRNG(11)
	for i := 0; i < 200; i++ {
		length := int64(10000 + rng.Intn(2000) - 1000)
		p.Begin(0)
		p.Complete(exec(0, length))
	}
	correctStrict = p.Accuracy()
	if p.Predictions() > 0 && correctStrict > 0.5 {
		t.Errorf("strict accuracy %.3f unexpectedly high on noisy lengths", correctStrict)
	}
}

func TestStatisticalIntervalBounds(t *testing.T) {
	p := StatPrediction{MeanInstructions: 1000, StdDev: 50}
	lo, hi := p.Interval(2)
	if lo != 900 || hi != 1100 {
		t.Errorf("interval = [%g, %g], want [900, 1100]", lo, hi)
	}
	// Tiny stddev still gets the 10% slack.
	p = StatPrediction{MeanInstructions: 1000, StdDev: 1}
	lo, hi = p.Interval(2)
	if lo != 900 || hi != 1100 {
		t.Errorf("slack interval = [%g, %g], want [900, 1100]", lo, hi)
	}
}

func TestStatisticalDistinguishesPhases(t *testing.T) {
	s := NewStatistical()
	for i := 0; i < 5; i++ {
		s.Complete(exec(0, 100))
		s.Complete(exec(1, 100000))
	}
	p0, ok0 := s.Begin(0)
	p1, ok1 := s.Begin(1)
	if !ok0 || !ok1 {
		t.Fatal("both phases should predict")
	}
	if p0.MeanInstructions >= p1.MeanInstructions {
		t.Error("phase histories mixed up")
	}
}

func TestStatisticalPartialNotScored(t *testing.T) {
	s := NewStatistical()
	for i := 0; i < 4; i++ {
		s.Complete(exec(0, 1000))
	}
	s.Begin(0)
	e := exec(0, 999999)
	e.Partial = true
	s.Complete(e)
	if s.Predictions() != 0 {
		t.Error("partial execution must not be scored")
	}
}

func TestStatisticalCoverage(t *testing.T) {
	s := NewStatistical()
	for i := 0; i < 3; i++ {
		s.Complete(exec(0, 1000)) // warmup: uncovered
	}
	s.Begin(0)
	s.Complete(exec(0, 1000)) // covered
	if got := s.Coverage(0); got != 0.25 {
		t.Errorf("coverage = %g, want 0.25", got)
	}
	if got := s.Coverage(8000); got != 0.125 {
		t.Errorf("coverage(8000) = %g, want 0.125", got)
	}
	if s.Accuracy() != 1 {
		t.Errorf("accuracy = %g", s.Accuracy())
	}
}

func TestStatisticalVacuousAccuracy(t *testing.T) {
	if NewStatistical().Accuracy() != 1 {
		t.Error("vacuous accuracy should be 1")
	}
}
