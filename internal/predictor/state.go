package predictor

import (
	"fmt"

	"lpp/internal/cache"
	"lpp/internal/marker"
)

// PhaseState is one phase's learned history in serializable form.
type PhaseState struct {
	ID       int64
	Lengths  []int64
	Locality []cache.Vector
	InstrSum int64
}

// PendingState is one outstanding (unscored) prediction.
type PendingState struct {
	ID           int64
	Instructions int64
	Locality     cache.Vector
}

// State is a Predictor's complete learned state, expressed with slices
// in ascending phase-ID order so the same predictor state always
// serializes to the same bytes. The policy and tolerance are not part
// of it: they are configuration, supplied again on restore.
type State struct {
	Phases  []PhaseState
	Pending []PendingState

	Predictions   int64
	Correct       int64
	CoveredInstrs int64
	TotalInstrs   int64
}

// State exports the predictor's learned histories and scores.
func (p *Predictor) State() State {
	st := State{
		Predictions:   p.predictions,
		Correct:       p.correct,
		CoveredInstrs: p.coveredInstrs,
		TotalInstrs:   p.totalInstrs,
	}
	for id, h := range p.phases {
		ps := PhaseState{
			ID:       int64(id),
			Lengths:  append([]int64(nil), h.lengths...),
			Locality: append([]cache.Vector(nil), h.locality...),
			InstrSum: h.instrSum,
		}
		st.Phases = append(st.Phases, ps)
	}
	sortByID(st.Phases, func(ps PhaseState) int64 { return ps.ID })
	for id, pred := range p.pending {
		st.Pending = append(st.Pending, PendingState{
			ID:           int64(id),
			Instructions: pred.Instructions,
			Locality:     pred.Locality,
		})
	}
	sortByID(st.Pending, func(ps PendingState) int64 { return ps.ID })
	return st
}

// NewFromState rebuilds a predictor from an exported State under the
// given policy. The state is validated structurally; on error no
// predictor is returned.
func NewFromState(policy Policy, st State) (*Predictor, error) {
	p := New(policy)
	for i, ps := range st.Phases {
		if i > 0 && st.Phases[i-1].ID >= ps.ID {
			return nil, fmt.Errorf("predictor: phase IDs not ascending at %d", i)
		}
		if len(ps.Lengths) != len(ps.Locality) {
			return nil, fmt.Errorf("predictor: phase %d has %d lengths but %d locality vectors",
				ps.ID, len(ps.Lengths), len(ps.Locality))
		}
		p.phases[marker.PhaseID(ps.ID)] = &history{
			lengths:  append([]int64(nil), ps.Lengths...),
			locality: append([]cache.Vector(nil), ps.Locality...),
			instrSum: ps.InstrSum,
		}
	}
	for i, ps := range st.Pending {
		if i > 0 && st.Pending[i-1].ID >= ps.ID {
			return nil, fmt.Errorf("predictor: pending IDs not ascending at %d", i)
		}
		p.pending[marker.PhaseID(ps.ID)] = Prediction{
			Instructions: ps.Instructions,
			Locality:     ps.Locality,
		}
	}
	if st.Predictions < 0 || st.Correct < 0 || st.Correct > st.Predictions {
		return nil, fmt.Errorf("predictor: inconsistent scores %d/%d", st.Correct, st.Predictions)
	}
	p.predictions = st.Predictions
	p.correct = st.Correct
	p.coveredInstrs = st.CoveredInstrs
	p.totalInstrs = st.TotalInstrs
	return p, nil
}

// sortByID sorts in place by an extracted int64 key.
func sortByID[T any](s []T, key func(T) int64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && key(s[j]) < key(s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
