package predictor

import "lpp/internal/regexphase"

// NextPhase predicts the identity of the next phase from the phase
// hierarchy: the regular expression compiles to a finite automaton
// (the "simple method" of Section 2.4), and whenever the current state
// has exactly one outgoing transition the next phase is known. The
// automaton re-synchronizes from the start state if the program
// deviates from the hierarchy.
type NextPhase struct {
	dfa   *regexphase.DFA
	state int

	predictions int64
	correct     int64
	resyncs     int64
}

// NewNextPhase compiles the hierarchy into a predictor automaton.
func NewNextPhase(h regexphase.Expr) *NextPhase {
	d := regexphase.Minimize(regexphase.Compile(h))
	return &NextPhase{dfa: d, state: d.Start}
}

// Predict returns the next expected phase ID, if the automaton's
// current state determines it uniquely.
func (n *NextPhase) Predict() (int, bool) {
	if n.state < 0 {
		return 0, false
	}
	next := -1
	count := 0
	for i, t := range n.dfa.Trans[n.state] {
		if t >= 0 {
			next = n.dfa.Alphabet[i]
			count++
		}
	}
	if count != 1 {
		return 0, false
	}
	return next, true
}

// Observe advances the automaton on the phase that actually began,
// scoring any outstanding prediction.
func (n *NextPhase) Observe(phase int) {
	if pred, ok := n.Predict(); ok {
		n.predictions++
		if pred == phase {
			n.correct++
		}
	}
	if n.state >= 0 {
		n.state = n.dfa.Step(n.state, phase)
	}
	if n.state < 0 {
		// Deviation from the hierarchy: re-synchronize.
		n.resyncs++
		n.state = n.dfa.Step(n.dfa.Start, phase)
	}
}

// Accuracy returns the fraction of next-phase predictions that were
// right (1 if none were made).
func (n *NextPhase) Accuracy() float64 {
	if n.predictions == 0 {
		return 1
	}
	return float64(n.correct) / float64(n.predictions)
}

// Predictions returns how many next-phase predictions were made.
func (n *NextPhase) Predictions() int64 { return n.predictions }

// Resyncs returns how many times the automaton lost track.
func (n *NextPhase) Resyncs() int64 { return n.resyncs }
