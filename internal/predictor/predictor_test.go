package predictor

import (
	"testing"

	"lpp/internal/cache"
	"lpp/internal/marker"
	"lpp/internal/regexphase"
)

func exec(ph marker.PhaseID, instrs int64) Execution {
	return Execution{Phase: ph, Instructions: instrs}
}

func TestStrictPredictsOnlyAfterExactRepeat(t *testing.T) {
	p := New(Strict)
	if _, ok := p.Begin(0); ok {
		t.Error("no history: must not predict")
	}
	p.Complete(exec(0, 1000))
	if _, ok := p.Begin(0); ok {
		t.Error("one execution: strict must not predict")
	}
	p.Complete(exec(0, 1000))
	pred, ok := p.Begin(0)
	if !ok || pred.Instructions != 1000 {
		t.Fatalf("after exact repeat: pred=%v ok=%v", pred, ok)
	}
	p.Complete(exec(0, 1000))
	if p.Accuracy() != 1 {
		t.Errorf("accuracy = %g, want 1", p.Accuracy())
	}
}

func TestStrictDeclinesOnVaryingLengths(t *testing.T) {
	p := New(Strict)
	p.Complete(exec(0, 100))
	p.Complete(exec(0, 200))
	if _, ok := p.Begin(0); ok {
		t.Error("varying lengths: strict must decline")
	}
	// Coverage reflects the declines.
	if p.Coverage(0) != 0 {
		t.Errorf("coverage = %g, want 0", p.Coverage(0))
	}
}

func TestRelaxedPredictsFromLastExecution(t *testing.T) {
	p := New(Relaxed)
	p.Complete(exec(3, 5000))
	pred, ok := p.Begin(3)
	if !ok || pred.Instructions != 5000 {
		t.Fatalf("pred=%v ok=%v", pred, ok)
	}
	p.Complete(exec(3, 5001)) // within 0.1%
	if p.Accuracy() != 1 {
		t.Errorf("accuracy = %g, want 1 (within tolerance)", p.Accuracy())
	}
	_, _ = p.Begin(3)
	p.Complete(exec(3, 9000)) // far off
	if p.Accuracy() != 0.5 {
		t.Errorf("accuracy = %g, want 0.5", p.Accuracy())
	}
}

func TestCoverageAccounting(t *testing.T) {
	p := New(Relaxed)
	p.Complete(exec(0, 100)) // unpredicted
	_, _ = p.Begin(0)
	p.Complete(exec(0, 100)) // predicted
	if got := p.Coverage(0); got != 0.5 {
		t.Errorf("coverage = %g, want 0.5", got)
	}
	// With an external total (prelude included).
	if got := p.Coverage(400); got != 0.25 {
		t.Errorf("coverage(400) = %g, want 0.25", got)
	}
	if p.Predictions() != 1 {
		t.Errorf("predictions = %d", p.Predictions())
	}
}

func TestTwoPhasesIndependentHistories(t *testing.T) {
	p := New(Strict)
	for i := 0; i < 3; i++ {
		p.Complete(exec(0, 111))
		p.Complete(exec(1, 222))
	}
	pr0, ok0 := p.Begin(0)
	pr1, ok1 := p.Begin(1)
	if !ok0 || !ok1 || pr0.Instructions != 111 || pr1.Instructions != 222 {
		t.Fatalf("independent histories broken: %v %v", pr0, pr1)
	}
}

func TestPhaseLocalityAndWeights(t *testing.T) {
	p := New(Relaxed)
	v1 := cache.Vector{0.1, 0.05}
	v2 := cache.Vector{0.1, 0.05}
	p.Complete(Execution{Phase: 0, Instructions: 10, Locality: v1})
	p.Complete(Execution{Phase: 0, Instructions: 10, Locality: v2})
	locs := p.PhaseLocality()
	if len(locs[0]) != 2 {
		t.Fatalf("locality history = %v", locs)
	}
	if w := p.PhaseWeights()[0]; w != 20 {
		t.Errorf("weight = %d, want 20", w)
	}
	if ls := p.PhaseLengths()[0]; len(ls) != 2 || ls[0] != 10 {
		t.Errorf("lengths = %v", ls)
	}
}

func TestAccuracyWithNoPredictions(t *testing.T) {
	p := New(Strict)
	if p.Accuracy() != 1 {
		t.Error("vacuous accuracy should be 1")
	}
}

func TestNextPhaseCycles(t *testing.T) {
	// Hierarchy (1 2 3)+: after seeing 1, the next phases are
	// determined.
	n := NewNextPhase(regexphase.Repeat{E: regexphase.Seq(1, 2, 3), Min: 1})
	seq := []int{1, 2, 3, 1, 2, 3, 1, 2, 3}
	for _, ph := range seq {
		n.Observe(ph)
	}
	if n.Accuracy() != 1 {
		t.Errorf("accuracy = %g, want 1 (predictions=%d)", n.Accuracy(), n.Predictions())
	}
	if n.Predictions() < 6 {
		t.Errorf("predictions = %d, want >= 6", n.Predictions())
	}
	if n.Resyncs() != 0 {
		t.Errorf("resyncs = %d, want 0", n.Resyncs())
	}
}

func TestNextPhaseResync(t *testing.T) {
	n := NewNextPhase(regexphase.Repeat{E: regexphase.Seq(1, 2), Min: 1})
	n.Observe(1)
	n.Observe(2)
	n.Observe(9) // deviation
	if n.Resyncs() == 0 {
		t.Error("expected a resync after deviation")
	}
	// It should recover on the next well-formed steps.
	n.Observe(1)
	n.Observe(2)
	if n.Predictions() == 0 {
		t.Error("expected predictions after recovery")
	}
}

func TestNextPhaseAmbiguousDeclines(t *testing.T) {
	// (1 | 2)+: the next phase is never determined.
	h := regexphase.Repeat{E: regexphase.Alt{Choices: []regexphase.Expr{
		regexphase.Lit{Sym: 1}, regexphase.Lit{Sym: 2}}}, Min: 1}
	n := NewNextPhase(h)
	for _, ph := range []int{1, 2, 2, 1} {
		n.Observe(ph)
	}
	if n.Predictions() != 0 {
		t.Errorf("ambiguous hierarchy made %d predictions", n.Predictions())
	}
	if n.Accuracy() != 1 {
		t.Error("vacuous accuracy should be 1")
	}
}
