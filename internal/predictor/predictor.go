// Package predictor implements the run-time side of locality phase
// prediction (Section 2.4 and 3.1): once markers are in place, the
// program uses the first few executions of each phase to predict the
// length and locality of all its later executions. Two policies mirror
// the paper's Table 2: Strict predicts only when the phase has
// repeated exactly, so predictions are (nearly) always right but
// coverage suffers; Relaxed predicts from the most recent execution,
// trading a little accuracy for near-full coverage.
package predictor

import (
	"lpp/internal/cache"
	"lpp/internal/marker"
)

// Policy selects the prediction discipline of Table 2.
type Policy int

// Policies.
const (
	// Strict requires phase behavior to repeat exactly, including
	// its length, before predicting.
	Strict Policy = iota
	// Relaxed predicts from the previous execution as soon as one
	// exists.
	Relaxed
)

// String returns the policy name.
func (p Policy) String() string {
	if p == Strict {
		return "strict"
	}
	return "relaxed"
}

// Prediction is what the predictor announces when a phase begins.
type Prediction struct {
	// Instructions is the predicted execution length.
	Instructions int64
	// Locality is the predicted locality vector (miss rates at
	// 32KB..256KB).
	Locality cache.Vector
}

// Execution is one observed phase execution.
type Execution struct {
	Phase        marker.PhaseID
	Instructions int64
	Accesses     int64
	Locality     cache.Vector
	// Partial marks an execution cut off by the end of the program
	// rather than by the next marker (it includes teardown code, so
	// it is recorded but neither scored nor learned from).
	Partial bool
}

// history is what the predictor remembers about one phase.
type history struct {
	lengths  []int64
	locality []cache.Vector
	instrSum int64
}

// Predictor learns phase behavior on line and scores its predictions.
type Predictor struct {
	policy Policy
	// tolerance is the relative length error accepted as correct
	// under Relaxed (Strict uses exact equality).
	tolerance float64

	phases map[marker.PhaseID]*history

	pending map[marker.PhaseID]Prediction

	predictions   int64
	correct       int64
	coveredInstrs int64
	totalInstrs   int64
}

// New returns a Predictor with the given policy. A zero tolerance
// defaults to 0.1% relative error for Relaxed ("accurate to at least
// three significant digits").
func New(policy Policy) *Predictor {
	return &Predictor{
		policy:    policy,
		tolerance: 0.001,
		phases:    make(map[marker.PhaseID]*history),
		pending:   make(map[marker.PhaseID]Prediction),
	}
}

// Begin is called when a phase execution starts. It returns the
// prediction for this execution and whether one was made.
func (p *Predictor) Begin(phase marker.PhaseID) (Prediction, bool) {
	h := p.phases[phase]
	if h == nil {
		return Prediction{}, false
	}
	var pred Prediction
	switch p.policy {
	case Strict:
		// Predict only once the behavior has repeated exactly.
		n := len(h.lengths)
		if n < 2 || h.lengths[n-1] != h.lengths[n-2] {
			return Prediction{}, false
		}
		pred = Prediction{Instructions: h.lengths[n-1], Locality: h.locality[n-1]}
	case Relaxed:
		n := len(h.lengths)
		if n < 1 {
			return Prediction{}, false
		}
		pred = Prediction{Instructions: h.lengths[n-1], Locality: h.locality[n-1]}
	}
	p.pending[phase] = pred
	return pred, true
}

// Complete is called when a phase execution ends with its observed
// behavior. It scores any outstanding prediction and folds the
// execution into the phase's history.
func (p *Predictor) Complete(e Execution) {
	p.totalInstrs += e.Instructions
	if e.Partial {
		// Truncated by program exit: the observed length includes
		// teardown, so neither score the outstanding prediction nor
		// learn from it.
		delete(p.pending, e.Phase)
		return
	}
	if pred, ok := p.pending[e.Phase]; ok {
		delete(p.pending, e.Phase)
		p.predictions++
		p.coveredInstrs += e.Instructions
		if p.lengthCorrect(pred.Instructions, e.Instructions) {
			p.correct++
		}
	}
	h := p.phases[e.Phase]
	if h == nil {
		h = &history{}
		p.phases[e.Phase] = h
	}
	h.lengths = append(h.lengths, e.Instructions)
	h.locality = append(h.locality, e.Locality)
	h.instrSum += e.Instructions
}

func (p *Predictor) lengthCorrect(pred, actual int64) bool {
	if p.policy == Strict {
		return pred == actual
	}
	diff := pred - actual
	if diff < 0 {
		diff = -diff
	}
	return float64(diff) <= p.tolerance*float64(actual)
}

// Accuracy returns the fraction of predictions whose length was
// correct (exact under Strict, within tolerance under Relaxed).
func (p *Predictor) Accuracy() float64 {
	if p.predictions == 0 {
		return 1
	}
	return float64(p.correct) / float64(p.predictions)
}

// Coverage returns the fraction of observed execution time spent in
// predicted phase executions. If totalRun is positive it is used as
// the denominator (so unmarked preludes count against coverage).
func (p *Predictor) Coverage(totalRun int64) float64 {
	den := p.totalInstrs
	if totalRun > 0 {
		den = totalRun
	}
	if den == 0 {
		return 0
	}
	return float64(p.coveredInstrs) / float64(den)
}

// Predictions returns the number of predictions made.
func (p *Predictor) Predictions() int64 { return p.predictions }

// Policy returns the prediction discipline this predictor runs under.
func (p *Predictor) Policy() Policy { return p.policy }

// PhaseLocality returns, for every phase, the locality vectors of all
// its executions — the input to the Table 4 variance comparison.
func (p *Predictor) PhaseLocality() map[marker.PhaseID][]cache.Vector {
	out := make(map[marker.PhaseID][]cache.Vector, len(p.phases))
	for id, h := range p.phases {
		vs := make([]cache.Vector, len(h.locality))
		copy(vs, h.locality)
		out[id] = vs
	}
	return out
}

// PhaseWeights returns each phase's total observed instructions, used
// to weight per-phase statistics.
func (p *Predictor) PhaseWeights() map[marker.PhaseID]int64 {
	out := make(map[marker.PhaseID]int64, len(p.phases))
	for id, h := range p.phases {
		out[id] = h.instrSum
	}
	return out
}

// PhaseLengths returns each phase's execution lengths in order.
func (p *Predictor) PhaseLengths() map[marker.PhaseID][]int64 {
	out := make(map[marker.PhaseID][]int64, len(p.phases))
	for id, h := range p.phases {
		ls := make([]int64, len(h.lengths))
		copy(ls, h.lengths)
		out[id] = ls
	}
	return out
}
