// Package cluster scales lppserve horizontally: a deterministic
// consistent-hash ring places every session on one of N nodes, a
// health-gated router forwards chunks to the owner (riding the
// seq-numbered idempotency protocol across failover), and live
// migration moves a session between nodes through its LPPCKPT1
// checkpoint image.
//
// Phase behavior is a per-program, per-run property (Locality phase
// prediction, ASPLOS 2004), so sessions are independent and shard
// cleanly: no cross-session state means placement is pure hashing and
// migration is one image, not a distributed transaction.
package cluster

import (
	"fmt"
	"sort"
)

// DefaultVnodes is the virtual-node count per member: enough that the
// max/min load ratio stays modest at small N without making ring
// lookups expensive.
const DefaultVnodes = 128

// Ring is a consistent-hash ring with virtual nodes. Placement is
// deterministic across process restarts: it depends only on the member
// names and the vnode count, never on insertion order or clock.
// A Ring is immutable after New — rebalancing builds a new Ring — so
// lookups need no locking.
type Ring struct {
	nodes  []string
	vnodes int
	// points are the vnode hashes, sorted; owners[i] names the member
	// owning points[i].
	points []uint64
	owners []string
}

// ringHash is FNV-1a (the same family the server's session shards
// use) pushed through a 64-bit avalanche finisher. Raw FNV correlates
// on the near-identical "node#0", "node#1", ... vnode labels, which
// bunches points and skews the load split; the final mix decorrelates
// them.
func ringHash(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// New builds a ring over the given member names (typically advertised
// base URLs) with vnodes virtual nodes each (<=0 means DefaultVnodes).
// Duplicate and empty names are rejected.
func New(nodes []string, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	seen := make(map[string]bool, len(nodes))
	sorted := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node name")
		}
		if seen[n] {
			return nil, fmt.Errorf("cluster: duplicate node %q", n)
		}
		seen[n] = true
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	r := &Ring{
		nodes:  sorted,
		vnodes: vnodes,
		points: make([]uint64, 0, len(sorted)*vnodes),
		owners: make([]string, 0, len(sorted)*vnodes),
	}
	type point struct {
		hash  uint64
		owner string
	}
	pts := make([]point, 0, len(sorted)*vnodes)
	for _, n := range sorted {
		for v := 0; v < vnodes; v++ {
			pts = append(pts, point{hash: ringHash(fmt.Sprintf("%s#%d", n, v)), owner: n})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].hash != pts[j].hash {
			return pts[i].hash < pts[j].hash
		}
		// Hash ties (vanishingly rare) break by name so the ring is
		// still deterministic.
		return pts[i].owner < pts[j].owner
	})
	for _, p := range pts {
		r.points = append(r.points, p.hash)
		r.owners = append(r.owners, p.owner)
	}
	return r, nil
}

// Nodes returns the ring's members, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Owner returns the node owning key: the first vnode point at or after
// the key's hash, wrapping at the top of the ring.
func (r *Ring) Owner(key string) string {
	i := r.search(ringHash(key))
	return r.owners[i]
}

// OwnerWith returns the node owning key among the members for which
// alive returns true, walking the ring past dead owners (each distinct
// node considered once, in ring order). It returns "" when every node
// is dead. A nil alive means everyone is alive.
func (r *Ring) OwnerWith(key string, alive func(node string) bool) string {
	if alive == nil {
		return r.Owner(key)
	}
	start := r.search(ringHash(key))
	tried := make(map[string]bool, len(r.nodes))
	for i := 0; i < len(r.points) && len(tried) < len(r.nodes); i++ {
		owner := r.owners[(start+i)%len(r.points)]
		if tried[owner] {
			continue
		}
		tried[owner] = true
		if alive(owner) {
			return owner
		}
	}
	return ""
}

// search returns the index of the first point >= h, wrapping to 0.
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}
