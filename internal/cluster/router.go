package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"lpp/internal/httpx"
)

// maxRouteBody caps the buffered request body. The router must buffer
// (a forward can be retried against a different node), so an unbounded
// body would let one client hold the router's memory hostage.
const maxRouteBody = 64 << 20

// routeAttempts bounds one request's forwarding loop across node
// deaths, ownership hops, and migration holds.
const routeAttempts = 10

// Router is the cluster's single client-facing address: an
// http.Handler that places each session on the ring, forwards the
// request to the owning node, and absorbs the cluster's churn so
// clients never re-point themselves. Specifically it
//
//   - re-resolves ownership when a node dies (health-gated ring walk),
//     so the next chunk lands on the fallback owner and the session's
//     seq protocol — the 409 X-Lpp-Want-Seq rewind — tells the client
//     exactly where to resume;
//   - follows 421 X-Lpp-Owner answers (a session that migrated away)
//     and pins the session to its new home;
//   - holds requests that hit a mid-migration 503, waiting out the
//     server's retry hint instead of bouncing the failure to the
//     client.
//
// Everything else — 409 gaps, 429 backpressure, 4xx errors — passes
// through untouched: those statuses pace the client, and hiding them
// would break the ingest protocol.
type Router struct {
	ring   *Ring
	health *Health
	client *http.Client

	// pins maps session id → owner base URL learned from 421 answers
	// and completed migrations; it overrides ring placement until the
	// pinned node dies.
	pins sync.Map
}

// NewRouter builds a router over the ring, consulting health for
// liveness. A nil client gets a default with a generous timeout (a
// detector chunk on a loaded node can take a while).
func NewRouter(ring *Ring, health *Health, client *http.Client) *Router {
	if client == nil {
		client = &http.Client{Timeout: 60 * time.Second}
	}
	return &Router{ring: ring, health: health, client: client}
}

// Pin records that session id lives on owner (used by the migration
// orchestrator so the very next chunk goes to the new home without an
// extra 421 hop).
func (rt *Router) Pin(id, owner string) { rt.pins.Store(id, owner) }

// Owner resolves where session id currently routes.
func (rt *Router) Owner(id string) string {
	if v, ok := rt.pins.Load(id); ok {
		owner := v.(string)
		if rt.health.Alive(owner) {
			return owner
		}
		rt.pins.Delete(id)
	}
	return rt.ring.OwnerWith(id, rt.health.Alive)
}

func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/v1/cluster/status" && r.Method == http.MethodGet:
		rt.handleStatus(w)
	case r.URL.Path == "/v1/cluster/migrate" && r.Method == http.MethodPost:
		rt.handleMigrate(w, r)
	case r.URL.Path == "/v1/sessions" && r.Method == http.MethodGet:
		rt.handleListing(w)
	case strings.HasPrefix(r.URL.Path, "/v1/sessions/"):
		rt.forward(w, r)
	case r.URL.Path == "/healthz":
		w.WriteHeader(http.StatusOK)
	case r.URL.Path == "/readyz":
		rt.handleReady(w)
	default:
		http.NotFound(w, r)
	}
}

// sessionID extracts the session from /v1/sessions/{id}[/...].
func sessionID(path string) string {
	rest := strings.TrimPrefix(path, "/v1/sessions/")
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

// forward proxies one session request to its owning node, riding out
// node death, migration holds, and ownership hops.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request) {
	id := sessionID(r.URL.Path)
	if id == "" {
		http.Error(w, "missing session id", http.StatusBadRequest)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRouteBody+1))
	if err != nil {
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(body) > maxRouteBody {
		http.Error(w, "body too large for router", http.StatusRequestEntityTooLarge)
		return
	}

	bo := httpx.Backoff{Min: 10 * time.Millisecond, Max: 500 * time.Millisecond}
	target := "" // explicit owner from a 421; empty means resolve
	for attempt := 0; attempt < routeAttempts; attempt++ {
		owner := target
		if owner == "" {
			owner = rt.Owner(id)
		}
		if owner == "" {
			http.Error(w, "no cluster node available", http.StatusServiceUnavailable)
			return
		}
		resp, err := rt.send(r, owner, body)
		if err != nil {
			// The owner is unreachable: mark it down and re-resolve. The
			// fallback owner's seq state may trail the client's — the 409
			// rewind protocol covers the gap.
			rt.health.MarkDown(owner)
			target = ""
			bo.Sleep(nil)
			continue
		}
		switch {
		case resp.StatusCode == http.StatusMisdirectedRequest:
			// The session moved; its old home says where.
			newOwner := resp.Header.Get("X-Lpp-Owner")
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if newOwner == "" || newOwner == owner {
				http.Error(w, "session not owned here and no forwarding owner", http.StatusBadGateway)
				return
			}
			rt.Pin(id, newOwner)
			target = newOwner
			continue
		case resp.StatusCode == http.StatusServiceUnavailable && httpx.RetryAfter(resp.Header, 2*time.Second) > 0:
			// Mid-migration (or draining) hold: wait the server's hint and
			// try again so the client never sees the handoff.
			hint := httpx.RetryAfter(resp.Header, 2*time.Second)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			time.Sleep(hint)
			target = ""
			continue
		default:
			copyResponse(w, resp)
			return
		}
	}
	http.Error(w, "routing failed: cluster unstable after retries", http.StatusBadGateway)
}

// send issues the forwarded request to owner.
func (rt *Router) send(r *http.Request, owner string, body []byte) (*http.Response, error) {
	req, err := http.NewRequest(r.Method, owner+r.URL.RequestURI(), strings.NewReader(string(body)))
	if err != nil {
		return nil, err
	}
	for _, h := range []string{"Content-Type", "X-Lpp-Seq", "Accept"} {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	return rt.client.Do(req)
}

// copyResponse relays the node's answer verbatim.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// handleListing merges GET /v1/sessions from every live node into one
// cluster-wide inventory.
func (rt *Router) handleListing(w http.ResponseWriter) {
	type nodeListing struct {
		Node     string          `json:"node"`
		Sessions json.RawMessage `json:"sessions"`
		Error    string          `json:"error,omitempty"`
	}
	var out []nodeListing
	for _, node := range rt.ring.Nodes() {
		if !rt.health.Alive(node) {
			out = append(out, nodeListing{Node: node, Error: "down"})
			continue
		}
		resp, err := rt.client.Get(node + "/v1/sessions")
		if err != nil {
			rt.health.MarkDown(node)
			out = append(out, nodeListing{Node: node, Error: err.Error()})
			continue
		}
		var body struct {
			Sessions json.RawMessage `json:"sessions"`
		}
		derr := json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if derr != nil || resp.StatusCode != http.StatusOK {
			out = append(out, nodeListing{Node: node, Error: fmt.Sprintf("status %d", resp.StatusCode)})
			continue
		}
		out = append(out, nodeListing{Node: node, Sessions: body.Sessions})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"nodes": out})
}

// handleStatus reports ring membership and liveness.
func (rt *Router) handleStatus(w http.ResponseWriter) {
	type nodeStatus struct {
		URL   string `json:"url"`
		Alive bool   `json:"alive"`
	}
	live := rt.health.Snapshot()
	var nodes []nodeStatus
	for _, n := range rt.ring.Nodes() {
		nodes = append(nodes, nodeStatus{URL: n, Alive: live[n]})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"nodes":  nodes,
		"vnodes": rt.ring.vnodes,
	})
}

// handleReady answers 200 while at least one node can take traffic.
func (rt *Router) handleReady(w http.ResponseWriter) {
	for _, n := range rt.ring.Nodes() {
		if rt.health.Alive(n) {
			w.WriteHeader(http.StatusOK)
			return
		}
	}
	http.Error(w, "no live nodes", http.StatusServiceUnavailable)
}

// handleMigrate drains one session to an explicit target node:
// POST /v1/cluster/migrate?session=ID&target=URL.
func (rt *Router) handleMigrate(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("session")
	target := r.URL.Query().Get("target")
	if id == "" || target == "" {
		http.Error(w, "need session and target query parameters", http.StatusBadRequest)
		return
	}
	found := false
	for _, n := range rt.ring.Nodes() {
		if n == target {
			found = true
			break
		}
	}
	if !found {
		http.Error(w, "target is not a cluster member", http.StatusBadRequest)
		return
	}
	source := rt.Owner(id)
	if source == "" {
		http.Error(w, "no cluster node available", http.StatusServiceUnavailable)
		return
	}
	if source == target {
		http.Error(w, "session already on target", http.StatusConflict)
		return
	}
	rep, err := Migrate(rt.client, id, source, target)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	// Pin before answering: the next forwarded chunk goes straight to
	// the new home instead of paying a 421 hop.
	rt.Pin(id, target)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(rep)
}
