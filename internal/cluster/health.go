package cluster

import (
	"net/http"
	"sync"
	"time"
)

// Health tracks per-node liveness by polling each member's /readyz.
// The router consults it through Alive so chunks stop routing to a
// node the moment a poll (or a failed forward, via MarkDown) says it
// is gone, rather than waiting out a full client timeout per request.
type Health struct {
	client   *http.Client
	interval time.Duration

	mu    sync.Mutex
	state map[string]bool

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewHealth starts a poller over the given node base URLs. Nodes start
// alive (optimistic: the first real failure marks them down) and are
// re-probed every interval (<=0 means 500ms).
func NewHealth(nodes []string, client *http.Client, interval time.Duration) *Health {
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Second}
	}
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	h := &Health{
		client:   client,
		interval: interval,
		state:    make(map[string]bool, len(nodes)),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, n := range nodes {
		h.state[n] = true
	}
	go h.loop()
	return h
}

// Alive reports whether node passed its last /readyz probe. Unknown
// nodes are dead: the ring never routes to a node health isn't
// watching.
func (h *Health) Alive(node string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state[node]
}

// MarkDown records an observed failure (e.g. a connection refused on a
// forward) without waiting for the next poll. The poller revives the
// node when /readyz answers again.
func (h *Health) MarkDown(node string) {
	h.mu.Lock()
	if _, ok := h.state[node]; ok {
		h.state[node] = false
	}
	h.mu.Unlock()
}

// Snapshot returns the current liveness map (copy).
func (h *Health) Snapshot() map[string]bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]bool, len(h.state))
	for n, up := range h.state {
		out[n] = up
	}
	return out
}

// Close stops the poller.
func (h *Health) Close() {
	h.once.Do(func() { close(h.stop) })
	<-h.done
}

func (h *Health) loop() {
	defer close(h.done)
	t := time.NewTicker(h.interval)
	defer t.Stop()
	h.pollAll()
	for {
		select {
		case <-h.stop:
			return
		case <-t.C:
			h.pollAll()
		}
	}
}

func (h *Health) pollAll() {
	h.mu.Lock()
	nodes := make([]string, 0, len(h.state))
	for n := range h.state {
		nodes = append(nodes, n)
	}
	h.mu.Unlock()
	for _, n := range nodes {
		up := h.probe(n)
		h.mu.Lock()
		h.state[n] = up
		h.mu.Unlock()
	}
}

// probe asks node's /readyz; only a 200 counts. /readyz (not /healthz)
// is the gate so a standby that is up but not serving ingest stays out
// of the ring.
func (h *Health) probe(node string) bool {
	resp, err := h.client.Get(node + "/readyz")
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
