package cluster

import (
	"fmt"
	"testing"
)

func sessionKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("session-%04d", i)
	}
	return keys
}

// Placement must be a pure function of membership — same nodes, same
// vnode count, same answers — regardless of the order members were
// listed or which process builds the ring. This is what lets every
// router replica (and a restarted one) agree on ownership with no
// coordination.
func TestRingPlacementDeterministic(t *testing.T) {
	nodes := []string{"http://node-a", "http://node-b", "http://node-c"}
	shuffled := []string{"http://node-c", "http://node-a", "http://node-b"}
	r1, err := New(nodes, 64)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := New(shuffled, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range sessionKeys(500) {
		if r1.Owner(key) != r2.Owner(key) {
			t.Fatalf("key %q: placement depends on membership order (%s vs %s)",
				key, r1.Owner(key), r2.Owner(key))
		}
	}
	// Spot-check absolute placements so a future hash change (which
	// would silently reshuffle every deployed cluster) fails loudly.
	for key, want := range map[string]string{
		"session-0000": r1.Owner("session-0000"),
	} {
		r3, _ := New(nodes, 64)
		if got := r3.Owner(key); got != want {
			t.Fatalf("key %q moved between identical rings: %s vs %s", key, got, want)
		}
	}
}

// With virtual nodes the load split must stay within a modest
// max/min ratio: a raw 3-point ring can easily go 10:1.
func TestRingBalanceBounds(t *testing.T) {
	nodes := []string{"http://node-a", "http://node-b", "http://node-c"}
	r, err := New(nodes, DefaultVnodes)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	keys := sessionKeys(3000)
	for _, key := range keys {
		counts[r.Owner(key)]++
	}
	min, max := len(keys), 0
	for _, n := range nodes {
		c := counts[n]
		if c == 0 {
			t.Fatalf("node %s owns no sessions: %v", n, counts)
		}
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if ratio := float64(max) / float64(min); ratio > 1.6 {
		t.Fatalf("max/min sessions-per-node ratio %.2f exceeds 1.6: %v", ratio, counts)
	}
}

// Adding or removing one member must move only ≈1/N of the keys — the
// consistent-hashing contract. A modulo placement would move (N-1)/N.
func TestRingMinimalMovementOnRebalance(t *testing.T) {
	three := []string{"http://node-a", "http://node-b", "http://node-c"}
	four := append([]string{"http://node-d"}, three...)
	r3, err := New(three, DefaultVnodes)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := New(four, DefaultVnodes)
	if err != nil {
		t.Fatal(err)
	}
	keys := sessionKeys(4000)

	// Join: keys may move only onto the new node, and about 1/4 of them.
	moved := 0
	for _, key := range keys {
		before, after := r3.Owner(key), r4.Owner(key)
		if before != after {
			moved++
			if after != "http://node-d" {
				t.Fatalf("key %q moved %s → %s on join, not onto the new node", key, before, after)
			}
		}
	}
	frac := float64(moved) / float64(len(keys))
	if frac < 0.15 || frac > 0.35 {
		t.Fatalf("join moved %.1f%% of keys, want ≈25%%", frac*100)
	}

	// Leave is the mirror image: only the departed node's keys move.
	moved = 0
	for _, key := range keys {
		before, after := r4.Owner(key), r3.Owner(key)
		if before != after {
			moved++
			if before != "http://node-d" {
				t.Fatalf("key %q moved %s → %s on leave but wasn't on the leaver", key, before, after)
			}
		}
	}
	frac = float64(moved) / float64(len(keys))
	if frac < 0.15 || frac > 0.35 {
		t.Fatalf("leave moved %.1f%% of keys, want ≈25%%", frac*100)
	}
}

// OwnerWith walks the ring past dead nodes deterministically and
// reports nobody home when the whole cluster is down.
func TestRingOwnerWithFailover(t *testing.T) {
	nodes := []string{"http://node-a", "http://node-b", "http://node-c"}
	r, err := New(nodes, DefaultVnodes)
	if err != nil {
		t.Fatal(err)
	}
	keys := sessionKeys(200)
	for _, key := range keys {
		if got := r.OwnerWith(key, nil); got != r.Owner(key) {
			t.Fatalf("nil alive predicate changed placement for %q", key)
		}
	}
	dead := r.Owner("session-0000")
	alive := func(n string) bool { return n != dead }
	for _, key := range keys {
		got := r.OwnerWith(key, alive)
		if got == dead {
			t.Fatalf("key %q routed to the dead node", key)
		}
		if r.Owner(key) != dead && got != r.Owner(key) {
			t.Fatalf("key %q not on the dead node moved anyway: %s → %s", key, r.Owner(key), got)
		}
	}
	if got := r.OwnerWith("session-0000", func(string) bool { return false }); got != "" {
		t.Fatalf("all-dead cluster still placed on %q", got)
	}
}

func TestRingRejectsBadMembership(t *testing.T) {
	if _, err := New(nil, 8); err == nil {
		t.Fatal("empty membership accepted")
	}
	if _, err := New([]string{"a", "a"}, 8); err == nil {
		t.Fatal("duplicate member accepted")
	}
	if _, err := New([]string{"a", ""}, 8); err == nil {
		t.Fatal("empty member name accepted")
	}
}
