package cluster

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"time"
)

// MigrationReport is what one live migration cost: the image that
// moved and how long the session was unable to accept ingest (export
// start to import done — after that the target serves while the source
// finishes bookkeeping).
type MigrationReport struct {
	Session    string  `json:"session"`
	Source     string  `json:"source"`
	Target     string  `json:"target"`
	Seq        uint64  `json:"seq"`
	ImageBytes int     `json:"image_bytes"`
	PauseMs    float64 `json:"pause_ms"`
}

// Migrate moves one session from source to target through the
// three-step protocol: export (suspend + LPPCKPT1 image), import
// (restore + resume on target), complete (source drops durable state
// and forwards with 421). A failed import aborts the migration so the
// session revives on the source — the checkpoint taken at export means
// nothing acknowledged is ever in flight only.
func Migrate(client *http.Client, session, source, target string) (MigrationReport, error) {
	rep := MigrationReport{Session: session, Source: source, Target: target}
	start := time.Now()

	resp, err := client.Post(source+"/v1/migrate/sessions/"+session+"/export", "", nil)
	if err != nil {
		return rep, fmt.Errorf("export from %s: %w", source, err)
	}
	image, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return rep, fmt.Errorf("export from %s: read image: %w", source, err)
	}
	if resp.StatusCode != http.StatusOK {
		return rep, fmt.Errorf("export from %s: %s: %s", source, resp.Status, bytes.TrimSpace(image))
	}
	rep.ImageBytes = len(image)

	req, err := http.NewRequest(http.MethodPut, target+"/v1/migrate/sessions/"+session, bytes.NewReader(image))
	if err != nil {
		abort(client, session, source)
		return rep, err
	}
	req.Header.Set("Content-Type", "application/x-lpp-checkpoint")
	iresp, err := client.Do(req)
	if err != nil {
		abort(client, session, source)
		return rep, fmt.Errorf("import to %s: %w", target, err)
	}
	ibody, _ := io.ReadAll(iresp.Body)
	iresp.Body.Close()
	if iresp.StatusCode != http.StatusNoContent {
		abort(client, session, source)
		return rep, fmt.Errorf("import to %s: %s: %s", target, iresp.Status, bytes.TrimSpace(ibody))
	}
	rep.PauseMs = time.Since(start).Seconds() * 1e3
	if seq := iresp.Header.Get("X-Lpp-Seq"); seq != "" {
		fmt.Sscan(seq, &rep.Seq)
	}

	// The target is live; completing just retires the source's copy. A
	// failure here is reported but not fatal to the session: the source
	// still answers 409/503 until an operator re-runs complete.
	cresp, err := client.Post(source+"/v1/migrate/sessions/"+session+"/complete?target="+target, "", nil)
	if err != nil {
		return rep, fmt.Errorf("complete on %s (target is serving): %w", source, err)
	}
	cbody, _ := io.ReadAll(cresp.Body)
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusNoContent {
		return rep, fmt.Errorf("complete on %s (target is serving): %s: %s", source, cresp.Status, bytes.TrimSpace(cbody))
	}
	return rep, nil
}

// abort tells the source to take the session back after a failed
// transfer; best effort — the migrating marker also yields to a
// restart.
func abort(client *http.Client, session, source string) {
	resp, err := client.Post(source+"/v1/migrate/sessions/"+session+"/abort", "", nil)
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}
