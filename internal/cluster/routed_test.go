package cluster

// The routed-cluster chaos suite: nine paper workloads streamed at a
// 3-node cluster through the router, with a random node killed
// mid-ingest and one live migration forced under load. The client sees
// only the router address the whole time. The bar is the same
// byte-parity contract the single-node chaos and 2-node failover
// suites enforce: every acknowledged response, the consumer state, and
// the final flush must be identical to an uninterrupted single-node
// run.

import (
	"bytes"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"testing"
	"time"

	"lpp/internal/httpx"
	"lpp/internal/online"
	"lpp/internal/phase"
	"lpp/internal/server"
	"lpp/internal/trace"
	"lpp/internal/workload"
)

// collector materializes a workload's trace.
type collector struct{ events []trace.Event }

func (c *collector) Block(id trace.BlockID, instrs int) {
	c.events = append(c.events, trace.Event{Kind: trace.EventBlock, Block: id, Instrs: instrs})
}
func (c *collector) Access(addr trace.Addr) {
	c.events = append(c.events, trace.Event{Kind: trace.EventAccess, Addr: addr})
}

func encodeChunk(t *testing.T, events []trace.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	for _, ev := range events {
		ev.Feed(w)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func chunkBounds(n, count int) [][2]int {
	var out [][2]int
	size := n / count
	if size == 0 {
		size = 1
	}
	for off := 0; off < n; off += size {
		end := off + size
		if end > n {
			end = n
		}
		out = append(out, [2]int{off, end})
	}
	return out
}

// testNode is one in-process lppserve node on a real loopback
// listener, reachable the way the router reaches production nodes.
type testNode struct {
	srv  *server.Server
	base string
	hs   *http.Server
	ln   net.Listener
}

// startTestNode listens first so the node can advertise its real URL.
func startTestNode(t *testing.T, cfg server.Config) *testNode {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()
	cfg.Advertise = base
	srv, err := server.New(cfg)
	if err != nil {
		ln.Close()
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	n := &testNode{srv: srv, base: base, hs: hs, ln: ln}
	t.Cleanup(func() {
		n.hs.Close()
		n.srv.Close()
	})
	return n
}

// kill is node death with no drain: the process state vanishes and new
// connections are refused.
func (n *testNode) kill() {
	n.hs.Close()
	n.srv.Kill()
}

func startRouter(t *testing.T, nodes []string) (*Router, *Health, string) {
	t.Helper()
	r, err := New(nodes, DefaultVnodes)
	if err != nil {
		t.Fatal(err)
	}
	h := NewHealth(nodes, &http.Client{Timeout: 2 * time.Second}, 50*time.Millisecond)
	rt := NewRouter(r, h, &http.Client{Timeout: 30 * time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: rt}
	go hs.Serve(ln)
	t.Cleanup(func() {
		hs.Close()
		h.Close()
	})
	return rt, h, "http://" + ln.Addr().String()
}

// get fetches a 200 body from base+path.
func get(t *testing.T, client *http.Client, base, path string) []byte {
	t.Helper()
	resp, err := client.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", path, resp.StatusCode, body)
	}
	return body
}

func del(t *testing.T, client *http.Client, base, path string) []byte {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, base+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("DELETE %s: %v", path, err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE %s: %d: %s", path, resp.StatusCode, body)
	}
	return body
}

func TestRoutedClusterChaosParityWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("nine-workload routed-cluster sweep is seconds-long; skipped in -short")
	}
	cases := []struct {
		name          string
		params        workload.Params
		keepIrregular bool
	}{
		{"fft", workload.Params{N: 512, Steps: 6, Seed: 1}, false},
		{"applu", workload.Params{N: 14, Steps: 5, Seed: 1}, false},
		{"compress", workload.Params{N: 8192, Steps: 5, Seed: 1}, false},
		{"gcc", workload.Params{N: 60, Steps: 20, Seed: 1}, true},
		{"tomcatv", workload.Params{N: 48, Steps: 6, Seed: 1}, false},
		{"swim", workload.Params{N: 48, Steps: 6, Seed: 1}, false},
		{"vortex", workload.Params{N: 1 << 12, Steps: 6, Seed: 1}, true},
		{"mesh", workload.Params{N: 2048, Steps: 6, Seed: 1}, false},
		{"moldyn", workload.Params{N: 200, Steps: 6, Seed: 1}, false},
	}
	// Fixed seed: which node dies and where is arbitrary but
	// reproducible.
	rng := rand.New(rand.NewSource(20260808))
	const chainSpec = "predictor,cacheresize"
	consumers := func() *phase.Chain {
		ch, err := phase.ParseChain(chainSpec)
		if err != nil {
			panic(err)
		}
		return ch
	}
	const contentType = "application/x-lpp-trace"

	for _, c := range cases {
		c := c
		killOwner := rng.Intn(2) == 0
		t.Run(c.name, func(t *testing.T) {
			spec, err := workload.ByName(c.name)
			if err != nil {
				t.Fatal(err)
			}
			var col collector
			spec.Make(c.params).Run(&col)
			dcfg := online.Config{KeepIrregular: c.keepIrregular}
			bounds := chunkBounds(len(col.events), 10)
			if len(bounds) < 6 {
				t.Fatalf("%s: only %d chunks", c.name, len(bounds))
			}
			chunks := make([][]byte, len(bounds))
			for i, b := range bounds {
				chunks[i] = encodeChunk(t, col.events[b[0]:b[1]])
			}
			// Chaos points: the kill strictly before the migration, and
			// at least one chunk between and after, so every transition
			// carries live traffic.
			killChunk := 1 + rng.Intn(len(bounds)-4)
			migrateChunk := killChunk + 1 + rng.Intn(len(bounds)-killChunk-2)
			id := c.name

			client := &http.Client{Timeout: 30 * time.Second}

			// Reference: the same chunks against one uninterrupted node,
			// over real HTTP like the routed run.
			refNode := startTestNode(t, server.Config{
				Detector: dcfg, DataDir: t.TempDir(), CheckpointEvery: 3,
				Consumers: consumers,
			})
			reference := make([][]byte, len(chunks))
			for i, body := range chunks {
				var rc httpx.RetryCounts
				resp, err := httpx.PostChunk(client, refNode.base+"/v1/sessions/"+id+"/events",
					uint64(i+1), body, contentType, &rc)
				if err != nil {
					t.Fatalf("reference chunk %d: %v", i+1, err)
				}
				reference[i], _ = io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("reference chunk %d: %d: %s", i+1, resp.StatusCode, reference[i])
				}
			}
			refConsumers := get(t, client, refNode.base, "/v1/sessions/"+id+"/consumers")
			refFinal := del(t, client, refNode.base, "/v1/sessions/"+id)

			// The routed cluster: three durable nodes behind one router.
			nodes := make([]*testNode, 3)
			bases := make([]string, 3)
			for i := range nodes {
				nodes[i] = startTestNode(t, server.Config{
					Detector: dcfg, DataDir: t.TempDir(), CheckpointEvery: 3,
					Consumers: consumers,
				})
				bases[i] = nodes[i].base
			}
			rt, _, routerBase := startRouter(t, bases)

			byBase := make(map[string]*testNode, len(nodes))
			for _, n := range nodes {
				byBase[n.base] = n
			}
			killed := ""
			doKill := func() {
				victim := rt.Owner(id)
				if !killOwner {
					// "kill any node": sometimes the victim is a bystander
					// — the session must not care.
					others := make([]string, 0, 2)
					for _, b := range bases {
						if b != victim {
							others = append(others, b)
						}
					}
					victim = others[rng.Intn(len(others))]
				}
				byBase[victim].kill()
				killed = victim
			}
			doMigrate := func() {
				source := rt.Owner(id)
				target := ""
				for _, b := range bases {
					if b != source && b != killed {
						target = b
						break
					}
				}
				if target == "" {
					t.Fatal("no migration target available")
				}
				resp, err := client.Post(routerBase+"/v1/cluster/migrate?session="+id+"&target="+target, "", nil)
				if err != nil {
					t.Fatalf("migrate: %v", err)
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("migrate: %d: %s", resp.StatusCode, body)
				}
				if got := rt.Owner(id); got != target {
					t.Fatalf("owner after migration = %s, want %s", got, target)
				}
			}

			// The client: chunks through the router only, riding 409
			// X-Lpp-Want-Seq rewinds exactly as it would against a single
			// node that restarted.
			acked := make([][]byte, len(chunks))
			i, rewinds, migrated := 0, 0, false
			for i < len(chunks) {
				if killed == "" && i == killChunk {
					doKill()
				} else if killed != "" && !migrated && i == migrateChunk {
					doMigrate()
					migrated = true
				}
				var rc httpx.RetryCounts
				resp, err := httpx.PostChunk(client, routerBase+"/v1/sessions/"+id+"/events",
					uint64(i+1), chunks[i], contentType, &rc)
				if err != nil {
					t.Fatalf("chunk %d via router: %v", i+1, err)
				}
				if resp.StatusCode == http.StatusConflict {
					want, perr := strconv.ParseUint(resp.Header.Get("X-Lpp-Want-Seq"), 10, 64)
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if perr != nil || want == 0 || want > uint64(i+1) {
						t.Fatalf("409 without usable X-Lpp-Want-Seq (chunk %d)", i+1)
					}
					rewinds++
					if rewinds > 2*len(chunks) {
						t.Fatal("rewind loop is not converging")
					}
					i = int(want) - 1
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("chunk %d via router: %d: %s", i+1, resp.StatusCode, body)
				}
				// Byte-parity with the uninterrupted run — on first ack
				// and on every post-failover replay of an already-acked
				// chunk. Any divergence means acknowledged events leaked.
				if !bytes.Equal(body, reference[i]) {
					t.Fatalf("chunk %d response diverges from the uninterrupted run", i+1)
				}
				if acked[i] != nil && !bytes.Equal(body, acked[i]) {
					t.Fatalf("chunk %d replayed after failover diverges from its acknowledged response", i+1)
				}
				acked[i] = body
				i++
			}
			for j, body := range acked {
				if body == nil {
					t.Fatalf("chunk %d never acknowledged", j+1)
				}
			}

			// Recovered consumer state and the final flush must match the
			// uninterrupted run byte for byte, fetched through the router.
			gotConsumers := get(t, client, routerBase, "/v1/sessions/"+id+"/consumers")
			if !bytes.Equal(gotConsumers, refConsumers) {
				t.Errorf("consumer state diverges after chaos:\n got %s\nwant %s", gotConsumers, refConsumers)
			}
			gotFinal := del(t, client, routerBase, "/v1/sessions/"+id)
			if !bytes.Equal(gotFinal, refFinal) {
				t.Errorf("final flush diverges after chaos:\n got %s\nwant %s", gotFinal, refFinal)
			}
		})
	}
}
