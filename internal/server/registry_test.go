package server

// Registry-layer unit tests: lifecycle states, the Ownership
// interface, placement guards, and the session listing inventory.

import (
	"errors"
	"net/http"
	"testing"
)

func TestSessionStateLifecycle(t *testing.T) {
	s := mustServer(t, Config{DataDir: t.TempDir(), Advertise: "http://node-a"})
	defer s.Close()
	var _ Ownership = s // the registry exposes the ownership interface

	if st, _ := s.SessionState("ghost"); st != StateUnknown {
		t.Fatalf("unknown session state = %q, want %q", st, StateUnknown)
	}

	// Create → local.
	rr := post(t, s.Handler(), "/v1/sessions/a/events", "application/x-ndjson",
		encodeNDJSON(syntheticEvents(1, 2, 4)))
	if rr.Code != http.StatusOK {
		t.Fatalf("ingest: %d: %s", rr.Code, rr.Body.String())
	}
	if st, owner := s.SessionState("a"); st != StateLocal || owner != "http://node-a" {
		t.Fatalf("live session = %q owner %q, want local/http://node-a", st, owner)
	}

	// Suspend → suspended (durable state, no worker).
	sess, err := s.getSession("a", false)
	if err != nil {
		t.Fatalf("getSession: %v", err)
	}
	if !s.suspendSession(sess) {
		t.Fatal("suspendSession returned false")
	}
	if st, _ := s.SessionState("a"); st != StateSuspended {
		t.Fatalf("suspended session state = %q, want %q", st, StateSuspended)
	}

	// Claim → migrating; revival is refused while the image is in
	// flight.
	if err := s.markMigrating("a"); err != nil {
		t.Fatalf("markMigrating: %v", err)
	}
	if st, _ := s.SessionState("a"); st != StateMigrating {
		t.Fatalf("claimed session state = %q, want %q", st, StateMigrating)
	}
	if err := s.markMigrating("a"); !errors.Is(err, errMigrating) {
		t.Fatalf("second claim error = %v, want errMigrating", err)
	}
	if _, err := s.getSession("a", true); !errors.Is(err, errMigrating) {
		t.Fatalf("revive during migration error = %v, want errMigrating", err)
	}

	// Complete → remote; requests learn the new owner.
	s.completeMigration("a", "http://node-b")
	if st, owner := s.SessionState("a"); st != StateRemote || owner != "http://node-b" {
		t.Fatalf("migrated session = %q owner %q, want remote/http://node-b", st, owner)
	}
	var remote *remoteError
	if _, err := s.getSession("a", true); !errors.As(err, &remote) || remote.owner != "http://node-b" {
		t.Fatalf("revive of remote session error = %v, want remoteError(http://node-b)", err)
	}

	// Adopt (an import) clears the marker: ours again.
	s.adoptSession("a")
	if st, _ := s.SessionState("a"); st == StateRemote || st == StateMigrating {
		t.Fatalf("adopted session still %q", st)
	}
}

func TestUnmarkMigratingRestoresLocalOwnership(t *testing.T) {
	s := mustServer(t, Config{DataDir: t.TempDir()})
	defer s.Close()
	rr := post(t, s.Handler(), "/v1/sessions/x/events", "application/x-ndjson",
		encodeNDJSON(syntheticEvents(2, 1, 2)))
	if rr.Code != http.StatusOK {
		t.Fatalf("ingest: %d", rr.Code)
	}
	sess, _ := s.getSession("x", false)
	s.suspendSession(sess)
	if err := s.markMigrating("x"); err != nil {
		t.Fatalf("markMigrating: %v", err)
	}
	s.unmarkMigrating("x")
	// Aborted migration: the session revives locally from disk.
	if _, err := s.getSession("x", true); err != nil {
		t.Fatalf("revive after abort: %v", err)
	}
	if st, _ := s.SessionState("x"); st != StateLocal {
		t.Fatalf("state after abort+revive = %q, want local", st)
	}
}

func TestListSessionsCoversEveryLifecycleState(t *testing.T) {
	s := mustServer(t, Config{DataDir: t.TempDir(), Advertise: "http://node-a"})
	defer s.Close()
	events := encodeNDJSON(syntheticEvents(3, 1, 2))
	for _, id := range []string{"live", "idle", "moving", "gone"} {
		rr := post(t, s.Handler(), "/v1/sessions/"+id+"/events", "application/x-ndjson", events)
		if rr.Code != http.StatusOK {
			t.Fatalf("ingest %s: %d", id, rr.Code)
		}
	}
	for _, id := range []string{"idle", "moving", "gone"} {
		sess, _ := s.getSession(id, false)
		s.suspendSession(sess)
	}
	if err := s.markMigrating("moving"); err != nil {
		t.Fatalf("markMigrating: %v", err)
	}
	if err := s.markMigrating("gone"); err != nil {
		t.Fatalf("markMigrating: %v", err)
	}
	s.completeMigration("gone", "http://node-b")

	states := make(map[string]sessionEntry)
	for _, e := range s.listSessions() {
		states[e.ID] = e
	}
	want := map[string]SessionState{
		"live":   StateLocal,
		"idle":   StateSuspended,
		"moving": StateMigrating,
		"gone":   StateRemote,
	}
	for id, st := range want {
		e, ok := states[id]
		if !ok {
			t.Fatalf("session %q missing from listing: %+v", id, states)
		}
		if e.State != string(st) {
			t.Errorf("session %q state = %q, want %q", id, e.State, st)
		}
	}
	if states["live"].Owner != "http://node-a" {
		t.Errorf("live owner = %q, want this node", states["live"].Owner)
	}
	if states["gone"].Owner != "http://node-b" {
		t.Errorf("gone owner = %q, want the target node", states["gone"].Owner)
	}
	if states["live"].Seq == 0 {
		t.Errorf("live session reports seq 0")
	}
	if states["idle"].Seq == 0 {
		t.Errorf("suspended session reports seq 0 (checkpoint not read)")
	}
}
