package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyRingSize bounds each shard's chunk-latency history used for
// the percentile and events/sec gauges: recent window, O(1) memory.
const latencyRingSize = 256

// chunkSample is one processed chunk's contribution to the windowed
// rate and latency metrics.
type chunkSample struct {
	done    time.Time
	latency time.Duration
	events  int
}

// latencyRing is one shard's bounded window of recent chunk samples.
// Rings shard with the session table so the hot-path observation never
// contends across shards; scrapes merge all rings.
type latencyRing struct {
	mu   sync.Mutex
	ring [latencyRingSize]chunkSample
	n    int // samples written (ring index = n % latencyRingSize)
}

// metrics aggregates server-wide counters (atomics, updated on the hot
// path) and per-shard rings of recent chunk samples (each mutex-guarded,
// folded into percentiles only on scrape).
type metrics struct {
	start time.Time

	sessionsActive atomic.Int64
	sessionsTotal  atomic.Int64
	eventsTotal    atomic.Int64
	chunksTotal    atomic.Int64
	rejectedChunks atomic.Int64
	boundaries     atomic.Int64
	predictions    atomic.Int64
	panics         atomic.Int64
	recovered      atomic.Int64
	reaped         atomic.Int64
	walErrors      atomic.Int64
	checkpoints    atomic.Int64
	replayed       atomic.Int64
	replicaApplied atomic.Int64
	migrationsOut  atomic.Int64
	migrationsIn   atomic.Int64

	// Detector hardening totals across all sessions: boundaries
	// suppressed by the MinBoundaryGap guard, grammar restarts forced
	// by MaxGrammar, and signature pages dropped by MaxSignature.
	detSuppressed atomic.Int64
	detRestarts   atomic.Int64
	detTruncated  atomic.Int64

	// Per-consumer delivery totals across all sessions. The name list
	// is fixed at New (probed from the Consumers factory), so workers
	// add deltas by index with no locking.
	consumerNames  []string
	consumerEvents []atomic.Int64
	consumerErrors []atomic.Int64

	rings []latencyRing // one per session-table shard
}

// initConsumers registers the per-consumer counter slots.
func (m *metrics) initConsumers(names []string) {
	m.consumerNames = names
	m.consumerEvents = make([]atomic.Int64, len(names))
	m.consumerErrors = make([]atomic.Int64, len(names))
}

// addConsumer folds one worker's delivery deltas into consumer i's
// totals.
func (m *metrics) addConsumer(i int, events, errors int64) {
	if i < 0 || i >= len(m.consumerNames) {
		return
	}
	m.consumerEvents[i].Add(events)
	m.consumerErrors[i].Add(errors)
}

// observeChunk records one completed chunk on its session's shard: the
// end-to-end detection latency (enqueue to reply) and event count.
func (m *metrics) observeChunk(shard int, lat time.Duration, events int) {
	m.chunksTotal.Add(1)
	m.eventsTotal.Add(int64(events))
	r := &m.rings[shard]
	r.mu.Lock()
	r.ring[r.n%latencyRingSize] = chunkSample{done: time.Now(), latency: lat, events: events}
	r.n++
	r.mu.Unlock()
}

// snapshot merges every shard's ring into the windowed gauges.
func (m *metrics) snapshot() (rate float64, p50, p90, p99 time.Duration) {
	var lats []time.Duration
	var events int
	oldest := time.Time{}
	for i := range m.rings {
		r := &m.rings[i]
		r.mu.Lock()
		count := r.n
		if count > latencyRingSize {
			count = latencyRingSize
		}
		for j := 0; j < count; j++ {
			s := r.ring[j]
			lats = append(lats, s.latency)
			events += s.events
			if oldest.IsZero() || s.done.Before(oldest) {
				oldest = s.done
			}
		}
		r.mu.Unlock()
	}
	if len(lats) == 0 {
		return 0, 0, 0, 0
	}
	if span := time.Since(oldest); span > 0 {
		rate = float64(events) / span.Seconds()
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(q float64) time.Duration {
		i := int(q * float64(len(lats)-1))
		return lats[i]
	}
	return rate, pct(0.50), pct(0.90), pct(0.99)
}

// write renders the metrics in Prometheus text exposition format.
func (m *metrics) write(w io.Writer) {
	rate, p50, p90, p99 := m.snapshot()
	fmt.Fprintf(w, "# TYPE lpp_sessions_active gauge\n")
	fmt.Fprintf(w, "lpp_sessions_active %d\n", m.sessionsActive.Load())
	fmt.Fprintf(w, "# TYPE lpp_sessions_total counter\n")
	fmt.Fprintf(w, "lpp_sessions_total %d\n", m.sessionsTotal.Load())
	fmt.Fprintf(w, "# TYPE lpp_events_total counter\n")
	fmt.Fprintf(w, "lpp_events_total %d\n", m.eventsTotal.Load())
	fmt.Fprintf(w, "# TYPE lpp_chunks_total counter\n")
	fmt.Fprintf(w, "lpp_chunks_total %d\n", m.chunksTotal.Load())
	fmt.Fprintf(w, "# TYPE lpp_rejected_chunks_total counter\n")
	fmt.Fprintf(w, "lpp_rejected_chunks_total %d\n", m.rejectedChunks.Load())
	fmt.Fprintf(w, "# TYPE lpp_boundaries_total counter\n")
	fmt.Fprintf(w, "lpp_boundaries_total %d\n", m.boundaries.Load())
	fmt.Fprintf(w, "# TYPE lpp_predictions_total counter\n")
	fmt.Fprintf(w, "lpp_predictions_total %d\n", m.predictions.Load())
	fmt.Fprintf(w, "# TYPE lpp_session_panics_total counter\n")
	fmt.Fprintf(w, "lpp_session_panics_total %d\n", m.panics.Load())
	fmt.Fprintf(w, "# TYPE lpp_sessions_recovered_total counter\n")
	fmt.Fprintf(w, "lpp_sessions_recovered_total %d\n", m.recovered.Load())
	fmt.Fprintf(w, "# TYPE lpp_sessions_reaped_total counter\n")
	fmt.Fprintf(w, "lpp_sessions_reaped_total %d\n", m.reaped.Load())
	fmt.Fprintf(w, "# TYPE lpp_wal_errors_total counter\n")
	fmt.Fprintf(w, "lpp_wal_errors_total %d\n", m.walErrors.Load())
	fmt.Fprintf(w, "# TYPE lpp_checkpoints_total counter\n")
	fmt.Fprintf(w, "lpp_checkpoints_total %d\n", m.checkpoints.Load())
	fmt.Fprintf(w, "# TYPE lpp_replayed_chunks_total counter\n")
	fmt.Fprintf(w, "lpp_replayed_chunks_total %d\n", m.replayed.Load())
	fmt.Fprintf(w, "# TYPE lpp_migrations_out_total counter\n")
	fmt.Fprintf(w, "lpp_migrations_out_total %d\n", m.migrationsOut.Load())
	fmt.Fprintf(w, "# TYPE lpp_migrations_in_total counter\n")
	fmt.Fprintf(w, "lpp_migrations_in_total %d\n", m.migrationsIn.Load())
	fmt.Fprintf(w, "# TYPE lpp_detector_suppressed_boundaries_total counter\n")
	fmt.Fprintf(w, "lpp_detector_suppressed_boundaries_total %d\n", m.detSuppressed.Load())
	fmt.Fprintf(w, "# TYPE lpp_detector_grammar_restarts_total counter\n")
	fmt.Fprintf(w, "lpp_detector_grammar_restarts_total %d\n", m.detRestarts.Load())
	fmt.Fprintf(w, "# TYPE lpp_detector_truncated_pages_total counter\n")
	fmt.Fprintf(w, "lpp_detector_truncated_pages_total %d\n", m.detTruncated.Load())
	if len(m.consumerNames) > 0 {
		fmt.Fprintf(w, "# TYPE lpp_consumer_events_total counter\n")
		for i, name := range m.consumerNames {
			fmt.Fprintf(w, "lpp_consumer_events_total{consumer=%q} %d\n", name, m.consumerEvents[i].Load())
		}
		fmt.Fprintf(w, "# TYPE lpp_consumer_errors_total counter\n")
		for i, name := range m.consumerNames {
			fmt.Fprintf(w, "lpp_consumer_errors_total{consumer=%q} %d\n", name, m.consumerErrors[i].Load())
		}
	}
	fmt.Fprintf(w, "# TYPE lpp_events_per_second gauge\n")
	fmt.Fprintf(w, "lpp_events_per_second %.1f\n", rate)
	fmt.Fprintf(w, "# TYPE lpp_detect_latency_seconds gauge\n")
	fmt.Fprintf(w, "lpp_detect_latency_seconds{quantile=\"0.5\"} %.6f\n", p50.Seconds())
	fmt.Fprintf(w, "lpp_detect_latency_seconds{quantile=\"0.9\"} %.6f\n", p90.Seconds())
	fmt.Fprintf(w, "lpp_detect_latency_seconds{quantile=\"0.99\"} %.6f\n", p99.Seconds())
	fmt.Fprintf(w, "# TYPE lpp_uptime_seconds gauge\n")
	fmt.Fprintf(w, "lpp_uptime_seconds %.1f\n", time.Since(m.start).Seconds())
}
