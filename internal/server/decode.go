package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"

	"lpp/internal/trace"
)

// decodeState bundles the reusable buffers for one in-flight chunk
// decode: the read buffer, a binary trace reader, the NDJSON scanner
// buffer, and the decoded event slice itself. States cycle through a
// sync.Pool, so the steady-state ingest path decodes chunk after chunk
// without allocating per event.
type decodeState struct {
	br     *bufio.Reader
	tr     *trace.Reader
	buf    []byte
	events []trace.Event
	// body and cols serve the columnar v2 path: the whole chunk is
	// slurped into body (the v2 decoder is a pointer walk over one
	// contiguous buffer, not a scanner) and decoded into cols' reused
	// column slices.
	body []byte
	cols trace.Columns
}

// maxRetainedEvents caps the event-slice capacity a pooled state keeps:
// an occasional pathologically dense chunk must not pin its worst-case
// buffer in the pool forever.
const maxRetainedEvents = 1 << 20

// maxRetainedBody caps the raw-chunk buffer a pooled state keeps, for
// the same reason: typical v2 chunks are tens of KiB, and one
// MaxChunkBytes-sized outlier must not stay resident per pool slot.
const maxRetainedBody = 1 << 20

var decodePool = sync.Pool{New: func() any {
	return &decodeState{
		br:  bufio.NewReaderSize(nil, 1<<16),
		buf: make([]byte, 64<<10),
	}
}}

func getDecodeState() *decodeState { return decodePool.Get().(*decodeState) }

// putDecodeState recycles st. Callers must only do so once nothing else
// can reference st.events: after the session worker replied, or when
// the chunk was never enqueued. Chunks lost to a dying worker are left
// to the garbage collector instead.
func putDecodeState(st *decodeState) {
	st.trimForPool()
	decodePool.Put(st)
}

// trimForPool drops buffers too large to keep pooled.
func (st *decodeState) trimForPool() {
	if cap(st.events) > maxRetainedEvents {
		st.events = nil
	}
	if cap(st.body) > maxRetainedBody {
		st.body = nil
	}
	if cap(st.cols.Addrs)+cap(st.cols.IDs) > maxRetainedEvents {
		st.cols = trace.Columns{}
	}
}

// decodeChunk parses a request body as the columnar chunk format v2,
// the v1 binary trace format, or NDJSON events. v2 and v1 are each
// recognized by their magic header or Content-Type — magic first, so a
// client speaking the new format through middleware that rewrites
// Content-Type still negotiates correctly, and old v1/NDJSON clients
// decode exactly as before. A v2 chunk comes back as cols (events nil);
// the other formats come back as events (cols nil). Both are owned by
// st and valid until st is recycled.
func (s *Server) decodeChunk(r *http.Request, st *decodeState) (events []trace.Event, cols *trace.Columns, err error) {
	body := http.MaxBytesReader(nil, r.Body, s.cfg.MaxChunkBytes)
	st.br.Reset(body)
	st.events = st.events[:0]
	ct := r.Header.Get("Content-Type")
	head, _ := st.br.Peek(len("LPPTRACE1\n"))
	switch {
	case trace.IsChunkV2(head) || strings.HasPrefix(ct, trace.ChunkV2ContentType):
		cols, err = st.decodeColumns(int(s.cfg.MaxChunkBytes))
		return nil, cols, err
	case bytes.Equal(head, []byte("LPPTRACE1\n")) || strings.HasPrefix(ct, "application/x-lpp-trace"):
		events, err = st.decodeBinary()
		return events, nil, err
	default:
		events, err = st.decodeNDJSON()
		return events, nil, err
	}
}

// decodeColumns slurps the body into the reusable chunk buffer and runs
// the v2 columnar decoder over it. maxEvents caps the RLE expansion at
// one event per allowed body byte — any denser chunk is refused, which
// bounds decoded memory by the same knob (MaxChunkBytes) that already
// bounds the wire size.
func (st *decodeState) decodeColumns(maxEvents int) (*trace.Columns, error) {
	buf := st.body[:0]
	if cap(buf) == 0 {
		buf = make([]byte, 0, 64<<10)
	}
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := st.br.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			break
		}
		if err != nil {
			st.body = buf
			return nil, fmt.Errorf("chunk v2: %w", err)
		}
	}
	st.body = buf
	if err := trace.DecodeChunkV2(buf, &st.cols, maxEvents); err != nil {
		return nil, err // the codec's errors carry the "chunk v2" context
	}
	return &st.cols, nil
}

func (st *decodeState) decodeBinary() ([]trace.Event, error) {
	if st.tr == nil {
		st.tr = trace.NewReader(nil)
	}
	// st.br is a 64KiB *bufio.Reader, so Reset adopts it directly
	// instead of stacking a second buffer on top.
	st.tr.Reset(st.br)
	for {
		ev, err := st.tr.Next()
		if err == io.EOF {
			return st.events, nil
		}
		if err != nil {
			return nil, fmt.Errorf("binary chunk: %w", err)
		}
		st.events = append(st.events, ev)
	}
}

func (st *decodeState) decodeNDJSON() ([]trace.Event, error) {
	sc := bufio.NewScanner(st.br)
	sc.Buffer(st.buf, 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := bytes.TrimSpace(sc.Bytes())
		if len(text) == 0 {
			continue
		}
		ev, ok := parseWireEvent(text)
		if !ok {
			// Anything beyond the canonical encoding — string escapes,
			// non-integer numbers, unknown keys — goes through
			// encoding/json, which also owns all error reporting, so
			// unusual-but-valid lines decode identically and invalid
			// ones fail with the messages clients already match on.
			var we wireEvent
			if err := json.Unmarshal(text, &we); err != nil {
				return nil, fmt.Errorf("ndjson line %d: %w", line, err)
			}
			switch we.Kind {
			case "access":
				ev = trace.Event{Kind: trace.EventAccess, Addr: trace.Addr(we.Addr)}
			case "block":
				ev = trace.Event{Kind: trace.EventBlock, Block: trace.BlockID(we.Block), Instrs: we.Instrs}
			default:
				return nil, fmt.Errorf("ndjson line %d: unknown kind %q", line, we.Kind)
			}
		}
		st.events = append(st.events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ndjson: %w", err)
	}
	return st.events, nil
}

// lineParser is a minimal cursor over one NDJSON line.
type lineParser struct {
	b []byte
	i int
}

func (p *lineParser) ws() {
	for p.i < len(p.b) && (p.b[p.i] == ' ' || p.b[p.i] == '\t') {
		p.i++
	}
}

func (p *lineParser) eat(c byte) bool {
	if p.i < len(p.b) && p.b[p.i] == c {
		p.i++
		return true
	}
	return false
}

// str consumes a JSON string without escapes and returns its contents.
func (p *lineParser) str() ([]byte, bool) {
	if !p.eat('"') {
		return nil, false
	}
	start := p.i
	for p.i < len(p.b) {
		switch p.b[p.i] {
		case '"':
			s := p.b[start:p.i]
			p.i++
			return s, true
		case '\\':
			return nil, false
		}
		p.i++
	}
	return nil, false
}

// uint consumes a non-negative decimal integer.
func (p *lineParser) uint() (uint64, bool) {
	start := p.i
	var v uint64
	for p.i < len(p.b) && p.b[p.i] >= '0' && p.b[p.i] <= '9' {
		d := uint64(p.b[p.i] - '0')
		if v > (math.MaxUint64-d)/10 {
			return 0, false
		}
		v = v*10 + d
		p.i++
	}
	if p.i == start {
		return 0, false
	}
	// A trailing fraction or exponent means this is not a plain
	// integer; defer to encoding/json.
	if p.i < len(p.b) && (p.b[p.i] == '.' || p.b[p.i] == 'e' || p.b[p.i] == 'E') {
		return 0, false
	}
	return v, true
}

// parseWireEvent decodes the canonical one-line JSON encoding of a wire
// event — unescaped keys and string values, plain unsigned integers —
// without allocating. It reports !ok for anything else (including all
// malformed input) so the caller falls back to encoding/json; the fast
// path therefore never needs to produce errors of its own.
func parseWireEvent(b []byte) (trace.Event, bool) {
	p := lineParser{b: b}
	var kind []byte
	var addr, block, instrs uint64
	p.ws()
	if !p.eat('{') {
		return trace.Event{}, false
	}
	p.ws()
	if p.eat('}') {
		return trace.Event{}, false // no kind: let the slow path reject it
	}
	for {
		key, ok := p.str()
		if !ok {
			return trace.Event{}, false
		}
		p.ws()
		if !p.eat(':') {
			return trace.Event{}, false
		}
		p.ws()
		switch string(key) {
		case "kind":
			if kind, ok = p.str(); !ok {
				return trace.Event{}, false
			}
		case "addr":
			if addr, ok = p.uint(); !ok {
				return trace.Event{}, false
			}
		case "block":
			if block, ok = p.uint(); !ok {
				return trace.Event{}, false
			}
		case "instrs":
			if instrs, ok = p.uint(); !ok {
				return trace.Event{}, false
			}
		default:
			return trace.Event{}, false
		}
		p.ws()
		if p.eat(',') {
			p.ws()
			continue
		}
		if p.eat('}') {
			break
		}
		return trace.Event{}, false
	}
	p.ws()
	if p.i != len(p.b) {
		return trace.Event{}, false
	}
	switch string(kind) {
	case "access":
		return trace.Event{Kind: trace.EventAccess, Addr: trace.Addr(addr)}, true
	case "block":
		if instrs > math.MaxInt {
			return trace.Event{}, false
		}
		return trace.Event{Kind: trace.EventBlock, Block: trace.BlockID(block), Instrs: int(instrs)}, true
	}
	return trace.Event{}, false
}
