package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lpp/internal/faultfs"
	"lpp/internal/online"
	"lpp/internal/phase"
	"lpp/internal/trace"
	"lpp/internal/workload"
)

// collector records a workload run as a replayable event list.
type collector struct{ events []trace.Event }

func (c *collector) Block(id trace.BlockID, instrs int) {
	c.events = append(c.events, trace.Event{Kind: trace.EventBlock, Block: id, Instrs: instrs})
}
func (c *collector) Access(addr trace.Addr) {
	c.events = append(c.events, trace.Event{Kind: trace.EventAccess, Addr: addr})
}

// postSeq posts one binary chunk under an explicit sequence number.
func postSeq(t *testing.T, h http.Handler, id string, seq uint64, events []trace.Event) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/sessions/"+id+"/events", bytes.NewReader(encodeBinary(t, events)))
	req.Header.Set("Content-Type", "application/x-lpp-trace")
	req.Header.Set("X-Lpp-Seq", fmt.Sprint(seq))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

// expectedCfg runs events through a local detector under cfg.
func expectedCfg(cfg online.Config, events []trace.Event) []phase.Event {
	var got []phase.Event
	cfg.OnEvent = func(ev phase.Event) { got = append(got, ev) }
	d := online.NewDetector(cfg)
	for _, ev := range events {
		ev.Feed(d)
	}
	d.Flush()
	return got
}

// expectedPreFlush is expectedCfg without the final Flush: the event
// stream a session has emitted before its DELETE, i.e. the position at
// which consumer-state parity is checked.
func expectedPreFlush(cfg online.Config, events []trace.Event) []phase.Event {
	var got []phase.Event
	cfg.OnEvent = func(ev phase.Event) { got = append(got, ev) }
	d := online.NewDetector(cfg)
	for _, ev := range events {
		ev.Feed(d)
	}
	return got
}

// consumerProbe mirrors the GET /v1/sessions/{id}/consumers entries.
type consumerProbe struct {
	Name      string `json:"name"`
	Consumed  int64  `json:"consumed"`
	Errors    int64  `json:"errors"`
	StateHash string `json:"state_hash"`
	Report    string `json:"report"`
}

// referenceConsumers feeds evs through a fresh chain built from spec
// and returns the probe entries an uninterrupted session would report.
func referenceConsumers(t *testing.T, spec string, evs []phase.Event) []consumerProbe {
	t.Helper()
	chain, err := phase.ParseChain(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		chain.Consume(ev)
	}
	stats := chain.Stats()
	out := make([]consumerProbe, 0, len(stats))
	for i, cons := range chain.Consumers() {
		h := fnv.New64a()
		h.Write(cons.Snapshot())
		p := consumerProbe{
			Name:      stats[i].Name,
			Consumed:  stats[i].Consumed,
			Errors:    stats[i].Errors,
			StateHash: fmt.Sprintf("%016x", h.Sum64()),
		}
		if r, ok := cons.(phase.Reporter); ok {
			p.Report = r.Report()
		}
		out = append(out, p)
	}
	return out
}

// chunkBounds splits n events into count nearly-equal chunks.
func chunkBounds(n, count int) [][2]int {
	var out [][2]int
	size := n / count
	if size == 0 {
		size = 1
	}
	for off := 0; off < n; off += size {
		end := off + size
		if end > n {
			end = n
		}
		out = append(out, [2]int{off, end})
	}
	return out
}

// TestSeqProtocol exercises the idempotency contract: a duplicate of
// the last accepted sequence number replays the cached response, a gap
// answers 409, a malformed number answers 400.
func TestSeqProtocol(t *testing.T) {
	s := mustServer(t, Config{})
	defer s.Close()
	h := s.Handler()
	events := syntheticEvents(11, 4, 6)
	bounds := chunkBounds(len(events), 4)

	first := postSeq(t, h, "seq", 1, events[bounds[0][0]:bounds[0][1]])
	if first.Code != http.StatusOK || first.Header().Get("X-Lpp-Seq") != "1" {
		t.Fatalf("seq 1: status %d, X-Lpp-Seq %q", first.Code, first.Header().Get("X-Lpp-Seq"))
	}
	// Duplicate: must NOT re-feed the detector, must return the same body.
	dup := postSeq(t, h, "seq", 1, events[bounds[0][0]:bounds[0][1]])
	if dup.Code != http.StatusOK || dup.Header().Get("X-Lpp-Replayed") != "true" {
		t.Fatalf("dup seq 1: status %d, replayed %q", dup.Code, dup.Header().Get("X-Lpp-Replayed"))
	}
	if dup.Body.String() != first.Body.String() {
		t.Fatal("replayed response differs from the original")
	}
	// Gap.
	if rr := postSeq(t, h, "seq", 3, events[bounds[1][0]:bounds[1][1]]); rr.Code != http.StatusConflict {
		t.Fatalf("seq 3 after 1: status %d, want 409: %s", rr.Code, rr.Body.String())
	} else if !strings.Contains(rr.Body.String(), "sequence gap") {
		t.Fatalf("gap body: %s", rr.Body.String())
	}
	// The expected next still works.
	if rr := postSeq(t, h, "seq", 2, events[bounds[1][0]:bounds[1][1]]); rr.Code != http.StatusOK {
		t.Fatalf("seq 2: status %d", rr.Code)
	}
	// Malformed.
	req := httptest.NewRequest("POST", "/v1/sessions/seq/events?seq=zero", bytes.NewReader(encodeBinary(t, events[:10])))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("bad seq: status %d", rr.Code)
	}
	// The detector must have seen chunks 1 and 2 exactly once: its
	// stream matches a local run of the same prefix.
	stats := do(t, h, "GET", "/v1/sessions/seq/stats")
	var st map[string]int64
	json.Unmarshal(stats.Body.Bytes(), &st)
	if st["seq"] != 2 {
		t.Fatalf("stats seq = %d, want 2", st["seq"])
	}
	metricsBody := do(t, h, "GET", "/metrics").Body.String()
	if !strings.Contains(metricsBody, "lpp_replayed_chunks_total 1") {
		t.Errorf("metrics missing replayed chunk:\n%s", metricsBody)
	}
}

// TestRestartRecoversSession kills a durable server between chunks and
// resumes the stream on a fresh instance over the same data directory:
// the combined responses must match an uninterrupted local run.
func TestRestartRecoversSession(t *testing.T) {
	dir := t.TempDir()
	events := syntheticEvents(12, 8, 6)
	bounds := chunkBounds(len(events), 8)
	want := expectedCfg(online.Config{}, events)
	if len(want) == 0 {
		t.Fatal("workload produced no phase events")
	}

	var got []phaseWire
	s1 := mustServer(t, Config{DataDir: dir, CheckpointEvery: 3})
	for i := 0; i < 4; i++ {
		rr := postSeq(t, s1.Handler(), "r", uint64(i+1), events[bounds[i][0]:bounds[i][1]])
		if rr.Code != http.StatusOK {
			t.Fatalf("chunk %d: status %d: %s", i, rr.Code, rr.Body.String())
		}
		got = append(got, decodeResponse(t, rr.Body.Bytes())...)
	}
	s1.Kill()

	s2 := mustServer(t, Config{DataDir: dir, CheckpointEvery: 3})
	defer s2.Close()
	n, err := s2.RecoverSessions()
	if err != nil || n != 1 {
		t.Fatalf("RecoverSessions = %d, %v", n, err)
	}
	stats := do(t, s2.Handler(), "GET", "/v1/sessions/r/stats")
	var st map[string]int64
	json.Unmarshal(stats.Body.Bytes(), &st)
	if st["seq"] != 4 {
		t.Fatalf("recovered seq = %d, want 4", st["seq"])
	}
	for i := 4; i < len(bounds); i++ {
		rr := postSeq(t, s2.Handler(), "r", uint64(i+1), events[bounds[i][0]:bounds[i][1]])
		if rr.Code != http.StatusOK {
			t.Fatalf("chunk %d after restart: status %d: %s", i, rr.Code, rr.Body.String())
		}
		got = append(got, decodeResponse(t, rr.Body.Bytes())...)
	}
	rr := do(t, s2.Handler(), "DELETE", "/v1/sessions/r")
	if rr.Code != http.StatusOK {
		t.Fatalf("delete: status %d", rr.Code)
	}
	got = append(got, decodeResponse(t, rr.Body.Bytes())...)
	assertMatches(t, got, want)
}

// TestChaosRecoveryParityWorkloads is the headline durability check:
// for each of the nine paper workloads, the session is killed once —
// at a chunk boundary in one mode, mid-chunk (after the WAL append,
// before the detector feed) in the other — recovered on a fresh server
// over the same directory, and the stitched-together responses must be
// byte-identical to an uninterrupted run.
func TestChaosRecoveryParityWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("nine-workload chaos sweep is seconds-long; skipped in -short")
	}
	cases := []struct {
		name          string
		params        workload.Params
		keepIrregular bool
	}{
		{"fft", workload.Params{N: 512, Steps: 6, Seed: 1}, false},
		{"applu", workload.Params{N: 14, Steps: 5, Seed: 1}, false},
		{"compress", workload.Params{N: 8192, Steps: 5, Seed: 1}, false},
		{"gcc", workload.Params{N: 60, Steps: 20, Seed: 1}, true},
		{"tomcatv", workload.Params{N: 48, Steps: 6, Seed: 1}, false},
		{"swim", workload.Params{N: 48, Steps: 6, Seed: 1}, false},
		{"vortex", workload.Params{N: 1 << 12, Steps: 6, Seed: 1}, true},
		{"mesh", workload.Params{N: 2048, Steps: 6, Seed: 1}, false},
		{"moldyn", workload.Params{N: 200, Steps: 6, Seed: 1}, false},
	}
	// Fixed seed: the kill point is arbitrary but the run reproducible.
	rng := rand.New(rand.NewSource(20260806))
	for _, c := range cases {
		spec, err := workload.ByName(c.name)
		if err != nil {
			t.Fatal(err)
		}
		var col collector
		spec.Make(c.params).Run(&col)
		dcfg := online.Config{KeepIrregular: c.keepIrregular}
		want := expectedCfg(dcfg, col.events)
		if len(want) == 0 {
			t.Fatalf("%s produced no phase events", c.name)
		}
		// Consumer-state reference: what an uninterrupted session's
		// chain looks like right before the DELETE's flush.
		const chaosConsumers = "predictor,cacheresize"
		wantConsumers := referenceConsumers(t, chaosConsumers,
			expectedPreFlush(dcfg, col.events))
		bounds := chunkBounds(len(col.events), 10)
		killChunk := 1 + rng.Intn(len(bounds)-2) // never first or last
		for _, mode := range []string{"boundary", "midchunk"} {
			mode := mode
			t.Run(c.name+"/"+mode, func(t *testing.T) {
				dir := t.TempDir()
				cfg := Config{
					Detector: dcfg, DataDir: dir, CheckpointEvery: 3,
					Consumers: func() *phase.Chain {
						ch, err := phase.ParseChain(chaosConsumers)
						if err != nil {
							panic(err)
						}
						return ch
					},
				}
				s1 := mustServer(t, cfg)
				if mode == "midchunk" {
					var n int32
					s1.testChunkHook = func() {
						// Die after the WAL accepted the chunk but
						// before the detector saw any of it.
						if atomic.AddInt32(&n, 1) == int32(killChunk+1) {
							runtime.Goexit()
						}
					}
				}
				var got []phaseWire
				fail := -1
				for i := 0; i <= killChunk; i++ {
					rr := postSeq(t, s1.Handler(), "chaos", uint64(i+1), col.events[bounds[i][0]:bounds[i][1]])
					if rr.Code != http.StatusOK {
						if mode != "midchunk" || i != killChunk {
							t.Fatalf("chunk %d: status %d: %s", i, rr.Code, rr.Body.String())
						}
						fail = i
						break
					}
					got = append(got, decodeResponse(t, rr.Body.Bytes())...)
				}
				if mode == "midchunk" && fail != killChunk {
					t.Fatalf("mid-chunk kill did not fire at chunk %d (failed at %d)", killChunk, fail)
				}
				s1.Kill()

				s2 := mustServer(t, cfg)
				defer s2.Close()
				if _, err := s2.RecoverSessions(); err != nil {
					t.Fatalf("recover: %v", err)
				}
				// Resume: retransmit the killed chunk (same seq) first.
				resume := killChunk + 1
				if mode == "midchunk" {
					resume = killChunk
				}
				for i := resume; i < len(bounds); i++ {
					rr := postSeq(t, s2.Handler(), "chaos", uint64(i+1), col.events[bounds[i][0]:bounds[i][1]])
					if rr.Code != http.StatusOK {
						t.Fatalf("chunk %d after recovery: status %d: %s", i, rr.Code, rr.Body.String())
					}
					if i == killChunk && mode == "midchunk" && rr.Header().Get("X-Lpp-Replayed") != "true" {
						t.Errorf("retransmit of WAL-logged chunk %d not served from cache", i)
					}
					got = append(got, decodeResponse(t, rr.Body.Bytes())...)
				}
				// The recovered session's consumer chain must be
				// byte-identical (state hash over each consumer's
				// snapshot) to the uninterrupted reference, and report
				// the same adaptation decisions.
				ci := do(t, s2.Handler(), "GET", "/v1/sessions/chaos/consumers")
				if ci.Code != http.StatusOK {
					t.Fatalf("consumers: status %d: %s", ci.Code, ci.Body.String())
				}
				var gotConsumers []consumerProbe
				if err := json.Unmarshal(ci.Body.Bytes(), &gotConsumers); err != nil {
					t.Fatalf("consumers body: %v", err)
				}
				if !reflect.DeepEqual(gotConsumers, wantConsumers) {
					t.Errorf("recovered consumer state diverges:\n got %+v\nwant %+v",
						gotConsumers, wantConsumers)
				}
				rr := do(t, s2.Handler(), "DELETE", "/v1/sessions/chaos")
				if rr.Code != http.StatusOK {
					t.Fatalf("delete: status %d: %s", rr.Code, rr.Body.String())
				}
				got = append(got, decodeResponse(t, rr.Body.Bytes())...)
				assertMatches(t, got, want)
			})
		}
	}
}

// TestQuarantineAfterPanic: a panic while feeding the detector must
// quarantine the session — 500 with a "quarantined" body on every
// later request — not crash the server or corrupt other sessions.
func TestQuarantineAfterPanic(t *testing.T) {
	s := mustServer(t, Config{})
	defer s.Close()
	h := s.Handler()
	events := syntheticEvents(13, 2, 2)
	s.testChunkHook = func() { panic("detector bug") }
	rr := postSeq(t, h, "q", 1, events[:100])
	if rr.Code != http.StatusInternalServerError || !strings.Contains(rr.Body.String(), "quarantined") {
		t.Fatalf("panicking chunk: status %d body %s", rr.Code, rr.Body.String())
	}
	s.testChunkHook = nil
	// The worker survives but refuses the detector.
	if rr := postSeq(t, h, "q", 2, events[:100]); rr.Code != http.StatusInternalServerError ||
		!strings.Contains(rr.Body.String(), "quarantined") {
		t.Fatalf("post after quarantine: status %d body %s", rr.Code, rr.Body.String())
	}
	stats := do(t, h, "GET", "/v1/sessions/q/stats")
	var st map[string]int64
	json.Unmarshal(stats.Body.Bytes(), &st)
	if st["quarantined"] != 1 {
		t.Fatalf("stats quarantined = %d, want 1", st["quarantined"])
	}
	if body := do(t, h, "GET", "/metrics").Body.String(); !strings.Contains(body, "lpp_session_panics_total 1") {
		t.Errorf("metrics missing panic count:\n%s", body)
	}
	// Other sessions are unaffected.
	if rr := postSeq(t, h, "healthy", 1, events[:100]); rr.Code != http.StatusOK {
		t.Fatalf("healthy session: status %d", rr.Code)
	}
	// DELETE still tears the quarantined session down.
	if rr := do(t, h, "DELETE", "/v1/sessions/q"); rr.Code != http.StatusInternalServerError {
		t.Fatalf("delete quarantined: status %d", rr.Code)
	}
	if rr := do(t, h, "GET", "/v1/sessions/q/stats"); rr.Code != http.StatusNotFound {
		t.Fatalf("quarantined session survives delete (status %d)", rr.Code)
	}
}

// TestIdleReaperSuspends: an idle durable session is checkpointed and
// evicted, then transparently recovered by the next request, with no
// detector state lost.
func TestIdleReaperSuspends(t *testing.T) {
	dir := t.TempDir()
	s := mustServer(t, Config{
		DataDir:      dir,
		IdleTimeout:  30 * time.Millisecond,
		ReapInterval: 5 * time.Millisecond,
	})
	defer s.Close()
	h := s.Handler()
	events := syntheticEvents(14, 6, 6)
	bounds := chunkBounds(len(events), 2)
	want := expectedCfg(online.Config{}, events)
	if len(want) == 0 {
		t.Fatal("workload produced no phase events")
	}

	var got []phaseWire
	rr := postSeq(t, h, "idle", 1, events[bounds[0][0]:bounds[0][1]])
	if rr.Code != http.StatusOK {
		t.Fatalf("chunk 1: status %d", rr.Code)
	}
	got = append(got, decodeResponse(t, rr.Body.Bytes())...)

	// Poll the metric, not the session map: eviction from the map
	// happens before the checkpoint finishes and the counter ticks.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if body := do(t, h, "GET", "/metrics").Body.String(); strings.Contains(body, "lpp_sessions_reaped_total 1") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("session not reaped within 5s")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The next chunk recovers the session where it left off.
	rr = postSeq(t, h, "idle", 2, events[bounds[1][0]:bounds[1][1]])
	if rr.Code != http.StatusOK {
		t.Fatalf("chunk 2 after reap: status %d: %s", rr.Code, rr.Body.String())
	}
	got = append(got, decodeResponse(t, rr.Body.Bytes())...)
	rr = do(t, h, "DELETE", "/v1/sessions/idle")
	if rr.Code != http.StatusOK {
		t.Fatalf("delete: status %d", rr.Code)
	}
	got = append(got, decodeResponse(t, rr.Body.Bytes())...)
	assertMatches(t, got, want)
}

// TestGracefulCloseLeavesSessionsRecoverable: Close checkpoints every
// session; a new server over the same directory resumes them.
func TestGracefulCloseLeavesSessionsRecoverable(t *testing.T) {
	dir := t.TempDir()
	events := syntheticEvents(15, 6, 6)
	bounds := chunkBounds(len(events), 3)
	want := expectedCfg(online.Config{}, events)

	var got []phaseWire
	s1 := mustServer(t, Config{DataDir: dir})
	for i := 0; i < 2; i++ {
		rr := postSeq(t, s1.Handler(), "g", uint64(i+1), events[bounds[i][0]:bounds[i][1]])
		if rr.Code != http.StatusOK {
			t.Fatalf("chunk %d: status %d", i, rr.Code)
		}
		got = append(got, decodeResponse(t, rr.Body.Bytes())...)
	}
	s1.Close() // graceful: checkpoint, not flush

	s2 := mustServer(t, Config{DataDir: dir})
	defer s2.Close()
	rr := postSeq(t, s2.Handler(), "g", 3, events[bounds[2][0]:bounds[2][1]])
	if rr.Code != http.StatusOK {
		t.Fatalf("chunk 3 after close: status %d: %s", rr.Code, rr.Body.String())
	}
	got = append(got, decodeResponse(t, rr.Body.Bytes())...)
	rr = do(t, s2.Handler(), "DELETE", "/v1/sessions/g")
	if rr.Code != http.StatusOK {
		t.Fatalf("delete: status %d", rr.Code)
	}
	got = append(got, decodeResponse(t, rr.Body.Bytes())...)
	assertMatches(t, got, want)

	// DELETE discarded the durable state too.
	if n, err := s2.RecoverSessions(); err != nil || n != 0 {
		t.Fatalf("durable state survives delete: %d sessions, %v", n, err)
	}
}

// TestWALErrorSurfaces: an injected disk fault on the WAL append makes
// the chunk fail closed (500, not applied); once the disk heals, the
// same sequence number succeeds.
func TestWALErrorSurfaces(t *testing.T) {
	inj := faultfs.NewInjector(nil)
	s := mustServer(t, Config{DataDir: t.TempDir(), FS: inj})
	defer s.Close()
	h := s.Handler()
	events := syntheticEvents(16, 2, 2)

	if rr := postSeq(t, h, "w", 1, events[:200]); rr.Code != http.StatusOK {
		t.Fatalf("chunk 1: status %d", rr.Code)
	}
	inj.FailWritesAfter(0, nil)
	rr := postSeq(t, h, "w", 2, events[200:400])
	if rr.Code != http.StatusInternalServerError || !strings.Contains(rr.Body.String(), "wal append failed") {
		t.Fatalf("chunk under fault: status %d body %s", rr.Code, rr.Body.String())
	}
	inj.Disarm()
	// Same seq again: the failed chunk was never applied, so this is
	// not a duplicate.
	rr = postSeq(t, h, "w", 2, events[200:400])
	if rr.Code != http.StatusOK || rr.Header().Get("X-Lpp-Replayed") == "true" {
		t.Fatalf("chunk after heal: status %d replayed %q", rr.Code, rr.Header().Get("X-Lpp-Replayed"))
	}
	if body := do(t, h, "GET", "/metrics").Body.String(); !strings.Contains(body, "lpp_wal_errors_total 1") {
		t.Errorf("metrics missing wal error:\n%s", body)
	}
}
