package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"lpp/internal/online"
	"lpp/internal/phase"
	"lpp/internal/trace"
	"lpp/internal/workload"
)

// collector records a workload run as a replayable event list.
type collector struct{ events []trace.Event }

func (c *collector) Block(id trace.BlockID, instrs int) {
	c.events = append(c.events, trace.Event{Kind: trace.EventBlock, Block: id, Instrs: instrs})
}
func (c *collector) Access(addr trace.Addr) {
	c.events = append(c.events, trace.Event{Kind: trace.EventAccess, Addr: addr})
}

// postSeq posts one binary chunk under an explicit sequence number.
func postSeq(t *testing.T, h http.Handler, id string, seq uint64, events []trace.Event) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/sessions/"+id+"/events", bytes.NewReader(encodeBinary(t, events)))
	req.Header.Set("Content-Type", "application/x-lpp-trace")
	req.Header.Set("X-Lpp-Seq", fmt.Sprint(seq))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

// expectedCfg runs events through a local detector under cfg.
func expectedCfg(cfg online.Config, events []trace.Event) []phase.Event {
	var got []phase.Event
	cfg.OnEvent = func(ev phase.Event) { got = append(got, ev) }
	d := online.NewDetector(cfg)
	for _, ev := range events {
		ev.Feed(d)
	}
	d.Flush()
	return got
}

// expectedPreFlush is expectedCfg without the final Flush: the event
// stream a session has emitted before its DELETE, i.e. the position at
// which consumer-state parity is checked.
func expectedPreFlush(cfg online.Config, events []trace.Event) []phase.Event {
	var got []phase.Event
	cfg.OnEvent = func(ev phase.Event) { got = append(got, ev) }
	d := online.NewDetector(cfg)
	for _, ev := range events {
		ev.Feed(d)
	}
	return got
}

// consumerProbe mirrors the GET /v1/sessions/{id}/consumers entries.
type consumerProbe struct {
	Name      string `json:"name"`
	Consumed  int64  `json:"consumed"`
	Errors    int64  `json:"errors"`
	StateHash string `json:"state_hash"`
	Report    string `json:"report"`
}

// referenceConsumers feeds evs through a fresh chain built from spec
// and returns the probe entries an uninterrupted session would report.
func referenceConsumers(t *testing.T, spec string, evs []phase.Event) []consumerProbe {
	t.Helper()
	chain, err := phase.ParseChain(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		chain.Consume(ev)
	}
	stats := chain.Stats()
	out := make([]consumerProbe, 0, len(stats))
	for i, cons := range chain.Consumers() {
		h := fnv.New64a()
		h.Write(cons.Snapshot())
		p := consumerProbe{
			Name:      stats[i].Name,
			Consumed:  stats[i].Consumed,
			Errors:    stats[i].Errors,
			StateHash: fmt.Sprintf("%016x", h.Sum64()),
		}
		if r, ok := cons.(phase.Reporter); ok {
			p.Report = r.Report()
		}
		out = append(out, p)
	}
	return out
}

// chunkBounds splits n events into count nearly-equal chunks.
func chunkBounds(n, count int) [][2]int {
	var out [][2]int
	size := n / count
	if size == 0 {
		size = 1
	}
	for off := 0; off < n; off += size {
		end := off + size
		if end > n {
			end = n
		}
		out = append(out, [2]int{off, end})
	}
	return out
}

// TestSeqProtocol exercises the idempotency contract: a duplicate of
// the last accepted sequence number replays the cached response, a gap
// answers 409, a malformed number answers 400.
func TestSeqProtocol(t *testing.T) {
	s := mustServer(t, Config{})
	defer s.Close()
	h := s.Handler()
	events := syntheticEvents(11, 4, 6)
	bounds := chunkBounds(len(events), 4)

	first := postSeq(t, h, "seq", 1, events[bounds[0][0]:bounds[0][1]])
	if first.Code != http.StatusOK || first.Header().Get("X-Lpp-Seq") != "1" {
		t.Fatalf("seq 1: status %d, X-Lpp-Seq %q", first.Code, first.Header().Get("X-Lpp-Seq"))
	}
	// Duplicate: must NOT re-feed the detector, must return the same body.
	dup := postSeq(t, h, "seq", 1, events[bounds[0][0]:bounds[0][1]])
	if dup.Code != http.StatusOK || dup.Header().Get("X-Lpp-Replayed") != "true" {
		t.Fatalf("dup seq 1: status %d, replayed %q", dup.Code, dup.Header().Get("X-Lpp-Replayed"))
	}
	if dup.Body.String() != first.Body.String() {
		t.Fatal("replayed response differs from the original")
	}
	// Gap.
	if rr := postSeq(t, h, "seq", 3, events[bounds[1][0]:bounds[1][1]]); rr.Code != http.StatusConflict {
		t.Fatalf("seq 3 after 1: status %d, want 409: %s", rr.Code, rr.Body.String())
	} else if !strings.Contains(rr.Body.String(), "sequence gap") {
		t.Fatalf("gap body: %s", rr.Body.String())
	}
	// The expected next still works.
	if rr := postSeq(t, h, "seq", 2, events[bounds[1][0]:bounds[1][1]]); rr.Code != http.StatusOK {
		t.Fatalf("seq 2: status %d", rr.Code)
	}
	// Malformed.
	req := httptest.NewRequest("POST", "/v1/sessions/seq/events?seq=zero", bytes.NewReader(encodeBinary(t, events[:10])))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("bad seq: status %d", rr.Code)
	}
	// The detector must have seen chunks 1 and 2 exactly once: its
	// stream matches a local run of the same prefix.
	stats := do(t, h, "GET", "/v1/sessions/seq/stats")
	var st map[string]int64
	json.Unmarshal(stats.Body.Bytes(), &st)
	if st["seq"] != 2 {
		t.Fatalf("stats seq = %d, want 2", st["seq"])
	}
	metricsBody := do(t, h, "GET", "/metrics").Body.String()
	if !strings.Contains(metricsBody, "lpp_replayed_chunks_total 1") {
		t.Errorf("metrics missing replayed chunk:\n%s", metricsBody)
	}
}

// TestRestartRecoversSession kills a durable server between chunks and
// resumes the stream on a fresh instance over the same data directory:
// the combined responses must match an uninterrupted local run.
func TestRestartRecoversSession(t *testing.T) {
	dir := t.TempDir()
	events := syntheticEvents(12, 8, 6)
	bounds := chunkBounds(len(events), 8)
	want := expectedCfg(online.Config{}, events)
	if len(want) == 0 {
		t.Fatal("workload produced no phase events")
	}

	var got []phaseWire
	s1 := mustServer(t, Config{DataDir: dir, CheckpointEvery: 3})
	for i := 0; i < 4; i++ {
		rr := postSeq(t, s1.Handler(), "r", uint64(i+1), events[bounds[i][0]:bounds[i][1]])
		if rr.Code != http.StatusOK {
			t.Fatalf("chunk %d: status %d: %s", i, rr.Code, rr.Body.String())
		}
		got = append(got, decodeResponse(t, rr.Body.Bytes())...)
	}
	s1.Kill()

	s2 := mustServer(t, Config{DataDir: dir, CheckpointEvery: 3})
	defer s2.Close()
	n, err := s2.RecoverSessions()
	if err != nil || n != 1 {
		t.Fatalf("RecoverSessions = %d, %v", n, err)
	}
	stats := do(t, s2.Handler(), "GET", "/v1/sessions/r/stats")
	var st map[string]int64
	json.Unmarshal(stats.Body.Bytes(), &st)
	if st["seq"] != 4 {
		t.Fatalf("recovered seq = %d, want 4", st["seq"])
	}
	for i := 4; i < len(bounds); i++ {
		rr := postSeq(t, s2.Handler(), "r", uint64(i+1), events[bounds[i][0]:bounds[i][1]])
		if rr.Code != http.StatusOK {
			t.Fatalf("chunk %d after restart: status %d: %s", i, rr.Code, rr.Body.String())
		}
		got = append(got, decodeResponse(t, rr.Body.Bytes())...)
	}
	rr := do(t, s2.Handler(), "DELETE", "/v1/sessions/r")
	if rr.Code != http.StatusOK {
		t.Fatalf("delete: status %d", rr.Code)
	}
	got = append(got, decodeResponse(t, rr.Body.Bytes())...)
	assertMatches(t, got, want)
}

// TestChaosRecoveryParityWorkloads is the headline durability check:
// for each of the nine paper workloads, the session is killed once —
// at a chunk boundary in one mode, mid-chunk (after the WAL append,
// before the detector feed) in the other — recovered on a fresh server
// over the same directory, and the stitched-together responses must be
// byte-identical to an uninterrupted run.
func TestChaosRecoveryParityWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("nine-workload chaos sweep is seconds-long; skipped in -short")
	}
	cases := []struct {
		name          string
		params        workload.Params
		keepIrregular bool
	}{
		{"fft", workload.Params{N: 512, Steps: 6, Seed: 1}, false},
		{"applu", workload.Params{N: 14, Steps: 5, Seed: 1}, false},
		{"compress", workload.Params{N: 8192, Steps: 5, Seed: 1}, false},
		{"gcc", workload.Params{N: 60, Steps: 20, Seed: 1}, true},
		{"tomcatv", workload.Params{N: 48, Steps: 6, Seed: 1}, false},
		{"swim", workload.Params{N: 48, Steps: 6, Seed: 1}, false},
		{"vortex", workload.Params{N: 1 << 12, Steps: 6, Seed: 1}, true},
		{"mesh", workload.Params{N: 2048, Steps: 6, Seed: 1}, false},
		{"moldyn", workload.Params{N: 200, Steps: 6, Seed: 1}, false},
	}
	// Fixed seed: the kill point is arbitrary but the run reproducible.
	rng := rand.New(rand.NewSource(20260806))
	for _, c := range cases {
		spec, err := workload.ByName(c.name)
		if err != nil {
			t.Fatal(err)
		}
		var col collector
		spec.Make(c.params).Run(&col)
		dcfg := online.Config{KeepIrregular: c.keepIrregular}
		want := expectedCfg(dcfg, col.events)
		if len(want) == 0 {
			t.Fatalf("%s produced no phase events", c.name)
		}
		// Consumer-state reference: what an uninterrupted session's
		// chain looks like right before the DELETE's flush.
		const chaosConsumers = "predictor,cacheresize"
		wantConsumers := referenceConsumers(t, chaosConsumers,
			expectedPreFlush(dcfg, col.events))
		bounds := chunkBounds(len(col.events), 10)
		killChunk := 1 + rng.Intn(len(bounds)-2) // never first or last
		for _, mode := range []string{"boundary", "midchunk"} {
			mode := mode
			t.Run(c.name+"/"+mode, func(t *testing.T) {
				dir := t.TempDir()
				cfg := Config{
					Detector: dcfg, DataDir: dir, CheckpointEvery: 3,
					Consumers: func() *phase.Chain {
						ch, err := phase.ParseChain(chaosConsumers)
						if err != nil {
							panic(err)
						}
						return ch
					},
				}
				s1 := mustServer(t, cfg)
				if mode == "midchunk" {
					var n int32
					s1.testChunkHook = func() {
						// Die after the WAL accepted the chunk but
						// before the detector saw any of it.
						if atomic.AddInt32(&n, 1) == int32(killChunk+1) {
							runtime.Goexit()
						}
					}
				}
				var got []phaseWire
				fail := -1
				for i := 0; i <= killChunk; i++ {
					rr := postSeq(t, s1.Handler(), "chaos", uint64(i+1), col.events[bounds[i][0]:bounds[i][1]])
					if rr.Code != http.StatusOK {
						if mode != "midchunk" || i != killChunk {
							t.Fatalf("chunk %d: status %d: %s", i, rr.Code, rr.Body.String())
						}
						fail = i
						break
					}
					got = append(got, decodeResponse(t, rr.Body.Bytes())...)
				}
				if mode == "midchunk" && fail != killChunk {
					t.Fatalf("mid-chunk kill did not fire at chunk %d (failed at %d)", killChunk, fail)
				}
				s1.Kill()

				s2 := mustServer(t, cfg)
				defer s2.Close()
				if _, err := s2.RecoverSessions(); err != nil {
					t.Fatalf("recover: %v", err)
				}
				// Resume: retransmit the killed chunk (same seq) first.
				resume := killChunk + 1
				if mode == "midchunk" {
					resume = killChunk
				}
				for i := resume; i < len(bounds); i++ {
					rr := postSeq(t, s2.Handler(), "chaos", uint64(i+1), col.events[bounds[i][0]:bounds[i][1]])
					if rr.Code != http.StatusOK {
						t.Fatalf("chunk %d after recovery: status %d: %s", i, rr.Code, rr.Body.String())
					}
					if i == killChunk && mode == "midchunk" && rr.Header().Get("X-Lpp-Replayed") != "true" {
						t.Errorf("retransmit of WAL-logged chunk %d not served from cache", i)
					}
					got = append(got, decodeResponse(t, rr.Body.Bytes())...)
				}
				// The recovered session's consumer chain must be
				// byte-identical (state hash over each consumer's
				// snapshot) to the uninterrupted reference, and report
				// the same adaptation decisions.
				ci := do(t, s2.Handler(), "GET", "/v1/sessions/chaos/consumers")
				if ci.Code != http.StatusOK {
					t.Fatalf("consumers: status %d: %s", ci.Code, ci.Body.String())
				}
				var gotConsumers []consumerProbe
				if err := json.Unmarshal(ci.Body.Bytes(), &gotConsumers); err != nil {
					t.Fatalf("consumers body: %v", err)
				}
				if !reflect.DeepEqual(gotConsumers, wantConsumers) {
					t.Errorf("recovered consumer state diverges:\n got %+v\nwant %+v",
						gotConsumers, wantConsumers)
				}
				rr := do(t, s2.Handler(), "DELETE", "/v1/sessions/chaos")
				if rr.Code != http.StatusOK {
					t.Fatalf("delete: status %d: %s", rr.Code, rr.Body.String())
				}
				got = append(got, decodeResponse(t, rr.Body.Bytes())...)
				assertMatches(t, got, want)
			})
		}
	}
}
