package server

// Transport-layer unit tests: the sessions listing endpoint and the
// mapping of registry placement errors onto HTTP statuses and headers.

import (
	"encoding/json"
	"net/http"
	"testing"
)

func TestSessionsListingEndpoint(t *testing.T) {
	s := mustServer(t, Config{DataDir: t.TempDir(), Advertise: "http://node-a"})
	defer s.Close()
	events := encodeNDJSON(syntheticEvents(4, 1, 2))
	for _, id := range []string{"alpha", "beta"} {
		rr := post(t, s.Handler(), "/v1/sessions/"+id+"/events", "application/x-ndjson", events)
		if rr.Code != http.StatusOK {
			t.Fatalf("ingest %s: %d", id, rr.Code)
		}
	}
	sess, _ := s.getSession("beta", false)
	s.suspendSession(sess)

	rr := do(t, s.Handler(), "GET", "/v1/sessions")
	if rr.Code != http.StatusOK {
		t.Fatalf("GET /v1/sessions: %d: %s", rr.Code, rr.Body.String())
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var body struct {
		Node     string         `json:"node"`
		Sessions []sessionEntry `json:"sessions"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatalf("decode listing: %v", err)
	}
	if body.Node != "http://node-a" {
		t.Fatalf("node = %q, want the advertise URL", body.Node)
	}
	if len(body.Sessions) != 2 {
		t.Fatalf("listed %d sessions, want 2: %+v", len(body.Sessions), body.Sessions)
	}
	// Sorted by id: alpha (live) then beta (suspended).
	if body.Sessions[0].ID != "alpha" || body.Sessions[0].State != "local" || body.Sessions[0].Seq != 1 {
		t.Fatalf("alpha entry = %+v", body.Sessions[0])
	}
	if body.Sessions[1].ID != "beta" || body.Sessions[1].State != "suspended" {
		t.Fatalf("beta entry = %+v", body.Sessions[1])
	}
}

func TestMigratingSessionAnswers503WithHint(t *testing.T) {
	s := mustServer(t, Config{DataDir: t.TempDir()})
	defer s.Close()
	events := encodeNDJSON(syntheticEvents(5, 1, 2))
	rr := post(t, s.Handler(), "/v1/sessions/m/events", "application/x-ndjson", events)
	if rr.Code != http.StatusOK {
		t.Fatalf("ingest: %d", rr.Code)
	}
	sess, _ := s.getSession("m", false)
	s.suspendSession(sess)
	if err := s.markMigrating("m"); err != nil {
		t.Fatalf("markMigrating: %v", err)
	}
	rr = post(t, s.Handler(), "/v1/sessions/m/events", "application/x-ndjson", events)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("ingest during migration: %d, want 503", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" || rr.Header().Get("X-Lpp-Retry-After-Ms") == "" {
		t.Fatalf("503 during migration carries no retry hints: %v", rr.Header())
	}
}

func TestRemoteSessionAnswers421WithOwner(t *testing.T) {
	s := mustServer(t, Config{DataDir: t.TempDir(), Advertise: "http://node-a"})
	defer s.Close()
	events := encodeNDJSON(syntheticEvents(6, 1, 2))
	rr := post(t, s.Handler(), "/v1/sessions/r/events", "application/x-ndjson", events)
	if rr.Code != http.StatusOK {
		t.Fatalf("ingest: %d", rr.Code)
	}
	sess, _ := s.getSession("r", false)
	s.suspendSession(sess)
	if err := s.markMigrating("r"); err != nil {
		t.Fatalf("markMigrating: %v", err)
	}
	s.completeMigration("r", "http://node-b")

	rr = post(t, s.Handler(), "/v1/sessions/r/events", "application/x-ndjson", events)
	if rr.Code != http.StatusMisdirectedRequest {
		t.Fatalf("ingest of migrated session: %d, want 421", rr.Code)
	}
	if owner := rr.Header().Get("X-Lpp-Owner"); owner != "http://node-b" {
		t.Fatalf("X-Lpp-Owner = %q, want the new owner", owner)
	}
}
