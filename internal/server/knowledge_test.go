package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"lpp/internal/knowledge"
	"lpp/internal/online"
	"lpp/internal/phase"
	"lpp/internal/predictor"
	"lpp/internal/trace"
	"lpp/internal/workload"
)

// fftEvents records the fft golden workload as decoded trace events.
func fftEvents(t *testing.T) []trace.Event {
	t.Helper()
	spec, err := workload.ByName("fft")
	if err != nil {
		t.Fatal(err)
	}
	var col collector
	spec.Make(workload.Params{N: 512, Steps: 6, Seed: 1}).Run(&col)
	return col.events
}

// knowledgeServer builds a server wired to a durable knowledge store.
// The chain uses a Strict-policy predictor: warm starts exist for
// policies that need repeated observations before predicting (the
// stock Relaxed predictor predicts off a single length, so its
// sessions settle as knowledge misses — by design).
func knowledgeServer(t *testing.T, store *knowledge.Store) *Server {
	t.Helper()
	return mustServer(t, Config{
		Detector:  online.Config{},
		Knowledge: store,
		Consumers: func() *phase.Chain {
			return phase.NewChain(phase.NewPredictorConsumer(predictor.Strict))
		},
	})
}

// TestKnowledgeWarmStartHTTP drives the full server path: a training
// session contributes its learned phase knowledge on close, a second
// session streaming the same program warm-starts from the store, and
// the hit shows up on /metrics and /v1/knowledge.
func TestKnowledgeWarmStartHTTP(t *testing.T) {
	events := fftEvents(t)
	path := filepath.Join(t.TempDir(), "knowledge.lpp")
	store, err := knowledge.Open(path, nil, knowledge.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := knowledgeServer(t, store)
	defer s.Close()

	chunked(t, s.Handler(), "train", events, 10000, true)
	if store.Len() != 1 {
		t.Fatalf("store entries after training close = %d, want 1", store.Len())
	}
	if st := store.Stats(); st.Hits != 0 {
		t.Fatalf("hits before replay = %d, want 0", st.Hits)
	}

	chunked(t, s.Handler(), "replay", events, 10000, true)
	if st := store.Stats(); st.Hits != 1 {
		t.Fatalf("hits after replay = %d, want 1: %+v", st.Hits, st)
	}

	mr := do(t, s.Handler(), "GET", "/metrics")
	for _, want := range []string{"lpp_knowledge_entries 1", "lpp_knowledge_hits_total 1"} {
		if !strings.Contains(mr.Body.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	kr := do(t, s.Handler(), "GET", "/v1/knowledge")
	if kr.Code != http.StatusOK {
		t.Fatalf("GET /v1/knowledge: status %d", kr.Code)
	}
	var inv struct {
		Stats   knowledge.Stats     `json:"stats"`
		Entries []knowledge.Summary `json:"entries"`
	}
	if err := json.Unmarshal(kr.Body.Bytes(), &inv); err != nil {
		t.Fatalf("knowledge body: %v", err)
	}
	if inv.Stats.Entries != 1 || len(inv.Entries) != 1 {
		t.Fatalf("inventory = %+v", inv)
	}
	if inv.Entries[0].Hits != 1 {
		t.Errorf("entry hits = %d, want 1", inv.Entries[0].Hits)
	}
}

// TestKnowledgeStoreKillRecovery pins the durability guarantee: after
// a simulated crash (Kill: no flush, no goodbye), reopening the store
// file yields a byte-identical store, and a server restarted on it
// still warm-starts matching sessions.
func TestKnowledgeStoreKillRecovery(t *testing.T) {
	events := fftEvents(t)
	path := filepath.Join(t.TempDir(), "knowledge.lpp")
	store, err := knowledge.Open(path, nil, knowledge.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s1 := knowledgeServer(t, store)
	chunked(t, s1.Handler(), "train", events, 10000, true)
	want := store.Snapshot()
	s1.Kill()

	recovered, err := knowledge.Open(path, nil, knowledge.Config{})
	if err != nil {
		t.Fatalf("reopen after kill: %v", err)
	}
	if !bytes.Equal(recovered.Snapshot(), want) {
		t.Fatalf("recovered store is not byte-identical to the pre-kill snapshot")
	}

	s2 := knowledgeServer(t, recovered)
	defer s2.Close()
	chunked(t, s2.Handler(), "replay", events, 10000, true)
	if st := recovered.Stats(); st.Hits != 1 {
		t.Fatalf("hits after restart replay = %d, want 1: %+v", st.Hits, st)
	}
}
