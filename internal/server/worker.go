package server

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"lpp/internal/durable"
	"lpp/internal/online"
	"lpp/internal/trace"
)

// op selects what a queued chunk asks the worker to do.
type op int

const (
	// opEvents feeds a chunk of trace events to the detector.
	opEvents op = iota
	// opClose flushes the detector and discards all session state,
	// durable state included.
	opClose
	// opSuspend checkpoints the session and stops the worker, leaving
	// the durable state recoverable. The detector is NOT flushed: a
	// flush would advance it past where an uninterrupted run would be,
	// breaking recovery parity.
	opSuspend
)

// chunk is one unit of per-session work.
type chunk struct {
	op op
	// seq is the client's sequence number for an opEvents chunk;
	// 0 means "assign the next one" (no idempotency requested).
	seq    uint64
	events []trace.Event
	reply  chan result
}

// result is the worker's answer to one chunk.
type result struct {
	status   int
	body     []byte
	seq      uint64
	replayed bool
}

// session is one detection stream. The worker goroutine is the sole
// owner of the detector and the durable log; handlers communicate
// through the queue and read only the atomic counters.
type session struct {
	id    string
	queue chan chunk
	// kill simulates a crash (chaos tests): the worker stops where it
	// stands without flushing or checkpointing.
	kill     chan struct{}
	killOnce sync.Once
	// done is closed when the worker has exited, however it exited.
	done chan struct{}
	// ready is closed once recovery/replay has finished.
	ready chan struct{}

	// Counters maintained by the worker, read by handlers.
	lastActive  atomic.Int64
	seq         atomic.Uint64
	quarantined atomic.Bool
	events      atomic.Int64
	boundaries  atomic.Int64
	predictions atomic.Int64
	dropped     atomic.Int64
	shed        atomic.Int64
}

// worker holds the state only the session goroutine touches.
type worker struct {
	s    *Server
	sess *session
	cfg  online.Config
	det  *online.Detector
	// pending accumulates detector output between chunk boundaries.
	pending []online.PhaseEvent
	// log is the session's durable state; nil when the server is
	// ephemeral.
	log *durable.Log
	// lastSeq is the highest accepted sequence number; cached is the
	// response body it produced, replayed verbatim on a duplicate POST.
	lastSeq   uint64
	cached    []byte
	sinceCkpt int
	// quarantined is set when the detector panicked (or recovery failed)
	// and its state can no longer be trusted. The worker stays up to
	// answer requests with an error, but never feeds the detector again
	// and never checkpoints.
	quarantined bool
}

// run is the session worker: the only goroutine touching the detector.
func (s *Server) run(sess *session) {
	defer close(sess.done)
	w := &worker{s: s, sess: sess}
	w.cfg = s.cfg.Detector
	w.cfg.OnEvent = func(ev online.PhaseEvent) { w.pending = append(w.pending, ev) }
	w.det = online.NewDetector(w.cfg)
	if s.store != nil {
		w.log = s.store.Session(sess.id)
		w.restore()
		sess.seq.Store(w.lastSeq)
	}
	close(sess.ready)
	for {
		select {
		case c := <-sess.queue:
			res := w.handle(c)
			sess.seq.Store(w.lastSeq)
			c.reply <- res
			if c.op != opEvents {
				return
			}
		case <-sess.kill:
			return
		}
	}
}

func (w *worker) handle(c chunk) result {
	switch c.op {
	case opClose:
		return w.close()
	case opSuspend:
		return w.suspend()
	default:
		return w.events(c)
	}
}

// safe runs f, converting a panic into quarantine. Returns false if f
// panicked.
func (w *worker) safe(f func()) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			w.poison()
			w.s.m.panics.Add(1)
		}
	}()
	f()
	return true
}

func (w *worker) poison() {
	w.quarantined = true
	w.sess.quarantined.Store(true)
}

func (w *worker) quarantineResult(seq uint64) result {
	return result{status: http.StatusInternalServerError, body: errBody("quarantined"), seq: seq}
}

// restore rebuilds the detector from durable state: load the
// checkpoint, then replay the WAL suffix exactly as the chunks were
// first processed (pressure 0, same order), so the recovered detector
// emits the same boundaries an uninterrupted run would have.
func (w *worker) restore() {
	st, err := w.log.Load()
	if err != nil {
		w.s.m.walErrors.Add(1)
		w.poison()
		return
	}
	if st.Snapshot == nil && len(st.Entries) == 0 && st.Seq == 0 {
		return // fresh session
	}
	if st.Snapshot != nil {
		nd, err := online.NewDetectorFromSnapshot(w.cfg, st.Snapshot)
		if err != nil {
			w.s.m.walErrors.Add(1)
			w.poison()
			return
		}
		w.det = nd
	}
	w.lastSeq = st.Seq
	w.cached = st.Response
	ok := w.safe(func() {
		for _, e := range st.Entries {
			w.pending = nil
			w.det.SetPressure(0)
			w.det.AccessBatch(e.Events)
			if e.Flush {
				w.det.Flush()
			}
			w.lastSeq = e.Seq
			w.cached = encodeEvents(w.pending)
		}
	})
	w.pending = nil
	if ok {
		w.updateStats()
		w.s.m.recovered.Add(1)
	}
}

func (w *worker) events(c chunk) result {
	if w.quarantined {
		return w.quarantineResult(w.lastSeq)
	}
	seq := c.seq
	if seq == 0 {
		seq = w.lastSeq + 1
	}
	switch {
	case seq == w.lastSeq && seq > 0:
		// Idempotent retransmit: the chunk was already applied; hand
		// back the response it produced the first time.
		w.s.m.replayed.Add(1)
		return result{status: http.StatusOK, body: w.cached, seq: seq, replayed: true}
	case seq != w.lastSeq+1:
		return result{
			status: http.StatusConflict,
			body:   errBody(fmt.Sprintf("sequence gap: got %d, want %d", seq, w.lastSeq+1)),
			seq:    seq,
		}
	}
	// Log before processing: a worker killed between here and the reply
	// replays this chunk on recovery instead of losing it.
	if w.log != nil {
		if err := w.log.Append(durable.Entry{Seq: seq, Events: c.events}); err != nil {
			w.s.m.walErrors.Add(1)
			return result{status: http.StatusInternalServerError, body: errBody("wal append failed"), seq: seq}
		}
	}
	if !w.safe(func() {
		if hook := w.s.testChunkHook; hook != nil {
			hook()
		}
		// Queue occupancy is the pressure signal: a backed-up consumer
		// degrades detection fidelity instead of memory.
		w.det.SetPressure(float64(len(w.sess.queue)) / float64(cap(w.sess.queue)))
		w.det.AccessBatch(c.events)
	}) {
		return w.quarantineResult(seq)
	}
	w.updateStats()
	body := w.emit()
	w.lastSeq = seq
	w.cached = body
	w.sinceCkpt++
	if w.log != nil && w.sinceCkpt >= w.s.cfg.CheckpointEvery {
		w.checkpoint()
	}
	return result{status: http.StatusOK, body: body, seq: seq}
}

// emit encodes and counts the pending detector output.
func (w *worker) emit() []byte {
	w.s.m.boundaries.Add(countKind(w.pending, online.BoundaryDetected))
	w.s.m.predictions.Add(countKind(w.pending, online.PhasePredicted))
	body := encodeEvents(w.pending)
	w.pending = nil
	return body
}

func (w *worker) checkpoint() {
	var snap []byte
	if !w.safe(func() { snap = w.det.Snapshot() }) {
		return
	}
	if err := w.log.Checkpoint(w.lastSeq, snap, w.cached); err != nil {
		w.s.m.walErrors.Add(1)
		return
	}
	w.sinceCkpt = 0
	w.s.m.checkpoints.Add(1)
}

func (w *worker) close() result {
	if w.log != nil {
		if err := w.log.Remove(); err != nil {
			w.s.m.walErrors.Add(1)
		}
	}
	if w.quarantined {
		return w.quarantineResult(w.lastSeq)
	}
	if !w.safe(func() { w.det.Flush() }) {
		return w.quarantineResult(w.lastSeq)
	}
	w.updateStats()
	return result{status: http.StatusOK, body: w.emit(), seq: w.lastSeq}
}

func (w *worker) suspend() result {
	if w.log != nil {
		if !w.quarantined && w.sinceCkpt > 0 {
			w.checkpoint()
		}
		w.log.Close()
	}
	return result{status: http.StatusNoContent, seq: w.lastSeq}
}

func (w *worker) updateStats() {
	st := w.det.Stats()
	w.sess.events.Store(st.Accesses + st.Blocks)
	w.sess.boundaries.Store(st.Boundaries)
	w.sess.predictions.Store(st.Predictions)
	w.sess.dropped.Store(st.DroppedEvents)
	w.sess.shed.Store(st.Shed)
}
