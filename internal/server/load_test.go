package server

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentSessionsIsolated drives many sessions at once — each
// streaming a different phased workload in binary chunks from its own
// goroutine — and checks every session's phase-event stream against a
// standalone detector fed the same events. Any cross-session state
// leak, or any data race under -race, breaks the comparison.
func TestConcurrentSessionsIsolated(t *testing.T) {
	const sessions = 9
	s := mustServer(t, Config{})
	defer s.Close()
	h := s.Handler()

	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct seeds put each session in a disjoint address
			// space; varying phase counts desynchronize the streams.
			events := syntheticEvents(i+1, 5+i%3, 6)
			got := chunked(t, h, fmt.Sprintf("load-%d", i), events, 16384, true)
			want := expected(events)
			if len(want) == 0 {
				t.Errorf("session %d: workload produced no phase events", i)
				return
			}
			if len(got) != len(want) {
				t.Errorf("session %d: %d events, want %d", i, len(got), len(want))
				return
			}
			for j := range got {
				w := phaseWire{Kind: want[j].Kind.String(), Time: want[j].Time, Instructions: want[j].Instructions, Phase: want[j].Phase}
				if got[j] != w {
					t.Errorf("session %d event %d = %+v, want %+v", i, j, got[j], w)
					return
				}
			}
		}(i)
	}
	wg.Wait()

	body := do(t, h, "GET", "/metrics").Body.String()
	if body == "" {
		t.Fatal("empty /metrics after load")
	}
	for _, want := range []string{
		fmt.Sprintf("lpp_sessions_total %d", sessions),
		"lpp_sessions_active 0", // all sessions deleted
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}
