package server

import "sync"

// shard is one lock stripe of the session table. Sessions are assigned
// by a hash of their ID, so two sessions on different shards never
// contend on a table lock — only the global counters (atomics) are
// shared. Server-wide invariants that used to live under one mutex are
// split accordingly: membership of one id is a shard-local question,
// while the session cap and the closed flag are global atomics checked
// inside the shard critical section.
type shard struct {
	mu       sync.Mutex
	sessions map[string]*session
}

// FNV-1a, inlined: the IDs are short and the hash runs on every
// request, so this avoids the hash/fnv allocation-and-interface dance.
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

func fnv1a(s string) uint32 {
	h := uint32(fnvOffset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= fnvPrime32
	}
	return h
}

// shardFor returns the stripe owning id. The shard count is a power of
// two, so the mask keeps the mapping branch-free.
func (s *Server) shardFor(id string) *shard {
	return &s.shards[fnv1a(id)&s.shardMask]
}

// shardIndex is shardFor as an index, for the per-shard metrics rings.
func (s *Server) shardIndex(id string) int {
	return int(fnv1a(id) & s.shardMask)
}

// drainSessions atomically empties every shard and returns all removed
// sessions. Callers must have made new creations impossible first (by
// storing closed), so the returned snapshot is complete.
func (s *Server) drainSessions() []*session {
	var all []*session
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, sess := range sh.sessions {
			all = append(all, sess)
		}
		sh.sessions = make(map[string]*session)
		sh.mu.Unlock()
	}
	return all
}

// nextPow2 rounds n up to a power of two (minimum 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
