// Package server exposes the streaming phase detector over HTTP. Each
// session owns one online.Detector fed by a dedicated goroutine;
// clients POST trace chunks (NDJSON events or the binary trace file
// format) and receive the phase events those chunks produced as NDJSON.
// Ingestion is backpressured: each session has a bounded chunk queue,
// and a full queue answers 429 instead of growing; queue occupancy also
// drives the detector's load-shedding stride.
//
// With a DataDir configured, sessions are durable: every accepted
// chunk is written to a per-session WAL before processing, the
// detector is checkpointed periodically, and a restarted server
// replays the WAL suffix so the recovered detector emits exactly the
// phase boundaries an uninterrupted run would have. Clients may tag
// chunks with monotonically increasing sequence numbers (X-Lpp-Seq);
// a retransmit of the last accepted sequence number replays its cached
// response instead of double-feeding the detector, and a gap answers
// 409.
//
// The package is layered:
//
//   - transport (transport.go) — HTTP handlers, chunk/content-type
//     negotiation (decode.go), sequence headers, backpressure mapping.
//   - registry (registry.go) — the sharded session table, session
//     lifecycle (local/suspended/migrating/remote), the idle reaper,
//     and the Ownership interface the cluster router consults.
//   - engine (engine.go, engine_state.go) — the per-session worker
//     loop owning the detector, the phase chain, durability, and the
//     knowledge/replica hooks.
//
// Migration endpoints (migrate_handlers.go) move a live session to
// another node by exporting its LPPCKPT1 checkpoint image — the disk
// format doubles as the wire format.
package server

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"lpp/internal/durable"
	"lpp/internal/faultfs"
	"lpp/internal/knowledge"
	"lpp/internal/online"
	"lpp/internal/phase"
	"lpp/internal/replica"
)

// Config tunes the server. The zero value takes the defaults below.
type Config struct {
	// Detector is the per-session detector configuration. Its OnEvent
	// field is overwritten; everything else passes through.
	Detector online.Config
	// Consumers, when non-nil, builds each session's run-time
	// adaptation chain; every phase event the session's detector emits
	// is also delivered to the chain, the chain's state rides the
	// session's checkpoints (and is replayed bit-identically after
	// crash recovery), and per-consumer delivery counters appear on
	// /metrics. The factory must return chains with the same consumers
	// in the same order every call — a durable session restored under a
	// different consumer composition is quarantined rather than
	// silently diverging.
	Consumers func() *phase.Chain
	// Knowledge, when non-nil, is the cross-session phase knowledge
	// store. Every session's chain gains a knowledge consumer ahead of
	// the chain's predictor consumer (if any), so a new session whose
	// early grammar matches a stored program warm-starts its predictor;
	// sessions contribute their learned state back on close and
	// suspend, the store persists after each contribution, and
	// lpp_knowledge_* counters appear on /metrics alongside the
	// GET /v1/knowledge inventory endpoint.
	Knowledge *knowledge.Store
	// QueueDepth is the number of chunks buffered per session beyond
	// the one being processed (default 8). A full queue rejects the
	// chunk with 429.
	QueueDepth int
	// MaxSessions caps concurrently open sessions (default 256); at
	// the cap, new sessions are refused with 503.
	MaxSessions int
	// MaxChunkBytes caps a single POST body (default 8 MiB).
	MaxChunkBytes int64
	// DataDir enables durability: each session keeps a checkpoint and
	// a write-ahead log under this directory and survives a crash or
	// restart. Empty means in-memory only.
	DataDir string
	// FS overrides the filesystem the durable layer writes through
	// (fault-injection tests). Nil means the real filesystem.
	FS faultfs.FS
	// SyncWrites fsyncs every WAL append and checkpoint, trading
	// latency for durability against power loss.
	SyncWrites bool
	// CheckpointEvery is the number of accepted chunks between
	// detector checkpoints (default 64). It bounds recovery replay.
	CheckpointEvery int
	// IdleTimeout suspends sessions idle longer than this: checkpoint,
	// evict from memory, recover transparently on the next request.
	// Zero disables the reaper; it requires DataDir.
	IdleTimeout time.Duration
	// ReapInterval is how often the reaper scans for idle sessions
	// (default IdleTimeout/4, at least 10ms).
	ReapInterval time.Duration
	// Shards is the number of lock stripes for the session table
	// (default 16), rounded up to a power of two. Sessions hash to a
	// shard by ID; sessions on different shards never contend on a
	// table lock. 1 reproduces the old single-mutex behavior.
	Shards int
	// Advertise is this node's base URL as other cluster members reach
	// it (e.g. "http://10.0.0.1:8080"). It labels locally-owned
	// sessions in GET /v1/sessions and the Ownership interface; empty
	// means a single-node deployment.
	Advertise string
	// Peer, when non-empty, is the base URL of a standby replica.
	// Session checkpoints (and knowledge snapshots) stream to it
	// asynchronously so the peer can take over after a node death;
	// see internal/replica for the delivery contract. Requires DataDir.
	Peer string
	// Standby starts the server as a replication target: it refuses
	// normal ingest with 503, accepts /v1/replica/* writes, and reports
	// not-ready until promoted (Promote or POST /v1/replica/promote).
	// Requires DataDir.
	Standby bool
	// ReplicaQueue bounds the replication queue (default 64); overflow
	// drops the oldest item and schedules a resync.
	ReplicaQueue int
	// ReplicaTimeout is the per-replication-request deadline
	// (default 5s).
	ReplicaTimeout time.Duration
	// ReplicaTransport overrides the replication HTTP transport
	// (fault-injection tests).
	ReplicaTransport http.RoundTripper
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 256
	}
	if c.MaxChunkBytes <= 0 {
		c.MaxChunkBytes = 8 << 20
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 64
	}
	if c.Shards <= 0 {
		c.Shards = 16
	}
	c.Shards = nextPow2(c.Shards)
	if c.ReapInterval <= 0 {
		c.ReapInterval = c.IdleTimeout / 4
		if c.ReapInterval < 10*time.Millisecond {
			c.ReapInterval = 10 * time.Millisecond
		}
	}
	return c
}

// Server routes HTTP requests to per-session detector workers.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	store *durable.Store // nil when ephemeral

	// shards stripes the session table by ID hash (registry.go);
	// shardMask is len(shards)-1, a power-of-two mask.
	shards    []shard
	shardMask uint32
	closed    atomic.Bool

	// placeMu guards the placement maps: sessions this node no longer
	// (remote) or temporarily doesn't (migrating) own. See registry.go.
	placeMu   sync.Mutex
	remote    map[string]string
	migrating map[string]struct{}

	stop     chan struct{}
	stopOnce sync.Once
	reapWG   sync.WaitGroup

	// standby is true until Promote; a standby refuses normal ingest
	// and accepts /v1/replica/* writes instead. ready backs /readyz;
	// state is the human-readable reason when not ready.
	standby atomic.Bool
	ready   atomic.Bool
	stateMu sync.Mutex
	state   string

	// rep streams checkpoints to the configured peer (nil without one;
	// installed at New on a primary, at Promote on a standby).
	rep atomic.Pointer[replica.Replicator]

	// replicaMu serializes replica ingest; replicaSeqs tracks the
	// checkpoint seq held per session so stale images are ignored.
	replicaMu   sync.Mutex
	replicaSeqs map[string]uint64

	m metrics

	// testChunkHook, when set (tests only), runs during each chunk's
	// processing — after the WAL append, before the detector feed — so
	// tests can hold or kill a worker mid-chunk.
	testChunkHook func()
}

// New returns a Server; use Handler to serve it.
func New(cfg Config) (*Server, error) {
	s := &Server{
		cfg:  cfg.withDefaults(),
		mux:  http.NewServeMux(),
		stop: make(chan struct{}),
	}
	s.shards = make([]shard, s.cfg.Shards)
	s.shardMask = uint32(s.cfg.Shards - 1)
	for i := range s.shards {
		s.shards[i].sessions = make(map[string]*session)
	}
	s.remote = make(map[string]string)
	s.migrating = make(map[string]struct{})
	s.m.rings = make([]latencyRing, s.cfg.Shards)
	if s.cfg.DataDir == "" {
		if s.cfg.Peer != "" {
			return nil, errors.New("server: replication (Peer) requires DataDir")
		}
		if s.cfg.Standby {
			return nil, errors.New("server: standby mode requires DataDir")
		}
	}
	if s.cfg.DataDir != "" {
		store, err := durable.Open(s.cfg.DataDir, s.cfg.FS, s.cfg.SyncWrites)
		if err != nil {
			return nil, err
		}
		s.store = store
	}
	if s.cfg.Knowledge != nil {
		// Wrap the chain factory so every session leads with a knowledge
		// consumer targeting the chain's predictor consumer (if any).
		// Leading matters: the warm start must land before the predictor
		// consumes the boundary that triggered the match.
		inner := s.cfg.Consumers
		store := s.cfg.Knowledge
		s.cfg.Consumers = func() *phase.Chain {
			var cons []phase.Consumer
			if inner != nil {
				cons = inner().Consumers()
			}
			var target *phase.PredictorConsumer
			for _, c := range cons {
				if pc, ok := c.(*phase.PredictorConsumer); ok {
					target = pc
					break
				}
			}
			kc := knowledge.NewConsumer(store, target)
			return phase.NewChain(append([]phase.Consumer{kc}, cons...)...)
		}
	}
	if s.cfg.Consumers != nil {
		// Probe the factory once so the per-consumer metric slots (and
		// their order) are fixed before any session exists.
		probe := s.cfg.Consumers()
		names := make([]string, 0, probe.Len())
		for _, st := range probe.Stats() {
			names = append(names, st.Name)
		}
		s.m.initConsumers(names)
	}
	s.m.start = time.Now()
	s.routes()
	s.replicaSeqs = make(map[string]uint64)
	s.standby.Store(s.cfg.Standby)
	if s.cfg.Standby {
		s.setState("standby")
		// Seed the per-session seq table from disk so a restarted
		// standby answers /v1/replica/status without re-receiving
		// everything.
		if err := s.loadReplicaSeqs(); err != nil {
			return nil, err
		}
	} else {
		s.ready.Store(true)
		s.setState("ready")
		if s.cfg.Peer != "" {
			rep, err := s.newReplicator()
			if err != nil {
				return nil, err
			}
			s.rep.Store(rep)
		}
	}
	if s.store != nil && s.cfg.IdleTimeout > 0 {
		s.reapWG.Add(1)
		go s.reap()
	}
	return s, nil
}

// Handler returns the HTTP handler for the server.
func (s *Server) Handler() http.Handler { return s.mux }

// ShardCount reports the resolved number of session-table lock stripes
// (Config.Shards after defaulting and power-of-two rounding).
func (s *Server) ShardCount() int { return len(s.shards) }

// Advertise returns this node's advertised base URL ("" single-node).
func (s *Server) Advertise() string { return s.cfg.Advertise }

// RecoverSessions eagerly revives every session with durable state,
// replaying each WAL so detectors are warm before traffic arrives. It
// returns the number of sessions recovered. Without a DataDir it is a
// no-op; recovery also happens lazily on the first request for an id.
func (s *Server) RecoverSessions() (int, error) {
	if s.store == nil {
		return 0, nil
	}
	// WAL replay can take a while; flag it on /readyz so load balancers
	// hold traffic until the detectors are warm.
	s.ready.Store(false)
	s.setState("recovering")
	ids, err := s.store.List()
	if err != nil {
		s.setState("recovery failed: " + err.Error())
		return 0, err
	}
	for i, id := range ids {
		sess, err := s.getSession(id, true)
		if err != nil {
			s.setState("recovery failed: " + err.Error())
			return i, fmt.Errorf("recover session %q: %w", id, err)
		}
		<-sess.ready
	}
	if !s.standby.Load() {
		s.setState("ready")
		s.ready.Store(true)
	}
	return len(ids), nil
}

// Close stops the reaper and tears every session down gracefully:
// queued chunks are processed, then each session is checkpointed (with
// durability) and its worker exits. Durable sessions stay recoverable
// on disk; ephemeral state is discarded.
func (s *Server) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.reapWG.Wait()
	s.ready.Store(false)
	s.setState("shutting down")
	// Store closed before draining: any create serialized after this
	// point is refused inside its shard's critical section, and any
	// create that got in first is visible to the drain.
	s.closed.Store(true)
	for _, sess := range s.drainSessions() {
		c := chunk{op: opSuspend, reply: make(chan result, 1)}
		select {
		case sess.queue <- c:
			select {
			case <-c.reply:
			case <-sess.done:
			}
		case <-sess.done:
		}
	}
	s.m.sessionsActive.Store(0)
	// Replication drains after the suspend pass so the final
	// checkpoints reach the peer before the sender stops.
	if rep := s.rep.Load(); rep != nil {
		rep.Flush(5 * time.Second)
		rep.Stop()
	}
}

// Kill simulates a crash: every worker stops where it stands; nothing
// is flushed or checkpointed. Durable state is whatever the WAL and
// the last checkpoint already captured. Chaos tests use it; production
// shutdown uses Close.
func (s *Server) Kill() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.reapWG.Wait()
	s.closed.Store(true)
	for _, sess := range s.drainSessions() {
		sess.killOnce.Do(func() { close(sess.kill) })
	}
	if rep := s.rep.Load(); rep != nil {
		rep.Stop() // no flush: a crash abandons the queue
	}
}

var (
	errNoSession       = errors.New("no such session")
	errTooManySessions = errors.New("session limit reached")
	errServerClosed    = errors.New("server closed")
	errQueueFull       = errors.New("session queue full")
	errSessionDown     = errors.New("session terminated")
	errStandby         = errors.New("standby: not accepting ingest; promote this node or use the primary")
	errMigrating       = errors.New("session is migrating; retry")
)
