// Package server exposes the streaming phase detector over HTTP. Each
// session owns one online.Detector fed by a dedicated goroutine;
// clients POST trace chunks (NDJSON events or the binary trace file
// format) and receive the phase events those chunks produced as NDJSON.
// Ingestion is backpressured: each session has a bounded chunk queue,
// and a full queue answers 429 instead of growing; queue occupancy also
// drives the detector's load-shedding stride.
//
// With a DataDir configured, sessions are durable: every accepted
// chunk is written to a per-session WAL before processing, the
// detector is checkpointed periodically, and a restarted server
// replays the WAL suffix so the recovered detector emits exactly the
// phase boundaries an uninterrupted run would have. Clients may tag
// chunks with monotonically increasing sequence numbers (X-Lpp-Seq);
// a retransmit of the last accepted sequence number replays its cached
// response instead of double-feeding the detector, and a gap answers
// 409.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"lpp/internal/durable"
	"lpp/internal/faultfs"
	"lpp/internal/knowledge"
	"lpp/internal/online"
	"lpp/internal/phase"
	"lpp/internal/replica"
)

// Config tunes the server. The zero value takes the defaults below.
type Config struct {
	// Detector is the per-session detector configuration. Its OnEvent
	// field is overwritten; everything else passes through.
	Detector online.Config
	// Consumers, when non-nil, builds each session's run-time
	// adaptation chain; every phase event the session's detector emits
	// is also delivered to the chain, the chain's state rides the
	// session's checkpoints (and is replayed bit-identically after
	// crash recovery), and per-consumer delivery counters appear on
	// /metrics. The factory must return chains with the same consumers
	// in the same order every call — a durable session restored under a
	// different consumer composition is quarantined rather than
	// silently diverging.
	Consumers func() *phase.Chain
	// Knowledge, when non-nil, is the cross-session phase knowledge
	// store. Every session's chain gains a knowledge consumer ahead of
	// the chain's predictor consumer (if any), so a new session whose
	// early grammar matches a stored program warm-starts its predictor;
	// sessions contribute their learned state back on close and
	// suspend, the store persists after each contribution, and
	// lpp_knowledge_* counters appear on /metrics alongside the
	// GET /v1/knowledge inventory endpoint.
	Knowledge *knowledge.Store
	// QueueDepth is the number of chunks buffered per session beyond
	// the one being processed (default 8). A full queue rejects the
	// chunk with 429.
	QueueDepth int
	// MaxSessions caps concurrently open sessions (default 256); at
	// the cap, new sessions are refused with 503.
	MaxSessions int
	// MaxChunkBytes caps a single POST body (default 8 MiB).
	MaxChunkBytes int64
	// DataDir enables durability: each session keeps a checkpoint and
	// a write-ahead log under this directory and survives a crash or
	// restart. Empty means in-memory only.
	DataDir string
	// FS overrides the filesystem the durable layer writes through
	// (fault-injection tests). Nil means the real filesystem.
	FS faultfs.FS
	// SyncWrites fsyncs every WAL append and checkpoint, trading
	// latency for durability against power loss.
	SyncWrites bool
	// CheckpointEvery is the number of accepted chunks between
	// detector checkpoints (default 64). It bounds recovery replay.
	CheckpointEvery int
	// IdleTimeout suspends sessions idle longer than this: checkpoint,
	// evict from memory, recover transparently on the next request.
	// Zero disables the reaper; it requires DataDir.
	IdleTimeout time.Duration
	// ReapInterval is how often the reaper scans for idle sessions
	// (default IdleTimeout/4, at least 10ms).
	ReapInterval time.Duration
	// Shards is the number of lock stripes for the session table
	// (default 16), rounded up to a power of two. Sessions hash to a
	// shard by ID; sessions on different shards never contend on a
	// table lock. 1 reproduces the old single-mutex behavior.
	Shards int
	// Peer, when non-empty, is the base URL of a standby replica.
	// Session checkpoints (and knowledge snapshots) stream to it
	// asynchronously so the peer can take over after a node death;
	// see internal/replica for the delivery contract. Requires DataDir.
	Peer string
	// Standby starts the server as a replication target: it refuses
	// normal ingest with 503, accepts /v1/replica/* writes, and reports
	// not-ready until promoted (Promote or POST /v1/replica/promote).
	// Requires DataDir.
	Standby bool
	// ReplicaQueue bounds the replication queue (default 64); overflow
	// drops the oldest item and schedules a resync.
	ReplicaQueue int
	// ReplicaTimeout is the per-replication-request deadline
	// (default 5s).
	ReplicaTimeout time.Duration
	// ReplicaTransport overrides the replication HTTP transport
	// (fault-injection tests).
	ReplicaTransport http.RoundTripper
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 256
	}
	if c.MaxChunkBytes <= 0 {
		c.MaxChunkBytes = 8 << 20
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 64
	}
	if c.Shards <= 0 {
		c.Shards = 16
	}
	c.Shards = nextPow2(c.Shards)
	if c.ReapInterval <= 0 {
		c.ReapInterval = c.IdleTimeout / 4
		if c.ReapInterval < 10*time.Millisecond {
			c.ReapInterval = 10 * time.Millisecond
		}
	}
	return c
}

// Server routes HTTP requests to per-session detector workers.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	store *durable.Store // nil when ephemeral

	// shards stripes the session table by ID hash (see shard.go);
	// shardMask is len(shards)-1, a power-of-two mask.
	shards    []shard
	shardMask uint32
	closed    atomic.Bool

	stop     chan struct{}
	stopOnce sync.Once
	reapWG   sync.WaitGroup

	// standby is true until Promote; a standby refuses normal ingest
	// and accepts /v1/replica/* writes instead. ready backs /readyz;
	// state is the human-readable reason when not ready.
	standby atomic.Bool
	ready   atomic.Bool
	stateMu sync.Mutex
	state   string

	// rep streams checkpoints to the configured peer (nil without one;
	// installed at New on a primary, at Promote on a standby).
	rep atomic.Pointer[replica.Replicator]

	// replicaMu serializes replica ingest; replicaSeqs tracks the
	// checkpoint seq held per session so stale images are ignored.
	replicaMu   sync.Mutex
	replicaSeqs map[string]uint64

	m metrics

	// testChunkHook, when set (tests only), runs during each chunk's
	// processing — after the WAL append, before the detector feed — so
	// tests can hold or kill a worker mid-chunk.
	testChunkHook func()
}

// New returns a Server; use Handler to serve it.
func New(cfg Config) (*Server, error) {
	s := &Server{
		cfg:  cfg.withDefaults(),
		mux:  http.NewServeMux(),
		stop: make(chan struct{}),
	}
	s.shards = make([]shard, s.cfg.Shards)
	s.shardMask = uint32(s.cfg.Shards - 1)
	for i := range s.shards {
		s.shards[i].sessions = make(map[string]*session)
	}
	s.m.rings = make([]latencyRing, s.cfg.Shards)
	if s.cfg.DataDir == "" {
		if s.cfg.Peer != "" {
			return nil, errors.New("server: replication (Peer) requires DataDir")
		}
		if s.cfg.Standby {
			return nil, errors.New("server: standby mode requires DataDir")
		}
	}
	if s.cfg.DataDir != "" {
		store, err := durable.Open(s.cfg.DataDir, s.cfg.FS, s.cfg.SyncWrites)
		if err != nil {
			return nil, err
		}
		s.store = store
	}
	if s.cfg.Knowledge != nil {
		// Wrap the chain factory so every session leads with a knowledge
		// consumer targeting the chain's predictor consumer (if any).
		// Leading matters: the warm start must land before the predictor
		// consumes the boundary that triggered the match.
		inner := s.cfg.Consumers
		store := s.cfg.Knowledge
		s.cfg.Consumers = func() *phase.Chain {
			var cons []phase.Consumer
			if inner != nil {
				cons = inner().Consumers()
			}
			var target *phase.PredictorConsumer
			for _, c := range cons {
				if pc, ok := c.(*phase.PredictorConsumer); ok {
					target = pc
					break
				}
			}
			kc := knowledge.NewConsumer(store, target)
			return phase.NewChain(append([]phase.Consumer{kc}, cons...)...)
		}
	}
	if s.cfg.Consumers != nil {
		// Probe the factory once so the per-consumer metric slots (and
		// their order) are fixed before any session exists.
		probe := s.cfg.Consumers()
		names := make([]string, 0, probe.Len())
		for _, st := range probe.Stats() {
			names = append(names, st.Name)
		}
		s.m.initConsumers(names)
	}
	s.m.start = time.Now()
	s.mux.HandleFunc("POST /v1/sessions/{id}/events", s.handleEvents)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	s.mux.HandleFunc("GET /v1/sessions/{id}/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/sessions/{id}/consumers", s.handleConsumers)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/knowledge", s.handleKnowledge)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /v1/replica/status", s.handleReplicaStatus)
	s.mux.HandleFunc("PUT /v1/replica/sessions/{id}", s.handleReplicaPut)
	s.mux.HandleFunc("DELETE /v1/replica/sessions/{id}", s.handleReplicaDelete)
	s.mux.HandleFunc("PUT /v1/replica/knowledge", s.handleReplicaKnowledge)
	s.mux.HandleFunc("POST /v1/replica/promote", s.handleReplicaPromote)
	s.replicaSeqs = make(map[string]uint64)
	s.standby.Store(s.cfg.Standby)
	if s.cfg.Standby {
		s.setState("standby")
		// Seed the per-session seq table from disk so a restarted
		// standby answers /v1/replica/status without re-receiving
		// everything.
		if err := s.loadReplicaSeqs(); err != nil {
			return nil, err
		}
	} else {
		s.ready.Store(true)
		s.setState("ready")
		if s.cfg.Peer != "" {
			rep, err := s.newReplicator()
			if err != nil {
				return nil, err
			}
			s.rep.Store(rep)
		}
	}
	if s.store != nil && s.cfg.IdleTimeout > 0 {
		s.reapWG.Add(1)
		go s.reap()
	}
	return s, nil
}

// Handler returns the HTTP handler for the server.
func (s *Server) Handler() http.Handler { return s.mux }

// ShardCount reports the resolved number of session-table lock stripes
// (Config.Shards after defaulting and power-of-two rounding).
func (s *Server) ShardCount() int { return len(s.shards) }

// RecoverSessions eagerly revives every session with durable state,
// replaying each WAL so detectors are warm before traffic arrives. It
// returns the number of sessions recovered. Without a DataDir it is a
// no-op; recovery also happens lazily on the first request for an id.
func (s *Server) RecoverSessions() (int, error) {
	if s.store == nil {
		return 0, nil
	}
	// WAL replay can take a while; flag it on /readyz so load balancers
	// hold traffic until the detectors are warm.
	s.ready.Store(false)
	s.setState("recovering")
	ids, err := s.store.List()
	if err != nil {
		s.setState("recovery failed: " + err.Error())
		return 0, err
	}
	for i, id := range ids {
		sess, err := s.getSession(id, true)
		if err != nil {
			s.setState("recovery failed: " + err.Error())
			return i, fmt.Errorf("recover session %q: %w", id, err)
		}
		<-sess.ready
	}
	if !s.standby.Load() {
		s.setState("ready")
		s.ready.Store(true)
	}
	return len(ids), nil
}

// Close stops the reaper and tears every session down gracefully:
// queued chunks are processed, then each session is checkpointed (with
// durability) and its worker exits. Durable sessions stay recoverable
// on disk; ephemeral state is discarded.
func (s *Server) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.reapWG.Wait()
	s.ready.Store(false)
	s.setState("shutting down")
	// Store closed before draining: any create serialized after this
	// point is refused inside its shard's critical section, and any
	// create that got in first is visible to the drain.
	s.closed.Store(true)
	for _, sess := range s.drainSessions() {
		c := chunk{op: opSuspend, reply: make(chan result, 1)}
		select {
		case sess.queue <- c:
			select {
			case <-c.reply:
			case <-sess.done:
			}
		case <-sess.done:
		}
	}
	s.m.sessionsActive.Store(0)
	// Replication drains after the suspend pass so the final
	// checkpoints reach the peer before the sender stops.
	if rep := s.rep.Load(); rep != nil {
		rep.Flush(5 * time.Second)
		rep.Stop()
	}
}

// Kill simulates a crash: every worker stops where it stands; nothing
// is flushed or checkpointed. Durable state is whatever the WAL and
// the last checkpoint already captured. Chaos tests use it; production
// shutdown uses Close.
func (s *Server) Kill() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.reapWG.Wait()
	s.closed.Store(true)
	for _, sess := range s.drainSessions() {
		sess.killOnce.Do(func() { close(sess.kill) })
	}
	if rep := s.rep.Load(); rep != nil {
		rep.Stop() // no flush: a crash abandons the queue
	}
}

var (
	errNoSession       = errors.New("no such session")
	errTooManySessions = errors.New("session limit reached")
	errServerClosed    = errors.New("server closed")
	errQueueFull       = errors.New("session queue full")
	errSessionDown     = errors.New("session terminated")
	errStandby         = errors.New("standby: not accepting ingest; promote this node or use the primary")
)

func (s *Server) getSession(id string, create bool) (*session, error) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	// The closed check must happen inside the shard critical section:
	// Close stores the flag before draining the shards, so a create
	// serialized after the store is refused here, and one serialized
	// before it is already in the map when the drain takes this lock.
	if s.closed.Load() {
		return nil, errServerClosed
	}
	// A standby's durable state belongs to the replication stream;
	// reviving a session here would race the next replicated image.
	if s.standby.Load() {
		return nil, errStandby
	}
	if sess, ok := sh.sessions[id]; ok {
		return sess, nil
	}
	if !create {
		return nil, errNoSession
	}
	// The session cap is global while the table lock is per-shard, so
	// the cap is claimed by CAS on the active-session counter (which
	// tracks total table population exactly).
	for {
		n := s.m.sessionsActive.Load()
		if n >= int64(s.cfg.MaxSessions) {
			return nil, errTooManySessions
		}
		if s.m.sessionsActive.CompareAndSwap(n, n+1) {
			break
		}
	}
	sess := &session{
		id:    id,
		queue: make(chan chunk, s.cfg.QueueDepth),
		kill:  make(chan struct{}),
		done:  make(chan struct{}),
		ready: make(chan struct{}),
	}
	sess.lastActive.Store(time.Now().UnixNano())
	sh.sessions[id] = sess
	s.m.sessionsTotal.Add(1)
	go s.run(sess)
	return sess, nil
}

// dropSession removes a dead session from its shard, if it is still the
// registered one.
func (s *Server) dropSession(sess *session) {
	sh := s.shardFor(sess.id)
	sh.mu.Lock()
	if sh.sessions[sess.id] == sess {
		delete(sh.sessions, sess.id)
		s.m.sessionsActive.Add(-1)
	}
	sh.mu.Unlock()
}

// dispatch enqueues c on session id's worker and waits for its reply.
// A session whose worker died (crash simulation, suspend race) is
// dropped and — on the enqueue path — re-created once, which recovers
// it from durable state.
func (s *Server) dispatch(id string, c chunk) (result, error) {
	for attempt := 0; ; attempt++ {
		sess, err := s.getSession(id, true)
		if err != nil {
			return result{}, err
		}
		sess.lastActive.Store(time.Now().UnixNano())
		select {
		case sess.queue <- c:
		case <-sess.done:
			s.dropSession(sess)
			if attempt == 0 {
				continue
			}
			return result{}, errSessionDown
		default:
			return result{}, errQueueFull
		}
		select {
		case res := <-c.reply:
			return res, nil
		case <-sess.done:
			// The worker may have replied and exited in the same
			// breath; the reply, if any, is already buffered.
			select {
			case res := <-c.reply:
				return res, nil
			default:
			}
			s.dropSession(sess)
			return result{}, errSessionDown
		}
	}
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	seq, err := parseSeq(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	st := getDecodeState()
	events, cols, err := s.decodeChunk(r, st)
	if err != nil {
		putDecodeState(st)
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	nEvents := len(events)
	if cols != nil {
		nEvents = cols.N
		if s.store != nil {
			// The WAL's entry format is row-shaped, so durable sessions
			// materialize the columns once here (into the pooled slice)
			// and take the event path; recovery replay stays identical
			// for both wire formats.
			st.events = cols.AppendEvents(st.events[:0])
			events, cols = st.events, nil
		}
	}
	start := time.Now()
	c := chunk{op: opEvents, seq: seq, events: events, cols: cols, reply: make(chan result, 1)}
	res, err := s.dispatch(id, c)
	switch {
	case err == nil:
		// The worker replied, so nothing references the decoded events
		// any more (the WAL encodes them before the reply).
		putDecodeState(st)
		if res.status == http.StatusOK && !res.replayed {
			s.m.observeChunk(s.shardIndex(id), time.Since(start), nEvents)
		}
		writeResult(w, res)
	case errors.Is(err, errQueueFull):
		// Backpressure: the client should retry after draining; the
		// chunk is not partially applied (and was never enqueued).
		putDecodeState(st)
		s.m.rejectedChunks.Add(1)
		// Hint how long the drain actually takes (ms precision; the
		// standard Retry-After below is a blunt whole second).
		w.Header().Set("X-Lpp-Retry-After-Ms", strconv.FormatInt(s.retryHintMs(), 10))
		writeErr(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, errSessionDown):
		// The chunk may still sit in a dead worker's queue; leave the
		// state to the garbage collector rather than alias its events.
		writeErr(w, http.StatusServiceUnavailable, "session terminated; retry")
	default:
		putDecodeState(st)
		writeErr(w, http.StatusServiceUnavailable, err.Error())
	}
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sh := s.shardFor(id)
	sh.mu.Lock()
	sess, ok := sh.sessions[id]
	if ok {
		delete(sh.sessions, id)
	}
	sh.mu.Unlock()
	if !ok {
		// Not in memory — but a suspended session may still hold
		// durable state. Revive it so the close can flush the detector
		// and return the final phase events before discarding.
		if s.store == nil || !s.store.Exists(id) {
			writeErr(w, http.StatusNotFound, errNoSession.Error())
			return
		}
		revived, err := s.getSession(id, true)
		if err != nil {
			writeErr(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		sh.mu.Lock()
		if sh.sessions[id] == revived {
			delete(sh.sessions, id)
			ok = true
		}
		sh.mu.Unlock()
		if !ok {
			writeErr(w, http.StatusServiceUnavailable, "session contended; retry")
			return
		}
		sess = revived
	}
	s.m.sessionsActive.Add(-1)
	start := time.Now()
	c := chunk{op: opClose, reply: make(chan result, 1)}
	select {
	case sess.queue <- c:
	case <-sess.done:
		// Dead worker. Keep the durable state: a retried DELETE will
		// revive the session and flush it properly.
		if s.store != nil && s.store.Exists(id) {
			writeErr(w, http.StatusServiceUnavailable, errSessionDown.Error())
			return
		}
		writeResult(w, result{status: http.StatusOK})
		return
	}
	var res result
	select {
	case res = <-c.reply:
	case <-sess.done:
		select {
		case res = <-c.reply:
		default:
			writeErr(w, http.StatusServiceUnavailable, errSessionDown.Error())
			return
		}
	}
	s.m.observeChunk(s.shardIndex(id), time.Since(start), 0)
	writeResult(w, res)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sess, err := s.getSession(id, false)
	if err != nil {
		writeErr(w, http.StatusNotFound, err.Error())
		return
	}
	quarantined := int64(0)
	if sess.quarantined.Load() {
		quarantined = 1
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]int64{
		"events":      sess.events.Load(),
		"boundaries":  sess.boundaries.Load(),
		"predictions": sess.predictions.Load(),
		"dropped":     sess.dropped.Load(),
		"shed":        sess.shed.Load(),
		"seq":         int64(sess.seq.Load()),
		"quarantined": quarantined,
	})
}

// handleConsumers reports a session's run-time consumer state: per
// consumer, its delivery counters, a hash of its snapshot (the
// recovery-parity fingerprint), and its human report. A suspended
// durable session is revived to answer.
func (s *Server) handleConsumers(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := s.getSession(id, false); err != nil {
		// Only revive sessions that actually exist somewhere: in-memory
		// miss plus no durable state is a plain 404, not a create.
		if s.store == nil || !s.store.Exists(id) {
			writeErr(w, http.StatusNotFound, err.Error())
			return
		}
	}
	c := chunk{op: opConsumers, reply: make(chan result, 1)}
	res, err := s.dispatch(id, c)
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(res.status)
	w.Write(res.body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.m.write(w)
	if s.cfg.Knowledge != nil {
		st := s.cfg.Knowledge.Stats()
		fmt.Fprintf(w, "# TYPE lpp_knowledge_entries gauge\n")
		fmt.Fprintf(w, "lpp_knowledge_entries %d\n", st.Entries)
		fmt.Fprintf(w, "# TYPE lpp_knowledge_bytes gauge\n")
		fmt.Fprintf(w, "lpp_knowledge_bytes %d\n", st.Bytes)
		fmt.Fprintf(w, "# TYPE lpp_knowledge_hits_total counter\n")
		fmt.Fprintf(w, "lpp_knowledge_hits_total %d\n", st.Hits)
		fmt.Fprintf(w, "# TYPE lpp_knowledge_misses_total counter\n")
		fmt.Fprintf(w, "lpp_knowledge_misses_total %d\n", st.Misses)
		fmt.Fprintf(w, "# TYPE lpp_knowledge_lookups_total counter\n")
		fmt.Fprintf(w, "lpp_knowledge_lookups_total %d\n", st.Lookups)
		fmt.Fprintf(w, "# TYPE lpp_knowledge_evictions_total counter\n")
		fmt.Fprintf(w, "lpp_knowledge_evictions_total %d\n", st.Evictions)
	}
	s.writeReplicaMetrics(w)
}

// handleKnowledge reports the knowledge store's inventory: counters
// plus one summary per stored program.
func (s *Server) handleKnowledge(w http.ResponseWriter, _ *http.Request) {
	if s.cfg.Knowledge == nil {
		writeErr(w, http.StatusNotFound, "no knowledge store configured")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Stats   knowledge.Stats     `json:"stats"`
		Entries []knowledge.Summary `json:"entries"`
	}{s.cfg.Knowledge.Stats(), s.cfg.Knowledge.Summaries()})
}

// reap periodically suspends idle sessions: checkpoint to disk, evict
// from memory. The next request for the id recovers transparently.
func (s *Server) reap() {
	defer s.reapWG.Done()
	t := time.NewTicker(s.cfg.ReapInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			cutoff := time.Now().Add(-s.cfg.IdleTimeout).UnixNano()
			var idle []*session
			for i := range s.shards {
				sh := &s.shards[i]
				sh.mu.Lock()
				for _, sess := range sh.sessions {
					if sess.lastActive.Load() < cutoff {
						idle = append(idle, sess)
					}
				}
				sh.mu.Unlock()
			}
			for _, sess := range idle {
				if s.suspendSession(sess) {
					s.m.reaped.Add(1)
				}
			}
		}
	}
}

// suspendSession evicts sess after checkpointing it. Returns false if
// another goroutine already owns the teardown.
func (s *Server) suspendSession(sess *session) bool {
	sh := s.shardFor(sess.id)
	sh.mu.Lock()
	if sh.sessions[sess.id] != sess {
		sh.mu.Unlock()
		return false
	}
	delete(sh.sessions, sess.id)
	sh.mu.Unlock()
	s.m.sessionsActive.Add(-1)
	c := chunk{op: opSuspend, reply: make(chan result, 1)}
	select {
	case sess.queue <- c:
		select {
		case <-c.reply:
		case <-sess.done:
		}
	case <-sess.done:
	}
	return true
}

// parseSeq extracts the client sequence number from the X-Lpp-Seq
// header (or ?seq= for header-less clients). Absent means "assign the
// next one"; sequence numbers start at 1.
func parseSeq(r *http.Request) (uint64, error) {
	v := r.Header.Get("X-Lpp-Seq")
	if v == "" {
		v = r.URL.Query().Get("seq")
	}
	if v == "" {
		return 0, nil
	}
	seq, err := strconv.ParseUint(v, 10, 64)
	if err != nil || seq == 0 {
		return 0, fmt.Errorf("bad sequence number %q", v)
	}
	return seq, nil
}

// writeResult renders a worker result: the sequence headers, then the
// NDJSON body (or the JSON error body for failures).
func writeResult(w http.ResponseWriter, res result) {
	if res.seq > 0 {
		w.Header().Set("X-Lpp-Seq", strconv.FormatUint(res.seq, 10))
	}
	if res.replayed {
		w.Header().Set("X-Lpp-Replayed", "true")
	}
	if res.wantSeq > 0 {
		// Sequence-gap responses tell the client where to rewind to, so
		// a failover client can replay its tail from the right chunk.
		w.Header().Set("X-Lpp-Want-Seq", strconv.FormatUint(res.wantSeq, 10))
	}
	if res.status >= 400 {
		w.Header().Set("Content-Type", "application/json")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// writeErr sends a JSON error body; retryable statuses carry
// Retry-After.
func writeErr(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(status)
	w.Write(errBody(msg))
}

func errBody(msg string) []byte {
	b, _ := json.Marshal(map[string]string{"error": msg})
	return append(b, '\n')
}

// wireEvent is the NDJSON representation of a trace event (input) or
// phase event (output).
type wireEvent struct {
	Kind   string `json:"kind"`
	Addr   uint64 `json:"addr,omitempty"`
	Block  uint64 `json:"block,omitempty"`
	Instrs int    `json:"instrs,omitempty"`
}

// phaseWire is the NDJSON representation of one detector output event.
type phaseWire struct {
	Kind         string `json:"kind"`
	Time         int64  `json:"time"`
	Instructions int64  `json:"instructions"`
	Phase        int    `json:"phase"`
}

// encodeEvents renders detector output as NDJSON body bytes.
func encodeEvents(events []phase.Event) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, ev := range events {
		enc.Encode(phaseWire{
			Kind:         ev.Kind.String(),
			Time:         ev.Time,
			Instructions: ev.Instructions,
			Phase:        ev.Phase,
		})
	}
	return buf.Bytes()
}

func countKind(events []phase.Event, k phase.Kind) int64 {
	var n int64
	for _, ev := range events {
		if ev.Kind == k {
			n++
		}
	}
	return n
}
