// Package server exposes the streaming phase detector over HTTP. Each
// session owns one online.Detector fed by a dedicated goroutine;
// clients POST trace chunks (NDJSON events or the binary trace file
// format) and receive the phase events those chunks produced as NDJSON.
// Ingestion is backpressured: each session has a bounded chunk queue,
// and a full queue answers 429 instead of growing; queue occupancy also
// drives the detector's load-shedding stride.
package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lpp/internal/online"
	"lpp/internal/trace"
)

// Config tunes the server. The zero value takes the defaults below.
type Config struct {
	// Detector is the per-session detector configuration. Its OnEvent
	// field is overwritten; everything else passes through.
	Detector online.Config
	// QueueDepth is the number of chunks buffered per session beyond
	// the one being processed (default 8). A full queue rejects the
	// chunk with 429.
	QueueDepth int
	// MaxSessions caps concurrently open sessions (default 256); at
	// the cap, new sessions are refused with 503.
	MaxSessions int
	// MaxChunkBytes caps a single POST body (default 8 MiB).
	MaxChunkBytes int64
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 256
	}
	if c.MaxChunkBytes <= 0 {
		c.MaxChunkBytes = 8 << 20
	}
	return c
}

// Server routes HTTP requests to per-session detector workers.
type Server struct {
	cfg Config
	mux *http.ServeMux

	mu       sync.Mutex
	sessions map[string]*session
	closed   bool

	m metrics

	// testChunkHook, when set (tests only), runs at the start of each
	// chunk's processing, letting tests hold a worker mid-chunk.
	testChunkHook func()
}

// New returns a Server; use Handler to serve it.
func New(cfg Config) *Server {
	s := &Server{
		cfg:      cfg.withDefaults(),
		mux:      http.NewServeMux(),
		sessions: make(map[string]*session),
	}
	s.m.start = time.Now()
	s.mux.HandleFunc("POST /v1/sessions/{id}/events", s.handleEvents)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	s.mux.HandleFunc("GET /v1/sessions/{id}/stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// Handler returns the HTTP handler for the server.
func (s *Server) Handler() http.Handler { return s.mux }

// Close shuts every session down, flushing their detectors.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.sessions = make(map[string]*session)
	s.mu.Unlock()
	for _, sess := range sessions {
		sess.shutdown()
	}
	s.m.sessionsActive.Store(0)
}

// chunk is one unit of per-session work.
type chunk struct {
	events []trace.Event
	flush  bool
	reply  chan []online.PhaseEvent
}

// session is one detection stream. The worker goroutine is the sole
// owner of the detector; handlers communicate through the queue and
// read only the atomic counters.
type session struct {
	id    string
	queue chan chunk

	closeOnce sync.Once

	// Counters maintained by the worker, read by handlers.
	events      atomic.Int64
	boundaries  atomic.Int64
	predictions atomic.Int64
	dropped     atomic.Int64
	shed        atomic.Int64
}

func (s *Server) getSession(id string, create bool) (*session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errServerClosed
	}
	if sess, ok := s.sessions[id]; ok {
		return sess, nil
	}
	if !create {
		return nil, errNoSession
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		return nil, errTooManySessions
	}
	sess := &session{
		id:    id,
		queue: make(chan chunk, s.cfg.QueueDepth),
	}
	s.sessions[id] = sess
	s.m.sessionsActive.Add(1)
	s.m.sessionsTotal.Add(1)
	go s.run(sess)
	return sess, nil
}

var (
	errNoSession       = errors.New("no such session")
	errTooManySessions = errors.New("session limit reached")
	errServerClosed    = errors.New("server closed")
)

// run is the session worker: the only goroutine touching the detector.
func (s *Server) run(sess *session) {
	var pending []online.PhaseEvent
	cfg := s.cfg.Detector
	cfg.OnEvent = func(ev online.PhaseEvent) { pending = append(pending, ev) }
	det := online.NewDetector(cfg)
	for c := range sess.queue {
		if s.testChunkHook != nil {
			s.testChunkHook()
		}
		// Queue occupancy is the pressure signal: a backed-up
		// consumer degrades detection fidelity instead of memory.
		det.SetPressure(float64(len(sess.queue)) / float64(cap(sess.queue)))
		for _, ev := range c.events {
			ev.Feed(det)
		}
		if c.flush {
			det.Flush()
		}
		st := det.Stats()
		sess.events.Store(st.Accesses + st.Blocks)
		sess.boundaries.Store(st.Boundaries)
		sess.predictions.Store(st.Predictions)
		sess.dropped.Store(st.DroppedEvents)
		sess.shed.Store(st.Shed)
		out := pending
		pending = nil
		c.reply <- out
	}
}

// shutdown closes the session's queue after draining a final flush.
func (sess *session) shutdown() []online.PhaseEvent {
	var out []online.PhaseEvent
	sess.closeOnce.Do(func() {
		reply := make(chan []online.PhaseEvent, 1)
		sess.queue <- chunk{flush: true, reply: reply}
		out = <-reply
		close(sess.queue)
	})
	return out
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	events, err := s.decodeChunk(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sess, err := s.getSession(id, true)
	if err != nil {
		status := http.StatusServiceUnavailable
		http.Error(w, err.Error(), status)
		return
	}
	start := time.Now()
	reply := make(chan []online.PhaseEvent, 1)
	select {
	case sess.queue <- chunk{events: events, reply: reply}:
	default:
		// Backpressure: the session's queue is full. The client
		// should retry after draining; the chunk is not partially
		// applied.
		s.m.rejectedChunks.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "session queue full", http.StatusTooManyRequests)
		return
	}
	out := <-reply
	s.m.observeChunk(time.Since(start), len(events))
	s.m.boundaries.Add(countKind(out, online.BoundaryDetected))
	s.m.predictions.Add(countKind(out, online.PhasePredicted))
	writeEvents(w, out)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	sess, ok := s.sessions[id]
	if ok {
		delete(s.sessions, id)
	}
	s.mu.Unlock()
	if !ok {
		http.Error(w, errNoSession.Error(), http.StatusNotFound)
		return
	}
	start := time.Now()
	out := sess.shutdown()
	s.m.sessionsActive.Add(-1)
	s.m.observeChunk(time.Since(start), 0)
	s.m.boundaries.Add(countKind(out, online.BoundaryDetected))
	s.m.predictions.Add(countKind(out, online.PhasePredicted))
	writeEvents(w, out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sess, err := s.getSession(id, false)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]int64{
		"events":      sess.events.Load(),
		"boundaries":  sess.boundaries.Load(),
		"predictions": sess.predictions.Load(),
		"dropped":     sess.dropped.Load(),
		"shed":        sess.shed.Load(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.m.write(w)
}

// wireEvent is the NDJSON representation of a trace event (input) or
// phase event (output).
type wireEvent struct {
	Kind   string `json:"kind"`
	Addr   uint64 `json:"addr,omitempty"`
	Block  uint64 `json:"block,omitempty"`
	Instrs int    `json:"instrs,omitempty"`
}

// decodeChunk parses a request body as either the binary trace format
// (recognized by its magic header or Content-Type) or NDJSON events.
func (s *Server) decodeChunk(r *http.Request) ([]trace.Event, error) {
	body := http.MaxBytesReader(nil, r.Body, s.cfg.MaxChunkBytes)
	br := bufio.NewReaderSize(body, 1<<16)
	ct := r.Header.Get("Content-Type")
	head, _ := br.Peek(len("LPPTRACE1\n"))
	if strings.HasPrefix(ct, "application/x-lpp-trace") || bytes.Equal(head, []byte("LPPTRACE1\n")) {
		return decodeBinary(br)
	}
	return decodeNDJSON(br)
}

func decodeBinary(r io.Reader) ([]trace.Event, error) {
	tr := trace.NewReader(r)
	var events []trace.Event
	for {
		ev, err := tr.Next()
		if err == io.EOF {
			return events, nil
		}
		if err != nil {
			return nil, fmt.Errorf("binary chunk: %w", err)
		}
		events = append(events, ev)
	}
}

func decodeNDJSON(r *bufio.Reader) ([]trace.Event, error) {
	var events []trace.Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := bytes.TrimSpace(sc.Bytes())
		if len(text) == 0 {
			continue
		}
		var we wireEvent
		if err := json.Unmarshal(text, &we); err != nil {
			return nil, fmt.Errorf("ndjson line %d: %w", line, err)
		}
		switch we.Kind {
		case "access":
			events = append(events, trace.Event{Kind: trace.EventAccess, Addr: trace.Addr(we.Addr)})
		case "block":
			events = append(events, trace.Event{Kind: trace.EventBlock, Block: trace.BlockID(we.Block), Instrs: we.Instrs})
		default:
			return nil, fmt.Errorf("ndjson line %d: unknown kind %q", line, we.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ndjson: %w", err)
	}
	return events, nil
}

// phaseWire is the NDJSON representation of one detector output event.
type phaseWire struct {
	Kind         string `json:"kind"`
	Time         int64  `json:"time"`
	Instructions int64  `json:"instructions"`
	Phase        int    `json:"phase"`
}

func writeEvents(w http.ResponseWriter, events []online.PhaseEvent) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range events {
		enc.Encode(phaseWire{
			Kind:         ev.Kind.String(),
			Time:         ev.Time,
			Instructions: ev.Instructions,
			Phase:        ev.Phase,
		})
	}
	bw.Flush()
}

func countKind(events []online.PhaseEvent, k online.Kind) int64 {
	var n int64
	for _, ev := range events {
		if ev.Kind == k {
			n++
		}
	}
	return n
}
