package server

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"lpp/internal/online"
	"lpp/internal/trace"
	"lpp/internal/workload"
)

// metricValue extracts one counter's value from a Prometheus text body.
func metricValue(t *testing.T, body, name string) int64 {
	t.Helper()
	m := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\d+)$`).FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("metrics missing %q:\n%s", name, body)
	}
	v, err := strconv.ParseInt(m[1], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestDetectorHardeningMetrics drives a jittery interleaved stream
// through a server whose detector has the boundary-gap guard enabled
// and asserts the lpp_detector_* counters surface the suppressions on
// /metrics. The restart/truncation counters must at least be exported
// (they stay zero on this stream under default caps).
func TestDetectorHardeningMetrics(t *testing.T) {
	dcfg := online.DefaultConfig()
	dcfg.MinBoundaryGap = 4000
	s := mustServer(t, Config{Detector: dcfg})
	defer s.Close()
	h := s.Handler()

	spec, err := workload.HostileByName("interleaved")
	if err != nil {
		t.Fatal(err)
	}
	p := spec.Params
	p.Quantum = 500
	rec := trace.NewRecorder(1<<20, 1<<14)
	spec.Make(p).Run(rec)
	events := make([]trace.Event, 0, len(rec.T.Accesses)+len(rec.T.Blocks))
	next := 0
	for i, b := range rec.T.Blocks {
		end := len(rec.T.Accesses)
		if i+1 < len(rec.T.Blocks) {
			end = int(rec.T.Blocks[i+1].AccessIndex)
		}
		events = append(events, trace.Event{Kind: trace.EventBlock, Block: b.ID, Instrs: int(b.Instrs)})
		for ; next < end; next++ {
			events = append(events, trace.Event{Kind: trace.EventAccess, Addr: rec.T.Accesses[next]})
		}
	}
	for ; next < len(rec.T.Accesses); next++ {
		events = append(events, trace.Event{Kind: trace.EventAccess, Addr: rec.T.Accesses[next]})
	}

	const chunk = 1 << 16
	for off := 0; off < len(events); off += chunk {
		end := off + chunk
		if end > len(events) {
			end = len(events)
		}
		rr := post(t, h, "/v1/sessions/hm/events", "application/x-lpp-trace", encodeBinary(t, events[off:end]))
		if rr.Code != 200 {
			t.Fatalf("chunk at %d: status %d: %s", off, rr.Code, rr.Body.String())
		}
	}
	if rr := do(t, h, "DELETE", "/v1/sessions/hm"); rr.Code != 200 {
		t.Fatalf("close: status %d", rr.Code)
	}

	body := do(t, h, "GET", "/metrics").Body.String()
	if got := metricValue(t, body, "lpp_detector_suppressed_boundaries_total"); got == 0 {
		t.Errorf("no suppressions counted on a quantum-500 stream with MinBoundaryGap=4000")
	}
	for _, name := range []string{
		"lpp_detector_grammar_restarts_total",
		"lpp_detector_truncated_pages_total",
	} {
		if !strings.Contains(body, fmt.Sprintf("# TYPE %s counter", name)) {
			t.Errorf("metrics missing %s:\n%s", name, body)
		}
	}
}
