package server

// Engine-layer unit tests: the export operation and the migration
// round trip. The contract under test is the paper's recovery-parity
// bar applied to migration: a session moved between nodes mid-stream
// answers every remaining chunk byte-identically to an uninterrupted
// single-node run.

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
)

// migrate moves session id from a to b over the HTTP migration
// protocol and returns the exported image size.
func migrate(t *testing.T, a, b *Server, id string) int {
	t.Helper()
	rr := do(t, a.Handler(), "POST", "/v1/migrate/sessions/"+id+"/export")
	if rr.Code != http.StatusOK {
		t.Fatalf("export: %d: %s", rr.Code, rr.Body.String())
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/x-lpp-checkpoint" {
		t.Fatalf("export content type %q", ct)
	}
	image := rr.Body.Bytes()
	req := httptest.NewRequest("PUT", "/v1/migrate/sessions/"+id, bytes.NewReader(image))
	rr2 := httptest.NewRecorder()
	b.Handler().ServeHTTP(rr2, req)
	if rr2.Code != http.StatusNoContent {
		t.Fatalf("import: %d: %s", rr2.Code, rr2.Body.String())
	}
	rr3 := do(t, a.Handler(), "POST", "/v1/migrate/sessions/"+id+"/complete?target="+b.Advertise())
	if rr3.Code != http.StatusNoContent {
		t.Fatalf("complete: %d: %s", rr3.Code, rr3.Body.String())
	}
	return len(image)
}

func TestLiveMigrationRoundTripParity(t *testing.T) {
	events := syntheticEvents(7, 6, 6)
	bounds := chunkBounds(len(events), 12)

	// Reference: the same chunks against one uninterrupted server.
	ref := mustServer(t, Config{DataDir: t.TempDir()})
	var refBodies [][]byte
	for i, b := range bounds {
		rr := postSeq(t, ref.Handler(), "m1", uint64(i+1), events[b[0]:b[1]])
		if rr.Code != http.StatusOK {
			t.Fatalf("reference chunk %d: %d", i+1, rr.Code)
		}
		refBodies = append(refBodies, rr.Body.Bytes())
	}
	refFinal := do(t, ref.Handler(), "DELETE", "/v1/sessions/m1")
	ref.Close()

	a := mustServer(t, Config{DataDir: t.TempDir(), Advertise: "http://node-a"})
	defer a.Close()
	b := mustServer(t, Config{DataDir: t.TempDir(), Advertise: "http://node-b"})
	defer b.Close()

	cut := len(bounds) / 2
	for i := 0; i < cut; i++ {
		rr := postSeq(t, a.Handler(), "m1", uint64(i+1), events[bounds[i][0]:bounds[i][1]])
		if rr.Code != http.StatusOK {
			t.Fatalf("chunk %d on source: %d: %s", i+1, rr.Code, rr.Body.String())
		}
		if !bytes.Equal(rr.Body.Bytes(), refBodies[i]) {
			t.Fatalf("chunk %d response diverged on source", i+1)
		}
	}

	migrate(t, a, b, "m1")

	// The source no longer owns the session and says who does.
	rr := postSeq(t, a.Handler(), "m1", uint64(cut+1), events[bounds[cut][0]:bounds[cut][1]])
	if rr.Code != http.StatusMisdirectedRequest {
		t.Fatalf("source after migration: %d, want 421", rr.Code)
	}
	if owner := rr.Header().Get("X-Lpp-Owner"); owner != "http://node-b" {
		t.Fatalf("X-Lpp-Owner = %q", owner)
	}

	// The response cache rode the image: re-sending the last chunk the
	// source acked replays byte-identically on the target.
	rr = postSeq(t, b.Handler(), "m1", uint64(cut), events[bounds[cut-1][0]:bounds[cut-1][1]])
	if rr.Code != http.StatusOK || rr.Header().Get("X-Lpp-Replayed") != "true" {
		t.Fatalf("replay on target: %d, replayed=%q", rr.Code, rr.Header().Get("X-Lpp-Replayed"))
	}
	if !bytes.Equal(rr.Body.Bytes(), refBodies[cut-1]) {
		t.Fatalf("replayed response diverged after migration")
	}

	// Remaining chunks continue on the target, byte-identical.
	for i := cut; i < len(bounds); i++ {
		rr := postSeq(t, b.Handler(), "m1", uint64(i+1), events[bounds[i][0]:bounds[i][1]])
		if rr.Code != http.StatusOK {
			t.Fatalf("chunk %d on target: %d: %s", i+1, rr.Code, rr.Body.String())
		}
		if !bytes.Equal(rr.Body.Bytes(), refBodies[i]) {
			t.Fatalf("chunk %d response diverged on target", i+1)
		}
	}
	final := do(t, b.Handler(), "DELETE", "/v1/sessions/m1")
	if final.Code != http.StatusOK {
		t.Fatalf("final delete: %d", final.Code)
	}
	if !bytes.Equal(final.Body.Bytes(), refFinal.Body.Bytes()) {
		t.Fatalf("final flush diverged after migration")
	}
}

func TestMigrateExportUnknownSession(t *testing.T) {
	s := mustServer(t, Config{DataDir: t.TempDir()})
	defer s.Close()
	rr := do(t, s.Handler(), "POST", "/v1/migrate/sessions/ghost/export")
	if rr.Code != http.StatusNotFound {
		t.Fatalf("export of unknown session: %d, want 404", rr.Code)
	}
}

func TestMigrateAbortRevivesLocally(t *testing.T) {
	events := syntheticEvents(8, 4, 4)
	bounds := chunkBounds(len(events), 10)
	s := mustServer(t, Config{DataDir: t.TempDir()})
	defer s.Close()
	for i := 0; i < 2; i++ {
		rr := postSeq(t, s.Handler(), "ab", uint64(i+1), events[bounds[i][0]:bounds[i][1]])
		if rr.Code != http.StatusOK {
			t.Fatalf("chunk %d: %d", i+1, rr.Code)
		}
	}
	rr := do(t, s.Handler(), "POST", "/v1/migrate/sessions/ab/export")
	if rr.Code != http.StatusOK {
		t.Fatalf("export: %d: %s", rr.Code, rr.Body.String())
	}
	// Mid-migration the session refuses ingest...
	rr = postSeq(t, s.Handler(), "ab", 3, events[bounds[2][0]:bounds[2][1]])
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("ingest mid-migration: %d, want 503", rr.Code)
	}
	// ...but an abort puts the durable state back in charge.
	rr = do(t, s.Handler(), "POST", "/v1/migrate/sessions/ab/abort")
	if rr.Code != http.StatusNoContent {
		t.Fatalf("abort: %d", rr.Code)
	}
	rr = postSeq(t, s.Handler(), "ab", 3, events[bounds[2][0]:bounds[2][1]])
	if rr.Code != http.StatusOK {
		t.Fatalf("ingest after abort: %d: %s", rr.Code, rr.Body.String())
	}
}

func TestMigrateImportRefusedWhileLive(t *testing.T) {
	s := mustServer(t, Config{DataDir: t.TempDir()})
	defer s.Close()
	events := syntheticEvents(9, 2, 3)
	rr := postSeq(t, s.Handler(), "dup", 1, events)
	if rr.Code != http.StatusOK {
		t.Fatalf("ingest: %d", rr.Code)
	}
	req := httptest.NewRequest("PUT", "/v1/migrate/sessions/dup", bytes.NewReader([]byte("LPPCKPT1garbage")))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusConflict {
		t.Fatalf("import over a live session: %d, want 409", rec.Code)
	}
}
