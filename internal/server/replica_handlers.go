package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"lpp/internal/durable"
	"lpp/internal/replica"
)

// maxReplicaBody caps a single replicated checkpoint or knowledge
// snapshot (generous: images are full detector+chain state, not
// chunks).
const maxReplicaBody = 256 << 20

// newReplicator builds the outbound replication pipeline targeting
// cfg.Peer, sourcing full-resync images from this server's durable
// store.
func (s *Server) newReplicator() (*replica.Replicator, error) {
	cfg := replica.Config{
		Peer:       s.cfg.Peer,
		QueueDepth: s.cfg.ReplicaQueue,
		Timeout:    s.cfg.ReplicaTimeout,
		Transport:  s.cfg.ReplicaTransport,
		Source:     s.replicaCheckpoints,
	}
	if store := s.cfg.Knowledge; store != nil {
		cfg.Knowledge = store.Snapshot
	}
	return replica.New(cfg)
}

// Replicator returns the outbound replication pipeline, or nil when
// the server has no peer (or is an unpromoted standby).
func (s *Server) Replicator() *replica.Replicator { return s.rep.Load() }

// replicaCheckpoints is the resync source: the latest on-disk
// checkpoint of every durable session. Sessions without a checkpoint
// yet (or with an unreadable one) are reported at seq 0 so the resync
// neither pushes nor orphan-deletes them.
func (s *Server) replicaCheckpoints() []replica.Checkpoint {
	ids, err := s.store.List()
	if err != nil {
		return nil
	}
	out := make([]replica.Checkpoint, 0, len(ids))
	for _, id := range ids {
		ck := replica.Checkpoint{Session: id}
		if seq, snap, resp, err := s.store.Session(id).ReadCheckpoint(); err == nil {
			ck.Seq, ck.Snapshot, ck.Response = seq, snap, resp
		}
		out = append(out, ck)
	}
	return out
}

// loadReplicaSeqs seeds the standby's seq table from disk so a
// restarted standby reports what it already holds.
func (s *Server) loadReplicaSeqs() error {
	ids, err := s.store.List()
	if err != nil {
		return err
	}
	s.replicaMu.Lock()
	defer s.replicaMu.Unlock()
	for _, id := range ids {
		seq, _, _, err := s.store.Session(id).ReadCheckpoint()
		if err != nil {
			continue // re-replicated by the primary's next resync
		}
		s.replicaSeqs[id] = seq
	}
	return nil
}

// Standby reports whether the server is an unpromoted replication
// target.
func (s *Server) Standby() bool { return s.standby.Load() }

// Ready reports whether the server is serving normal traffic (the
// /readyz signal).
func (s *Server) Ready() bool { return s.ready.Load() }

func (s *Server) setState(state string) {
	s.stateMu.Lock()
	s.state = state
	s.stateMu.Unlock()
}

// State returns the human-readable readiness state ("ready",
// "standby", "recovering", ...).
func (s *Server) State() string {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	return s.state
}

// Promote turns a standby into a primary: recover every replicated
// session (WAL replay warms the detectors), start replicating outward
// if a peer is configured, and flip /readyz. Clients fail over by
// re-pointing at this node and rewinding to each session's
// X-Lpp-Want-Seq. Returns the number of sessions recovered.
func (s *Server) Promote() (int, error) {
	if !s.standby.CompareAndSwap(true, false) {
		return 0, errors.New("server: not a standby")
	}
	n, err := s.RecoverSessions()
	if err != nil {
		return n, err
	}
	// Replicate back toward the configured peer (the failed primary's
	// address): when that node returns as a standby, it catches up via
	// the resync path and the pair is redundant again.
	if s.cfg.Peer != "" && s.rep.Load() == nil {
		rep, err := s.newReplicator()
		if err != nil {
			return n, err
		}
		s.rep.Store(rep)
	}
	s.setState("ready")
	s.ready.Store(true)
	return n, nil
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.ready.Load() {
		io.WriteString(w, "ready\n")
		return
	}
	w.WriteHeader(http.StatusServiceUnavailable)
	io.WriteString(w, s.State()+"\n")
}

// handleReplicaStatus answers the peer's resync query: role, state,
// and the checkpoint seq held per session.
func (s *Server) handleReplicaStatus(w http.ResponseWriter, _ *http.Request) {
	st := replica.Status{State: s.State(), Sessions: make(map[string]uint64)}
	if s.standby.Load() {
		st.Role = "standby"
		s.replicaMu.Lock()
		for id, seq := range s.replicaSeqs {
			st.Sessions[id] = seq
		}
		s.replicaMu.Unlock()
	} else {
		// A primary answers too (with its on-disk inventory) so a
		// misdirected replicator sees the role refusal before pushing
		// anything.
		st.Role = "primary"
		if s.store != nil {
			for _, ck := range s.replicaCheckpoints() {
				st.Sessions[ck.Session] = ck.Seq
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

// handleReplicaPut ingests one replicated session checkpoint. The body
// is the LPPCKPT1 image; it is CRC-validated, checked against the seq
// already held (regressions are acknowledged but ignored — re-sends
// and resyncs overlap by design), and written through the durable
// layer exactly as a local checkpoint would be.
func (s *Server) handleReplicaPut(w http.ResponseWriter, r *http.Request) {
	if !s.standby.Load() {
		// The 409 is the failover signal a stale primary's replicator
		// sees after this node was promoted.
		writeErr(w, http.StatusConflict, "not a standby")
		return
	}
	id := r.PathValue("id")
	body, err := io.ReadAll(io.LimitReader(r.Body, maxReplicaBody+1))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(body) > maxReplicaBody {
		writeErr(w, http.StatusRequestEntityTooLarge, "checkpoint image too large")
		return
	}
	seq, snap, resp, err := durable.DecodeCheckpoint(body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	s.replicaMu.Lock()
	defer s.replicaMu.Unlock()
	if have, ok := s.replicaSeqs[id]; ok && seq < have {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	if err := s.store.Session(id).Checkpoint(seq, snap, resp); err != nil {
		s.m.walErrors.Add(1)
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.replicaSeqs[id] = seq
	s.m.replicaApplied.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

// handleReplicaDelete drops a replicated session (it closed on the
// primary).
func (s *Server) handleReplicaDelete(w http.ResponseWriter, r *http.Request) {
	if !s.standby.Load() {
		writeErr(w, http.StatusConflict, "not a standby")
		return
	}
	id := r.PathValue("id")
	s.replicaMu.Lock()
	defer s.replicaMu.Unlock()
	if err := s.store.Session(id).Remove(); err != nil {
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	delete(s.replicaSeqs, id)
	w.WriteHeader(http.StatusNoContent)
}

// handleReplicaKnowledge ingests a knowledge-store snapshot. A node
// without a store answers 404 (an asymmetric deployment, not an
// error); a corrupt snapshot is refused without touching the store.
func (s *Server) handleReplicaKnowledge(w http.ResponseWriter, r *http.Request) {
	if !s.standby.Load() {
		writeErr(w, http.StatusConflict, "not a standby")
		return
	}
	if s.cfg.Knowledge == nil {
		writeErr(w, http.StatusNotFound, "no knowledge store configured")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxReplicaBody+1))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(body) > maxReplicaBody {
		writeErr(w, http.StatusRequestEntityTooLarge, "knowledge snapshot too large")
		return
	}
	if err := s.cfg.Knowledge.RestoreSnapshot(body); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := s.cfg.Knowledge.Persist(); err != nil {
		s.m.walErrors.Add(1)
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.m.replicaApplied.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

// handleReplicaPromote is the HTTP face of Promote, for operators
// failing over without signal access to the process.
func (s *Server) handleReplicaPromote(w http.ResponseWriter, _ *http.Request) {
	n, err := s.Promote()
	if err != nil {
		writeErr(w, http.StatusConflict, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]int{"recovered": n})
}

// retryHintMs estimates how long a backpressured client should wait
// before retrying: the time to drain half the session queue at the
// recent p50 chunk latency, clamped to [5ms, 1s].
func (s *Server) retryHintMs() int64 {
	_, p50, _, _ := s.m.snapshot()
	hint := time.Duration(s.cfg.QueueDepth/2+1) * p50
	if hint < 5*time.Millisecond {
		hint = 5 * time.Millisecond
	}
	if hint > time.Second {
		hint = time.Second
	}
	return hint.Milliseconds()
}

// writeReplicaMetrics appends the replication and readiness section of
// /metrics.
func (s *Server) writeReplicaMetrics(w io.Writer) {
	boolGauge := func(b bool) int {
		if b {
			return 1
		}
		return 0
	}
	fmt.Fprintf(w, "# TYPE lpp_standby gauge\n")
	fmt.Fprintf(w, "lpp_standby %d\n", boolGauge(s.standby.Load()))
	fmt.Fprintf(w, "# TYPE lpp_ready gauge\n")
	fmt.Fprintf(w, "lpp_ready %d\n", boolGauge(s.ready.Load()))
	fmt.Fprintf(w, "# TYPE lpp_replica_applied_total counter\n")
	fmt.Fprintf(w, "lpp_replica_applied_total %d\n", s.m.replicaApplied.Load())
	rep := s.rep.Load()
	if rep == nil {
		return
	}
	st := rep.Stats()
	fmt.Fprintf(w, "# TYPE lpp_replica_lag gauge\n")
	fmt.Fprintf(w, "lpp_replica_lag %d\n", st.Queue)
	fmt.Fprintf(w, "# TYPE lpp_replica_sent_total counter\n")
	fmt.Fprintf(w, "lpp_replica_sent_total %d\n", st.Sent)
	fmt.Fprintf(w, "# TYPE lpp_replica_dropped_total counter\n")
	fmt.Fprintf(w, "lpp_replica_dropped_total %d\n", st.Dropped)
	fmt.Fprintf(w, "# TYPE lpp_replica_coalesced_total counter\n")
	fmt.Fprintf(w, "lpp_replica_coalesced_total %d\n", st.Coalesced)
	fmt.Fprintf(w, "# TYPE lpp_replica_errors_total counter\n")
	fmt.Fprintf(w, "lpp_replica_errors_total %d\n", st.Errors)
	fmt.Fprintf(w, "# TYPE lpp_replica_resyncs_total counter\n")
	fmt.Fprintf(w, "lpp_replica_resyncs_total %d\n", st.Resyncs)
	fmt.Fprintf(w, "# TYPE lpp_replica_connected gauge\n")
	fmt.Fprintf(w, "lpp_replica_connected %d\n", boolGauge(st.Connected))
	fmt.Fprintf(w, "# TYPE lpp_replica_lag_seconds gauge\n")
	fmt.Fprintf(w, "lpp_replica_lag_seconds{quantile=\"0.5\"} %.6f\n", st.LagP50.Seconds())
	fmt.Fprintf(w, "lpp_replica_lag_seconds{quantile=\"0.99\"} %.6f\n", st.LagP99.Seconds())
}
