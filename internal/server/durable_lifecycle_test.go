package server

// Durability lifecycle tests: quarantine, the idle reaper, graceful
// close, and WAL fault injection. Split from durable_test.go, which
// keeps the seq protocol and chaos-recovery parity suites.

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"lpp/internal/faultfs"
	"lpp/internal/online"
)

// TestQuarantineAfterPanic: a panic while feeding the detector must
// quarantine the session — 500 with a "quarantined" body on every
// later request — not crash the server or corrupt other sessions.
func TestQuarantineAfterPanic(t *testing.T) {
	s := mustServer(t, Config{})
	defer s.Close()
	h := s.Handler()
	events := syntheticEvents(13, 2, 2)
	s.testChunkHook = func() { panic("detector bug") }
	rr := postSeq(t, h, "q", 1, events[:100])
	if rr.Code != http.StatusInternalServerError || !strings.Contains(rr.Body.String(), "quarantined") {
		t.Fatalf("panicking chunk: status %d body %s", rr.Code, rr.Body.String())
	}
	s.testChunkHook = nil
	// The worker survives but refuses the detector.
	if rr := postSeq(t, h, "q", 2, events[:100]); rr.Code != http.StatusInternalServerError ||
		!strings.Contains(rr.Body.String(), "quarantined") {
		t.Fatalf("post after quarantine: status %d body %s", rr.Code, rr.Body.String())
	}
	stats := do(t, h, "GET", "/v1/sessions/q/stats")
	var st map[string]int64
	json.Unmarshal(stats.Body.Bytes(), &st)
	if st["quarantined"] != 1 {
		t.Fatalf("stats quarantined = %d, want 1", st["quarantined"])
	}
	if body := do(t, h, "GET", "/metrics").Body.String(); !strings.Contains(body, "lpp_session_panics_total 1") {
		t.Errorf("metrics missing panic count:\n%s", body)
	}
	// Other sessions are unaffected.
	if rr := postSeq(t, h, "healthy", 1, events[:100]); rr.Code != http.StatusOK {
		t.Fatalf("healthy session: status %d", rr.Code)
	}
	// DELETE still tears the quarantined session down.
	if rr := do(t, h, "DELETE", "/v1/sessions/q"); rr.Code != http.StatusInternalServerError {
		t.Fatalf("delete quarantined: status %d", rr.Code)
	}
	if rr := do(t, h, "GET", "/v1/sessions/q/stats"); rr.Code != http.StatusNotFound {
		t.Fatalf("quarantined session survives delete (status %d)", rr.Code)
	}
}

// TestIdleReaperSuspends: an idle durable session is checkpointed and
// evicted, then transparently recovered by the next request, with no
// detector state lost.
func TestIdleReaperSuspends(t *testing.T) {
	dir := t.TempDir()
	s := mustServer(t, Config{
		DataDir:      dir,
		IdleTimeout:  30 * time.Millisecond,
		ReapInterval: 5 * time.Millisecond,
	})
	defer s.Close()
	h := s.Handler()
	events := syntheticEvents(14, 6, 6)
	bounds := chunkBounds(len(events), 2)
	want := expectedCfg(online.Config{}, events)
	if len(want) == 0 {
		t.Fatal("workload produced no phase events")
	}

	var got []phaseWire
	rr := postSeq(t, h, "idle", 1, events[bounds[0][0]:bounds[0][1]])
	if rr.Code != http.StatusOK {
		t.Fatalf("chunk 1: status %d", rr.Code)
	}
	got = append(got, decodeResponse(t, rr.Body.Bytes())...)

	// Poll the metric, not the session map: eviction from the map
	// happens before the checkpoint finishes and the counter ticks.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if body := do(t, h, "GET", "/metrics").Body.String(); strings.Contains(body, "lpp_sessions_reaped_total 1") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("session not reaped within 5s")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The next chunk recovers the session where it left off.
	rr = postSeq(t, h, "idle", 2, events[bounds[1][0]:bounds[1][1]])
	if rr.Code != http.StatusOK {
		t.Fatalf("chunk 2 after reap: status %d: %s", rr.Code, rr.Body.String())
	}
	got = append(got, decodeResponse(t, rr.Body.Bytes())...)
	rr = do(t, h, "DELETE", "/v1/sessions/idle")
	if rr.Code != http.StatusOK {
		t.Fatalf("delete: status %d", rr.Code)
	}
	got = append(got, decodeResponse(t, rr.Body.Bytes())...)
	assertMatches(t, got, want)
}

// TestGracefulCloseLeavesSessionsRecoverable: Close checkpoints every
// session; a new server over the same directory resumes them.
func TestGracefulCloseLeavesSessionsRecoverable(t *testing.T) {
	dir := t.TempDir()
	events := syntheticEvents(15, 6, 6)
	bounds := chunkBounds(len(events), 3)
	want := expectedCfg(online.Config{}, events)

	var got []phaseWire
	s1 := mustServer(t, Config{DataDir: dir})
	for i := 0; i < 2; i++ {
		rr := postSeq(t, s1.Handler(), "g", uint64(i+1), events[bounds[i][0]:bounds[i][1]])
		if rr.Code != http.StatusOK {
			t.Fatalf("chunk %d: status %d", i, rr.Code)
		}
		got = append(got, decodeResponse(t, rr.Body.Bytes())...)
	}
	s1.Close() // graceful: checkpoint, not flush

	s2 := mustServer(t, Config{DataDir: dir})
	defer s2.Close()
	rr := postSeq(t, s2.Handler(), "g", 3, events[bounds[2][0]:bounds[2][1]])
	if rr.Code != http.StatusOK {
		t.Fatalf("chunk 3 after close: status %d: %s", rr.Code, rr.Body.String())
	}
	got = append(got, decodeResponse(t, rr.Body.Bytes())...)
	rr = do(t, s2.Handler(), "DELETE", "/v1/sessions/g")
	if rr.Code != http.StatusOK {
		t.Fatalf("delete: status %d", rr.Code)
	}
	got = append(got, decodeResponse(t, rr.Body.Bytes())...)
	assertMatches(t, got, want)

	// DELETE discarded the durable state too.
	if n, err := s2.RecoverSessions(); err != nil || n != 0 {
		t.Fatalf("durable state survives delete: %d sessions, %v", n, err)
	}
}

// TestWALErrorSurfaces: an injected disk fault on the WAL append makes
// the chunk fail closed (500, not applied); once the disk heals, the
// same sequence number succeeds.
func TestWALErrorSurfaces(t *testing.T) {
	inj := faultfs.NewInjector(nil)
	s := mustServer(t, Config{DataDir: t.TempDir(), FS: inj})
	defer s.Close()
	h := s.Handler()
	events := syntheticEvents(16, 2, 2)

	if rr := postSeq(t, h, "w", 1, events[:200]); rr.Code != http.StatusOK {
		t.Fatalf("chunk 1: status %d", rr.Code)
	}
	inj.FailWritesAfter(0, nil)
	rr := postSeq(t, h, "w", 2, events[200:400])
	if rr.Code != http.StatusInternalServerError || !strings.Contains(rr.Body.String(), "wal append failed") {
		t.Fatalf("chunk under fault: status %d body %s", rr.Code, rr.Body.String())
	}
	inj.Disarm()
	// Same seq again: the failed chunk was never applied, so this is
	// not a duplicate.
	rr = postSeq(t, h, "w", 2, events[200:400])
	if rr.Code != http.StatusOK || rr.Header().Get("X-Lpp-Replayed") == "true" {
		t.Fatalf("chunk after heal: status %d replayed %q", rr.Code, rr.Header().Get("X-Lpp-Replayed"))
	}
	if body := do(t, h, "GET", "/metrics").Body.String(); !strings.Contains(body, "lpp_wal_errors_total 1") {
		t.Errorf("metrics missing wal error:\n%s", body)
	}
}
