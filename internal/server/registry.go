package server

// The registry layer: who owns each session, and which goroutine may
// touch it. The session table is striped into shards; placement state
// that outlives a live worker (migrating, remote) lives in the
// placement maps guarded by placeMu. The transport layer asks the
// registry for a session and never touches workers directly; the
// cluster router asks the Ownership interface where a session lives.

import (
	"fmt"
	"sync"
	"time"
)

// shard is one lock stripe of the session table. Sessions are assigned
// by a hash of their ID, so two sessions on different shards never
// contend on a table lock — only the global counters (atomics) are
// shared. Server-wide invariants that used to live under one mutex are
// split accordingly: membership of one id is a shard-local question,
// while the session cap and the closed flag are global atomics checked
// inside the shard critical section.
type shard struct {
	mu       sync.Mutex
	sessions map[string]*session
}

// FNV-1a, inlined: the IDs are short and the hash runs on every
// request, so this avoids the hash/fnv allocation-and-interface dance.
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

func fnv1a(s string) uint32 {
	h := uint32(fnvOffset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= fnvPrime32
	}
	return h
}

// shardFor returns the stripe owning id. The shard count is a power of
// two, so the mask keeps the mapping branch-free.
func (s *Server) shardFor(id string) *shard {
	return &s.shards[fnv1a(id)&s.shardMask]
}

// shardIndex is shardFor as an index, for the per-shard metrics rings.
func (s *Server) shardIndex(id string) int {
	return int(fnv1a(id) & s.shardMask)
}

// drainSessions atomically empties every shard and returns all removed
// sessions. Callers must have made new creations impossible first (by
// storing closed), so the returned snapshot is complete.
func (s *Server) drainSessions() []*session {
	var all []*session
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, sess := range sh.sessions {
			all = append(all, sess)
		}
		sh.sessions = make(map[string]*session)
		sh.mu.Unlock()
	}
	return all
}

// nextPow2 rounds n up to a power of two (minimum 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// SessionState is a session's placement state as the registry sees it.
type SessionState string

const (
	// StateLocal: a live worker on this node owns the session.
	StateLocal SessionState = "local"
	// StateSuspended: durable state on this node's disk, no worker;
	// the next request revives it transparently.
	StateSuspended SessionState = "suspended"
	// StateMigrating: the session's checkpoint image is in flight to
	// another node; ingest is refused with 503 until the migration
	// completes (owner becomes remote) or aborts (back to suspended).
	StateMigrating SessionState = "migrating"
	// StateRemote: the session migrated away; requests are refused
	// with 421 and the owner's URL so a router can re-route.
	StateRemote SessionState = "remote"
	// StateUnknown: this node holds nothing for the id.
	StateUnknown SessionState = "unknown"
)

// Ownership answers "where does this session live?" — the interface
// the transport layer and the cluster router consult instead of
// assuming local ownership.
type Ownership interface {
	// SessionState reports id's lifecycle state and, for remote
	// sessions, the owning node's advertised base URL. Local and
	// suspended sessions report this node's Advertise URL.
	SessionState(id string) (SessionState, string)
}

// SessionState implements Ownership.
func (s *Server) SessionState(id string) (SessionState, string) {
	s.placeMu.Lock()
	if owner, ok := s.remote[id]; ok {
		s.placeMu.Unlock()
		return StateRemote, owner
	}
	if _, ok := s.migrating[id]; ok {
		s.placeMu.Unlock()
		return StateMigrating, s.cfg.Advertise
	}
	s.placeMu.Unlock()
	sh := s.shardFor(id)
	sh.mu.Lock()
	_, live := sh.sessions[id]
	sh.mu.Unlock()
	if live {
		return StateLocal, s.cfg.Advertise
	}
	if s.store != nil && s.store.Exists(id) {
		return StateSuspended, s.cfg.Advertise
	}
	return StateUnknown, ""
}

// remoteError refuses a request for a session this node handed to
// another; the owner URL rides the 421 so routers can follow it.
type remoteError struct{ owner string }

func (e *remoteError) Error() string {
	return fmt.Sprintf("session migrated to %s", e.owner)
}

// placement returns id's migrating/remote markers in one lock hold.
func (s *Server) placement(id string) (migrating bool, owner string, remote bool) {
	s.placeMu.Lock()
	defer s.placeMu.Unlock()
	_, migrating = s.migrating[id]
	owner, remote = s.remote[id]
	return
}

// markMigrating claims id for a migration. It fails if a migration is
// already in flight or the session already moved away.
func (s *Server) markMigrating(id string) error {
	s.placeMu.Lock()
	defer s.placeMu.Unlock()
	if _, ok := s.migrating[id]; ok {
		return errMigrating
	}
	if owner, ok := s.remote[id]; ok {
		return &remoteError{owner: owner}
	}
	s.migrating[id] = struct{}{}
	return nil
}

// unmarkMigrating aborts a migration claim: the session falls back to
// suspended and the next request revives it locally.
func (s *Server) unmarkMigrating(id string) {
	s.placeMu.Lock()
	delete(s.migrating, id)
	s.placeMu.Unlock()
}

// completeMigration finishes a migration: the id stops being ours and
// points at target ("" forgets the session entirely).
func (s *Server) completeMigration(id, target string) {
	s.placeMu.Lock()
	delete(s.migrating, id)
	if target != "" {
		s.remote[id] = target
	} else {
		delete(s.remote, id)
	}
	s.placeMu.Unlock()
}

// adoptSession clears any placement markers for id — an imported
// session is ours now, whatever its history here was.
func (s *Server) adoptSession(id string) {
	s.placeMu.Lock()
	delete(s.migrating, id)
	delete(s.remote, id)
	s.placeMu.Unlock()
}

func (s *Server) getSession(id string, create bool) (*session, error) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	// The closed check must happen inside the shard critical section:
	// Close stores the flag before draining the shards, so a create
	// serialized after the store is refused here, and one serialized
	// before it is already in the map when the drain takes this lock.
	if s.closed.Load() {
		return nil, errServerClosed
	}
	// A standby's durable state belongs to the replication stream;
	// reviving a session here would race the next replicated image.
	if s.standby.Load() {
		return nil, errStandby
	}
	if sess, ok := sh.sessions[id]; ok {
		return sess, nil
	}
	if !create {
		return nil, errNoSession
	}
	// Placement guard: a session mid-migration must not be revived
	// (its image is in flight), and one that moved away belongs to its
	// new owner. Checked only on the create path — a live session
	// always wins, and the migration path unlinks it first.
	if mig, owner, rem := s.placement(id); mig {
		return nil, errMigrating
	} else if rem {
		return nil, &remoteError{owner: owner}
	}
	// The session cap is global while the table lock is per-shard, so
	// the cap is claimed by CAS on the active-session counter (which
	// tracks total table population exactly).
	for {
		n := s.m.sessionsActive.Load()
		if n >= int64(s.cfg.MaxSessions) {
			return nil, errTooManySessions
		}
		if s.m.sessionsActive.CompareAndSwap(n, n+1) {
			break
		}
	}
	sess := &session{
		id:    id,
		queue: make(chan chunk, s.cfg.QueueDepth),
		kill:  make(chan struct{}),
		done:  make(chan struct{}),
		ready: make(chan struct{}),
	}
	sess.lastActive.Store(time.Now().UnixNano())
	sh.sessions[id] = sess
	s.m.sessionsTotal.Add(1)
	go s.run(sess)
	return sess, nil
}

// dropSession removes a dead session from its shard, if it is still the
// registered one.
func (s *Server) dropSession(sess *session) {
	sh := s.shardFor(sess.id)
	sh.mu.Lock()
	if sh.sessions[sess.id] == sess {
		delete(sh.sessions, sess.id)
		s.m.sessionsActive.Add(-1)
	}
	sh.mu.Unlock()
}

// unlinkSession removes sess from the table if it is still the
// registered session for its id, claiming teardown ownership. Used by
// the suspend and migration paths; returns false if another goroutine
// got there first.
func (s *Server) unlinkSession(sess *session) bool {
	sh := s.shardFor(sess.id)
	sh.mu.Lock()
	if sh.sessions[sess.id] != sess {
		sh.mu.Unlock()
		return false
	}
	delete(sh.sessions, sess.id)
	sh.mu.Unlock()
	s.m.sessionsActive.Add(-1)
	return true
}

// dispatch enqueues c on session id's worker and waits for its reply.
// A session whose worker died (crash simulation, suspend race) is
// dropped and — on the enqueue path — re-created once, which recovers
// it from durable state.
func (s *Server) dispatch(id string, c chunk) (result, error) {
	for attempt := 0; ; attempt++ {
		sess, err := s.getSession(id, true)
		if err != nil {
			return result{}, err
		}
		sess.lastActive.Store(time.Now().UnixNano())
		select {
		case sess.queue <- c:
		case <-sess.done:
			s.dropSession(sess)
			if attempt == 0 {
				continue
			}
			return result{}, errSessionDown
		default:
			return result{}, errQueueFull
		}
		select {
		case res := <-c.reply:
			return res, nil
		case <-sess.done:
			// The worker may have replied and exited in the same
			// breath; the reply, if any, is already buffered.
			select {
			case res := <-c.reply:
				return res, nil
			default:
			}
			s.dropSession(sess)
			return result{}, errSessionDown
		}
	}
}

// reap periodically suspends idle sessions: checkpoint to disk, evict
// from memory. The next request for the id recovers transparently.
func (s *Server) reap() {
	defer s.reapWG.Done()
	t := time.NewTicker(s.cfg.ReapInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			cutoff := time.Now().Add(-s.cfg.IdleTimeout).UnixNano()
			var idle []*session
			for i := range s.shards {
				sh := &s.shards[i]
				sh.mu.Lock()
				for _, sess := range sh.sessions {
					if sess.lastActive.Load() < cutoff {
						idle = append(idle, sess)
					}
				}
				sh.mu.Unlock()
			}
			for _, sess := range idle {
				if s.suspendSession(sess) {
					s.m.reaped.Add(1)
				}
			}
		}
	}
}

// suspendSession evicts sess after checkpointing it. Returns false if
// another goroutine already owns the teardown.
func (s *Server) suspendSession(sess *session) bool {
	if !s.unlinkSession(sess) {
		return false
	}
	c := chunk{op: opSuspend, reply: make(chan result, 1)}
	select {
	case sess.queue <- c:
		select {
		case <-c.reply:
		case <-sess.done:
		}
	case <-sess.done:
	}
	return true
}

// sessionEntry is one row of the GET /v1/sessions listing.
type sessionEntry struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Seq is the last accepted sequence number for live sessions; for
	// suspended sessions it is the last checkpointed one (the WAL
	// suffix may extend past it).
	Seq   uint64 `json:"seq"`
	Owner string `json:"owner,omitempty"`
}

// listSessions inventories every session this node knows about: live
// workers, suspended durable state, migrations in flight, and sessions
// that moved away.
func (s *Server) listSessions() []sessionEntry {
	seen := make(map[string]bool)
	var out []sessionEntry
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for id, sess := range sh.sessions {
			seen[id] = true
			out = append(out, sessionEntry{
				ID:    id,
				State: string(StateLocal),
				Seq:   sess.seq.Load(),
				Owner: s.cfg.Advertise,
			})
		}
		sh.mu.Unlock()
	}
	s.placeMu.Lock()
	for id := range s.migrating {
		if !seen[id] {
			seen[id] = true
			out = append(out, sessionEntry{ID: id, State: string(StateMigrating), Owner: s.cfg.Advertise})
		}
	}
	for id, owner := range s.remote {
		if !seen[id] {
			seen[id] = true
			out = append(out, sessionEntry{ID: id, State: string(StateRemote), Owner: owner})
		}
	}
	s.placeMu.Unlock()
	if s.store != nil {
		ids, err := s.store.List()
		if err == nil {
			for _, id := range ids {
				if seen[id] {
					continue
				}
				e := sessionEntry{ID: id, State: string(StateSuspended), Owner: s.cfg.Advertise}
				if seq, _, _, err := s.store.Session(id).ReadCheckpoint(); err == nil {
					e.Seq = seq
				}
				out = append(out, e)
			}
		}
	}
	return out
}
