package server

// Live session migration. The protocol reuses the durable layer's
// LPPCKPT1 checkpoint image as the wire format:
//
//	POST /v1/migrate/sessions/{id}/export   (source)
//	    suspend the worker, checkpoint, return the image
//	PUT  /v1/migrate/sessions/{id}          (target)
//	    write the image through the durable layer, resume the session
//	POST /v1/migrate/sessions/{id}/complete?target=URL  (source)
//	    drop local durable state, mark the session remote
//	POST /v1/migrate/sessions/{id}/abort    (source)
//	    forget the claim; the session revives locally on next use
//
// Between export and complete the source answers 503 for the session
// (state "migrating") so the router holds and retries traffic; after
// complete it answers 421 with X-Lpp-Owner. An orchestrator that dies
// mid-migration leaves the source holding a fresh local checkpoint, so
// abort (or a restart, which forgets the in-memory claim) fully
// recovers.

import (
	"errors"
	"io"
	"net/http"
	"strconv"

	"lpp/internal/durable"
	"lpp/internal/replica"
)

// handleMigrateExport suspends a session into an LPPCKPT1 image and
// returns it, leaving the session in the migrating state.
func (s *Server) handleMigrateExport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.standby.Load() {
		writeErr(w, http.StatusServiceUnavailable, errStandby.Error())
		return
	}
	// Only sessions that exist somewhere are exportable: a live worker
	// or suspended durable state. getSession(create) would mint a fresh
	// session for any id, so check existence first.
	if _, err := s.getSession(id, false); err != nil {
		if s.store == nil || !s.store.Exists(id) {
			writeErr(w, http.StatusNotFound, errNoSession.Error())
			return
		}
	}
	// Revive (or find) the session, then claim the migration. Claiming
	// after the revival keeps the claim unambiguous: of two concurrent
	// exports, exactly one wins markMigrating and the loser backs off
	// without touching the winner's claim.
	sess, err := s.getSession(id, true)
	if err != nil {
		var remote *remoteError
		switch {
		case errors.As(err, &remote):
			w.Header().Set("X-Lpp-Owner", remote.owner)
			writeErr(w, http.StatusMisdirectedRequest, err.Error())
		case errors.Is(err, errMigrating):
			writeErr(w, http.StatusConflict, err.Error())
		default:
			writeErr(w, http.StatusServiceUnavailable, err.Error())
		}
		return
	}
	<-sess.ready
	if err := s.markMigrating(id); err != nil {
		var remote *remoteError
		if errors.As(err, &remote) {
			w.Header().Set("X-Lpp-Owner", remote.owner)
			writeErr(w, http.StatusMisdirectedRequest, err.Error())
			return
		}
		writeErr(w, http.StatusConflict, err.Error())
		return
	}
	if !s.unlinkSession(sess) {
		// The reaper (or a concurrent teardown) got the session between
		// the revival and the claim; back off and let the caller retry.
		s.unmarkMigrating(id)
		writeErr(w, http.StatusServiceUnavailable, "session contended; retry")
		return
	}
	c := chunk{op: opExport, reply: make(chan result, 1)}
	select {
	case sess.queue <- c:
	case <-sess.done:
		s.unmarkMigrating(id)
		writeErr(w, http.StatusServiceUnavailable, errSessionDown.Error())
		return
	}
	var res result
	select {
	case res = <-c.reply:
	case <-sess.done:
		select {
		case res = <-c.reply:
		default:
			s.unmarkMigrating(id)
			writeErr(w, http.StatusServiceUnavailable, errSessionDown.Error())
			return
		}
	}
	if res.status != http.StatusOK {
		// The worker refused (quarantined, checkpoint failure) and has
		// exited; durable state is untouched, so fall back to suspended.
		s.unmarkMigrating(id)
		writeResult(w, res)
		return
	}
	s.m.migrationsOut.Add(1)
	w.Header().Set("Content-Type", "application/x-lpp-checkpoint")
	w.Header().Set("X-Lpp-Seq", strconv.FormatUint(res.seq, 10))
	w.Write(res.body)
}

// handleMigrateImport ingests an exported session image and resumes
// the session on this node.
func (s *Server) handleMigrateImport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.standby.Load() {
		writeErr(w, http.StatusConflict, "standby: promote before importing sessions")
		return
	}
	if s.store == nil {
		writeErr(w, http.StatusServiceUnavailable, "migration target requires durability (DataDir)")
		return
	}
	if _, err := s.getSession(id, false); err == nil {
		writeErr(w, http.StatusConflict, "session is live on this node")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxReplicaBody+1))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(body) > maxReplicaBody {
		writeErr(w, http.StatusRequestEntityTooLarge, "checkpoint image too large")
		return
	}
	seq, snap, resp, err := durable.DecodeCheckpoint(body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := s.store.Session(id).Checkpoint(seq, snap, resp); err != nil {
		s.m.walErrors.Add(1)
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	// Ours now, whatever this node used to think about the id.
	s.adoptSession(id)
	// Resume eagerly: the next chunk should hit a warm detector, not
	// pay the restore on the request path.
	sess, err := s.getSession(id, true)
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	<-sess.ready
	// Replicate the adopted session to this node's standby (if any) so
	// the migration doesn't shrink the redundancy story.
	if rep := s.rep.Load(); rep != nil {
		rep.EnqueueCheckpoint(replica.Checkpoint{Session: id, Seq: seq, Snapshot: snap, Response: resp})
	}
	s.m.migrationsIn.Add(1)
	w.Header().Set("X-Lpp-Seq", strconv.FormatUint(seq, 10))
	w.WriteHeader(http.StatusNoContent)
}

// handleMigrateComplete finishes a migration on the source: drop the
// local durable copy and point the session at its new owner (?target=).
func (s *Server) handleMigrateComplete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.placeMu.Lock()
	_, ok := s.migrating[id]
	s.placeMu.Unlock()
	if !ok {
		writeErr(w, http.StatusConflict, "no migration in progress for session")
		return
	}
	if s.store != nil {
		if err := s.store.Session(id).Remove(); err != nil {
			s.m.walErrors.Add(1)
			writeErr(w, http.StatusInternalServerError, err.Error())
			return
		}
		if rep := s.rep.Load(); rep != nil {
			rep.EnqueueRemove(id)
		}
	}
	s.completeMigration(id, r.URL.Query().Get("target"))
	w.WriteHeader(http.StatusNoContent)
}

// handleMigrateAbort abandons a migration claim: the local durable
// state (checkpointed at export) remains authoritative and the session
// revives here on its next request.
func (s *Server) handleMigrateAbort(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.placeMu.Lock()
	_, ok := s.migrating[id]
	s.placeMu.Unlock()
	if !ok {
		writeErr(w, http.StatusConflict, "no migration in progress for session")
		return
	}
	s.unmarkMigrating(id)
	w.WriteHeader(http.StatusNoContent)
}
