package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"lpp/internal/trace"
)

// decodeVia runs one body through the pooled decoder and copies the
// result out (the slice is only valid until the state is recycled).
func decodeVia(t *testing.T, s *Server, contentType string, body []byte) ([]trace.Event, error) {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/sessions/x/events", bytes.NewReader(body))
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	st := getDecodeState()
	defer putDecodeState(st)
	events, cols, err := s.decodeChunk(req, st)
	if err != nil {
		return nil, err
	}
	if cols != nil {
		return cols.AppendEvents(nil), nil
	}
	return append([]trace.Event(nil), events...), nil
}

// TestNDJSONFastPathMatchesEncodingJSON cross-checks the hand-rolled
// line parser against encoding/json on canonical lines, whitespace
// variants, reordered keys, and every fallback shape (escapes, floats,
// unknown keys, overflow). Both paths must agree event for event.
func TestNDJSONFastPathMatchesEncodingJSON(t *testing.T) {
	lines := []string{
		`{"kind":"access","addr":4096}`,
		`{"kind":"access","addr":0}`,
		`{"kind":"access","addr":18446744073709551615}`,
		`{"kind":"block","block":7,"instrs":64}`,
		`{"kind":"block","block":0,"instrs":0}`,
		`{"kind":"block"}`,
		`{"addr":64,"kind":"access"}`,
		`{"instrs":9,"block":3,"kind":"block"}`,
		`  { "kind" : "access" , "addr" : 12 }  `,
		`{"kind":"acc\u0065ss","addr":5}`,   // escaped string → fallback
		`{"kind":"access","addr":77,"x":1}`, // unknown key → fallback
		`{"kind":"access","addr":77,"x":{"y":[1,2]}}`,
	}
	for _, line := range lines {
		t.Run(line, func(t *testing.T) {
			var we wireEvent
			if err := json.Unmarshal([]byte(line), &we); err != nil {
				t.Fatalf("reference unmarshal: %v", err)
			}
			var want trace.Event
			switch we.Kind {
			case "access":
				want = trace.Event{Kind: trace.EventAccess, Addr: trace.Addr(we.Addr)}
			case "block":
				want = trace.Event{Kind: trace.EventBlock, Block: trace.BlockID(we.Block), Instrs: we.Instrs}
			default:
				t.Fatalf("reference kind %q", we.Kind)
			}
			got, ok := parseWireEvent(bytes.TrimSpace([]byte(line)))
			if ok && got != want {
				t.Errorf("fast path = %+v, want %+v", got, want)
			}
			// ok=false is always legal (fallback owns it); verify the
			// full decoder agrees with the reference either way.
			s := mustServer(t, Config{})
			defer s.Close()
			events, err := decodeVia(t, s, "", []byte(line+"\n"))
			if err != nil {
				t.Fatalf("decodeChunk: %v", err)
			}
			if len(events) != 1 || events[0] != want {
				t.Errorf("decodeChunk = %+v, want [%+v]", events, want)
			}
		})
	}
}

// TestNDJSONFastPathRejectsMalformed: lines the fast path cannot prove
// canonical must reach encoding/json so errors keep their wording.
func TestNDJSONFastPathRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		`{not json`,
		`{}`,
		`{"kind":"jump","addr":1}`,
		`{"kind":"access","addr":-1}`,
		`{"kind":"access","addr":1.0e3}`, // float: encoding/json rejects for uint64 too
		`[1,2,3]`,
		`{"kind":"access","addr":184467440737095516150}`, // uint64 overflow
	} {
		if ev, ok := parseWireEvent([]byte(line)); ok {
			// Only acceptable if encoding/json also accepts it with the
			// same result; none of these qualify except via kind check.
			t.Errorf("fast path accepted %q as %+v", line, ev)
		}
	}
	s := mustServer(t, Config{})
	defer s.Close()
	if _, err := decodeVia(t, s, "", []byte(`{"kind":"jump","addr":1}`+"\n")); err == nil ||
		!bytes.Contains([]byte(err.Error()), []byte("unknown kind")) {
		t.Errorf("unknown kind error = %v", err)
	}
	if _, err := decodeVia(t, s, "", []byte("{not json\n")); err == nil ||
		!bytes.Contains([]byte(err.Error()), []byte("ndjson line 1")) {
		t.Errorf("malformed line error = %v", err)
	}
}

// TestDecodeReuseIsClean: a pooled state must not leak one chunk's
// events, reader position, or delta-decoding state into the next.
func TestDecodeReuseIsClean(t *testing.T) {
	s := mustServer(t, Config{})
	defer s.Close()
	big := syntheticEvents(1, 2, 1)[:3000]
	small := syntheticEvents(2, 1, 1)[:10]
	bigBin := encodeBinary(t, big)
	smallBin := encodeBinary(t, small)
	st := getDecodeState()
	defer putDecodeState(st)
	decode := func(body []byte) []trace.Event {
		req := httptest.NewRequest("POST", "/x", bytes.NewReader(body))
		events, cols, err := s.decodeChunk(req, st)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if cols != nil {
			return cols.AppendEvents(nil)
		}
		return events
	}
	if got := decode(bigBin); len(got) != len(big) || got[len(got)-1] != big[len(big)-1] {
		t.Fatalf("big chunk decoded to %d events", len(got))
	}
	got := decode(smallBin)
	if len(got) != len(small) {
		t.Fatalf("after reuse: %d events, want %d", len(got), len(small))
	}
	for i := range small {
		if got[i] != small[i] {
			t.Fatalf("event %d = %+v, want %+v (stale state leaked)", i, got[i], small[i])
		}
	}
	if got := decode(encodeNDJSON(small)); len(got) != len(small) || got[0] != small[0] {
		t.Fatalf("ndjson after binary reuse: %d events", len(got))
	}
}

// TestDecodeSteadyStateAllocs pins the per-event allocation cost of
// both decoders at zero in the steady state: a warm pooled state
// decodes a chunk with only per-chunk constant overhead (the
// MaxBytesReader wrapper, the scanner struct), which amortizes to
// under a hundredth of an allocation per event.
func TestDecodeSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun counts race-runtime allocations")
	}
	s := mustServer(t, Config{})
	defer s.Close()
	events := syntheticEvents(1, 2, 2)[:4096]
	for name, c := range map[string]struct {
		body []byte
		ct   string
	}{
		"binary":  {encodeBinary(t, events), "application/x-lpp-trace"},
		"ndjson":  {encodeNDJSON(events), ""},
		"chunkv2": {encodeChunkV2(t, events), trace.ChunkV2ContentType},
	} {
		t.Run(name, func(t *testing.T) {
			st := getDecodeState()
			defer putDecodeState(st)
			reader := bytes.NewReader(c.body)
			req := httptest.NewRequest("POST", "/x", reader)
			req.Header.Set("Content-Type", c.ct)
			run := func() {
				reader.Reset(c.body)
				req.Body = io.NopCloser(reader)
				if _, _, err := s.decodeChunk(req, st); err != nil {
					t.Fatalf("decode: %v", err)
				}
			}
			run() // warm: grow the event slice once
			avg := testing.AllocsPerRun(100, run)
			if perEvent := avg / float64(len(events)); perEvent > 0.01 {
				t.Errorf("%s decode: %.1f allocs per %d-event chunk (%.4f/event), want ~0",
					name, avg, len(events), perEvent)
			}
		})
	}
}

// TestDecodePoolBoundsRetention: a pathologically dense chunk must not
// pin its worst-case buffer in the pool. The trim is checked directly —
// putting a synthetic state into the shared pool would poison it for
// whichever test draws it next.
func TestDecodePoolBoundsRetention(t *testing.T) {
	st := &decodeState{events: make([]trace.Event, maxRetainedEvents+1)}
	st.trimForPool()
	if st.events != nil {
		t.Error("oversized event buffer retained for the pool")
	}
	small := &decodeState{events: make([]trace.Event, 128)}
	small.trimForPool()
	if cap(small.events) != 128 {
		t.Error("right-sized buffer dropped")
	}
	wide := &decodeState{body: make([]byte, maxRetainedBody+1)}
	wide.cols.Addrs = make([]trace.Addr, maxRetainedEvents)
	wide.cols.IDs = make([]trace.BlockID, 1)
	wide.trimForPool()
	if wide.body != nil {
		t.Error("oversized chunk buffer retained for the pool")
	}
	if wide.cols.Addrs != nil {
		t.Error("oversized column buffers retained for the pool")
	}
	snug := &decodeState{body: make([]byte, 4096)}
	snug.cols.Addrs = make([]trace.Addr, 4096)
	snug.trimForPool()
	if cap(snug.body) != 4096 || cap(snug.cols.Addrs) != 4096 {
		t.Error("right-sized v2 buffers dropped")
	}
}

// TestDecodeChunkV2Negotiation pins the three-way format negotiation:
// a v2 chunk is recognized by magic alone (wrong or missing
// Content-Type included) and by Content-Type alone, decodes to the
// same events as the v1 and NDJSON encodings of the stream, and v1
// bodies keep decoding through the v1 path untouched. Corrupt v2
// frames must fail decode, not fall through to another decoder.
func TestDecodeChunkV2Negotiation(t *testing.T) {
	s := mustServer(t, Config{})
	defer s.Close()
	events := syntheticEvents(3, 2, 1)[:1000]
	v2 := encodeChunkV2(t, events)
	want, err := decodeVia(t, s, "", encodeBinary(t, events))
	if err != nil {
		t.Fatal(err)
	}
	for name, ct := range map[string]string{
		"magic_only":    "",
		"content_type":  trace.ChunkV2ContentType,
		"wrong_v1_type": "application/x-lpp-trace",
	} {
		t.Run(name, func(t *testing.T) {
			got, err := decodeVia(t, s, ct, v2)
			if err != nil {
				t.Fatalf("v2 decode (%s): %v", name, err)
			}
			if len(got) != len(want) {
				t.Fatalf("v2 decode: %d events, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("event %d = %+v, want %+v", i, got[i], want[i])
				}
			}
		})
	}
	t.Run("corrupt", func(t *testing.T) {
		if _, err := decodeVia(t, s, "", v2[:len(v2)-1]); err == nil {
			t.Error("truncated v2 chunk accepted")
		}
		if _, err := decodeVia(t, s, trace.ChunkV2ContentType, encodeNDJSON(events)); err == nil {
			t.Error("NDJSON body with v2 Content-Type accepted")
		}
	})
	t.Run("expansion_guard", func(t *testing.T) {
		tiny := mustServer(t, Config{MaxChunkBytes: 256})
		defer tiny.Close()
		dense := make([]trace.Event, 500)
		for i := range dense {
			dense[i] = trace.Event{Kind: trace.EventBlock, Block: 1, Instrs: 1}
		}
		if _, err := decodeVia(t, tiny, "", encodeChunkV2(t, dense)); err == nil {
			t.Error("chunk expanding past MaxChunkBytes events accepted")
		}
	})
}

// TestIngestChunkV2EndToEnd runs the same event stream through the HTTP
// ingest path in all three wire formats against separate sessions and
// requires identical responses and identical session stats — the
// server-level proof that format choice cannot change detection.
func TestIngestChunkV2EndToEnd(t *testing.T) {
	s := mustServer(t, Config{})
	defer s.Close()
	h := s.Handler()
	events := syntheticEvents(5, 6, 2)
	bodies := map[string]struct {
		body []byte
		ct   string
	}{
		"v1": {encodeBinary(t, events), "application/x-lpp-trace"},
		"v2": {encodeChunkV2(t, events), trace.ChunkV2ContentType},
	}
	stats := map[string]string{}
	responses := map[string]string{}
	for name, c := range bodies {
		rr := post(t, h, "/v1/sessions/fmt-"+name+"/events", c.ct, c.body)
		if rr.Code != http.StatusOK {
			t.Fatalf("%s ingest: status %d: %s", name, rr.Code, rr.Body.String())
		}
		responses[name] = rr.Body.String()
		st := do(t, h, "GET", "/v1/sessions/fmt-"+name+"/stats")
		if st.Code != http.StatusOK {
			t.Fatalf("%s stats: status %d", name, st.Code)
		}
		stats[name] = st.Body.String()
	}
	if responses["v1"] != responses["v2"] {
		t.Errorf("phase-event responses differ between formats:\n v1 %s\n v2 %s", responses["v1"], responses["v2"])
	}
	if stats["v1"] != stats["v2"] {
		t.Errorf("session stats differ between formats:\n v1 %s\n v2 %s", stats["v1"], stats["v2"])
	}
}

// BenchmarkIngestChunk measures the full HTTP ingest path — decode,
// dispatch, detector feed, response encode — for both wire formats.
func BenchmarkIngestChunk(b *testing.B) {
	for _, format := range []string{"binary", "ndjson", "chunkv2"} {
		b.Run(format, func(b *testing.B) {
			s, err := New(Config{QueueDepth: 4})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			h := s.Handler()
			events := syntheticEvents(1, 4, 2)[:8192]
			var body []byte
			ct := ""
			switch format {
			case "binary":
				var buf bytes.Buffer
				w := trace.NewWriter(&buf)
				for _, ev := range events {
					ev.Feed(w)
				}
				if err := w.Flush(); err != nil {
					b.Fatal(err)
				}
				body = buf.Bytes()
				ct = "application/x-lpp-trace"
			case "chunkv2":
				if body, err = trace.AppendChunkV2(nil, events); err != nil {
					b.Fatal(err)
				}
				ct = trace.ChunkV2ContentType
			default:
				body = encodeNDJSON(events)
			}
			reader := bytes.NewReader(body)
			req := httptest.NewRequest("POST", "/v1/sessions/bench/events", reader)
			if ct != "" {
				req.Header.Set("Content-Type", ct)
			}
			b.ReportAllocs()
			b.SetBytes(int64(len(body)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				reader.Reset(body)
				req.Body = io.NopCloser(reader)
				rr := httptest.NewRecorder()
				h.ServeHTTP(rr, req)
				if rr.Code != http.StatusOK {
					b.Fatalf("status %d: %s", rr.Code, rr.Body.String())
				}
			}
			b.ReportMetric(float64(b.N)*float64(len(events))/b.Elapsed().Seconds(), "events/s")
		})
	}
}
