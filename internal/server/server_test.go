package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"

	"lpp/internal/online"
	"lpp/internal/phase"
	"lpp/internal/trace"
)

// syntheticEvents builds a phased workload as decoded trace events:
// `phases` region sweeps cycling through 10 disjoint 16KB regions, the
// same shape the online package's own tests use. The seed offsets the
// address space so different sessions stream provably different data.
func syntheticEvents(seed, phases, sweeps int) []trace.Event {
	const regions = 10
	const elems = 2048
	var events []trace.Event
	for p := 0; p < phases; p++ {
		base := trace.Addr(uint64(seed)<<32 | uint64(p%regions)*10<<20)
		events = append(events, trace.Event{Kind: trace.EventBlock, Block: trace.BlockID(p % regions), Instrs: 64})
		for s := 0; s < sweeps; s++ {
			for i := 0; i < elems; i++ {
				events = append(events, trace.Event{Kind: trace.EventAccess, Addr: base + trace.Addr(i*8)})
			}
		}
	}
	return events
}

// encodeNDJSON renders events in the NDJSON request format.
func encodeNDJSON(events []trace.Event) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, ev := range events {
		if ev.Kind == trace.EventBlock {
			enc.Encode(wireEvent{Kind: "block", Block: uint64(ev.Block), Instrs: ev.Instrs})
		} else {
			enc.Encode(wireEvent{Kind: "access", Addr: uint64(ev.Addr)})
		}
	}
	return buf.Bytes()
}

// encodeBinary renders events as one self-contained binary trace chunk.
func encodeBinary(t *testing.T, events []trace.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	for _, ev := range events {
		ev.Feed(w)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("encode binary chunk: %v", err)
	}
	return buf.Bytes()
}

// encodeChunkV2 renders events as one columnar v2 chunk.
func encodeChunkV2(t *testing.T, events []trace.Event) []byte {
	t.Helper()
	data, err := trace.AppendChunkV2(nil, events)
	if err != nil {
		t.Fatalf("encode v2 chunk: %v", err)
	}
	return data
}

// decodeResponse parses an NDJSON phase-event response body.
func decodeResponse(t *testing.T, body []byte) []phaseWire {
	t.Helper()
	var out []phaseWire
	sc := bufio.NewScanner(bytes.NewReader(body))
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var pw phaseWire
		if err := json.Unmarshal(sc.Bytes(), &pw); err != nil {
			t.Fatalf("bad response line %q: %v", sc.Text(), err)
		}
		out = append(out, pw)
	}
	return out
}

// mustServer builds a Server or fails the test.
func mustServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func post(t *testing.T, h http.Handler, path, contentType string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", path, bytes.NewReader(body))
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

func do(t *testing.T, h http.Handler, method, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

// chunked posts events in fixed-size chunks and returns all phase
// events from the responses plus the DELETE's final flush.
func chunked(t *testing.T, h http.Handler, id string, events []trace.Event, chunkLen int, binary bool) []phaseWire {
	t.Helper()
	var out []phaseWire
	for off := 0; off < len(events); off += chunkLen {
		end := off + chunkLen
		if end > len(events) {
			end = len(events)
		}
		var body []byte
		ct := "application/x-ndjson"
		if binary {
			body = encodeBinary(t, events[off:end])
			ct = "application/x-lpp-trace"
		} else {
			body = encodeNDJSON(events[off:end])
		}
		rr := post(t, h, "/v1/sessions/"+id+"/events", ct, body)
		if rr.Code != http.StatusOK {
			t.Fatalf("chunk at %d: status %d: %s", off, rr.Code, rr.Body.String())
		}
		out = append(out, decodeResponse(t, rr.Body.Bytes())...)
	}
	rr := do(t, h, "DELETE", "/v1/sessions/"+id)
	if rr.Code != http.StatusOK {
		t.Fatalf("delete: status %d: %s", rr.Code, rr.Body.String())
	}
	return append(out, decodeResponse(t, rr.Body.Bytes())...)
}

// expected runs the same events through a local detector: server
// responses must match because chunking carries no detector state.
func expected(events []trace.Event) []phase.Event {
	var got []phase.Event
	d := online.NewDetector(online.Config{OnEvent: func(ev phase.Event) { got = append(got, ev) }})
	for _, ev := range events {
		ev.Feed(d)
	}
	d.Flush()
	return got
}

func assertMatches(t *testing.T, got []phaseWire, want []phase.Event) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("event count %d, want %d", len(got), len(want))
	}
	for i := range got {
		w := phaseWire{Kind: want[i].Kind.String(), Time: want[i].Time, Instructions: want[i].Instructions, Phase: want[i].Phase}
		if got[i] != w {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], w)
		}
	}
}

func TestNDJSONSessionMatchesLocalDetector(t *testing.T) {
	s := mustServer(t, Config{})
	defer s.Close()
	events := syntheticEvents(1, 8, 6)
	got := chunked(t, s.Handler(), "ndjson", events, 10000, false)
	want := expected(events)
	if len(want) == 0 {
		t.Fatal("workload produced no phase events")
	}
	assertMatches(t, got, want)
}

func TestBinarySessionMatchesLocalDetector(t *testing.T) {
	s := mustServer(t, Config{})
	defer s.Close()
	events := syntheticEvents(2, 8, 6)
	got := chunked(t, s.Handler(), "binary", events, 10000, true)
	want := expected(events)
	if len(want) == 0 {
		t.Fatal("workload produced no phase events")
	}
	assertMatches(t, got, want)
}

// TestBinarySniffedWithoutContentType: a binary body with no
// Content-Type must be recognized by its magic header.
func TestBinarySniffedWithoutContentType(t *testing.T) {
	s := mustServer(t, Config{})
	defer s.Close()
	body := encodeBinary(t, syntheticEvents(3, 1, 1)[:500])
	rr := post(t, s.Handler(), "/v1/sessions/sniff/events", "", body)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	st := do(t, s.Handler(), "GET", "/v1/sessions/sniff/stats")
	var stats map[string]int64
	if err := json.Unmarshal(st.Body.Bytes(), &stats); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if stats["events"] != 500 {
		t.Errorf("session saw %d events, want 500", stats["events"])
	}
}

func TestMalformedChunksRejected(t *testing.T) {
	s := mustServer(t, Config{})
	defer s.Close()
	h := s.Handler()
	for name, body := range map[string][]byte{
		"bad json":     []byte("{not json\n"),
		"unknown kind": []byte(`{"kind":"jump","addr":1}` + "\n"),
		"bad binary":   []byte("LPPTRACE1\n\xff\xff"),
	} {
		rr := post(t, h, "/v1/sessions/bad/events", "", body)
		if rr.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, rr.Code)
		}
	}
	// A rejected chunk must not have created or fed the session.
	if rr := do(t, h, "GET", "/v1/sessions/bad/stats"); rr.Code != http.StatusNotFound {
		t.Errorf("session exists after only malformed chunks (status %d)", rr.Code)
	}
}

func TestBackpressure429(t *testing.T) {
	s := mustServer(t, Config{QueueDepth: 1})
	defer s.Close()
	h := s.Handler()
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	s.testChunkHook = func() {
		started <- struct{}{}
		<-release
	}
	body := encodeNDJSON(syntheticEvents(4, 1, 1)[:100])

	var wg sync.WaitGroup
	asyncPost := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rr := post(t, h, "/v1/sessions/bp/events", "", body)
			if rr.Code != http.StatusOK {
				t.Errorf("held chunk finished with status %d", rr.Code)
			}
		}()
	}
	asyncPost() // worker picks this up and blocks in the hook
	<-started
	asyncPost() // sits in the queue (depth 1)
	sh := s.shardFor("bp")
	sh.mu.Lock()
	sess := sh.sessions["bp"]
	sh.mu.Unlock()
	for len(sess.queue) == 0 {
		runtime.Gosched()
	}
	// Queue full, worker busy: the next chunk must bounce.
	rr := post(t, h, "/v1/sessions/bp/events", "", body)
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d with full queue, want 429", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Error("429 carries no Retry-After")
	}
	close(release)
	wg.Wait()
	s.testChunkHook = nil

	metricsBody := do(t, h, "GET", "/metrics").Body.String()
	if !strings.Contains(metricsBody, "lpp_rejected_chunks_total 1") {
		t.Errorf("metrics missing rejected chunk:\n%s", metricsBody)
	}
}

func TestSessionLimit(t *testing.T) {
	s := mustServer(t, Config{MaxSessions: 2})
	defer s.Close()
	h := s.Handler()
	body := encodeNDJSON(syntheticEvents(5, 1, 1)[:50])
	for i := 0; i < 2; i++ {
		if rr := post(t, h, fmt.Sprintf("/v1/sessions/s%d/events", i), "", body); rr.Code != http.StatusOK {
			t.Fatalf("session %d: status %d", i, rr.Code)
		}
	}
	if rr := post(t, h, "/v1/sessions/s2/events", "", body); rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d past session cap, want 503", rr.Code)
	}
	// Deleting one frees a slot.
	if rr := do(t, h, "DELETE", "/v1/sessions/s0"); rr.Code != http.StatusOK {
		t.Fatalf("delete: status %d", rr.Code)
	}
	if rr := post(t, h, "/v1/sessions/s2/events", "", body); rr.Code != http.StatusOK {
		t.Fatalf("status %d after freeing a slot", rr.Code)
	}
}

func TestDeleteUnknownSession(t *testing.T) {
	s := mustServer(t, Config{})
	defer s.Close()
	if rr := do(t, s.Handler(), "DELETE", "/v1/sessions/ghost"); rr.Code != http.StatusNotFound {
		t.Errorf("status %d deleting unknown session, want 404", rr.Code)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	s := mustServer(t, Config{})
	defer s.Close()
	h := s.Handler()
	if rr := do(t, h, "GET", "/healthz"); rr.Code != http.StatusOK || rr.Body.String() != "ok\n" {
		t.Errorf("healthz: %d %q", rr.Code, rr.Body.String())
	}
	post(t, h, "/v1/sessions/m/events", "", encodeNDJSON(syntheticEvents(6, 1, 1)[:200]))
	body := do(t, h, "GET", "/metrics").Body.String()
	for _, want := range []string{
		"lpp_sessions_active 1",
		"lpp_sessions_total 1",
		"lpp_events_total 200",
		"lpp_chunks_total 1",
		"lpp_events_per_second ",
		`lpp_detect_latency_seconds{quantile="0.99"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}
