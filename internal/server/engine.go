package server

// The engine layer: the per-session worker goroutine that is the sole
// owner of a session's detector, consumer chain, and durable log.
// Everything above it communicates through the chunk queue; the only
// shared state is the session's atomic counters. Restore/checkpoint
// and the snapshot framing live in engine_state.go.

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"sync"
	"sync/atomic"

	"lpp/internal/durable"
	"lpp/internal/knowledge"
	"lpp/internal/online"
	"lpp/internal/phase"
	"lpp/internal/trace"
)

// op selects what a queued chunk asks the worker to do.
type op int

const (
	// opEvents feeds a chunk of trace events to the detector.
	opEvents op = iota
	// opClose flushes the detector and discards all session state,
	// durable state included.
	opClose
	// opSuspend checkpoints the session and stops the worker, leaving
	// the durable state recoverable. The detector is NOT flushed: a
	// flush would advance it past where an uninterrupted run would be,
	// breaking recovery parity.
	opSuspend
	// opConsumers reports the session's consumer-chain state (counters,
	// snapshot hashes, reports) without feeding the detector.
	opConsumers
	// opExport checkpoints the session and returns the LPPCKPT1 image
	// as the result body — the live-migration wire payload. Like
	// opSuspend, the detector is not flushed and the worker exits.
	opExport
)

// chunk is one unit of per-session work.
type chunk struct {
	op op
	// seq is the client's sequence number for an opEvents chunk;
	// 0 means "assign the next one" (no idempotency requested).
	seq    uint64
	events []trace.Event
	// cols carries a columnar v2 chunk in place of events, fed through
	// Detector.AccessColumns without ever materializing rows. Only
	// ephemeral sessions take this path: the WAL's entry format is
	// row-shaped, so durable sessions materialize before dispatch.
	cols  *trace.Columns
	reply chan result
}

// result is the worker's answer to one chunk.
type result struct {
	status   int
	body     []byte
	seq      uint64
	replayed bool
	// wantSeq, set on sequence-gap conflicts, is the sequence number
	// the worker expects next (the X-Lpp-Want-Seq header).
	wantSeq uint64
}

// session is one detection stream. The worker goroutine is the sole
// owner of the detector and the durable log; handlers communicate
// through the queue and read only the atomic counters.
type session struct {
	id    string
	queue chan chunk
	// kill simulates a crash (chaos tests): the worker stops where it
	// stands without flushing or checkpointing.
	kill     chan struct{}
	killOnce sync.Once
	// done is closed when the worker has exited, however it exited.
	done chan struct{}
	// ready is closed once recovery/replay has finished.
	ready chan struct{}

	// Counters maintained by the worker, read by handlers.
	lastActive  atomic.Int64
	seq         atomic.Uint64
	quarantined atomic.Bool
	events      atomic.Int64
	boundaries  atomic.Int64
	predictions atomic.Int64
	dropped     atomic.Int64
	shed        atomic.Int64
}

// worker holds the state only the session goroutine touches.
type worker struct {
	s    *Server
	sess *session
	cfg  online.Config
	det  *online.Detector
	// chain is the session's run-time adaptation chain (nil without
	// Config.Consumers); it sees every detector event and its state is
	// checkpointed alongside the detector's.
	chain *phase.Chain
	// consBase is the chain's counters at the last metrics flush, so
	// deltas fold into the server-wide per-consumer totals.
	consBase []phase.ConsumerStats
	// Detector hardening counters at the last metrics flush (and after
	// a snapshot restore, whose counts the writing process already
	// reported); updateStats folds the deltas into the server totals.
	baseSuppressed int64
	baseRestarts   int64
	baseTruncated  int64
	// pending accumulates detector output between chunk boundaries.
	pending []phase.Event
	// log is the session's durable state; nil when the server is
	// ephemeral.
	log *durable.Log
	// lastSeq is the highest accepted sequence number; cached is the
	// response body it produced, replayed verbatim on a duplicate POST.
	lastSeq   uint64
	cached    []byte
	sinceCkpt int
	// quarantined is set when the detector panicked (or recovery failed)
	// and its state can no longer be trusted. The worker stays up to
	// answer requests with an error, but never feeds the detector again
	// and never checkpoints.
	quarantined bool
}

// run is the session worker: the only goroutine touching the detector.
func (s *Server) run(sess *session) {
	defer close(sess.done)
	w := &worker{s: s, sess: sess}
	w.cfg = s.cfg.Detector
	if s.cfg.Consumers != nil {
		w.chain = s.cfg.Consumers()
		w.consBase = w.chain.Stats()
	}
	w.cfg.OnEvent = func(ev phase.Event) {
		w.pending = append(w.pending, ev)
		if w.chain != nil {
			// Chain.Consume never fails: consumer errors and panics are
			// isolated per consumer inside the chain.
			w.chain.Consume(ev)
		}
	}
	w.det = online.NewDetector(w.cfg)
	if s.store != nil {
		w.log = s.store.Session(sess.id)
		w.restore()
		sess.seq.Store(w.lastSeq)
	}
	close(sess.ready)
	for {
		select {
		case c := <-sess.queue:
			res := w.handle(c)
			sess.seq.Store(w.lastSeq)
			c.reply <- res
			if c.op == opClose || c.op == opSuspend || c.op == opExport {
				return
			}
		case <-sess.kill:
			return
		}
	}
}

func (w *worker) handle(c chunk) result {
	switch c.op {
	case opClose:
		return w.close()
	case opSuspend:
		return w.suspend()
	case opConsumers:
		return w.consumers()
	case opExport:
		return w.export()
	default:
		return w.events(c)
	}
}

// safe runs f, converting a panic into quarantine. Returns false if f
// panicked.
func (w *worker) safe(f func()) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			w.poison()
			w.s.m.panics.Add(1)
		}
	}()
	f()
	return true
}

func (w *worker) poison() {
	w.quarantined = true
	w.sess.quarantined.Store(true)
}

func (w *worker) quarantineResult(seq uint64) result {
	return result{status: http.StatusInternalServerError, body: errBody("quarantined"), seq: seq}
}

func (w *worker) events(c chunk) result {
	if w.quarantined {
		return w.quarantineResult(w.lastSeq)
	}
	seq := c.seq
	if seq == 0 {
		seq = w.lastSeq + 1
	}
	switch {
	case seq == w.lastSeq && seq > 0:
		// Idempotent retransmit: the chunk was already applied; hand
		// back the response it produced the first time.
		w.s.m.replayed.Add(1)
		return result{status: http.StatusOK, body: w.cached, seq: seq, replayed: true}
	case seq != w.lastSeq+1:
		return result{
			status:  http.StatusConflict,
			body:    errBody(fmt.Sprintf("sequence gap: got %d, want %d", seq, w.lastSeq+1)),
			seq:     seq,
			wantSeq: w.lastSeq + 1,
		}
	}
	// Log before processing: a worker killed between here and the reply
	// replays this chunk on recovery instead of losing it.
	if w.log != nil {
		if err := w.log.Append(durable.Entry{Seq: seq, Events: c.events}); err != nil {
			w.s.m.walErrors.Add(1)
			return result{status: http.StatusInternalServerError, body: errBody("wal append failed"), seq: seq}
		}
	}
	if !w.safe(func() {
		if hook := w.s.testChunkHook; hook != nil {
			hook()
		}
		// Queue occupancy is the pressure signal: a backed-up consumer
		// degrades detection fidelity instead of memory.
		w.det.SetPressure(float64(len(w.sess.queue)) / float64(cap(w.sess.queue)))
		if c.cols != nil {
			w.det.AccessColumns(c.cols)
		} else {
			w.det.AccessBatch(c.events)
		}
	}) {
		return w.quarantineResult(seq)
	}
	w.updateStats()
	body := w.emit()
	w.lastSeq = seq
	w.cached = body
	w.sinceCkpt++
	if w.log != nil && w.sinceCkpt >= w.s.cfg.CheckpointEvery {
		w.checkpoint()
	}
	return result{status: http.StatusOK, body: body, seq: seq}
}

// emit encodes and counts the pending detector output.
func (w *worker) emit() []byte {
	w.s.m.boundaries.Add(countKind(w.pending, phase.BoundaryDetected))
	w.s.m.predictions.Add(countKind(w.pending, phase.PhasePredicted))
	w.flushConsumerStats()
	body := encodeEvents(w.pending)
	w.pending = nil
	return body
}

// flushConsumerStats folds the chain's delivery counters since the
// last flush into the server-wide per-consumer metrics.
func (w *worker) flushConsumerStats() {
	if w.chain == nil {
		return
	}
	stats := w.chain.Stats()
	for i := range stats {
		w.s.m.addConsumer(i, stats[i].Consumed-w.consBase[i].Consumed, stats[i].Errors-w.consBase[i].Errors)
	}
	w.consBase = stats
}

// consumers answers opConsumers: the chain's per-consumer counters,
// state hashes (fnv64a over each consumer's snapshot — the recovery
// parity fingerprint), and human reports.
func (w *worker) consumers() result {
	if w.chain == nil {
		return result{status: http.StatusNotFound, body: errBody("no consumers configured"), seq: w.lastSeq}
	}
	type consumerInfo struct {
		Name      string `json:"name"`
		Consumed  int64  `json:"consumed"`
		Errors    int64  `json:"errors"`
		StateHash string `json:"state_hash"`
		Report    string `json:"report,omitempty"`
	}
	stats := w.chain.Stats()
	out := make([]consumerInfo, 0, len(stats))
	for i, cons := range w.chain.Consumers() {
		h := fnv.New64a()
		h.Write(cons.Snapshot())
		info := consumerInfo{
			Name:      stats[i].Name,
			Consumed:  stats[i].Consumed,
			Errors:    stats[i].Errors,
			StateHash: fmt.Sprintf("%016x", h.Sum64()),
		}
		if r, ok := cons.(phase.Reporter); ok {
			info.Report = r.Report()
		}
		out = append(out, info)
	}
	b, err := json.Marshal(out)
	if err != nil {
		return result{status: http.StatusInternalServerError, body: errBody(err.Error()), seq: w.lastSeq}
	}
	return result{status: http.StatusOK, body: append(b, '\n'), seq: w.lastSeq}
}

func (w *worker) close() result {
	if w.log != nil {
		if err := w.log.Remove(); err != nil {
			w.s.m.walErrors.Add(1)
		}
		// FIFO queue order guarantees this lands after any pending
		// checkpoint of the same session.
		if rep := w.s.rep.Load(); rep != nil {
			rep.EnqueueRemove(w.sess.id)
		}
	}
	if w.quarantined {
		return w.quarantineResult(w.lastSeq)
	}
	if !w.safe(func() { w.det.Flush() }) {
		return w.quarantineResult(w.lastSeq)
	}
	w.updateStats()
	body := w.emit()
	w.contributeKnowledge()
	return result{status: http.StatusOK, body: body, seq: w.lastSeq}
}

func (w *worker) suspend() result {
	if w.log != nil {
		if !w.quarantined && w.sinceCkpt > 0 {
			w.checkpoint()
		}
		w.log.Close()
	}
	if !w.quarantined {
		w.contributeKnowledge()
	}
	return result{status: http.StatusNoContent, seq: w.lastSeq}
}

// export answers opExport: snapshot the session at its last accepted
// sequence number and hand back the LPPCKPT1 image — the disk format
// doubles as the migration wire format. The image is also checkpointed
// locally first, so a migration that dies between export and import
// leaves the session recoverable right here; the local state is only
// removed at migration complete. The worker exits afterwards (the
// registry unlinked the session before dispatching the export).
func (w *worker) export() result {
	if w.quarantined {
		// A quarantined detector's state cannot be trusted; shipping it
		// to another node would just move the poison.
		return result{status: http.StatusConflict, body: errBody("session quarantined; not migratable"), seq: w.lastSeq}
	}
	var snap []byte
	if !w.safe(func() {
		snap = w.det.Snapshot()
		if w.chain != nil {
			snap = frameSnapshot(snap, w.chain.Snapshot())
		}
	}) {
		return w.quarantineResult(w.lastSeq)
	}
	if w.log != nil {
		if err := w.log.Checkpoint(w.lastSeq, snap, w.cached); err != nil {
			w.s.m.walErrors.Add(1)
			return result{status: http.StatusInternalServerError, body: errBody("checkpoint failed"), seq: w.lastSeq}
		}
		w.sinceCkpt = 0
		w.s.m.checkpoints.Add(1)
		w.log.Close()
	}
	w.contributeKnowledge()
	image := durable.EncodeCheckpoint(w.lastSeq, snap, w.cached)
	return result{status: http.StatusOK, body: image, seq: w.lastSeq}
}

// contributeKnowledge folds the session's learned phase knowledge into
// the server's store and persists it. A session with nothing worth
// donating (too few boundaries, no settled phases) is a no-op.
func (w *worker) contributeKnowledge() {
	store := w.s.cfg.Knowledge
	if store == nil || w.chain == nil {
		return
	}
	for _, cons := range w.chain.Consumers() {
		kc, ok := cons.(*knowledge.Consumer)
		if !ok {
			continue
		}
		if entry, ok := kc.Entry(); ok {
			store.Contribute(entry)
			if err := store.Persist(); err != nil {
				w.s.m.walErrors.Add(1)
			}
			if rep := w.s.rep.Load(); rep != nil {
				rep.EnqueueKnowledge(store.Snapshot())
			}
		}
		return
	}
}

func (w *worker) updateStats() {
	st := w.det.Stats()
	w.sess.events.Store(st.Accesses + st.Blocks)
	w.sess.boundaries.Store(st.Boundaries)
	w.sess.predictions.Store(st.Predictions)
	w.sess.dropped.Store(st.DroppedEvents)
	w.sess.shed.Store(st.Shed)
	w.s.m.detSuppressed.Add(st.SuppressedBoundaries - w.baseSuppressed)
	w.s.m.detRestarts.Add(st.GrammarRestarts - w.baseRestarts)
	w.s.m.detTruncated.Add(st.TruncatedPages - w.baseTruncated)
	w.baseSuppressed = st.SuppressedBoundaries
	w.baseRestarts = st.GrammarRestarts
	w.baseTruncated = st.TruncatedPages
}
