package server

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// sameShardIDs returns n session IDs that all hash to one shard of s,
// so tests can force worst-case lock contention deliberately.
func sameShardIDs(s *Server, n int) []string {
	target := s.shardIndex("anchor")
	ids := []string{"anchor"}
	for i := 0; len(ids) < n; i++ {
		id := fmt.Sprintf("contended-%d", i)
		if s.shardIndex(id) == target {
			ids = append(ids, id)
		}
	}
	return ids
}

// TestShardDistribution: the ID hash must actually spread sessions over
// the stripes — a constant hash would silently reduce the sharded table
// to one mutex.
func TestShardDistribution(t *testing.T) {
	s := mustServer(t, Config{Shards: 8})
	defer s.Close()
	used := make(map[int]bool)
	for i := 0; i < 64; i++ {
		used[s.shardIndex(fmt.Sprintf("session-%d", i))] = true
	}
	if len(used) < 4 {
		t.Errorf("64 ids landed on only %d of 8 shards", len(used))
	}
	if got := s.shardIndex("x"); got != s.shardIndex("x") {
		t.Error("shard index not stable")
	}
}

// TestConcurrentIngestAcrossShards hammers many sessions in parallel
// through the full HTTP path and then verifies per-session event
// counts: sharding must never cross the streams or lose a chunk.
func TestConcurrentIngestAcrossShards(t *testing.T) {
	s := mustServer(t, Config{Shards: 4, QueueDepth: 32})
	defer s.Close()
	h := s.Handler()
	const sessions = 12
	const chunks = 6
	events := syntheticEvents(1, 1, 1)[:601]
	body := encodeNDJSON(events)
	var wg sync.WaitGroup
	errs := make(chan string, sessions*chunks)
	for i := 0; i < sessions; i++ {
		id := fmt.Sprintf("s%d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := 0; c < chunks; c++ {
				rr := post(t, h, "/v1/sessions/"+id+"/events", "", body)
				for rr.Code == http.StatusTooManyRequests {
					rr = post(t, h, "/v1/sessions/"+id+"/events", "", body)
				}
				if rr.Code != http.StatusOK {
					errs <- fmt.Sprintf("%s chunk %d: status %d: %s", id, c, rr.Code, rr.Body.String())
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	for i := 0; i < sessions; i++ {
		id := fmt.Sprintf("s%d", i)
		st := do(t, h, "GET", "/v1/sessions/"+id+"/stats")
		if st.Code != http.StatusOK {
			t.Fatalf("%s stats: %d", id, st.Code)
		}
		want := fmt.Sprintf(`"events":%d`, len(events)*chunks)
		if !strings.Contains(st.Body.String(), want) {
			t.Errorf("%s: stats %s missing %s", id, st.Body.String(), want)
		}
	}
}

// TestContendedShardSeqProtocol drives the idempotency protocol —
// duplicate-sequence replay and gap 409 — on one session while sibling
// sessions that hash to the same shard ingest concurrently. The
// protocol is per-session state owned by the worker; shard-lock
// contention must not let it misfire.
func TestContendedShardSeqProtocol(t *testing.T) {
	s := mustServer(t, Config{Shards: 4, QueueDepth: 32})
	defer s.Close()
	h := s.Handler()
	ids := sameShardIDs(s, 4)
	events := syntheticEvents(2, 1, 1)[:301]

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, id := range ids[1:] {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for seq := uint64(1); ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				rr := postSeq(t, h, id, seq, events)
				if rr.Code == http.StatusTooManyRequests {
					seq-- // retry the same chunk after backpressure
					continue
				}
				if rr.Code != http.StatusOK {
					t.Errorf("%s seq %d: status %d", id, seq, rr.Code)
					return
				}
			}
		}(id)
	}

	id := ids[0]
	first := postSeq(t, h, id, 1, events)
	if first.Code != http.StatusOK {
		t.Fatalf("seq 1: status %d: %s", first.Code, first.Body.String())
	}
	dup := postSeq(t, h, id, 1, events)
	if dup.Code != http.StatusOK || dup.Header().Get("X-Lpp-Replayed") != "true" {
		t.Fatalf("duplicate seq: status %d, X-Lpp-Replayed %q", dup.Code, dup.Header().Get("X-Lpp-Replayed"))
	}
	if dup.Body.String() != first.Body.String() {
		t.Error("replayed response differs from the original")
	}
	if rr := postSeq(t, h, id, 3, events); rr.Code != http.StatusConflict {
		t.Fatalf("sequence gap: status %d, want 409", rr.Code)
	}
	if rr := postSeq(t, h, id, 2, events); rr.Code != http.StatusOK {
		t.Fatalf("seq 2 after gap: status %d", rr.Code)
	}
	close(stop)
	wg.Wait()
}

// TestSessionLimitConcurrent: the cap is claimed by CAS against a
// global counter while creation itself is per-shard, so a burst of
// concurrent creates across every shard must admit exactly MaxSessions.
func TestSessionLimitConcurrent(t *testing.T) {
	const maxSess = 8
	const attempts = 32
	s := mustServer(t, Config{Shards: 8, MaxSessions: maxSess})
	defer s.Close()
	h := s.Handler()
	body := encodeNDJSON(syntheticEvents(3, 1, 1)[:50])
	codes := make([]int, attempts)
	var wg sync.WaitGroup
	for i := 0; i < attempts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rr := post(t, h, fmt.Sprintf("/v1/sessions/cap%d/events", i), "", body)
			codes[i] = rr.Code
		}(i)
	}
	wg.Wait()
	ok, refused := 0, 0
	for i, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusServiceUnavailable:
			refused++
		default:
			t.Fatalf("create %d: unexpected status %d", i, c)
		}
	}
	if ok != maxSess || refused != attempts-maxSess {
		t.Errorf("admitted %d, refused %d; want exactly %d and %d", ok, refused, maxSess, attempts-maxSess)
	}
	if got := s.m.sessionsActive.Load(); got != maxSess {
		t.Errorf("sessionsActive = %d, want %d", got, maxSess)
	}
	// Deleting one session must free exactly one slot.
	var victim string
	for i := 0; i < attempts; i++ {
		if codes[i] == http.StatusOK {
			victim = fmt.Sprintf("cap%d", i)
			break
		}
	}
	if rr := do(t, h, "DELETE", "/v1/sessions/"+victim); rr.Code != http.StatusOK {
		t.Fatalf("delete %s: status %d", victim, rr.Code)
	}
	if rr := post(t, h, "/v1/sessions/freed/events", "", body); rr.Code != http.StatusOK {
		t.Errorf("create after delete: status %d, want 200", rr.Code)
	}
	if rr := post(t, h, "/v1/sessions/one-too-many/events", "", body); rr.Code != http.StatusServiceUnavailable {
		t.Errorf("create past refilled cap: status %d, want 503", rr.Code)
	}
}

// TestCloseRacingCreate: Close and session creation may interleave
// arbitrarily; afterwards the server must be refusing requests and no
// created session may be left running outside the drain.
func TestCloseRacingCreate(t *testing.T) {
	for round := 0; round < 20; round++ {
		s := mustServer(t, Config{Shards: 4})
		body := encodeNDJSON(syntheticEvents(4, 1, 1)[:50])
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				post(t, s.Handler(), fmt.Sprintf("/v1/sessions/r%d/events", i), "", body)
			}(i)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Close()
		}()
		wg.Wait()
		if _, err := s.getSession("late", true); err != errServerClosed {
			t.Fatalf("round %d: create after close: %v, want errServerClosed", round, err)
		}
		for i := range s.shards {
			sh := &s.shards[i]
			sh.mu.Lock()
			n := len(sh.sessions)
			sh.mu.Unlock()
			if n != 0 {
				t.Fatalf("round %d: shard %d still holds %d sessions after Close", round, i, n)
			}
		}
	}
}

// TestShardsConfigRounding: shard counts round up to a power of two and
// Shards=1 degrades to the old single-mutex table.
func TestShardsConfigRounding(t *testing.T) {
	for _, c := range []struct{ in, want int }{{0, 16}, {1, 1}, {3, 4}, {8, 8}, {9, 16}} {
		s := mustServer(t, Config{Shards: c.in})
		if len(s.shards) != c.want {
			t.Errorf("Shards %d: got %d stripes, want %d", c.in, len(s.shards), c.want)
		}
		s.Close()
	}
	one := mustServer(t, Config{Shards: 1})
	defer one.Close()
	body := encodeNDJSON(syntheticEvents(5, 1, 1)[:50])
	for i := 0; i < 3; i++ {
		if rr := post(t, one.Handler(), fmt.Sprintf("/v1/sessions/m%d/events", i), "", body); rr.Code != http.StatusOK {
			t.Fatalf("single-shard ingest %d: status %d", i, rr.Code)
		}
	}
}
