package server

// Engine durable-state plumbing: restoring a worker from its
// checkpoint + WAL suffix, writing checkpoints (and streaming them to
// the replica peer), and the LPPBUS1 framing that packs the detector
// and consumer-chain snapshots into one checkpoint image.

import (
	"encoding/binary"
	"fmt"

	"lpp/internal/online"
	"lpp/internal/replica"
)

// restore rebuilds the detector from durable state: load the
// checkpoint, then replay the WAL suffix exactly as the chunks were
// first processed (pressure 0, same order), so the recovered detector
// emits the same boundaries an uninterrupted run would have.
func (w *worker) restore() {
	st, err := w.log.Load()
	if err != nil {
		w.s.m.walErrors.Add(1)
		w.poison()
		return
	}
	if st.Snapshot == nil && len(st.Entries) == 0 && st.Seq == 0 {
		return // fresh session
	}
	if st.Snapshot != nil {
		detSnap, chainSnap, framed, err := splitSnapshot(st.Snapshot)
		if err != nil {
			w.s.m.walErrors.Add(1)
			w.poison()
			return
		}
		// A checkpoint written with a consumer chain must be restored
		// with one (and vice versa): anything else would silently drop
		// or skip adaptation state, forking decisions after recovery.
		if framed != (w.chain != nil) {
			w.s.m.walErrors.Add(1)
			w.poison()
			return
		}
		nd, err := online.NewDetectorFromSnapshot(w.cfg, detSnap)
		if err != nil {
			w.s.m.walErrors.Add(1)
			w.poison()
			return
		}
		if w.chain != nil {
			if err := w.chain.Restore(chainSnap); err != nil {
				w.s.m.walErrors.Add(1)
				w.poison()
				return
			}
			// Deliveries restored from the checkpoint were counted by
			// the process that made them; only count this process's.
			w.consBase = w.chain.Stats()
		}
		w.det = nd
		dst := nd.Stats()
		w.baseSuppressed = dst.SuppressedBoundaries
		w.baseRestarts = dst.GrammarRestarts
		w.baseTruncated = dst.TruncatedPages
	}
	w.lastSeq = st.Seq
	w.cached = st.Response
	ok := w.safe(func() {
		for _, e := range st.Entries {
			w.pending = nil
			w.det.SetPressure(0)
			w.det.AccessBatch(e.Events)
			if e.Flush {
				w.det.Flush()
			}
			w.lastSeq = e.Seq
			w.cached = encodeEvents(w.pending)
		}
	})
	w.pending = nil
	w.flushConsumerStats()
	if ok {
		w.updateStats()
		w.s.m.recovered.Add(1)
	}
}

func (w *worker) checkpoint() {
	var snap []byte
	if !w.safe(func() {
		snap = w.det.Snapshot()
		if w.chain != nil {
			snap = frameSnapshot(snap, w.chain.Snapshot())
		}
	}) {
		return
	}
	if err := w.log.Checkpoint(w.lastSeq, snap, w.cached); err != nil {
		w.s.m.walErrors.Add(1)
		return
	}
	w.sinceCkpt = 0
	w.s.m.checkpoints.Add(1)
	// Replicate only what disk accepted: the peer must never hold an
	// image the primary could not persist. snap and w.cached are fresh
	// allocations owned by this checkpoint, safe to hand off.
	if rep := w.s.rep.Load(); rep != nil {
		rep.EnqueueCheckpoint(replica.Checkpoint{
			Session:  w.sess.id,
			Seq:      w.lastSeq,
			Snapshot: snap,
			Response: w.cached,
		})
	}
}

// busMagic frames a combined detector+chain checkpoint image. Legacy
// checkpoints (no consumer chain) remain raw detector snapshots, which
// start with "LPPSNAP" — the two are distinguishable by prefix.
const busMagic = "LPPBUS1"

// frameSnapshot combines a detector snapshot and a chain snapshot into
// one checkpoint image.
func frameSnapshot(det, chain []byte) []byte {
	buf := make([]byte, 0, len(busMagic)+len(det)+len(chain)+2*binary.MaxVarintLen64)
	buf = append(buf, busMagic...)
	buf = binary.AppendUvarint(buf, uint64(len(det)))
	buf = append(buf, det...)
	buf = binary.AppendUvarint(buf, uint64(len(chain)))
	buf = append(buf, chain...)
	return buf
}

// splitSnapshot separates a checkpoint image into its detector and
// chain parts. A raw (legacy, chain-less) detector snapshot returns
// framed=false with the input as the detector part.
func splitSnapshot(data []byte) (det, chain []byte, framed bool, err error) {
	if len(data) < len(busMagic) || string(data[:len(busMagic)]) != busMagic {
		return data, nil, false, nil
	}
	rest := data[len(busMagic):]
	next := func() ([]byte, error) {
		n, used := binary.Uvarint(rest)
		if used <= 0 || n > uint64(len(rest)-used) {
			return nil, fmt.Errorf("corrupt combined snapshot")
		}
		part := rest[used : used+int(n)]
		rest = rest[used+int(n):]
		return part, nil
	}
	if det, err = next(); err != nil {
		return nil, nil, true, err
	}
	if chain, err = next(); err != nil {
		return nil, nil, true, err
	}
	if len(rest) != 0 {
		return nil, nil, true, fmt.Errorf("corrupt combined snapshot: %d trailing bytes", len(rest))
	}
	return det, chain, true, nil
}
