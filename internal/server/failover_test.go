package server

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"lpp/internal/knowledge"
	"lpp/internal/online"
	"lpp/internal/phase"
	"lpp/internal/predictor"
	"lpp/internal/replica"
	"lpp/internal/workload"
)

// standbyServer starts a standby replica on a real listener (the
// primary's replicator dials it over TCP) and returns it with its base
// URL.
func standbyServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	cfg.Standby = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, "http://" + ln.Addr().String()
}

// flushReplication drains the primary's replication queue and fails
// the test if the peer is unreachable.
func flushReplication(t *testing.T, s *Server) {
	t.Helper()
	rep := s.Replicator()
	if rep == nil {
		t.Fatal("no replicator configured")
	}
	if !rep.Flush(10 * time.Second) {
		t.Fatalf("replication did not drain: %+v", rep.Stats())
	}
}

// TestFailoverChaosParityWorkloads is the headline robustness check:
// for each of the nine paper workloads, a primary streams chunks to a
// live standby, dies without warning at a random chunk boundary, the
// standby is promoted, and the client replays its tail (riding the 409
// gap responses via X-Lpp-Want-Seq). Every re-sent chunk must produce
// a byte-identical response to the one the dead primary acknowledged —
// zero acknowledged events lost — and the post-failover session state
// (detector, consumer chain, predictor) must match an uninterrupted
// run exactly.
func TestFailoverChaosParityWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("nine-workload failover sweep is seconds-long; skipped in -short")
	}
	cases := []struct {
		name          string
		params        workload.Params
		keepIrregular bool
	}{
		{"fft", workload.Params{N: 512, Steps: 6, Seed: 1}, false},
		{"applu", workload.Params{N: 14, Steps: 5, Seed: 1}, false},
		{"compress", workload.Params{N: 8192, Steps: 5, Seed: 1}, false},
		{"gcc", workload.Params{N: 60, Steps: 20, Seed: 1}, true},
		{"tomcatv", workload.Params{N: 48, Steps: 6, Seed: 1}, false},
		{"swim", workload.Params{N: 48, Steps: 6, Seed: 1}, false},
		{"vortex", workload.Params{N: 1 << 12, Steps: 6, Seed: 1}, true},
		{"mesh", workload.Params{N: 2048, Steps: 6, Seed: 1}, false},
		{"moldyn", workload.Params{N: 200, Steps: 6, Seed: 1}, false},
	}
	// Fixed seed: the kill point is arbitrary but the run reproducible.
	rng := rand.New(rand.NewSource(20260808))
	const failConsumers = "predictor,cacheresize"
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			spec, err := workload.ByName(c.name)
			if err != nil {
				t.Fatal(err)
			}
			var col collector
			spec.Make(c.params).Run(&col)
			dcfg := online.Config{KeepIrregular: c.keepIrregular}
			want := expectedCfg(dcfg, col.events)
			if len(want) == 0 {
				t.Fatalf("%s produced no phase events", c.name)
			}
			wantConsumers := referenceConsumers(t, failConsumers,
				expectedPreFlush(dcfg, col.events))
			bounds := chunkBounds(len(col.events), 10)
			killChunk := 1 + rng.Intn(len(bounds)-2) // never first or last

			consumers := func() *phase.Chain {
				ch, err := phase.ParseChain(failConsumers)
				if err != nil {
					panic(err)
				}
				return ch
			}
			sB, peerURL := standbyServer(t, Config{
				Detector: dcfg, DataDir: t.TempDir(), CheckpointEvery: 3,
				Consumers: consumers,
			})
			s1 := mustServer(t, Config{
				Detector: dcfg, DataDir: t.TempDir(), CheckpointEvery: 3,
				Consumers: consumers, Peer: peerURL,
			})

			// The client's view: every acknowledged chunk's response.
			acked := make([][]byte, len(bounds))
			for i := 0; i <= killChunk; i++ {
				rr := postSeq(t, s1.Handler(), "fo", uint64(i+1), col.events[bounds[i][0]:bounds[i][1]])
				if rr.Code != http.StatusOK {
					t.Fatalf("chunk %d: status %d: %s", i, rr.Code, rr.Body.String())
				}
				acked[i] = append([]byte(nil), rr.Body.Bytes()...)
			}
			// Let replication catch up, then the node dies where it
			// stands: nothing else is flushed.
			flushReplication(t, s1)
			s1.Kill()

			// Failover: promote the standby; its durable state is
			// whatever the replication stream delivered.
			if _, err := sB.Promote(); err != nil {
				t.Fatalf("promote: %v", err)
			}

			// The client switches base URL and continues with its next
			// sequence number. The promoted node recovered from the last
			// replicated checkpoint, so the client may be ahead: ride the
			// 409, rewind to X-Lpp-Want-Seq, replay the tail.
			h2 := sB.Handler()
			next := killChunk + 1
			rr := postSeq(t, h2, "fo", uint64(next+1), col.events[bounds[next][0]:bounds[next][1]])
			switch rr.Code {
			case http.StatusOK:
				acked[next] = append([]byte(nil), rr.Body.Bytes()...)
				next++
			case http.StatusConflict:
				wantSeq, err := strconv.ParseUint(rr.Header().Get("X-Lpp-Want-Seq"), 10, 64)
				if err != nil || wantSeq == 0 || wantSeq > uint64(next+1) {
					t.Fatalf("409 without usable X-Lpp-Want-Seq %q (next %d)",
						rr.Header().Get("X-Lpp-Want-Seq"), next)
				}
				next = int(wantSeq) - 1
			default:
				t.Fatalf("first post after failover: status %d: %s", rr.Code, rr.Body.String())
			}
			for i := next; i < len(bounds); i++ {
				rr := postSeq(t, h2, "fo", uint64(i+1), col.events[bounds[i][0]:bounds[i][1]])
				if rr.Code != http.StatusOK {
					t.Fatalf("chunk %d after failover: status %d: %s", i, rr.Code, rr.Body.String())
				}
				if i <= killChunk && !bytes.Equal(rr.Body.Bytes(), acked[i]) {
					// The dead primary acknowledged this chunk; the
					// promoted replica must answer it identically or
					// events were lost.
					t.Fatalf("chunk %d replayed after failover diverges from the acknowledged response", i)
				}
				acked[i] = append([]byte(nil), rr.Body.Bytes()...)
			}

			// Post-failover consumer chain state must be byte-identical
			// to an uninterrupted run's.
			ci := do(t, h2, "GET", "/v1/sessions/fo/consumers")
			if ci.Code != http.StatusOK {
				t.Fatalf("consumers: status %d: %s", ci.Code, ci.Body.String())
			}
			var gotConsumers []consumerProbe
			if err := json.Unmarshal(ci.Body.Bytes(), &gotConsumers); err != nil {
				t.Fatalf("consumers body: %v", err)
			}
			if !reflect.DeepEqual(gotConsumers, wantConsumers) {
				t.Errorf("post-failover consumer state diverges:\n got %+v\nwant %+v",
					gotConsumers, wantConsumers)
			}

			var got []phaseWire
			for _, body := range acked {
				got = append(got, decodeResponse(t, body)...)
			}
			rr = do(t, h2, "DELETE", "/v1/sessions/fo")
			if rr.Code != http.StatusOK {
				t.Fatalf("delete: status %d: %s", rr.Code, rr.Body.String())
			}
			got = append(got, decodeResponse(t, rr.Body.Bytes())...)
			assertMatches(t, got, want)
		})
	}
}

// TestReplicaKnowledgeFailover: knowledge contributed on the primary
// (session close) replicates to the standby's store byte-identically,
// and survives promotion.
func TestReplicaKnowledgeFailover(t *testing.T) {
	events := fftEvents(t)
	consumers := func() *phase.Chain {
		return phase.NewChain(phase.NewPredictorConsumer(predictor.Strict))
	}
	storeB, err := knowledge.Open(filepath.Join(t.TempDir(), "knowledge.lpp"), nil, knowledge.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sB, peerURL := standbyServer(t, Config{
		DataDir: t.TempDir(), Knowledge: storeB, Consumers: consumers,
	})
	storeA, err := knowledge.Open(filepath.Join(t.TempDir(), "knowledge.lpp"), nil, knowledge.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s1 := mustServer(t, Config{
		DataDir: t.TempDir(), Knowledge: storeA, Consumers: consumers, Peer: peerURL,
	})
	defer s1.Close()

	// Training session: the close contributes to the store, which
	// enqueues a knowledge snapshot for the peer.
	chunked(t, s1.Handler(), "train", events, 10000, true)
	if storeA.Len() != 1 {
		t.Fatalf("primary store entries = %d, want 1", storeA.Len())
	}
	flushReplication(t, s1)
	if !bytes.Equal(storeA.Snapshot(), storeB.Snapshot()) {
		t.Fatal("standby knowledge snapshot differs from the primary's")
	}
	// After promotion the replicated knowledge warm-starts sessions on
	// the new primary.
	if _, err := sB.Promote(); err != nil {
		t.Fatalf("promote: %v", err)
	}
	chunked(t, sB.Handler(), "replay", events, 10000, true)
	if st := storeB.Stats(); st.Hits != 1 {
		t.Fatalf("warm-start hits on promoted node = %d, want 1: %+v", st.Hits, st)
	}
}

// TestQuarantinedSessionCheckpointReplicates: a session that panics
// keeps answering a stable "quarantined" error, and the last good
// checkpoint it took before the panic is still on the peer — promotion
// recovers the session at that point.
func TestQuarantinedSessionCheckpointReplicates(t *testing.T) {
	events := syntheticEvents(21, 6, 6)
	bounds := chunkBounds(len(events), 6)
	sB, peerURL := standbyServer(t, Config{DataDir: t.TempDir(), CheckpointEvery: 3})
	s1 := mustServer(t, Config{DataDir: t.TempDir(), CheckpointEvery: 3, Peer: peerURL})
	defer s1.Close()
	h := s1.Handler()

	// Three clean chunks: a checkpoint at seq 3 heads to the peer.
	for i := 0; i < 3; i++ {
		if rr := postSeq(t, h, "q", uint64(i+1), events[bounds[i][0]:bounds[i][1]]); rr.Code != http.StatusOK {
			t.Fatalf("chunk %d: status %d", i, rr.Code)
		}
	}
	flushReplication(t, s1)

	// The fourth chunk panics the detector: quarantine.
	s1.testChunkHook = func() { panic("detector bug") }
	if rr := postSeq(t, h, "q", 4, events[bounds[3][0]:bounds[3][1]]); rr.Code != http.StatusInternalServerError ||
		!strings.Contains(rr.Body.String(), "quarantined") {
		t.Fatalf("panicking chunk: status %d body %s", rr.Code, rr.Body.String())
	}
	s1.testChunkHook = nil
	// Ingest after quarantine returns the same stable error, and never
	// advances the replicated state.
	for i := 0; i < 2; i++ {
		if rr := postSeq(t, h, "q", 4, events[bounds[3][0]:bounds[3][1]]); rr.Code != http.StatusInternalServerError ||
			!strings.Contains(rr.Body.String(), "quarantined") {
			t.Fatalf("ingest after quarantine: status %d body %s", rr.Code, rr.Body.String())
		}
	}

	// The peer still holds the seq-3 checkpoint (the panic never
	// poisoned it), and promotion recovers the session there.
	st := replicaStatus(t, sB)
	if st.Sessions["q"] != 3 {
		t.Fatalf("peer holds seq %d for quarantined session, want 3", st.Sessions["q"])
	}
	s1.Kill()
	if _, err := sB.Promote(); err != nil {
		t.Fatalf("promote: %v", err)
	}
	// The promoted copy is healthy at seq 3: chunk 4 (the one that
	// killed the primary's copy) feeds normally.
	if rr := postSeq(t, sB.Handler(), "q", 4, events[bounds[3][0]:bounds[3][1]]); rr.Code != http.StatusOK {
		t.Fatalf("chunk 4 on promoted node: status %d: %s", rr.Code, rr.Body.String())
	}
}

func replicaStatus(t *testing.T, s *Server) replica.Status {
	t.Helper()
	rr := do(t, s.Handler(), "GET", "/v1/replica/status")
	if rr.Code != http.StatusOK {
		t.Fatalf("replica status: %d", rr.Code)
	}
	var st replica.Status
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestStandbyRefusalsAndReadyz pins the role contract: a standby
// refuses normal ingest (503) and reports not-ready; a primary refuses
// replica writes (409) and reports ready; promotion flips both.
func TestStandbyRefusalsAndReadyz(t *testing.T) {
	sB, _ := standbyServer(t, Config{DataDir: t.TempDir()})
	events := syntheticEvents(22, 2, 2)

	if rr := postSeq(t, sB.Handler(), "x", 1, events[:100]); rr.Code != http.StatusServiceUnavailable ||
		!strings.Contains(rr.Body.String(), "standby") {
		t.Fatalf("ingest on standby: status %d body %s", rr.Code, rr.Body.String())
	}
	if rr := do(t, sB.Handler(), "GET", "/readyz"); rr.Code != http.StatusServiceUnavailable ||
		!strings.Contains(rr.Body.String(), "standby") {
		t.Fatalf("standby readyz: status %d body %s", rr.Code, rr.Body.String())
	}
	if rr := do(t, sB.Handler(), "GET", "/healthz"); rr.Code != http.StatusOK {
		t.Fatalf("standby healthz: status %d (liveness must stay green on a standby)", rr.Code)
	}
	if st := replicaStatus(t, sB); st.Role != "standby" {
		t.Fatalf("standby role = %q", st.Role)
	}
	if _, err := sB.Promote(); err != nil {
		t.Fatalf("promote: %v", err)
	}
	if _, err := sB.Promote(); err == nil {
		t.Fatal("second promote must fail")
	}
	if rr := do(t, sB.Handler(), "GET", "/readyz"); rr.Code != http.StatusOK {
		t.Fatalf("promoted readyz: status %d body %s", rr.Code, rr.Body.String())
	}
	if rr := postSeq(t, sB.Handler(), "x", 1, events[:100]); rr.Code != http.StatusOK {
		t.Fatalf("ingest after promote: status %d", rr.Code)
	}
	if st := replicaStatus(t, sB); st.Role != "primary" {
		t.Fatalf("promoted role = %q", st.Role)
	}
	// Replica writes bounce off a primary with 409 — the signal a
	// stale primary's replicator uses to stop pushing (split brain
	// guard on the receiving side).
	req := httptest.NewRequest("PUT", "/v1/replica/sessions/x", bytes.NewReader([]byte("junk")))
	rr := httptest.NewRecorder()
	sB.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusConflict {
		t.Fatalf("replica PUT on primary: status %d", rr.Code)
	}

	// An ephemeral (no DataDir) server cannot be a standby or a
	// replication source.
	if _, err := New(Config{Standby: true}); err == nil {
		t.Fatal("standby without DataDir must fail")
	}
	if _, err := New(Config{Peer: "http://localhost:1"}); err == nil {
		t.Fatal("peer without DataDir must fail")
	}
}

// TestRetryAfterHint: a backpressured POST carries both the standard
// Retry-After header and the ms-precision X-Lpp-Retry-After-Ms hint.
func TestRetryAfterHint(t *testing.T) {
	s := mustServer(t, Config{QueueDepth: 1})
	defer s.Close()
	h := s.Handler()
	events := syntheticEvents(23, 2, 2)

	// Stall the worker on the first chunk so the queue fills.
	block := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	s.testChunkHook = func() {
		once.Do(func() {
			close(entered)
			<-block
		})
	}
	go postSeq(t, h, "bp", 1, events[:100])
	<-entered
	// The worker is stalled and the queue holds one slot: of these six
	// concurrent posts, at most one enqueues (and blocks until the
	// worker resumes); the rest bounce with 429.
	rejected := make(chan *httptest.ResponseRecorder, 6)
	for i := 0; i < 6; i++ {
		seq := uint64(2 + i)
		go func() {
			if rr := postSeq(t, h, "bp", seq, events[:100]); rr.Code == http.StatusTooManyRequests {
				rejected <- rr
			}
		}()
	}
	var rr *httptest.ResponseRecorder
	select {
	case rr = <-rejected:
	case <-time.After(5 * time.Second):
		t.Fatal("never saw 429 under backpressure")
	}
	close(block)
	if rr.Header().Get("Retry-After") != "1" {
		t.Errorf("429 Retry-After = %q, want \"1\"", rr.Header().Get("Retry-After"))
	}
	ms, err := strconv.ParseInt(rr.Header().Get("X-Lpp-Retry-After-Ms"), 10, 64)
	if err != nil || ms < 5 || ms > 1000 {
		t.Errorf("429 X-Lpp-Retry-After-Ms = %q, want 5..1000", rr.Header().Get("X-Lpp-Retry-After-Ms"))
	}
}
