package server

// The transport layer: HTTP routes, header protocol (sequence numbers,
// replay/rewind markers, backpressure hints), and the NDJSON wire
// encoding of phase events. Handlers never touch a worker directly —
// they decode, ask the registry to dispatch, and map the registry's
// errors onto status codes.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"

	"lpp/internal/knowledge"
	"lpp/internal/phase"
)

// routes installs the handler table.
func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/sessions/{id}/events", s.handleEvents)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	s.mux.HandleFunc("GET /v1/sessions", s.handleSessions)
	s.mux.HandleFunc("GET /v1/sessions/{id}/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/sessions/{id}/consumers", s.handleConsumers)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/knowledge", s.handleKnowledge)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /v1/replica/status", s.handleReplicaStatus)
	s.mux.HandleFunc("PUT /v1/replica/sessions/{id}", s.handleReplicaPut)
	s.mux.HandleFunc("DELETE /v1/replica/sessions/{id}", s.handleReplicaDelete)
	s.mux.HandleFunc("PUT /v1/replica/knowledge", s.handleReplicaKnowledge)
	s.mux.HandleFunc("POST /v1/replica/promote", s.handleReplicaPromote)
	s.mux.HandleFunc("POST /v1/migrate/sessions/{id}/export", s.handleMigrateExport)
	s.mux.HandleFunc("PUT /v1/migrate/sessions/{id}", s.handleMigrateImport)
	s.mux.HandleFunc("POST /v1/migrate/sessions/{id}/complete", s.handleMigrateComplete)
	s.mux.HandleFunc("POST /v1/migrate/sessions/{id}/abort", s.handleMigrateAbort)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	seq, err := parseSeq(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	st := getDecodeState()
	events, cols, err := s.decodeChunk(r, st)
	if err != nil {
		putDecodeState(st)
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	nEvents := len(events)
	if cols != nil {
		nEvents = cols.N
		if s.store != nil {
			// The WAL's entry format is row-shaped, so durable sessions
			// materialize the columns once here (into the pooled slice)
			// and take the event path; recovery replay stays identical
			// for both wire formats.
			st.events = cols.AppendEvents(st.events[:0])
			events, cols = st.events, nil
		}
	}
	start := time.Now()
	c := chunk{op: opEvents, seq: seq, events: events, cols: cols, reply: make(chan result, 1)}
	res, err := s.dispatch(id, c)
	var remote *remoteError
	switch {
	case err == nil:
		// The worker replied, so nothing references the decoded events
		// any more (the WAL encodes them before the reply).
		putDecodeState(st)
		if res.status == http.StatusOK && !res.replayed {
			s.m.observeChunk(s.shardIndex(id), time.Since(start), nEvents)
		}
		writeResult(w, res)
	case errors.Is(err, errQueueFull):
		// Backpressure: the client should retry after draining; the
		// chunk is not partially applied (and was never enqueued).
		putDecodeState(st)
		s.m.rejectedChunks.Add(1)
		// Hint how long the drain actually takes (ms precision; the
		// standard Retry-After below is a blunt whole second).
		w.Header().Set("X-Lpp-Retry-After-Ms", strconv.FormatInt(s.retryHintMs(), 10))
		writeErr(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, errSessionDown):
		// The chunk may still sit in a dead worker's queue; leave the
		// state to the garbage collector rather than alias its events.
		writeErr(w, http.StatusServiceUnavailable, "session terminated; retry")
	case errors.Is(err, errMigrating):
		// The session's image is in flight to another node; the router
		// holds the chunk and retries until the handoff lands.
		putDecodeState(st)
		w.Header().Set("X-Lpp-Retry-After-Ms", strconv.FormatInt(s.retryHintMs(), 10))
		writeErr(w, http.StatusServiceUnavailable, err.Error())
	case errors.As(err, &remote):
		// The session lives elsewhere now; tell the router where.
		putDecodeState(st)
		w.Header().Set("X-Lpp-Owner", remote.owner)
		writeErr(w, http.StatusMisdirectedRequest, err.Error())
	default:
		putDecodeState(st)
		writeErr(w, http.StatusServiceUnavailable, err.Error())
	}
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sh := s.shardFor(id)
	sh.mu.Lock()
	sess, ok := sh.sessions[id]
	if ok {
		delete(sh.sessions, id)
	}
	sh.mu.Unlock()
	if !ok {
		// Not in memory — but a suspended session may still hold
		// durable state. Revive it so the close can flush the detector
		// and return the final phase events before discarding.
		if s.store == nil || !s.store.Exists(id) {
			writeErr(w, http.StatusNotFound, errNoSession.Error())
			return
		}
		revived, err := s.getSession(id, true)
		if err != nil {
			var remote *remoteError
			if errors.As(err, &remote) {
				w.Header().Set("X-Lpp-Owner", remote.owner)
				writeErr(w, http.StatusMisdirectedRequest, err.Error())
				return
			}
			writeErr(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		sh.mu.Lock()
		if sh.sessions[id] == revived {
			delete(sh.sessions, id)
			ok = true
		}
		sh.mu.Unlock()
		if !ok {
			writeErr(w, http.StatusServiceUnavailable, "session contended; retry")
			return
		}
		sess = revived
	}
	s.m.sessionsActive.Add(-1)
	start := time.Now()
	c := chunk{op: opClose, reply: make(chan result, 1)}
	select {
	case sess.queue <- c:
	case <-sess.done:
		// Dead worker. Keep the durable state: a retried DELETE will
		// revive the session and flush it properly.
		if s.store != nil && s.store.Exists(id) {
			writeErr(w, http.StatusServiceUnavailable, errSessionDown.Error())
			return
		}
		writeResult(w, result{status: http.StatusOK})
		return
	}
	var res result
	select {
	case res = <-c.reply:
	case <-sess.done:
		select {
		case res = <-c.reply:
		default:
			writeErr(w, http.StatusServiceUnavailable, errSessionDown.Error())
			return
		}
	}
	s.m.observeChunk(s.shardIndex(id), time.Since(start), 0)
	writeResult(w, res)
}

// handleSessions lists every session this node knows about — live,
// suspended, migrating, and migrated-away — so placement and migration
// are debuggable from curl.
func (s *Server) handleSessions(w http.ResponseWriter, _ *http.Request) {
	entries := s.listSessions()
	sort.Slice(entries, func(i, j int) bool { return entries[i].ID < entries[j].ID })
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Node     string         `json:"node,omitempty"`
		Sessions []sessionEntry `json:"sessions"`
	}{s.cfg.Advertise, entries})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sess, err := s.getSession(id, false)
	if err != nil {
		writeErr(w, http.StatusNotFound, err.Error())
		return
	}
	quarantined := int64(0)
	if sess.quarantined.Load() {
		quarantined = 1
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]int64{
		"events":      sess.events.Load(),
		"boundaries":  sess.boundaries.Load(),
		"predictions": sess.predictions.Load(),
		"dropped":     sess.dropped.Load(),
		"shed":        sess.shed.Load(),
		"seq":         int64(sess.seq.Load()),
		"quarantined": quarantined,
	})
}

// handleConsumers reports a session's run-time consumer state: per
// consumer, its delivery counters, a hash of its snapshot (the
// recovery-parity fingerprint), and its human report. A suspended
// durable session is revived to answer.
func (s *Server) handleConsumers(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := s.getSession(id, false); err != nil {
		// Only revive sessions that actually exist somewhere: in-memory
		// miss plus no durable state is a plain 404, not a create.
		if s.store == nil || !s.store.Exists(id) {
			writeErr(w, http.StatusNotFound, err.Error())
			return
		}
	}
	c := chunk{op: opConsumers, reply: make(chan result, 1)}
	res, err := s.dispatch(id, c)
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(res.status)
	w.Write(res.body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.m.write(w)
	if s.cfg.Knowledge != nil {
		st := s.cfg.Knowledge.Stats()
		fmt.Fprintf(w, "# TYPE lpp_knowledge_entries gauge\n")
		fmt.Fprintf(w, "lpp_knowledge_entries %d\n", st.Entries)
		fmt.Fprintf(w, "# TYPE lpp_knowledge_bytes gauge\n")
		fmt.Fprintf(w, "lpp_knowledge_bytes %d\n", st.Bytes)
		fmt.Fprintf(w, "# TYPE lpp_knowledge_hits_total counter\n")
		fmt.Fprintf(w, "lpp_knowledge_hits_total %d\n", st.Hits)
		fmt.Fprintf(w, "# TYPE lpp_knowledge_misses_total counter\n")
		fmt.Fprintf(w, "lpp_knowledge_misses_total %d\n", st.Misses)
		fmt.Fprintf(w, "# TYPE lpp_knowledge_lookups_total counter\n")
		fmt.Fprintf(w, "lpp_knowledge_lookups_total %d\n", st.Lookups)
		fmt.Fprintf(w, "# TYPE lpp_knowledge_evictions_total counter\n")
		fmt.Fprintf(w, "lpp_knowledge_evictions_total %d\n", st.Evictions)
	}
	s.writeReplicaMetrics(w)
}

// handleKnowledge reports the knowledge store's inventory: counters
// plus one summary per stored program.
func (s *Server) handleKnowledge(w http.ResponseWriter, _ *http.Request) {
	if s.cfg.Knowledge == nil {
		writeErr(w, http.StatusNotFound, "no knowledge store configured")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Stats   knowledge.Stats     `json:"stats"`
		Entries []knowledge.Summary `json:"entries"`
	}{s.cfg.Knowledge.Stats(), s.cfg.Knowledge.Summaries()})
}

// parseSeq extracts the client sequence number from the X-Lpp-Seq
// header (or ?seq= for header-less clients). Absent means "assign the
// next one"; sequence numbers start at 1.
func parseSeq(r *http.Request) (uint64, error) {
	v := r.Header.Get("X-Lpp-Seq")
	if v == "" {
		v = r.URL.Query().Get("seq")
	}
	if v == "" {
		return 0, nil
	}
	seq, err := strconv.ParseUint(v, 10, 64)
	if err != nil || seq == 0 {
		return 0, fmt.Errorf("bad sequence number %q", v)
	}
	return seq, nil
}

// writeResult renders a worker result: the sequence headers, then the
// NDJSON body (or the JSON error body for failures).
func writeResult(w http.ResponseWriter, res result) {
	if res.seq > 0 {
		w.Header().Set("X-Lpp-Seq", strconv.FormatUint(res.seq, 10))
	}
	if res.replayed {
		w.Header().Set("X-Lpp-Replayed", "true")
	}
	if res.wantSeq > 0 {
		// Sequence-gap responses tell the client where to rewind to, so
		// a failover client can replay its tail from the right chunk.
		w.Header().Set("X-Lpp-Want-Seq", strconv.FormatUint(res.wantSeq, 10))
	}
	if res.status >= 400 {
		w.Header().Set("Content-Type", "application/json")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// writeErr sends a JSON error body; retryable statuses carry
// Retry-After.
func writeErr(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(status)
	w.Write(errBody(msg))
}

func errBody(msg string) []byte {
	b, _ := json.Marshal(map[string]string{"error": msg})
	return append(b, '\n')
}

// wireEvent is the NDJSON representation of a trace event (input) or
// phase event (output).
type wireEvent struct {
	Kind   string `json:"kind"`
	Addr   uint64 `json:"addr,omitempty"`
	Block  uint64 `json:"block,omitempty"`
	Instrs int    `json:"instrs,omitempty"`
}

// phaseWire is the NDJSON representation of one detector output event.
type phaseWire struct {
	Kind         string `json:"kind"`
	Time         int64  `json:"time"`
	Instructions int64  `json:"instructions"`
	Phase        int    `json:"phase"`
}

// encodeEvents renders detector output as NDJSON body bytes.
func encodeEvents(events []phase.Event) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, ev := range events {
		enc.Encode(phaseWire{
			Kind:         ev.Kind.String(),
			Time:         ev.Time,
			Instructions: ev.Instructions,
			Phase:        ev.Phase,
		})
	}
	return buf.Bytes()
}

func countKind(events []phase.Event, k phase.Kind) int64 {
	var n int64
	for _, ev := range events {
		if ev.Kind == k {
			n++
		}
	}
	return n
}
