package server

import (
	"bufio"
	"bytes"
	"testing"

	"lpp/internal/stats"
	"lpp/internal/trace"
)

// interleaveEvents time-slices two tenant event streams the way the
// hostile interleaved workload does: alternate tenants, slice length
// quantum +/- jitter, all driven by one seeded RNG.
func interleaveEvents(a, b []trace.Event, quantum int, jitter float64, seed uint64) []trace.Event {
	rng := stats.NewRNG(seed)
	out := make([]trace.Event, 0, len(a)+len(b))
	ai, bi := 0, 0
	tenant := 0
	for ai < len(a) || bi < len(b) {
		n := int(float64(quantum) * (1 + jitter*(2*rng.Float64()-1)))
		if n < 1 {
			n = 1
		}
		if tenant == 0 {
			for ; n > 0 && ai < len(a); n-- {
				out = append(out, a[ai])
				ai++
			}
		} else {
			for ; n > 0 && bi < len(b); n-- {
				out = append(out, b[bi])
				bi++
			}
		}
		tenant = 1 - tenant
	}
	return out
}

// tenantEvents derives one tenant's small synthetic event stream from a
// seed: bursts of strided accesses with block headers, addresses offset
// into the tenant's own range.
func tenantEvents(seed uint64, n int, base trace.Addr) []trace.Event {
	rng := stats.NewRNG(seed)
	out := make([]trace.Event, 0, n)
	for len(out) < n {
		out = append(out, trace.Event{Kind: trace.EventBlock, Block: trace.BlockID(rng.Intn(1 << 16)), Instrs: 1 + rng.Intn(256)})
		burst := 1 + rng.Intn(32)
		addr := base + trace.Addr(rng.Uint64()>>20)
		stride := trace.Addr(8 * (1 + rng.Intn(16)))
		for i := 0; i < burst && len(out) < n; i++ {
			out = append(out, trace.Event{Kind: trace.EventAccess, Addr: addr})
			addr += stride
		}
	}
	return out
}

// FuzzInterleavedReader drives random quantum/jitter interleavings of
// two tenant streams through both ingest decoders — the binary
// trace.Reader and the NDJSON fast path — and requires both to return
// the exact event sequence that was encoded. This is the ingest-side
// guarantee behind the multi-tenant hostile family: however jaggedly
// two tenants' events are sliced together, the codecs must neither
// lose, reorder, nor invent events.
func FuzzInterleavedReader(f *testing.F) {
	f.Add(uint64(1), uint64(2), 16, 128, 40, 40)
	f.Add(uint64(7), uint64(7), 1, 255, 1, 300)
	f.Add(uint64(42), uint64(99), 1000, 0, 200, 3)
	f.Fuzz(func(t *testing.T, seedA, seedB uint64, quantum, jitterByte, lenA, lenB int) {
		if quantum < 1 {
			quantum = 1
		}
		if quantum > 1<<16 {
			quantum = 1 << 16
		}
		jitter := float64(jitterByte&0xFF) / 255
		if lenA < 0 {
			lenA = -lenA
		}
		if lenB < 0 {
			lenB = -lenB
		}
		lenA, lenB = lenA%1024, lenB%1024
		a := tenantEvents(seedA, lenA, 0)
		b := tenantEvents(seedB, lenB, trace.Addr(1)<<44)
		events := interleaveEvents(a, b, quantum, jitter, seedA^seedB^0xF022)

		// Binary round trip through the pooled reader path.
		var bin bytes.Buffer
		w := trace.NewWriter(&bin)
		for _, ev := range events {
			ev.Feed(w)
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("encode binary: %v", err)
		}
		st := &decodeState{br: bufio.NewReaderSize(nil, 1<<16), buf: make([]byte, 64<<10)}
		st.br.Reset(bytes.NewReader(bin.Bytes()))
		gotBin, err := st.decodeBinary()
		if err != nil {
			t.Fatalf("decode binary: %v", err)
		}
		if len(gotBin) != len(events) {
			t.Fatalf("binary: %d events, want %d", len(gotBin), len(events))
		}
		for i := range events {
			if gotBin[i] != events[i] {
				t.Fatalf("binary event %d = %+v, want %+v", i, gotBin[i], events[i])
			}
		}

		// NDJSON round trip; the canonical encoding must take the
		// allocation-free fast path and still agree exactly.
		st2 := &decodeState{br: bufio.NewReaderSize(nil, 1<<16), buf: make([]byte, 64<<10)}
		st2.br.Reset(bytes.NewReader(encodeNDJSON(events)))
		gotND, err := st2.decodeNDJSON()
		if err != nil {
			t.Fatalf("decode ndjson: %v", err)
		}
		if len(gotND) != len(gotBin) {
			t.Fatalf("ndjson: %d events, binary %d", len(gotND), len(gotBin))
		}
		for i := range gotBin {
			if gotND[i] != gotBin[i] {
				t.Fatalf("paths disagree at event %d: ndjson %+v, binary %+v", i, gotND[i], gotBin[i])
			}
		}
	})
}
