package sampling

import (
	"reflect"
	"testing"

	"lpp/internal/reuse"
	"lpp/internal/stats"
	"lpp/internal/trace"
)

// phasedTrace builds a synthetic two-phase access stream: phase A
// cycles over one array, phase B over another, alternating.
func phasedTrace(phaseLen, phases int) []trace.Addr {
	var out []trace.Addr
	const elems = 2048
	for p := 0; p < phases; p++ {
		base := trace.Addr(1 << 20)
		if p%2 == 1 {
			base = 1 << 24
		}
		for i := 0; i < phaseLen; i++ {
			out = append(out, base+trace.Addr(i%elems)*8)
		}
	}
	return out
}

func TestSamplerCollectsLongReuses(t *testing.T) {
	tr := phasedTrace(50000, 8)
	res := RunTrace(tr, Config{TargetSamples: 2000, Qualification: 256, Temporal: 256, Spatial: 64, CheckEvery: 10000})
	if len(res.Samples) == 0 {
		t.Fatal("no samples collected")
	}
	if len(res.DataAddrs) == 0 {
		t.Fatal("no data samples selected")
	}
	if res.Accesses != int64(len(tr)) {
		t.Errorf("accesses = %d, want %d", res.Accesses, len(tr))
	}
	// Every sample's distance must exceed the (initial) temporal
	// threshold — thresholds only grow in this setup.
	for _, s := range res.Samples {
		if s.Dist <= 256 {
			t.Fatalf("sample with distance %d below temporal threshold", s.Dist)
		}
	}
	// Samples must be in time order.
	for i := 1; i < len(res.Samples); i++ {
		if res.Samples[i].Time < res.Samples[i-1].Time {
			t.Fatal("samples out of time order")
		}
	}
}

func TestSamplerFeedbackLimitsSamples(t *testing.T) {
	// A trace with huge reuse distances everywhere would flood the
	// sampler; feedback must keep the count near the target.
	rng := stats.NewRNG(3)
	var tr []trace.Addr
	for i := 0; i < 400000; i++ {
		tr = append(tr, trace.Addr(rng.Intn(100000))*64)
	}
	target := 1000
	res := RunTrace(tr, Config{TargetSamples: target, Qualification: 64, Temporal: 64, Spatial: 1, CheckEvery: 20000})
	if len(res.Samples) > 4*target {
		t.Errorf("feedback failed: %d samples for target %d", len(res.Samples), target)
	}
	if res.Adjustments == 0 {
		t.Error("expected threshold adjustments")
	}
}

func TestSamplerSpatialThreshold(t *testing.T) {
	// Two data elements 8 bytes apart with long reuses: with a large
	// spatial threshold only one can become a data sample.
	var tr []trace.Addr
	filler := func(round int) {
		for i := 0; i < 2000; i++ {
			tr = append(tr, trace.Addr(1<<30)+trace.Addr(round*2000+i)*64)
		}
	}
	for round := 0; round < 20; round++ {
		tr = append(tr, 4096, 4104)
		filler(round)
	}
	res := RunTrace(tr, Config{TargetSamples: 10000, Qualification: 100, Temporal: 100, Spatial: 4096, CheckEvery: 1 << 40})
	got := 0
	for _, a := range res.DataAddrs {
		if a == 4096 || a == 4104 {
			got++
		}
	}
	if got != 1 {
		t.Errorf("spatial threshold admitted %d of the adjacent pair, want 1", got)
	}
}

func TestSubTraces(t *testing.T) {
	r := Result{
		Samples: []Sample{
			{Time: 1, Data: 0}, {Time: 5, Data: 1}, {Time: 9, Data: 0},
		},
		DataAddrs: []trace.Addr{100, 200},
	}
	subs := r.SubTraces()
	if len(subs) != 2 || len(subs[0]) != 2 || len(subs[1]) != 1 {
		t.Fatalf("SubTraces = %v", subs)
	}
	if subs[0][0] != 0 || subs[0][1] != 2 {
		t.Errorf("sub-trace of data 0 = %v, want [0 2]", subs[0])
	}
	single := r.SubTrace(1)
	if len(single) != 1 || single[0] != 1 {
		t.Errorf("SubTrace(1) = %v", single)
	}
}

func TestSamplerDefaults(t *testing.T) {
	s := New(Config{})
	if s.cfg.TargetSamples != DefaultConfig().TargetSamples {
		t.Error("zero config should take defaults")
	}
	// Block events are ignored without effect.
	s.Block(1, 10)
	if s.now != 0 {
		t.Error("Block should not advance logical time")
	}
}

func TestSamplerColdAccessesNeverSampled(t *testing.T) {
	var tr []trace.Addr
	for i := 0; i < 10000; i++ {
		tr = append(tr, trace.Addr(i)*4096) // all cold
	}
	res := RunTrace(tr, Config{TargetSamples: 100, CheckEvery: 1000})
	if len(res.Samples) != 0 {
		t.Errorf("cold-only trace produced %d samples", len(res.Samples))
	}
}

// TestRunTraceDistsMatchesRunTrace: feeding precomputed reuse
// distances through the pipelined entry point must reproduce RunTrace
// bit for bit — core.Detect's pipelined mode depends on it.
func TestRunTraceDistsMatchesRunTrace(t *testing.T) {
	tr := phasedTrace(30000, 6)
	cfg := Config{TargetSamples: 1500, CheckEvery: 5000}

	want := RunTrace(tr, cfg)

	an := reuse.NewAnalyzer()
	dists := make([]int64, len(tr))
	for i, a := range tr {
		dists[i] = an.Access(a)
	}
	got := RunTraceDists(tr, dists, cfg)

	if !reflect.DeepEqual(got, want) {
		t.Errorf("RunTraceDists diverges from RunTrace:\ngot  %+v samples=%d\nwant %+v samples=%d",
			got, len(got.Samples), want, len(want.Samples))
	}
}
