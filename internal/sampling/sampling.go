// Package sampling implements the variable-distance sampling of
// Section 2.2.1. Instead of analyzing all accesses to all data, the
// sampler watches the reuse distance of every access and keeps a small
// set of representative data samples and their long-distance access
// samples. The three thresholds of Ding and Zhong's distance-based
// sampling [12] — qualification, temporal, and spatial — are hard to
// pick by hand, so this sampler adjusts them by dynamic feedback
// toward a target sample count.
package sampling

import (
	"sort"

	"lpp/internal/reuse"
	"lpp/internal/trace"
)

// Config controls the sampler.
type Config struct {
	// TargetSamples is the access-sample budget the feedback loop
	// aims for (the paper collects 15–30 thousand).
	TargetSamples int
	// Qualification is the initial reuse distance (in distinct
	// elements) an access must exceed for its datum to become a data
	// sample.
	Qualification int64
	// Temporal is the initial reuse distance an access to a data
	// sample must exceed to be recorded as an access sample.
	Temporal int64
	// Spatial is the initial minimum address separation (bytes)
	// between data samples.
	Spatial int64
	// CheckEvery is the feedback interval in accesses.
	CheckEvery int64
	// ExpectedLength is the anticipated trace length used to pace
	// the feedback; zero means adapt from what has been seen.
	ExpectedLength int64
}

// DefaultConfig returns the settings used throughout the evaluation.
func DefaultConfig() Config {
	return Config{
		TargetSamples: 20000,
		Qualification: 512,
		Temporal:      512,
		Spatial:       1024,
		CheckEvery:    100000,
	}
}

// Sample is one recorded access sample.
type Sample struct {
	// Time is the logical time (index in the data-access stream).
	Time int64
	// Data identifies the data sample accessed (index into
	// Result.DataAddrs).
	Data int
	// Dist is the access's reuse distance.
	Dist int64
}

// Result is the product of a sampling pass.
type Result struct {
	Samples     []Sample
	DataAddrs   []trace.Addr // data-sample ID -> address
	Adjustments int          // threshold adjustments performed
	Accesses    int64        // accesses processed
}

// SubTrace returns, for data sample id, the indices into r.Samples of
// its access samples, in time order.
func (r *Result) SubTrace(id int) []int {
	var out []int
	for i, s := range r.Samples {
		if s.Data == id {
			out = append(out, i)
		}
	}
	return out
}

// SubTraces groups sample indices by data sample, preserving time
// order within each group.
func (r *Result) SubTraces() [][]int {
	out := make([][]int, len(r.DataAddrs))
	for i, s := range r.Samples {
		out[s.Data] = append(out[s.Data], i)
	}
	return out
}

// Sampler consumes a data-access stream and collects samples. It
// implements trace.Instrumenter so it can run off a live workload or a
// replayed trace.
type Sampler struct {
	cfg      Config
	analyzer *reuse.Analyzer
	now      int64

	qual, temporal, spatial int64

	dataIDs   map[trace.Addr]int
	dataAddrs []trace.Addr
	sorted    []trace.Addr // data-sample addresses for spatial checks

	samples     []Sample
	adjustments int
	lastCheck   int64
}

// New returns a Sampler with the given configuration (zero fields take
// defaults).
func New(cfg Config) *Sampler {
	s := newSampler(cfg)
	s.analyzer = reuse.NewAnalyzer()
	return s
}

// newSampler builds a Sampler without a reuse analyzer — for callers
// that feed precomputed distances through AccessDist.
func newSampler(cfg Config) *Sampler {
	def := DefaultConfig()
	if cfg.TargetSamples <= 0 {
		cfg.TargetSamples = def.TargetSamples
	}
	if cfg.Qualification <= 0 {
		cfg.Qualification = def.Qualification
	}
	if cfg.Temporal <= 0 {
		cfg.Temporal = def.Temporal
	}
	if cfg.Spatial <= 0 {
		cfg.Spatial = def.Spatial
	}
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = def.CheckEvery
	}
	return &Sampler{
		cfg:      cfg,
		qual:     cfg.Qualification,
		temporal: cfg.Temporal,
		spatial:  cfg.Spatial,
		dataIDs:  make(map[trace.Addr]int),
	}
}

// Block implements trace.Instrumenter (ignored).
func (s *Sampler) Block(trace.BlockID, int) {}

// Access feeds one data access to the sampler.
func (s *Sampler) Access(addr trace.Addr) {
	s.AccessDist(addr, s.analyzer.Access(addr))
}

// AccessDist feeds one data access whose reuse distance has already
// been measured. It is the pipelined entry point: the exact
// reuse-distance analysis — the expensive, threshold-independent part
// of sampling — can run concurrently with trace generation, and the
// threshold/feedback logic (which needs the final trace length for
// pacing) replays the (addr, dist) stream afterwards. Feeding the same
// stream through Access and AccessDist yields bit-identical results.
func (s *Sampler) AccessDist(addr trace.Addr, dist int64) {
	t := s.now
	s.now++
	if dist == reuse.Infinite {
		return
	}
	if id, ok := s.dataIDs[addr]; ok {
		if dist > s.temporal {
			s.samples = append(s.samples, Sample{Time: t, Data: id, Dist: dist})
		}
	} else if dist > s.qual && s.spatiallySeparate(addr) {
		id := len(s.dataAddrs)
		s.dataIDs[addr] = id
		s.dataAddrs = append(s.dataAddrs, addr)
		s.insertSorted(addr)
		s.samples = append(s.samples, Sample{Time: t, Data: id, Dist: dist})
	}
	if s.now-s.lastCheck >= s.cfg.CheckEvery {
		s.lastCheck = s.now
		s.feedback()
	}
}

// spatiallySeparate reports whether addr keeps the spatial threshold
// from every existing data sample.
func (s *Sampler) spatiallySeparate(addr trace.Addr) bool {
	i := sort.Search(len(s.sorted), func(i int) bool { return s.sorted[i] >= addr })
	if i < len(s.sorted) && int64(s.sorted[i]-addr) < s.spatial {
		return false
	}
	if i > 0 && int64(addr-s.sorted[i-1]) < s.spatial {
		return false
	}
	return true
}

func (s *Sampler) insertSorted(addr trace.Addr) {
	i := sort.Search(len(s.sorted), func(i int) bool { return s.sorted[i] >= addr })
	s.sorted = append(s.sorted, 0)
	copy(s.sorted[i+1:], s.sorted[i:])
	s.sorted[i] = addr
}

// feedback compares the sample-collection rate against the target pace
// and adjusts the thresholds: collecting too fast doubles them,
// collecting too slowly (with room in the budget) halves them.
func (s *Sampler) feedback() {
	var expected float64
	if s.cfg.ExpectedLength > 0 {
		expected = float64(s.cfg.TargetSamples) * float64(s.now) / float64(s.cfg.ExpectedLength)
	} else {
		// Without a length estimate, pace against the budget
		// directly: never let the sample count run far past it.
		expected = float64(s.cfg.TargetSamples)
	}
	got := float64(len(s.samples))
	switch {
	case got > 1.5*expected:
		// Scale up in proportion to the overshoot so even an
		// adversarial trace converges in a handful of adjustments.
		factor := int64(got / expected)
		if factor < 2 {
			factor = 2
		}
		if factor > 16 {
			factor = 16
		}
		s.qual *= factor
		s.temporal *= factor
		s.spatial *= 2
		s.adjustments++
	case s.cfg.ExpectedLength > 0 && got < 0.25*expected && s.qual > 16:
		s.qual /= 2
		s.temporal /= 2
		if s.spatial > 64 {
			s.spatial /= 2
		}
		s.adjustments++
	}
	// Off-line sampling can also shed what it over-collected before
	// the thresholds caught up: decimate to stay near the budget.
	for len(s.samples) > 2*s.cfg.TargetSamples {
		kept := s.samples[:0]
		for i, smp := range s.samples {
			if i%2 == 0 {
				kept = append(kept, smp)
			}
		}
		s.samples = kept
		s.adjustments++
	}
}

// Result freezes the sampler's collected samples.
func (s *Sampler) Result() Result {
	return Result{
		Samples:     s.samples,
		DataAddrs:   s.dataAddrs,
		Adjustments: s.adjustments,
		Accesses:    s.now,
	}
}

// RunTrace samples a recorded access stream.
func RunTrace(accesses []trace.Addr, cfg Config) Result {
	if cfg.ExpectedLength == 0 {
		cfg.ExpectedLength = int64(len(accesses))
	}
	s := New(cfg)
	for _, a := range accesses {
		s.Access(a)
	}
	return s.Result()
}

// RunTraceDists samples a recorded access stream whose reuse distances
// were measured elsewhere (e.g. by an analyzer pipelined with trace
// generation). dists[i] must be the exact reuse distance of
// accesses[i]; the result is bit-identical to RunTrace over the same
// stream.
func RunTraceDists(accesses []trace.Addr, dists []int64, cfg Config) Result {
	if cfg.ExpectedLength == 0 {
		cfg.ExpectedLength = int64(len(accesses))
	}
	s := newSampler(cfg)
	for i, a := range accesses {
		s.AccessDist(a, dists[i])
	}
	return s.Result()
}
