package replica

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"lpp/internal/durable"
	"lpp/internal/faultfs"
)

// fakePeer is a minimal in-memory replica target implementing the
// /v1/replica/* surface the Replicator speaks.
type fakePeer struct {
	mu        sync.Mutex
	role      string
	sessions  map[string]uint64
	images    map[string][]byte
	knowledge []byte
	noStore   bool // answer 404 on knowledge PUTs
}

func newFakePeer() *fakePeer {
	return &fakePeer{role: "standby", sessions: make(map[string]uint64), images: make(map[string][]byte)}
}

func (p *fakePeer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/replica/status", func(w http.ResponseWriter, r *http.Request) {
		p.mu.Lock()
		st := Status{Role: p.role, State: "standby", Sessions: make(map[string]uint64, len(p.sessions))}
		for id, seq := range p.sessions {
			st.Sessions[id] = seq
		}
		p.mu.Unlock()
		json.NewEncoder(w).Encode(st)
	})
	mux.HandleFunc("PUT /v1/replica/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		seq, _, _, err := durable.DecodeCheckpoint(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		id := r.PathValue("id")
		p.mu.Lock()
		if seq >= p.sessions[id] {
			p.sessions[id] = seq
			p.images[id] = body
		}
		p.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("DELETE /v1/replica/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		p.mu.Lock()
		delete(p.sessions, id)
		delete(p.images, id)
		p.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("PUT /v1/replica/knowledge", func(w http.ResponseWriter, r *http.Request) {
		p.mu.Lock()
		noStore := p.noStore
		p.mu.Unlock()
		if noStore {
			http.Error(w, "no knowledge store", http.StatusNotFound)
			return
		}
		body, _ := io.ReadAll(r.Body)
		p.mu.Lock()
		p.knowledge = body
		p.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}

func (p *fakePeer) seq(id string) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sessions[id]
}

func (p *fakePeer) sessionCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.sessions)
}

// testReplicator builds a fast-backoff Replicator against peer.
func testReplicator(t *testing.T, peerURL string, transport http.RoundTripper, source func() []Checkpoint, know func() []byte) *Replicator {
	t.Helper()
	if source == nil {
		source = func() []Checkpoint { return nil }
	}
	r, err := New(Config{
		Peer:       peerURL,
		QueueDepth: 4,
		Timeout:    250 * time.Millisecond,
		MinBackoff: time.Millisecond,
		MaxBackoff: 10 * time.Millisecond,
		Transport:  transport,
		Source:     source,
		Knowledge:  know,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Stop)
	return r
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func ck(id string, seq uint64) Checkpoint {
	return Checkpoint{Session: id, Seq: seq, Snapshot: []byte("snap-" + id), Response: []byte("resp")}
}

func TestCheckpointDeliveryAndCoalescing(t *testing.T) {
	peer := newFakePeer()
	srv := httptest.NewServer(peer.handler())
	defer srv.Close()
	r := testReplicator(t, srv.URL, nil, nil, nil)

	r.EnqueueCheckpoint(ck("a", 1))
	waitUntil(t, "first checkpoint", func() bool { return peer.seq("a") == 1 })
	// A burst of images for one session may coalesce; the newest must
	// win regardless.
	for seq := uint64(2); seq <= 6; seq++ {
		r.EnqueueCheckpoint(ck("a", seq))
	}
	waitUntil(t, "newest checkpoint", func() bool { return peer.seq("a") == 6 })
	if !r.Flush(5 * time.Second) {
		t.Fatal("queue did not drain")
	}
	st := r.Stats()
	if st.Sent == 0 || !st.Connected || st.Dropped != 0 {
		t.Fatalf("stats after delivery: %+v", st)
	}
	if st.LagP99 <= 0 {
		t.Fatalf("no lag samples recorded: %+v", st)
	}
}

func TestRemoveFollowsCheckpoint(t *testing.T) {
	peer := newFakePeer()
	srv := httptest.NewServer(peer.handler())
	defer srv.Close()
	r := testReplicator(t, srv.URL, nil, nil, nil)

	r.EnqueueCheckpoint(ck("gone", 3))
	r.EnqueueRemove("gone")
	waitUntil(t, "removal", func() bool {
		return r.Flush(time.Millisecond) && peer.seq("gone") == 0
	})
}

func TestOutageRetriesThenResyncRepairsDrops(t *testing.T) {
	peer := newFakePeer()
	srv := httptest.NewServer(peer.handler())
	defer srv.Close()
	ft := faultfs.NewHTTPTransport(nil)
	// Total outage: every request fails until disarmed.
	ft.Repeat(100000, faultfs.HTTPFault{Err: errors.New("peer down")})

	// The resync source knows every session's latest image — including
	// the ones the queue dropped during the outage.
	var mu sync.Mutex
	latest := make(map[string]Checkpoint)
	source := func() []Checkpoint {
		mu.Lock()
		defer mu.Unlock()
		out := make([]Checkpoint, 0, len(latest))
		for _, c := range latest {
			out = append(out, c)
		}
		return out
	}
	r := testReplicator(t, srv.URL, ft, source, nil)

	// Overflow the depth-4 queue with six distinct sessions.
	for _, id := range []string{"s0", "s1", "s2", "s3", "s4", "s5"} {
		c := ck(id, 2)
		mu.Lock()
		latest[id] = c
		mu.Unlock()
		r.EnqueueCheckpoint(c)
	}
	waitUntil(t, "drop-oldest under outage", func() bool {
		st := r.Stats()
		return st.Dropped >= 2 && st.Errors > 0 && !st.Connected
	})
	// Heal the peer: the reconnect resync must deliver all six
	// sessions, dropped ones included.
	ft.Script()
	waitUntil(t, "resync repair", func() bool { return peer.sessionCount() == 6 })
	for _, id := range []string{"s0", "s1", "s2", "s3", "s4", "s5"} {
		if peer.seq(id) != 2 {
			t.Fatalf("session %s at seq %d after resync, want 2", id, peer.seq(id))
		}
	}
	if st := r.Stats(); st.Resyncs == 0 || !st.Connected {
		t.Fatalf("stats after repair: %+v", st)
	}
}

func TestLatencyAndPartialBodyFaults(t *testing.T) {
	peer := newFakePeer()
	srv := httptest.NewServer(peer.handler())
	defer srv.Close()
	ft := faultfs.NewHTTPTransport(nil)
	// First request hangs past the 250ms request timeout, the second
	// returns a torn body, the third answers 500; then the peer heals.
	ft.Script(
		faultfs.HTTPFault{Latency: 2 * time.Second},
		faultfs.HTTPFault{TruncateBody: 1},
		faultfs.HTTPFault{Status: http.StatusInternalServerError},
	)
	r := testReplicator(t, srv.URL, ft, nil, nil)
	r.EnqueueCheckpoint(ck("a", 1))
	waitUntil(t, "delivery after faults", func() bool { return peer.seq("a") == 1 })
	if st := r.Stats(); st.Errors < 3 {
		t.Fatalf("errors = %d, want >= 3 (latency, torn body, 500): %+v", st.Errors, st)
	}
}

func TestResyncDeletesOrphansAndShipsKnowledge(t *testing.T) {
	peer := newFakePeer()
	peer.sessions["ghost"] = 9
	peer.images["ghost"] = []byte("stale")
	srv := httptest.NewServer(peer.handler())
	defer srv.Close()

	source := func() []Checkpoint { return []Checkpoint{ck("live", 5)} }
	know := func() []byte { return []byte("LPPKNW1 snapshot bytes") }
	r := testReplicator(t, srv.URL, nil, source, know)
	waitUntil(t, "orphan deletion + knowledge", func() bool {
		peer.mu.Lock()
		defer peer.mu.Unlock()
		_, ghost := peer.sessions["ghost"]
		return !ghost && peer.sessions["live"] == 5 && peer.knowledge != nil
	})
	if st := r.Stats(); st.Resyncs == 0 {
		t.Fatalf("no resync recorded: %+v", st)
	}
}

func TestKnowledgePeerWithoutStoreIsNotAnError(t *testing.T) {
	peer := newFakePeer()
	peer.noStore = true
	srv := httptest.NewServer(peer.handler())
	defer srv.Close()
	r := testReplicator(t, srv.URL, nil, nil, nil)
	r.EnqueueKnowledge([]byte("snapshot"))
	r.EnqueueCheckpoint(ck("a", 1))
	waitUntil(t, "checkpoint past 404 knowledge", func() bool { return peer.seq("a") == 1 })
	if st := r.Stats(); st.Errors != 0 {
		t.Fatalf("404 on knowledge counted as error: %+v", st)
	}
}

func TestRefusesToReplicateToPrimary(t *testing.T) {
	peer := newFakePeer()
	peer.role = "primary"
	srv := httptest.NewServer(peer.handler())
	defer srv.Close()
	r := testReplicator(t, srv.URL, nil, nil, nil)
	r.EnqueueCheckpoint(ck("a", 1))
	waitUntil(t, "refusal errors", func() bool { return r.Stats().Errors >= 2 })
	if peer.seq("a") != 0 {
		t.Fatal("checkpoint pushed at a primary peer")
	}
	if st := r.Stats(); st.Connected {
		t.Fatalf("connected against a primary peer: %+v", st)
	}
}
