// Package replica streams a primary lppserve's durable state to a peer
// so a node death loses nothing a checkpoint captured. The unit of
// replication is the session checkpoint — the same LPPCKPT1-framed,
// CRC-sealed image the durable layer writes to disk (carrying the
// LPPBUS1 detector+chain snapshot, its sequence number, and the cached
// response) — plus session removals and knowledge-store snapshots.
//
// Replication is asynchronous and lossy by design: the primary's
// ingest path never waits on the peer. Checkpoints enter a bounded
// queue that coalesces per session (only the newest image matters) and
// drops its oldest entry under overflow; anything dropped — or missed
// during an outage — is repaired by a full resync the next time the
// peer answers. Because every item is a complete state image keyed by
// sequence number, re-sending is always safe: the receiver ignores
// images older than what it holds. The client side of the failover
// contract is the seq-numbered retry loop: chunks accepted after the
// last replicated checkpoint are re-sent by the client after
// promotion, so the combined protocol loses zero acknowledged events.
package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"

	"lpp/internal/durable"
	"lpp/internal/httpx"
)

// Checkpoint is one session's replicated state image.
type Checkpoint struct {
	// Session is the session ID.
	Session string
	// Seq is the sequence number the image covers.
	Seq uint64
	// Snapshot is the checkpointed detector(+chain) image.
	Snapshot []byte
	// Response is the cached response body for Seq.
	Response []byte
}

// Status is the peer's replication inventory, served at
// GET /v1/replica/status and consumed by the resync path.
type Status struct {
	// Role is "standby" (accepting replication) or "primary".
	Role string `json:"role"`
	// State is the server's readiness state string.
	State string `json:"state"`
	// Sessions maps session ID to the checkpoint sequence number the
	// peer holds.
	Sessions map[string]uint64 `json:"sessions"`
}

// Config tunes a Replicator. Peer and Source are required.
type Config struct {
	// Peer is the replica's base URL (e.g. "http://host:8081").
	Peer string
	// QueueDepth bounds pending replication items (default 64). Under
	// overflow the oldest item is dropped and a resync scheduled.
	QueueDepth int
	// Timeout is the per-request deadline (default 5s).
	Timeout time.Duration
	// MinBackoff..MaxBackoff bound the capped exponential backoff with
	// jitter applied between failed sends (defaults 50ms..5s).
	MinBackoff time.Duration
	MaxBackoff time.Duration
	// Transport overrides the HTTP transport (fault-injection tests).
	Transport http.RoundTripper
	// Source returns the latest durable checkpoint of every session —
	// the full-resync image. Called whenever the peer reconnects after
	// an outage or a drop.
	Source func() []Checkpoint
	// Knowledge returns the current knowledge-store snapshot for
	// resync, or nil when the server runs without a store.
	Knowledge func() []byte
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.MinBackoff <= 0 {
		c.MinBackoff = 50 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.MaxBackoff < c.MinBackoff {
		c.MaxBackoff = c.MinBackoff
	}
	return c
}

// Stats is a point-in-time view of the replication pipeline.
type Stats struct {
	// Queue is the number of items waiting to be sent — the
	// lpp_replica_lag gauge.
	Queue int
	// Sent counts successfully delivered items.
	Sent int64
	// Dropped counts items discarded by queue overflow.
	Dropped int64
	// Coalesced counts enqueues that replaced a pending item for the
	// same session instead of growing the queue.
	Coalesced int64
	// Errors counts failed sends (each retried after backoff).
	Errors int64
	// Resyncs counts completed full-resync passes.
	Resyncs int64
	// Connected reports whether the last send (or resync) succeeded.
	Connected bool
	// LagP50 and LagP99 are enqueue-to-delivery latency percentiles
	// over the recent window of delivered checkpoints.
	LagP50, LagP99 time.Duration
}

const lagWindow = 512

type itemKind int

const (
	itemCheckpoint itemKind = iota
	itemRemove
	itemKnowledge
)

type item struct {
	kind     itemKind
	session  string // checkpoint / remove
	ck       Checkpoint
	snapshot []byte // knowledge
	enqueued time.Time
}

func (it *item) key() string {
	switch it.kind {
	case itemCheckpoint:
		return "c|" + it.session
	case itemRemove:
		return "r|" + it.session
	default:
		return "k"
	}
}

// Replicator owns the replication queue and the sender goroutine.
type Replicator struct {
	cfg    Config
	client *http.Client

	mu         sync.Mutex
	queue      []*item
	index      map[string]*item
	inflight   bool
	needResync bool
	connected  bool
	sent       int64
	dropped    int64
	coalesced  int64
	errors     int64
	resyncs    int64
	lag        [lagWindow]time.Duration
	lagN       int

	kick     chan struct{}
	stop     chan struct{}
	stopOnce sync.Once
	cancel   context.CancelFunc
	ctx      context.Context
	done     chan struct{}
}

// New starts a Replicator targeting cfg.Peer. Stop it with Stop.
func New(cfg Config) (*Replicator, error) {
	cfg = cfg.withDefaults()
	if cfg.Peer == "" {
		return nil, errors.New("replica: no peer configured")
	}
	if _, err := url.Parse(cfg.Peer); err != nil {
		return nil, fmt.Errorf("replica: bad peer URL: %w", err)
	}
	if cfg.Source == nil {
		return nil, errors.New("replica: no resync source configured")
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := &Replicator{
		cfg:    cfg,
		client: &http.Client{Transport: cfg.Transport},
		index:  make(map[string]*item),
		// A fresh primary may already hold durable sessions the peer
		// has never seen (restart after a crash): catch up first.
		needResync: true,
		kick:       make(chan struct{}, 1),
		stop:       make(chan struct{}),
		ctx:        ctx,
		cancel:     cancel,
		done:       make(chan struct{}),
	}
	go r.loop()
	return r, nil
}

// Stop halts the sender immediately; in-flight requests are canceled.
// Pending items are abandoned (a later resync from a new Replicator
// repairs the peer). Use Flush first for a graceful drain.
func (r *Replicator) Stop() {
	r.stopOnce.Do(func() {
		close(r.stop)
		r.cancel()
	})
	<-r.done
}

// Flush waits until the queue is empty and nothing is in flight (with
// the peer connected and no resync pending), or the timeout elapses.
// It reports whether the drain completed.
func (r *Replicator) Flush(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		r.mu.Lock()
		drained := len(r.queue) == 0 && !r.inflight && !r.needResync && r.connected
		r.mu.Unlock()
		if drained {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		select {
		case <-r.done:
			return false
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// EnqueueCheckpoint schedules a session checkpoint for replication,
// replacing any pending image of the same session.
func (r *Replicator) EnqueueCheckpoint(ck Checkpoint) {
	r.enqueue(&item{kind: itemCheckpoint, session: ck.Session, ck: ck})
}

// EnqueueRemove schedules a session removal (the session closed on the
// primary).
func (r *Replicator) EnqueueRemove(session string) {
	r.enqueue(&item{kind: itemRemove, session: session})
}

// EnqueueKnowledge schedules a knowledge-store snapshot, replacing any
// pending one.
func (r *Replicator) EnqueueKnowledge(snapshot []byte) {
	if snapshot == nil {
		return
	}
	r.enqueue(&item{kind: itemKnowledge, snapshot: snapshot})
}

func (r *Replicator) enqueue(it *item) {
	it.enqueued = time.Now()
	r.mu.Lock()
	if prev, ok := r.index[it.key()]; ok {
		// Coalesce in place: the newer image supersedes the pending
		// one, but the oldest unmet intent defines the lag.
		it.enqueued = prev.enqueued
		*prev = *it
		r.coalesced++
		r.mu.Unlock()
		return
	}
	if len(r.queue) >= r.cfg.QueueDepth {
		// Degrade gracefully: drop the oldest pending item and let the
		// next resync repair whatever it covered.
		victim := r.queue[0]
		r.queue = r.queue[1:]
		if r.index[victim.key()] == victim {
			delete(r.index, victim.key())
		}
		r.dropped++
		r.needResync = true
	}
	r.queue = append(r.queue, it)
	r.index[it.key()] = it
	r.mu.Unlock()
	select {
	case r.kick <- struct{}{}:
	default:
	}
}

// pop removes and returns the queue head, marking it in flight.
func (r *Replicator) pop() *item {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.queue) == 0 {
		return nil
	}
	it := r.queue[0]
	r.queue = r.queue[1:]
	if r.index[it.key()] == it {
		delete(r.index, it.key())
	}
	r.inflight = true
	return it
}

// pushFront requeues a failed item at the head unless a newer item for
// the same key was enqueued while it was in flight.
func (r *Replicator) pushFront(it *item) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.inflight = false
	if _, ok := r.index[it.key()]; ok {
		return // superseded while in flight
	}
	r.queue = append([]*item{it}, r.queue...)
	r.index[it.key()] = it
}

// Stats returns a point-in-time view of the pipeline.
func (r *Replicator) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := Stats{
		Queue:     len(r.queue),
		Sent:      r.sent,
		Dropped:   r.dropped,
		Coalesced: r.coalesced,
		Errors:    r.errors,
		Resyncs:   r.resyncs,
		Connected: r.connected,
	}
	n := r.lagN
	if n > lagWindow {
		n = lagWindow
	}
	if n > 0 {
		lats := make([]time.Duration, n)
		copy(lats, r.lag[:n])
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		// Same nearest-rank indexing as the server's latency gauges, so
		// the two quantiles are monotone at any sample count.
		st.LagP50 = lats[(n-1)/2]
		st.LagP99 = lats[(n-1)*99/100]
	}
	return st
}

// loop is the sender goroutine: resync when needed, then drain the
// queue in order, backing off (capped exponential, jittered, shared
// httpx policy) whenever the peer misbehaves.
func (r *Replicator) loop() {
	defer close(r.done)
	bo := httpx.Backoff{Min: r.cfg.MinBackoff, Max: r.cfg.MaxBackoff}
	for {
		select {
		case <-r.stop:
			return
		default:
		}
		r.mu.Lock()
		resync := r.needResync
		r.mu.Unlock()
		if resync {
			if err := r.resync(); err != nil {
				r.noteError()
				if !bo.Sleep(r.stop) {
					return
				}
				continue
			}
			bo.Reset()
		}
		it := r.pop()
		if it == nil {
			select {
			case <-r.kick:
			case <-r.stop:
				return
			}
			continue
		}
		if err := r.send(it); err != nil {
			r.pushFront(it)
			r.noteError()
			if !bo.Sleep(r.stop) {
				return
			}
			continue
		}
		bo.Reset()
		r.noteSent(it)
	}
}

func (r *Replicator) noteError() {
	r.mu.Lock()
	r.errors++
	r.connected = false
	// Whatever the peer missed during the outage is repaired on
	// reconnect.
	r.needResync = true
	r.mu.Unlock()
}

func (r *Replicator) noteSent(it *item) {
	r.mu.Lock()
	r.inflight = false
	r.sent++
	r.connected = true
	if it.kind == itemCheckpoint {
		r.lag[r.lagN%lagWindow] = time.Since(it.enqueued)
		r.lagN++
	}
	r.mu.Unlock()
}

// send delivers one item to the peer.
func (r *Replicator) send(it *item) error {
	switch it.kind {
	case itemCheckpoint:
		body := durable.EncodeCheckpoint(it.ck.Seq, it.ck.Snapshot, it.ck.Response)
		return r.put("/v1/replica/sessions/"+url.PathEscape(it.session), "application/x-lpp-checkpoint", body, false)
	case itemRemove:
		return r.do("DELETE", "/v1/replica/sessions/"+url.PathEscape(it.session), "", nil, true)
	default:
		// A peer without a knowledge store answers 404: not an outage,
		// just an asymmetric deployment — skip, don't retry forever.
		return r.put("/v1/replica/knowledge", "application/x-lpp-knowledge", it.snapshot, true)
	}
}

func (r *Replicator) put(path, contentType string, body []byte, okMissing bool) error {
	return r.do("PUT", path, contentType, body, okMissing)
}

func (r *Replicator) do(method, path, contentType string, body []byte, okMissing bool) error {
	ctx, cancel := context.WithTimeout(r.ctx, r.cfg.Timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, r.cfg.Peer+path, rd)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	// Read the whole body: a truncated response (connection torn
	// mid-reply) must count as a failed delivery, not a silent success.
	_, rerr := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if rerr != nil {
		return fmt.Errorf("replica: %s %s: reading response: %w", method, path, rerr)
	}
	if resp.StatusCode == http.StatusNotFound && okMissing {
		return nil
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return fmt.Errorf("replica: %s %s: peer answered %s", method, path, resp.Status)
	}
	return nil
}

// resync is the catch-up path: ask the peer what it holds, then send
// everything stale or missing and delete everything orphaned. Every
// image is the session's full state, so resync is idempotent and safe
// to interleave with queued sends (the receiver ignores regressions).
func (r *Replicator) resync() error {
	st, err := r.fetchStatus()
	if err != nil {
		return err
	}
	if st.Role != "standby" {
		// Never push state at a node that believes it is primary: that
		// is either a split brain or a misconfiguration, and silently
		// overwriting its sessions would destroy live data.
		return fmt.Errorf("replica: peer role is %q, not standby", st.Role)
	}
	local := r.cfg.Source()
	seen := make(map[string]bool, len(local))
	for _, ck := range local {
		seen[ck.Session] = true
		if ck.Seq == 0 {
			continue // session exists but has no checkpoint yet
		}
		if st.Sessions[ck.Session] == ck.Seq {
			continue // peer already current
		}
		body := durable.EncodeCheckpoint(ck.Seq, ck.Snapshot, ck.Response)
		if err := r.put("/v1/replica/sessions/"+url.PathEscape(ck.Session), "application/x-lpp-checkpoint", body, false); err != nil {
			return err
		}
	}
	for id := range st.Sessions {
		if !seen[id] {
			if err := r.do("DELETE", "/v1/replica/sessions/"+url.PathEscape(id), "", nil, true); err != nil {
				return err
			}
		}
	}
	if r.cfg.Knowledge != nil {
		if snap := r.cfg.Knowledge(); snap != nil {
			if err := r.put("/v1/replica/knowledge", "application/x-lpp-knowledge", snap, true); err != nil {
				return err
			}
		}
	}
	r.mu.Lock()
	r.resyncs++
	r.needResync = false
	r.connected = true
	r.mu.Unlock()
	return nil
}

func (r *Replicator) fetchStatus() (*Status, error) {
	ctx, cancel := context.WithTimeout(r.ctx, r.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", r.cfg.Peer+"/v1/replica/status", nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("replica: status: peer answered %s", resp.Status)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("replica: status: %w", err)
	}
	return &st, nil
}
