// Package profiling wires the standard pprof CPU and heap profiles
// into the command-line tools, so offline hot spots (sampling, wavelet
// filtering, partitioning, marker selection) can be inspected with
// `go tool pprof`.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins a CPU profile and/or arranges a heap profile, each
// gated on its path being non-empty. The returned stop function must
// run at process exit (it finishes the CPU profile and writes the heap
// snapshot); it is safe to call when both paths are empty.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
				return
			}
			runtime.GC() // materialize the live heap before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
			}
			f.Close()
		}
	}, nil
}
