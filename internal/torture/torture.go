// Package torture is the differential harness for the hostile workload
// families: it replays one generated trace through the three detection
// paths the repository guarantees agreement between —
//
//	offline   core.DetectTrace over the whole recorded trace
//	online    a single streaming online.Detector fed event by event
//	http      the chunked session path through server.Handler
//
// — and scores them against each other and against the generator's own
// ground truth. The HTTP path must reproduce the direct online
// detector's event stream exactly (same config, one synchronous
// client); offline vs online agreement and online vs ground truth are
// recall/precision within a tolerance window, because the pipelines
// legitimately place a boundary at different points inside a phase
// transition. Memory gauges are tracked at every poll so the harness
// doubles as the bounded-memory proof on streams built to break caps.
package torture

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"

	"lpp/internal/core"
	"lpp/internal/online"
	"lpp/internal/phase"
	"lpp/internal/server"
	"lpp/internal/trace"
	"lpp/internal/workload"
)

// Options tunes one harness run. The zero value is ready to use.
type Options struct {
	// Online is the detector configuration used by both the direct
	// streaming path and the HTTP server path (zero fields take the
	// online defaults). OnEvent is overwritten by the harness.
	Online online.Config
	// Chunk is the events-per-POST chunk size for the HTTP path
	// (default 4096).
	Chunk int
	// TolDiv divides the trace length into the boundary-match
	// tolerance (default 50, i.e. 2%); the tolerance is additionally
	// capped at half the median ground-truth phase gap so that a
	// fine-grained truth cannot be matched trivially.
	TolDiv int64
	// PollEvery is how many events pass between memory-gauge polls of
	// the direct detector (default 65536).
	PollEvery int
}

// Report is the outcome of one family's differential run.
type Report struct {
	Family   string `json:"family"`
	Accesses int64  `json:"accesses"`
	Blocks   int64  `json:"blocks"`

	TruthBoundaries   int `json:"truth_boundaries"`
	OfflineBoundaries int `json:"offline_boundaries"`
	OnlineBoundaries  int `json:"online_boundaries"`
	HTTPEvents        int `json:"http_events"`

	// HTTPParity reports exact event-stream equality between the
	// direct detector and the chunked HTTP path.
	HTTPParity bool `json:"http_parity"`
	// OfflineRecall is the fraction of offline boundaries with an
	// online boundary within tolerance (the PR 1 parity metric).
	OfflineRecall float64 `json:"offline_recall"`
	// TruthRecall and TruthPrecision score the online boundaries
	// against the generator's ground truth.
	TruthRecall    float64 `json:"truth_recall"`
	TruthPrecision float64 `json:"truth_precision"`
	// Tolerance is the resolved match window, in accesses.
	Tolerance int64 `json:"tolerance"`

	// Peak memory gauges observed across the stream, and the hardening
	// counters at end of stream.
	MaxGrammarSize  int   `json:"max_grammar_size"`
	MaxSignature    int   `json:"max_signature"`
	MaxWindow       int   `json:"max_window"`
	MaxPhases       int   `json:"max_phases"`
	Suppressed      int64 `json:"suppressed_boundaries"`
	GrammarRestarts int64 `json:"grammar_restarts"`
	TruncatedPages  int64 `json:"truncated_pages"`
}

func (o Options) withDefaults() Options {
	if o.Chunk <= 0 {
		o.Chunk = 4096
	}
	if o.TolDiv <= 0 {
		o.TolDiv = 50
	}
	if o.PollEvery <= 0 {
		o.PollEvery = 65536
	}
	return o
}

// flatten converts a recorded trace into replay-ordered events, the
// unit both streaming paths consume.
func flatten(t *trace.Recorded) []trace.Event {
	out := make([]trace.Event, 0, len(t.Accesses)+len(t.Blocks))
	next := 0
	for i, b := range t.Blocks {
		end := len(t.Accesses)
		if i+1 < len(t.Blocks) {
			end = int(t.Blocks[i+1].AccessIndex)
		}
		out = append(out, trace.Event{Kind: trace.EventBlock, Block: b.ID, Instrs: int(b.Instrs)})
		for ; next < end; next++ {
			out = append(out, trace.Event{Kind: trace.EventAccess, Addr: t.Accesses[next]})
		}
	}
	for ; next < len(t.Accesses); next++ {
		out = append(out, trace.Event{Kind: trace.EventAccess, Addr: t.Accesses[next]})
	}
	return out
}

// Run executes the differential harness for one hostile family.
func Run(family string, opt Options) (*Report, error) {
	spec, err := workload.HostileByName(family)
	if err != nil {
		return nil, err
	}
	return RunSpec(spec, spec.Params, opt)
}

// RunSpec is Run with an explicit family spec and parameters, so
// callers can sweep quantum/jitter/seed.
func RunSpec(spec workload.HostileSpec, params workload.HostileParams, opt Options) (*Report, error) {
	opt = opt.withDefaults()

	// Generate once; every path replays the identical trace.
	prog := spec.Make(params)
	rec := trace.NewRecorder(1<<20, 1<<14)
	prog.Run(rec)
	truth := prog.Truth()
	events := flatten(&rec.T)

	rep := &Report{
		Family:          spec.Name,
		Accesses:        int64(len(rec.T.Accesses)),
		Blocks:          int64(len(rec.T.Blocks)),
		TruthBoundaries: len(truth.Boundaries),
	}

	// Path 1: offline, whole-trace.
	det, err := core.DetectTrace(&rec.T, core.DefaultConfig())
	if err != nil {
		return nil, fmt.Errorf("torture: offline detect: %w", err)
	}
	rep.OfflineBoundaries = len(det.Boundaries)

	// Path 2: direct streaming detector, gauges polled along the way.
	var direct []phase.Event
	cfg := opt.Online
	cfg.OnEvent = func(ev phase.Event) { direct = append(direct, ev) }
	d := online.NewDetector(cfg)
	poll := func() {
		st := d.Stats()
		if st.GrammarSize > rep.MaxGrammarSize {
			rep.MaxGrammarSize = st.GrammarSize
		}
		if st.LargestSignature > rep.MaxSignature {
			rep.MaxSignature = st.LargestSignature
		}
		if st.WindowLen > rep.MaxWindow {
			rep.MaxWindow = st.WindowLen
		}
		if st.Phases > rep.MaxPhases {
			rep.MaxPhases = st.Phases
		}
	}
	for i, ev := range events {
		ev.Feed(d)
		if (i+1)%opt.PollEvery == 0 {
			poll()
		}
	}
	d.Flush()
	poll()
	st := d.Stats()
	rep.Suppressed = st.SuppressedBoundaries
	rep.GrammarRestarts = st.GrammarRestarts
	rep.TruncatedPages = st.TruncatedPages

	var online_ []int64
	for _, ev := range direct {
		if ev.Kind == phase.BoundaryDetected {
			online_ = append(online_, ev.Time)
		}
	}
	rep.OnlineBoundaries = len(online_)

	// Path 3: the chunked HTTP server path, same detector config.
	httpEvents, err := runHTTP(opt.Online, events, opt.Chunk)
	if err != nil {
		return nil, err
	}
	rep.HTTPEvents = len(httpEvents)
	rep.HTTPParity = sameEvents(direct, httpEvents)

	// Scoring.
	tol := rep.Accesses / opt.TolDiv
	if g := medianGap(truth.Boundaries) / 2; g > 0 && g < tol {
		tol = g
	}
	if tol < 1 {
		tol = 1
	}
	rep.Tolerance = tol
	rep.OfflineRecall = recall(det.Boundaries, online_, tol)
	rep.TruthRecall = recall(truth.Boundaries, online_, tol)
	rep.TruthPrecision = recall(online_, truth.Boundaries, tol)
	return rep, nil
}

// RunAll runs every hostile family and returns the reports in family
// order.
func RunAll(opt Options) ([]*Report, error) {
	var out []*Report
	for _, spec := range workload.Hostile() {
		rep, err := RunSpec(spec, spec.Params, opt)
		if err != nil {
			return nil, fmt.Errorf("torture: %s: %w", spec.Name, err)
		}
		out = append(out, rep)
	}
	return out, nil
}

// runHTTP streams the events through an in-process server in binary
// chunks — one synchronous client, so the worker sees an empty queue
// and applies no load shedding — and returns the decoded phase events
// from every chunk response plus the closing DELETE.
func runHTTP(cfg online.Config, events []trace.Event, chunk int) ([]phase.Event, error) {
	srv, err := server.New(server.Config{Detector: cfg})
	if err != nil {
		return nil, fmt.Errorf("torture: server: %w", err)
	}
	defer srv.Close()
	h := srv.Handler()

	var out []phase.Event
	for off := 0; off < len(events); off += chunk {
		end := off + chunk
		if end > len(events) {
			end = len(events)
		}
		var body bytes.Buffer
		w := trace.NewWriter(&body)
		for _, ev := range events[off:end] {
			ev.Feed(w)
		}
		if err := w.Flush(); err != nil {
			return nil, fmt.Errorf("torture: encode chunk: %w", err)
		}
		req := httptest.NewRequest("POST", "/v1/sessions/torture/events", &body)
		req.Header.Set("Content-Type", "application/x-lpp-trace")
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		if rr.Code != http.StatusOK {
			return nil, fmt.Errorf("torture: chunk at %d: status %d: %s", off, rr.Code, rr.Body.String())
		}
		evs, err := decodePhaseNDJSON(rr.Body.Bytes())
		if err != nil {
			return nil, err
		}
		out = append(out, evs...)
	}
	req := httptest.NewRequest("DELETE", "/v1/sessions/torture", nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		return nil, fmt.Errorf("torture: close: status %d: %s", rr.Code, rr.Body.String())
	}
	evs, err := decodePhaseNDJSON(rr.Body.Bytes())
	if err != nil {
		return nil, err
	}
	return append(out, evs...), nil
}

// phaseLine mirrors the server's NDJSON phase-event rendering.
type phaseLine struct {
	Kind         string `json:"kind"`
	Time         int64  `json:"time"`
	Instructions int64  `json:"instructions"`
	Phase        int    `json:"phase"`
}

func decodePhaseNDJSON(body []byte) ([]phase.Event, error) {
	var out []phase.Event
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var pl phaseLine
		if err := json.Unmarshal(line, &pl); err != nil {
			return nil, fmt.Errorf("torture: bad response line %q: %w", line, err)
		}
		k, ok := phase.ParseKind(pl.Kind)
		if !ok {
			return nil, fmt.Errorf("torture: unknown event kind %q", pl.Kind)
		}
		out = append(out, phase.Event{Kind: k, Time: pl.Time, Instructions: pl.Instructions, Phase: pl.Phase})
	}
	return out, sc.Err()
}

// sameEvents reports exact stream equality on the fields the wire
// format carries (the streaming detector leaves Locality zero).
func sameEvents(a, b []phase.Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].Time != b[i].Time ||
			a[i].Instructions != b[i].Instructions || a[i].Phase != b[i].Phase {
			return false
		}
	}
	return true
}

// recall returns the fraction of want boundaries that have a got
// boundary within tol.
func recall(want, got []int64, tol int64) float64 {
	if len(want) == 0 {
		return 1
	}
	matched := 0
	for _, w := range want {
		i := sort.Search(len(got), func(i int) bool { return got[i] >= w-tol })
		if i < len(got) && got[i]-w < tol && w-got[i] < tol {
			matched++
		}
	}
	return float64(matched) / float64(len(want))
}

// medianGap returns the median spacing between consecutive boundaries
// (0 when fewer than two).
func medianGap(b []int64) int64 {
	if len(b) < 2 {
		return 0
	}
	gaps := make([]int64, 0, len(b)-1)
	for i := 1; i < len(b); i++ {
		gaps = append(gaps, b[i]-b[i-1])
	}
	sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
	return gaps[len(gaps)/2]
}
