package torture

import (
	"testing"

	"lpp/internal/online"
)

// familyFloor is the calibrated acceptance floor for one hostile
// family. The floors sit well under the measured values (seed 1,
// scale 1: interleaved 0.71/0.44/1.00, drift 0.91/0.32/0.72, adaptive
// 0.50/0.22/0.58 for offline-recall/truth-recall/truth-precision) so
// they fail on regressions, not on noise — but every floor is high
// enough that a detector that stopped tracking a family's structure
// cannot pass.
type familyFloor struct {
	offlineRecall  float64
	truthRecall    float64
	truthPrecision float64
}

var floors = map[string]familyFloor{
	"interleaved": {offlineRecall: 0.55, truthRecall: 0.25, truthPrecision: 0.85},
	"drift":       {offlineRecall: 0.70, truthRecall: 0.15, truthPrecision: 0.50},
	"adaptive":    {offlineRecall: 0.35, truthRecall: 0.10, truthPrecision: 0.40},
}

// TestDifferentialParity is the pinning run: every hostile family
// through all three detection paths, asserting exact HTTP parity,
// offline/online boundary agreement, precision/recall against ground
// truth, and memory gauges bounded by the default caps.
func TestDifferentialParity(t *testing.T) {
	reports, err := RunAll(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(floors) {
		t.Fatalf("got %d reports, want %d", len(reports), len(floors))
	}
	def := online.DefaultConfig()
	for _, rep := range reports {
		rep := rep
		t.Run(rep.Family, func(t *testing.T) {
			floor, ok := floors[rep.Family]
			if !ok {
				t.Fatalf("no calibrated floor for family %q", rep.Family)
			}
			t.Logf("report: %+v", *rep)

			// Three-way parity. The HTTP path must be byte-identical
			// to the direct detector: one synchronous client means no
			// load shedding, so any divergence is a codec or state bug.
			if !rep.HTTPParity {
				t.Errorf("HTTP path diverged from direct detector (%d direct boundaries, %d http events)",
					rep.OnlineBoundaries, rep.HTTPEvents)
			}
			if rep.OfflineBoundaries == 0 {
				t.Errorf("offline pipeline found no boundaries")
			}
			if rep.OnlineBoundaries == 0 {
				t.Errorf("online detector found no boundaries")
			}
			if rep.OfflineRecall < floor.offlineRecall {
				t.Errorf("offline recall %.3f below floor %.3f", rep.OfflineRecall, floor.offlineRecall)
			}

			// Granularity sanity (the PR 1 parity rule): the two
			// pipelines may cut at different grain but not wildly so.
			if rep.OnlineBoundaries > 12*rep.OfflineBoundaries ||
				rep.OfflineBoundaries > 12*rep.OnlineBoundaries {
				t.Errorf("granularity blowup: offline %d vs online %d boundaries",
					rep.OfflineBoundaries, rep.OnlineBoundaries)
			}

			// Ground truth: the generator knows where its phases are.
			if rep.TruthRecall < floor.truthRecall {
				t.Errorf("truth recall %.3f below floor %.3f", rep.TruthRecall, floor.truthRecall)
			}
			if rep.TruthPrecision < floor.truthPrecision {
				t.Errorf("truth precision %.3f below floor %.3f", rep.TruthPrecision, floor.truthPrecision)
			}

			// Bounded memory under the default caps.
			if rep.MaxGrammarSize > def.MaxGrammar {
				t.Errorf("grammar size %d exceeded cap %d", rep.MaxGrammarSize, def.MaxGrammar)
			}
			if rep.MaxSignature > def.MaxSignature {
				t.Errorf("signature %d pages exceeded cap %d", rep.MaxSignature, def.MaxSignature)
			}
			if rep.MaxWindow > def.BoundaryWindow {
				t.Errorf("boundary window %d exceeded cap %d", rep.MaxWindow, def.BoundaryWindow)
			}
			if rep.MaxPhases > def.MaxPhases {
				t.Errorf("phase count %d exceeded cap %d", rep.MaxPhases, def.MaxPhases)
			}
		})
	}
}

// TestHardenedParity reruns every family under aggressively small caps:
// the detector must stay inside them and the HTTP path must still
// reproduce the direct detector exactly — hardening fallbacks are
// deterministic state transitions, not a divergence license.
func TestHardenedParity(t *testing.T) {
	cfg := online.DefaultConfig()
	cfg.MaxGrammar = 64
	cfg.PhaseTail = 16
	cfg.MaxPhases = 16
	cfg.MaxSignature = 32
	cfg.MinBoundaryGap = 1000
	reports, err := RunAll(Options{Online: cfg})
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reports {
		if !rep.HTTPParity {
			t.Errorf("%s: hardened HTTP path diverged from direct detector", rep.Family)
		}
		if rep.MaxGrammarSize > cfg.MaxGrammar {
			t.Errorf("%s: grammar size %d exceeded hardened cap %d", rep.Family, rep.MaxGrammarSize, cfg.MaxGrammar)
		}
		if rep.MaxSignature > cfg.MaxSignature {
			t.Errorf("%s: signature %d exceeded hardened cap %d", rep.Family, rep.MaxSignature, cfg.MaxSignature)
		}
		if rep.MaxPhases > cfg.MaxPhases {
			t.Errorf("%s: phases %d exceeded hardened cap %d", rep.Family, rep.MaxPhases, cfg.MaxPhases)
		}
		if rep.OnlineBoundaries == 0 {
			t.Errorf("%s: hardened detector found no boundaries at all", rep.Family)
		}
	}
}

// TestRunUnknownFamily pins the error path.
func TestRunUnknownFamily(t *testing.T) {
	if _, err := Run("nonesuch", Options{}); err == nil {
		t.Fatal("unknown family accepted")
	}
}
