package online

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"lpp/internal/phase"
	"lpp/internal/trace"
	"lpp/internal/workload"
)

// collectEvents records a workload run as a replayable event list.
type eventCollector struct{ events []trace.Event }

func (c *eventCollector) Block(id trace.BlockID, instrs int) {
	c.events = append(c.events, trace.Event{Kind: trace.EventBlock, Block: id, Instrs: instrs})
}
func (c *eventCollector) Access(addr trace.Addr) {
	c.events = append(c.events, trace.Event{Kind: trace.EventAccess, Addr: addr})
}

// runStraight feeds every event through one detector and returns its
// output events.
func runStraight(cfg Config, events []trace.Event) []phase.Event {
	var out []phase.Event
	cfg.OnEvent = func(ev phase.Event) { out = append(out, ev) }
	d := NewDetector(cfg)
	for _, ev := range events {
		ev.Feed(d)
	}
	d.Flush()
	return out
}

// runInterrupted feeds the stream with a snapshot+restore into a brand
// new detector at every cut point, simulating a crash and recovery.
func runInterrupted(t *testing.T, cfg Config, events []trace.Event, cuts []int) []phase.Event {
	t.Helper()
	var out []phase.Event
	cfg.OnEvent = func(ev phase.Event) { out = append(out, ev) }
	d := NewDetector(cfg)
	prev := 0
	for _, cut := range cuts {
		for _, ev := range events[prev:cut] {
			ev.Feed(d)
		}
		prev = cut
		snap := d.Snapshot()
		nd, err := NewDetectorFromSnapshot(cfg, snap)
		if err != nil {
			t.Fatalf("restore at event %d: %v", cut, err)
		}
		// The restored detector must itself re-snapshot to identical
		// bytes: Snapshot∘Restore is the identity on state.
		if again := nd.Snapshot(); !bytes.Equal(snap, again) {
			t.Fatalf("re-snapshot at event %d differs: %d vs %d bytes", cut, len(snap), len(again))
		}
		d = nd
	}
	for _, ev := range events[prev:] {
		ev.Feed(d)
	}
	d.Flush()
	return out
}

func assertSameEvents(t *testing.T, got, want []phase.Event) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("event count %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestSnapshotRestoreParitySynthetic interrupts a synthetic phased
// stream at several points; boundaries and predictions must be
// identical to the uninterrupted run.
func TestSnapshotRestoreParitySynthetic(t *testing.T) {
	var col eventCollector
	phasedStream(&col, 20, 6)
	cfg := Config{}
	want := runStraight(cfg, col.events)
	if len(want) == 0 {
		t.Fatal("workload produced no phase events; parity is vacuous")
	}
	n := len(col.events)
	got := runInterrupted(t, cfg, col.events, []int{1, n / 5, n / 3, n / 2, 4 * n / 5})
	assertSameEvents(t, got, want)
}

// TestSnapshotRestoreParityWorkloads runs the full nine-workload sweep:
// for each workload the stream is cut mid-run, snapshotted, restored
// into a fresh detector, and must emit exactly the boundaries and
// next-phase predictions of the uninterrupted run.
func TestSnapshotRestoreParityWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("nine-workload sweep is seconds-long; skipped in -short")
	}
	for _, c := range parityCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			spec, err := workload.ByName(c.name)
			if err != nil {
				t.Fatal(err)
			}
			var col eventCollector
			spec.Make(c.train).Run(&col)

			cfg := Config{KeepIrregular: c.keepIrregular}
			want := runStraight(cfg, col.events)
			if len(want) == 0 {
				t.Fatal("workload produced no phase events; parity is vacuous")
			}
			n := len(col.events)
			got := runInterrupted(t, cfg, col.events, []int{n / 4, 2 * n / 4, 3 * n / 4})
			assertSameEvents(t, got, want)
		})
	}
}

func TestSnapshotConfigMismatch(t *testing.T) {
	d := NewDetector(Config{})
	phasedStream(d, 3, 6)
	snap := d.Snapshot()
	other := DefaultConfig()
	other.MaxDataSamples = 99
	if _, err := NewDetectorFromSnapshot(other, snap); !errors.Is(err, ErrSnapshotConfig) {
		t.Fatalf("restore under different config: err = %v, want ErrSnapshotConfig", err)
	}
}

// TestSnapshotRejectsCorrupt sweeps truncations, bit flips, and a
// version skew over a real snapshot: decode must detect every one and
// must never partially apply (the detector stays usable).
func TestSnapshotRejectsCorrupt(t *testing.T) {
	d := NewDetector(Config{})
	phasedStream(d, 6, 6)
	snap := d.Snapshot()

	fresh := func() *Detector { return NewDetector(Config{}) }
	for cut := 0; cut < len(snap); cut += 1 + cut/16 {
		if err := fresh().Restore(snap[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	for off := 0; off < len(snap); off += 1 + off/16 {
		bad := append([]byte(nil), snap...)
		bad[off] ^= 0x40
		if err := fresh().Restore(bad); err == nil {
			t.Fatalf("bit flip at byte %d accepted", off)
		}
	}
	// Version skew: bump the version byte and fix up the CRC so only
	// the version check can reject it.
	skew := append([]byte(nil), snap...)
	skew[len(snapMagic)] = snapVersion + 1
	skew = skew[:len(skew)-4]
	skew = binary.LittleEndian.AppendUint32(skew, crc32.ChecksumIEEE(skew))
	if err := fresh().Restore(skew); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("version skew: err = %v, want ErrSnapshotVersion", err)
	}

	// A failed restore must leave the target detector intact.
	target := NewDetector(Config{})
	phasedStream(target, 2, 6)
	before := target.Snapshot()
	bad := append([]byte(nil), snap...)
	bad[len(bad)/2] ^= 1
	if err := target.Restore(bad); err == nil {
		t.Fatal("corrupt restore accepted")
	}
	if !bytes.Equal(before, target.Snapshot()) {
		t.Fatal("failed restore mutated the detector")
	}
}

// FuzzSnapshotRestore asserts decode never panics and that a restored
// detector is immediately usable.
func FuzzSnapshotRestore(f *testing.F) {
	d := NewDetector(Config{})
	phasedStream(d, 6, 6)
	valid := d.Snapshot()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-1])
	f.Add([]byte(snapMagic))
	f.Add([]byte("garbage"))
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x10
	f.Add(flipped)
	skew := append([]byte(nil), valid...)
	skew[len(snapMagic)] = snapVersion + 1
	skew = skew[:len(skew)-4]
	skew = binary.LittleEndian.AppendUint32(skew, crc32.ChecksumIEEE(skew))
	f.Add(skew)

	f.Fuzz(func(t *testing.T, data []byte) {
		nd := NewDetector(Config{})
		if err := nd.Restore(data); err != nil {
			return
		}
		// Whatever decoded must hold together under use.
		for i := 0; i < 256; i++ {
			nd.Access(trace.Addr(i * 64))
		}
		nd.Flush()
		nd.Snapshot()
	})
}
