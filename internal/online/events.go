package online

import "lpp/internal/phase"

// The detector's event model moved to the shared internal/phase
// package so both pipelines (and every run-time consumer) speak one
// type. These aliases keep existing callers compiling for one release.

// Kind discriminates phase events.
//
// Deprecated: use phase.Kind.
type Kind = phase.Kind

// Phase event kinds.
//
// Deprecated: use phase.BoundaryDetected and phase.PhasePredicted.
const (
	BoundaryDetected = phase.BoundaryDetected
	PhasePredicted   = phase.PhasePredicted
)

// PhaseEvent is one detection output.
//
// Deprecated: use phase.Event.
type PhaseEvent = phase.Event
