package online

import (
	"sort"

	"lpp/internal/phase"
	"lpp/internal/phasedet"
	"lpp/internal/predictor"
	"lpp/internal/regexphase"
	"lpp/internal/sequitur"
)

// flushBoundaries partitions the current window of filtered samples and
// emits the cuts that fall in the stable region. Offline partitioning
// sees the whole filtered trace at once; the streaming variant sees a
// sliding window, withholds cuts within BoundaryMargin of the leading
// edge (they can still move as context arrives), and keeps an overlap
// so a boundary near the junction of two windows is found by one of
// them. A final flush (end of stream) has full context, so no margin.
func (d *Detector) flushBoundaries(final bool) {
	if len(d.window) == 0 {
		return
	}
	// Decisions arrive in per-datum order but interleave across
	// datums; partitioning wants global time order.
	sort.Slice(d.window, func(i, j int) bool { return d.window[i].time < d.window[j].time })

	ids := make([]int, len(d.window))
	for i, s := range d.window {
		ids[i] = s.datum
	}
	cuts := phasedet.Partition(ids, phasedet.Config{Alpha: d.cfg.Alpha, MaxSpan: d.cfg.MaxSpan})

	stable := len(d.window) - d.cfg.BoundaryMargin
	if final {
		stable = len(d.window)
	}
	// A cut is only accepted when its segment holds a few samples:
	// partitioning a bounded window can place degenerate adjacent cuts
	// whose empty segments would each mint a spurious phase identity.
	const minSegSamples = 4

	retired := 0 // window elements already folded into a segment
	for _, c := range cuts {
		if c >= stable {
			break
		}
		t := d.window[c].time
		if t <= d.lastBoundary || c-retired < minSegSamples {
			// Overlap with a previous flush, or a degenerate segment.
			continue
		}
		if d.cfg.MinBoundaryGap > 0 && t-d.lastBoundary < d.cfg.MinBoundaryGap {
			// Unstable-boundary margin guard: too close to the last
			// accepted boundary to be a distinct phase change. The
			// samples stay in the open segment, so the next accepted
			// cut absorbs them instead of minting a sliver phase.
			d.suppressed++
			continue
		}
		for ; retired < c; retired++ {
			d.hier.retire(d.window[retired].page)
		}
		ph := d.hier.closeSegment()
		d.lastBoundary = t
		d.segStart = t
		d.boundaries++
		d.emit(phase.Event{Kind: phase.BoundaryDetected, Time: t, Instructions: d.instrs, Phase: ph})
		if next, ok := d.hier.predictNext(); ok {
			d.predictions++
			d.emit(phase.Event{Kind: phase.PhasePredicted, Time: t, Instructions: d.instrs, Phase: next})
		}
	}

	// Slide: drop everything already inside a closed segment, plus —
	// when no recent cut bounds the window — enough of the oldest
	// open-segment samples to guarantee progress. Dropped open-segment
	// samples still contribute their datum to the segment signature.
	keepFrom := retired
	if final {
		keepFrom = len(d.window)
	} else if min := len(d.window) - d.cfg.BoundaryWindow/2; keepFrom < min {
		keepFrom = min
	}
	for ; retired < keepFrom; retired++ {
		d.hier.retire(d.window[retired].page)
	}
	d.window = append(d.window[:0], d.window[keepFrom:]...)
}

// hierarchy tracks phase identity and the incremental SEQUITUR grammar
// over the emitted phase sequence.
//
// Offline, phase identity comes from marker selection over the complete
// block trace; a streaming detector cannot retain that trace, so it
// identifies recurring phases by their data instead: two segments are
// the same phase when the sets of 64KB pages they touch overlap (the
// paper's observation that each phase is marked by accesses to its own
// group of data). The phase-ID sequence feeds a SEQUITUR builder — the
// algorithm is already incremental — and at each boundary the grammar
// recompiles into the next-phase automaton of Section 2.4.
type hierarchy struct {
	cfg     Config
	builder *sequitur.Builder
	// grammarSize is refreshed at each boundary (gauge + restart cap).
	grammarSize int
	// tail holds the most recent phase IDs: the automaton's walk
	// context, and the replay seed when the grammar restarts.
	tail []int
	// known holds each phase's accumulated datum-set signature.
	known []map[int]struct{}
	// curSeg accumulates the datums of the still-open segment.
	curSeg map[int]struct{}
	// restarts counts grammar restarts from the tail (the MaxGrammar
	// graceful fallback); truncated counts pages dropped from the open
	// segment by the MaxSignature cap. Both feed lpp_detector_* metrics.
	restarts  int64
	truncated int64
}

func newHierarchy(cfg Config) *hierarchy {
	return &hierarchy{
		cfg:     cfg,
		builder: sequitur.NewBuilder(),
		curSeg:  make(map[int]struct{}),
	}
}

// retire folds one filtered sample's page (64KB identity granule) into
// the open segment's signature, dropping (and counting) pages past the
// MaxSignature cap so a never-recurring stream cannot grow the set
// without bound.
func (h *hierarchy) retire(page int) {
	if len(h.curSeg) >= h.cfg.MaxSignature {
		if _, ok := h.curSeg[page]; !ok {
			h.truncated++
			return
		}
	}
	h.curSeg[page] = struct{}{}
}

// closeSegment ends the open segment at a detected boundary: assigns it
// a phase ID by signature matching, feeds the ID to the grammar, and
// restarts the grammar from the tail if it outgrew its cap.
func (h *hierarchy) closeSegment() int {
	id := h.identify()
	h.builder.Append(id)
	if len(h.tail) == h.cfg.PhaseTail {
		copy(h.tail, h.tail[1:])
		h.tail = h.tail[:len(h.tail)-1]
	}
	h.tail = append(h.tail, id)

	h.grammarSize = h.builder.Size()
	if h.grammarSize > h.cfg.MaxGrammar {
		h.restarts++
		h.builder = sequitur.NewBuilder()
		for _, p := range h.tail {
			h.builder.Append(p)
		}
		h.grammarSize = h.builder.Size()
	}
	h.curSeg = make(map[int]struct{})
	return id
}

// identify matches the open segment's page set against known phases
// by Jaccard similarity. Signatures are frozen at creation: merging a
// matched segment's pages in would let boundary-straddling segments
// accrete neighboring phases' pages onto a signature until pure
// segments no longer clear the similarity bar against it.
func (h *hierarchy) identify() int {
	best, bestSim := -1, 0.0
	for id, sig := range h.known {
		inter := 0
		for d := range h.curSeg {
			if _, ok := sig[d]; ok {
				inter++
			}
		}
		union := len(sig) + len(h.curSeg) - inter
		if union == 0 {
			continue
		}
		sim := float64(inter) / float64(union)
		if sim > bestSim {
			best, bestSim = id, sim
		}
	}
	if best >= 0 && bestSim >= h.cfg.Similarity {
		return best
	}
	if len(h.known) < h.cfg.MaxPhases {
		sig := make(map[int]struct{}, len(h.curSeg))
		for d := range h.curSeg {
			sig[d] = struct{}{}
		}
		h.known = append(h.known, sig)
		return len(h.known) - 1
	}
	// At the identity cap: fold into the nearest phase (graceful
	// degradation; 0 when nothing is known, which cannot happen once
	// MaxPhases > 0 segments exist).
	if best < 0 {
		best = 0
	}
	return best
}

// largestSignature returns the page count of the biggest signature,
// the open segment included — the gauge the bounded-memory tests hold
// against MaxSignature.
func (h *hierarchy) largestSignature() int {
	max := len(h.curSeg)
	for _, sig := range h.known {
		if len(sig) > max {
			max = len(sig)
		}
	}
	return max
}

// predictNext recompiles the grammar into the next-phase automaton and
// walks the recent phase tail; a uniquely determined next transition is
// a prediction.
func (h *hierarchy) predictNext() (int, bool) {
	expr := regexphase.FromGrammar(h.builder.Grammar())
	np := predictor.NewNextPhase(expr)
	for _, p := range h.tail {
		np.Observe(p)
	}
	return np.Predict()
}
