package online

import (
	"lpp/internal/trace"
)

// AccessBatch feeds a decoded chunk of trace events to the detector in
// one call. It is exactly equivalent to calling Block/Access once per
// event in order — the golden-trace suite pins that equivalence on all
// nine workloads — but it amortizes the per-event cost the streaming
// server would otherwise pay: no Instrumenter interface dispatch per
// event, and reuse distances for each run of consecutive data accesses
// are computed by a single reuse.ApproxAnalyzer.AccessBatch call with
// the eviction rule applied inside the loop. The batch path allocates
// nothing in the steady state; its scratch buffers live on the
// detector and are bounded by the longest access run in a batch.
func (d *Detector) AccessBatch(events []trace.Event) {
	i := 0
	for i < len(events) {
		if events[i].Kind == trace.EventBlock {
			d.blocks++
			d.instrs += int64(events[i].Instrs)
			i++
			continue
		}
		j := i + 1
		for j < len(events) && events[j].Kind == trace.EventAccess {
			j++
		}
		d.accessRun(events[i:j])
		i = j
	}
}

// accessRun processes one maximal run of consecutive access events.
// Distances are computed for the whole run first — sampling state and
// the analyzer are independent, so deferring the sampling half of each
// access past the analyzer half of later ones changes nothing — then
// the sampling half replays per access with logical time advanced at
// the same points the per-event path advances it.
func (d *Detector) accessRun(run []trace.Event) {
	if d.stride > 1 {
		// Load shedding drops individual accesses by position; keep the
		// per-event path, which is exact, for the degraded regime.
		for k := range run {
			d.Access(run[k].Addr)
		}
		return
	}
	n := len(run)
	if cap(d.batchAddrs) < n {
		d.batchAddrs = make([]trace.Addr, n)
		d.batchDists = make([]int64, n)
	}
	addrs := d.batchAddrs[:n]
	for k := range run {
		addrs[k] = run[k].Addr
	}
	dists := d.analyzer.AccessBatch(addrs, d.cfg.MaxLive, d.batchDists[:n])
	for k, addr := range addrs {
		t := d.now
		d.now++
		d.sample(t, addr, dists[k])
	}
}
