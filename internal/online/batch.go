package online

import (
	"lpp/internal/trace"
)

// AccessBatch feeds a decoded chunk of trace events to the detector in
// one call. It is exactly equivalent to calling Block/Access once per
// event in order — the golden-trace suite pins that equivalence on all
// nine workloads plus the hostile tier — but it amortizes the per-event
// cost the streaming server would otherwise pay: no Instrumenter
// interface dispatch per event, and each run of consecutive data
// accesses goes through one fused loop doing analyzer access, eviction,
// and sampling together (step), with no intermediate address or
// distance buffers. Load shedding (stride > 1) is handled inside the
// same fused loop, so the degraded regime batches exactly like the
// healthy one. The batch path allocates nothing in the steady state.
func (d *Detector) AccessBatch(events []trace.Event) {
	i := 0
	for i < len(events) {
		if events[i].Kind == trace.EventBlock {
			d.blocks++
			d.instrs += int64(events[i].Instrs)
			i++
			continue
		}
		j := i + 1
		for j < len(events) && events[j].Kind == trace.EventAccess {
			j++
		}
		for k := i; k < j; k++ {
			d.step(events[k].Addr)
		}
		i = j
	}
}

// AccessColumns feeds a decoded v2 chunk to the detector straight from
// its columns, without materializing []trace.Event: the kinds bitmap is
// walked in stream order, block events fold their counters from the
// dense block columns, and each maximal run of accesses streams the
// address column through the same fused step loop AccessBatch uses.
// The golden suites pin AccessColumns bit-identical to the per-event
// and row-batch paths.
func (d *Detector) AccessColumns(c *trace.Columns) {
	ai, bi := 0, 0
	i := 0
	for i < c.N {
		if c.IsBlock(i) {
			d.blocks++
			d.instrs += int64(c.Instrs[bi])
			bi++
			i++
			continue
		}
		j := i + 1
		for j < c.N && !c.IsBlock(j) {
			j++
		}
		for _, addr := range c.Addrs[ai : ai+(j-i)] {
			d.step(addr)
		}
		ai += j - i
		i = j
	}
}

// step is the fused per-reference hot path shared by Access and both
// batch entry points: advance logical time, apply load shedding, run
// the analyzer with its eviction rule (one call via AccessEvict), then
// the sampling half. Keeping one body makes per-event/batched/columnar
// parity structural rather than re-proven per path.
func (d *Detector) step(addr trace.Addr) {
	t := d.now
	d.now++

	// Load shedding: under pressure only every stride-th access is
	// analyzed; the rest advance time only. Reuse distances shrink by
	// about the stride, and the threshold feedback re-adapts.
	if d.stride > 1 {
		d.strideAt++
		if d.strideAt < int64(d.stride) {
			d.shed++
			return
		}
		d.strideAt = 0
	}

	dist := d.analyzer.AccessEvict(addr, d.cfg.MaxLive)
	d.sample(t, addr, dist)
}
