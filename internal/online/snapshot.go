package online

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"math"
	"sort"

	"lpp/internal/phase"
	"lpp/internal/reuse"
	"lpp/internal/sequitur"
	"lpp/internal/trace"
)

// Snapshot format: a self-contained, versioned binary image of a
// Detector between chunks. The recovery-parity guarantee rests on it:
// a detector restored from a snapshot consumes the rest of the stream
// exactly as the original would have, so snapshot + write-ahead-log
// replay reproduces the uninterrupted run bit for bit. Every map is
// serialized in sorted order, so the same detector state always yields
// the same bytes (Snapshot∘Restore∘Snapshot is the identity).
//
//	"LPPSNAP" | version byte | config fingerprint (8B LE) | body | CRC32 (4B LE)
//
// The fingerprint is a hash of the effective Config: restoring under a
// different configuration would silently change future behavior, so it
// is refused instead. The CRC covers everything before it; decode
// validates structure and referential integrity field by field, so a
// truncated or bit-flipped snapshot is detected, never applied.
const (
	snapMagic   = "LPPSNAP"
	snapVersion = 2 // v2: hardening counters + MinBoundaryGap/MaxSignature in the fingerprint
)

// Snapshot decode errors, distinguishable by errors.Is.
var (
	ErrSnapshotCorrupt = errors.New("online: snapshot corrupt")
	ErrSnapshotVersion = errors.New("online: unsupported snapshot version")
	ErrSnapshotConfig  = errors.New("online: snapshot config mismatch")
)

type snapEnc struct{ buf []byte }

func (e *snapEnc) i64(v int64)  { e.buf = binary.AppendVarint(e.buf, v) }
func (e *snapEnc) u64(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *snapEnc) num(v int)    { e.i64(int64(v)) }
func (e *snapEnc) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}
func (e *snapEnc) flag(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	e.buf = append(e.buf, b)
}
func (e *snapEnc) intSet(set map[int]struct{}) {
	keys := make([]int, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	e.num(len(keys))
	for _, k := range keys {
		e.num(k)
	}
}

// snapDec decodes with sticky errors and bounds checks: every length is
// capped by the bytes actually remaining, so corrupt input cannot force
// huge allocations or panics.
type snapDec struct {
	buf []byte
	off int
	err error
}

func (d *snapDec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrSnapshotCorrupt, fmt.Sprintf(format, args...))
	}
}

func (d *snapDec) i64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad varint at %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *snapDec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad uvarint at %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *snapDec) num() int {
	v := d.i64()
	if int64(int(v)) != v {
		d.fail("int overflow")
		return 0
	}
	return int(v)
}

func (d *snapDec) f64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail("short float at %d", d.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}

func (d *snapDec) flag() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.buf) {
		d.fail("short flag")
		return false
	}
	b := d.buf[d.off]
	d.off++
	if b > 1 {
		d.fail("bad flag %d", b)
	}
	return b == 1
}

// length decodes a list length whose elements occupy at least elemSize
// bytes each, rejecting lengths the remaining input cannot hold.
func (d *snapDec) length(elemSize int) int {
	n := d.num()
	if n < 0 {
		d.fail("negative length")
		return 0
	}
	if elemSize < 1 {
		elemSize = 1
	}
	if n > (len(d.buf)-d.off)/elemSize {
		d.fail("length %d exceeds input", n)
		return 0
	}
	return n
}

func (d *snapDec) intSet() map[int]struct{} {
	n := d.length(1)
	set := make(map[int]struct{}, n)
	for i := 0; i < n; i++ {
		set[d.num()] = struct{}{}
	}
	return set
}

// fingerprint hashes the effective (defaulted) configuration fields
// that shape detection behavior; OnEvent is delivery, not behavior.
func (c Config) fingerprint() uint64 {
	var e snapEnc
	e.f64(c.Epsilon)
	e.num(c.MaxLive)
	e.num(c.MaxDataSamples)
	e.num(c.SubTraceWindow)
	e.num(c.FilterLag)
	e.num(c.MinSubTrace)
	e.num(c.BoundaryWindow)
	e.num(c.BoundaryMargin)
	e.f64(c.Alpha)
	e.num(c.MaxSpan)
	e.num(int(c.Wavelet))
	e.flag(c.KeepIrregular)
	e.i64(c.Qualification)
	e.i64(c.Temporal)
	e.i64(c.Spatial)
	e.f64(c.TargetRate)
	e.i64(c.CheckEvery)
	e.i64(c.DecideHorizon)
	e.i64(c.StaleAfter)
	e.num(c.MaxGrammar)
	e.num(c.PhaseTail)
	e.num(c.MaxPhases)
	e.f64(c.Similarity)
	e.num(c.MaxPending)
	e.num(c.MaxStride)
	e.i64(c.MinBoundaryGap)
	e.num(c.MaxSignature)
	h := fnv.New64a()
	h.Write(e.buf)
	return h.Sum64()
}

// Snapshot serializes the detector's complete state. Call it between
// Access/Flush calls (the worker does so at chunk boundaries); the
// detector is left untouched.
func (d *Detector) Snapshot() []byte {
	var e snapEnc
	e.buf = append(e.buf, snapMagic...)
	e.buf = append(e.buf, snapVersion)
	e.buf = binary.LittleEndian.AppendUint64(e.buf, d.cfg.fingerprint())

	// Scalars.
	e.i64(d.now)
	e.i64(d.blocks)
	e.i64(d.instrs)
	e.i64(d.qual)
	e.i64(d.temporal)
	e.i64(d.spatial)
	e.i64(d.samples)
	e.i64(d.lastCheck)
	e.i64(d.lastCheckSamples)
	e.num(d.adjustments)
	e.i64(d.evictRetry)
	e.num(d.stride)
	e.i64(d.strideAt)
	e.i64(d.shed)
	e.i64(d.filtered)
	e.i64(d.lastBoundary)
	e.i64(d.segStart)
	e.i64(d.boundaries)
	e.i64(d.predictions)
	e.i64(d.droppedEvents)
	e.i64(d.suppressed)

	// Approximate reuse analyzer.
	ast := d.analyzer.State()
	e.f64(ast.Eps)
	e.i64(ast.Now)
	e.i64(ast.Live)
	e.num(len(ast.Addrs))
	for i := range ast.Addrs {
		e.u64(uint64(ast.Addrs[i]))
		e.i64(ast.Times[i])
	}
	e.num(len(ast.BucketTimes))
	for i := range ast.BucketTimes {
		e.i64(ast.BucketTimes[i])
		e.i64(ast.BucketCounts[i])
	}

	// Sampler slots (dataIDs and sorted are derived on restore).
	e.num(len(d.data))
	for _, dt := range d.data {
		if dt == nil {
			e.flag(false)
			continue
		}
		e.flag(true)
		e.u64(uint64(dt.addr))
		e.num(dt.undecided)
		e.num(len(dt.times))
		for i := range dt.times {
			e.i64(dt.times[i])
			e.f64(dt.dists[i])
		}
	}
	e.num(len(d.free))
	for _, id := range d.free {
		e.num(id)
	}

	// Partition window.
	e.num(len(d.window))
	for _, s := range d.window {
		e.i64(s.time)
		e.num(s.datum)
		e.num(s.page)
	}

	// Pending (undrained) events.
	e.num(len(d.events))
	for _, ev := range d.events {
		e.num(int(ev.Kind))
		e.i64(ev.Time)
		e.i64(ev.Instructions)
		e.num(ev.Phase)
	}

	// Phase hierarchy: tail, page signatures, open segment, grammar.
	e.num(len(d.hier.tail))
	for _, p := range d.hier.tail {
		e.num(p)
	}
	e.num(d.hier.grammarSize)
	e.i64(d.hier.restarts)
	e.i64(d.hier.truncated)
	e.num(len(d.hier.known))
	for _, sig := range d.hier.known {
		e.intSet(sig)
	}
	e.intSet(d.hier.curSeg)

	bst := d.hier.builder.State()
	e.num(bst.NextID)
	e.num(len(bst.Rules))
	for _, rs := range bst.Rules {
		e.num(rs.ID)
		e.num(len(rs.Body))
		for _, s := range rs.Body {
			e.flag(s.Terminal)
			e.num(s.Value)
		}
	}
	e.num(len(bst.Digrams))
	for _, ds := range bst.Digrams {
		e.num(ds.Rule)
		e.num(ds.Pos)
	}

	e.buf = binary.LittleEndian.AppendUint32(e.buf, crc32.ChecksumIEEE(e.buf))
	return e.buf
}

// NewDetectorFromSnapshot returns a detector restored from a snapshot
// taken under the same configuration.
func NewDetectorFromSnapshot(cfg Config, data []byte) (*Detector, error) {
	d := NewDetector(cfg)
	if err := d.Restore(data); err != nil {
		return nil, err
	}
	return d, nil
}

// Restore replaces the detector's state with a decoded snapshot. The
// receiver's configuration (including OnEvent) is kept and must match
// the snapshot's fingerprint. On any error the detector is unchanged.
func (d *Detector) Restore(data []byte) error {
	header := len(snapMagic) + 1 + 8
	if len(data) < header+4 {
		return fmt.Errorf("%w: %d bytes is too short", ErrSnapshotCorrupt, len(data))
	}
	if string(data[:len(snapMagic)]) != snapMagic {
		return fmt.Errorf("%w: bad magic", ErrSnapshotCorrupt)
	}
	if v := data[len(snapMagic)]; v != snapVersion {
		return fmt.Errorf("%w: got %d, support %d", ErrSnapshotVersion, v, snapVersion)
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return fmt.Errorf("%w: checksum mismatch", ErrSnapshotCorrupt)
	}
	if binary.LittleEndian.Uint64(data[len(snapMagic)+1:]) != d.cfg.fingerprint() {
		return ErrSnapshotConfig
	}

	dec := &snapDec{buf: body, off: header}
	nd := &Detector{cfg: d.cfg}

	nd.now = dec.i64()
	nd.blocks = dec.i64()
	nd.instrs = dec.i64()
	nd.qual = dec.i64()
	nd.temporal = dec.i64()
	nd.spatial = dec.i64()
	nd.samples = dec.i64()
	nd.lastCheck = dec.i64()
	nd.lastCheckSamples = dec.i64()
	nd.adjustments = dec.num()
	nd.evictRetry = dec.i64()
	nd.stride = dec.num()
	nd.strideAt = dec.i64()
	nd.shed = dec.i64()
	nd.filtered = dec.i64()
	nd.lastBoundary = dec.i64()
	nd.segStart = dec.i64()
	nd.boundaries = dec.i64()
	nd.predictions = dec.i64()
	nd.droppedEvents = dec.i64()
	nd.suppressed = dec.i64()
	if dec.err == nil && (nd.stride < 1 || nd.stride > nd.cfg.MaxStride) {
		dec.fail("stride %d out of [1,%d]", nd.stride, nd.cfg.MaxStride)
	}

	// Analyzer.
	var ast reuse.ApproxState
	ast.Eps = dec.f64()
	ast.Now = dec.i64()
	ast.Live = dec.i64()
	n := dec.length(2)
	ast.Addrs = make([]trace.Addr, n)
	ast.Times = make([]int64, n)
	for i := 0; i < n; i++ {
		ast.Addrs[i] = trace.Addr(dec.u64())
		ast.Times[i] = dec.i64()
	}
	n = dec.length(2)
	ast.BucketTimes = make([]int64, n)
	ast.BucketCounts = make([]int64, n)
	for i := 0; i < n; i++ {
		ast.BucketTimes[i] = dec.i64()
		ast.BucketCounts[i] = dec.i64()
	}
	if dec.err == nil {
		analyzer, err := reuse.NewApproxFromState(ast)
		if err != nil {
			dec.fail("analyzer: %v", err)
		} else {
			nd.analyzer = analyzer
		}
	}

	// Sampler slots.
	nSlots := dec.length(1)
	if dec.err == nil && nSlots > nd.cfg.MaxDataSamples {
		dec.fail("%d slots exceed cap %d", nSlots, nd.cfg.MaxDataSamples)
	}
	nd.data = make([]*datum, 0, nSlots)
	nd.dataIDs = make(map[trace.Addr]int)
	nils := 0
	for i := 0; i < nSlots && dec.err == nil; i++ {
		if !dec.flag() {
			nd.data = append(nd.data, nil)
			nils++
			continue
		}
		dt := &datum{addr: trace.Addr(dec.u64())}
		dt.undecided = dec.num()
		cnt := dec.length(9)
		dt.times = make([]int64, cnt)
		dt.dists = make([]float64, cnt)
		for j := 0; j < cnt; j++ {
			dt.times[j] = dec.i64()
			dt.dists[j] = dec.f64()
			if dec.err == nil && j > 0 && dt.times[j] <= dt.times[j-1] {
				dec.fail("datum times not ascending")
			}
		}
		if dec.err != nil {
			break
		}
		if dt.undecided < 0 || dt.undecided > len(dt.times) {
			dec.fail("undecided %d out of window %d", dt.undecided, len(dt.times))
			break
		}
		if _, dup := nd.dataIDs[dt.addr]; dup {
			dec.fail("duplicate datum address %#x", uint64(dt.addr))
			break
		}
		nd.dataIDs[dt.addr] = len(nd.data)
		nd.sorted = append(nd.sorted, dt.addr)
		nd.data = append(nd.data, dt)
	}
	sort.Slice(nd.sorted, func(i, j int) bool { return nd.sorted[i] < nd.sorted[j] })
	nFree := dec.length(1)
	if dec.err == nil && nFree != nils {
		dec.fail("%d free ids but %d empty slots", nFree, nils)
	}
	nd.free = make([]int, 0, nFree)
	seenFree := make(map[int]bool, nFree)
	for i := 0; i < nFree && dec.err == nil; i++ {
		id := dec.num()
		if id < 0 || id >= len(nd.data) || nd.data[id] != nil || seenFree[id] {
			dec.fail("bad free slot %d", id)
			break
		}
		seenFree[id] = true
		nd.free = append(nd.free, id)
	}

	// Partition window.
	n = dec.length(3)
	nd.window = make([]fsample, n)
	for i := 0; i < n; i++ {
		nd.window[i] = fsample{time: dec.i64(), datum: dec.num(), page: dec.num()}
	}

	// Pending events.
	n = dec.length(4)
	if dec.err == nil && n > nd.cfg.MaxPending {
		dec.fail("%d pending events exceed cap %d", n, nd.cfg.MaxPending)
	}
	nd.events = make([]phase.Event, 0, n)
	for i := 0; i < n && dec.err == nil; i++ {
		k := dec.num()
		if k != int(phase.BoundaryDetected) && k != int(phase.PhasePredicted) {
			dec.fail("bad event kind %d", k)
			break
		}
		nd.events = append(nd.events, phase.Event{
			Kind:         phase.Kind(k),
			Time:         dec.i64(),
			Instructions: dec.i64(),
			Phase:        dec.num(),
		})
	}

	// Hierarchy.
	h := &hierarchy{cfg: nd.cfg, curSeg: make(map[int]struct{})}
	n = dec.length(1)
	h.tail = make([]int, 0, n)
	for i := 0; i < n && dec.err == nil; i++ {
		p := dec.num()
		if p < 0 {
			dec.fail("negative phase id in tail")
			break
		}
		h.tail = append(h.tail, p)
	}
	h.grammarSize = dec.num()
	if dec.err == nil && h.grammarSize < 0 {
		dec.fail("negative grammar size")
	}
	h.restarts = dec.i64()
	h.truncated = dec.i64()
	if dec.err == nil && (h.restarts < 0 || h.truncated < 0) {
		dec.fail("negative hardening counter")
	}
	n = dec.length(1)
	if dec.err == nil && n > nd.cfg.MaxPhases {
		dec.fail("%d phases exceed cap %d", n, nd.cfg.MaxPhases)
	}
	h.known = make([]map[int]struct{}, 0, n)
	for i := 0; i < n && dec.err == nil; i++ {
		h.known = append(h.known, dec.intSet())
	}
	if dec.err == nil {
		for _, p := range h.tail {
			if p >= len(h.known) {
				dec.fail("tail phase %d unknown", p)
				break
			}
		}
	}
	h.curSeg = dec.intSet()

	var bst sequitur.BuilderState
	bst.NextID = dec.num()
	n = dec.length(2)
	bst.Rules = make([]sequitur.RuleState, 0, n)
	for i := 0; i < n && dec.err == nil; i++ {
		rs := sequitur.RuleState{ID: dec.num()}
		cnt := dec.length(2)
		rs.Body = make([]sequitur.Symbol, cnt)
		for j := 0; j < cnt; j++ {
			rs.Body[j] = sequitur.Symbol{Terminal: dec.flag(), Value: dec.num()}
		}
		bst.Rules = append(bst.Rules, rs)
	}
	n = dec.length(2)
	bst.Digrams = make([]sequitur.DigramState, 0, n)
	for i := 0; i < n && dec.err == nil; i++ {
		bst.Digrams = append(bst.Digrams, sequitur.DigramState{Rule: dec.num(), Pos: dec.num()})
	}
	if dec.err == nil {
		builder, err := sequitur.NewBuilderFromState(bst)
		if err != nil {
			dec.fail("grammar: %v", err)
		} else {
			h.builder = builder
		}
	}
	nd.hier = h

	if dec.err != nil {
		return dec.err
	}
	if dec.off != len(dec.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrSnapshotCorrupt, len(dec.buf)-dec.off)
	}
	*d = *nd
	return nil
}
