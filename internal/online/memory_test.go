package online

import (
	"testing"

	"lpp/internal/trace"
	"lpp/internal/workload"
)

// TestBoundedMemoryOverLongStream is the O(1)-memory acceptance test:
// the detector ingests more than 10x a training trace's length under a
// fixed set of caps, and every memory gauge stays within its bound the
// whole way — the stream length never appears in any bound.
func TestBoundedMemoryOverLongStream(t *testing.T) {
	spec, err := workload.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(1<<18, 1<<14)
	spec.Make(workload.Params{N: 8192, Steps: 5, Seed: 1}).Run(rec)
	trainLen := int64(len(rec.T.Accesses))

	cfg := DefaultConfig()
	cfg.MaxLive = 4096
	cfg.MaxDataSamples = 128
	cfg.MaxPending = 256
	cfg.MaxGrammar = 512
	cfg.PhaseTail = 64
	d := NewDetector(cfg)

	const rounds = 10
	var boundariesAt [rounds]int64
	for r := 0; r < rounds; r++ {
		rec.T.Replay(d)
		st := d.Stats()
		if st.TrackedAddrs > cfg.MaxLive {
			t.Fatalf("round %d: tracked addrs %d > cap %d", r, st.TrackedAddrs, cfg.MaxLive)
		}
		if st.AnalyzerBuckets > 8192 {
			t.Fatalf("round %d: analyzer buckets %d", r, st.AnalyzerBuckets)
		}
		if st.DataSamples > cfg.MaxDataSamples {
			t.Fatalf("round %d: data samples %d > cap %d", r, st.DataSamples, cfg.MaxDataSamples)
		}
		if st.WindowLen > cfg.BoundaryWindow {
			t.Fatalf("round %d: boundary window %d > cap %d", r, st.WindowLen, cfg.BoundaryWindow)
		}
		if st.GrammarSize > cfg.MaxGrammar {
			t.Fatalf("round %d: grammar size %d > cap %d", r, st.GrammarSize, cfg.MaxGrammar)
		}
		if st.Phases > cfg.MaxPhases {
			t.Fatalf("round %d: phases %d > cap %d", r, st.Phases, cfg.MaxPhases)
		}
		if st.PendingEvents > cfg.MaxPending {
			t.Fatalf("round %d: pending events %d > cap %d", r, st.PendingEvents, cfg.MaxPending)
		}
		boundariesAt[r] = st.Boundaries
		d.DrainEvents()
	}
	d.Flush()

	st := d.Stats()
	if st.Accesses < 10*trainLen {
		t.Fatalf("streamed %d accesses, want >= 10x training length %d", st.Accesses, trainLen)
	}
	// Detection must keep working deep into the stream, not stall
	// after the caps bite: the last round must still add boundaries.
	if boundariesAt[rounds-1] <= boundariesAt[rounds-2] {
		t.Errorf("no boundaries detected in final round: %v", boundariesAt)
	}
}
