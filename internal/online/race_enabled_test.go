//go:build race

package online

// raceEnabled lets allocation-regression tests skip under -race:
// testing.AllocsPerRun counts the race runtime's own bookkeeping
// allocations, so the guards only hold on unsanitized builds.
const raceEnabled = true
