package online

import (
	"testing"

	"lpp/internal/phase"
	"lpp/internal/trace"
)

// phasedStream emits `phases` region sweeps cycling through 10
// disjoint 16KB regions: each phase sweeps its region `sweeps` times
// with an 8-byte stride, so phase switches sit at exact, known logical
// times. Ten regions make a boundary-crossing reuse distance ~10x the
// within-phase distance — the sharp contrast real phase transitions
// show and the sub-trace filter keys on. Sweeps should be at least
// MinSubTrace+2 so data samples mature within a single phase visit, as
// real workloads' do.
const streamRegions = 10

const streamElems = 2048 // distinct addresses per region

func phasedStream(ins trace.Instrumenter, phases, sweeps int) (switchTimes []int64, perPhase int64) {
	const elems = streamElems
	perPhase = int64(sweeps * elems)
	var now int64
	for p := 0; p < phases; p++ {
		base := trace.Addr(uint64(p%streamRegions) * 10 << 20)
		ins.Block(trace.BlockID(p%streamRegions), 64)
		for s := 0; s < sweeps; s++ {
			for i := 0; i < elems; i++ {
				ins.Access(base + trace.Addr(i*8))
				now++
			}
		}
		if p < phases-1 {
			switchTimes = append(switchTimes, now)
		}
	}
	return switchTimes, perPhase
}

func TestDetectorFindsSyntheticPhaseSwitches(t *testing.T) {
	d := NewDetector(Config{})
	switches, perPhase := phasedStream(d, 25, 6)
	d.Flush()

	var boundaries []int64
	phaseIDs := make(map[int]bool)
	predictions := 0
	for _, ev := range d.DrainEvents() {
		switch ev.Kind {
		case phase.BoundaryDetected:
			boundaries = append(boundaries, ev.Time)
			phaseIDs[ev.Phase] = true
		case phase.PhasePredicted:
			predictions++
		}
	}
	if len(boundaries) < len(switches)/2 {
		t.Fatalf("found %d boundaries for %d phase switches", len(boundaries), len(switches))
	}
	for i := 1; i < len(boundaries); i++ {
		if boundaries[i] <= boundaries[i-1] {
			t.Fatalf("boundaries not increasing: %v", boundaries)
		}
	}
	// Every true switch must have a detected boundary nearby. The
	// tolerance allows the sampling lag on a region's first-ever
	// visit: distance-based sampling cannot see data it has no reuse
	// for, so cycle-one boundaries trail the switch by about a sweep.
	tol := perPhase / 4
	for _, sw := range switches {
		ok := false
		for _, b := range boundaries {
			if b-sw < tol && sw-b < tol {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("no boundary within %d of true switch at %d (got %v)", tol, sw, boundaries)
		}
	}
	// Ten cycling regions must collapse to about ten recurring phase
	// identities, not one new ID per segment.
	if len(phaseIDs) > streamRegions+3 {
		t.Errorf("%d distinct phase IDs for a %d-region cycle", len(phaseIDs), streamRegions)
	}
	// The cycle is regular, so the hierarchy automaton must
	// eventually determine next phases.
	if predictions == 0 {
		t.Error("no phase predictions for a regular cycle")
	}
}

func TestDetectorDeterministic(t *testing.T) {
	run := func() []phase.Event {
		d := NewDetector(Config{})
		phasedStream(d, 15, 6)
		d.Flush()
		return d.DrainEvents()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestPressureShedsLoad(t *testing.T) {
	d := NewDetector(Config{})
	d.SetPressure(1)
	if st := d.Stats(); st.Stride != DefaultConfig().MaxStride {
		t.Fatalf("stride = %d at full pressure, want %d", st.Stride, DefaultConfig().MaxStride)
	}
	phasedStream(d, 4, 6)
	st := d.Stats()
	if st.Shed == 0 {
		t.Error("no accesses shed at full pressure")
	}
	// Shed accesses still advance logical time.
	if want := int64(4 * 6 * streamElems); st.Accesses != want {
		t.Errorf("Accesses = %d, want %d", st.Accesses, want)
	}
	d.SetPressure(0)
	if st := d.Stats(); st.Stride != 1 {
		t.Errorf("stride = %d after pressure released", st.Stride)
	}
	d.SetPressure(0.5)
	if st := d.Stats(); st.Stride <= 1 || st.Stride >= DefaultConfig().MaxStride {
		t.Errorf("stride = %d at half pressure", st.Stride)
	}
}

func TestEventBufferBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxPending = 4
	d := NewDetector(cfg)
	phasedStream(d, 30, 6)
	d.Flush()
	st := d.Stats()
	if st.PendingEvents > 4 {
		t.Errorf("pending events %d exceed cap 4", st.PendingEvents)
	}
	if st.Boundaries+st.Predictions > 4 && st.DroppedEvents == 0 {
		t.Error("overflowing buffer dropped nothing")
	}
	if got := len(d.DrainEvents()); got > 4 {
		t.Errorf("drained %d events, cap 4", got)
	}
	if len(d.DrainEvents()) != 0 {
		t.Error("second drain not empty")
	}
}

func TestOnEventCallbackBypassesBuffer(t *testing.T) {
	var got []phase.Event
	cfg := DefaultConfig()
	cfg.OnEvent = func(ev phase.Event) { got = append(got, ev) }
	d := NewDetector(cfg)
	phasedStream(d, 15, 6)
	d.Flush()
	if len(got) == 0 {
		t.Fatal("callback saw no events")
	}
	if len(d.DrainEvents()) != 0 {
		t.Error("events buffered despite callback")
	}
	if st := d.Stats(); st.DroppedEvents != 0 {
		t.Errorf("dropped %d events with a callback attached", st.DroppedEvents)
	}
}

func TestFlushOnEmptyDetector(t *testing.T) {
	d := NewDetector(Config{})
	d.Flush() // must not panic with no input
	if ev := d.DrainEvents(); len(ev) != 0 {
		t.Errorf("events from empty stream: %v", ev)
	}
}
