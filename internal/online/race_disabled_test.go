//go:build !race

package online

const raceEnabled = false
