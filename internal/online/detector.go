package online

import (
	"math"
	"sort"

	"lpp/internal/core"
	"lpp/internal/phase"
	"lpp/internal/reuse"
	"lpp/internal/trace"
)

// Stats is a snapshot of the detector's counters and memory gauges.
// Every gauge is bounded by Config, which is what the O(1)-memory test
// asserts.
type Stats struct {
	Accesses     int64
	Blocks       int64
	Instructions int64
	Samples      int64 // access samples collected
	Filtered     int64 // samples surviving the sliding-window filter
	Boundaries   int64
	Predictions  int64
	Adjustments  int // sampling threshold adjustments

	DataSamples     int // data samples tracked (gauge)
	TrackedAddrs    int // reuse analyzer live addresses (gauge)
	AnalyzerBuckets int // reuse analyzer buckets (gauge)
	WindowLen       int // filtered samples pending partition (gauge)
	GrammarSize     int // SEQUITUR grammar symbols (gauge)
	Phases          int // distinct phase identities (gauge)
	PendingEvents   int // buffered events awaiting drain (gauge)

	Stride        int   // current load-shedding stride (1 = no shedding)
	Shed          int64 // accesses skipped by load shedding
	DroppedEvents int64 // events lost to a full pending buffer

	// Hardening counters: boundaries rejected by the MinBoundaryGap
	// margin guard, grammar restarts forced by the MaxGrammar cap, and
	// signature pages dropped by the MaxSignature cap.
	SuppressedBoundaries int64
	GrammarRestarts      int64
	TruncatedPages       int64
	// LargestSignature is the page count of the biggest phase
	// signature, open segment included (gauge, bounded by MaxSignature).
	LargestSignature int
}

// datum is one tracked data sample and its sliding sub-trace window.
type datum struct {
	addr  trace.Addr
	times []int64
	dists []float64
	// undecided is the window index of the oldest sample whose
	// keep/drop decision has not been made yet.
	undecided int
}

// Detector consumes an instrumentation event stream and emits
// phase.Events as boundaries are detected. It implements
// trace.Instrumenter. It is not safe for concurrent use; give each
// session its own Detector.
type Detector struct {
	cfg      Config
	analyzer *reuse.ApproxAnalyzer

	now    int64 // logical time: accesses seen (including shed ones)
	blocks int64
	instrs int64

	// Sampling state.
	qual, temporal, spatial int64
	dataIDs                 map[trace.Addr]int
	data                    []*datum
	sorted                  []trace.Addr
	free                    []int // reclaimed datum slots awaiting reuse
	samples                 int64
	lastCheck               int64
	lastCheckSamples        int64
	adjustments             int

	evictRetry int64 // next time a full-table eviction scan may run
	deferFlush bool  // suppress window flushes during Flush's decision loop

	// Load shedding.
	stride   int
	strideAt int64 // accesses since last analyzed one
	shed     int64

	// Boundary window (see hierarchy.go for the flush).
	window       []fsample
	filtered     int64
	lastBoundary int64
	segStart     int64
	suppressed   int64 // boundaries rejected by the MinBoundaryGap guard

	// Phase identity + hierarchy (hierarchy.go).
	hier *hierarchy

	// Output.
	events        []phase.Event
	boundaries    int64
	predictions   int64
	droppedEvents int64
}

// fsample is one filtered (kept) access sample pending partitioning.
type fsample struct {
	time  int64
	datum int // partition ID: the datum's address
	page  int // identity ID: address at 64KB granularity
}

// NewDetector returns a streaming detector; zero Config fields take
// defaults.
func NewDetector(cfg Config) *Detector {
	cfg = cfg.withDefaults()
	return &Detector{
		cfg:      cfg,
		analyzer: reuse.NewApproxAnalyzer(cfg.Epsilon),
		qual:     cfg.Qualification,
		temporal: cfg.Temporal,
		spatial:  cfg.Spatial,
		dataIDs:  make(map[trace.Addr]int),
		stride:   1,
		hier:     newHierarchy(cfg),
	}
}

// Block implements trace.Instrumenter.
func (d *Detector) Block(_ trace.BlockID, instrs int) {
	d.blocks++
	d.instrs += int64(instrs)
}

// Access implements trace.Instrumenter: it advances logical time and
// runs the single-pass analysis on this reference. It is the fused
// per-reference loop body (step in batch.go), so the per-event and
// batched paths share one implementation.
func (d *Detector) Access(addr trace.Addr) {
	d.step(addr)
}

// sample runs the post-analyzer half of a step — variable-distance
// sampling and the threshold feedback loop — on one reference whose
// reuse distance is already known.
func (d *Detector) sample(t int64, addr trace.Addr, dist int64) {
	if dist != reuse.Infinite {
		if id, ok := d.dataIDs[addr]; ok {
			if dist > d.temporal {
				d.recordSample(id, t, dist)
			}
		} else if dist > d.qual && d.spatiallySeparate(addr) {
			if id, ok := d.claimSlot(); ok {
				d.dataIDs[addr] = id
				d.data[id] = &datum{addr: addr}
				d.insertSorted(addr)
				d.recordSample(id, t, dist)
			}
		}
	}

	if d.now-d.lastCheck >= d.cfg.CheckEvery {
		d.feedback()
	}
}

// SetPressure tells the detector how loaded its consumer is, as a
// fraction in [0, 1]. Pressure maps linearly onto the analysis stride
// up to MaxStride: at 0 every access is analyzed, at 1 only every
// MaxStride-th. This is the graceful-degradation knob the server pulls
// when a session's queue fills.
func (d *Detector) SetPressure(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	stride := 1 + int(p*float64(d.cfg.MaxStride-1)+0.5)
	if stride < 1 {
		stride = 1
	}
	if stride > d.cfg.MaxStride {
		stride = d.cfg.MaxStride
	}
	d.stride = stride
}

// recordSample appends an access sample to its datum's sliding window
// and decides any samples that now have FilterLag newer successors.
func (d *Detector) recordSample(id int, t, dist int64) {
	d.samples++
	dt := d.data[id]
	if len(dt.times) == d.cfg.SubTraceWindow {
		// Window full: the oldest sample falls off. If it was never
		// decided (tiny windows only), decide it first.
		if dt.undecided == 0 {
			d.decide(dt, 0)
			dt.undecided = 1
		}
		copy(dt.times, dt.times[1:])
		copy(dt.dists, dt.dists[1:])
		dt.times = dt.times[:len(dt.times)-1]
		dt.dists = dt.dists[:len(dt.dists)-1]
		dt.undecided--
	}
	dt.times = append(dt.times, t)
	dt.dists = append(dt.dists, dist2f(dist))
	if len(dt.times) < d.cfg.MinSubTrace {
		return
	}
	for dt.undecided <= len(dt.times)-1-d.cfg.FilterLag {
		d.decide(dt, dt.undecided)
		dt.undecided++
	}
}

// claimSlot returns a datum slot for a new data sample: a fresh one
// below the cap, a reclaimed stale one, or — when demand outruns the
// periodic reclamation — the slot of the stalest tracked datum. The
// age-based sweep alone resonates badly with phase lengths near
// StaleAfter: slot availability drifts relative to phase starts until
// some phase finds the table full of just-young-enough datums and goes
// entirely unsampled.
func (d *Detector) claimSlot() (int, bool) {
	if len(d.data) < d.cfg.MaxDataSamples {
		d.data = append(d.data, nil)
		return len(d.data) - 1, true
	}
	if n := len(d.free); n > 0 {
		id := d.free[n-1]
		d.free = d.free[:n-1]
		return id, true
	}
	if d.now >= d.evictRetry {
		if id, ok := d.evictStalest(d.cfg.StaleAfter / 2); ok {
			return id, true
		}
		// Nothing old enough: stop scanning until the table ages.
		d.evictRetry = d.now + d.cfg.CheckEvery
	}
	return 0, false
}

// evictStalest releases the slot of the stalest eligible datum (oldest
// last sample among those the stale test allows), finalizing its
// undecided samples first, as in the periodic reclamation.
func (d *Detector) evictStalest(minAge int64) (int, bool) {
	best, bestLast := -1, int64(0)
	for id, dt := range d.data {
		if dt == nil || !d.stale(dt, minAge) {
			continue
		}
		last := int64(0)
		if n := len(dt.times); n > 0 {
			last = dt.times[n-1]
		}
		if best < 0 || last < bestLast {
			best, bestLast = id, last
		}
	}
	if best < 0 {
		return 0, false
	}
	d.dropDatum(best)
	return best, true
}

// decide runs the shared sub-trace filter over the datum's current
// window and finalizes the sample at index i: kept samples enter the
// boundary window. Downstream IDs derive from the address, not the
// slot, so slot reclamation cannot alias two data samples: the
// partition ID is the datum's own address (offline uses one ID per
// data sample; any coarser granule aliases nearby datums into false
// recurrences and oversegments), phase identity uses 64KB regions.
func (d *Detector) decide(dt *datum, i int) {
	if !core.FilterSubTrace(dt.dists, d.cfg.Wavelet, d.cfg.KeepIrregular)[i] &&
		!spikeOverFlat(dt.dists, i) {
		return
	}
	d.filtered++
	d.window = append(d.window, fsample{
		time:  dt.times[i],
		datum: int(dt.addr),
		page:  int(dt.addr >> 16),
	})
	if len(d.window) >= d.cfg.BoundaryWindow && !d.deferFlush {
		d.flushBoundaries(false)
	}
}

// Flush finalizes all pending decisions and partitions the remaining
// window with no stability margin. Call it at end of stream; the
// detector stays usable afterwards (e.g. for periodic flushes on an
// idle but open session).
func (d *Detector) Flush() {
	// Intermediate window flushes are deferred: the loop below decides
	// datums in slot order, not time order, and a window-full flush
	// mid-loop could emit a late cut before an earlier datum's samples
	// are decided — the boundary monotonicity check would then
	// suppress every earlier cut. The transient window growth is
	// bounded by MaxDataSamples x SubTraceWindow.
	d.deferFlush = true
	for _, dt := range d.data {
		if dt == nil || len(dt.times) < d.cfg.MinSubTrace {
			continue // offline noise rule: too sparse to trust
		}
		for dt.undecided < len(dt.times) {
			d.decide(dt, dt.undecided)
			dt.undecided++
		}
	}
	d.deferFlush = false
	d.flushBoundaries(true)
}

// DrainEvents returns the buffered events and clears the buffer. When
// Config.OnEvent is set there is nothing to drain.
func (d *Detector) DrainEvents() []phase.Event {
	ev := d.events
	d.events = nil
	return ev
}

// Stats snapshots the detector's counters and gauges.
func (d *Detector) Stats() Stats {
	return Stats{
		Accesses:        d.now,
		Blocks:          d.blocks,
		Instructions:    d.instrs,
		Samples:         d.samples,
		Filtered:        d.filtered,
		Boundaries:      d.boundaries,
		Predictions:     d.predictions,
		Adjustments:     d.adjustments,
		DataSamples:     len(d.data) - len(d.free),
		TrackedAddrs:    d.analyzer.Distinct(),
		AnalyzerBuckets: d.analyzer.Buckets(),
		WindowLen:       len(d.window),
		GrammarSize:     d.hier.grammarSize,
		Phases:          len(d.hier.known),
		PendingEvents:   len(d.events),
		Stride:          d.stride,
		Shed:            d.shed,
		DroppedEvents:   d.droppedEvents,

		SuppressedBoundaries: d.suppressed,
		GrammarRestarts:      d.hier.restarts,
		TruncatedPages:       d.hier.truncated,
		LargestSignature:     d.hier.largestSignature(),
	}
}

// emit delivers one event via the callback or the bounded buffer.
func (d *Detector) emit(ev phase.Event) {
	if d.cfg.OnEvent != nil {
		d.cfg.OnEvent(ev)
		return
	}
	if len(d.events) >= d.cfg.MaxPending {
		// Drop the oldest: recent boundaries matter more to a live
		// consumer than stale ones.
		n := copy(d.events, d.events[1:])
		d.events = d.events[:n]
		d.droppedEvents++
	}
	d.events = append(d.events, ev)
}

// spatiallySeparate reports whether addr keeps the spatial threshold
// from every existing data sample.
func (d *Detector) spatiallySeparate(addr trace.Addr) bool {
	i := sort.Search(len(d.sorted), func(i int) bool { return d.sorted[i] >= addr })
	if i < len(d.sorted) && int64(d.sorted[i]-addr) < d.spatial {
		return false
	}
	if i > 0 && int64(addr-d.sorted[i-1]) < d.spatial {
		return false
	}
	return true
}

func (d *Detector) insertSorted(addr trace.Addr) {
	i := sort.Search(len(d.sorted), func(i int) bool { return d.sorted[i] >= addr })
	d.sorted = append(d.sorted, 0)
	copy(d.sorted[i+1:], d.sorted[i:])
	d.sorted[i] = addr
}

// feedback adapts the sampling thresholds toward the target rate,
// measured over the interval since the last check — the streaming
// analog of offline sampling's whole-run pacing.
func (d *Detector) feedback() {
	interval := d.now - d.lastCheck
	d.lastCheck = d.now
	d.forceDecisions()
	d.reclaimStale()
	got := float64(d.samples - d.lastCheckSamples)
	d.lastCheckSamples = d.samples
	expected := d.cfg.TargetRate * float64(interval)
	// Adjustments are symmetric and capped at 4x per check: sampling
	// bursts are common (a recurring phase re-qualifies all its data
	// at once), and overshooting the clamp-down would blind the
	// detector for many checks while the thresholds decay back.
	switch {
	case got > 1.5*expected:
		factor := int64(got / expected)
		if factor < 2 {
			factor = 2
		}
		if factor > 4 {
			factor = 4
		}
		d.qual *= factor
		d.temporal *= factor
		d.spatial *= 2
		d.adjustments++
	case got < 0.25*expected && d.qual > 16:
		factor := int64(1)
		if got > 0 {
			factor = int64(expected / got)
		}
		if factor < 2 {
			factor = 2
		}
		if factor > 4 {
			factor = 4
		}
		d.qual /= factor
		if d.qual < 16 {
			d.qual = 16
		}
		d.temporal /= factor
		if d.temporal < 16 {
			d.temporal = 16
		}
		if d.spatial > 64 {
			d.spatial /= 2
		}
		d.adjustments++
	}
}

// forceDecisions finalizes samples older than the decide horizon even
// without FilterLag newer samples of their datum: a datum its phase
// stopped touching would otherwise hold its boundary-marking samples
// back until the phase returns.
func (d *Detector) forceDecisions() {
	horizon := d.now - d.cfg.DecideHorizon
	for _, dt := range d.data {
		if dt == nil || len(dt.times) < d.cfg.MinSubTrace {
			continue
		}
		for dt.undecided < len(dt.times) && dt.times[dt.undecided] < horizon {
			d.decide(dt, dt.undecided)
			dt.undecided++
		}
	}
}

// reclaimStale frees the slots of data samples not sampled for
// StaleAfter accesses once the cap is reached, so coverage follows a
// drifting working set instead of freezing on the first data seen.
func (d *Detector) reclaimStale() {
	if len(d.data) < d.cfg.MaxDataSamples {
		return
	}
	for id, dt := range d.data {
		if dt == nil || !d.stale(dt, d.cfg.StaleAfter) {
			continue
		}
		d.dropDatum(id)
		d.free = append(d.free, id)
	}
}

// stale reports whether a datum's slot is reclaimable: idle for at
// least minAge since its last sample, and not merely between
// recurrences — a datum sampled on a long regular period (the Swim
// shape: one reuse per time step) is idle most of its life yet is the
// most phase-informative kind, so a datum whose idle time is within
// twice its own observed inter-sample gap is still waiting, not dead.
func (d *Detector) stale(dt *datum, minAge int64) bool {
	n := len(dt.times)
	if n == 0 {
		return true
	}
	idle := d.now - dt.times[n-1]
	if idle < minAge {
		return false
	}
	if n >= 2 {
		period := (dt.times[n-1] - dt.times[0]) / int64(n-1)
		if idle <= 2*period {
			return false
		}
	}
	return true
}

// dropDatum finalizes a datum's remaining sample decisions and clears
// its slot (the caller decides whether the slot goes on the free list
// or is handed straight to a new claimant).
func (d *Detector) dropDatum(id int) {
	dt := d.data[id]
	if len(dt.times) >= d.cfg.MinSubTrace {
		for dt.undecided < len(dt.times) {
			d.decide(dt, dt.undecided)
			dt.undecided++
		}
	}
	delete(d.dataIDs, dt.addr)
	d.removeSorted(dt.addr)
	d.data[id] = nil
}

func (d *Detector) removeSorted(addr trace.Addr) {
	i := sort.Search(len(d.sorted), func(i int) bool { return d.sorted[i] >= addr })
	if i < len(d.sorted) && d.sorted[i] == addr {
		d.sorted = append(d.sorted[:i], d.sorted[i+1:]...)
	}
}

// spikeOverFlat supplements the shared offline filter for short
// sliding windows. A reclaimed datum re-qualifies on its first
// boundary-crossing reuse, so its window is one large spike over an
// otherwise flat signal. Each piece passes an offline rule on its own
// — the spike is the bimodal upper mode, the flat remainder is the
// flat-signal shape — but the mixture defeats both: one spike cannot
// alternate, and it inflates the whole window's variation. Keep sample
// i when it is such a spike (>= 8x the window median, the offline
// bimodal separation) or part of a flat remainder under the spike.
func spikeOverFlat(dists []float64, i int) bool {
	if len(dists) < 4 {
		return false
	}
	sorted := append([]float64(nil), dists...)
	sort.Float64s(sorted)
	med := sorted[len(sorted)/2]
	if med <= 0 {
		return false
	}
	cut := 8 * med
	if dists[i] >= cut {
		return true
	}
	// Flat remainder, only in the re-qualification shape: the spike is
	// the window's first sample (the qualifying access) and the sole
	// one above the cut. A spike elsewhere is ordinary alternation,
	// which the offline rules already judge; keeping its neighbors too
	// would oversegment periodic programs.
	if dists[0] < cut {
		return false
	}
	n, sum := 0, 0.0
	for _, v := range dists {
		if v < cut {
			n++
			sum += v
		}
	}
	if n != len(dists)-1 || n < 4 {
		return false
	}
	mean := sum / float64(n)
	if mean <= 0 {
		return false
	}
	varsum := 0.0
	for _, v := range dists {
		if v < cut {
			dv := v - mean
			varsum += dv * dv
		}
	}
	return math.Sqrt(varsum/float64(n))/mean < 0.25
}

// dist2f converts a reuse distance to the filter's float signal.
func dist2f(d int64) float64 { return float64(d) }
