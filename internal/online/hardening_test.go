package online

import (
	"testing"

	"lpp/internal/stats"
	"lpp/internal/trace"
	"lpp/internal/workload"
)

// adversarialStream feeds the detector an access pattern built to blow
// every unhardened structure: a never-recurring page walk (the open
// segment's signature grows forever without MaxSignature) punctuated by
// abrupt working-set switches between seeded footprints (an endless
// supply of novel phase IDs, so the grammar never compresses and hits
// MaxGrammar over and over).
func adversarialStream(d *Detector, accesses int, seed uint64) {
	rng := stats.NewRNG(seed)
	base := trace.Addr(1) << 32
	done := 0
	for done < accesses {
		// One ephemeral "phase": a working set of ~2000 addresses at
		// page stride, swept repeatedly (so reuse distances clear the
		// qualification threshold and samples flow), in a footprint no
		// earlier phase touched and no later phase will.
		base += trace.Addr(1+rng.Intn(64)) << 28
		set := 1500 + rng.Intn(1000)
		d.Block(trace.BlockID(done), 4)
		for sweep := 0; sweep < 10 && done < accesses; sweep++ {
			for i := 0; i < set && done < accesses; i++ {
				d.Access(base + trace.Addr(i)<<16) // one 64KB page per datum
				done++
			}
		}
	}
}

// TestHardeningBoundsAdversarialStream is the adversarial counterpart
// of TestBoundedMemoryOverLongStream: under small caps, a hostile
// stream must keep every gauge bounded and must actually trip the
// hardening fallbacks (grammar restarts, signature truncation) rather
// than merely never needing them.
func TestHardeningBoundsAdversarialStream(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxLive = 4096
	cfg.MaxDataSamples = 128
	cfg.MaxPending = 256
	cfg.MaxGrammar = 48
	cfg.PhaseTail = 16
	cfg.MaxPhases = 16
	cfg.MaxSignature = 64
	d := NewDetector(cfg)

	const rounds = 8
	for r := 0; r < rounds; r++ {
		adversarialStream(d, 200_000, uint64(r+1))
		st := d.Stats()
		if st.GrammarSize > cfg.MaxGrammar {
			t.Fatalf("round %d: grammar size %d > cap %d", r, st.GrammarSize, cfg.MaxGrammar)
		}
		if st.LargestSignature > cfg.MaxSignature {
			t.Fatalf("round %d: signature %d pages > cap %d", r, st.LargestSignature, cfg.MaxSignature)
		}
		if st.Phases > cfg.MaxPhases {
			t.Fatalf("round %d: phases %d > cap %d", r, st.Phases, cfg.MaxPhases)
		}
		if st.DataSamples > cfg.MaxDataSamples {
			t.Fatalf("round %d: data samples %d > cap %d", r, st.DataSamples, cfg.MaxDataSamples)
		}
		if st.WindowLen > cfg.BoundaryWindow {
			t.Fatalf("round %d: window %d > cap %d", r, st.WindowLen, cfg.BoundaryWindow)
		}
		d.DrainEvents()
	}
	d.Flush()

	st := d.Stats()
	if st.Boundaries == 0 {
		t.Fatalf("adversarial stream produced no boundaries; the caps never engaged")
	}
	if st.GrammarRestarts == 0 {
		t.Errorf("grammar never restarted: the MaxGrammar fallback was not exercised (size %d)", st.GrammarSize)
	}
	if st.TruncatedPages == 0 {
		t.Errorf("no signature pages truncated: the MaxSignature cap was not exercised (largest %d)", st.LargestSignature)
	}
}

// TestMinBoundaryGapSuppresses pins the margin guard's contract: with
// a gap configured, no two emitted boundaries are closer than the gap,
// every rejection is counted, and with the gap disabled (the default)
// behavior is exactly the ungated detector's.
func TestMinBoundaryGapSuppresses(t *testing.T) {
	spec, err := workload.HostileByName("interleaved")
	if err != nil {
		t.Fatal(err)
	}
	p := spec.Params
	p.Quantum = 500 // fine-grained slicing: boundary jitter on purpose
	rec := trace.NewRecorder(0, 0)
	spec.Make(p).Run(rec)

	run := func(gap int64) (boundaries []int64, st Stats) {
		cfg := DefaultConfig()
		cfg.MinBoundaryGap = gap
		d := NewDetector(cfg)
		rec.T.Replay(d)
		d.Flush()
		for _, ev := range d.DrainEvents() {
			if ev.Kind.String() == "boundary" {
				boundaries = append(boundaries, ev.Time)
			}
		}
		return boundaries, d.Stats()
	}

	const gap = 4000
	gated, gst := run(gap)
	if gst.SuppressedBoundaries == 0 {
		t.Fatalf("gap %d suppressed nothing on a quantum-500 interleaved stream", gap)
	}
	for i := 1; i < len(gated); i++ {
		if gated[i]-gated[i-1] < gap {
			t.Fatalf("boundaries %d and %d only %d apart, gap %d", gated[i-1], gated[i], gated[i]-gated[i-1], gap)
		}
	}

	open, ost := run(0)
	if ost.SuppressedBoundaries != 0 {
		t.Fatalf("disabled guard counted %d suppressions", ost.SuppressedBoundaries)
	}
	if len(open) <= len(gated) {
		t.Fatalf("guard suppressed %d boundaries but emitted %d vs %d ungated",
			gst.SuppressedBoundaries, len(gated), len(open))
	}
}

// TestHardenedSnapshotRoundTrip proves the new counters and config
// fields ride the snapshot: a restored detector reports the same
// hardening stats and keeps suppressing identically.
func TestHardenedSnapshotRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinBoundaryGap = 2000
	cfg.MaxGrammar = 48
	cfg.MaxSignature = 64
	cfg.MaxPhases = 16
	cfg.PhaseTail = 16
	d := NewDetector(cfg)
	adversarialStream(d, 300_000, 42)
	d.DrainEvents()

	snap := d.Snapshot()
	r, err := NewDetectorFromSnapshot(cfg, snap)
	if err != nil {
		t.Fatal(err)
	}
	a, b := d.Stats(), r.Stats()
	if a != b {
		t.Fatalf("restored stats differ:\n  original %+v\n  restored %+v", a, b)
	}

	// A different hardening config must be refused.
	other := cfg
	other.MinBoundaryGap = 9999
	if _, err := NewDetectorFromSnapshot(other, snap); err == nil {
		t.Fatalf("snapshot accepted under a different MinBoundaryGap")
	}
	other = cfg
	other.MaxSignature = 128
	if _, err := NewDetectorFromSnapshot(other, snap); err == nil {
		t.Fatalf("snapshot accepted under a different MaxSignature")
	}
}
