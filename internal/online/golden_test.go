package online

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"lpp/internal/phase"
	"lpp/internal/trace"
	"lpp/internal/workload"
)

var updateGolden = flag.Bool("update", false, "regenerate golden trace fixtures")

// goldenEvent mirrors phase.Event with a stable wire spelling so fixture
// diffs read as English, not iota values.
type goldenEvent struct {
	Kind         string `json:"kind"`
	Time         int64  `json:"time"`
	Instructions int64  `json:"instructions"`
	Phase        int    `json:"phase"`
}

// goldenCounters pins the deterministic counters of Stats. Gauges
// (window length, live buckets, pending events) are deliberately
// excluded: they describe transient memory state, not detection output.
type goldenCounters struct {
	Accesses     int64 `json:"accesses"`
	Blocks       int64 `json:"blocks"`
	Instructions int64 `json:"instructions"`
	Samples      int64 `json:"samples"`
	Filtered     int64 `json:"filtered"`
	Boundaries   int64 `json:"boundaries"`
	Predictions  int64 `json:"predictions"`
	Adjustments  int   `json:"adjustments"`
}

type goldenFixture struct {
	Workload string         `json:"workload"`
	Events   []goldenEvent  `json:"events"`
	Stats    goldenCounters `json:"stats"`
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".json")
}

// goldenChunkSizes slices each trace into uneven chunks so batch
// boundaries land inside access runs, on block events, and on
// single-event chunks — the shapes the ingest service produces.
var goldenChunkSizes = []int{1, 7, 64, 1, 1024, 4096, 3, 509}

// recordedEvents converts a recorded trace into the flat event stream
// the server's decoder hands to AccessBatch, in Replay order.
func recordedEvents(rec *trace.Recorded) []trace.Event {
	events := make([]trace.Event, 0, len(rec.Accesses)+len(rec.Blocks))
	next := 0
	for i, b := range rec.Blocks {
		end := len(rec.Accesses)
		if i+1 < len(rec.Blocks) {
			end = int(rec.Blocks[i+1].AccessIndex)
		}
		events = append(events, trace.Event{Kind: trace.EventBlock, Block: b.ID, Instrs: int(b.Instrs)})
		for ; next < end; next++ {
			events = append(events, trace.Event{Kind: trace.EventAccess, Addr: rec.Accesses[next]})
		}
	}
	for ; next < len(rec.Accesses); next++ {
		events = append(events, trace.Event{Kind: trace.EventAccess, Addr: rec.Accesses[next]})
	}
	return events
}

// goldenRun streams a trace through a fresh detector via feed and
// returns the fixture-shaped result. Events are collected through
// OnEvent so nothing can be dropped by the bounded buffer.
func goldenRun(c parityCase, rec *trace.Recorded, feed func(*Detector, *trace.Recorded)) goldenFixture {
	var events []goldenEvent
	cfg := DefaultConfig()
	cfg.KeepIrregular = c.keepIrregular
	cfg.OnEvent = func(ev phase.Event) {
		events = append(events, goldenEvent{
			Kind:         ev.Kind.String(),
			Time:         ev.Time,
			Instructions: ev.Instructions,
			Phase:        ev.Phase,
		})
	}
	d := NewDetector(cfg)
	feed(d, rec)
	d.Flush()
	st := d.Stats()
	return goldenFixture{
		Workload: c.name,
		Events:   events,
		Stats: goldenCounters{
			Accesses:     st.Accesses,
			Blocks:       st.Blocks,
			Instructions: st.Instructions,
			Samples:      st.Samples,
			Filtered:     st.Filtered,
			Boundaries:   st.Boundaries,
			Predictions:  st.Predictions,
			Adjustments:  st.Adjustments,
		},
	}
}

func feedPerEvent(d *Detector, rec *trace.Recorded) {
	rec.Replay(d)
}

func feedBatched(d *Detector, rec *trace.Recorded) {
	events := recordedEvents(rec)
	for off, k := 0, 0; off < len(events); k++ {
		end := off + goldenChunkSizes[k%len(goldenChunkSizes)]
		if end > len(events) {
			end = len(events)
		}
		d.AccessBatch(events[off:end])
		off = end
	}
}

// feedColumns is the v2 ingest path: each uneven chunk is encoded as a
// columnar v2 frame, decoded back into a reused Columns (exactly what
// the server's pooled decode does), and fed through AccessColumns — so
// the golden suites pin the whole encode→decode→columnar-feed pipeline
// against the per-event truth, not just the feed loop.
func feedColumns(d *Detector, rec *trace.Recorded) {
	events := recordedEvents(rec)
	var (
		buf  []byte
		cols trace.Columns
	)
	for off, k := 0, 0; off < len(events); k++ {
		end := off + goldenChunkSizes[k%len(goldenChunkSizes)]
		if end > len(events) {
			end = len(events)
		}
		buf = buf[:0]
		var err error
		if buf, err = trace.AppendChunkV2(buf, events[off:end]); err != nil {
			panic(err)
		}
		if err := trace.DecodeChunkV2(buf, &cols, 0); err != nil {
			panic(err)
		}
		d.AccessColumns(&cols)
		off = end
	}
}

func diffFixtures(t *testing.T, label string, got, want goldenFixture) {
	t.Helper()
	if got.Stats != want.Stats {
		t.Errorf("%s: counters diverge:\n got  %+v\n want %+v", label, got.Stats, want.Stats)
	}
	if len(got.Events) != len(want.Events) {
		t.Errorf("%s: %d events, want %d", label, len(got.Events), len(want.Events))
		return
	}
	for i := range want.Events {
		if got.Events[i] != want.Events[i] {
			t.Errorf("%s: event %d = %+v, want %+v", label, i, got.Events[i], want.Events[i])
			return
		}
	}
}

// TestGoldenTraces replays the nine benchmark workloads through the
// detector on both ingest paths — one call per event, and server-style
// uneven batches through AccessBatch — and pins the complete output
// (every phase event plus the deterministic counters) against checked-in
// fixtures. Run with -update to regenerate the fixtures after an
// intentional algorithm change; the batched path must match the
// per-event path regardless, so -update cannot paper over a batching
// bug.
func TestGoldenTraces(t *testing.T) {
	for _, c := range parityCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			spec, err := workload.ByName(c.name)
			if err != nil {
				t.Fatal(err)
			}
			rec := trace.NewRecorder(1<<20, 1<<16)
			spec.Make(c.train).Run(rec)

			perEvent := goldenRun(c, &rec.T, feedPerEvent)
			batched := goldenRun(c, &rec.T, feedBatched)
			columns := goldenRun(c, &rec.T, feedColumns)
			diffFixtures(t, "batched vs per-event", batched, perEvent)
			diffFixtures(t, "columns vs per-event", columns, perEvent)

			path := goldenPath(c.name)
			if *updateGolden {
				buf, err := json.MarshalIndent(perEvent, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d events)", path, len(perEvent.Events))
				return
			}
			buf, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture (run go test ./internal/online -run TestGoldenTraces -update): %v", err)
			}
			var want goldenFixture
			if err := json.Unmarshal(buf, &want); err != nil {
				t.Fatalf("corrupt fixture %s: %v", path, err)
			}
			diffFixtures(t, "per-event vs fixture", perEvent, want)
			diffFixtures(t, "batched vs fixture", batched, want)
			diffFixtures(t, "columns vs fixture", columns, want)
		})
	}
}

// TestGoldenHostileTraces extends the golden tier to the three hostile
// families: the multi-tenant interleaved trace, the period-drift
// kernel, and the input-adaptive kernel. Same contract as
// TestGoldenTraces — batched ingest must match per-event ingest
// exactly, and both must match the checked-in fixture — but over
// workloads engineered to shake boundary placement loose. Fixture
// names carry a "hostile-" prefix so the nine original fixtures stay
// untouched.
func TestGoldenHostileTraces(t *testing.T) {
	for _, spec := range workload.Hostile() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			rec := trace.NewRecorder(1<<20, 1<<16)
			spec.Make(spec.Params).Run(rec)

			c := parityCase{name: "hostile-" + spec.Name}
			perEvent := goldenRun(c, &rec.T, feedPerEvent)
			batched := goldenRun(c, &rec.T, feedBatched)
			columns := goldenRun(c, &rec.T, feedColumns)
			diffFixtures(t, "batched vs per-event", batched, perEvent)
			diffFixtures(t, "columns vs per-event", columns, perEvent)

			path := goldenPath(c.name)
			if *updateGolden {
				buf, err := json.MarshalIndent(perEvent, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d events)", path, len(perEvent.Events))
				return
			}
			buf, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture (run go test ./internal/online -run TestGoldenHostileTraces -update): %v", err)
			}
			var want goldenFixture
			if err := json.Unmarshal(buf, &want); err != nil {
				t.Fatalf("corrupt fixture %s: %v", path, err)
			}
			diffFixtures(t, "per-event vs fixture", perEvent, want)
			diffFixtures(t, "batched vs fixture", batched, want)
			diffFixtures(t, "columns vs fixture", columns, want)
		})
	}
}
