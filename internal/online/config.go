// Package online detects locality phase boundaries incrementally from
// an unbounded event stream. The offline pipeline in internal/core is
// inherently two-pass — it zooms in and out over a complete recorded
// training trace — so it cannot serve long-running ingestion. This
// package re-derives each pipeline stage in a single-pass, bounded-
// memory form:
//
//   - reuse distances come from reuse.ApproxAnalyzer with an eviction
//     cap instead of the exact analyzer;
//   - variable-distance sampling paces its thresholds against a target
//     sample *rate* instead of an expected trace length;
//   - the wavelet filter runs over a sliding window of each data
//     sample's recent sub-trace, deciding each sample once a fixed
//     number of newer samples exist (the same rule set as offline via
//     core.FilterSubTrace);
//   - optimal phase partitioning runs over a sliding window of
//     filtered samples, emitting only boundaries outside an unstable
//     margin near the window's leading edge;
//   - the phase hierarchy is fed incrementally into a SEQUITUR
//     grammar, recompiled to an automaton at each boundary to predict
//     the next phase.
//
// Every structure has a configurable cap, and under load the detector
// degrades by sampling (raising its analysis stride) instead of
// growing without bound.
package online

import (
	"lpp/internal/phase"
	"lpp/internal/phasedet"
	"lpp/internal/wavelet"
)

// Config bounds and tunes the streaming detector. The zero value takes
// the defaults below; every cap is a hard memory bound.
type Config struct {
	// Epsilon is the approximate reuse-distance precision (0 takes
	// 0.05, as offline).
	Epsilon float64
	// MaxLive caps distinct addresses tracked by the reuse analyzer;
	// older addresses are evicted and read cold on their next access.
	MaxLive int
	// MaxDataSamples caps the number of data samples followed.
	MaxDataSamples int
	// SubTraceWindow is the per-data-sample sliding window of recent
	// access samples the wavelet filter sees.
	SubTraceWindow int
	// FilterLag is how many newer samples of the same datum must
	// arrive before a sample's keep/drop decision is made.
	FilterLag int
	// MinSubTrace mirrors the offline noise rule: a datum's samples
	// are not decided until its window holds at least this many.
	MinSubTrace int
	// BoundaryWindow is the number of filtered samples accumulated
	// before a partitioning flush.
	BoundaryWindow int
	// BoundaryMargin is the number of trailing window samples whose
	// cuts are withheld as unstable (0 takes BoundaryWindow/4).
	BoundaryMargin int
	// MinBoundaryGap suppresses a detected boundary closer than this
	// many accesses to the previously accepted one. Jittery streams —
	// two tenants time-sliced at a fine quantum, drifting periods —
	// otherwise shatter one true boundary into a cluster of near-
	// duplicates, each minting a phase identity. 0 disables the guard
	// (the default: the paper's workloads need no suppression, and the
	// golden traces pin that).
	MinBoundaryGap int64
	// Alpha and MaxSpan parameterize phasedet.Partition as offline.
	Alpha   float64
	MaxSpan int
	// Wavelet is the filter family (default Daubechies-6).
	Wavelet wavelet.Family
	// KeepIrregular enables the Gcc extension of the sub-trace filter.
	KeepIrregular bool

	// Qualification, Temporal, Spatial seed the sampling thresholds
	// (defaults as offline).
	Qualification, Temporal, Spatial int64
	// TargetRate is the access-sample collection rate the feedback
	// loop aims for, in samples per access (default 0.05).
	TargetRate float64
	// CheckEvery is the feedback interval in accesses (default 10000).
	CheckEvery int64
	// DecideHorizon forces a sample's keep/drop decision once it is
	// this many accesses old, even if fewer than FilterLag newer
	// samples of its datum exist — otherwise a rarely-accessed datum
	// would hold its samples (and any boundary they mark) back
	// indefinitely. 0 takes 2x CheckEvery.
	DecideHorizon int64
	// StaleAfter is the age (in accesses since its last sample) past
	// which a data sample's slot is reclaimed for new data when the
	// MaxDataSamples cap is full — so a long-running stream whose
	// working set drifts keeps being covered. It must comfortably
	// exceed the longest recurrence interval worth tracking: a datum
	// sampled once per program phase (the Swim shape) is the most
	// informative kind, and reclaiming it between samples discards
	// its history. 0 takes 6x CheckEvery.
	StaleAfter int64

	// MaxGrammar caps the SEQUITUR grammar size; past it the grammar
	// restarts from the recent phase tail.
	MaxGrammar int
	// PhaseTail is how many recent phase IDs are retained to walk the
	// prediction automaton after a restart.
	PhaseTail int
	// MaxPhases caps distinct phase identities; past it new segments
	// are folded into their nearest known phase.
	MaxPhases int
	// Similarity is the minimum Jaccard similarity between segment
	// datum sets for two segments to share a phase ID (default 0.5).
	Similarity float64
	// MaxSignature caps the 64KB pages held in any phase signature
	// (known or open segment). An adversarial stream that touches new
	// pages forever would otherwise grow the open segment's set — the
	// one per-segment structure no other cap bounds — without limit;
	// past the cap new pages are dropped and counted (default 4096,
	// far above any of the paper's workloads: identity is unaffected
	// on well-behaved streams).
	MaxSignature int

	// MaxPending caps the buffered event queue when no OnEvent
	// callback is set; overflow drops the oldest events and counts
	// them in Stats.DroppedEvents.
	MaxPending int
	// MaxStride bounds how far load shedding may raise the analysis
	// stride (default 16; 1 disables shedding).
	MaxStride int

	// OnEvent, when non-nil, receives each phase.Event synchronously
	// instead of buffering it for DrainEvents.
	OnEvent func(phase.Event)
}

// DefaultConfig returns the streaming defaults.
func DefaultConfig() Config {
	return Config{
		Epsilon:        0.05,
		MaxLive:        1 << 16,
		MaxDataSamples: 512,
		SubTraceWindow: 48,
		FilterLag:      8,
		MinSubTrace:    4,
		BoundaryWindow: 256,
		Alpha:          phasedet.DefaultAlpha,
		MaxSpan:        4000,
		Wavelet:        wavelet.Daubechies6,
		Qualification:  512,
		Temporal:       512,
		Spatial:        1024,
		TargetRate:     0.05,
		CheckEvery:     10000,
		MaxGrammar:     4096,
		PhaseTail:      512,
		MaxPhases:      64,
		Similarity:     0.5,
		MaxSignature:   4096,
		MaxPending:     1024,
		MaxStride:      16,
	}
}

// withDefaults fills zero fields from DefaultConfig.
func (c Config) withDefaults() Config {
	def := DefaultConfig()
	if c.Epsilon <= 0 {
		c.Epsilon = def.Epsilon
	}
	if c.MaxLive <= 0 {
		c.MaxLive = def.MaxLive
	}
	if c.MaxDataSamples <= 0 {
		c.MaxDataSamples = def.MaxDataSamples
	}
	if c.SubTraceWindow <= 0 {
		c.SubTraceWindow = def.SubTraceWindow
	}
	if c.FilterLag <= 0 {
		c.FilterLag = def.FilterLag
	}
	if c.FilterLag >= c.SubTraceWindow {
		c.FilterLag = c.SubTraceWindow - 1
	}
	if c.MinSubTrace <= 0 {
		c.MinSubTrace = def.MinSubTrace
	}
	if c.BoundaryWindow <= 0 {
		c.BoundaryWindow = def.BoundaryWindow
	}
	if c.BoundaryMargin <= 0 {
		c.BoundaryMargin = c.BoundaryWindow / 4
	}
	if c.BoundaryMargin >= c.BoundaryWindow {
		c.BoundaryMargin = c.BoundaryWindow - 1
	}
	if c.Alpha == 0 {
		c.Alpha = def.Alpha
	}
	if c.MaxSpan <= 0 {
		c.MaxSpan = def.MaxSpan
	}
	if c.Wavelet == 0 {
		// The zero Family is Haar, but a zero Config means "defaults"
		// here, so it takes the paper's Daubechies-6.
		c.Wavelet = def.Wavelet
	}
	if c.Qualification <= 0 {
		c.Qualification = def.Qualification
	}
	if c.Temporal <= 0 {
		c.Temporal = def.Temporal
	}
	if c.Spatial <= 0 {
		c.Spatial = def.Spatial
	}
	if c.TargetRate <= 0 {
		c.TargetRate = def.TargetRate
	}
	if c.CheckEvery <= 0 {
		c.CheckEvery = def.CheckEvery
	}
	if c.DecideHorizon <= 0 {
		c.DecideHorizon = 2 * c.CheckEvery
	}
	if c.StaleAfter <= 0 {
		c.StaleAfter = 6 * c.CheckEvery
	}
	if c.MaxGrammar <= 0 {
		c.MaxGrammar = def.MaxGrammar
	}
	if c.PhaseTail <= 0 {
		c.PhaseTail = def.PhaseTail
	}
	if c.MaxPhases <= 0 {
		c.MaxPhases = def.MaxPhases
	}
	if c.Similarity <= 0 {
		c.Similarity = def.Similarity
	}
	if c.MaxSignature <= 0 {
		c.MaxSignature = def.MaxSignature
	}
	if c.MinBoundaryGap < 0 {
		c.MinBoundaryGap = 0
	}
	if c.MaxPending <= 0 {
		c.MaxPending = def.MaxPending
	}
	if c.MaxStride <= 0 {
		c.MaxStride = def.MaxStride
	}
	return c
}
