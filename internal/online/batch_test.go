package online

import (
	"testing"

	"lpp/internal/phase"
	"lpp/internal/trace"
	"lpp/internal/workload"
)

// steadyChunk builds a server-shaped chunk — block events interleaved
// with access runs — over a small resident working set whose reuse
// distances stay below every sampling threshold.
func steadyChunk(n int) []trace.Event {
	const nAddrs = 64
	chunk := make([]trace.Event, 0, n)
	for i := 0; i < n; i++ {
		if i%512 == 0 {
			chunk = append(chunk, trace.Event{Kind: trace.EventBlock, Block: trace.BlockID(i / 512), Instrs: 10})
			continue
		}
		chunk = append(chunk, trace.Event{Kind: trace.EventAccess, Addr: trace.Addr((i % nAddrs) * 64)})
	}
	return chunk
}

// TestAccessBatchHotPathZeroAllocs pins the dispatch machinery —
// run-gathering, the analyzer batch call, scratch reuse, logical-time
// bookkeeping — at exactly zero allocations per chunk. Sampling is kept
// quiescent (resident working set below the qualification threshold,
// feedback deferred) so the guard isolates the ingest plumbing this PR
// owns from the detector's own bounded sampling work.
func TestAccessBatchHotPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun counts race-runtime allocations")
	}
	cfg := DefaultConfig()
	cfg.CheckEvery = 1 << 40 // no threshold feedback inside the run
	cfg.OnEvent = func(phase.Event) {}
	d := NewDetector(cfg)
	chunk := steadyChunk(4096)
	for i := 0; i < 8; i++ {
		d.AccessBatch(chunk) // settle analyzer compaction + scratch sizes
	}
	if avg := testing.AllocsPerRun(100, func() { d.AccessBatch(chunk) }); avg != 0 {
		t.Errorf("steady-state AccessBatch: %.2f allocs per %d-event chunk, want 0", avg, len(chunk))
	}
}

// TestAccessColumnsHotPathZeroAllocs pins the columnar feed — bitmap
// walk, fused analyzer/sampling loop, counter folds — at exactly zero
// allocations per chunk, the v2 analog of the AccessBatch guard above.
func TestAccessColumnsHotPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun counts race-runtime allocations")
	}
	cfg := DefaultConfig()
	cfg.CheckEvery = 1 << 40 // no threshold feedback inside the run
	cfg.OnEvent = func(phase.Event) {}
	d := NewDetector(cfg)
	data, err := trace.AppendChunkV2(nil, steadyChunk(4096))
	if err != nil {
		t.Fatal(err)
	}
	var cols trace.Columns
	if err := trace.DecodeChunkV2(data, &cols, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		d.AccessColumns(&cols) // settle analyzer compaction
	}
	if avg := testing.AllocsPerRun(100, func() { d.AccessColumns(&cols) }); avg != 0 {
		t.Errorf("steady-state AccessColumns: %.2f allocs per %d-event chunk, want 0", avg, cols.N)
	}
}

// TestLoadSheddingBatchParity pins the degraded regime: with pressure
// applied (stride > 1), the per-event, row-batch, and columnar paths
// must shed the same accesses and end in identical states. The batch
// paths used to fall back to per-event dispatch whenever stride > 1;
// now shedding is handled inside the fused loop, and this test is what
// holds that equivalence.
func TestLoadSheddingBatchParity(t *testing.T) {
	spec, err := workload.ByName("fft")
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(1<<20, 1<<16)
	spec.Make(workload.Params{N: 512, Steps: 6, Seed: 1}).Run(rec)
	events := recordedEvents(&rec.T)

	// Pressure flips mid-stream, twice, so runs straddle stride changes.
	pressures := []float64{0.9, 0, 0.5}
	run := func(feed func(d *Detector, events []trace.Event)) Stats {
		cfg := DefaultConfig()
		cfg.OnEvent = func(phase.Event) {}
		d := NewDetector(cfg)
		per := (len(events) + len(pressures) - 1) / len(pressures)
		for i, p := range pressures {
			d.SetPressure(p)
			end := (i + 1) * per
			if end > len(events) {
				end = len(events)
			}
			feed(d, events[i*per:end])
		}
		d.Flush()
		return d.Stats()
	}

	perEvent := run(func(d *Detector, events []trace.Event) {
		for _, ev := range events {
			ev.Feed(d)
		}
	})
	if perEvent.Shed == 0 {
		t.Fatal("test did not exercise load shedding")
	}
	batched := run(func(d *Detector, events []trace.Event) {
		for off := 0; off < len(events); off += 777 {
			end := off + 777
			if end > len(events) {
				end = len(events)
			}
			d.AccessBatch(events[off:end])
		}
	})
	columns := run(func(d *Detector, events []trace.Event) {
		var (
			buf  []byte
			cols trace.Columns
		)
		for off := 0; off < len(events); off += 777 {
			end := off + 777
			if end > len(events) {
				end = len(events)
			}
			var err error
			if buf, err = trace.AppendChunkV2(buf[:0], events[off:end]); err != nil {
				t.Fatal(err)
			}
			if err := trace.DecodeChunkV2(buf, &cols, 0); err != nil {
				t.Fatal(err)
			}
			d.AccessColumns(&cols)
		}
	})
	if batched != perEvent {
		t.Errorf("batched stats diverge under shedding:\n got  %+v\n want %+v", batched, perEvent)
	}
	if columns != perEvent {
		t.Errorf("columnar stats diverge under shedding:\n got  %+v\n want %+v", columns, perEvent)
	}
}

// TestAccessBatchAmortizedAllocs bounds the full batched path —
// sampling, filtering, and boundary flushes included — on a real
// workload's trace. Those stages allocate per *sample* by design (the
// sub-trace filter and wavelet transform build per-decision slices),
// and replaying a trace keeps the sampler busy, so the baseline is
// ~0.8 allocs/event. The guard exists to catch the plumbing starting
// to allocate per *event*: one extra allocation per event pushes the
// figure past the bound.
func TestAccessBatchAmortizedAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun counts race-runtime allocations")
	}
	spec, err := workload.ByName("fft")
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(1<<20, 1<<16)
	spec.Make(workload.Params{N: 512, Steps: 6, Seed: 1}).Run(rec)
	events := recordedEvents(&rec.T)

	cfg := DefaultConfig()
	cfg.OnEvent = func(phase.Event) {}
	d := NewDetector(cfg)
	const chunkLen = 8192
	off := 0
	feedNext := func() {
		if off+chunkLen > len(events) {
			off = 0
		}
		d.AccessBatch(events[off : off+chunkLen])
		off += chunkLen
	}
	for i := 0; i < 16; i++ {
		feedNext() // warm thresholds through a few feedback cycles
	}
	avg := testing.AllocsPerRun(50, feedNext)
	perEvent := avg / chunkLen
	if perEvent > 1.5 {
		t.Errorf("batched ingest allocates %.4f allocs/event (%.1f per %d-event chunk), want <= 1.5",
			perEvent, avg, chunkLen)
	}
}

func benchmarkEvents(b *testing.B) []trace.Event {
	b.Helper()
	spec, err := workload.ByName("fft")
	if err != nil {
		b.Fatal(err)
	}
	rec := trace.NewRecorder(1<<20, 1<<16)
	spec.Make(workload.Params{N: 512, Steps: 6, Seed: 1}).Run(rec)
	return recordedEvents(&rec.T)
}

// BenchmarkAccessBatch measures the batched ingest path on a real
// trace in server-sized chunks; compare against BenchmarkAccessPerEvent
// for the dispatch amortization this entry point exists to provide.
func BenchmarkAccessBatch(b *testing.B) {
	events := benchmarkEvents(b)
	cfg := DefaultConfig()
	cfg.OnEvent = func(phase.Event) {}
	d := NewDetector(cfg)
	const chunkLen = 8192
	b.ReportAllocs()
	b.ResetTimer()
	off := 0
	for i := 0; i < b.N; i++ {
		if off+chunkLen > len(events) {
			off = 0
		}
		d.AccessBatch(events[off : off+chunkLen])
		off += chunkLen
	}
	b.SetBytes(0)
	b.ReportMetric(float64(b.N)*chunkLen/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkAccessColumns measures the columnar feed on the same trace
// and chunk size as BenchmarkAccessBatch, minus the []trace.Event
// materialization the row path pays upstream.
func BenchmarkAccessColumns(b *testing.B) {
	events := benchmarkEvents(b)
	cfg := DefaultConfig()
	cfg.OnEvent = func(phase.Event) {}
	d := NewDetector(cfg)
	const chunkLen = 8192
	var chunks []*trace.Columns
	for off := 0; off+chunkLen <= len(events); off += chunkLen {
		data, err := trace.AppendChunkV2(nil, events[off:off+chunkLen])
		if err != nil {
			b.Fatal(err)
		}
		var c trace.Columns
		if err := trace.DecodeChunkV2(data, &c, 0); err != nil {
			b.Fatal(err)
		}
		chunks = append(chunks, &c)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.AccessColumns(chunks[i%len(chunks)])
	}
	b.ReportMetric(float64(b.N)*chunkLen/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkAccessPerEvent is the baseline the server used before this
// PR: one exported-method call per decoded event.
func BenchmarkAccessPerEvent(b *testing.B) {
	events := benchmarkEvents(b)
	cfg := DefaultConfig()
	cfg.OnEvent = func(phase.Event) {}
	d := NewDetector(cfg)
	const chunkLen = 8192
	b.ReportAllocs()
	b.ResetTimer()
	off := 0
	for i := 0; i < b.N; i++ {
		if off+chunkLen > len(events) {
			off = 0
		}
		for _, ev := range events[off : off+chunkLen] {
			if ev.Kind == trace.EventBlock {
				d.Block(ev.Block, ev.Instrs)
			} else {
				d.Access(ev.Addr)
			}
		}
		off += chunkLen
	}
	b.ReportMetric(float64(b.N)*chunkLen/b.Elapsed().Seconds(), "events/s")
}
