package online

import (
	"testing"

	"lpp/internal/phase"
	"lpp/internal/trace"
	"lpp/internal/workload"
)

// steadyChunk builds a server-shaped chunk — block events interleaved
// with access runs — over a small resident working set whose reuse
// distances stay below every sampling threshold.
func steadyChunk(n int) []trace.Event {
	const nAddrs = 64
	chunk := make([]trace.Event, 0, n)
	for i := 0; i < n; i++ {
		if i%512 == 0 {
			chunk = append(chunk, trace.Event{Kind: trace.EventBlock, Block: trace.BlockID(i / 512), Instrs: 10})
			continue
		}
		chunk = append(chunk, trace.Event{Kind: trace.EventAccess, Addr: trace.Addr((i % nAddrs) * 64)})
	}
	return chunk
}

// TestAccessBatchHotPathZeroAllocs pins the dispatch machinery —
// run-gathering, the analyzer batch call, scratch reuse, logical-time
// bookkeeping — at exactly zero allocations per chunk. Sampling is kept
// quiescent (resident working set below the qualification threshold,
// feedback deferred) so the guard isolates the ingest plumbing this PR
// owns from the detector's own bounded sampling work.
func TestAccessBatchHotPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun counts race-runtime allocations")
	}
	cfg := DefaultConfig()
	cfg.CheckEvery = 1 << 40 // no threshold feedback inside the run
	cfg.OnEvent = func(phase.Event) {}
	d := NewDetector(cfg)
	chunk := steadyChunk(4096)
	for i := 0; i < 8; i++ {
		d.AccessBatch(chunk) // settle analyzer compaction + scratch sizes
	}
	if avg := testing.AllocsPerRun(100, func() { d.AccessBatch(chunk) }); avg != 0 {
		t.Errorf("steady-state AccessBatch: %.2f allocs per %d-event chunk, want 0", avg, len(chunk))
	}
}

// TestAccessBatchAmortizedAllocs bounds the full batched path —
// sampling, filtering, and boundary flushes included — on a real
// workload's trace. Those stages allocate per *sample* by design (the
// sub-trace filter and wavelet transform build per-decision slices),
// and replaying a trace keeps the sampler busy, so the baseline is
// ~0.8 allocs/event. The guard exists to catch the plumbing starting
// to allocate per *event*: one extra allocation per event pushes the
// figure past the bound.
func TestAccessBatchAmortizedAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun counts race-runtime allocations")
	}
	spec, err := workload.ByName("fft")
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(1<<20, 1<<16)
	spec.Make(workload.Params{N: 512, Steps: 6, Seed: 1}).Run(rec)
	events := recordedEvents(&rec.T)

	cfg := DefaultConfig()
	cfg.OnEvent = func(phase.Event) {}
	d := NewDetector(cfg)
	const chunkLen = 8192
	off := 0
	feedNext := func() {
		if off+chunkLen > len(events) {
			off = 0
		}
		d.AccessBatch(events[off : off+chunkLen])
		off += chunkLen
	}
	for i := 0; i < 16; i++ {
		feedNext() // warm thresholds through a few feedback cycles
	}
	avg := testing.AllocsPerRun(50, feedNext)
	perEvent := avg / chunkLen
	if perEvent > 1.5 {
		t.Errorf("batched ingest allocates %.4f allocs/event (%.1f per %d-event chunk), want <= 1.5",
			perEvent, avg, chunkLen)
	}
}

func benchmarkEvents(b *testing.B) []trace.Event {
	b.Helper()
	spec, err := workload.ByName("fft")
	if err != nil {
		b.Fatal(err)
	}
	rec := trace.NewRecorder(1<<20, 1<<16)
	spec.Make(workload.Params{N: 512, Steps: 6, Seed: 1}).Run(rec)
	return recordedEvents(&rec.T)
}

// BenchmarkAccessBatch measures the batched ingest path on a real
// trace in server-sized chunks; compare against BenchmarkAccessPerEvent
// for the dispatch amortization this entry point exists to provide.
func BenchmarkAccessBatch(b *testing.B) {
	events := benchmarkEvents(b)
	cfg := DefaultConfig()
	cfg.OnEvent = func(phase.Event) {}
	d := NewDetector(cfg)
	const chunkLen = 8192
	b.ReportAllocs()
	b.ResetTimer()
	off := 0
	for i := 0; i < b.N; i++ {
		if off+chunkLen > len(events) {
			off = 0
		}
		d.AccessBatch(events[off : off+chunkLen])
		off += chunkLen
	}
	b.SetBytes(0)
	b.ReportMetric(float64(b.N)*chunkLen/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkAccessPerEvent is the baseline the server used before this
// PR: one exported-method call per decoded event.
func BenchmarkAccessPerEvent(b *testing.B) {
	events := benchmarkEvents(b)
	cfg := DefaultConfig()
	cfg.OnEvent = func(phase.Event) {}
	d := NewDetector(cfg)
	const chunkLen = 8192
	b.ReportAllocs()
	b.ResetTimer()
	off := 0
	for i := 0; i < b.N; i++ {
		if off+chunkLen > len(events) {
			off = 0
		}
		for _, ev := range events[off : off+chunkLen] {
			if ev.Kind == trace.EventBlock {
				d.Block(ev.Block, ev.Instrs)
			} else {
				d.Access(ev.Addr)
			}
		}
		off += chunkLen
	}
	b.ReportMetric(float64(b.N)*chunkLen/b.Elapsed().Seconds(), "events/s")
}
