package online

import (
	"testing"

	"lpp/internal/core"
	"lpp/internal/phase"
	"lpp/internal/trace"
	"lpp/internal/workload"
)

// parityCase pins, per benchmark, how closely the streaming detector's
// boundaries must agree with the offline pipeline's on the same trace.
// Recall is the fraction of offline boundaries with an online boundary
// within 2% of the trace length. Exact agreement is not expected — the
// online detector samples by rate instead of whole-run pacing, filters
// over sliding windows, and partitions with bounded context — but the
// phase signal must survive those deltas on every workload.
type parityCase struct {
	name          string
	train         workload.Params
	keepIrregular bool
	minRecall     float64
	// tolDiv divides the trace length into the match tolerance
	// (0 means 50, i.e. 2%). Long-period workloads get a wider
	// tolerance: Swim's phases each span ~1/6 of the trace, and the
	// two pipelines place a time step's boundary at different points
	// inside the step transition.
	tolDiv int64
}

func parityCases() []parityCase {
	return []parityCase{
		{"fft", workload.Params{N: 512, Steps: 6, Seed: 1}, false, 0.90, 0},
		{"applu", workload.Params{N: 14, Steps: 5, Seed: 1}, false, 0.40, 0},
		{"compress", workload.Params{N: 8192, Steps: 5, Seed: 1}, false, 0.65, 0},
		{"gcc", workload.Params{N: 60, Steps: 20, Seed: 1}, true, 0.50, 0},
		{"tomcatv", workload.Params{N: 48, Steps: 6, Seed: 1}, false, 0.70, 0},
		{"swim", workload.Params{N: 48, Steps: 6, Seed: 1}, false, 0.55, 25},
		{"vortex", workload.Params{N: 1 << 12, Steps: 6, Seed: 1}, true, 0.90, 0},
		{"mesh", workload.Params{N: 2048, Steps: 6, Seed: 1}, false, 0.75, 0},
		{"moldyn", workload.Params{N: 200, Steps: 6, Seed: 1}, false, 0.70, 0},
	}
}

// TestOnlineOfflineBoundaryParity streams each of the nine workloads
// through the online detector and checks its boundaries against
// offline core.DetectTrace on the identical recorded trace.
func TestOnlineOfflineBoundaryParity(t *testing.T) {
	if testing.Short() {
		t.Skip("parity sweep is seconds-long; skipped in -short")
	}
	for _, c := range parityCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			spec, err := workload.ByName(c.name)
			if err != nil {
				t.Fatal(err)
			}
			rec := trace.NewRecorder(1<<20, 1<<16)
			spec.Make(c.train).Run(rec)

			ccfg := core.DefaultConfig()
			ccfg.KeepIrregular = c.keepIrregular
			det, err := core.DetectTrace(&rec.T, ccfg)
			if err != nil {
				t.Fatal(err)
			}

			ocfg := DefaultConfig()
			ocfg.KeepIrregular = c.keepIrregular
			od := NewDetector(ocfg)
			rec.T.Replay(od)
			od.Flush()

			var online []int64
			for _, ev := range od.DrainEvents() {
				if ev.Kind == phase.BoundaryDetected {
					online = append(online, ev.Time)
				}
			}

			n := int64(len(rec.T.Accesses))
			for i, b := range online {
				if b < 0 || b >= n {
					t.Fatalf("boundary %d out of range [0,%d)", b, n)
				}
				if i > 0 && b <= online[i-1] {
					t.Fatalf("boundaries not strictly increasing at %d", i)
				}
			}

			if len(det.Boundaries) == 0 {
				t.Fatal("offline found no boundaries; case is vacuous")
			}
			tolDiv := c.tolDiv
			if tolDiv == 0 {
				tolDiv = 50
			}
			tol := n / tolDiv
			matched := 0
			for _, b := range det.Boundaries {
				for _, o := range online {
					if o-b < tol && b-o < tol {
						matched++
						break
					}
				}
			}
			recall := float64(matched) / float64(len(det.Boundaries))
			if recall < c.minRecall {
				t.Errorf("recall = %.2f (%d/%d matched), want >= %.2f",
					recall, matched, len(det.Boundaries), c.minRecall)
			}
			// Granularity sanity: online must not be off by an order
			// of magnitude in either direction.
			if len(online)*12 < len(det.Boundaries) || len(online) > 12*len(det.Boundaries) {
				t.Errorf("boundary counts diverge: online %d vs offline %d",
					len(online), len(det.Boundaries))
			}
		})
	}
}
