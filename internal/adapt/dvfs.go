package adapt

import (
	"lpp/internal/interval"
)

// DVFSModel implements phase-based dynamic voltage and frequency
// scaling, the other adaptation the paper's phase markers were built
// to drive (Hsu & Kremer [17], Huang et al. [21], Magklis et al. [22]
// all select program regions and set their voltage): a memory-bound
// phase can run at a lower core frequency with little slowdown because
// its time is dominated by frequency-independent memory stalls.
//
// Time model, normalized to full frequency: compute cycles scale as
// 1/f, memory-stall time is constant. Dynamic energy scales as f²
// (voltage tracks frequency) on the compute portion.
type DVFSModel struct {
	// Levels are the available relative frequencies in ascending
	// order, each in (0, 1].
	Levels []float64
	// MissPenalty is the full-frequency cycles per cache miss that
	// become frequency-independent memory time.
	MissPenalty float64
}

// DefaultDVFS offers the half-to-full range in five steps.
var DefaultDVFS = DVFSModel{
	Levels:      []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
	MissPenalty: 100,
}

// times returns a window's compute cycles and memory time (both at
// full frequency) from its length and locality, using the full-size
// miss rate (the cache is not being resized here).
func (m DVFSModel) times(w interval.Window) (compute, memory float64) {
	n := float64(w.Len())
	misses := n * w.Loc.MissAt(8)
	return n, misses * m.MissPenalty
}

// Choose returns the lowest frequency whose slowdown stays within
// bound (e.g. 0.05 for 5%): slowdown(f) = (compute/f + memory) /
// (compute + memory).
func (m DVFSModel) Choose(compute, memory, bound float64) float64 {
	base := compute + memory
	if base == 0 {
		return 1
	}
	for _, f := range m.Levels {
		t := compute/f + memory
		if t/base <= 1+bound {
			return f
		}
	}
	return 1
}

// DVFSResult summarizes a phase-based frequency-scaling run.
type DVFSResult struct {
	// AvgFrequency is the time-weighted average relative frequency.
	AvgFrequency float64
	// EnergySavings is the relative dynamic-energy reduction against
	// always running at full frequency.
	EnergySavings float64
	// Slowdown is the realized relative execution-time increase.
	Slowdown float64
}

// GroupedDVFS scales frequency per behavior label with the same
// learn-then-reuse discipline as cache resizing: the first two
// executions of each label run at full frequency while its
// memory-boundedness is measured (two, because the first runs on a
// cold cache and overstates memory time), and later executions use the
// frequency learned from the last warm trial.
func (m DVFSModel) GroupedDVFS(labels []int, wins []interval.Window, bound float64) DVFSResult {
	if len(labels) != len(wins) {
		panic("adapt: GroupedDVFS length mismatch")
	}
	type state struct {
		seen int
		f    float64
	}
	learned := make(map[int]*state)
	var baseTime, newTime, baseEnergy, newEnergy, freqTime float64
	for i, w := range wins {
		compute, memory := m.times(w)
		var f float64
		st := learned[labels[i]]
		if st == nil {
			st = &state{}
			learned[labels[i]] = st
		}
		if st.seen < 2 {
			st.f = m.Choose(compute, memory, bound)
			st.seen++
			f = 1
		} else {
			f = st.f
		}
		t := compute/f + memory
		baseTime += compute + memory
		newTime += t
		freqTime += f * t
		baseEnergy += compute // f = 1, f² = 1
		newEnergy += compute * f * f
	}
	r := DVFSResult{AvgFrequency: 1}
	if baseTime > 0 {
		r.Slowdown = newTime/baseTime - 1
	}
	if newTime > 0 {
		r.AvgFrequency = freqTime / newTime
	}
	if baseEnergy > 0 {
		r.EnergySavings = 1 - newEnergy/baseEnergy
	}
	return r
}
