// Package adapt implements the adaptive cache-resizing experiment of
// Section 3.2: choose, per execution window, the smallest cache size
// whose miss rate stays within a bound of the full-size (256KB) miss
// rate, and compare how well phase-, interval-, and BBV-based methods
// find that size. Exploration cost follows the paper's minimal-cost
// model: each exploration takes exactly two trial windows, one at the
// full cache size and one at half size, before the learned size is
// used.
package adapt

import (
	"lpp/internal/cache"
	"lpp/internal/interval"
)

// BestAssoc returns the smallest associativity (1..8, i.e. 32KB units)
// whose miss rate does not exceed the full-size miss rate by more than
// bound (relative): bound 0 asks for no miss increase, 0.05 allows 5%.
func BestAssoc(v cache.Vector, bound float64) int {
	full := v.MissAt(cache.MaxAssoc)
	limit := full * (1 + bound)
	const eps = 1e-12
	for a := 1; a <= cache.MaxAssoc; a++ {
		if v.MissAt(a) <= limit+eps {
			return a
		}
	}
	return cache.MaxAssoc
}

// Result summarizes one resizing run.
type Result struct {
	// AvgBytes is the access-weighted average cache size in bytes.
	AvgBytes float64
	// Explorations counts exploration episodes (two trial windows
	// each).
	Explorations int
	// MissIncrease is the relative increase in total misses over
	// always running at full size, for the learned (non-exploration)
	// windows — the steady-state cost of the chosen sizes.
	MissIncrease float64
}

const bytesPerAssoc = cache.DefaultSets << cache.DefaultBlockBits // 32KB

// score folds the per-window assigned associativities into a Result.
// Exploration trial windows count toward the average size but not the
// steady-state miss accounting.
func score(wins []interval.Window, assigned []int, explore []bool) Result {
	var bytesSum, lenSum float64
	var misses, fullMisses float64
	for i, w := range wins {
		l := float64(w.Len())
		bytesSum += float64(assigned[i]*bytesPerAssoc) * l
		lenSum += l
		if explore != nil && explore[i] {
			continue
		}
		misses += w.Loc.MissAt(assigned[i]) * l
		fullMisses += w.Loc.MissAt(cache.MaxAssoc) * l
	}
	r := Result{}
	if lenSum > 0 {
		r.AvgBytes = bytesSum / lenSum
	}
	if fullMisses > 0 {
		r.MissIncrease = misses/fullMisses - 1
	}
	return r
}

// exploreRuns is the paper's exploration cost: one window at full
// size, one at half size.
var exploreSizes = []int{cache.MaxAssoc, cache.MaxAssoc / 2}

// GroupedMethod resizes with a behavior label per window (phase IDs
// for the phase method, cluster IDs for the BBV method): the first two
// windows of each label are exploration trials; afterwards the label's
// learned size — the largest best-size seen during its exploration —
// is reused for every later window of that label.
func GroupedMethod(labels []int, wins []interval.Window, bound float64) Result {
	if len(labels) != len(wins) {
		panic("adapt: labels/windows length mismatch")
	}
	type state struct {
		seen    int
		learned int
	}
	groups := make(map[int]*state)
	assigned := make([]int, len(wins))
	explore := make([]bool, len(wins))
	explorations := 0
	for i, w := range wins {
		g := groups[labels[i]]
		if g == nil {
			g = &state{}
			groups[labels[i]] = g
			explorations++
		}
		if g.seen < len(exploreSizes) {
			assigned[i] = exploreSizes[g.seen]
			explore[i] = true
			if b := BestAssoc(w.Loc, bound); b > g.learned {
				g.learned = b
			}
			g.seen++
			continue
		}
		assigned[i] = g.learned
	}
	r := score(wins, assigned, explore)
	r.Explorations = explorations
	return r
}

// IntervalMethod resizes with fixed windows and the paper's idealized
// interval baseline: perfect phase-change detection (a change happens
// whenever the next window's best size differs from the current one),
// two exploration windows per change, then the best size until the
// next change.
func IntervalMethod(wins []interval.Window, bound float64) Result {
	assigned := make([]int, len(wins))
	explore := make([]bool, len(wins))
	explorations := 0
	i := 0
	cur := -1
	for i < len(wins) {
		best := BestAssoc(wins[i].Loc, bound)
		if best != cur {
			// Phase change: explore.
			explorations++
			for t := 0; t < len(exploreSizes) && i < len(wins); t++ {
				assigned[i] = exploreSizes[t]
				explore[i] = true
				i++
			}
			if i < len(wins) {
				cur = BestAssoc(wins[i].Loc, bound)
			}
			continue
		}
		assigned[i] = cur
		i++
	}
	r := score(wins, assigned, explore)
	r.Explorations = explorations
	return r
}

// FullSize returns the no-adaptation baseline: every window at 256KB.
func FullSize(wins []interval.Window) Result {
	assigned := make([]int, len(wins))
	for i := range assigned {
		assigned[i] = cache.MaxAssoc
	}
	return score(wins, assigned, nil)
}

// ClassPredictor is a next-window class predictor (interval.LastValue,
// interval.Markov, or any equivalent).
type ClassPredictor interface {
	Predict() (int, bool)
	Observe(class int)
}

// IntervalMethodPredicted is the interval method without the paper's
// idealization: instead of perfect phase-change detection, a real
// predictor forecasts the next window's best size and the window runs
// at the forecast size (full size while unprimed). Mispredictions cost
// real misses — the steady-state miss accounting includes every
// window, since there is no separate exploration here.
func IntervalMethodPredicted(wins []interval.Window, bound float64, pred ClassPredictor) Result {
	assigned := make([]int, len(wins))
	mispredictions := 0
	for i, w := range wins {
		best := BestAssoc(w.Loc, bound)
		if forecast, ok := pred.Predict(); ok {
			// Clamp defensively: classes fed in are 1..MaxAssoc,
			// but the predictor is caller-supplied.
			if forecast < 1 {
				forecast = 1
			}
			if forecast > cache.MaxAssoc {
				forecast = cache.MaxAssoc
			}
			assigned[i] = forecast
			if forecast != best {
				mispredictions++
			}
		} else {
			assigned[i] = cache.MaxAssoc
		}
		pred.Observe(best)
	}
	r := score(wins, assigned, nil)
	r.Explorations = mispredictions
	return r
}
