package adapt

import (
	"testing"
	"testing/quick"

	"lpp/internal/cache"
	"lpp/internal/interval"
	"lpp/internal/stats"
)

// randomWindows builds a window sequence with monotone (stack-
// inclusive) locality vectors, as a real LRU cache always produces.
func randomWindows(seed uint64, n int) ([]interval.Window, []int) {
	rng := stats.NewRNG(seed)
	wins := make([]interval.Window, n)
	labels := make([]int, n)
	for i := range wins {
		var v cache.Vector
		m := 0.05 + rng.Float64()*0.5
		for a := 0; a < cache.MaxAssoc; a++ {
			v[a] = m
			if rng.Intn(2) == 0 {
				m *= 0.5 + rng.Float64()*0.5 // non-increasing
			}
		}
		wins[i] = interval.Window{EndAccess: int64(100 + rng.Intn(1000)), Loc: v}
		labels[i] = rng.Intn(4)
	}
	return wins, labels
}

func TestPropertyAvgBytesWithinCacheRange(t *testing.T) {
	f := func(seed uint64, rawN uint8) bool {
		n := int(rawN)%60 + 1
		wins, labels := randomWindows(seed, n)
		for _, bound := range []float64{0, 0.05, 0.5} {
			for _, r := range []Result{
				GroupedMethod(labels, wins, bound),
				IntervalMethod(wins, bound),
			} {
				if r.AvgBytes < 32<<10-1 || r.AvgBytes > 256<<10+1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyBestAssocMonotoneInBound(t *testing.T) {
	// A looser miss bound never asks for a bigger cache.
	f := func(seed uint64) bool {
		wins, _ := randomWindows(seed, 20)
		for _, w := range wins {
			prev := cache.MaxAssoc + 1
			for _, bound := range []float64{0, 0.01, 0.05, 0.2, 1} {
				a := BestAssoc(w.Loc, bound)
				if a > prev {
					return false
				}
				prev = a
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyIdenticalWindowsNoMissIncrease(t *testing.T) {
	// When every window of a label behaves identically, the learned
	// size is exact and the steady-state miss increase at bound 0 is
	// zero.
	f := func(seed uint64, kneeRaw uint8) bool {
		knee := int(kneeRaw)%cache.MaxAssoc + 1
		var wins []interval.Window
		var labels []int
		for i := 0; i < 12; i++ {
			wins = append(wins, win(knee, 500))
			labels = append(labels, 0)
		}
		r := GroupedMethod(labels, wins, 0)
		return r.MissIncrease < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyEnergyNeverNegative(t *testing.T) {
	f := func(seed uint64, rawN uint8) bool {
		n := int(rawN)%40 + 1
		wins, labels := randomWindows(seed, n)
		assigned := make([]int, n)
		for i := range assigned {
			assigned[i] = labels[i]%cache.MaxAssoc + 1
		}
		return DefaultEnergyModel.Energy(wins, assigned) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
