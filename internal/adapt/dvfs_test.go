package adapt

import (
	"testing"

	"lpp/internal/cache"
	"lpp/internal/interval"
)

// memWin builds a window with the given full-size miss rate.
func memWin(miss float64, length int64) interval.Window {
	var v cache.Vector
	for i := range v {
		v[i] = miss
	}
	return interval.Window{EndAccess: length, Loc: v}
}

func TestDVFSChoose(t *testing.T) {
	m := DefaultDVFS
	// Pure compute: any slowdown bound below the level gap forces
	// full frequency.
	if f := m.Choose(1000, 0, 0.05); f != 1 {
		t.Errorf("compute-bound frequency = %g, want 1", f)
	}
	// Heavily memory-bound: compute is 1% of time; even half
	// frequency adds only ~1% — the lowest level qualifies.
	if f := m.Choose(10, 990, 0.05); f != 0.5 {
		t.Errorf("memory-bound frequency = %g, want 0.5", f)
	}
	// Empty window.
	if f := m.Choose(0, 0, 0); f != 1 {
		t.Errorf("empty choose = %g", f)
	}
}

func TestDVFSSlowdownBoundRespected(t *testing.T) {
	m := DefaultDVFS
	for _, tc := range []struct{ compute, memory float64 }{
		{1000, 0}, {500, 500}, {100, 900}, {10, 990},
	} {
		f := m.Choose(tc.compute, tc.memory, 0.05)
		base := tc.compute + tc.memory
		slow := (tc.compute/f + tc.memory) / base
		if slow > 1.05+1e-12 {
			t.Errorf("compute=%g memory=%g: f=%g slowdown %.4f > 1.05",
				tc.compute, tc.memory, f, slow)
		}
	}
}

func TestGroupedDVFSSavesOnMemoryBoundPhase(t *testing.T) {
	// Phase 0 memory-bound, phase 1 compute-bound, 10 executions
	// each.
	var wins []interval.Window
	var labels []int
	for i := 0; i < 10; i++ {
		wins = append(wins, memWin(0.5, 1000)) // very memory-bound
		labels = append(labels, 0)
		wins = append(wins, memWin(0, 1000)) // pure compute
		labels = append(labels, 1)
	}
	r := DefaultDVFS.GroupedDVFS(labels, wins, 0.05)
	if r.EnergySavings <= 0.1 {
		t.Errorf("energy savings = %g, want > 0.1", r.EnergySavings)
	}
	if r.Slowdown > 0.05+1e-9 {
		t.Errorf("slowdown = %g exceeds the 5%% bound", r.Slowdown)
	}
	if r.AvgFrequency >= 1 || r.AvgFrequency < 0.5 {
		t.Errorf("avg frequency = %g", r.AvgFrequency)
	}
}

func TestGroupedDVFSComputeBoundStaysFast(t *testing.T) {
	var wins []interval.Window
	var labels []int
	for i := 0; i < 10; i++ {
		wins = append(wins, memWin(0, 1000))
		labels = append(labels, 0)
	}
	r := DefaultDVFS.GroupedDVFS(labels, wins, 0.02)
	if r.AvgFrequency != 1 {
		t.Errorf("compute-bound avg frequency = %g, want 1", r.AvgFrequency)
	}
	if r.EnergySavings != 0 {
		t.Errorf("compute-bound savings = %g, want 0", r.EnergySavings)
	}
}

func TestGroupedDVFSMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	DefaultDVFS.GroupedDVFS([]int{0}, nil, 0)
}
