package adapt

import (
	"lpp/internal/cache"
	"lpp/internal/interval"
)

// EnergyModel converts a resizing run into cache energy, the quantity
// the paper's motivating studies optimize [2, 21]: dynamic energy per
// access grows with the active cache size (more ways searched), static
// leakage accrues per access-time-unit for the powered-on fraction,
// and every miss pays a fixed penalty for the memory access.
type EnergyModel struct {
	// DynamicPerWay is the per-access energy of searching one way.
	DynamicPerWay float64
	// LeakagePerWay is the per-access-tick leakage of keeping one
	// way powered.
	LeakagePerWay float64
	// MissEnergy is the energy of servicing one miss from memory.
	MissEnergy float64
}

// DefaultEnergyModel uses ratios typical of the era's studies: a miss
// costs ~50x a one-way access, leakage a tenth of dynamic.
var DefaultEnergyModel = EnergyModel{
	DynamicPerWay: 1,
	LeakagePerWay: 0.1,
	MissEnergy:    50,
}

// Energy returns the modeled energy of running the windows at the
// given per-window associativities.
func (m EnergyModel) Energy(wins []interval.Window, assigned []int) float64 {
	if len(wins) != len(assigned) {
		panic("adapt: Energy length mismatch")
	}
	var total float64
	for i, w := range wins {
		n := float64(w.Len())
		ways := float64(assigned[i])
		total += n * ways * m.DynamicPerWay
		total += n * ways * m.LeakagePerWay
		total += n * w.Loc.MissAt(assigned[i]) * m.MissEnergy
	}
	return total
}

// FullSizeEnergy returns the energy of running every window at the
// largest cache.
func (m EnergyModel) FullSizeEnergy(wins []interval.Window) float64 {
	assigned := make([]int, len(wins))
	for i := range assigned {
		assigned[i] = cache.MaxAssoc
	}
	return m.Energy(wins, assigned)
}

// Savings reports the relative energy saved by a grouped (phase or
// cluster) resizing run against always-full-size, using the same
// assignment rules as GroupedMethod.
func (m EnergyModel) Savings(labels []int, wins []interval.Window, bound float64) float64 {
	if len(labels) != len(wins) {
		panic("adapt: Savings length mismatch")
	}
	type state struct {
		seen    int
		learned int
	}
	groups := make(map[int]*state)
	assigned := make([]int, len(wins))
	for i, w := range wins {
		g := groups[labels[i]]
		if g == nil {
			g = &state{}
			groups[labels[i]] = g
		}
		if g.seen < len(exploreSizes) {
			assigned[i] = exploreSizes[g.seen]
			if b := BestAssoc(w.Loc, bound); b > g.learned {
				g.learned = b
			}
			g.seen++
			continue
		}
		assigned[i] = g.learned
	}
	full := m.FullSizeEnergy(wins)
	if full == 0 {
		return 0
	}
	return 1 - m.Energy(wins, assigned)/full
}
