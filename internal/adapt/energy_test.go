package adapt

import (
	"testing"

	"lpp/internal/interval"
)

func TestEnergyFullSizeBaseline(t *testing.T) {
	m := EnergyModel{DynamicPerWay: 1, LeakagePerWay: 0, MissEnergy: 0}
	wins := []interval.Window{win(3, 1000)}
	if got := m.FullSizeEnergy(wins); got != 1000*8 {
		t.Errorf("full-size energy = %g, want 8000", got)
	}
}

func TestEnergySmallerCacheSavesWhenMissesEqual(t *testing.T) {
	m := DefaultEnergyModel
	// Knee at 2: running at 2 ways has the same misses as 8 ways but
	// a quarter of the dynamic+leakage energy.
	wins := []interval.Window{win(2, 1000), win(2, 1000), win(2, 1000), win(2, 1000)}
	small := m.Energy(wins, []int{2, 2, 2, 2})
	full := m.FullSizeEnergy(wins)
	if small >= full {
		t.Errorf("smaller cache did not save energy: %g vs %g", small, full)
	}
}

func TestEnergyMissesCanOutweighSavings(t *testing.T) {
	m := EnergyModel{DynamicPerWay: 1, LeakagePerWay: 0, MissEnergy: 1000}
	// Knee at 8: shrinking to 1 way raises the miss rate a lot.
	wins := []interval.Window{win(8, 1000)}
	tiny := m.Energy(wins, []int{1})
	full := m.FullSizeEnergy(wins)
	if tiny <= full {
		t.Errorf("thrashing cache should cost more: %g vs %g", tiny, full)
	}
}

func TestEnergySavingsPhaseRun(t *testing.T) {
	// Two well-behaved phases with knees below full size: the phase
	// method must save energy.
	var wins []interval.Window
	var labels []int
	for i := 0; i < 20; i++ {
		wins = append(wins, win(2, 1000), win(4, 1000))
		labels = append(labels, 0, 1)
	}
	s := DefaultEnergyModel.Savings(labels, wins, 0)
	if s <= 0.2 {
		t.Errorf("savings = %g, want > 0.2", s)
	}
	if s >= 1 {
		t.Errorf("savings = %g, impossible", s)
	}
}

func TestEnergyMismatchPanics(t *testing.T) {
	for _, f := range []func(){
		func() { DefaultEnergyModel.Energy(nil, []int{1}) },
		func() { DefaultEnergyModel.Savings([]int{1}, nil, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
