package adapt

import (
	"math"
	"testing"

	"lpp/internal/cache"
	"lpp/internal/interval"
)

// vec builds a locality vector that reaches its floor miss rate at
// associativity `knee`: larger caches don't help beyond the knee.
func vec(knee int, floor float64) cache.Vector {
	var v cache.Vector
	for a := 1; a <= cache.MaxAssoc; a++ {
		if a >= knee {
			v[a-1] = floor
		} else {
			v[a-1] = floor + 0.1*float64(knee-a)
		}
	}
	return v
}

func win(knee int, length int64) interval.Window {
	return interval.Window{EndAccess: length, Loc: vec(knee, 0.02)}
}

func TestBestAssoc(t *testing.T) {
	if got := BestAssoc(vec(3, 0.02), 0); got != 3 {
		t.Errorf("BestAssoc = %d, want 3", got)
	}
	// A 5% bound admits the next smaller size if its miss rate is
	// within 5%.
	v := vec(3, 0.02)
	v[1] = 0.0209 // 4.5% above floor
	if got := BestAssoc(v, 0.05); got != 2 {
		t.Errorf("BestAssoc with 5%% bound = %d, want 2", got)
	}
	// Flat vector: direct-mapped suffices.
	if got := BestAssoc(vec(1, 0.1), 0); got != 1 {
		t.Errorf("flat vector BestAssoc = %d, want 1", got)
	}
}

func TestGroupedMethodLearnsPerPhase(t *testing.T) {
	// Two phases with knees at 2 and 6, alternating, 10 executions
	// each. After exploration the method should run phase A at 2 and
	// phase B at 6.
	var wins []interval.Window
	var labels []int
	for i := 0; i < 10; i++ {
		wins = append(wins, win(2, 1000), win(6, 1000))
		labels = append(labels, 0, 1)
	}
	r := GroupedMethod(labels, wins, 0)
	if r.Explorations != 2 {
		t.Errorf("explorations = %d, want 2", r.Explorations)
	}
	// 2 windows each at (8,4), then 8 at 2 and 8 at 6:
	wantAvg := float64((8+4+8+4+8*2+8*6)*bytesPerAssoc) / 20
	if math.Abs(r.AvgBytes-wantAvg) > 1 {
		t.Errorf("AvgBytes = %g, want %g", r.AvgBytes, wantAvg)
	}
	// Learned sizes are at the knee, so no miss increase.
	if r.MissIncrease > 1e-9 {
		t.Errorf("miss increase = %g, want 0", r.MissIncrease)
	}
}

func TestGroupedMethodMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	GroupedMethod([]int{0}, nil, 0)
}

func TestIntervalMethodStableRun(t *testing.T) {
	// Constant behavior: one exploration, then the best size
	// everywhere.
	var wins []interval.Window
	for i := 0; i < 12; i++ {
		wins = append(wins, win(3, 1000))
	}
	r := IntervalMethod(wins, 0)
	if r.Explorations != 1 {
		t.Errorf("explorations = %d, want 1", r.Explorations)
	}
	wantAvg := float64((8+4+10*3)*bytesPerAssoc) / 12
	if math.Abs(r.AvgBytes-wantAvg) > 1 {
		t.Errorf("AvgBytes = %g, want %g", r.AvgBytes, wantAvg)
	}
}

func TestIntervalMethodThrashingPaysExploration(t *testing.T) {
	// Best size changes every window: the method explores
	// constantly and the average stays near full size.
	var wins []interval.Window
	for i := 0; i < 20; i++ {
		knee := 2
		if i%2 == 1 {
			knee = 7
		}
		wins = append(wins, win(knee, 1000))
	}
	r := IntervalMethod(wins, 0)
	stable := GroupedMethod(alternatingLabels(20), wins, 0)
	if r.AvgBytes <= stable.AvgBytes {
		t.Errorf("thrashing interval method (%g) should cost more than phase method (%g)",
			r.AvgBytes, stable.AvgBytes)
	}
}

func alternatingLabels(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i % 2
	}
	return out
}

func TestFullSize(t *testing.T) {
	wins := []interval.Window{win(3, 1000), win(5, 1000)}
	r := FullSize(wins)
	if r.AvgBytes != float64(8*bytesPerAssoc) {
		t.Errorf("AvgBytes = %g, want 256KB", r.AvgBytes)
	}
	if r.MissIncrease != 0 {
		t.Errorf("full size miss increase = %g", r.MissIncrease)
	}
}

func TestScoreEmpty(t *testing.T) {
	r := score(nil, nil, nil)
	if r.AvgBytes != 0 || r.MissIncrease != 0 {
		t.Errorf("empty score = %+v", r)
	}
}

func TestIntervalMethodPredictedStableRun(t *testing.T) {
	// Constant behavior: last-value prediction becomes perfect after
	// the first window.
	var wins []interval.Window
	for i := 0; i < 12; i++ {
		wins = append(wins, win(3, 1000))
	}
	var lv interval.LastValue
	r := IntervalMethodPredicted(wins, 0, &lv)
	// First window at full size, the rest at the knee.
	wantAvg := float64((8+11*3)*bytesPerAssoc) / 12
	if math.Abs(r.AvgBytes-wantAvg) > 1 {
		t.Errorf("AvgBytes = %g, want %g", r.AvgBytes, wantAvg)
	}
	if r.MissIncrease > 1e-9 {
		t.Errorf("miss increase = %g, want 0", r.MissIncrease)
	}
	if r.Explorations != 0 {
		t.Errorf("mispredictions = %d, want 0", r.Explorations)
	}
}

func TestIntervalMethodPredictedAlternationPaysMisses(t *testing.T) {
	// Alternating best sizes: last-value mispredicts every window —
	// half the windows run too small (miss increase), half too large
	// (wasted space). The idealized method with perfect detection
	// avoids the miss increase entirely.
	var wins []interval.Window
	for i := 0; i < 20; i++ {
		knee := 2
		if i%2 == 1 {
			knee = 7
		}
		wins = append(wins, win(knee, 1000))
	}
	var lv interval.LastValue
	real := IntervalMethodPredicted(wins, 0, &lv)
	if real.Explorations < 15 {
		t.Errorf("mispredictions = %d, want ~19", real.Explorations)
	}
	if real.MissIncrease <= 0 {
		t.Errorf("real predictor should pay a miss increase, got %g", real.MissIncrease)
	}
	ideal := IntervalMethod(wins, 0)
	if ideal.MissIncrease > 1e-9 {
		t.Errorf("idealized method miss increase = %g", ideal.MissIncrease)
	}
}

func TestIntervalMethodPredictedMarkovLearnsPattern(t *testing.T) {
	// The same alternation is perfectly learnable by an order-1
	// Markov predictor.
	var wins []interval.Window
	for i := 0; i < 40; i++ {
		knee := 2
		if i%2 == 1 {
			knee = 7
		}
		wins = append(wins, win(knee, 1000))
	}
	m := interval.NewMarkov(1)
	r := IntervalMethodPredicted(wins, 0, m)
	// After one full period the table is learned: few mispredictions.
	if r.Explorations > 4 {
		t.Errorf("markov mispredictions = %d, want <= 4", r.Explorations)
	}
}
