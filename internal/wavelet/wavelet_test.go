package wavelet

import (
	"math"
	"testing"
	"testing/quick"

	"lpp/internal/stats"
)

var allFamilies = []Family{Haar, Daubechies4, Daubechies6}

func TestFilterOrthonormality(t *testing.T) {
	for _, f := range allFamilies {
		h := f.Scaling()
		var sum, sumSq float64
		for _, c := range h {
			sum += c
			sumSq += c * c
		}
		if math.Abs(sum-math.Sqrt2) > 1e-9 {
			t.Errorf("%v: scaling sum = %g, want √2", f, sum)
		}
		if math.Abs(sumSq-1) > 1e-9 {
			t.Errorf("%v: scaling energy = %g, want 1", f, sumSq)
		}
		g := f.Wavelet()
		var gsum, dot float64
		for k := range g {
			gsum += g[k]
			dot += g[k] * h[k]
		}
		if math.Abs(gsum) > 1e-9 {
			t.Errorf("%v: wavelet sum = %g, want 0", f, gsum)
		}
		if math.Abs(dot) > 1e-9 {
			t.Errorf("%v: <h,g> = %g, want 0", f, dot)
		}
	}
}

func TestFamilyString(t *testing.T) {
	if Haar.String() != "Haar" || Daubechies6.String() != "Daubechies-6" ||
		Daubechies4.String() != "Daubechies-4" || Family(99).String() != "unknown" {
		t.Error("unexpected family names")
	}
}

func TestForwardInversePerfectReconstruction(t *testing.T) {
	for _, f := range allFamilies {
		rng := stats.NewRNG(uint64(f) + 1)
		x := make([]float64, 64)
		for i := range x {
			x[i] = rng.Float64()*100 - 50
		}
		a, d := Forward(x, f)
		y := Inverse(a, d, f)
		for i := range x {
			if math.Abs(x[i]-y[i]) > 1e-9 {
				t.Fatalf("%v: reconstruction error at %d: %g vs %g", f, i, x[i], y[i])
			}
		}
	}
}

func TestForwardRejectsBadLength(t *testing.T) {
	for _, bad := range [][]float64{nil, {1, 2, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Forward(%v) should panic", bad)
				}
			}()
			Forward(bad, Haar)
		}()
	}
}

func TestInverseRejectsMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Inverse with mismatched lengths should panic")
		}
	}()
	Inverse([]float64{1}, []float64{1, 2}, Haar)
}

func TestHaarForwardKnownValues(t *testing.T) {
	a, d := Forward([]float64{1, 1, 4, 2}, Haar)
	r2 := math.Sqrt2
	wantA := []float64{2 / r2, 6 / r2}
	wantD := []float64{0, 2 / r2}
	for i := range wantA {
		if math.Abs(a[i]-wantA[i]) > 1e-12 || math.Abs(d[i]-wantD[i]) > 1e-12 {
			t.Fatalf("a=%v d=%v, want a=%v d=%v", a, d, wantA, wantD)
		}
	}
}

func TestTransformReconstructRoundTrip(t *testing.T) {
	f := func(seed uint64, rawLen uint8, levels uint8) bool {
		n := int(rawLen)%100 + 2
		lv := int(levels)%4 + 1
		rng := stats.NewRNG(seed)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64() * 10
		}
		for _, fam := range allFamilies {
			p := Transform(x, fam, lv)
			y := p.Reconstruct()
			if len(y) < n {
				return false
			}
			for i := 0; i < n; i++ {
				if math.Abs(x[i]-y[i]) > 1e-8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTransformLevelsShrink(t *testing.T) {
	x := make([]float64, 32)
	p := Transform(x, Haar, 3)
	if len(p.Details) != 3 {
		t.Fatalf("levels = %d, want 3", len(p.Details))
	}
	if len(p.Details[0]) != 16 || len(p.Details[1]) != 8 || len(p.Details[2]) != 4 {
		t.Errorf("detail lengths = %d,%d,%d", len(p.Details[0]), len(p.Details[1]), len(p.Details[2]))
	}
}

func TestReflect(t *testing.T) {
	// n=4: pattern 0 1 2 3 2 1 0 1 2 3 ...
	cases := map[int]int{-1: 1, 0: 0, 3: 3, 4: 2, 5: 1, 6: 0, 7: 1}
	for in, want := range cases {
		if got := reflect(in, 4); got != want {
			t.Errorf("reflect(%d,4) = %d, want %d", in, got, want)
		}
	}
	if reflect(5, 1) != 0 {
		t.Error("reflect with n=1 should return 0")
	}
}

func TestLevel1DetectsStep(t *testing.T) {
	// A step function: constant 10 then constant 1000. The largest
	// coefficient magnitude must sit at the step for every family.
	x := make([]float64, 64)
	for i := range x {
		if i < 32 {
			x[i] = 10
		} else {
			x[i] = 1000
		}
	}
	for _, f := range allFamilies {
		coefs := Level1(x, f)
		best, bestMag := -1, 0.0
		for i, c := range coefs {
			if m := math.Abs(c); m > bestMag {
				best, bestMag = i, m
			}
		}
		if best < 30 || best > 34 {
			t.Errorf("%v: peak coefficient at %d, want near 32", f, best)
		}
	}
}

func TestKeepIsolatesAbruptChange(t *testing.T) {
	// Gradual ramp plus one abrupt jump: only samples near the jump
	// survive the m+3δ rule (the MolDyn example, Figure 2).
	n := 256
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i) * 0.5 // gradual change
		if i >= 128 {
			x[i] += 5000 // abrupt global shift
		}
	}
	kept := KeptIndices(x, Daubechies6)
	if len(kept) == 0 {
		t.Fatal("abrupt change not detected")
	}
	for _, i := range kept {
		if i < 124 || i > 132 {
			t.Errorf("kept index %d far from the jump at 128", i)
		}
	}
}

func TestKeepRemovesLocalPeaks(t *testing.T) {
	// A small local peak on a noisy baseline must be filtered out
	// when a much larger global change is present ("it correctly
	// removes accesses that correspond to local peaks").
	n := 256
	rng := stats.NewRNG(5)
	x := make([]float64, n)
	for i := range x {
		x[i] = 100 + rng.Float64()
	}
	x[60] += 20 // local peak
	for i := 128; i < n; i++ {
		x[i] += 50000 // global phase change
	}
	kept := Keep(x, Daubechies6)
	if kept[60] {
		t.Error("local peak at 60 should be filtered out")
	}
	anyNearJump := false
	for i := 124; i < 132; i++ {
		if kept[i] {
			anyNearJump = true
		}
	}
	if !anyNearJump {
		t.Error("global change at 128 should be kept")
	}
}

func TestKeepShortAndFlatSignals(t *testing.T) {
	if k := Keep([]float64{1, 2}, Haar); k[0] || k[1] {
		t.Error("short signal should keep nothing")
	}
	flat := make([]float64, 50)
	for i := range flat {
		flat[i] = 7
	}
	for _, k := range Keep(flat, Daubechies6) {
		if k {
			t.Error("flat signal should keep nothing")
		}
	}
	if Keep(nil, Haar) == nil {
		// fine: zero-length output
	} else if len(Keep(nil, Haar)) != 0 {
		t.Error("nil signal should produce empty keeps")
	}
}

func TestLevel1Empty(t *testing.T) {
	if Level1(nil, Haar) != nil {
		t.Error("Level1(nil) should be nil")
	}
}

func BenchmarkLevel1D6(b *testing.B) {
	x := make([]float64, 4096)
	rng := stats.NewRNG(1)
	for i := range x {
		x[i] = rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Level1(x, Daubechies6)
	}
}

func TestLevelKDetectsStepAtHigherLevels(t *testing.T) {
	// The step must dominate the coefficient field at levels 1..4
	// (the levels the paper experimented with).
	x := make([]float64, 128)
	for i := range x {
		if i >= 64 {
			x[i] = 1000
		} else {
			x[i] = 10
		}
	}
	for level := 1; level <= 4; level++ {
		coefs := LevelK(x, Daubechies6, level)
		best, bestMag := -1, 0.0
		for i, c := range coefs {
			if m := math.Abs(c); m > bestMag {
				best, bestMag = i, m
			}
		}
		// Higher levels blur the location; tolerance grows with
		// the filter's effective support.
		tol := 4 * (1 << (level - 1))
		if best < 64-tol || best > 64+tol {
			t.Errorf("level %d: peak at %d, want near 64 (±%d)", level, best, tol)
		}
	}
}

func TestKeepLevelOneAdequate(t *testing.T) {
	// The paper's finding: level-1 filtering suffices — higher
	// levels keep a similar (slightly blurrier) set around the same
	// abrupt change.
	n := 256
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i) * 0.5
		if i >= 128 {
			x[i] += 5000
		}
	}
	k1 := KeptIndices(x, Daubechies6)
	if len(k1) == 0 {
		t.Fatal("level 1 kept nothing")
	}
	var k2 []int
	for i, k := range KeepLevel(x, Daubechies6, 2) {
		if k {
			k2 = append(k2, i)
		}
	}
	if len(k2) == 0 {
		t.Fatal("level 2 kept nothing")
	}
	// Both concentrate near the jump at 128.
	for _, set := range [][]int{k1, k2} {
		for _, i := range set {
			if i < 118 || i > 138 {
				t.Errorf("kept index %d far from the jump", i)
			}
		}
	}
}

func TestLevelKDegenerateArgs(t *testing.T) {
	if LevelK(nil, Haar, 3) != nil {
		t.Error("empty signal should be nil")
	}
	// level < 1 clamps to 1.
	x := []float64{1, 2, 3, 4}
	a := LevelK(x, Haar, 0)
	b := Level1(x, Haar)
	for i := range a {
		if a[i] != b[i] {
			t.Error("level 0 should behave as level 1")
		}
	}
}
