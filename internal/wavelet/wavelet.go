// Package wavelet implements the Discrete Wavelet Transform used in
// Section 2.2.2 of the paper to expose abrupt changes in per-datum
// reuse-distance sub-traces. Three orthonormal families are provided —
// Haar, Daubechies-4, and Daubechies-6 (the family the paper uses) —
// together with a decimated multi-level DWT (with perfect
// reconstruction, used for testing), an undecimated level-1 transform
// that produces one detail coefficient per sample, and the m+3δ filter
// rule that keeps only statistically significant coefficients.
package wavelet

import "math"

// Family is an orthonormal wavelet filter family.
type Family int

// Supported families.
const (
	Haar Family = iota
	Daubechies4
	Daubechies6
)

// String returns the family name.
func (f Family) String() string {
	switch f {
	case Haar:
		return "Haar"
	case Daubechies4:
		return "Daubechies-4"
	case Daubechies6:
		return "Daubechies-6"
	}
	return "unknown"
}

var (
	sqrt2     = math.Sqrt2
	haarH     = []float64{1 / sqrt2, 1 / sqrt2}
	d4H       = []float64{(1 + math.Sqrt(3)) / (4 * sqrt2), (3 + math.Sqrt(3)) / (4 * sqrt2), (3 - math.Sqrt(3)) / (4 * sqrt2), (1 - math.Sqrt(3)) / (4 * sqrt2)}
	d6H       = []float64{0.3326705529500825, 0.8068915093110924, 0.4598775021184914, -0.13501102001025458, -0.08544127388202666, 0.03522629188570953}
	familyTap = map[Family][]float64{Haar: haarH, Daubechies4: d4H, Daubechies6: d6H}
)

// Scaling returns a copy of the family's scaling (low-pass) filter h.
func (f Family) Scaling() []float64 {
	h, ok := familyTap[f]
	if !ok {
		panic("wavelet: unknown family")
	}
	out := make([]float64, len(h))
	copy(out, h)
	return out
}

// Wavelet returns the family's wavelet (high-pass) filter g, derived
// from the scaling filter by the quadrature-mirror relation
// g[k] = (-1)^k h[L-1-k].
func (f Family) Wavelet() []float64 {
	h := f.Scaling()
	L := len(h)
	g := make([]float64, L)
	for k := 0; k < L; k++ {
		g[k] = h[L-1-k]
		if k%2 == 1 {
			g[k] = -g[k]
		}
	}
	return g
}

// Forward computes one decimated DWT level with periodic extension,
// returning the approximation (scaling) and detail (wavelet)
// coefficients. The input length must be even and positive.
func Forward(x []float64, f Family) (approx, detail []float64) {
	n := len(x)
	if n == 0 || n%2 != 0 {
		panic("wavelet: Forward needs positive even length")
	}
	h, g := f.Scaling(), f.Wavelet()
	half := n / 2
	approx = make([]float64, half)
	detail = make([]float64, half)
	for i := 0; i < half; i++ {
		var a, d float64
		for k := range h {
			v := x[(2*i+k)%n]
			a += h[k] * v
			d += g[k] * v
		}
		approx[i] = a
		detail[i] = d
	}
	return approx, detail
}

// Inverse reconstructs the signal from one decimated level produced by
// Forward with the same family.
func Inverse(approx, detail []float64, f Family) []float64 {
	if len(approx) != len(detail) {
		panic("wavelet: Inverse needs equal-length coefficient slices")
	}
	h, g := f.Scaling(), f.Wavelet()
	half := len(approx)
	n := 2 * half
	x := make([]float64, n)
	for i := 0; i < half; i++ {
		for k := range h {
			x[(2*i+k)%n] += h[k]*approx[i] + g[k]*detail[i]
		}
	}
	return x
}

// Pyramid is a full multi-level decimated DWT: Details[l] holds the
// detail coefficients of level l+1 and Approx the coarsest
// approximation.
type Pyramid struct {
	Family  Family
	Details [][]float64
	Approx  []float64
}

// Transform computes up to levels decimated DWT levels (fewer if the
// signal becomes too short to halve). The input is padded by repeating
// the last sample when its length is odd.
func Transform(x []float64, f Family, levels int) Pyramid {
	cur := padEven(x)
	p := Pyramid{Family: f}
	for l := 0; l < levels && len(cur) >= 2; l++ {
		a, d := Forward(cur, f)
		p.Details = append(p.Details, d)
		cur = padEven(a)
	}
	p.Approx = cur
	return p
}

// Reconstruct inverts a Pyramid back to a signal (whose length may
// include the even-padding samples added by Transform).
func (p Pyramid) Reconstruct() []float64 {
	cur := p.Approx
	for l := len(p.Details) - 1; l >= 0; l-- {
		d := p.Details[l]
		// Transform may have padded the approximation after this
		// level was produced; trim back to the detail length.
		cur = cur[:len(d)]
		cur = Inverse(cur, d, p.Family)
	}
	return cur
}

func padEven(x []float64) []float64 {
	if len(x)%2 == 0 {
		return x
	}
	out := make([]float64, len(x)+1)
	copy(out, x)
	out[len(x)] = x[len(x)-1]
	return out
}
