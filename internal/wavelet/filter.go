package wavelet

import (
	"lpp/internal/stats"
)

// Level1 computes the undecimated level-1 detail coefficient at every
// sample position using symmetric boundary extension, so each access in
// a sub-trace gets its own coefficient — the form the paper's filtering
// step needs ("computes the level-1 coefficient for each access").
func Level1(x []float64, f Family) []float64 {
	return LevelK(x, f, 1)
}

// LevelK computes the undecimated (à trous) detail coefficients of
// level k ≥ 1: the scaling filter smooths the signal k-1 times with
// filter taps spaced 2^(j-1) apart, then the wavelet filter produces
// the detail. The paper "experimented with coefficients of the next
// four levels and found the level-1 coefficient adequate"; this makes
// that experiment reproducible.
func LevelK(x []float64, f Family, level int) []float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if level < 1 {
		level = 1
	}
	h, g := f.Scaling(), f.Wavelet()
	approx := append([]float64(nil), x...)
	spacing := 1
	for j := 1; j < level; j++ {
		approx = convolveSpaced(approx, h, spacing)
		spacing *= 2
	}
	return convolveSpaced(approx, g, spacing)
}

// convolveSpaced applies filter taps spaced `spacing` apart with
// symmetric extension, centering the filter on each sample.
func convolveSpaced(x, filt []float64, spacing int) []float64 {
	n := len(x)
	off := (len(filt) / 2) * spacing
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		var v float64
		for k := range filt {
			v += filt[k] * x[reflect(i+k*spacing-off, n)]
		}
		out[i] = v
	}
	return out
}

// reflect maps an out-of-range index into [0, n) by symmetric
// (mirror) extension: ... x2 x1 | x0 x1 x2 ... x_{n-1} | x_{n-2} ...
func reflect(i, n int) int {
	if n == 1 {
		return 0
	}
	period := 2 * (n - 1)
	i %= period
	if i < 0 {
		i += period
	}
	if i >= n {
		i = period - i
	}
	return i
}

// Keep reports which samples of x survive the paper's filter rule: a
// sample is kept only when the magnitude of its level-1 wavelet
// coefficient ω satisfies ω > m + 3δ, where m and δ are the mean and
// standard deviation of the coefficient magnitudes. Gradual changes and
// local peaks produce small coefficients and are removed; abrupt global
// changes survive. Signals shorter than 3 samples produce no keeps (no
// statistics to compare against).
func Keep(x []float64, f Family) []bool {
	return KeepLevel(x, f, 1)
}

// KeepLevel is Keep using the level-k coefficients.
func KeepLevel(x []float64, f Family, level int) []bool {
	kept := make([]bool, len(x))
	if len(x) < 3 {
		return kept
	}
	coefs := LevelK(x, f, level)
	mags := make([]float64, len(coefs))
	for i, c := range coefs {
		if c < 0 {
			c = -c
		}
		mags[i] = c
	}
	m := stats.Mean(mags)
	d := stats.StdDev(mags)
	threshold := m + 3*d
	if d == 0 {
		// A perfectly uniform coefficient field has no abrupt
		// change at all.
		return kept
	}
	for i, mag := range mags {
		if mag > threshold {
			kept[i] = true
		}
	}
	return kept
}

// KeptIndices returns the indices for which Keep is true.
func KeptIndices(x []float64, f Family) []int {
	var out []int
	for i, k := range Keep(x, f) {
		if k {
			out = append(out, i)
		}
	}
	return out
}
