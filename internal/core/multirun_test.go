package core

import (
	"testing"

	"lpp/internal/predictor"
	"lpp/internal/trace"
	"lpp/internal/workload"
)

func TestDetectMultiAgreementKeepsEverything(t *testing.T) {
	// Tomcatv's markers are input-independent: two different
	// training inputs select the same blocks, so correlation changes
	// nothing.
	spec, _ := workload.ByName("tomcatv")
	det, err := DetectMulti([]trace.Runner{
		spec.Make(workload.Params{N: 48, Steps: 6, Seed: 1}),
		spec.Make(workload.Params{N: 64, Steps: 5, Seed: 3}),
	}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if det.Selection.PhaseCount != 5 {
		t.Errorf("phases = %d, want 5", det.Selection.PhaseCount)
	}
	rep := Predict(spec.Make(workload.Params{N: 96, Steps: 10, Seed: 2}), det, predictor.Strict)
	if rep.Accuracy < 0.999 {
		t.Errorf("accuracy = %.3f", rep.Accuracy)
	}
}

func TestDetectMultiSingleRun(t *testing.T) {
	spec, _ := workload.ByName("swim")
	det, err := DetectMulti([]trace.Runner{
		spec.Make(workload.Params{N: 48, Steps: 6, Seed: 1}),
	}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if det.Selection.PhaseCount != 3 {
		t.Errorf("phases = %d, want 3", det.Selection.PhaseCount)
	}
}

func TestDetectMultiEmpty(t *testing.T) {
	if _, err := DetectMulti(nil, DefaultConfig()); err == nil {
		t.Error("expected error for no runs")
	}
}

func TestDetectMultiDisjointPrograms(t *testing.T) {
	// Two different programs share no marker blocks: correlation
	// must fail loudly rather than produce an empty marker set.
	tom, _ := workload.ByName("tomcatv")
	swim, _ := workload.ByName("swim")
	_, err := DetectMulti([]trace.Runner{
		tom.Make(workload.Params{N: 48, Steps: 6, Seed: 1}),
		swim.Make(workload.Params{N: 48, Steps: 6, Seed: 1}),
	}, DefaultConfig())
	if err == nil {
		t.Error("expected error when no markers survive")
	}
}

func TestDetectMultiFiltersInputDependentMarker(t *testing.T) {
	// A synthetic program whose phase structure includes a marker
	// block that only appears under odd seeds: correlating an odd-
	// and an even-seed run must drop it.
	mk := func(hasExtra bool) trace.Runner {
		return trace.RunnerFunc(func(ins trace.Instrumenter) {
			addr := trace.Addr(0)
			emit := func(id trace.BlockID, accs int) {
				ins.Block(id, 2+accs)
				for a := 0; a < accs; a++ {
					ins.Access(addr % (1 << 14))
					addr += 64
				}
			}
			for step := 0; step < 8; step++ {
				emit(1, 0)
				for b := 0; b < 50; b++ {
					emit(100, 40)
				}
				if hasExtra {
					emit(2, 0) // input-dependent boundary block
				}
				for b := 0; b < 50; b++ {
					emit(101, 40)
				}
			}
		})
	}
	cfg := DefaultConfig()
	det, err := DetectMulti([]trace.Runner{mk(true), mk(false)}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := det.Selection.Markers[2]; ok {
		t.Errorf("input-dependent block 2 survived correlation: %v", det.Selection.Markers)
	}
	if _, ok := det.Selection.Markers[1]; !ok {
		t.Errorf("stable marker 1 lost: %v", det.Selection.Markers)
	}
}
