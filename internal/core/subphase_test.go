package core

import (
	"testing"

	"lpp/internal/workload"
)

// TestSubPhasesMolDynParticleSearch reproduces the paper's flagship
// refinement case: within MolDyn's neighbor-list phase, each
// per-particle search is its own (small) phase — which is exactly why
// the automatic analysis disagrees with the programmer's coarse
// marking in Table 6.
func TestSubPhasesMolDynParticleSearch(t *testing.T) {
	spec, _ := workload.ByName("moldyn")
	train := workload.Params{N: 200, Steps: 6, Seed: 1}
	det, err := Detect(spec.Make(train), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	subs, err := DetectSubPhases(spec.Make(train), det, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) == 0 {
		t.Fatal("no sub-phases found in any phase")
	}
	// At least one parent must split into far more executions than
	// it has segments (the per-particle searches).
	best := 0
	for _, s := range subs {
		if n := len(s.Selection.Regions); n > best {
			best = n
		}
		if s.Hierarchy == nil {
			t.Error("sub-phase hierarchy missing")
		}
	}
	if best < 20 {
		t.Errorf("largest refinement has %d executions, want many (per-particle)", best)
	}
}

func TestSubPhasesTomcatvMostlyAtomic(t *testing.T) {
	// Tomcatv's substeps are tight row loops; refinement should find
	// at most the correction-revisit fragments, never explode.
	spec, _ := workload.ByName("tomcatv")
	train := workload.Params{N: 48, Steps: 6, Seed: 1}
	det, err := Detect(spec.Make(train), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	subs, err := DetectSubPhases(spec.Make(train), det, 8)
	if err != nil {
		t.Fatal(err)
	}
	for ph, s := range subs {
		if s.Selection.PhaseCount > 8 {
			t.Errorf("phase %d over-refined into %d sub-phases", ph, s.Selection.PhaseCount)
		}
	}
}

func TestSubPhasesDegenerateDivisor(t *testing.T) {
	spec, _ := workload.ByName("swim")
	train := workload.Params{N: 32, Steps: 4, Seed: 1}
	det, err := Detect(spec.Make(train), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// divisor <= 1 takes the default; must not error.
	if _, err := DetectSubPhases(spec.Make(train), det, 0); err != nil {
		t.Fatal(err)
	}
}
