package core

import (
	"os"
	"testing"

	"lpp/internal/predictor"
	"lpp/internal/workload"
)

// TestFullScalePipeline runs detection and prediction at the full
// input sizes of DESIGN.md. It takes tens of seconds, so it only runs
// when LPP_FULL is set:
//
//	LPP_FULL=1 go test ./internal/core -run TestFullScalePipeline -v
func TestFullScalePipeline(t *testing.T) {
	if os.Getenv("LPP_FULL") == "" {
		t.Skip("set LPP_FULL=1 to run the full-scale pipeline test")
	}
	want := map[string]int{
		"fft": 3, "applu": 4, "compress": 3, "tomcatv": 5,
		"swim": 3, "mesh": 2, "moldyn": 3,
	}
	for _, spec := range workload.Predictable() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			det, err := Detect(spec.Make(spec.Train), DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if det.Selection.PhaseCount != want[spec.Name] {
				t.Errorf("phases = %d, want %d (hierarchy %v)",
					det.Selection.PhaseCount, want[spec.Name], det.Hierarchy)
			}
			rep := Predict(spec.Make(spec.Ref), det, predictor.Strict)
			if rep.Accuracy < 0.92 {
				t.Errorf("strict accuracy = %.3f", rep.Accuracy)
			}
			if spec.Name != "moldyn" && rep.Coverage < 0.75 {
				t.Errorf("strict coverage = %.3f", rep.Coverage)
			}
		})
	}
}
