package core

import (
	"sync"
	"testing"

	"lpp/internal/predictor"
	"lpp/internal/workload"
)

// TestDetectPredictConcurrent verifies the library has no hidden
// shared state: detections and predictions for different programs can
// run in parallel (as cmd/lppbench -j does) and produce the same
// results as serial runs.
func TestDetectPredictConcurrent(t *testing.T) {
	cases := pipelineCases()[:4]

	type outcome struct {
		phases   int
		accuracy float64
		coverage float64
	}
	run := func(c pipelineCase) outcome {
		spec, _ := workload.ByName(c.name)
		det, err := Detect(spec.Make(c.train), DefaultConfig())
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			return outcome{}
		}
		rep := Predict(spec.Make(c.ref), det, predictor.Strict)
		return outcome{det.Selection.PhaseCount, rep.Accuracy, rep.Coverage}
	}

	serial := make([]outcome, len(cases))
	for i, c := range cases {
		serial[i] = run(c)
	}

	parallel := make([]outcome, len(cases))
	var wg sync.WaitGroup
	for i, c := range cases {
		wg.Add(1)
		go func(i int, c pipelineCase) {
			defer wg.Done()
			parallel[i] = run(c)
		}(i, c)
	}
	wg.Wait()

	for i := range cases {
		if serial[i] != parallel[i] {
			t.Errorf("%s: concurrent run differs: %+v vs %+v",
				cases[i].name, serial[i], parallel[i])
		}
	}
}
