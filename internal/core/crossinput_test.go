package core

import (
	"math"
	"testing"

	"lpp/internal/predictor"
	"lpp/internal/trace"
	"lpp/internal/workload"
)

// TestCrossInputConsistency pins the paper's opening claim: "Given a
// different input ... the locality of the new simulation may change
// radically but it will be consistent within the same execution." One
// training run's markers predict *any* input's execution, because
// phase identity lives in the code while phase behavior is re-learned
// per run.
func TestCrossInputConsistency(t *testing.T) {
	spec, _ := workload.ByName("tomcatv")
	det, err := Detect(spec.Make(workload.Params{N: 48, Steps: 6, Seed: 1}), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	inputs := []workload.Params{
		{N: 64, Steps: 8, Seed: 9},
		{N: 96, Steps: 8, Seed: 10},
		{N: 160, Steps: 8, Seed: 11},
	}
	var phaseLens []float64
	for _, in := range inputs {
		rep := Predict(spec.Make(in), det, predictor.Strict)
		if rep.Accuracy < 0.999 {
			t.Errorf("N=%d: strict accuracy %.3f — within-run consistency broken", in.N, rep.Accuracy)
		}
		if rep.PhaseCount() != 5 {
			t.Errorf("N=%d: phases = %d, want 5", in.N, rep.PhaseCount())
		}
		_, avg := rep.LeafStats()
		phaseLens = append(phaseLens, avg)
	}
	// Across inputs the phase length must change radically (with N²).
	if phaseLens[2] < 4*phaseLens[0] {
		t.Errorf("phase length did not scale across inputs: %v", phaseLens)
	}
}

// TestCrossInputLocalityDiffers: the same phase has different locality
// on different inputs (so nothing is hard-coded), while staying
// identical within each run.
func TestCrossInputLocalityDiffers(t *testing.T) {
	spec, _ := workload.ByName("compress")
	det, err := Detect(spec.Make(workload.Params{N: 8192, Steps: 5, Seed: 1}), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	repA := Predict(spec.Make(workload.Params{N: 16384, Steps: 6, Seed: 2}), det, predictor.Relaxed)
	repB := Predict(spec.Make(workload.Params{N: 65536, Steps: 6, Seed: 3}), det, predictor.Relaxed)
	if repA.LocalitySpread() > 1e-6 || repB.LocalitySpread() > 1e-6 {
		t.Error("within-run locality must stay identical")
	}
	// Compare the steady-state 32KB miss rate of the compression
	// phase across inputs: the larger buffer misses more.
	missOf := func(rep *RunReport) float64 {
		var worst float64
		for _, vs := range rep.PhaseLocality {
			for _, v := range vs[1:] {
				if m := v.MissAt(1); m > worst {
					worst = m
				}
			}
		}
		return worst
	}
	a, b := missOf(repA), missOf(repB)
	if math.Abs(a-b) < 1e-4 {
		t.Errorf("different inputs produced identical locality (%g vs %g)", a, b)
	}
}

// TestPredictWithForeignMarkers: markers from one program applied to
// another never fire; the report must stay sane (no executions, no
// predictions, zero coverage) rather than panicking.
func TestPredictWithForeignMarkers(t *testing.T) {
	tom, _ := workload.ByName("tomcatv")
	det, err := Detect(tom.Make(workload.Params{N: 48, Steps: 6, Seed: 1}), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	swim, _ := workload.ByName("swim")
	rep := Predict(swim.Make(workload.Params{N: 32, Steps: 3, Seed: 1}), det, predictor.Strict)
	if len(rep.Executions) != 0 {
		t.Errorf("foreign markers fired %d times", len(rep.Executions))
	}
	if rep.Coverage != 0 || rep.Predictions != 0 {
		t.Errorf("coverage=%g predictions=%d, want 0", rep.Coverage, rep.Predictions)
	}
	if rep.Instructions == 0 {
		t.Error("the run itself must still be measured")
	}
}

// TestPredictEmptyProgram: predicting a program that emits nothing is
// a no-op, not a crash.
func TestPredictEmptyProgram(t *testing.T) {
	spec, _ := workload.ByName("tomcatv")
	det, err := Detect(spec.Make(workload.Params{N: 48, Steps: 6, Seed: 1}), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep := Predict(trace.RunnerFunc(func(trace.Instrumenter) {}), det, predictor.Relaxed)
	if len(rep.Executions) != 0 || rep.Instructions != 0 {
		t.Errorf("empty program produced %+v", rep)
	}
}
