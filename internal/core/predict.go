package core

import (
	"sort"

	"lpp/internal/cache"
	"lpp/internal/marker"
	"lpp/internal/phase"
	"lpp/internal/predictor"
	"lpp/internal/trace"
)

// RunReport summarizes one predicted (marked) execution.
type RunReport struct {
	Policy predictor.Policy

	// Accuracy is the fraction of length predictions that were
	// correct; Coverage is the fraction of the run's instructions
	// spent in predicted phase executions (Table 2).
	Accuracy float64
	Coverage float64

	// NextPhaseAccuracy scores the hierarchy automaton's next-phase
	// predictions; NextPhaseResyncs counts deviations from the
	// hierarchy.
	NextPhaseAccuracy float64
	NextPhaseResyncs  int64

	// Executions are every observed phase execution in order, with
	// measured locality.
	Executions []predictor.Execution

	// PhaseLocality and PhaseWeights feed the Table 4 statistics.
	PhaseLocality map[marker.PhaseID][]cache.Vector
	PhaseWeights  map[marker.PhaseID]int64
	PhaseLengths  map[marker.PhaseID][]int64

	// Predictions counts the length predictions actually made.
	Predictions int64

	// InconsistentPhases counts phases the detection flagged as
	// unpredictable (their executions are never predicted).
	InconsistentPhases int

	// Run totals.
	Instructions int64
	Accesses     int64
}

// Predict executes prog with the detection's markers installed (the
// binary-rewriting substitute), measuring each phase execution's
// locality with the multi-size cache simulator and scoring length
// predictions under the given policy.
func Predict(prog trace.Runner, det *Detection, policy predictor.Policy) *RunReport {
	return PredictAll(prog, det, policy)[0]
}

// PredictAll is Predict for several policies over a single execution:
// the program runs once and every policy's predictor scores the same
// stream of phase executions.
func PredictAll(prog trace.Runner, det *Detection, policies ...predictor.Policy) []*RunReport {
	return PredictAllWith(prog, det, nil, policies...)
}

// PredictAllWith is PredictAll with a phase-event tap: the events the
// predicted run already synthesizes at each marker are delivered to
// sink as the canonical phase.Event stream, so the offline pipeline
// drives the same run-time consumers as the streaming service. Per
// marker, a BoundaryDetected carries the ended execution's measured
// locality (the first marker ends the unmarked prelude as Phase -1),
// followed by a PhasePredicted when the hierarchy automaton uniquely
// determines the phase now beginning; at end of run one PhaseProfile
// per phase summarizes its total instructions and mean locality. The
// final partial execution ends at program exit, not a marker, so no
// boundary is emitted for it.
//
// Consume errors are ignored here; callers wanting per-consumer error
// isolation and counts pass a *phase.Chain. A nil sink is PredictAll.
func PredictAllWith(prog trace.Runner, det *Detection, sink phase.Consumer, policies ...predictor.Policy) []*RunReport {
	sim := cache.NewDefault()
	preds := make([]*predictor.Predictor, len(policies))
	for i, p := range policies {
		preds[i] = predictor.New(p)
	}
	next := predictor.NewNextPhase(det.Hierarchy)

	emit := func(ev phase.Event) {
		if sink != nil {
			_ = sink.Consume(ev)
		}
	}

	type openPhase struct {
		phase      marker.PhaseID
		startInstr int64
		startAcc   int64
		snap       cache.Snapshot
	}
	var cur openPhase
	open := false
	var execs []predictor.Execution

	var ins *marker.Instrumented
	onMarker := func(ph marker.PhaseID, acc, instr int64) {
		if open {
			loc, _ := sim.Since(cur.snap)
			e := predictor.Execution{
				Phase:        cur.phase,
				Instructions: instr - cur.startInstr,
				Accesses:     acc - cur.startAcc,
				Locality:     loc,
			}
			for _, p := range preds {
				p.Complete(e)
			}
			execs = append(execs, e)
			emit(phase.Event{
				Kind:         phase.BoundaryDetected,
				Time:         acc,
				Instructions: instr,
				Phase:        int(cur.phase),
				Locality:     e.Locality,
			})
		} else {
			// The unmarked prelude before the first marker: consumers
			// advance their clocks past it but learn nothing.
			emit(phase.Event{
				Kind:         phase.BoundaryDetected,
				Time:         acc,
				Instructions: instr,
				Phase:        -1,
			})
		}
		if pred, ok := next.Predict(); ok {
			emit(phase.Event{
				Kind:         phase.PhasePredicted,
				Time:         acc,
				Instructions: instr,
				Phase:        pred,
			})
		}
		next.Observe(int(ph))
		// The inconsistency flag (Section 3.1.2): phases whose
		// training behavior was input-dependent are never predicted,
		// avoiding false predictions.
		if det.PhaseConsistent == nil || det.PhaseConsistent[ph] {
			for _, p := range preds {
				p.Begin(ph)
			}
		}
		cur = openPhase{phase: ph, startInstr: instr, startAcc: acc, snap: sim.Snapshot()}
		open = true
	}
	ins = marker.NewInstrumented(det.Selection.Markers, sim, onMarker)
	prog.Run(ins)
	if open {
		loc, _ := sim.Since(cur.snap)
		e := predictor.Execution{
			Phase:        cur.phase,
			Instructions: ins.Instructions() - cur.startInstr,
			Accesses:     ins.Accesses() - cur.startAcc,
			Locality:     loc,
			Partial:      true, // ends at program exit, not a marker
		}
		for _, p := range preds {
			p.Complete(e)
		}
		execs = append(execs, e)
	}
	emitProfiles(emit, execs, ins.Accesses(), ins.Instructions())

	inconsistent := 0
	for _, ok := range det.PhaseConsistent {
		if !ok {
			inconsistent++
		}
	}
	out := make([]*RunReport, len(policies))
	for i, p := range preds {
		out[i] = &RunReport{
			Policy:             policies[i],
			Accuracy:           p.Accuracy(),
			Coverage:           p.Coverage(ins.Instructions()),
			NextPhaseAccuracy:  next.Accuracy(),
			NextPhaseResyncs:   next.Resyncs(),
			Executions:         execs,
			PhaseLocality:      p.PhaseLocality(),
			PhaseWeights:       p.PhaseWeights(),
			PhaseLengths:       p.PhaseLengths(),
			Predictions:        p.Predictions(),
			InconsistentPhases: inconsistent,
			Instructions:       ins.Instructions(),
			Accesses:           ins.Accesses(),
		}
	}
	return out
}

// emitProfiles ends the event stream with one PhaseProfile per phase,
// in ascending phase order: total instructions over the phase's
// complete executions and their mean locality. Partial executions
// include teardown code, so they are excluded as everywhere else.
func emitProfiles(emit func(phase.Event), execs []predictor.Execution, acc, instr int64) {
	type profile struct {
		instrs int64
		loc    cache.Vector
		n      int64
	}
	profiles := make(map[marker.PhaseID]*profile)
	for _, e := range execs {
		if e.Partial {
			continue
		}
		p := profiles[e.Phase]
		if p == nil {
			p = &profile{}
			profiles[e.Phase] = p
		}
		p.instrs += e.Instructions
		for i, v := range e.Locality {
			p.loc[i] += v
		}
		p.n++
	}
	ids := make([]marker.PhaseID, 0, len(profiles))
	for id := range profiles {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		p := profiles[id]
		loc := p.loc
		for i := range loc {
			loc[i] /= float64(p.n)
		}
		emit(phase.Event{
			Kind:         phase.PhaseProfile,
			Time:         acc,
			Instructions: p.instrs,
			Phase:        int(id),
			Locality:     loc,
		})
	}
}

// LocalitySpread returns the instruction-weighted average spread of
// the locality vectors across recurring executions of the same phase —
// the "locality phase" column of Table 4. Two refinements mirror the
// paper's setting:
//
//   - Executions are grouped by (phase, position in the current run of
//     that phase). A program like FFT executes the same marked block
//     for every butterfly pass, but pass k of one transform matches
//     pass k of the next; the hierarchy's repetition structure (which
//     the run-time predictor tracks anyway) distinguishes them.
//   - Each group's first execution is excluded: it runs on a cold
//     cache ("the first couple of executions have slightly different
//     locality").
func (r *RunReport) LocalitySpread() float64 {
	type key struct {
		phase  marker.PhaseID
		runPos int
	}
	groups := make(map[key][]cache.Vector)
	weights := make(map[key]float64)
	var prev marker.PhaseID = -1
	runPos := 0
	for _, e := range r.Executions {
		if e.Partial {
			continue
		}
		if e.Phase == prev {
			runPos++
		} else {
			runPos = 0
			prev = e.Phase
		}
		k := key{e.Phase, runPos}
		groups[k] = append(groups[k], e.Locality)
		weights[k] += float64(e.Instructions)
	}
	// Deterministic aggregation order (floating-point sums are not
	// associative, and map iteration order varies).
	keys := make([]key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].phase != keys[j].phase {
			return keys[i].phase < keys[j].phase
		}
		return keys[i].runPos < keys[j].runPos
	})
	var gs [][]cache.Vector
	var ws []float64
	for _, k := range keys {
		g := groups[k]
		if len(g) > 1 {
			g = g[1:]
		}
		gs = append(gs, g)
		ws = append(ws, weights[k])
	}
	return cache.WeightedSpread(gs, ws)
}

// PhaseCount returns the number of distinct phases observed.
func (r *RunReport) PhaseCount() int { return len(r.PhaseLocality) }

// LeafStats summarizes phase granularity for Table 3: the number of
// leaf phase executions and the average execution length in
// instructions.
func (r *RunReport) LeafStats() (executions int, avgInstrs float64) {
	executions = len(r.Executions)
	if executions == 0 {
		return 0, 0
	}
	var sum int64
	for _, e := range r.Executions {
		sum += e.Instructions
	}
	return executions, float64(sum) / float64(executions)
}
