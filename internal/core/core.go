// Package core assembles the complete locality-phase-prediction
// pipeline of the paper. Detect performs the off-line analysis on a
// training run: variable-distance sampling of the reuse-distance
// trace, wavelet filtering of each data sample's sub-trace, optimal
// phase partitioning, phase-marker selection from the block trace, and
// phase-hierarchy construction by SEQUITUR grammar compression.
// Predict performs the run-time side on a (usually much larger)
// production run: the marked program predicts each phase's length and
// locality from its first few executions.
package core

import (
	"fmt"
	"math"
	"runtime"

	"lpp/internal/marker"
	"lpp/internal/phasedet"
	"lpp/internal/regexphase"
	"lpp/internal/sampling"
	"lpp/internal/trace"
	"lpp/internal/wavelet"
)

// Config parameterizes the off-line analysis.
type Config struct {
	// Sampling configures variable-distance sampling; zero fields
	// take package defaults.
	Sampling sampling.Config
	// Wavelet is the filter family (the paper uses Daubechies-6).
	Wavelet wavelet.Family
	// Alpha is the recurrence penalty of optimal phase partitioning
	// (0 means the default 0.5).
	Alpha float64
	// MaxSpan bounds a phase's extent in filtered accesses; 0 means
	// a generous default.
	MaxSpan int
	// Marker configures phase-marker selection.
	Marker marker.Config
	// MinSubTrace is the minimum number of access samples a data
	// sample needs for its sub-trace to enter wavelet filtering;
	// sparser samples are dropped as noise (Section 2.2.1).
	MinSubTrace int
	// KeepIrregular enables the Gcc extension of Section 3.1.2:
	// untrended irregular sub-traces (one reuse per input-dependent
	// recurrence, like a token buffer reused once per compiled
	// function) are kept whole, so phase boundaries can be marked in
	// programs whose phase lengths cannot be predicted. The detected
	// phases are then typically flagged inconsistent.
	KeepIrregular bool
	// Workers bounds the worker pool the off-line analysis may use:
	// Detect pipelines trace generation with the exact reuse-distance
	// analysis and fans the per-data-sample wavelet filtering out
	// across min(Workers, GOMAXPROCS-equivalent) goroutines. 0 means
	// GOMAXPROCS; 1 forces the strictly sequential path. Results are
	// bit-identical at every setting.
	Workers int
}

// workers resolves Config.Workers to a concrete pool size.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// DefaultConfig returns the paper's settings. The marker blank-region
// threshold is left zero so Detect can scale it to the training run
// (at least ~0.3% of the execution, capped at the paper's 10K
// instructions).
func DefaultConfig() Config {
	return Config{
		Wavelet:     wavelet.Daubechies6,
		Alpha:       phasedet.DefaultAlpha,
		MaxSpan:     4000,
		MinSubTrace: 4,
	}
}

// Detection is the product of the off-line analysis — everything the
// run-time side needs, plus the intermediate artifacts the experiments
// visualize.
type Detection struct {
	Config Config

	// Samples is the variable-distance sample trace (Figure 1 plots
	// its distances over time).
	Samples sampling.Result
	// Filtered holds indices into Samples.Samples that survived
	// wavelet filtering, in time order.
	Filtered []int
	// Boundaries are the detected phase-change times (logical time,
	// i.e. accesses from the start of the run).
	Boundaries []int64
	// Selection holds the chosen phase markers and the training
	// run's phase executions.
	Selection marker.Selection
	// PhaseSeq is the training run's phase-ID sequence.
	PhaseSeq []int
	// Hierarchy is the phase hierarchy as a regular expression over
	// phase IDs.
	Hierarchy regexphase.Expr
	// PhaseConsistent flags, per phase, whether its training-run
	// executions repeat consistently enough to predict. Programs
	// like Gcc have detectable phases (one per compiled function)
	// whose lengths are input-dependent; the paper "avoids behavior
	// prediction of inconsistent phases through a flag", which this
	// field implements. The run-time side declines predictions for
	// flagged phases.
	PhaseConsistent map[marker.PhaseID]bool

	// Training-run totals.
	Accesses     int64
	Instructions int64
}

// Detect runs the full off-line analysis over one training execution
// of prog. With more than one worker configured (the default resolves
// to GOMAXPROCS), trace generation is pipelined with the exact
// reuse-distance analysis: the workload streams its accesses to an
// analyzer goroutine in batches, so the analyzer — the expensive,
// strictly sequential part of sampling — never idles waiting for the
// full trace. The threshold/feedback half of sampling (which needs the
// final trace length for pacing) then replays the precomputed
// distances, making the result bit-identical to the sequential path.
func Detect(prog trace.Runner, cfg Config) (*Detection, error) {
	// Step 0: collect the training trace (ATOM's role).
	rec := trace.NewRecorder(1<<20, 1<<16)
	if cfg.workers() <= 1 {
		prog.Run(rec)
		return DetectTrace(&rec.T, cfg)
	}
	pipe := newDistPipeline()
	prog.Run(trace.Tee{rec, pipe})
	dists := pipe.Wait()
	cfg, scfg, err := normalizeConfig(&rec.T, cfg)
	if err != nil {
		return nil, err
	}
	res := sampling.RunTraceDists(rec.T.Accesses, dists, scfg)
	return finishDetection(&rec.T, cfg, res)
}

// DetectTrace runs the off-line analysis over an already-recorded
// training trace — e.g. one captured to a file with trace.Writer and
// replayed with trace.ReadFile.
func DetectTrace(t *trace.Recorded, cfg Config) (*Detection, error) {
	cfg, scfg, err := normalizeConfig(t, cfg)
	if err != nil {
		return nil, err
	}
	// Step 1: variable-distance sampling of the reuse trace.
	res := sampling.RunTrace(t.Accesses, scfg)
	return finishDetection(t, cfg, res)
}

// normalizeConfig fills config defaults that depend on the recorded
// trace and derives the sampling configuration. The feedback loop
// needs tens of checks over the run to steer the thresholds, whatever
// the trace length.
func normalizeConfig(t *trace.Recorded, cfg Config) (Config, sampling.Config, error) {
	def := DefaultConfig()
	if cfg.MaxSpan == 0 {
		cfg.MaxSpan = def.MaxSpan
	}
	if cfg.MinSubTrace == 0 {
		cfg.MinSubTrace = def.MinSubTrace
	}
	if len(t.Accesses) == 0 {
		return cfg, sampling.Config{}, fmt.Errorf("core: training run produced no accesses")
	}
	if cfg.Marker.BlankThreshold == 0 {
		// The paper requires a phase execution to consume at least
		// ~0.3% of the run, using 10K instructions for its
		// multi-million-access training runs; scale that rule to
		// the actual run length.
		th := int64(float64(t.Instructions) * 0.003)
		if th > 10000 {
			th = 10000
		}
		if th < 500 {
			th = 500
		}
		cfg.Marker.BlankThreshold = th
	}
	if cfg.Marker.FreqSlack == 0 {
		// The paper's cutoff is each phase's own execution count;
		// estimating it as boundaries+1 undercounts by the run's
		// edge executions (the first and last steps have no
		// boundary), so allow a modest slack.
		cfg.Marker.FreqSlack = 1.3
	}
	scfg := cfg.Sampling
	if scfg.ExpectedLength == 0 {
		scfg.ExpectedLength = int64(len(t.Accesses))
	}
	if scfg.CheckEvery == 0 {
		scfg.CheckEvery = scfg.ExpectedLength / 50
		if scfg.CheckEvery < 2000 {
			scfg.CheckEvery = 2000
		}
	}
	return cfg, scfg, nil
}

// finishDetection runs the trace-independent tail of the analysis —
// wavelet filtering, partitioning, marker selection, hierarchy,
// consistency — over a completed sampling result.
func finishDetection(t *trace.Recorded, cfg Config, res sampling.Result) (*Detection, error) {
	// Step 2: wavelet filtering of each data sample's sub-trace.
	filtered := filterSamplesWorkers(res, cfg.Wavelet, cfg.MinSubTrace, cfg.KeepIrregular, cfg.workers())

	// Step 3: optimal phase partitioning of the filtered trace.
	ids := make([]int, len(filtered))
	for i, si := range filtered {
		ids[i] = res.Samples[si].Data
	}
	cuts := phasedet.Partition(ids, phasedet.Config{Alpha: cfg.Alpha, MaxSpan: cfg.MaxSpan})
	boundaries := make([]int64, len(cuts))
	for i, c := range cuts {
		boundaries[i] = res.Samples[filtered[c]].Time
	}

	// Step 4: marker selection from the block trace, searching the
	// frequency cutoff for the selection that covers the most of the
	// run.
	sel, err := marker.SelectBest(t, boundaries, cfg.Marker)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	// Step 5: hierarchy construction by grammar compression.
	seq := sel.PhaseSequence()
	hier := regexphase.BuildHierarchy(seq)

	// Step 6: consistency flags. A phase whose training executions
	// vary wildly in length (relative spread above ~0.5) is
	// input-dependent; predicting it would produce false
	// predictions, so the run-time side declines.
	consistent := phaseConsistency(sel, 0.5)

	return &Detection{
		Config:          cfg,
		Samples:         res,
		Filtered:        filtered,
		Boundaries:      boundaries,
		Selection:       sel,
		PhaseSeq:        seq,
		Hierarchy:       hier,
		PhaseConsistent: consistent,
		Accesses:        int64(len(t.Accesses)),
		Instructions:    t.Instructions,
	}, nil
}

// Consistent reports whether every detected phase repeats consistently
// — false for programs like Gcc and Vortex whose phase lengths depend
// on the input.
func (d *Detection) Consistent() bool {
	for _, ok := range d.PhaseConsistent {
		if !ok {
			return false
		}
	}
	return true
}

// phaseConsistency flags each phase whose training-run execution
// lengths have a coefficient of variation at most maxCV.
func phaseConsistency(sel marker.Selection, maxCV float64) map[marker.PhaseID]bool {
	type agg struct {
		n, sum, sumSq float64
	}
	per := make(map[marker.PhaseID]*agg)
	for _, r := range sel.Regions {
		a := per[r.Phase]
		if a == nil {
			a = &agg{}
			per[r.Phase] = a
		}
		l := float64(r.EndInstr - r.StartInstr)
		a.n++
		a.sum += l
		a.sumSq += l * l
	}
	out := make(map[marker.PhaseID]bool, len(per))
	for ph, a := range per {
		mean := a.sum / a.n
		variance := a.sumSq/a.n - mean*mean
		if variance < 0 {
			variance = 0
		}
		out[ph] = mean > 0 && math.Sqrt(variance)/mean <= maxCV
	}
	return out
}
