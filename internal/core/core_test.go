package core

import (
	"testing"

	"lpp/internal/predictor"
	"lpp/internal/regexphase"
	"lpp/internal/trace"
	"lpp/internal/workload"
)

func detectWorkload(t *testing.T, name string, p workload.Params) *Detection {
	t.Helper()
	spec, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	det, err := Detect(spec.Make(p), DefaultConfig())
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return det
}

func TestDetectTomcatv(t *testing.T) {
	p := workload.Params{N: 48, Steps: 6, Seed: 1}
	det := detectWorkload(t, "tomcatv", p)

	if det.Selection.PhaseCount != 5 {
		t.Errorf("tomcatv phases = %d, want 5 (markers %v)",
			det.Selection.PhaseCount, det.Selection.Markers)
	}
	if got := len(det.Selection.Regions); got != 5*p.Steps {
		t.Errorf("tomcatv phase executions = %d, want %d", got, 5*p.Steps)
	}
	// The boundaries must roughly match the substep structure: at
	// least one detected boundary per time step.
	if len(det.Boundaries) < p.Steps {
		t.Errorf("boundaries = %d, want >= %d", len(det.Boundaries), p.Steps)
	}
	// Sampling parity with the paper: a bounded sample budget
	// reached in a handful of threshold adjustments ("15 thousand to
	// 30 thousand samples in less than 20 adjustments").
	if n := len(det.Samples.Samples); n < 1000 || n > 45000 {
		t.Errorf("samples = %d, want a bounded budget", n)
	}
	if det.Samples.Adjustments >= 20 {
		t.Errorf("threshold adjustments = %d, want < 20", det.Samples.Adjustments)
	}
	// The hierarchy must generalize: it matches the training phase
	// sequence extended by extra time steps.
	d := regexphase.Compile(det.Hierarchy)
	if !d.Matches(det.PhaseSeq) {
		t.Fatalf("hierarchy %v rejects its own training sequence %v",
			det.Hierarchy, det.PhaseSeq)
	}
	longer := append(append([]int{}, det.PhaseSeq...), det.PhaseSeq[len(det.PhaseSeq)-5:]...)
	if !d.Matches(longer) {
		t.Errorf("hierarchy %v does not generalize to more time steps", det.Hierarchy)
	}
}

func TestPredictTomcatvStrict(t *testing.T) {
	train := workload.Params{N: 48, Steps: 6, Seed: 1}
	ref := workload.Params{N: 96, Steps: 10, Seed: 2}
	det := detectWorkload(t, "tomcatv", train)
	spec, _ := workload.ByName("tomcatv")
	rep := Predict(spec.Make(ref), det, predictor.Strict)

	if rep.Accuracy < 0.999 {
		t.Errorf("strict accuracy = %g, want ~1", rep.Accuracy)
	}
	if rep.Coverage < 0.5 {
		t.Errorf("strict coverage = %g, want > 0.5", rep.Coverage)
	}
	if rep.PhaseCount() != 5 {
		t.Errorf("phases observed = %d, want 5", rep.PhaseCount())
	}
	if got := len(rep.Executions); got != 5*ref.Steps {
		t.Errorf("executions = %d, want %d", got, 5*ref.Steps)
	}
	// Locality must be essentially identical across executions of a
	// phase: the defining property of locality phases.
	if s := rep.LocalitySpread(); s > 1e-3 {
		t.Errorf("locality spread = %g, want < 1e-3", s)
	}
	// Composite phase prediction: the hierarchy automaton should
	// track the run nearly perfectly.
	if rep.NextPhaseAccuracy < 0.99 {
		t.Errorf("next-phase accuracy = %g", rep.NextPhaseAccuracy)
	}
}

func TestPredictTomcatvRelaxedCoverage(t *testing.T) {
	train := workload.Params{N: 48, Steps: 6, Seed: 1}
	ref := workload.Params{N: 96, Steps: 10, Seed: 2}
	det := detectWorkload(t, "tomcatv", train)
	spec, _ := workload.ByName("tomcatv")
	rep := Predict(spec.Make(ref), det, predictor.Relaxed)
	// First executions of each phase are unpredicted warmup; with
	// only 10 time steps that is ~10% of the run, plus the partial
	// tail. The paper's longer runs amortize this to 99%+.
	if rep.Coverage < 0.85 {
		t.Errorf("relaxed coverage = %g, want > 0.9", rep.Coverage)
	}
}

func TestDetectSwim(t *testing.T) {
	det := detectWorkload(t, "swim", workload.Params{N: 48, Steps: 6, Seed: 1})
	if det.Selection.PhaseCount != 3 {
		t.Errorf("swim phases = %d, want 3 (markers %v)",
			det.Selection.PhaseCount, det.Selection.Markers)
	}
}

func TestDetectEmptyProgramFails(t *testing.T) {
	empty := trace.RunnerFunc(func(trace.Instrumenter) {})
	if _, err := Detect(empty, DefaultConfig()); err == nil {
		t.Error("expected error for empty program")
	}
}
