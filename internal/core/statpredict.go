package core

import (
	"lpp/internal/cache"
	"lpp/internal/marker"
	"lpp/internal/predictor"
	"lpp/internal/trace"
)

// StatReport summarizes a statistically predicted execution.
type StatReport struct {
	// Accuracy is the fraction of interval predictions that captured
	// the actual execution length.
	Accuracy float64
	// Coverage is the fraction of the run's instructions spent in
	// predicted executions.
	Coverage float64
	// Predictions counts interval predictions made.
	Predictions int64
	// Executions are the observed phase executions.
	Executions []predictor.Execution
	// Run totals.
	Instructions int64
	Accesses     int64
}

// PredictStatistical runs prog with markers installed and the
// distribution-based predictor of Section 3.1.2's future-work
// direction. Unlike Predict it also predicts phases flagged
// inconsistent: an interval prediction ("this phase will run
// 1.1M ± 0.4M instructions") stays honest where an exact prediction
// would be false, which is precisely what input-dependent programs
// like Gcc need.
func PredictStatistical(prog trace.Runner, det *Detection) *StatReport {
	sim := cache.NewDefault()
	pred := predictor.NewStatistical()

	type openPhase struct {
		phase      marker.PhaseID
		startInstr int64
		startAcc   int64
		snap       cache.Snapshot
	}
	var cur openPhase
	open := false
	var execs []predictor.Execution

	var ins *marker.Instrumented
	onMarker := func(ph marker.PhaseID, acc, instr int64) {
		if open {
			loc, _ := sim.Since(cur.snap)
			e := predictor.Execution{
				Phase:        cur.phase,
				Instructions: instr - cur.startInstr,
				Accesses:     acc - cur.startAcc,
				Locality:     loc,
			}
			pred.Complete(e)
			execs = append(execs, e)
		}
		pred.Begin(ph)
		cur = openPhase{phase: ph, startInstr: instr, startAcc: acc, snap: sim.Snapshot()}
		open = true
	}
	ins = marker.NewInstrumented(det.Selection.Markers, sim, onMarker)
	prog.Run(ins)
	if open {
		loc, _ := sim.Since(cur.snap)
		pred.Complete(predictor.Execution{
			Phase:        cur.phase,
			Instructions: ins.Instructions() - cur.startInstr,
			Accesses:     ins.Accesses() - cur.startAcc,
			Locality:     loc,
			Partial:      true,
		})
	}

	return &StatReport{
		Accuracy:     pred.Accuracy(),
		Coverage:     pred.Coverage(ins.Instructions()),
		Predictions:  pred.Predictions(),
		Executions:   execs,
		Instructions: ins.Instructions(),
		Accesses:     ins.Accesses(),
	}
}
