package core

import (
	"reflect"
	"testing"

	"lpp/internal/reuse"
	"lpp/internal/stats"
	"lpp/internal/trace"
	"lpp/internal/workload"
)

// TestDetectParallelMatchesSequential: the pipelined, fanned-out
// detection (Workers > 1) must produce a Detection deeply equal to the
// strictly sequential path, across every benchmark in the suite —
// including the irregular ones. This is the concurrency regression
// test the -j experiments mode relies on.
func TestDetectParallelMatchesSequential(t *testing.T) {
	for _, spec := range workload.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			train := quickTrain(spec)
			seqCfg := DefaultConfig()
			seqCfg.Workers = 1
			want, err := Detect(spec.Make(train), seqCfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4} {
				parCfg := DefaultConfig()
				parCfg.Workers = workers
				got, err := Detect(spec.Make(train), parCfg)
				if err != nil {
					t.Fatal(err)
				}
				// The config records the worker count; everything
				// else must match bit for bit.
				got.Config.Workers = want.Config.Workers
				if !reflect.DeepEqual(got, want) {
					t.Errorf("workers=%d: detection diverges from sequential path", workers)
				}
			}
		})
	}
}

// quickTrain shrinks a spec's training run to test scale, mirroring
// experiments.Options.params so the parity test covers the same traces
// the report generates.
func quickTrain(spec workload.Spec) workload.Params {
	p := spec.Train
	capN := func(n int) {
		if p.N > n {
			p.N = n
		}
	}
	capSteps := func(s int) {
		if p.Steps > s {
			p.Steps = s
		}
	}
	switch spec.Name {
	case "tomcatv", "swim":
		capN(48)
		capSteps(6)
	case "applu":
		capN(14)
		capSteps(5)
	case "fft":
		capN(1 << 9)
		capSteps(6)
	case "compress", "vortex":
		capN(1 << 13)
		capSteps(5)
	case "gcc":
		capN(30)
		capSteps(20)
	case "mesh":
		capN(1 << 11)
		capSteps(6)
	case "moldyn":
		capN(200)
		capSteps(6)
	}
	return p
}

// TestDistPipelineMatchesDirectAnalysis: the batched producer/consumer
// hand-off must preserve the access order and hence the exact distance
// stream, including a tail batch smaller than the batch size.
func TestDistPipelineMatchesDirectAnalysis(t *testing.T) {
	rng := stats.NewRNG(17)
	n := distBatch*3 + 1234 // exercise full batches plus a ragged tail
	addrs := make([]trace.Addr, n)
	for i := range addrs {
		addrs[i] = trace.Addr(rng.Intn(4096) * 8)
	}

	an := reuse.NewAnalyzer()
	want := make([]int64, n)
	for i, a := range addrs {
		want[i] = an.Access(a)
	}

	pipe := newDistPipeline()
	for _, a := range addrs {
		pipe.Access(a)
	}
	got := pipe.Wait()
	if !reflect.DeepEqual(got, want) {
		t.Fatal("pipelined distance stream diverges from direct analysis")
	}
}
