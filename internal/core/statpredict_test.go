package core

import (
	"testing"

	"lpp/internal/workload"
)

// TestStatisticalPredictsGcc: exact prediction declines on Gcc, but
// the statistical predictor produces honest interval predictions —
// the paper's proposed direction for input-dependent programs.
func TestStatisticalPredictsGcc(t *testing.T) {
	spec, _ := workload.ByName("gcc")
	cfg := DefaultConfig()
	cfg.KeepIrregular = true
	det, err := Detect(spec.Make(workload.Params{N: 40, Steps: 25, Seed: 1}), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := PredictStatistical(spec.Make(workload.Params{N: 40, Steps: 40, Seed: 5}), det)
	if rep.Predictions == 0 {
		t.Fatal("statistical predictor made no predictions on gcc")
	}
	if rep.Accuracy < 0.4 {
		t.Errorf("interval accuracy = %.3f, want >= 0.4", rep.Accuracy)
	}
	if rep.Coverage < 0.3 {
		t.Errorf("coverage = %.3f, want >= 0.3", rep.Coverage)
	}
}

// TestStatisticalOnRegularProgram: for a consistent program, interval
// predictions are essentially always right (intervals collapse around
// the repeating length).
func TestStatisticalOnRegularProgram(t *testing.T) {
	spec, _ := workload.ByName("tomcatv")
	det, err := Detect(spec.Make(workload.Params{N: 48, Steps: 6, Seed: 1}), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep := PredictStatistical(spec.Make(workload.Params{N: 96, Steps: 10, Seed: 2}), det)
	if rep.Accuracy < 0.99 {
		t.Errorf("accuracy = %.3f, want ~1", rep.Accuracy)
	}
	if rep.Predictions == 0 {
		t.Error("no predictions made")
	}
}
