package core

import (
	"bytes"
	"strings"
	"testing"

	"lpp/internal/predictor"
	"lpp/internal/regexphase"
	"lpp/internal/workload"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	spec, _ := workload.ByName("tomcatv")
	det, err := Detect(spec.Make(workload.Params{N: 48, Steps: 6, Seed: 1}), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := det.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Selection.PhaseCount != det.Selection.PhaseCount {
		t.Errorf("phase count %d != %d", loaded.Selection.PhaseCount, det.Selection.PhaseCount)
	}
	if len(loaded.Selection.Markers) != len(det.Selection.Markers) {
		t.Error("markers lost")
	}
	if !regexphase.Equivalent(loaded.Hierarchy, det.Hierarchy) {
		t.Errorf("hierarchy changed: %v vs %v", loaded.Hierarchy, det.Hierarchy)
	}
	if len(loaded.PhaseConsistent) != len(det.PhaseConsistent) {
		t.Error("consistency flags lost")
	}

	// The loaded profile must drive prediction identically.
	ref := workload.Params{N: 96, Steps: 10, Seed: 2}
	a := Predict(spec.Make(ref), det, predictor.Strict)
	b := Predict(spec.Make(ref), loaded, predictor.Strict)
	if a.Accuracy != b.Accuracy || a.Coverage != b.Coverage {
		t.Errorf("loaded profile predicts differently: %v/%v vs %v/%v",
			a.Accuracy, a.Coverage, b.Accuracy, b.Coverage)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a profile")); err == nil {
		t.Error("garbage should not load")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should not load")
	}
}

func TestLoadRejectsEmptyProfile(t *testing.T) {
	// A structurally valid gob with no markers must be rejected.
	var buf bytes.Buffer
	d := &Detection{Hierarchy: regexphase.Lit{Sym: 1}}
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Error("profile without markers should not load")
	}
}
