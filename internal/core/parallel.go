package core

import (
	"sort"
	"sync"
	"sync/atomic"

	"lpp/internal/reuse"
	"lpp/internal/sampling"
	"lpp/internal/trace"
	"lpp/internal/wavelet"
)

// distBatch is the number of accesses forwarded to the reuse-distance
// goroutine at a time. Large enough to amortize channel synchronization
// against millions of accesses, small enough that the analyzer starts
// crunching long before the workload finishes.
const distBatch = 1 << 13

// distPipeline is a trace.Instrumenter that streams the access stream,
// in order, to a dedicated goroutine running the exact reuse-distance
// analyzer. The analyzer is strictly sequential (each distance depends
// on all prior accesses), but it is also the dominant cost of sampling,
// so overlapping it with trace generation hides the workload's own
// execution time entirely.
type distPipeline struct {
	batch []trace.Addr
	ch    chan []trace.Addr
	free  chan []trace.Addr // recycled batch buffers
	done  chan struct{}
	dists []int64
}

func newDistPipeline() *distPipeline {
	p := &distPipeline{
		batch: make([]trace.Addr, 0, distBatch),
		ch:    make(chan []trace.Addr, 8),
		free:  make(chan []trace.Addr, 8),
		done:  make(chan struct{}),
	}
	go func() {
		defer close(p.done)
		an := reuse.NewAnalyzer()
		for batch := range p.ch {
			for _, addr := range batch {
				p.dists = append(p.dists, an.Access(addr))
			}
			select {
			case p.free <- batch[:0]:
			default:
			}
		}
	}()
	return p
}

// Block implements trace.Instrumenter (ignored: only accesses have
// reuse distances).
func (p *distPipeline) Block(trace.BlockID, int) {}

// Access implements trace.Instrumenter.
func (p *distPipeline) Access(addr trace.Addr) {
	p.batch = append(p.batch, addr)
	if len(p.batch) == cap(p.batch) {
		p.flush()
	}
}

func (p *distPipeline) flush() {
	if len(p.batch) == 0 {
		return
	}
	p.ch <- p.batch
	select {
	case b := <-p.free:
		p.batch = b
	default:
		p.batch = make([]trace.Addr, 0, distBatch)
	}
}

// Wait flushes the tail, waits for the analyzer to drain, and returns
// the distance of every access in stream order.
func (p *distPipeline) Wait() []int64 {
	p.flush()
	close(p.ch)
	<-p.done
	return p.dists
}

// filterSamplesWorkers is filterSamples with the per-data-sample
// wavelet filtering fanned out across a bounded worker pool. Each data
// sample's sub-trace is filtered independently (the filter sees only
// that sample's distance signal), so the work is embarrassingly
// parallel; the per-sub-trace survivors are merged in sub-trace order
// and then sorted into time order exactly like the sequential path,
// making the result bit-identical at any worker count.
func filterSamplesWorkers(res sampling.Result, fam wavelet.Family, minSubTrace int, keepIrregular bool, workers int) []int {
	subs := res.SubTraces()
	if workers > len(subs) {
		workers = len(subs)
	}
	if workers <= 1 {
		return filterSamples(res, fam, minSubTrace, keepIrregular)
	}

	kept := make([][]int, len(subs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			signal := make([]float64, 0, 64)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(subs) {
					return
				}
				sub := subs[i]
				if len(sub) < minSubTrace {
					continue
				}
				signal = signal[:0]
				for _, si := range sub {
					signal = append(signal, float64(res.Samples[si].Dist))
				}
				for j, k := range filterSubTrace(signal, fam, keepIrregular) {
					if k {
						kept[i] = append(kept[i], sub[j])
					}
				}
			}
		}()
	}
	wg.Wait()

	var filtered []int
	for _, ks := range kept {
		filtered = append(filtered, ks...)
	}
	sort.Ints(filtered)
	return filtered
}
