package core

import (
	"fmt"

	"lpp/internal/marker"
	"lpp/internal/regexphase"
	"lpp/internal/trace"
)

// DetectMulti correlates marker selection across multiple training
// runs — one of the improvements Section 2.3 names ("correlate marker
// selection across multiple runs"). Each run is analyzed
// independently; only marker blocks selected in *every* run survive,
// which filters out markers that only happened to precede a blank
// region under one input. Phase IDs, regions, and the hierarchy come
// from the first run, restricted to the surviving markers.
func DetectMulti(progs []trace.Runner, cfg Config) (*Detection, error) {
	if len(progs) == 0 {
		return nil, fmt.Errorf("core: DetectMulti needs at least one training run")
	}
	dets := make([]*Detection, len(progs))
	for i, p := range progs {
		d, err := Detect(p, cfg)
		if err != nil {
			return nil, fmt.Errorf("core: training run %d: %w", i, err)
		}
		dets[i] = d
	}
	if len(dets) == 1 {
		return dets[0], nil
	}

	// Intersect marker blocks across runs.
	surviving := make(map[trace.BlockID]bool)
	for id := range dets[0].Selection.Markers {
		surviving[id] = true
	}
	for _, d := range dets[1:] {
		for id := range surviving {
			if _, ok := d.Selection.Markers[id]; !ok {
				delete(surviving, id)
			}
		}
	}
	if len(surviving) == 0 {
		return nil, fmt.Errorf("core: no marker block survives all %d training runs", len(progs))
	}

	base := dets[0]
	if len(surviving) == len(base.Selection.Markers) {
		return base, nil // full agreement
	}

	// Rebuild the first run's selection restricted to the surviving
	// markers: renumber phases densely and drop regions whose marker
	// was eliminated (their span merges into the preceding phase at
	// run time, since the eliminated marker no longer fires).
	sel := marker.Selection{
		Markers:   make(map[trace.BlockID]marker.PhaseID),
		Frequency: base.Selection.Frequency,
	}
	renumber := make(map[marker.PhaseID]marker.PhaseID)
	for _, r := range base.Selection.Regions {
		if !surviving[r.Marker] {
			continue
		}
		newID, ok := renumber[r.Phase]
		if !ok {
			newID = marker.PhaseID(sel.PhaseCount)
			sel.PhaseCount++
			renumber[r.Phase] = newID
			sel.Markers[r.Marker] = newID
		}
		nr := r
		nr.Phase = newID
		sel.Regions = append(sel.Regions, nr)
	}

	seq := sel.PhaseSequence()
	consistent := phaseConsistency(sel, 0.5)
	out := *base
	out.Selection = sel
	out.PhaseSeq = seq
	out.Hierarchy = regexphase.BuildHierarchy(seq)
	out.PhaseConsistent = consistent
	return &out, nil
}
