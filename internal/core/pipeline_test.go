package core

import (
	"testing"

	"lpp/internal/predictor"
	"lpp/internal/regexphase"
	"lpp/internal/workload"
)

// pipelineCase pins the expected phase structure of each benchmark at
// test scale.
type pipelineCase struct {
	name       string
	train, ref workload.Params
	phases     int
	// minStrictAcc is the strict-policy accuracy floor.
	minStrictAcc float64
	// minRelaxCov is the relaxed-policy coverage floor.
	minRelaxCov float64
}

func pipelineCases() []pipelineCase {
	return []pipelineCase{
		{"fft", workload.Params{N: 512, Steps: 6, Seed: 1}, workload.Params{N: 1024, Steps: 10, Seed: 2}, 2, 0.99, 0.75},
		{"compress", workload.Params{N: 8192, Steps: 5, Seed: 1}, workload.Params{N: 16384, Steps: 8, Seed: 2}, 4, 0.99, 0.8},
		{"moldyn", workload.Params{N: 200, Steps: 6, Seed: 1}, workload.Params{N: 300, Steps: 10, Seed: 2}, 3, 0.85, 0.6},
		{"mesh", workload.Params{N: 2048, Steps: 6, Seed: 1}, workload.Params{N: 2048, Steps: 6, Seed: 1, Variant: 1}, 2, 0.99, 0.7},
		{"applu", workload.Params{N: 14, Steps: 5, Seed: 1}, workload.Params{N: 20, Steps: 8, Seed: 2}, 4, 0.99, 0.8},
		{"tomcatv", workload.Params{N: 48, Steps: 6, Seed: 1}, workload.Params{N: 96, Steps: 10, Seed: 2}, 5, 0.99, 0.8},
		{"swim", workload.Params{N: 48, Steps: 6, Seed: 1}, workload.Params{N: 96, Steps: 10, Seed: 2}, 3, 0.99, 0.8},
	}
}

// TestPipelineAllBenchmarks runs the whole paper pipeline — detect on
// the training input, predict the reference input — over all seven
// predictable benchmarks and pins the phase structure, accuracy, and
// coverage each must achieve.
func TestPipelineAllBenchmarks(t *testing.T) {
	for _, c := range pipelineCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			spec, err := workload.ByName(c.name)
			if err != nil {
				t.Fatal(err)
			}
			det, err := Detect(spec.Make(c.train), DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if det.Selection.PhaseCount != c.phases {
				t.Errorf("phases = %d, want %d (markers %v)",
					det.Selection.PhaseCount, c.phases, det.Selection.Markers)
			}
			// The hierarchy must accept the training sequence.
			if !regexphase.Compile(det.Hierarchy).Matches(det.PhaseSeq) {
				t.Errorf("hierarchy %v rejects its training sequence", det.Hierarchy)
			}

			reps := PredictAll(spec.Make(c.ref), det, predictor.Strict, predictor.Relaxed)
			strict, relaxed := reps[0], reps[1]
			if strict.Accuracy < c.minStrictAcc {
				t.Errorf("strict accuracy = %.3f, want >= %.2f", strict.Accuracy, c.minStrictAcc)
			}
			if relaxed.Coverage < c.minRelaxCov {
				t.Errorf("relaxed coverage = %.3f, want >= %.2f", relaxed.Coverage, c.minRelaxCov)
			}
			if relaxed.Coverage < strict.Coverage {
				t.Error("relaxing the policy must not reduce coverage")
			}
			// The composite-phase automaton must track the run.
			if relaxed.NextPhaseAccuracy < 0.95 {
				t.Errorf("next-phase accuracy = %.3f", relaxed.NextPhaseAccuracy)
			}
		})
	}
}

// TestPipelinePhaseLengthScalesWithInput checks the paper's claim that
// phase length changes in tune with program inputs: the same phase's
// executions are longer on a larger input.
func TestPipelinePhaseLengthScalesWithInput(t *testing.T) {
	spec, _ := workload.ByName("tomcatv")
	train := workload.Params{N: 48, Steps: 6, Seed: 1}
	det, err := Detect(spec.Make(train), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	small := Predict(spec.Make(workload.Params{N: 64, Steps: 8, Seed: 2}), det, predictor.Relaxed)
	large := Predict(spec.Make(workload.Params{N: 128, Steps: 8, Seed: 2}), det, predictor.Relaxed)
	_, avgSmall := small.LeafStats()
	_, avgLarge := large.LeafStats()
	if avgLarge < 2*avgSmall {
		t.Errorf("leaf size did not scale with input: %.0f vs %.0f", avgSmall, avgLarge)
	}
}

// TestPipelineLocalityIdenticalAcrossExecutions pins the core property
// of locality phases: executions of the same phase have (nearly)
// identical locality, excluding the cold first execution.
func TestPipelineLocalityIdenticalAcrossExecutions(t *testing.T) {
	for _, name := range []string{"tomcatv", "swim", "compress"} {
		spec, _ := workload.ByName(name)
		c := pipelineCases()
		var pc pipelineCase
		for _, x := range c {
			if x.name == name {
				pc = x
			}
		}
		det, err := Detect(spec.Make(pc.train), DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rep := Predict(spec.Make(pc.ref), det, predictor.Relaxed)
		if s := rep.LocalitySpread(); s > 1e-6 {
			t.Errorf("%s: locality spread = %g, want ~0", name, s)
		}
	}
}
