package core

import (
	"testing"

	"lpp/internal/marker"
	"lpp/internal/predictor"
	"lpp/internal/trace"
	"lpp/internal/workload"
)

// TestGccExtensionMarksButDeclines reproduces the Section 3.1.2
// behavior: with the irregular-sub-trace extension, Gcc's phases (one
// per compiled function) are detected and marked, flagged
// inconsistent, and the run-time predictor declines every prediction —
// no false predictions.
func TestGccExtensionMarksButDeclines(t *testing.T) {
	spec, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.KeepIrregular = true
	train := workload.Params{N: 40, Steps: 25, Seed: 1}
	det, err := Detect(spec.Make(train), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if det.Selection.PhaseCount < 2 {
		t.Fatalf("gcc extension found %d phases, want >= 2", det.Selection.PhaseCount)
	}
	if det.Consistent() {
		t.Error("gcc phases should be flagged inconsistent")
	}
	rep := Predict(spec.Make(workload.Params{N: 40, Steps: 40, Seed: 5}), det, predictor.Relaxed)
	if rep.Predictions != 0 {
		t.Errorf("made %d predictions on inconsistent phases, want 0", rep.Predictions)
	}
	if rep.Coverage != 0 {
		t.Errorf("coverage = %g, want 0 (nothing predicted)", rep.Coverage)
	}
	if rep.InconsistentPhases != det.Selection.PhaseCount {
		t.Errorf("inconsistent phases = %d of %d", rep.InconsistentPhases, det.Selection.PhaseCount)
	}
	// Phase executions are still observed (the markers fire) even
	// though none is predicted.
	if len(rep.Executions) == 0 {
		t.Error("markers should still fire")
	}
}

// TestGccBaseDetectionFails documents why the extension exists: the
// base pipeline cannot find Gcc's input-dependent phase boundaries.
func TestGccBaseDetectionFails(t *testing.T) {
	spec, _ := workload.ByName("gcc")
	train := workload.Params{N: 40, Steps: 25, Seed: 1}
	if _, err := Detect(spec.Make(train), DefaultConfig()); err == nil {
		t.Skip("base detection succeeded on this input; extension merely unnecessary")
	}
}

// TestVortexDetectsBuildThenQuery checks Vortex's structure from
// Section 3.1.2: the transition from database construction to query
// processing is visible and detected.
func TestVortexDetectsBuildThenQuery(t *testing.T) {
	spec, _ := workload.ByName("vortex")
	train := workload.Params{N: 1 << 13, Steps: 6, Seed: 1}
	det, err := Detect(spec.Make(train), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if det.Selection.PhaseCount != 2 {
		t.Errorf("vortex phases = %d, want 2 (build, query)", det.Selection.PhaseCount)
	}
}

// TestConsistencyFlagOnRegularProgram: regular programs must have all
// phases flagged consistent, so prediction proceeds.
func TestConsistencyFlagOnRegularProgram(t *testing.T) {
	spec, _ := workload.ByName("tomcatv")
	det, err := Detect(spec.Make(workload.Params{N: 48, Steps: 6, Seed: 1}), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !det.Consistent() {
		t.Errorf("tomcatv flagged inconsistent: %v", det.PhaseConsistent)
	}
	rep := Predict(spec.Make(workload.Params{N: 96, Steps: 10, Seed: 2}), det, predictor.Strict)
	if rep.Predictions == 0 {
		t.Error("consistent phases should be predicted")
	}
}

func TestPhaseConsistencyHelper(t *testing.T) {
	// Direct unit test of the CV rule.
	sel := selectionWithLengths(1000, 1000, 1000)
	if cons := phaseConsistency(sel, 0.5); !cons[0] {
		t.Error("identical lengths should be consistent")
	}
	sel = selectionWithLengths(100, 5000, 40, 9000)
	if cons := phaseConsistency(sel, 0.5); cons[0] {
		t.Error("wildly varying lengths should be inconsistent")
	}
}

// selectionWithLengths builds a single-phase Selection whose regions
// have the given instruction lengths.
func selectionWithLengths(lengths ...int64) marker.Selection {
	sel := marker.Selection{Markers: map[trace.BlockID]marker.PhaseID{1: 0}, PhaseCount: 1}
	var at int64
	for _, l := range lengths {
		sel.Regions = append(sel.Regions, marker.Region{
			Marker: 1, Phase: 0, StartInstr: at, EndInstr: at + l,
		})
		at += l
	}
	return sel
}
