package core

import (
	"fmt"
	"sort"

	"lpp/internal/marker"
	"lpp/internal/regexphase"
	"lpp/internal/trace"
)

// SubPhases is the finer-grained structure found inside one parent
// phase — the paper's "we can use a smaller threshold to find
// sub-phases after we find large phases" (Section 2.3). MolDyn is the
// canonical case: inside the neighbor-list phase, every per-particle
// search is a sub-phase.
type SubPhases struct {
	Parent marker.PhaseID
	// Selection holds the sub-phase markers and executions, with
	// times rebased to the concatenation of the parent's segments.
	Selection marker.Selection
	// Hierarchy is the sub-phase hierarchy within one parent
	// execution.
	Hierarchy regexphase.Expr
}

// DetectSubPhases re-runs the training input and refines each detected
// phase with a smaller blank-region threshold (the parent threshold
// divided by divisor). Phases without internal structure are simply
// absent from the result.
func DetectSubPhases(prog trace.Runner, det *Detection, divisor int64) (map[marker.PhaseID]*SubPhases, error) {
	if divisor <= 1 {
		divisor = 8
	}
	rec := trace.NewRecorder(1<<20, 1<<16)
	prog.Run(rec)
	t := &rec.T
	execs := marker.Executions(t, det.Selection.Markers)
	if len(execs) == 0 {
		return nil, fmt.Errorf("core: no phase executions in refinement run")
	}

	// Group execution segments by parent phase.
	byPhase := make(map[marker.PhaseID][]marker.Execution)
	for _, e := range execs {
		byPhase[e.Phase] = append(byPhase[e.Phase], e)
	}

	threshold := det.Config.Marker.BlankThreshold / divisor
	if threshold < 50 {
		threshold = 50
	}

	out := make(map[marker.PhaseID]*SubPhases)
	for ph, segs := range byPhase {
		sub := concatSegments(t, segs)
		if len(sub.Blocks) == 0 {
			continue
		}
		// A segment cannot contain more executions than its length
		// divided by the threshold; that bounds the frequency cutoff.
		f := int(sub.Instructions / threshold)
		if f < 2 {
			continue
		}
		sel, err := marker.SelectBest(sub, nil, marker.Config{
			BlankThreshold: threshold,
			Frequency:      f,
		})
		if err != nil {
			continue // no internal structure
		}
		// Refinement is only interesting when it subdivides: more
		// executions than parent segments.
		if len(sel.Regions) <= len(segs) {
			continue
		}
		out[ph] = &SubPhases{
			Parent:    ph,
			Selection: sel,
			Hierarchy: regexphase.BuildHierarchy(sel.PhaseSequence()),
		}
	}
	return out, nil
}

// concatSegments builds a synthetic Recorded trace from the block
// events inside the given executions, rebasing instruction and access
// indices onto a contiguous timeline.
func concatSegments(t *trace.Recorded, segs []marker.Execution) *trace.Recorded {
	out := &trace.Recorded{}
	var instrBase, accBase int64
	for _, seg := range segs {
		lo := sort.Search(len(t.Blocks), func(i int) bool {
			return t.Blocks[i].InstrIndex >= seg.StartInstr
		})
		hi := sort.Search(len(t.Blocks), func(i int) bool {
			return t.Blocks[i].InstrIndex >= seg.EndInstr
		})
		for _, b := range t.Blocks[lo:hi] {
			out.Blocks = append(out.Blocks, trace.BlockEvent{
				ID:          b.ID,
				Instrs:      b.Instrs,
				InstrIndex:  b.InstrIndex - seg.StartInstr + instrBase,
				AccessIndex: b.AccessIndex - seg.StartAccess + accBase,
			})
		}
		instrBase += seg.EndInstr - seg.StartInstr
		accBase += seg.EndAccess - seg.StartAccess
	}
	out.Instructions = instrBase
	// Accesses are not needed for marker selection; record only the
	// count via a sparse slice boundary. Marker selection reads
	// len(Accesses) for the final region extent, so size it.
	out.Accesses = make([]trace.Addr, accBase)
	return out
}
