package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"lpp/internal/marker"
	"lpp/internal/regexphase"
	"lpp/internal/trace"
)

// profileMagic versions the on-disk format.
const profileMagic = "lpp-profile-v1"

// persistProfile is the serialized form of everything the run-time
// side needs: in the paper this state lives inside the rewritten
// binary (the markers and the predictor's automaton); here it is a
// small artifact that Save writes and Load restores, so a training run
// happens once and its result ships with the program.
type persistProfile struct {
	Magic           string
	Markers         map[trace.BlockID]marker.PhaseID
	PhaseCount      int
	Frequency       int
	Hierarchy       regexphase.Expr
	PhaseConsistent map[marker.PhaseID]bool
	Accesses        int64
	Instructions    int64
}

func init() {
	// The hierarchy is an interface value; gob needs the concrete
	// node types registered.
	gob.Register(regexphase.Lit{})
	gob.Register(regexphase.Concat{})
	gob.Register(regexphase.Alt{})
	gob.Register(regexphase.Repeat{})
}

// Save writes the detection's run-time profile (markers, hierarchy,
// consistency flags) to w. Off-line artifacts — the sample trace,
// boundaries, training regions — are not persisted; they are
// reproducible from the training input.
func (d *Detection) Save(w io.Writer) error {
	p := persistProfile{
		Magic:           profileMagic,
		Markers:         d.Selection.Markers,
		PhaseCount:      d.Selection.PhaseCount,
		Frequency:       d.Selection.Frequency,
		Hierarchy:       d.Hierarchy,
		PhaseConsistent: d.PhaseConsistent,
		Accesses:        d.Accesses,
		Instructions:    d.Instructions,
	}
	if err := gob.NewEncoder(w).Encode(&p); err != nil {
		return fmt.Errorf("core: save profile: %w", err)
	}
	return nil
}

// Load restores a run-time profile written by Save. The returned
// Detection carries everything Predict, PredictAll, and
// PredictStatistical need; off-line-only fields (Samples, Filtered,
// Boundaries, training Regions) are empty.
func Load(r io.Reader) (*Detection, error) {
	var p persistProfile
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("core: load profile: %w", err)
	}
	if p.Magic != profileMagic {
		return nil, fmt.Errorf("core: load profile: bad magic %q", p.Magic)
	}
	if len(p.Markers) == 0 {
		return nil, fmt.Errorf("core: load profile: no markers")
	}
	if p.Hierarchy == nil {
		return nil, fmt.Errorf("core: load profile: no hierarchy")
	}
	return &Detection{
		Selection: marker.Selection{
			Markers:    p.Markers,
			PhaseCount: p.PhaseCount,
			Frequency:  p.Frequency,
		},
		Hierarchy:       p.Hierarchy,
		PhaseConsistent: p.PhaseConsistent,
		Accesses:        p.Accesses,
		Instructions:    p.Instructions,
	}, nil
}
