package core

import (
	"reflect"
	"testing"

	"lpp/internal/phase"
	"lpp/internal/predictor"
	"lpp/internal/workload"
)

// busParityCase pins one workload's parameters for the cross-pipeline
// predictor parity sweep — the same nine workloads (and the same
// KeepIrregular settings) as the online boundary-parity suite.
type busParityCase struct {
	name          string
	train         workload.Params
	keepIrregular bool
}

func busParityCases() []busParityCase {
	return []busParityCase{
		{"fft", workload.Params{N: 512, Steps: 6, Seed: 1}, false},
		{"applu", workload.Params{N: 14, Steps: 5, Seed: 1}, false},
		{"compress", workload.Params{N: 8192, Steps: 5, Seed: 1}, false},
		{"gcc", workload.Params{N: 60, Steps: 20, Seed: 1}, true},
		{"tomcatv", workload.Params{N: 48, Steps: 6, Seed: 1}, false},
		{"swim", workload.Params{N: 48, Steps: 6, Seed: 1}, false},
		{"vortex", workload.Params{N: 1 << 12, Steps: 6, Seed: 1}, true},
		{"mesh", workload.Params{N: 2048, Steps: 6, Seed: 1}, false},
		{"moldyn", workload.Params{N: 200, Steps: 6, Seed: 1}, false},
	}
}

// TestPredictorConsumerParityWorkloads asserts, for all nine workloads,
// that a predictor consumer fed event-by-event from the phase bus — the
// online consumption model, where each boundary arrives alone with no
// surrounding run context — reproduces core.PredictAll's per-phase
// predictions exactly: same phase IDs, same execution lengths, same
// miss-rate estimates, same prediction scores. This is the parity that
// lets the streaming service's adaptation decisions be trusted against
// the offline pipeline's.
func TestPredictorConsumerParityWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("nine-workload parity sweep is seconds-long; skipped in -short")
	}
	for _, c := range busParityCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			spec, err := workload.ByName(c.name)
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig()
			cfg.KeepIrregular = c.keepIrregular
			det, err := Detect(spec.Make(c.train), cfg)
			if err != nil {
				t.Fatal(err)
			}

			// Offline reference: the predicted run without any bus tap.
			ref := PredictAll(spec.Make(c.train), det, predictor.Relaxed)[0]

			// Bus path: the same run delivers its events through a chain
			// to a stock predictor consumer, configured exactly as the
			// server configures it (inconsistency gate included).
			pc := phase.NewPredictorConsumer(predictor.Relaxed)
			for ph, consistent := range det.PhaseConsistent {
				if !consistent {
					pc.MarkInconsistent(int(ph))
				}
			}
			chain := phase.NewChain(pc)
			got := PredictAllWith(spec.Make(c.train), det, chain, predictor.Relaxed)[0]

			// The tap must not perturb the run it observes.
			if got.Accuracy != ref.Accuracy || got.Coverage != ref.Coverage ||
				got.Predictions != ref.Predictions {
				t.Fatalf("event tap perturbed the run: acc %v/%v cov %v/%v preds %d/%d",
					got.Accuracy, ref.Accuracy, got.Coverage, ref.Coverage,
					got.Predictions, ref.Predictions)
			}

			p := pc.Predictor()
			if p.Predictions() != ref.Predictions {
				t.Errorf("consumer made %d predictions, offline made %d",
					p.Predictions(), ref.Predictions)
			}
			if p.Accuracy() != ref.Accuracy {
				t.Errorf("consumer accuracy %v, offline %v", p.Accuracy(), ref.Accuracy)
			}
			if cov := p.Coverage(ref.Instructions); cov != ref.Coverage {
				t.Errorf("consumer coverage %v, offline %v", cov, ref.Coverage)
			}
			if !reflect.DeepEqual(p.PhaseLengths(), ref.PhaseLengths) {
				t.Errorf("phase lengths diverge:\nconsumer %v\noffline  %v",
					p.PhaseLengths(), ref.PhaseLengths)
			}
			if !reflect.DeepEqual(p.PhaseLocality(), ref.PhaseLocality) {
				t.Errorf("phase locality (miss-rate estimates) diverge")
			}
			if !reflect.DeepEqual(p.PhaseWeights(), ref.PhaseWeights) {
				t.Errorf("phase weights diverge:\nconsumer %v\noffline  %v",
					p.PhaseWeights(), ref.PhaseWeights)
			}
			for _, s := range chain.Stats() {
				if s.Errors != 0 {
					t.Errorf("consumer %s reported %d errors", s.Name, s.Errors)
				}
				if s.Consumed == 0 {
					t.Errorf("consumer %s saw no events; parity is vacuous", s.Name)
				}
			}
			// The sweep must not be vacuous — except where zero
			// predictions is the point: a detection whose phases are all
			// flagged inconsistent (gcc) correctly declines every one,
			// and the parity above shows the consumer declines too.
			consistent := false
			for _, ok := range det.PhaseConsistent {
				if ok {
					consistent = true
					break
				}
			}
			if consistent && ref.Predictions == 0 {
				t.Errorf("offline made no predictions; parity is vacuous")
			}
		})
	}
}
