package core

import (
	"testing"

	"lpp/internal/sampling"
	"lpp/internal/trace"
	"lpp/internal/wavelet"
)

func TestBimodalSplitSeparatesModes(t *testing.T) {
	vals := []float64{300, 280, 9000, 310, 15000, 290, 8700}
	cut, ok := bimodalSplit(vals)
	if !ok {
		t.Fatal("clear bimodal signal not split")
	}
	if cut > 9000 || cut <= 310 {
		t.Errorf("cut = %g, want in (310, 9000]", cut)
	}
}

func TestBimodalSplitRejectsUnimodal(t *testing.T) {
	if _, ok := bimodalSplit([]float64{100, 110, 105, 98, 102, 104}); ok {
		t.Error("unimodal signal should not split")
	}
	// A smooth geometric ramp has gaps but no dominant one.
	ramp := make([]float64, 20)
	v := 100.0
	for i := range ramp {
		ramp[i] = v
		v *= 1.3
	}
	if _, ok := bimodalSplit(ramp); ok {
		t.Error("smooth ramp should not split")
	}
}

func TestBimodalSplitEdgeCases(t *testing.T) {
	if _, ok := bimodalSplit([]float64{1, 1000}); ok {
		t.Error("too few values should not split")
	}
	if _, ok := bimodalSplit([]float64{0, 1, 2, 3, 4}); ok {
		t.Error("non-positive values should not split")
	}
}

func TestFilterSubTraceTomcatvShape(t *testing.T) {
	// Oscillating short/long distances: keep exactly the long mode.
	var sig []float64
	for i := 0; i < 8; i++ {
		sig = append(sig, 8642, 276, 14995, 8467, 364)
	}
	keep := filterSubTrace(sig, wavelet.Daubechies6, false)
	for i, k := range keep {
		long := sig[i] > 1000
		if long && !k {
			t.Errorf("long reuse at %d (%g) dropped", i, sig[i])
		}
		if !long && k {
			t.Errorf("short reuse at %d (%g) kept", i, sig[i])
		}
	}
}

func TestFilterSubTraceMolDynShape(t *testing.T) {
	// Gradual drift with one abrupt jump (Figure 2): the wavelet
	// rule keeps only points near the jump.
	var sig []float64
	for i := 0; i < 128; i++ {
		v := 1000 + float64(i)*3
		if i >= 64 {
			v += 100000
		}
		sig = append(sig, v)
	}
	keep := filterSubTrace(sig, wavelet.Daubechies6, false)
	kept := 0
	for i, k := range keep {
		if !k {
			continue
		}
		kept++
		if i < 60 || i > 68 {
			t.Errorf("kept index %d far from the jump at 64", i)
		}
	}
	if kept == 0 {
		t.Error("abrupt jump not kept")
	}
}

func TestFilterSamplesOrdersByTime(t *testing.T) {
	// Build two data samples with interleaved bimodal sub-traces.
	var r sampling.Result
	r.DataAddrs = []trace.Addr{100, 200}
	for i := 0; i < 12; i++ {
		d := int64(300)
		if i%3 == 0 {
			d = 20000
		}
		r.Samples = append(r.Samples,
			sampling.Sample{Time: int64(i * 10), Data: i % 2, Dist: d})
	}
	got := FilterSamples(r, wavelet.Daubechies6, 4)
	prev := int64(-1)
	for _, si := range got {
		if r.Samples[si].Time < prev {
			t.Fatal("filtered samples out of time order")
		}
		prev = r.Samples[si].Time
	}
}
