package core

import (
	"math"
	"sort"

	"lpp/internal/sampling"
	"lpp/internal/wavelet"
)

// filterSubTrace decides which access samples of one data sample
// survive filtering. Two complementary rules, both aimed at the
// paper's goal — "the wavelet filtering removes reuses of the same
// data within a phase" so that "the remaining is mainly accesses to
// different data samples clustered at phase boundaries":
//
//  1. The paper's rule: keep accesses whose level-1 wavelet
//     coefficient magnitude exceeds m + 3δ. This isolates abrupt
//     jumps in sub-traces that otherwise drift gradually (the MolDyn
//     shape of Figure 2).
//
//  2. A bimodal-distance rule for strongly periodic programs: when a
//     sub-trace alternates between short within-phase reuses and long
//     boundary-crossing reuses (the Tomcatv shape of Figure 1), every
//     long reuse marks a phase change but none is a statistical
//     outlier among the coefficients. If the distances split cleanly
//     into two modes (largest log-space gap, upper mean ≥ 8× lower
//     mean), the upper mode is kept.
//
//  3. A flat-signal rule: every access sample exists because its
//     reuse distance exceeded the sampler's temporal threshold, so a
//     sub-trace whose distances are uniformly long and nearly equal
//     (low coefficient of variation) is one boundary crossing per
//     recurrence — e.g. a Swim element reused once per time step.
//     All its samples are kept.
//
//  4. (Extension, opt-in via Config.KeepIrregular — the Gcc extension
//     of Section 3.1.2.) A sub-trace that is irregular but untrended —
//     high coefficient of variation, near-zero lag-1 autocorrelation —
//     is one boundary crossing per recurrence with an input-dependent
//     period, like a token buffer reused once per compiled function.
//     All its samples are kept so the boundaries can be marked even
//     though their lengths will not be predictable.
func filterSubTrace(dists []float64, fam wavelet.Family, keepIrregular bool) []bool {
	return FilterSubTrace(dists, fam, keepIrregular)
}

// FilterSubTrace exposes the per-sub-trace filter to other detection
// front ends (the online detector applies it over a sliding window of
// each data sample's recent distances, so online and offline share one
// rule set).
func FilterSubTrace(dists []float64, fam wavelet.Family, keepIrregular bool) []bool {
	if len(dists) >= 4 && coefVar(dists) < 0.25 {
		keep := make([]bool, len(dists))
		for i := range keep {
			keep[i] = true
		}
		return keep
	}
	if keepIrregular && len(dists) >= 4 {
		if ac := lag1Autocorr(dists); ac < 0.3 && ac > -0.3 {
			keep := make([]bool, len(dists))
			for i := range keep {
				keep[i] = true
			}
			return keep
		}
	}
	keep := wavelet.Keep(dists, fam)
	if cut, ok := bimodalSplit(dists); ok && alternations(dists, cut) >= 4 {
		// Only an *alternating* bimodal signal means every long
		// reuse crosses a boundary. A single level shift (one
		// contiguous upper block) is an abrupt change whose jump
		// point the wavelet rule already isolates; keeping the
		// whole plateau would flood the partitioner with
		// recurrences.
		for i, d := range dists {
			if d >= cut {
				keep[i] = true
			}
		}
	}
	return keep
}

// alternations counts how many times the signal crosses the mode
// threshold between consecutive samples.
func alternations(vals []float64, cut float64) int {
	n := 0
	for i := 1; i < len(vals); i++ {
		if (vals[i] >= cut) != (vals[i-1] >= cut) {
			n++
		}
	}
	return n
}

// bimodalSplit finds a two-mode split of positive values: the largest
// gap between consecutive sorted values in log space. It returns the
// smallest upper-mode value and true when the modes are well separated
// (upper mean at least 8× lower mean and at least a 4× jump at the
// gap).
func bimodalSplit(vals []float64) (float64, bool) {
	if len(vals) < 4 {
		return 0, false
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	if sorted[0] <= 0 {
		return 0, false
	}
	// Largest multiplicative gap.
	bestIdx, bestRatio := -1, 1.0
	for i := 0; i+1 < len(sorted); i++ {
		r := sorted[i+1] / sorted[i]
		if r > bestRatio {
			bestRatio, bestIdx = r, i
		}
	}
	if bestIdx < 0 || bestRatio < 4 {
		return 0, false
	}
	lower, upper := sorted[:bestIdx+1], sorted[bestIdx+1:]
	lm, um := mean(lower), mean(upper)
	if math.IsNaN(lm) || lm <= 0 || um < 8*lm {
		return 0, false
	}
	return upper[0], true
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// lag1Autocorr returns the lag-1 autocorrelation of xs (0 when the
// variance vanishes). Trended signals (gradual drift) score near 1;
// independent per-recurrence values score near 0.
func lag1Autocorr(xs []float64) float64 {
	m := mean(xs)
	var num, den float64
	for i := range xs {
		d := xs[i] - m
		den += d * d
		if i > 0 {
			num += (xs[i-1] - m) * d
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// coefVar returns the coefficient of variation (stddev/mean).
func coefVar(xs []float64) float64 {
	m := mean(xs)
	if m == 0 {
		return 0
	}
	var sq float64
	for _, x := range xs {
		d := x - m
		sq += d * d
	}
	return math.Sqrt(sq/float64(len(xs))) / m
}

// FilterSamples applies per-data-sample filtering (Section 2.2.2) and
// recompiles the survivors in time order, returning indices into
// res.Samples. Data samples with fewer than minSubTrace access samples
// are dropped as noise.
func FilterSamples(res sampling.Result, fam wavelet.Family, minSubTrace int) []int {
	return filterSamples(res, fam, minSubTrace, false)
}

// FilterSamplesIrregular is FilterSamples with the Gcc extension of
// Section 3.1.2 enabled: untrended irregular sub-traces are kept whole
// so input-dependent phase boundaries can still be marked.
func FilterSamplesIrregular(res sampling.Result, fam wavelet.Family, minSubTrace int) []int {
	return filterSamples(res, fam, minSubTrace, true)
}

func filterSamples(res sampling.Result, fam wavelet.Family, minSubTrace int, keepIrregular bool) []int {
	var filtered []int
	for _, sub := range res.SubTraces() {
		if len(sub) < minSubTrace {
			continue
		}
		signal := make([]float64, len(sub))
		for i, si := range sub {
			signal[i] = float64(res.Samples[si].Dist)
		}
		for i, k := range filterSubTrace(signal, fam, keepIrregular) {
			if k {
				filtered = append(filtered, sub[i])
			}
		}
	}
	sort.Ints(filtered)
	return filtered
}
