package reuse

import "lpp/internal/trace"

// SpatialProfile measures spatial locality alongside temporal
// locality — the analysis the paper names as future work ("the current
// analysis considers only temporal locality. The future work will
// consider spatial locality in conjunction with temporal locality").
// It runs reuse-distance analysis at both element and cache-block
// granularity and tracks which bytes of each touched block were
// actually used, yielding:
//
//   - block- vs element-level miss-rate histograms (how much a cache
//     block's implicit prefetch helps), and
//   - block utilization (how much of each fetched block the program
//     touches — the headroom data reorganization can reclaim).
type SpatialProfile struct {
	blockBits int
	elemBits  int

	elem  *Analyzer
	block *Analyzer

	ElemHist  *Histogram
	BlockHist *Histogram

	touched map[trace.Addr]uint64 // block -> bitmask of touched words
	words   int                   // words per block
}

// NewSpatialProfile returns a profile for the given block size
// (log2 bytes, e.g. 6 for 64-byte blocks) and element size (log2
// bytes, e.g. 3 for 8-byte words).
func NewSpatialProfile(blockBits, elemBits int) *SpatialProfile {
	if blockBits <= elemBits {
		panic("reuse: block must be larger than element")
	}
	words := 1 << (blockBits - elemBits)
	if words > 64 {
		panic("reuse: more than 64 elements per block unsupported")
	}
	return &SpatialProfile{
		blockBits: blockBits,
		elemBits:  elemBits,
		elem:      NewAnalyzer(),
		block:     NewAnalyzer(),
		ElemHist:  NewHistogram(),
		BlockHist: NewHistogram(),
		touched:   make(map[trace.Addr]uint64),
		words:     words,
	}
}

// Block implements trace.Instrumenter (ignored).
func (s *SpatialProfile) Block(trace.BlockID, int) {}

// Access feeds one data access.
func (s *SpatialProfile) Access(addr trace.Addr) {
	s.ElemHist.Add(s.elem.Access(addr >> s.elemBits))
	blk := addr >> s.blockBits
	s.BlockHist.Add(s.block.Access(blk))
	word := (addr >> s.elemBits) & trace.Addr(s.words-1)
	s.touched[blk] |= 1 << word
}

// Utilization returns the fraction of words in touched blocks that the
// program ever referenced: 1.0 means every fetched byte was used;
// low values are the headroom that array regrouping reclaims.
func (s *SpatialProfile) Utilization() float64 {
	if len(s.touched) == 0 {
		return 0
	}
	var used int
	for _, mask := range s.touched {
		used += popcount(mask)
	}
	return float64(used) / float64(len(s.touched)*s.words)
}

// SpatialBenefit returns how much block granularity lowers the miss
// rate at a given cache capacity (in bytes) relative to caching single
// elements: missRateElems / missRateBlocks. Values near 1 mean no
// spatial locality; large values mean neighbors ride along usefully.
func (s *SpatialProfile) SpatialBenefit(capacityBytes int64) float64 {
	blocks := capacityBytes >> s.blockBits
	elems := capacityBytes >> s.elemBits
	mb := s.BlockHist.MissRate(blocks)
	me := s.ElemHist.MissRate(elems)
	if mb == 0 {
		if me == 0 {
			return 1
		}
		return float64(s.ElemHist.Total()) // effectively infinite
	}
	return me / mb
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
