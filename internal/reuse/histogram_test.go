package reuse

import (
	"math"
	"testing"
)

// TestHistogramMissRateEdges covers the inputs the ingest service can
// feed a histogram in practice: empty histograms, cold-only streams,
// and degenerate capacities (zero or negative caches must read as
// "misses everything", not index out of range).
func TestHistogramMissRateEdges(t *testing.T) {
	cold := NewHistogram()
	for i := 0; i < 5; i++ {
		cold.Add(Infinite)
	}
	mixed := NewHistogram()
	mixed.Add(Infinite)
	mixed.Add(0)
	mixed.Add(3)
	mixed.Add(exactLimit + 100) // overflow bucket
	big := NewHistogram()
	big.Add(1 << 30)

	cases := []struct {
		name     string
		h        *Histogram
		capacity int64
		want     float64
	}{
		{"empty zero capacity", NewHistogram(), 0, 0},
		{"empty negative capacity", NewHistogram(), -8, 0},
		{"zero value empty", &Histogram{}, 64, 0},
		{"cold-only zero capacity", cold, 0, 1},
		{"cold-only huge capacity", cold, 1 << 40, 1},
		{"cold-only negative capacity", cold, -1, 1},
		{"mixed zero capacity misses all", mixed, 0, 1},
		{"mixed negative capacity misses all", mixed, -100, 1},
		{"mixed capacity 1 keeps d=0", mixed, 1, 0.75},
		{"mixed capacity 4 keeps d<=3", mixed, 4, 0.5},
		{"mixed above overflow", mixed, 1 << 20, 0.25},
		{"overflow straddle counts as miss", big, 1 << 30, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := c.h.MissRate(c.capacity)
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Fatalf("MissRate(%d) = %v", c.capacity, got)
			}
			if math.Abs(got-c.want) > 1e-12 {
				t.Errorf("MissRate(%d) = %v, want %v", c.capacity, got, c.want)
			}
		})
	}
}

// TestHistogramMissRatesVector: the vector form must evaluate each
// capacity independently, degenerate ones included.
func TestHistogramMissRatesVector(t *testing.T) {
	h := NewHistogram()
	h.Add(0)
	h.Add(10)
	h.Add(Infinite)
	got := h.MissRates([]int64{-1, 0, 1, 11})
	want := []float64{1, 1, 2.0 / 3, 1.0 / 3}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("rate[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if out := h.MissRates(nil); len(out) != 0 {
		t.Errorf("MissRates(nil) = %v, want empty", out)
	}
}

// TestHistogramMergeEdges: merging must tolerate empty and zero-value
// operands in either position and preserve totals, cold counts, and
// max distance.
func TestHistogramMergeEdges(t *testing.T) {
	t.Run("empty into empty", func(t *testing.T) {
		h := NewHistogram()
		h.Merge(NewHistogram())
		if h.Total() != 0 || h.Cold() != 0 || h.MissRate(1) != 0 {
			t.Errorf("empty merge mutated histogram: total=%d cold=%d", h.Total(), h.Cold())
		}
	})
	t.Run("zero values both sides", func(t *testing.T) {
		var h, other Histogram
		h.Merge(&other) // must not panic on nil count tables
		other.Add(2)
		other.Add(Infinite)
		h.Merge(&other)
		if h.Total() != 2 || h.Cold() != 1 || h.MaxDistance() != 2 {
			t.Errorf("merge into zero value: total=%d cold=%d max=%d", h.Total(), h.Cold(), h.MaxDistance())
		}
		if got := h.MissRate(4); math.Abs(got-0.5) != 0 {
			t.Errorf("MissRate(4) = %v, want 0.5", got)
		}
	})
	t.Run("cold-only into populated", func(t *testing.T) {
		h := NewHistogram()
		h.Add(1)
		h.Add(exactLimit + 5)
		cold := NewHistogram()
		cold.Add(Infinite)
		cold.Add(Infinite)
		h.Merge(cold)
		if h.Total() != 4 || h.Cold() != 2 {
			t.Fatalf("total=%d cold=%d, want 4, 2", h.Total(), h.Cold())
		}
		// Distances survive the merge: capacity 2 keeps only d=1.
		if got, want := h.MissRate(2), 0.75; math.Abs(got-want) > 1e-12 {
			t.Errorf("MissRate(2) = %v, want %v", got, want)
		}
	})
	t.Run("merge equals interleaved adds", func(t *testing.T) {
		a, b, both := NewHistogram(), NewHistogram(), NewHistogram()
		ds := []int64{0, 1, 1, 7, 300, exactLimit, exactLimit * 3, Infinite}
		for i, d := range ds {
			if i%2 == 0 {
				a.Add(d)
			} else {
				b.Add(d)
			}
			both.Add(d)
		}
		a.Merge(b)
		caps := []int64{-1, 0, 1, 2, 8, 512, exactLimit, exactLimit * 2, 1 << 30}
		for _, c := range caps {
			if got, want := a.MissRate(c), both.MissRate(c); got != want {
				t.Errorf("capacity %d: merged %v, interleaved %v", c, got, want)
			}
		}
		if a.MaxDistance() != both.MaxDistance() {
			t.Errorf("max distance %d, want %d", a.MaxDistance(), both.MaxDistance())
		}
	})
}
