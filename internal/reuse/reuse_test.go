package reuse

import (
	"testing"
	"testing/quick"

	"lpp/internal/stats"
	"lpp/internal/trace"
)

// naive is a brute-force LRU stack used as the reference implementation.
type naive struct {
	stack []trace.Addr // most recent first
}

func (n *naive) access(addr trace.Addr) int64 {
	for i, a := range n.stack {
		if a == addr {
			copy(n.stack[1:i+1], n.stack[:i])
			n.stack[0] = addr
			return int64(i)
		}
	}
	n.stack = append([]trace.Addr{addr}, n.stack...)
	return Infinite
}

func TestAnalyzerSimpleSequence(t *testing.T) {
	a := NewAnalyzer()
	// a b c a: distance of second 'a' is 2 (b and c in between).
	seq := []trace.Addr{1, 2, 3, 1}
	want := []int64{Infinite, Infinite, Infinite, 2}
	for i, addr := range seq {
		if got := a.Access(addr); got != want[i] {
			t.Errorf("access %d (%d): distance = %d, want %d", i, addr, got, want[i])
		}
	}
	if a.Distinct() != 3 {
		t.Errorf("Distinct = %d, want 3", a.Distinct())
	}
}

func TestAnalyzerImmediateReuse(t *testing.T) {
	a := NewAnalyzer()
	a.Access(5)
	if got := a.Access(5); got != 0 {
		t.Errorf("immediate reuse distance = %d, want 0", got)
	}
}

func TestAnalyzerRepeatedReuseCountsDistinct(t *testing.T) {
	a := NewAnalyzer()
	// x y y y x: only one distinct element (y) between the two x's.
	for _, addr := range []trace.Addr{1, 2, 2, 2} {
		a.Access(addr)
	}
	if got := a.Access(1); got != 1 {
		t.Errorf("distance = %d, want 1", got)
	}
}

func TestAnalyzerMatchesNaive(t *testing.T) {
	f := func(seq []uint8) bool {
		a := NewAnalyzer()
		n := &naive{}
		for _, s := range seq {
			addr := trace.Addr(s % 32)
			if a.Access(addr) != n.access(addr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAnalyzerCompaction(t *testing.T) {
	// Drive far past the initial tree capacity to force compactions,
	// checking against the naive stack with a small working set.
	a := NewAnalyzer()
	n := &naive{}
	rng := stats.NewRNG(42)
	const accesses = 300000 // > 1<<16 initial capacity, several compactions
	for i := 0; i < accesses; i++ {
		addr := trace.Addr(rng.Intn(100))
		got, want := a.Access(addr), n.access(addr)
		if got != want {
			t.Fatalf("access %d: distance = %d, want %d", i, got, want)
		}
	}
}

func TestAnalyzerCompactionLargeWorkingSet(t *testing.T) {
	// Working set larger than the initial tree, cyclic pattern:
	// after warmup every access to the cycle has distance N-1.
	a := NewAnalyzer()
	const n = 1 << 17
	for round := 0; round < 3; round++ {
		for i := 0; i < n; i++ {
			d := a.Access(trace.Addr(i))
			if round == 0 {
				if d != Infinite {
					t.Fatalf("cold access %d: distance = %d, want Infinite", i, d)
				}
			} else if d != n-1 {
				t.Fatalf("round %d access %d: distance = %d, want %d", round, i, d, n-1)
			}
		}
	}
}

func TestHistogramMissRate(t *testing.T) {
	h := NewHistogram()
	// 2 cold, distances 0, 1, 5.
	h.Add(Infinite)
	h.Add(Infinite)
	h.Add(0)
	h.Add(1)
	h.Add(5)
	if h.Total() != 5 || h.Cold() != 2 {
		t.Fatalf("total=%d cold=%d", h.Total(), h.Cold())
	}
	cases := []struct {
		cap  int64
		want float64
	}{
		{1, 4.0 / 5}, // only distance 0 hits
		{2, 3.0 / 5}, // distances 0,1 hit
		{6, 2.0 / 5}, // all finite distances hit
		{100, 2.0 / 5},
	}
	for _, c := range cases {
		if got := h.MissRate(c.cap); got != c.want {
			t.Errorf("MissRate(%d) = %g, want %g", c.cap, got, c.want)
		}
	}
}

func TestHistogramOverflowBuckets(t *testing.T) {
	h := NewHistogram()
	h.Add(exactLimit + 10) // lands in a log2 bucket
	h.Add(3)
	// Capacity below the overflow bucket: both the overflow distance
	// and nothing else should miss.
	if got := h.MissRate(4); got != 0.5 {
		t.Errorf("MissRate(4) = %g, want 0.5", got)
	}
	// Large capacity above the bucket: everything hits.
	if got := h.MissRate(1 << 20); got != 0 {
		t.Errorf("MissRate(1<<20) = %g, want 0", got)
	}
	if h.MaxDistance() != exactLimit+10 {
		t.Errorf("MaxDistance = %d", h.MaxDistance())
	}
}

func TestHistogramMerge(t *testing.T) {
	h1, h2 := NewHistogram(), NewHistogram()
	h1.Add(0)
	h1.Add(Infinite)
	h2.Add(2)
	h2.Add(2)
	h1.Merge(h2)
	if h1.Total() != 4 || h1.Cold() != 1 {
		t.Fatalf("after merge: total=%d cold=%d", h1.Total(), h1.Cold())
	}
	// Capacity 1: distance 0 hits; two 2s and cold miss = 3/4.
	if got := h1.MissRate(1); got != 0.75 {
		t.Errorf("MissRate(1) = %g, want 0.75", got)
	}
}

func TestHistogramMissRateMonotone(t *testing.T) {
	// Property: miss rate is non-increasing in capacity (stack
	// inclusion property of LRU).
	f := func(ds []uint16) bool {
		h := NewHistogram()
		for _, d := range ds {
			h.Add(int64(d))
		}
		prev := 1.1
		for c := int64(1); c < 1<<17; c *= 2 {
			m := h.MissRate(c)
			if m > prev+1e-12 {
				return false
			}
			prev = m
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkAnalyzerAccess(b *testing.B) {
	a := NewAnalyzer()
	rng := stats.NewRNG(7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Access(trace.Addr(rng.Intn(1 << 16)))
	}
}

// BenchmarkAnalyzerCompact pins the periodic tree rebuild: a live set
// of 32K elements is remapped and the Fenwick tree reconstructed on
// every iteration, the way the Access hot loop triggers it once per
// O(tree size) accesses.
func BenchmarkAnalyzerCompact(b *testing.B) {
	a := NewAnalyzer()
	for i := 0; i < 1<<15; i++ {
		a.Access(trace.Addr(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.compact()
	}
}

// TestCompactSteadyStateAllocs: once the scratch buffer and tree have
// reached the live set's size, a compaction must not allocate — the
// Access hot loop's amortized allocation rate depends on it.
func TestCompactSteadyStateAllocs(t *testing.T) {
	a := NewAnalyzer()
	rng := stats.NewRNG(11)
	for i := 0; i < 1<<14; i++ {
		a.Access(trace.Addr(rng.Intn(1 << 12)))
	}
	a.compact() // warm the scratch buffer
	if allocs := testing.AllocsPerRun(10, func() { a.compact() }); allocs > 0 {
		t.Errorf("steady-state compact allocates %.1f objects per run, want 0", allocs)
	}
}

// TestCompactPreservesDistances: distances across a forced compaction
// must equal those of a never-compacted reference analyzer.
func TestCompactPreservesDistances(t *testing.T) {
	ref := NewAnalyzer()
	sub := NewAnalyzer()
	rng := stats.NewRNG(13)
	var addrs []trace.Addr
	for i := 0; i < 4096; i++ {
		addrs = append(addrs, trace.Addr(rng.Intn(512)))
	}
	for i, addr := range addrs {
		want := ref.Access(addr)
		if i%777 == 0 {
			sub.compact()
		}
		if got := sub.Access(addr); got != want {
			t.Fatalf("access %d (%#x): distance %d after compaction, want %d", i, addr, got, want)
		}
	}
}
