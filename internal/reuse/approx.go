package reuse

import (
	"sort"

	"lpp/internal/trace"
)

// ApproxAnalyzer measures reuse distance with bounded relative error
// and bounded memory, after the approximate analysis of Ding and Zhong
// [12] that makes whole-trace locality profiling "near linear time":
// instead of one Fenwick slot per logical time, last-access times are
// grouped into buckets whose allowed size grows geometrically with
// distance from the present. Counts stay exact (each live element
// belongs to exactly one bucket); the only approximation is an
// element's position *within* its bucket, so the reported distance is
// within a factor of (1±ε) of the true one for distances ≳ 1/ε.
type ApproxAnalyzer struct {
	eps  float64
	last map[trace.Addr]int64

	// buckets are in ascending time order: bucket i covers times
	// (buckets[i-1].maxTime, buckets[i].maxTime].
	buckets []approxBucket
	now     int64
	live    int64 // total live elements across buckets

	// newerScratch is compact's reusable prefix-sum buffer, so steady-
	// state compaction allocates nothing.
	newerScratch []int64
}

type approxBucket struct {
	maxTime int64
	count   int64
}

// NewApproxAnalyzer returns an analyzer with relative precision eps
// (0 < eps < 1); eps = 0 takes 0.05, i.e. 95% accuracy as in the
// cited analysis.
func NewApproxAnalyzer(eps float64) *ApproxAnalyzer {
	if eps <= 0 || eps >= 1 {
		eps = 0.05
	}
	return &ApproxAnalyzer{eps: eps, last: make(map[trace.Addr]int64)}
}

// Access records a reference to addr and returns its approximate reuse
// distance (Infinite for a cold access).
func (a *ApproxAnalyzer) Access(addr trace.Addr) int64 {
	t := a.now
	a.now++
	prev, seen := a.last[addr]
	a.last[addr] = t

	dist := Infinite
	if seen {
		idx := a.find(prev)
		// Elements in strictly newer buckets are certainly between
		// prev and t; within prev's own bucket, assume the element
		// sits in the middle.
		var after int64
		for i := idx + 1; i < len(a.buckets); i++ {
			after += a.buckets[i].count
		}
		dist = after + (a.buckets[idx].count-1)/2
		a.buckets[idx].count--
		a.live--
	}
	a.buckets = append(a.buckets, approxBucket{maxTime: t, count: 1})
	a.live++
	if len(a.buckets) > 4*a.targetBuckets() {
		a.compact()
	}
	return dist
}

// AccessEvict records one reference and applies the streaming
// detector's eviction rule in the same call: once more than maxLive
// distinct addresses are live, the oldest are forgotten down to
// maxLive/2. It is exactly an Access followed by the detector's
// Distinct-gauge check — the fused entry point exists so the ingest hot
// path pays one concrete call per reference instead of a call, a gauge
// read, and a branch. maxLive <= 0 disables eviction.
func (a *ApproxAnalyzer) AccessEvict(addr trace.Addr, maxLive int) int64 {
	d := a.Access(addr)
	if maxLive > 0 && len(a.last) > maxLive {
		a.EvictOldest(maxLive / 2)
	}
	return d
}

// AccessBatch records a reference to each address in order, writing the
// approximate reuse distance of addrs[i] into dists[i] (len(dists) must
// be at least len(addrs)). When maxLive is positive, the eviction rule
// runs after each access via AccessEvict, interleaved exactly as a
// caller making one Access and one EvictOldest check per reference
// would, so batched and per-call processing yield identical distances.
func (a *ApproxAnalyzer) AccessBatch(addrs []trace.Addr, maxLive int, dists []int64) []int64 {
	dists = dists[:len(addrs)]
	for i, addr := range addrs {
		dists[i] = a.AccessEvict(addr, maxLive)
	}
	return dists
}

// Distinct returns the number of distinct elements seen so far.
func (a *ApproxAnalyzer) Distinct() int { return len(a.last) }

// EvictOldest caps the analyzer's memory at maxLive tracked elements by
// forgetting the least-recently-accessed ones: whole oldest buckets are
// dropped until at most maxLive live elements remain, and the addresses
// whose last access fell in a dropped bucket are removed. A later
// access to an evicted address reads as a cold miss (Infinite), the
// same graceful degradation a smaller profiling window would give. It
// returns the number of elements evicted.
func (a *ApproxAnalyzer) EvictOldest(maxLive int) int {
	if maxLive < 0 {
		maxLive = 0
	}
	if a.live <= int64(maxLive) {
		return 0
	}
	var dropped int64
	cutoff := int64(-1)
	i := 0
	for ; i < len(a.buckets) && a.live-dropped > int64(maxLive); i++ {
		dropped += a.buckets[i].count
		cutoff = a.buckets[i].maxTime
	}
	a.buckets = a.buckets[i:]
	a.live -= dropped
	// Every address's single live slot is its last-access time, so the
	// evicted addresses are exactly those at or before the cutoff.
	for addr, t := range a.last {
		if t <= cutoff {
			delete(a.last, addr)
		}
	}
	return int(dropped)
}

// Buckets returns the current bucket count (the memory bound under
// test: O(log(M)/ε) instead of O(M)).
func (a *ApproxAnalyzer) Buckets() int { return len(a.buckets) }

// find returns the index of the bucket containing time x.
func (a *ApproxAnalyzer) find(x int64) int {
	return sort.Search(len(a.buckets), func(i int) bool {
		return a.buckets[i].maxTime >= x
	})
}

// targetBuckets is the size the structure compacts toward.
func (a *ApproxAnalyzer) targetBuckets() int {
	n := 64
	// log_{1+eps}(live) buckets suffice for the error bound.
	for m := a.live; m > 1; m = int64(float64(m) / (1 + a.eps)) {
		n++
	}
	return n
}

// compact merges adjacent buckets from oldest to newest while the
// merged size stays within ε of the number of distinct elements more
// recent than the pair — which is exactly what bounds the relative
// error of the mid-bucket position estimate.
func (a *ApproxAnalyzer) compact() {
	n := len(a.buckets)
	// newer[i]: live elements in buckets strictly newer than i.
	if cap(a.newerScratch) < n {
		a.newerScratch = make([]int64, n)
	}
	newer := a.newerScratch[:n]
	var acc int64
	for i := n - 1; i >= 0; i-- {
		newer[i] = acc
		acc += a.buckets[i].count
	}
	out := a.buckets[:0]
	for i := 0; i < n; i++ {
		b := a.buckets[i]
		if b.count == 0 && len(out) > 0 {
			// Empty bucket: extend the previous range.
			out[len(out)-1].maxTime = b.maxTime
			continue
		}
		if len(out) > 0 {
			prev := &out[len(out)-1]
			if float64(prev.count+b.count) <= a.eps*float64(newer[i])+1 {
				prev.count += b.count
				prev.maxTime = b.maxTime
				continue
			}
		}
		out = append(out, b)
	}
	a.buckets = out
}
