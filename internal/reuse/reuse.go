// Package reuse computes LRU stack distance (reuse distance) exactly in
// O(log M) time per access, following Mattson et al. [24] as used by
// Ding and Zhong [12]. The reuse distance of an access is the number of
// distinct data elements referenced between this access and the
// previous access to the same element; an element with reuse distance d
// sits at depth d+1 of the LRU stack, so the access hits in a
// fully-associative LRU cache of capacity C iff d < C.
//
// The implementation keeps, for every live element, the logical time of
// its most recent access, and a Fenwick (binary indexed) tree with one
// set bit per live element at that time. The distance of an access is
// then a single prefix-sum query. Because logical time grows without
// bound while the number of live elements does not, the tree is
// periodically compacted: live last-access times are remapped onto a
// dense prefix, preserving order. Compaction is O(M log M) and happens
// every O(capacity) accesses, so the amortized cost stays logarithmic.
package reuse

import (
	"slices"

	"lpp/internal/trace"
)

// Infinite is the distance reported for a cold (first-ever) access.
const Infinite = int64(-1)

// Analyzer measures the reuse distance of a stream of accesses.
type Analyzer struct {
	last map[trace.Addr]int64 // element -> last access time (tree index)
	tree []int64              // Fenwick tree over time slots, 1-based
	now  int64                // next time slot to use

	// scratch is reused across compactions so the steady state of
	// the Access hot loop allocates nothing.
	scratch []int64
}

// lastMapHint pre-sizes the last-access map: the analyzer sits on the
// hot path of every sampled access, and growing the map from empty
// costs a rehash cascade during the first thousands of accesses.
const lastMapHint = 1 << 12

// NewAnalyzer returns an empty Analyzer.
func NewAnalyzer() *Analyzer {
	return &Analyzer{
		last: make(map[trace.Addr]int64, lastMapHint),
		tree: make([]int64, 1<<16),
		now:  0,
	}
}

// Access records a reference to addr and returns its reuse distance:
// the number of distinct other elements accessed since the previous
// reference to addr, or Infinite if addr has never been accessed.
func (a *Analyzer) Access(addr trace.Addr) int64 {
	if a.now+1 >= int64(len(a.tree)) {
		a.compact()
	}
	t := a.now
	a.now++
	prev, seen := a.last[addr]
	a.last[addr] = t
	a.add(t, 1)
	if !seen {
		return Infinite
	}
	// Distinct elements strictly between prev and t: every live
	// element has exactly one set bit at its last access time, and
	// addr's own bit is at prev, so sum over (prev, t) counts others.
	d := a.sum(t-1) - a.sum(prev)
	a.add(prev, -1)
	return d
}

// Distinct returns the number of distinct elements seen so far.
func (a *Analyzer) Distinct() int { return len(a.last) }

// compact remaps live last-access times onto 0..n-1 (order-preserving)
// and rebuilds the Fenwick tree, growing it if the live set needs room.
// The scratch buffer and the tree itself are reused across compactions,
// so a steady-state compaction performs no allocations: ranks come from
// a binary search over the sorted live times (each live element holds a
// distinct time, so the search is exact), and the rebuilt tree — one
// set bit per slot 0..n-1 — is written directly in one O(size) pass
// instead of n individual O(log size) point updates.
func (a *Analyzer) compact() {
	times := a.scratch[:0]
	for _, t := range a.last {
		times = append(times, t)
	}
	slices.Sort(times)
	a.scratch = times
	size := len(a.tree)
	for size < 4*(len(times)+1) || size < 1<<16 {
		size *= 2
	}
	if size == len(a.tree) {
		clear(a.tree)
	} else {
		a.tree = make([]int64, size)
	}
	for addr, t := range a.last {
		r, _ := slices.BinarySearch(times, t)
		a.last[addr] = int64(r)
	}
	// Slots 0..n-1 (tree indices 1..n) each hold one set bit; a
	// Fenwick node i covers (i-lowbit(i), i], so its value is the
	// overlap of that range with [1, n].
	n := int64(len(times))
	for i := int64(1); i < int64(len(a.tree)); i++ {
		lo := i - i&(-i)
		if lo >= n {
			continue
		}
		hi := i
		if hi > n {
			hi = n
		}
		a.tree[i] = hi - lo
	}
	a.now = n
}

// add adds delta at time slot t (0-based externally, 1-based in tree).
func (a *Analyzer) add(t, delta int64) {
	for i := t + 1; i < int64(len(a.tree)); i += i & (-i) {
		a.tree[i] += delta
	}
}

// sum returns the number of set bits in slots [0, t].
func (a *Analyzer) sum(t int64) int64 {
	if t < 0 {
		return 0
	}
	var s int64
	for i := t + 1; i > 0; i -= i & (-i) {
		s += a.tree[i]
	}
	return s
}
