package reuse

import (
	"math/rand"
	"testing"

	"lpp/internal/stats"
	"lpp/internal/trace"
)

func TestApproxMatchesExactOnSmallDistances(t *testing.T) {
	// Before any compaction every bucket is a singleton, so the
	// approximate analyzer is exact.
	ex, ap := NewAnalyzer(), NewApproxAnalyzer(0.05)
	seq := []trace.Addr{1, 2, 3, 1, 2, 3, 3, 1}
	for _, addr := range seq {
		if got, want := ap.Access(addr), ex.Access(addr); got != want {
			t.Fatalf("distance = %d, want %d", got, want)
		}
	}
}

func TestApproxColdAccesses(t *testing.T) {
	ap := NewApproxAnalyzer(0.1)
	for i := 0; i < 100; i++ {
		if d := ap.Access(trace.Addr(i)); d != Infinite {
			t.Fatalf("cold access reported distance %d", d)
		}
	}
	if ap.Distinct() != 100 {
		t.Errorf("Distinct = %d", ap.Distinct())
	}
}

func TestApproxRelativeErrorBound(t *testing.T) {
	// Random accesses over a large working set: compare against the
	// exact analyzer; relative error must stay near eps for long
	// distances.
	const eps = 0.1
	ex, ap := NewAnalyzer(), NewApproxAnalyzer(eps)
	rng := stats.NewRNG(17)
	var worst float64
	for i := 0; i < 200000; i++ {
		addr := trace.Addr(rng.Intn(20000))
		want := ex.Access(addr)
		got := ap.Access(addr)
		if want == Infinite {
			if got != Infinite {
				t.Fatal("approx saw warmth where exact saw cold")
			}
			continue
		}
		if want < 100 {
			continue // error bound is relative; tiny distances noisy
		}
		rel := float64(got-want) / float64(want)
		if rel < 0 {
			rel = -rel
		}
		if rel > worst {
			worst = rel
		}
	}
	// Mid-bucket estimation plus merging tolerates up to ~2ε.
	if worst > 2.5*eps {
		t.Errorf("worst relative error %.3f exceeds %.3f", worst, 2.5*eps)
	}
}

func TestApproxCyclicWorkingSet(t *testing.T) {
	// Cyclic reuse of N elements: every warm access has true
	// distance N-1.
	const n = 50000
	ap := NewApproxAnalyzer(0.05)
	for round := 0; round < 3; round++ {
		for i := 0; i < n; i++ {
			d := ap.Access(trace.Addr(i))
			if round == 0 {
				continue
			}
			rel := float64(d-(n-1)) / float64(n-1)
			if rel < 0 {
				rel = -rel
			}
			if rel > 0.15 {
				t.Fatalf("round %d elem %d: distance %d, want ~%d", round, i, d, n-1)
			}
		}
	}
}

func TestApproxMemoryBound(t *testing.T) {
	// The bucket count must stay logarithmic in the working set, not
	// linear in trace length.
	ap := NewApproxAnalyzer(0.05)
	rng := stats.NewRNG(3)
	for i := 0; i < 500000; i++ {
		ap.Access(trace.Addr(rng.Intn(100000)))
	}
	if b := ap.Buckets(); b > 4096 {
		t.Errorf("buckets = %d; memory bound violated", b)
	}
}

func TestApproxDefaultEps(t *testing.T) {
	for _, bad := range []float64{0, -1, 1, 7} {
		a := NewApproxAnalyzer(bad)
		if a.eps != 0.05 {
			t.Errorf("eps(%g) = %g, want default 0.05", bad, a.eps)
		}
	}
}

func BenchmarkApproxAccess(b *testing.B) {
	a := NewApproxAnalyzer(0.05)
	rng := stats.NewRNG(7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Access(trace.Addr(rng.Intn(1 << 16)))
	}
}

func TestApproxEvictOldest(t *testing.T) {
	ap := NewApproxAnalyzer(0.05)
	for i := 0; i < 10000; i++ {
		ap.Access(trace.Addr(i))
	}
	evicted := ap.EvictOldest(1000)
	if evicted < 9000 {
		t.Fatalf("evicted %d, want >= 9000", evicted)
	}
	if ap.Distinct() > 1000 {
		t.Fatalf("Distinct = %d after eviction cap 1000", ap.Distinct())
	}
	// Evicted (old) addresses read cold again; survivors stay warm.
	if d := ap.Access(0); d != Infinite {
		t.Errorf("evicted address warm: %d", d)
	}
	if d := ap.Access(9999); d == Infinite {
		t.Error("recent address went cold")
	}
	// No-op when already under the cap.
	if n := ap.EvictOldest(1 << 20); n != 0 {
		t.Errorf("eviction under cap removed %d", n)
	}
}

func TestApproxEvictKeepsDistancesConsistent(t *testing.T) {
	// After eviction the analyzer must keep producing sane distances:
	// a cyclic working set larger than the cap degrades to cold
	// misses, never to panics or negative distances.
	const n, cap = 5000, 1000
	ap := NewApproxAnalyzer(0.05)
	for round := 0; round < 4; round++ {
		for i := 0; i < n; i++ {
			d := ap.Access(trace.Addr(i))
			if d != Infinite && d < 0 {
				t.Fatalf("negative distance %d", d)
			}
			if ap.Distinct() > 2*cap {
				ap.EvictOldest(cap)
			}
		}
	}
	if ap.Distinct() > 2*cap {
		t.Errorf("Distinct = %d, cap %d not enforced", ap.Distinct(), cap)
	}
}

// TestApproxAccessBatchMatchesPerCall: the batched entry point must be
// bit-identical to the per-call Access + EvictOldest interleave it
// replaces on the ingest hot path, eviction points included.
func TestApproxAccessBatchMatchesPerCall(t *testing.T) {
	const n = 20000
	const maxLive = 256
	rng := rand.New(rand.NewSource(42))
	addrs := make([]trace.Addr, n)
	for i := range addrs {
		// Mix a hot set, a drifting sweep, and cold addresses so both
		// the eviction rule and the compaction path fire.
		switch rng.Intn(3) {
		case 0:
			addrs[i] = trace.Addr(rng.Intn(64))
		case 1:
			addrs[i] = trace.Addr(1000 + i/4)
		default:
			addrs[i] = trace.Addr(1 << 20 * uint64(i))
		}
	}
	serial := NewApproxAnalyzer(0)
	want := make([]int64, n)
	for i, a := range addrs {
		want[i] = serial.Access(a)
		if serial.Distinct() > maxLive {
			serial.EvictOldest(maxLive / 2)
		}
	}
	batched := NewApproxAnalyzer(0)
	got := make([]int64, n)
	// Uneven batch sizes so batch boundaries land everywhere.
	for off := 0; off < n; {
		end := off + 1 + rng.Intn(997)
		if end > n {
			end = n
		}
		batched.AccessBatch(addrs[off:end], maxLive, got[off:end])
		off = end
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("access %d (addr %#x): batched dist %d, per-call %d", i, addrs[i], got[i], want[i])
		}
	}
	if got, want := batched.Distinct(), serial.Distinct(); got != want {
		t.Errorf("distinct = %d, want %d", got, want)
	}
}
