package reuse

import (
	"errors"
	"fmt"
	"sort"

	"lpp/internal/trace"
)

// ApproxState is the complete serializable state of an ApproxAnalyzer.
// It exists so a streaming detector can be checkpointed and recovered
// with bit-exact behavior: an analyzer restored from a State answers
// every future Access exactly as the original would have. Slices are
// ordered deterministically (the last-access table by address), so the
// same analyzer state always produces the same State.
type ApproxState struct {
	Eps  float64
	Now  int64
	Live int64
	// Addrs/Times is the last-access table, sorted by address.
	Addrs []trace.Addr
	Times []int64
	// BucketTimes/BucketCounts are the time buckets, oldest first.
	BucketTimes  []int64
	BucketCounts []int64
}

// State snapshots the analyzer.
func (a *ApproxAnalyzer) State() ApproxState {
	st := ApproxState{
		Eps:          a.eps,
		Now:          a.now,
		Live:         a.live,
		Addrs:        make([]trace.Addr, 0, len(a.last)),
		Times:        make([]int64, 0, len(a.last)),
		BucketTimes:  make([]int64, 0, len(a.buckets)),
		BucketCounts: make([]int64, 0, len(a.buckets)),
	}
	for addr := range a.last {
		st.Addrs = append(st.Addrs, addr)
	}
	sort.Slice(st.Addrs, func(i, j int) bool { return st.Addrs[i] < st.Addrs[j] })
	for _, addr := range st.Addrs {
		st.Times = append(st.Times, a.last[addr])
	}
	for _, b := range a.buckets {
		st.BucketTimes = append(st.BucketTimes, b.maxTime)
		st.BucketCounts = append(st.BucketCounts, b.count)
	}
	return st
}

var errApproxState = errors.New("reuse: invalid analyzer state")

// NewApproxFromState reconstructs an analyzer from a State, validating
// every structural invariant the Access path relies on so a corrupted
// snapshot is rejected instead of causing a panic later.
func NewApproxFromState(st ApproxState) (*ApproxAnalyzer, error) {
	if st.Eps <= 0 || st.Eps >= 1 {
		return nil, fmt.Errorf("%w: eps %v out of (0,1)", errApproxState, st.Eps)
	}
	if st.Now < 0 || st.Live < 0 {
		return nil, fmt.Errorf("%w: negative clock", errApproxState)
	}
	if len(st.Addrs) != len(st.Times) {
		return nil, fmt.Errorf("%w: addr/time length mismatch", errApproxState)
	}
	if len(st.BucketTimes) != len(st.BucketCounts) {
		return nil, fmt.Errorf("%w: bucket length mismatch", errApproxState)
	}
	var sum int64
	maxTime := int64(-1)
	for i, t := range st.BucketTimes {
		if i > 0 && t <= st.BucketTimes[i-1] {
			return nil, fmt.Errorf("%w: bucket times not ascending", errApproxState)
		}
		if t >= st.Now {
			return nil, fmt.Errorf("%w: bucket time %d >= now %d", errApproxState, t, st.Now)
		}
		if st.BucketCounts[i] < 0 {
			return nil, fmt.Errorf("%w: negative bucket count", errApproxState)
		}
		sum += st.BucketCounts[i]
		maxTime = t
	}
	if sum != st.Live {
		return nil, fmt.Errorf("%w: live %d != bucket sum %d", errApproxState, st.Live, sum)
	}
	if int64(len(st.Addrs)) != st.Live {
		return nil, fmt.Errorf("%w: %d addrs but live %d", errApproxState, len(st.Addrs), st.Live)
	}
	a := &ApproxAnalyzer{
		eps:  st.Eps,
		now:  st.Now,
		live: st.Live,
		last: make(map[trace.Addr]int64, len(st.Addrs)),
	}
	for i, addr := range st.Addrs {
		if i > 0 && addr <= st.Addrs[i-1] {
			return nil, fmt.Errorf("%w: addrs not strictly ascending", errApproxState)
		}
		t := st.Times[i]
		if t < 0 || t > maxTime {
			return nil, fmt.Errorf("%w: last-access time %d outside buckets", errApproxState, t)
		}
		a.last[addr] = t
	}
	a.buckets = make([]approxBucket, len(st.BucketTimes))
	for i := range st.BucketTimes {
		a.buckets[i] = approxBucket{maxTime: st.BucketTimes[i], count: st.BucketCounts[i]}
	}
	return a, nil
}
