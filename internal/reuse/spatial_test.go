package reuse

import (
	"testing"

	"lpp/internal/stats"
	"lpp/internal/trace"
)

func TestSpatialSequentialFullUtilization(t *testing.T) {
	s := NewSpatialProfile(6, 3) // 64B blocks, 8B words
	for i := 0; i < 8192; i++ {
		s.Access(trace.Addr(i) * 8)
	}
	if u := s.Utilization(); u != 1 {
		t.Errorf("sequential utilization = %g, want 1", u)
	}
	// A sequential sweep touches each block 8 times but each element
	// once: blocks show strong spatial benefit.
	if b := s.SpatialBenefit(32 << 10); b < 2 {
		t.Errorf("sequential spatial benefit = %g, want >= 2", b)
	}
}

func TestSpatialStridedLowUtilization(t *testing.T) {
	s := NewSpatialProfile(6, 3)
	// Stride of one word per block: 1/8 of each block used.
	for i := 0; i < 4096; i++ {
		s.Access(trace.Addr(i) * 64)
	}
	if u := s.Utilization(); u != 0.125 {
		t.Errorf("strided utilization = %g, want 0.125", u)
	}
}

func TestSpatialInterleavingImprovesUtilization(t *testing.T) {
	// The affinity-regrouping motivation, measured: two arrays
	// accessed in lockstep at matching indices. Separate layouts use
	// only the touched word of each block per pair; interleaved
	// layouts use both halves of each block.
	separate := NewSpatialProfile(6, 3)
	rng := stats.NewRNG(9)
	for n := 0; n < 4096; n++ {
		i := trace.Addr(rng.Intn(4096))
		separate.Access(0x100000 + i*8) // a[i]
		separate.Access(0x200000 + i*8) // b[i]
	}
	interleaved := NewSpatialProfile(6, 3)
	rng = stats.NewRNG(9)
	for n := 0; n < 4096; n++ {
		i := trace.Addr(rng.Intn(4096))
		interleaved.Access(0x100000 + i*16)     // a[i]
		interleaved.Access(0x100000 + i*16 + 8) // b[i] adjacent
	}
	if interleaved.Utilization() <= separate.Utilization() {
		t.Errorf("interleaving did not improve utilization: %g vs %g",
			interleaved.Utilization(), separate.Utilization())
	}
}

func TestSpatialRandomNoBenefit(t *testing.T) {
	s := NewSpatialProfile(6, 3)
	rng := stats.NewRNG(4)
	for i := 0; i < 50000; i++ {
		// Random words scattered over a huge range: block reuse
		// is as rare as element reuse.
		s.Access(trace.Addr(rng.Uint64() % (1 << 30)))
	}
	if b := s.SpatialBenefit(32 << 10); b > 1.5 {
		t.Errorf("random access spatial benefit = %g, want ~1", b)
	}
}

func TestSpatialEmptyAndPanics(t *testing.T) {
	s := NewSpatialProfile(6, 3)
	if s.Utilization() != 0 {
		t.Error("empty utilization should be 0")
	}
	s.Block(1, 1) // ignored, no panic
	for _, f := range []func(){
		func() { NewSpatialProfile(3, 3) },
		func() { NewSpatialProfile(16, 3) }, // >64 words per block
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestPopcount(t *testing.T) {
	cases := map[uint64]int{0: 0, 1: 1, 0xFF: 8, 1 << 63: 1, ^uint64(0): 64}
	for in, want := range cases {
		if got := popcount(in); got != want {
			t.Errorf("popcount(%#x) = %d, want %d", in, got, want)
		}
	}
}
