package reuse

// Histogram accumulates reuse distances and answers the question the
// paper uses to define locality precisely: "the miss rate across all
// cache sizes". For a fully-associative LRU cache of capacity C blocks,
// an access misses iff its reuse distance (in blocks) is >= C or cold,
// so the miss rate at every capacity falls out of the distance CDF.
type Histogram struct {
	// counts[d] for small d, kept exact up to exactLimit.
	counts []int64
	// overflow holds (distance, count) pairs in log2 buckets above
	// exactLimit: bucket b covers [1<<b, 1<<(b+1)).
	overflow [64]int64
	cold     int64
	total    int64
	maxDist  int64
}

const exactLimit = 1 << 14 // exact counts up to 16K-block distances

// NewHistogram returns an empty Histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]int64, exactLimit)}
}

// ensure backfills the exact-count table so the zero Histogram value is
// usable, not just NewHistogram's.
func (h *Histogram) ensure() {
	if h.counts == nil {
		h.counts = make([]int64, exactLimit)
	}
}

// Add records one reuse distance (use Infinite for a cold access).
func (h *Histogram) Add(d int64) {
	h.total++
	if d == Infinite {
		h.cold++
		return
	}
	h.ensure()
	if d > h.maxDist {
		h.maxDist = d
	}
	if d < exactLimit {
		h.counts[d]++
		return
	}
	h.overflow[log2(uint64(d))]++
}

// Total returns the number of recorded accesses, including cold ones.
func (h *Histogram) Total() int64 { return h.total }

// Cold returns the number of cold (first-reference) accesses.
func (h *Histogram) Cold() int64 { return h.cold }

// MaxDistance returns the largest finite distance recorded.
func (h *Histogram) MaxDistance() int64 { return h.maxDist }

// MissRate returns the fully-associative LRU miss rate for a cache of
// capacity blocks: the fraction of accesses with distance >= capacity,
// counting cold accesses as misses. Distances in overflow buckets are
// attributed conservatively (a bucket straddling the capacity counts as
// missing), which only matters for capacities above 16K blocks.
func (h *Histogram) MissRate(capacity int64) float64 {
	if h.total == 0 {
		return 0
	}
	if capacity < 0 {
		// A cache that holds nothing misses everything; a negative
		// capacity must not index the count table.
		capacity = 0
	}
	misses := h.cold
	if capacity < exactLimit {
		for d := capacity; d < int64(len(h.counts)); d++ {
			misses += h.counts[d]
		}
		for _, c := range h.overflow {
			misses += c
		}
	} else {
		for b := log2(uint64(capacity)); b < 64; b++ {
			misses += h.overflow[b]
		}
	}
	return float64(misses) / float64(h.total)
}

// MissRates evaluates MissRate at each capacity.
func (h *Histogram) MissRates(capacities []int64) []float64 {
	out := make([]float64, len(capacities))
	for i, c := range capacities {
		out[i] = h.MissRate(c)
	}
	return out
}

// Merge adds the contents of other into h.
func (h *Histogram) Merge(other *Histogram) {
	if len(other.counts) > 0 {
		h.ensure()
	}
	for d, c := range other.counts {
		h.counts[d] += c
	}
	for b, c := range other.overflow {
		h.overflow[b] += c
	}
	h.cold += other.cold
	h.total += other.total
	if other.maxDist > h.maxDist {
		h.maxDist = other.maxDist
	}
}

func log2(x uint64) int {
	n := 0
	for x > 1 {
		x >>= 1
		n++
	}
	return n
}
