// Package cache simulates the memory hierarchy used in the paper's
// evaluation: a set-associative LRU data cache of 64-byte blocks and
// 512 sets whose associativity varies from 1 to 8, so the cache size
// ranges from 32KB to 256KB in 32KB units (Section 3.2).
//
// The MultiAssoc simulator reproduces the key property of the Cheetah
// simulator [33]: one pass over the trace yields the miss rate of every
// associativity simultaneously. Within a set, LRU obeys stack
// inclusion, so recording the LRU stack depth of each hit gives the hit
// count for all associativities at once.
package cache

import "lpp/internal/trace"

// Default geometry from Section 3.2 of the paper.
const (
	DefaultBlockBits = 6   // 64-byte blocks
	DefaultSets      = 512 // 512 sets
	MaxAssoc         = 8   // direct-mapped .. 8-way => 32KB..256KB
)

// Sizes returns the cache sizes (bytes) reachable by varying the
// associativity from 1 to maxAssoc with the given geometry.
func Sizes(sets, blockBits, maxAssoc int) []int {
	out := make([]int, maxAssoc)
	for a := 1; a <= maxAssoc; a++ {
		out[a-1] = sets * (1 << blockBits) * a
	}
	return out
}

// SetAssoc is a single set-associative LRU cache.
type SetAssoc struct {
	sets      int
	assoc     int
	blockBits int
	lines     [][]trace.Addr // per set, most-recently-used first
	hits      uint64
	misses    uint64
}

// NewSetAssoc returns a cache with the given geometry. sets must be a
// power of two.
func NewSetAssoc(sets, assoc, blockBits int) *SetAssoc {
	if sets&(sets-1) != 0 || sets <= 0 {
		panic("cache: sets must be a positive power of two")
	}
	if assoc <= 0 {
		panic("cache: assoc must be positive")
	}
	c := &SetAssoc{sets: sets, assoc: assoc, blockBits: blockBits}
	c.lines = make([][]trace.Addr, sets)
	return c
}

// Access references addr and reports whether it hit.
func (c *SetAssoc) Access(addr trace.Addr) bool {
	blk := addr >> c.blockBits
	set := int(blk) & (c.sets - 1)
	lines := c.lines[set]
	for i, b := range lines {
		if b == blk {
			copy(lines[1:i+1], lines[:i])
			lines[0] = blk
			c.hits++
			return true
		}
	}
	c.misses++
	if len(lines) < c.assoc {
		lines = append(lines, 0)
	}
	copy(lines[1:], lines)
	lines[0] = blk
	c.lines[set] = lines
	return false
}

// Hits returns the hit count so far.
func (c *SetAssoc) Hits() uint64 { return c.hits }

// Misses returns the miss count so far.
func (c *SetAssoc) Misses() uint64 { return c.misses }

// MissRate returns misses / (hits + misses), or 0 with no accesses.
func (c *SetAssoc) MissRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.misses) / float64(total)
}

// Reset clears the cache contents and counters.
func (c *SetAssoc) Reset() {
	for i := range c.lines {
		c.lines[i] = c.lines[i][:0]
	}
	c.hits, c.misses = 0, 0
}

// Block accepts (and ignores) basic-block events so a SetAssoc can sit
// behind event forwarders.
func (c *SetAssoc) Block(trace.BlockID, int) {}

// Sink adapts a SetAssoc to trace.Instrumenter (whose Access returns
// nothing, unlike SetAssoc.Access which reports the hit).
type Sink struct{ C *SetAssoc }

// Block implements trace.Instrumenter.
func (s Sink) Block(trace.BlockID, int) {}

// Access implements trace.Instrumenter.
func (s Sink) Access(addr trace.Addr) { s.C.Access(addr) }
