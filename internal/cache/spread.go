package cache

import "lpp/internal/stats"

// Spread measures how tightly a set of locality vectors clusters: the
// per-dimension population standard deviation of the miss rates,
// averaged over the eight cache sizes. It is the statistic of Table 4,
// computed for all executions of one phase (or all intervals of one
// BBV cluster).
func Spread(vs []Vector) float64 {
	if len(vs) < 2 {
		return 0
	}
	dim := make([]float64, len(vs))
	total := 0.0
	for d := 0; d < MaxAssoc; d++ {
		for i, v := range vs {
			dim[i] = v[d]
		}
		total += stats.StdDev(dim)
	}
	return total / MaxAssoc
}

// WeightedSpread aggregates Spread across groups, weighting each
// group's spread by its weight (the paper weights by phase or cluster
// size). Groups with non-positive weight are ignored.
func WeightedSpread(groups [][]Vector, weights []float64) float64 {
	if len(groups) != len(weights) {
		panic("cache: WeightedSpread length mismatch")
	}
	var sum, wsum float64
	for i, g := range groups {
		if weights[i] <= 0 {
			continue
		}
		sum += Spread(g) * weights[i]
		wsum += weights[i]
	}
	if wsum == 0 {
		return 0
	}
	return sum / wsum
}
