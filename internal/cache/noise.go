package cache

import "lpp/internal/stats"

// NoiseModel perturbs simulated miss rates the way a real machine does
// in Figure 4 of the paper: operating-system interference adds a small
// number of extra misses per phase execution, so short executions and
// low miss rates show proportionally more variation than long ones.
type NoiseModel struct {
	rng *stats.RNG
	// ExtraMissesPerRun is the expected number of interference misses
	// an execution suffers regardless of its length (TLB shootdowns,
	// interrupts, context switches touching the cache).
	ExtraMissesPerRun float64
	// FirstRunColdFactor inflates the very first execution of a phase
	// (cold libraries, page faults), the effect visible for Phase 1
	// in Figure 4.
	FirstRunColdFactor float64
}

// NewNoiseModel returns a deterministic noise model.
func NewNoiseModel(seed uint64) *NoiseModel {
	return &NoiseModel{
		rng:                stats.NewRNG(seed),
		ExtraMissesPerRun:  2000,
		FirstRunColdFactor: 1.5,
	}
}

// Perturb converts a simulated miss rate into a "measured" one for a
// phase execution with the given number of accesses; first reports
// whether this is the first execution of the phase. The perturbation
// shrinks as executions get longer, matching the observation that
// Phase 2 of Compress (shorter, lower miss rate) varies more than
// Phase 1 on the Power 4.
func (n *NoiseModel) Perturb(missRate float64, accesses int64, first bool) float64 {
	if accesses <= 0 {
		return missRate
	}
	extra := n.ExtraMissesPerRun * (1 + 0.5*n.rng.NormFloat64())
	if extra < 0 {
		extra = 0
	}
	m := missRate + extra/float64(accesses)
	if first {
		m *= n.FirstRunColdFactor
	}
	if m < 0 {
		m = 0
	}
	if m > 1 {
		m = 1
	}
	return m
}
