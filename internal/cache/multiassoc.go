package cache

import "lpp/internal/trace"

// MultiAssoc simulates every associativity from 1 to MaxAssoc of a
// set-associative LRU cache in a single pass, the way Cheetah [33]
// measures all cache sizes at once. Each set keeps an LRU stack of up
// to maxAssoc blocks; the depth at which an access hits determines the
// smallest associativity that would have hit it.
type MultiAssoc struct {
	sets      int
	maxAssoc  int
	blockBits int
	stacks    [][]trace.Addr
	// depthHits[d] counts accesses that hit at stack depth d
	// (0-based). An access at depth d hits for every assoc > d.
	depthHits []uint64
	accesses  uint64
}

// NewMultiAssoc returns a one-pass multi-associativity simulator. sets
// must be a power of two.
func NewMultiAssoc(sets, maxAssoc, blockBits int) *MultiAssoc {
	if sets&(sets-1) != 0 || sets <= 0 {
		panic("cache: sets must be a positive power of two")
	}
	return &MultiAssoc{
		sets:      sets,
		maxAssoc:  maxAssoc,
		blockBits: blockBits,
		stacks:    make([][]trace.Addr, sets),
		depthHits: make([]uint64, maxAssoc),
	}
}

// NewDefault returns a MultiAssoc with the paper's geometry: 512 sets,
// 64-byte blocks, associativity 1..8 (32KB..256KB).
func NewDefault() *MultiAssoc {
	return NewMultiAssoc(DefaultSets, MaxAssoc, DefaultBlockBits)
}

// Access references addr, updating the per-depth hit counters.
func (m *MultiAssoc) Access(addr trace.Addr) {
	m.accesses++
	blk := addr >> m.blockBits
	set := int(blk) & (m.sets - 1)
	stack := m.stacks[set]
	for i, b := range stack {
		if b == blk {
			m.depthHits[i]++
			copy(stack[1:i+1], stack[:i])
			stack[0] = blk
			return
		}
	}
	if len(stack) < m.maxAssoc {
		stack = append(stack, 0)
	}
	copy(stack[1:], stack)
	stack[0] = blk
	m.stacks[set] = stack
}

// Block implements trace.Instrumenter (blocks are ignored).
func (m *MultiAssoc) Block(trace.BlockID, int) {}

// Accesses returns the number of accesses simulated so far.
func (m *MultiAssoc) Accesses() uint64 { return m.accesses }

// MissRate returns the miss rate the cache would have had with the
// given associativity (1..maxAssoc).
func (m *MultiAssoc) MissRate(assoc int) float64 {
	if assoc < 1 || assoc > m.maxAssoc {
		panic("cache: assoc out of range")
	}
	if m.accesses == 0 {
		return 0
	}
	var hits uint64
	for d := 0; d < assoc; d++ {
		hits += m.depthHits[d]
	}
	return float64(m.accesses-hits) / float64(m.accesses)
}

// Vector returns the locality vector the paper uses in Table 4: the
// miss rates for cache sizes 32KB..256KB in 32KB increments (that is,
// associativity 1..8 with the default geometry).
func (m *MultiAssoc) Vector() Vector {
	var v Vector
	for a := 1; a <= m.maxAssoc && a <= len(v); a++ {
		v[a-1] = m.MissRate(a)
	}
	return v
}

// Reset clears cache contents and counters.
func (m *MultiAssoc) Reset() {
	for i := range m.stacks {
		m.stacks[i] = m.stacks[i][:0]
	}
	for i := range m.depthHits {
		m.depthHits[i] = 0
	}
	m.accesses = 0
}

// Snapshot captures the current counters so a caller can compute miss
// rates over a window (counters since the previous snapshot).
type Snapshot struct {
	depthHits [MaxAssoc]uint64
	accesses  uint64
}

// Snapshot returns the current counter state.
func (m *MultiAssoc) Snapshot() Snapshot {
	var s Snapshot
	copy(s.depthHits[:], m.depthHits)
	s.accesses = m.accesses
	return s
}

// Since returns the locality vector of the accesses made after s was
// taken, without resetting cache contents (so warm state is preserved
// across windows, as in a real adaptive cache).
func (m *MultiAssoc) Since(s Snapshot) (Vector, uint64) {
	var v Vector
	n := m.accesses - s.accesses
	if n == 0 {
		return v, 0
	}
	var hits uint64
	for a := 1; a <= m.maxAssoc && a <= len(v); a++ {
		hits += m.depthHits[a-1] - s.depthHits[a-1]
		v[a-1] = float64(n-hits) / float64(n)
	}
	return v, n
}

// Vector is a locality vector: miss rates at the 8 cache sizes
// 32KB..256KB (index i = (i+1)*32KB).
type Vector [MaxAssoc]float64

// MissAt returns the miss rate at size (assoc)*32KB, assoc in 1..8.
func (v Vector) MissAt(assoc int) float64 { return v[assoc-1] }
