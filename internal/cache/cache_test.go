package cache

import (
	"testing"
	"testing/quick"

	"lpp/internal/stats"
	"lpp/internal/trace"
)

func TestSizes(t *testing.T) {
	s := Sizes(DefaultSets, DefaultBlockBits, MaxAssoc)
	if s[0] != 32<<10 || s[7] != 256<<10 {
		t.Errorf("sizes = %v, want 32KB..256KB", s)
	}
}

func TestSetAssocDirectMappedConflict(t *testing.T) {
	c := NewSetAssoc(2, 1, 0) // 2 sets, direct mapped, 1-byte blocks
	// Addresses 0 and 2 map to set 0 and evict each other.
	c.Access(0)
	c.Access(2)
	if c.Access(0) {
		t.Error("expected conflict miss in direct-mapped cache")
	}
	if c.Hits() != 0 || c.Misses() != 3 {
		t.Errorf("hits=%d misses=%d, want 0,3", c.Hits(), c.Misses())
	}
}

func TestSetAssocLRUEviction(t *testing.T) {
	c := NewSetAssoc(1, 2, 0) // fully assoc, 2 lines
	c.Access(1)
	c.Access(2)
	c.Access(1) // 1 becomes MRU
	c.Access(3) // evicts 2
	if !c.Access(1) {
		t.Error("1 should still be cached")
	}
	if c.Access(2) {
		t.Error("2 should have been evicted (LRU)")
	}
}

func TestSetAssocReset(t *testing.T) {
	c := NewSetAssoc(1, 2, 0)
	c.Access(1)
	c.Access(1)
	c.Reset()
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Error("counters should clear on Reset")
	}
	if c.Access(1) {
		t.Error("cache contents should clear on Reset")
	}
}

func TestSetAssocBadGeometry(t *testing.T) {
	for _, f := range []func(){
		func() { NewSetAssoc(3, 1, 6) },
		func() { NewSetAssoc(0, 1, 6) },
		func() { NewSetAssoc(4, 0, 6) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on bad geometry")
				}
			}()
			f()
		}()
	}
}

func TestMultiAssocMatchesSetAssoc(t *testing.T) {
	// Property: MultiAssoc's per-assoc miss rate equals a dedicated
	// SetAssoc simulation at that associativity.
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		m := NewMultiAssoc(4, 4, 2)
		dedicated := make([]*SetAssoc, 4)
		for a := 1; a <= 4; a++ {
			dedicated[a-1] = NewSetAssoc(4, a, 2)
		}
		for i := 0; i < 3000; i++ {
			addr := trace.Addr(rng.Intn(256))
			m.Access(addr)
			for _, c := range dedicated {
				c.Access(addr)
			}
		}
		for a := 1; a <= 4; a++ {
			if m.MissRate(a) != dedicated[a-1].MissRate() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMultiAssocMonotone(t *testing.T) {
	// LRU stack inclusion: more ways never increases the miss rate.
	m := NewDefault()
	rng := stats.NewRNG(3)
	for i := 0; i < 100000; i++ {
		m.Access(trace.Addr(rng.Intn(1 << 20)))
	}
	prev := 1.1
	for a := 1; a <= MaxAssoc; a++ {
		mr := m.MissRate(a)
		if mr > prev+1e-12 {
			t.Errorf("miss rate increased with associativity at %d-way", a)
		}
		prev = mr
	}
}

func TestMultiAssocVector(t *testing.T) {
	m := NewDefault()
	m.Access(0)
	m.Access(0)
	v := m.Vector()
	if v.MissAt(1) != 0.5 || v.MissAt(8) != 0.5 {
		t.Errorf("vector = %v", v)
	}
}

func TestMultiAssocSnapshot(t *testing.T) {
	m := NewDefault()
	m.Access(0) // cold miss
	s := m.Snapshot()
	m.Access(0) // hit
	m.Access(64 << DefaultBlockBits * 1024)
	v, n := m.Since(s)
	if n != 2 {
		t.Fatalf("window accesses = %d, want 2", n)
	}
	if v.MissAt(8) != 0.5 {
		t.Errorf("window miss rate = %g, want 0.5", v.MissAt(8))
	}
	// Empty window.
	s2 := m.Snapshot()
	if _, n := m.Since(s2); n != 0 {
		t.Errorf("empty window accesses = %d", n)
	}
}

func TestMultiAssocReset(t *testing.T) {
	m := NewDefault()
	m.Access(0)
	m.Reset()
	if m.Accesses() != 0 || m.MissRate(1) != 0 {
		t.Error("Reset should clear counters")
	}
}

func TestNoiseModelShrinksWithLength(t *testing.T) {
	n := NewNoiseModel(1)
	base := 0.05
	shortRuns := make([]float64, 200)
	longRuns := make([]float64, 200)
	for i := range shortRuns {
		shortRuns[i] = n.Perturb(base, 10000, false)
		longRuns[i] = n.Perturb(base, 10000000, false)
	}
	if stats.StdDev(shortRuns) <= stats.StdDev(longRuns) {
		t.Error("short executions should vary more than long ones")
	}
	if f := n.Perturb(base, 10000000, true); f <= base {
		t.Error("first execution should be inflated")
	}
}

func TestNoiseModelBounds(t *testing.T) {
	n := NewNoiseModel(2)
	for i := 0; i < 1000; i++ {
		m := n.Perturb(0.99, 100, i == 0)
		if m < 0 || m > 1 {
			t.Fatalf("perturbed miss rate %g out of [0,1]", m)
		}
	}
	if n.Perturb(0.5, 0, false) != 0.5 {
		t.Error("zero-length execution should be unperturbed")
	}
}

func BenchmarkMultiAssocAccess(b *testing.B) {
	m := NewDefault()
	rng := stats.NewRNG(7)
	addrs := make([]trace.Addr, 1<<16)
	for i := range addrs {
		addrs[i] = trace.Addr(rng.Intn(1 << 22))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Access(addrs[i&(1<<16-1)])
	}
}

func TestSpread(t *testing.T) {
	same := []Vector{{0.1, 0.2}, {0.1, 0.2}}
	if got := Spread(same); got != 0 {
		t.Errorf("identical vectors spread = %g, want 0", got)
	}
	diff := []Vector{{0, 0}, {1, 1}}
	if got := Spread(diff); got <= 0 {
		t.Errorf("different vectors spread = %g, want > 0", got)
	}
	if Spread(nil) != 0 || Spread(diff[:1]) != 0 {
		t.Error("degenerate groups should be 0")
	}
}

func TestWeightedSpread(t *testing.T) {
	tight := []Vector{{0.1}, {0.1}}
	loose := []Vector{{0}, {1}}
	// All weight on the tight group: ~0.
	if got := WeightedSpread([][]Vector{tight, loose}, []float64{1, 0}); got != 0 {
		t.Errorf("weighted spread = %g, want 0", got)
	}
	// All weight on the loose group: = Spread(loose).
	if got := WeightedSpread([][]Vector{tight, loose}, []float64{0, 1}); got != Spread(loose) {
		t.Errorf("weighted spread = %g, want %g", got, Spread(loose))
	}
	if WeightedSpread(nil, nil) != 0 {
		t.Error("empty weighted spread should be 0")
	}
}

func TestWeightedSpreadMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	WeightedSpread([][]Vector{{}}, nil)
}

func TestSinkAndBlockPassthroughs(t *testing.T) {
	c := NewSetAssoc(4, 1, 6)
	s := Sink{C: c}
	s.Block(1, 10) // ignored
	s.Access(0)
	if c.Misses() != 1 {
		t.Error("Sink did not forward the access")
	}
	c.Block(2, 5) // ignored, no panic
	m := NewDefault()
	m.Block(3, 5) // ignored, no panic
	if m.Accesses() != 0 {
		t.Error("Block must not count as an access")
	}
}

func TestNewMultiAssocBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewMultiAssoc(3, 8, 6)
}

func TestSetAssocMissRateEmpty(t *testing.T) {
	c := NewSetAssoc(4, 1, 6)
	if c.MissRate() != 0 {
		t.Error("empty cache miss rate should be 0")
	}
}
