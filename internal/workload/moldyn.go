package workload

import (
	"lpp/internal/stats"
	"lpp/internal/trace"
)

// molDyn models the CHAOS MolDyn benchmark: molecular dynamics with a
// cell-based neighbor list. Every rebuild interval the program scans,
// for each particle, the particles in its surrounding cells — a small
// phase per particle whose length varies with the local density, which
// is exactly why the paper's automatic analysis marks each per-particle
// search as a phase while the programmer marks the whole rebuild as
// one (the MolDyn row of Table 6), and why MolDyn's strict prediction
// coverage is low (Table 2).
type molDyn struct {
	meter
	p             Params
	pos, vel, frc array // 3 words per particle each
	neighbors     array // neighbor index storage
	cellHeads     array
	cellNext      array
	coords        []float64 // actual positions (drive the search)
	cells         int       // cells per box edge
	nbrIdx        [][]int32 // neighbor lists built by the last rebuild
}

// MolDyn basic-block IDs.
const (
	molBStep trace.BlockID = 600 + iota
	molBBuildHead
	molBBuildParticle
	molBBuildScan
	molBForceHead
	molBForceChunk
	molBUpdateHead
	molBUpdateChunk
	molBExit
)

const (
	molChunk        = 32
	molRebuildEvery = 3
	molCutoff       = 0.35 // neighbor cutoff in cell units
)

func newMolDyn(p Params) Program {
	m := &molDyn{p: p}
	var s space
	m.pos = s.alloc(p.N*3, 8)
	m.vel = s.alloc(p.N*3, 8)
	m.frc = s.alloc(p.N*3, 8)
	m.neighbors = s.alloc(p.N*64, 4)
	// Box subdivided into cells of roughly cutoff size; density
	// varies across the box so neighbor counts are uneven.
	m.cells = 6
	m.cellHeads = s.alloc(m.cells*m.cells*m.cells, 4)
	m.cellNext = s.alloc(p.N, 4)
	m.coords = make([]float64, p.N*3)
	rng := stats.NewRNG(p.Seed)
	for i := 0; i < p.N; i++ {
		// Clustered placement: half the particles bunch in one
		// octant, producing the uneven per-particle search the
		// paper describes.
		scale := 1.0
		if i%2 == 0 {
			scale = 0.5
		}
		for d := 0; d < 3; d++ {
			m.coords[i*3+d] = rng.Float64() * scale * float64(m.cells)
		}
	}
	return m
}

func (m *molDyn) cellOf(i int) (int, int, int) {
	cx := int(m.coords[i*3]) % m.cells
	cy := int(m.coords[i*3+1]) % m.cells
	cz := int(m.coords[i*3+2]) % m.cells
	return cx, cy, cz
}

func (m *molDyn) cellIndex(x, y, z int) int {
	x = (x + m.cells) % m.cells
	y = (y + m.cells) % m.cells
	z = (z + m.cells) % m.cells
	return (z*m.cells+y)*m.cells + x
}

func (m *molDyn) Run(ins trace.Instrumenter) {
	m.begin(ins)
	for step := 0; step < m.p.Steps; step++ {
		m.block(molBStep, 4)
		m.mark() // the programmer marks the whole time step

		if step%molRebuildEvery == 0 {
			m.rebuildNeighbors()
		}
		m.forces()
		m.update()
	}
	m.block(molBExit, 2)
}

// rebuildNeighbors builds cell lists and then, for each particle,
// scans the 27 surrounding cells — the per-particle search phase.
func (m *molDyn) rebuildNeighbors() {
	n := m.p.N
	m.block(molBBuildHead, 3)
	// Bin particles into cells.
	bins := make([][]int32, m.cells*m.cells*m.cells)
	for i := 0; i < n; i++ {
		cx, cy, cz := m.cellOf(i)
		ci := m.cellIndex(cx, cy, cz)
		bins[ci] = append(bins[ci], int32(i))
		m.load(m.pos.at(i * 3))
		m.load(m.cellHeads.at(ci))
		m.load(m.cellNext.at(i))
	}
	// Per-particle neighbor search: a rare header block per
	// particle, hot scan blocks inside — the structure that lets
	// refinement mark each search as a sub-phase, exactly what the
	// paper's automatic analysis finds in MolDyn.
	m.nbrIdx = make([][]int32, n)
	for i := 0; i < n; i++ {
		m.block(molBBuildParticle, 4)
		cx, cy, cz := m.cellOf(i)
		scanned := 0
		var nbrs []int32
		for dz := -1; dz <= 1; dz++ {
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					for _, j := range bins[m.cellIndex(cx+dx, cy+dy, cz+dz)] {
						if j == int32(i) {
							continue
						}
						if scanned%molChunk == 0 {
							m.block(molBBuildScan, 2+3*molChunk)
						}
						m.load(m.pos.at(int(j) * 3))
						scanned++
						if m.near(i, int(j)) {
							nbrs = append(nbrs, j)
							m.load(m.neighbors.at(i*64 + len(nbrs)%64))
						}
					}
				}
			}
		}
		m.nbrIdx[i] = nbrs
	}
}

func (m *molDyn) near(i, j int) bool {
	var d2 float64
	for d := 0; d < 3; d++ {
		diff := m.coords[i*3+d] - m.coords[j*3+d]
		d2 += diff * diff
	}
	return d2 < molCutoff*molCutoff
}

// forces accumulates pair forces over the neighbor lists.
func (m *molDyn) forces() {
	m.block(molBForceHead, 3)
	done := 0
	for i := range m.nbrIdx {
		for _, j := range m.nbrIdx[i] {
			if done%molChunk == 0 {
				m.block(molBForceChunk, 2+6*molChunk)
			}
			done++
			m.load(m.pos.at(i * 3))
			m.load(m.pos.at(int(j) * 3))
			m.load(m.frc.at(i * 3))
			m.load(m.frc.at(int(j) * 3))
		}
	}
}

// update integrates positions and velocities.
func (m *molDyn) update() {
	m.block(molBUpdateHead, 3)
	n := m.p.N
	for i := 0; i < n; i += molChunk {
		m.block(molBUpdateChunk, 2+9*molChunk)
		for k := i; k < i+molChunk && k < n; k++ {
			m.load(m.frc.at(k * 3))
			m.load(m.vel.at(k * 3))
			m.load(m.pos.at(k * 3))
			// Small deterministic drift keeps the cell structure
			// stable while the coordinates evolve.
			for d := 0; d < 3; d++ {
				m.coords[k*3+d] += 0.001 * float64(d-1)
			}
		}
	}
}
