package workload

import (
	"testing"

	"lpp/internal/trace"
)

// accessesBetweenMarks splits a run's access counts at the manual
// marks, returning per-segment access counts.
func accessesBetweenMarks(p Program) []int64 {
	var c trace.Counter
	p.Run(&c)
	marks := p.ManualMarks()
	var out []int64
	prev := int64(0)
	for _, m := range marks[1:] {
		out = append(out, m-prev)
		prev = m
	}
	out = append(out, int64(c.Accesses)-prev)
	return out
}

func TestTomcatvSubstepStructure(t *testing.T) {
	spec, _ := ByName("tomcatv")
	p := Params{N: 32, Steps: 3, Seed: 1}
	prog := spec.Make(p)
	var c trace.Counter
	prog.Run(&c)
	marks := prog.ManualMarks()
	if len(marks) != 5*p.Steps {
		t.Fatalf("manual marks = %d, want %d (5 substeps x steps)", len(marks), 5*p.Steps)
	}
	// Substep lengths repeat exactly across time steps (the revisit
	// pattern is row-hashed, not step-dependent).
	segs := accessesBetweenMarks(spec.Make(p))
	for i := 5; i < len(segs); i++ {
		if segs[i] != segs[i-5] {
			t.Fatalf("substep %d length %d differs from previous step's %d",
				i, segs[i], segs[i-5])
		}
	}
}

func TestSwimTouchesAllFourteenArrays(t *testing.T) {
	spec, _ := ByName("swim")
	prog := spec.Make(Params{N: 24, Steps: 2, Seed: 1})
	arrays := prog.(trace.HasArrays).Arrays()
	if len(arrays) != 14 {
		t.Fatalf("swim exposes %d arrays, want 14 (the paper's major arrays)", len(arrays))
	}
	rec := trace.NewRecorder(0, 0)
	prog.Run(rec)
	touched := make([]bool, len(arrays))
	for _, a := range rec.T.Accesses {
		for i, sp := range arrays {
			if sp.Contains(a) {
				touched[i] = true
			}
		}
	}
	for i, ok := range touched {
		if !ok && arrays[i].Name != "psi" { // psi is allocated but idle
			t.Errorf("array %s never touched", arrays[i].Name)
		}
	}
}

func TestCompressRoundsIdenticalWithinRun(t *testing.T) {
	// SPEC95 compress re-compresses the same buffer: phase lengths
	// must repeat exactly within a run.
	spec, _ := ByName("compress")
	segs := accessesBetweenMarks(spec.Make(Params{N: 4096, Steps: 3, Seed: 1}))
	perRound := len(segs) / 3
	for i := perRound; i < len(segs); i++ {
		if segs[i] != segs[i-perRound] {
			t.Fatalf("round segment %d (%d) differs from previous round (%d)",
				i, segs[i], segs[i-perRound])
		}
	}
}

func TestCompressEntropyVariesAcrossSeeds(t *testing.T) {
	spec, _ := ByName("compress")
	var a, b trace.Counter
	spec.Make(Params{N: 4096, Steps: 2, Seed: 1}).Run(&a)
	spec.Make(Params{N: 4096, Steps: 2, Seed: 3}).Run(&b)
	if a.Accesses == b.Accesses {
		t.Error("different seeds should change the compression work")
	}
}

func TestMolDynNeighborCountsUneven(t *testing.T) {
	spec, _ := ByName("moldyn")
	prog := spec.Make(Params{N: 500, Steps: 1, Seed: 1}).(*molDyn)
	var c trace.Counter
	prog.Run(&c)
	min, max := 1<<30, 0
	for _, nbrs := range prog.nbrIdx {
		if len(nbrs) < min {
			min = len(nbrs)
		}
		if len(nbrs) > max {
			max = len(nbrs)
		}
	}
	if max < min+4 {
		t.Errorf("neighbor counts too uniform (min %d, max %d) — the clustered box should vary them", min, max)
	}
}

func TestMolDynNeighborListsSymmetricish(t *testing.T) {
	// Basic physical sanity: if j is i's neighbor, i is j's.
	spec, _ := ByName("moldyn")
	prog := spec.Make(Params{N: 120, Steps: 1, Seed: 2}).(*molDyn)
	var c trace.Counter
	prog.Run(&c)
	in := func(list []int32, x int32) bool {
		for _, v := range list {
			if v == x {
				return true
			}
		}
		return false
	}
	for i, nbrs := range prog.nbrIdx {
		for _, j := range nbrs {
			if !in(prog.nbrIdx[j], int32(i)) {
				t.Fatalf("asymmetric neighbors: %d has %d but not vice versa", i, j)
			}
		}
	}
}

func TestMeshEdgesConnectValidNodes(t *testing.T) {
	spec, _ := ByName("mesh")
	p := Params{N: 1 << 10, Steps: 1, Seed: 1}
	prog := spec.Make(p).(*mesh)
	for _, e := range prog.Edges() {
		if int(e[0]) >= p.N || int(e[1]) >= p.N || e[0] < 0 || e[1] < 0 {
			t.Fatalf("edge %v out of range", e)
		}
	}
	// The sorted variant has the same multiset of edges.
	ps := p
	ps.Variant = 1
	sorted := spec.Make(ps).(*mesh)
	if len(sorted.edges) != len(prog.edges) {
		t.Fatal("sorted variant changed the edge count")
	}
	count := map[[2]int32]int{}
	for _, e := range prog.edges {
		count[e]++
	}
	for _, e := range sorted.edges {
		count[e]--
	}
	for e, n := range count {
		if n != 0 {
			t.Fatalf("edge multiset differs at %v", e)
		}
	}
}

func TestFFTPassCount(t *testing.T) {
	spec, _ := ByName("fft")
	p := Params{N: 256, Steps: 2, Seed: 1}
	prog := spec.Make(p)
	var c trace.Counter
	prog.Run(&c)
	// Manual marks: fill + bitrev + log2(N) passes per transform.
	want := p.Steps * (2 + 8)
	if got := len(prog.ManualMarks()); got != want {
		t.Errorf("fft marks = %d, want %d", got, want)
	}
}

func TestVortexBuildThenQueries(t *testing.T) {
	spec, _ := ByName("vortex")
	p := Params{N: 1 << 10, Steps: 3, Seed: 1}
	prog := spec.Make(p)
	var c trace.Counter
	prog.Run(&c)
	marks := prog.ManualMarks()
	if len(marks) != 1+p.Steps {
		t.Fatalf("vortex marks = %d, want build + %d batches", len(marks), p.Steps)
	}
	if marks[0] != 0 {
		t.Error("build phase should start at time 0")
	}
}

func TestGccRevisitDeterminismAcrossRuns(t *testing.T) {
	spec, _ := ByName("gcc")
	p := Params{N: 30, Steps: 8, Seed: 4}
	r1, r2 := trace.NewRecorder(0, 0), trace.NewRecorder(0, 0)
	spec.Make(p).Run(r1)
	spec.Make(p).Run(r2)
	if len(r1.T.Accesses) != len(r2.T.Accesses) {
		t.Fatal("gcc nondeterministic")
	}
}
