// Package workload implements the nine benchmarks of Table 1 as
// from-scratch Go kernels that replay their data-access and basic-block
// streams through a trace.Instrumenter. The kernels reproduce the
// *shape* of the originals' memory behavior — the property every
// experiment in the paper depends on — rather than their numerics:
//
//	FFT       textbook radix-2 fast Fourier transform
//	Applu     SSOR sweeps over a 3D grid (SPEC2K Applu)
//	Compress  LZW-style compress/decompress rounds (SPEC95 Compress)
//	Gcc       a toy compiler with input-dependent function sizes
//	Tomcatv   vectorized mesh generation, 5 substeps per time step
//	Swim      shallow-water stencils, 3 substeps over 14 arrays
//	Vortex    an object database: build then query
//	Mesh      unstructured mesh relaxation over an edge list (CHAOS)
//	MolDyn    molecular dynamics with per-particle neighbor search
//
// Each workload also records its "manual phase markers" — the logical
// times a programmer reading the source would mark as phase boundaries
// — which Section 3.4 compares against the automatic markers.
package workload

import (
	"fmt"

	"lpp/internal/trace"
)

// Params sizes one run of a workload.
type Params struct {
	// N is the problem size (grid edge, particle count, buffer size
	// — workload-specific).
	N int
	// Steps is the number of outer iterations (time steps, rounds,
	// transforms, functions, or queries).
	Steps int
	// Seed drives all workload-internal pseudo-randomness.
	Seed uint64
	// Variant selects a workload-specific input variation; Mesh uses
	// 1 for the sorted-edge input of its prediction run (Section 3).
	Variant int
}

// Program is a sized, runnable workload instance.
type Program interface {
	trace.Runner
	// ManualMarks returns the logical times (data-access counts) of
	// the programmer-inserted phase markers recorded by the most
	// recent Run, in order.
	ManualMarks() []int64
}

// Spec describes one benchmark: its metadata and how to size it for
// the detection (Train) and prediction (Ref) runs.
type Spec struct {
	Name        string
	Description string
	Source      string // provenance per Table 1
	Train, Ref  Params
	// Predictable reports whether the paper predicts this program's
	// phases (false for Gcc and Vortex, Section 3.1.2).
	Predictable bool
	Make        func(p Params) Program
}

// All returns the benchmark suite in Table 1 order.
func All() []Spec {
	return []Spec{
		{
			Name:        "fft",
			Description: "fast Fourier transformation",
			Source:      "textbook",
			Train:       Params{N: 1 << 12, Steps: 12, Seed: 1},
			Ref:         Params{N: 1 << 14, Steps: 40, Seed: 2},
			Predictable: true,
			Make:        func(p Params) Program { return newFFT(p) },
		},
		{
			Name:        "applu",
			Description: "solving five coupled nonlinear PDE's",
			Source:      "Spec2KFp",
			Train:       Params{N: 24, Steps: 6, Seed: 1},
			Ref:         Params{N: 40, Steps: 30, Seed: 2},
			Predictable: true,
			Make:        func(p Params) Program { return newApplu(p) },
		},
		{
			Name:        "compress",
			Description: "common UNIX compression utility",
			Source:      "Spec95Int",
			Train:       Params{N: 1 << 16, Steps: 6, Seed: 1},
			Ref:         Params{N: 1 << 19, Steps: 13, Seed: 2},
			Predictable: true,
			Make:        func(p Params) Program { return newCompress(p) },
		},
		{
			Name:        "gcc",
			Description: "GNU C compiler 2.5.3",
			Source:      "Spec95Int",
			Train:       Params{N: 60, Steps: 40, Seed: 1},
			Ref:         Params{N: 60, Steps: 100, Seed: 5},
			Predictable: false,
			Make:        func(p Params) Program { return newGcc(p) },
		},
		{
			Name:        "tomcatv",
			Description: "vectorized mesh generation",
			Source:      "Spec95Fp",
			Train:       Params{N: 96, Steps: 7, Seed: 1},
			Ref:         Params{N: 256, Steps: 25, Seed: 2},
			Predictable: true,
			Make:        func(p Params) Program { return newTomcatv(p) },
		},
		{
			Name:        "swim",
			Description: "finite difference approximations for shallow water equation",
			Source:      "Spec95Fp",
			Train:       Params{N: 96, Steps: 8, Seed: 1},
			Ref:         Params{N: 256, Steps: 28, Seed: 2},
			Predictable: true,
			Make:        func(p Params) Program { return newSwim(p) },
		},
		{
			Name:        "vortex",
			Description: "an object-oriented database",
			Source:      "Spec95Int",
			Train:       Params{N: 1 << 14, Steps: 8, Seed: 1},
			Ref:         Params{N: 1 << 15, Steps: 16, Seed: 5},
			Predictable: false,
			Make:        func(p Params) Program { return newVortex(p) },
		},
		{
			Name:        "mesh",
			Description: "dynamic mesh structure simulation",
			Source:      "CHAOS",
			Train:       Params{N: 1 << 13, Steps: 10, Seed: 1},
			Ref:         Params{N: 1 << 13, Steps: 10, Seed: 1, Variant: 1},
			Predictable: true,
			Make:        func(p Params) Program { return newMesh(p) },
		},
		{
			Name:        "moldyn",
			Description: "molecular dynamics simulation",
			Source:      "CHAOS",
			Train:       Params{N: 600, Steps: 6, Seed: 1},
			Ref:         Params{N: 1400, Steps: 25, Seed: 2},
			Predictable: true,
			Make:        func(p Params) Program { return newMolDyn(p) },
		},
	}
}

// ByName looks a benchmark up by name.
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Predictable returns the seven benchmarks with consistent phase
// behavior (Table 2 excludes Gcc and Vortex).
func Predictable() []Spec {
	var out []Spec
	for _, s := range All() {
		if s.Predictable {
			out = append(out, s)
		}
	}
	return out
}
