package workload

import (
	"bytes"
	"testing"

	"lpp/internal/trace"
)

// encodeHostile runs a freshly made hostile program into the binary
// trace encoding; byte equality of two encodings is the determinism
// contract the CI job asserts.
func encodeHostile(t *testing.T, s HostileSpec, p HostileParams) ([]byte, Truth) {
	t.Helper()
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	prog := s.Make(p)
	prog.Run(w)
	if err := w.Flush(); err != nil {
		t.Fatalf("%s: flush: %v", s.Name, err)
	}
	return buf.Bytes(), prog.Truth()
}

func TestHostileDeterminism(t *testing.T) {
	for _, s := range Hostile() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			b1, truth1 := encodeHostile(t, s, s.Params)
			b2, truth2 := encodeHostile(t, s, s.Params)
			if !bytes.Equal(b1, b2) {
				t.Fatalf("same seed produced different traces (%d vs %d bytes)", len(b1), len(b2))
			}
			if len(truth1.Boundaries) != len(truth2.Boundaries) {
				t.Fatalf("same seed produced different truth: %d vs %d boundaries",
					len(truth1.Boundaries), len(truth2.Boundaries))
			}
			for i := range truth1.Boundaries {
				if truth1.Boundaries[i] != truth2.Boundaries[i] {
					t.Fatalf("truth boundary %d differs: %d vs %d",
						i, truth1.Boundaries[i], truth2.Boundaries[i])
				}
			}

			other := s.Params
			other.Seed += 13
			b3, _ := encodeHostile(t, s, other)
			if bytes.Equal(b1, b3) {
				t.Fatalf("different seeds produced identical traces")
			}
		})
	}
}

func TestHostileTruthSelfDescribing(t *testing.T) {
	for _, s := range Hostile() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			prog := s.Make(s.Params)
			var c trace.Counter
			prog.Run(&c)
			truth := prog.Truth()

			if len(truth.Boundaries) < 5 {
				t.Fatalf("only %d ground-truth boundaries; want a real phase structure", len(truth.Boundaries))
			}
			if len(truth.Labels) != len(truth.Boundaries)+1 {
				t.Fatalf("%d labels for %d boundaries; want boundaries+1 (one per segment)",
					len(truth.Labels), len(truth.Boundaries))
			}
			last := int64(0)
			for i, b := range truth.Boundaries {
				if b <= last {
					t.Fatalf("boundary %d not strictly increasing: %d after %d", i, b, last)
				}
				last = b
			}
			if last >= int64(c.Accesses) {
				t.Fatalf("last boundary %d not inside the trace (%d accesses)", last, c.Accesses)
			}

			// ManualMarks is the Program-compatible view of the truth.
			marks := prog.ManualMarks()
			if len(marks) != len(truth.Boundaries) {
				t.Fatalf("ManualMarks has %d entries, Truth %d", len(marks), len(truth.Boundaries))
			}
			for i := range marks {
				if marks[i] != truth.Boundaries[i] {
					t.Fatalf("mark %d = %d, truth %d", i, marks[i], truth.Boundaries[i])
				}
			}
		})
	}
}

func TestHostileByName(t *testing.T) {
	for _, s := range Hostile() {
		got, err := HostileByName(s.Name)
		if err != nil || got.Name != s.Name {
			t.Fatalf("HostileByName(%q) = %v, %v", s.Name, got.Name, err)
		}
	}
	if _, err := HostileByName("nope"); err == nil {
		t.Fatalf("HostileByName accepted an unknown family")
	}
}

func TestInterleavedTenantsDisjoint(t *testing.T) {
	prog := newInterleaved(HostileParams{Seed: 3})
	rec := trace.NewRecorder(0, 0)
	prog.Run(rec)
	var low, high int
	for _, a := range rec.T.Accesses {
		if a >= tenantAddrOffset {
			high++
		} else {
			low++
		}
	}
	if low == 0 || high == 0 {
		t.Fatalf("expected both tenants in the stream; got %d low / %d high accesses", low, high)
	}
}
