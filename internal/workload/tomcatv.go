package workload

import "lpp/internal/trace"

// tomcatv models SPEC95 Tomcatv, the paper's running example (Figures
// 1 and 3): a vectorized mesh-generation program whose every time step
// runs five substeps — residual preparation, coefficient computation,
// two tridiagonal-system sweeps, and correction — each touching a
// different subset of seven N×N arrays, so the reuse-distance trace
// shifts abruptly at every substep boundary and the composite phase is
// one time step.
type tomcatv struct {
	meter
	p Params
	// Seven page-aligned N×N arrays of 8-byte elements.
	x, y, rx, ry, aa, dd, d array
}

// Tomcatv basic-block IDs. Header blocks run once per substep per time
// step (frequency = Steps); row blocks run N times per substep and are
// removed by the marker-selection frequency filter.
const (
	tomBStep trace.BlockID = 100 + iota
	tomBResidHead
	tomBResidRow
	tomBResidRevisit
	tomBCoefHead
	tomBCoefRow
	tomBForwardHead
	tomBForwardRow
	tomBBackwardHead
	tomBBackwardRow
	tomBCorrectHead
	tomBCorrectRow
	tomBExit
)

func newTomcatv(p Params) Program {
	t := &tomcatv{p: p}
	var s space
	n := p.N * p.N
	t.x = s.alloc(n, 8)
	t.y = s.alloc(n, 8)
	t.rx = s.alloc(n, 8)
	t.ry = s.alloc(n, 8)
	t.aa = s.alloc(n, 8)
	t.dd = s.alloc(n, 8)
	t.d = s.alloc(n, 8)
	return t
}

func (t *tomcatv) idx(i, j int) int { return j*t.p.N + i }

// Arrays implements trace.HasArrays.
func (t *tomcatv) Arrays() []trace.ArraySpan {
	n := t.p.N * t.p.N
	names := []string{"x", "y", "rx", "ry", "aa", "dd", "d"}
	arrs := []array{t.x, t.y, t.rx, t.ry, t.aa, t.dd, t.d}
	out := make([]trace.ArraySpan, len(arrs))
	for i, a := range arrs {
		out[i] = trace.ArraySpan{Name: names[i], Base: a.base, Elems: n, ElemSize: 8}
	}
	return out
}

func (t *tomcatv) Run(ins trace.Instrumenter) {
	t.begin(ins)
	n := t.p.N
	for step := 0; step < t.p.Steps; step++ {
		t.block(tomBStep, 4)

		// Substep 1: residual preparation. Reads the 9-point
		// stencil of x and y, writes rx and ry.
		t.mark()
		t.block(tomBResidHead, 3)
		for j := 1; j < n-1; j++ {
			t.block(tomBResidRow, 2+12*(n-2))
			for i := 1; i < n-1; i++ {
				t.load(t.x.at(t.idx(i-1, j)))
				t.load(t.x.at(t.idx(i+1, j)))
				t.load(t.x.at(t.idx(i, j-1)))
				t.load(t.x.at(t.idx(i, j+1)))
				t.load(t.y.at(t.idx(i-1, j)))
				t.load(t.y.at(t.idx(i+1, j)))
				t.load(t.y.at(t.idx(i, j-1)))
				t.load(t.y.at(t.idx(i, j+1)))
				t.load(t.rx.at(t.idx(i, j)))
				t.load(t.ry.at(t.idx(i, j)))
			}
			// Correction revisit on a row-dependent subset of rows:
			// re-read an earlier pair of mesh rows, the way the real
			// code revisits rows for boundary corrections. The row
			// hash is step-independent, so phase behavior repeats
			// exactly while fixed-length windows see an irregular
			// mix of reuse depths.
			if h := rowHash(j); h%4 == 0 {
				back := 1 + int(h>>8)%24
				if back > j {
					back = j
				}
				t.block(tomBResidRevisit, 2+3*(n-2))
				for i := 1; i < n-1; i++ {
					t.load(t.x.at(t.idx(i, j-back)))
					t.load(t.y.at(t.idx(i, j-back)))
				}
			}
		}

		// Substep 2: tridiagonal coefficients from the mesh.
		t.mark()
		t.block(tomBCoefHead, 3)
		for j := 1; j < n-1; j++ {
			t.block(tomBCoefRow, 2+8*(n-2))
			for i := 1; i < n-1; i++ {
				t.load(t.x.at(t.idx(i, j)))
				t.load(t.x.at(t.idx(i, j-1)))
				t.load(t.y.at(t.idx(i, j)))
				t.load(t.y.at(t.idx(i, j-1)))
				t.load(t.aa.at(t.idx(i, j)))
				t.load(t.dd.at(t.idx(i, j)))
			}
		}

		// Substep 3: forward elimination of the two tridiagonal
		// systems, sweeping rows upward.
		t.mark()
		t.block(tomBForwardHead, 3)
		for j := 1; j < n-1; j++ {
			t.block(tomBForwardRow, 2+10*(n-2))
			for i := 1; i < n-1; i++ {
				t.load(t.aa.at(t.idx(i, j)))
				t.load(t.dd.at(t.idx(i, j-1)))
				t.load(t.d.at(t.idx(i, j-1)))
				t.load(t.d.at(t.idx(i, j)))
				t.load(t.rx.at(t.idx(i, j)))
				t.load(t.ry.at(t.idx(i, j)))
			}
		}

		// Substep 4: back substitution, sweeping rows downward.
		t.mark()
		t.block(tomBBackwardHead, 3)
		for j := n - 2; j >= 1; j-- {
			t.block(tomBBackwardRow, 2+9*(n-2))
			for i := 1; i < n-1; i++ {
				t.load(t.d.at(t.idx(i, j)))
				t.load(t.rx.at(t.idx(i, j+1)))
				t.load(t.rx.at(t.idx(i, j)))
				t.load(t.ry.at(t.idx(i, j+1)))
				t.load(t.ry.at(t.idx(i, j)))
			}
		}

		// Substep 5: add corrections back into the mesh.
		t.mark()
		t.block(tomBCorrectHead, 3)
		for j := 1; j < n-1; j++ {
			t.block(tomBCorrectRow, 2+7*(n-2))
			for i := 1; i < n-1; i++ {
				t.load(t.rx.at(t.idx(i, j)))
				t.load(t.ry.at(t.idx(i, j)))
				t.load(t.x.at(t.idx(i, j)))
				t.load(t.y.at(t.idx(i, j)))
			}
		}
	}
	t.block(tomBExit, 2)
}
