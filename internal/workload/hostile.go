// Hostile workload families: traces the paper never faced, built to
// break the detector in the ways a multi-tenant streaming deployment
// would. Three families, each deterministic from its seed and
// self-describing — the generator emits its ground-truth phase
// boundaries alongside the trace, so a harness can score detection
// precision/recall instead of eyeballing:
//
//	interleaved  two known programs time-sliced onto one stream with a
//	             configurable quantum and seeded slice-length jitter
//	             (the multi-tenant session a router would produce)
//	drift        a cyclic kernel whose phase period slowly stretches
//	             and shrinks, so no fixed window length stays right
//	adaptive     an input-adaptive kernel whose phase structure —
//	             region count, sweep pattern, footprint — changes
//	             mid-run on a seeded schedule
package workload

import (
	"fmt"

	"lpp/internal/stats"
	"lpp/internal/trace"
)

// HostileParams sizes one run of a hostile family. Fields that a
// family does not use are ignored; zero values select the family
// defaults, so HostileParams{Seed: 1} is always valid.
type HostileParams struct {
	// Seed drives every generator-internal choice: slice jitter,
	// drift schedule, regime switches. Same seed, same byte stream.
	Seed uint64
	// Scale multiplies the family's built-in problem size
	// (0 or 1 = default). Scale 2 roughly doubles the trace.
	Scale int

	// Interleaved only: the two tenant benchmarks (defaults fft and
	// moldyn), the nominal accesses per time slice, and the relative
	// slice-length jitter in [0, 1).
	TenantA, TenantB string
	Quantum          int
	Jitter           float64

	// Drift only: the per-cycle period multiplier. Values above 1
	// stretch each cycle, below 1 shrink it; the generator sweeps up
	// then back down so the trace ends near its starting period.
	Drift float64
}

// Truth is the ground-truth phase structure of the most recent Run of
// a hostile program: the logical times (access counts) where the true
// structure changes, and a label per segment saying what the program
// was doing between boundary i-1 and boundary i.
type Truth struct {
	Boundaries []int64
	Labels     []string
}

// HostileProgram is a Program that can also report its ground truth.
// ManualMarks returns Truth().Boundaries, so hostile programs drop
// into every harness the nine originals use.
type HostileProgram interface {
	Program
	Truth() Truth
}

// HostileSpec describes one hostile family.
type HostileSpec struct {
	Name        string
	Description string
	Params      HostileParams
	Make        func(p HostileParams) HostileProgram
}

// Hostile returns the hostile family tier.
func Hostile() []HostileSpec {
	return []HostileSpec{
		{
			Name:        "interleaved",
			Description: "two tenants time-sliced onto one stream (quantum + jitter)",
			Params:      HostileParams{Seed: 1},
			Make:        func(p HostileParams) HostileProgram { return newInterleaved(p) },
		},
		{
			Name:        "drift",
			Description: "cyclic kernel whose phase period stretches then shrinks",
			Params:      HostileParams{Seed: 1},
			Make:        func(p HostileParams) HostileProgram { return newDrift(p) },
		},
		{
			Name:        "adaptive",
			Description: "kernel whose phase structure changes mid-run",
			Params:      HostileParams{Seed: 1},
			Make:        func(p HostileParams) HostileProgram { return newAdaptive(p) },
		},
	}
}

// HostileByName looks a hostile family up by name.
func HostileByName(name string) (HostileSpec, error) {
	for _, s := range Hostile() {
		if s.Name == name {
			return s, nil
		}
	}
	return HostileSpec{}, fmt.Errorf("workload: unknown hostile family %q", name)
}

func (p HostileParams) scale() int {
	if p.Scale < 1 {
		return 1
	}
	return p.Scale
}

// --- interleaved ---------------------------------------------------

// Tenant B's address space and block IDs are offset into a range no
// real workload reaches, so the two tenants never alias.
const (
	tenantAddrOffset  = trace.Addr(1) << 44
	tenantBlockOffset = trace.BlockID(1) << 20
)

type interleaved struct {
	meter
	p     HostileParams
	truth Truth
}

func newInterleaved(p HostileParams) *interleaved {
	if p.TenantA == "" {
		p.TenantA = "fft"
	}
	if p.TenantB == "" {
		p.TenantB = "moldyn"
	}
	if p.Quantum <= 0 {
		p.Quantum = 2000
	}
	if p.Jitter < 0 || p.Jitter >= 1 {
		p.Jitter = 0.25
	}
	return &interleaved{p: p}
}

// tenantTrace records one tenant's full trace at a size small enough
// that the interleaved stream stays comparable to the nine originals.
func tenantTrace(name string, scale int, seed uint64) (*trace.Recorded, error) {
	spec, err := ByName(name)
	if err != nil {
		return nil, err
	}
	params := spec.Train
	// Shrink to roughly a quarter of the training run; the interleaved
	// stream carries two of these plus switching overhead.
	params.N /= 2
	if params.N < 8 {
		params.N = 8
	}
	if params.Steps > 6 {
		params.Steps = 6
	}
	params.N *= scale
	params.Seed = seed
	rec := trace.NewRecorder(0, 0)
	spec.Make(params).Run(rec)
	return &rec.T, nil
}

// flatEvent is one tenant event in replay order.
type flatEvent struct {
	block  bool
	id     trace.BlockID
	instrs int
	addr   trace.Addr
}

func flatten(t *trace.Recorded, addrOff trace.Addr, blockOff trace.BlockID) []flatEvent {
	out := make([]flatEvent, 0, len(t.Accesses)+len(t.Blocks))
	next := 0
	for i, b := range t.Blocks {
		end := len(t.Accesses)
		if i+1 < len(t.Blocks) {
			end = int(t.Blocks[i+1].AccessIndex)
		}
		out = append(out, flatEvent{block: true, id: b.ID + blockOff, instrs: int(b.Instrs)})
		for ; next < end; next++ {
			out = append(out, flatEvent{addr: t.Accesses[next] + addrOff})
		}
	}
	for ; next < len(t.Accesses); next++ {
		out = append(out, flatEvent{addr: t.Accesses[next] + addrOff})
	}
	return out
}

func (w *interleaved) Run(ins trace.Instrumenter) {
	w.begin(ins)
	w.truth = Truth{}

	ta, err := tenantTrace(w.p.TenantA, w.p.scale(), w.p.Seed*2+1)
	if err != nil {
		panic(err)
	}
	tb, err := tenantTrace(w.p.TenantB, w.p.scale(), w.p.Seed*2+2)
	if err != nil {
		panic(err)
	}
	streams := [2][]flatEvent{
		flatten(ta, 0, 0),
		flatten(tb, tenantAddrOffset, tenantBlockOffset),
	}
	names := [2]string{w.p.TenantA, w.p.TenantB}
	pos := [2]int{}
	cur := 0
	rng := stats.NewRNG(w.p.Seed ^ 0x1A7E)

	emit := func(e flatEvent) {
		if e.block {
			w.block(e.id, e.instrs)
		} else {
			w.load(e.addr)
		}
	}
	for pos[0] < len(streams[0]) || pos[1] < len(streams[1]) {
		if pos[cur] >= len(streams[cur]) {
			cur = 1 - cur
			continue
		}
		// Slice length in accesses: quantum scaled by a seeded jitter
		// factor in [1-jitter, 1+jitter].
		slice := int(float64(w.p.Quantum) * (1 + w.p.Jitter*(2*rng.Float64()-1)))
		if slice < 1 {
			slice = 1
		}
		accesses := 0
		for pos[cur] < len(streams[cur]) && accesses < slice {
			e := streams[cur][pos[cur]]
			emit(e)
			pos[cur]++
			if !e.block {
				accesses++
			}
		}
		if pos[0] < len(streams[0]) || pos[1] < len(streams[1]) {
			// A tenant switch is a true phase boundary: the working
			// set changes completely at this instant.
			w.mark()
			w.truth.Boundaries = append(w.truth.Boundaries, w.accesses)
			w.truth.Labels = append(w.truth.Labels, names[cur])
			cur = 1 - cur
		}
	}
	w.truth.Labels = append(w.truth.Labels, names[cur])
}

func (w *interleaved) Truth() Truth { return w.truth }

// --- drift ----------------------------------------------------------

type drift struct {
	meter
	p     HostileParams
	truth Truth
}

func newDrift(p HostileParams) *drift {
	if p.Drift <= 0 {
		p.Drift = 1.15
	}
	return &drift{p: p}
}

func (w *drift) Run(ins trace.Instrumenter) {
	w.begin(ins)
	w.truth = Truth{}

	var sp space
	const regions = 3
	base := 4096 * w.p.scale()
	arrs := [regions]array{}
	for r := range arrs {
		arrs[r] = sp.alloc(4*base, 8)
	}
	rng := stats.NewRNG(w.p.Seed ^ 0xD21F7)

	// Period sweeps up by Drift per cycle until it has roughly
	// tripled, then back down, so no fixed window length is ever right
	// for long. The tiny seeded wobble keeps the drift from being a
	// clean geometric series a curve fitter could lock onto.
	period := float64(base)
	factor := w.p.Drift
	cycles := 16 * w.p.scale()
	for c := 0; c < cycles; c++ {
		// Outer time-loop header every fourth cycle: a rare block
		// (freq = cycles/4) the offline marker selector can anchor on
		// even when its frequency cutoff rejects the per-sweep
		// headers.
		if c%4 == 0 {
			w.block(5, 4)
		}
		for r := 0; r < regions; r++ {
			n := int(period * (1 + 0.02*(2*rng.Float64()-1)))
			if n < 64 {
				n = 64
			}
			// One header block per sweep (the marker candidate, as in
			// the real kernels' substep headers) plus a frequent
			// inner-loop block.
			w.block(trace.BlockID(10+r), 4)
			for i := 0; i < n; i++ {
				if i%32 == 0 && i > 0 {
					w.block(trace.BlockID(100+r), 4)
				}
				w.load(arrs[r].at(i % (4 * base)))
			}
			w.mark()
			w.truth.Boundaries = append(w.truth.Boundaries, w.accesses)
			w.truth.Labels = append(w.truth.Labels, fmt.Sprintf("sweep-r%d-c%d", r, c))
		}
		period *= factor
		if period > 3*float64(base) || period < float64(base)/3 {
			factor = 1 / factor
		}
	}
	// Close the final segment label (segment after the last boundary
	// is empty; drop the trailing boundary at end-of-trace).
	if n := len(w.truth.Boundaries); n > 0 && w.truth.Boundaries[n-1] == w.accesses {
		w.truth.Boundaries = w.truth.Boundaries[:n-1]
		w.marks = w.marks[:len(w.marks)-1]
	}
}

func (w *drift) Truth() Truth { return w.truth }

// --- adaptive -------------------------------------------------------

type adaptive struct {
	meter
	p     HostileParams
	truth Truth
}

func newAdaptive(p HostileParams) *adaptive {
	return &adaptive{p: p}
}

// regime is one phase structure the adaptive kernel can be in.
type regime struct {
	name    string
	regions int // arrays touched per cycle
	stride  int // elements skipped per access
	sweep   int // accesses per region sweep
}

func (w *adaptive) Run(ins trace.Instrumenter) {
	w.begin(ins)
	w.truth = Truth{}

	base := 4096 * w.p.scale()
	var sp space
	// Enough arrays for the widest regime; regimes use prefixes.
	const maxRegions = 5
	arrs := [maxRegions]array{}
	for r := range arrs {
		arrs[r] = sp.alloc(4*base, 8)
	}
	regimes := []regime{
		{name: "dense2", regions: 2, stride: 1, sweep: 2 * base},
		{name: "strided5", regions: 5, stride: 7, sweep: base},
		{name: "hot1", regions: 1, stride: 1, sweep: 4 * base},
	}
	rng := stats.NewRNG(w.p.Seed ^ 0xADA9)

	// The "input" decides the regime schedule: which structures appear,
	// in what order, and how many cycles each runs before the program
	// adapts. All of it comes from the seed.
	order := rng.Intn(len(regimes))
	segments := 3 + rng.Intn(2)
	for s := 0; s < segments; s++ {
		rg := regimes[(order+s)%len(regimes)]
		// Regime-entry header, executed once per segment: the rare
		// block offline marker selection anchors on regardless of its
		// frequency cutoff.
		w.block(trace.BlockID(1+s), 5)
		cycles := 3 + rng.Intn(3)
		for c := 0; c < cycles; c++ {
			for r := 0; r < rg.regions; r++ {
				// Header block once per sweep (marker candidate),
				// inner-loop block every 32 accesses.
				w.block(trace.BlockID(20+10*s+r), 5)
				idx := 0
				for i := 0; i < rg.sweep; i++ {
					if i%32 == 0 && i > 0 {
						w.block(trace.BlockID(200+10*s+r), 5)
					}
					w.load(arrs[r].at(idx))
					idx = (idx + rg.stride) % (4 * base)
				}
				w.mark()
				w.truth.Boundaries = append(w.truth.Boundaries, w.accesses)
				w.truth.Labels = append(w.truth.Labels, fmt.Sprintf("%s-c%d-r%d", rg.name, c, r))
			}
		}
	}
	if n := len(w.truth.Boundaries); n > 0 && w.truth.Boundaries[n-1] == w.accesses {
		w.truth.Boundaries = w.truth.Boundaries[:n-1]
		w.marks = w.marks[:len(w.marks)-1]
	}
}

func (w *adaptive) Truth() Truth { return w.truth }
