package workload

import "lpp/internal/trace"

// swim models SPEC95 Swim: shallow-water finite differences over the
// paper's 14 major N×N arrays. Each time step runs three substeps
// (CALC1, CALC2, CALC3), and the per-phase reference-affinity groups
// quoted in Section 3.3 — {u,v,p} in CALC1, {u,v,p,unew,vnew,pnew} in
// CALC2, and {u,uold,unew}/{v,vold,vnew}/{p,pold,pnew} in CALC3 — fall
// directly out of which arrays each substep touches together.
type swim struct {
	meter
	p Params
	// The 14 arrays, named as in the paper's affinity discussion.
	u, v, pp          array
	unew, vnew, pnew  array
	uold, vold, pold  array
	cu, cv, z, h, psi array
}

// Swim basic-block IDs.
const (
	swimBStep trace.BlockID = 200 + iota
	swimBCalc1Head
	swimBCalc1Row
	swimBCalc2Head
	swimBCalc2Row
	swimBCalc2Revisit
	swimBCalc3Head
	swimBCalc3Row
	swimBExit
)

func newSwim(p Params) Program {
	w := &swim{p: p}
	var s space
	n := p.N * p.N
	for _, a := range []*array{&w.u, &w.v, &w.pp, &w.unew, &w.vnew, &w.pnew,
		&w.uold, &w.vold, &w.pold, &w.cu, &w.cv, &w.z, &w.h, &w.psi} {
		*a = s.alloc(n, 8)
	}
	return w
}

func (w *swim) idx(i, j int) int { return j*w.p.N + i }

// Arrays implements trace.HasArrays, exposing the paper's 14 major
// arrays for the affinity experiments.
func (w *swim) Arrays() []trace.ArraySpan {
	n := w.p.N * w.p.N
	names := []string{"u", "v", "p", "unew", "vnew", "pnew",
		"uold", "vold", "pold", "cu", "cv", "z", "h", "psi"}
	arrs := []array{w.u, w.v, w.pp, w.unew, w.vnew, w.pnew,
		w.uold, w.vold, w.pold, w.cu, w.cv, w.z, w.h, w.psi}
	out := make([]trace.ArraySpan, len(arrs))
	for i, a := range arrs {
		out[i] = trace.ArraySpan{Name: names[i], Base: a.base, Elems: n, ElemSize: int(a.elemSize)}
	}
	return out
}

func (w *swim) Run(ins trace.Instrumenter) {
	w.begin(ins)
	n := w.p.N
	for step := 0; step < w.p.Steps; step++ {
		w.block(swimBStep, 4)

		// CALC1: mass fluxes and vorticity from u, v, p.
		w.mark()
		w.block(swimBCalc1Head, 3)
		for j := 1; j < n-1; j++ {
			w.block(swimBCalc1Row, 2+14*(n-2))
			for i := 1; i < n-1; i++ {
				w.load(w.pp.at(w.idx(i, j)))
				w.load(w.pp.at(w.idx(i-1, j)))
				w.load(w.u.at(w.idx(i, j)))
				w.load(w.u.at(w.idx(i, j-1)))
				w.load(w.v.at(w.idx(i, j)))
				w.load(w.v.at(w.idx(i-1, j)))
				w.load(w.cu.at(w.idx(i, j)))
				w.load(w.cv.at(w.idx(i, j)))
				w.load(w.z.at(w.idx(i, j)))
				w.load(w.h.at(w.idx(i, j)))
			}
		}

		// CALC2: new u, v, p from the fluxes and the old values.
		w.mark()
		w.block(swimBCalc2Head, 3)
		for j := 1; j < n-1; j++ {
			w.block(swimBCalc2Row, 2+16*(n-2))
			for i := 1; i < n-1; i++ {
				w.load(w.cu.at(w.idx(i, j)))
				w.load(w.cu.at(w.idx(i+1, j)))
				w.load(w.cv.at(w.idx(i, j)))
				w.load(w.cv.at(w.idx(i, j+1)))
				w.load(w.z.at(w.idx(i, j)))
				w.load(w.h.at(w.idx(i+1, j)))
				w.load(w.uold.at(w.idx(i, j)))
				w.load(w.vold.at(w.idx(i, j)))
				w.load(w.pold.at(w.idx(i, j)))
				w.load(w.unew.at(w.idx(i, j)))
				w.load(w.vnew.at(w.idx(i, j)))
				w.load(w.pnew.at(w.idx(i, j)))
			}
			// Row-dependent correction revisit (see tomcatv): real
			// CALC2 re-touches earlier rows for the periodic
			// boundary conditions.
			if h := rowHash(j); h%4 == 1 {
				back := 1 + int(h>>8)%24
				if back > j {
					back = j
				}
				w.block(swimBCalc2Revisit, 2+4*(n-2))
				for i := 1; i < n-1; i++ {
					w.load(w.cu.at(w.idx(i, j-back)))
					w.load(w.cv.at(w.idx(i, j-back)))
					w.load(w.z.at(w.idx(i, j-back)))
				}
			}
		}

		// CALC3: time smoothing — shift new into current and old.
		w.mark()
		w.block(swimBCalc3Head, 3)
		for j := 0; j < n; j++ {
			w.block(swimBCalc3Row, 2+13*n)
			for i := 0; i < n; i++ {
				w.load(w.u.at(w.idx(i, j)))
				w.load(w.unew.at(w.idx(i, j)))
				w.load(w.uold.at(w.idx(i, j)))
				w.load(w.v.at(w.idx(i, j)))
				w.load(w.vnew.at(w.idx(i, j)))
				w.load(w.vold.at(w.idx(i, j)))
				w.load(w.pp.at(w.idx(i, j)))
				w.load(w.pnew.at(w.idx(i, j)))
				w.load(w.pold.at(w.idx(i, j)))
			}
		}
	}
	w.block(swimBExit, 2)
}
