package workload

import (
	"lpp/internal/stats"
	"lpp/internal/trace"
)

// gcc models the behavior that makes SPEC95 Gcc unpredictable for
// locality phase prediction (Section 3.1.2): the program compiles a
// sequence of functions whose sizes are determined by the input file,
// so every "phase" (one function's compilation) has a different,
// input-dependent length — the peaks of Figure 5.
type gcc struct {
	meter
	p         Params
	tokens    array
	irNodes   array
	symtab    array
	output    array
	funcSizes []int
}

// Gcc basic-block IDs.
const (
	gccBFunction trace.BlockID = 800 + iota
	gccBLexHead
	gccBLexChunk
	gccBParseHead
	gccBParseChunk
	gccBOptHead
	gccBOptChunk
	gccBEmitHead
	gccBEmitChunk
	gccBExit
)

const gccChunk = 64

func newGcc(p Params) Program {
	g := &gcc{p: p}
	var s space
	maxTokens := 1 << 16
	g.tokens = s.alloc(maxTokens, 4)
	g.irNodes = s.alloc(maxTokens, 16)
	g.symtab = s.alloc(1<<13, 8)
	g.output = s.alloc(maxTokens, 4)
	// Function sizes: heavy-tailed, like real source files. Steps is
	// the number of functions; N scales the mean size.
	rng := stats.NewRNG(p.Seed)
	g.funcSizes = make([]int, p.Steps)
	for i := range g.funcSizes {
		size := p.N * (1 + rng.Intn(8))
		if rng.Intn(10) == 0 {
			size *= 10 // the occasional huge function
		}
		g.funcSizes[i] = size
	}
	return g
}

func (g *gcc) Run(ins trace.Instrumenter) {
	g.begin(ins)
	rng := stats.NewRNG(g.p.Seed + 7)
	for _, size := range g.funcSizes {
		g.block(gccBFunction, 4)
		g.mark() // the programmer marks each function's compilation

		// Lex: sweep the token buffer.
		g.block(gccBLexHead, 3)
		for i := 0; i < size; i += gccChunk {
			g.block(gccBLexChunk, 2+3*gccChunk)
			for k := i; k < i+gccChunk && k < size; k++ {
				g.load(g.tokens.at(k % (1 << 16)))
			}
		}

		// Parse: build IR nodes, hitting the symbol table
		// irregularly.
		g.block(gccBParseHead, 3)
		for i := 0; i < size; i += gccChunk {
			g.block(gccBParseChunk, 2+6*gccChunk)
			for k := i; k < i+gccChunk && k < size; k++ {
				g.load(g.tokens.at(k % (1 << 16)))
				g.load(g.irNodes.at(k % (1 << 16)))
				if k%3 == 0 {
					g.load(g.symtab.at(rng.Intn(1 << 13)))
				}
			}
		}

		// Optimize: several passes over the IR; pass count grows
		// with function size (bigger functions take disproportionate
		// time, like real compilers).
		g.block(gccBOptHead, 3)
		passes := 2 + size/(4*g.p.N)
		for pass := 0; pass < passes; pass++ {
			for i := 0; i < size; i += gccChunk {
				g.block(gccBOptChunk, 2+4*gccChunk)
				for k := i; k < i+gccChunk && k < size; k++ {
					g.load(g.irNodes.at(k % (1 << 16)))
				}
			}
		}

		// Emit: write code words.
		g.block(gccBEmitHead, 3)
		for i := 0; i < size; i += gccChunk {
			g.block(gccBEmitChunk, 2+3*gccChunk)
			for k := i; k < i+gccChunk && k < size; k++ {
				g.load(g.irNodes.at(k % (1 << 16)))
				g.load(g.output.at(k % (1 << 16)))
			}
		}
	}
	g.block(gccBExit, 2)
}
