package workload

import (
	"lpp/internal/stats"
	"lpp/internal/trace"
)

// compress models SPEC95 Compress: repeated rounds of LZW compression
// over an in-memory buffer. Each round runs four phases of wildly
// unequal length — input generation, LZW compression (a real LZW coder
// whose dictionary probing depends on the data), output copy (length
// depends on the achieved compression), and a short checksum — giving
// the "phase length ranges over three orders of magnitude" behavior
// Figure 3 shows for Compress.
type compress struct {
	meter
	p        Params
	input    array
	output   array
	hashTab  array // dictionary hash table
	codeTab  array // dictionary code table
	checkTab array // small checksum table
	data     []byte
}

// Compress basic-block IDs.
const (
	compBRound trace.BlockID = 500 + iota
	compBFillHead
	compBFillChunk
	compBCompressHead
	compBCompressChunk
	compBOutputHead
	compBOutputChunk
	compBChecksumHead
	compBChecksumChunk
	compBExit
)

const (
	compChunk    = 64
	compHashSize = 1 << 14
	compMaxCodes = 1 << 12
)

func newCompress(p Params) Program {
	c := &compress{p: p, data: make([]byte, p.N)}
	var s space
	c.input = s.alloc(p.N, 1)
	c.output = s.alloc(p.N, 2)
	c.hashTab = s.alloc(compHashSize, 8)
	c.codeTab = s.alloc(compMaxCodes, 8)
	c.checkTab = s.alloc(4096, 8)
	return c
}

func (c *compress) Run(ins trace.Instrumenter) {
	c.begin(ins)
	for round := 0; round < c.p.Steps; round++ {
		c.block(compBRound, 4)

		// Phase 1: generate the round's input. Like SPEC95
		// Compress, every round re-compresses the same buffer, so
		// phase behavior repeats exactly within a run; the entropy
		// (and with it every phase length) changes with the input
		// seed across runs.
		rng := stats.NewRNG(c.p.Seed)
		c.mark()
		c.block(compBFillHead, 3)
		alphabet := 4 << (c.p.Seed % 5) // 4..64 distinct bytes
		for i := 0; i < c.p.N; i += compChunk {
			c.block(compBFillChunk, 2+2*compChunk)
			for k := i; k < i+compChunk && k < c.p.N; k++ {
				c.data[k] = byte(rng.Intn(alphabet))
				c.load(c.input.at(k))
			}
		}

		// Phase 2: LZW compression with a chained hash dictionary.
		c.mark()
		c.block(compBCompressHead, 3)
		dict := make(map[uint32]uint16, compMaxCodes)
		nextCode := uint16(256)
		outLen := 0
		prefix := uint32(c.data[0])
		c.load(c.input.at(0))
		steps := 0
		for k := 1; k < c.p.N; k++ {
			if steps%compChunk == 0 {
				c.block(compBCompressChunk, 2+5*compChunk)
			}
			steps++
			ch := c.data[k]
			c.load(c.input.at(k))
			key := prefix<<8 | uint32(ch)
			slot := int(key % compHashSize)
			c.load(c.hashTab.at(slot)) // probe
			if code, ok := dict[key]; ok {
				prefix = uint32(code)
				continue
			}
			// Miss: emit the prefix code, add a dictionary entry.
			c.load(c.codeTab.at(int(nextCode) % compMaxCodes))
			c.load(c.output.at(outLen % c.p.N))
			outLen++
			if nextCode < compMaxCodes-1 {
				dict[key] = nextCode
				nextCode++
			} else {
				// Dictionary full: reset, as compress does.
				dict = make(map[uint32]uint16, compMaxCodes)
				nextCode = 256
			}
			prefix = uint32(ch)
		}

		// Phase 3: copy the compressed output (length depends on
		// the round's compressibility).
		c.mark()
		c.block(compBOutputHead, 3)
		for i := 0; i < outLen; i += compChunk {
			c.block(compBOutputChunk, 2+2*compChunk)
			for k := i; k < i+compChunk && k < outLen; k++ {
				c.load(c.output.at(k % c.p.N))
			}
		}

		// Phase 4: a short checksum over a small table.
		c.mark()
		c.block(compBChecksumHead, 3)
		for i := 0; i < 4096; i += compChunk {
			c.block(compBChecksumChunk, 2+compChunk)
			for k := i; k < i+compChunk; k++ {
				c.load(c.checkTab.at(k))
			}
		}
	}
	c.block(compBExit, 2)
}
