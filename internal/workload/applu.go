package workload

import "lpp/internal/trace"

// applu models SPEC2K Applu: an SSOR solver for five coupled nonlinear
// PDEs on an N×N×N grid. Each pseudo-time step runs four substeps —
// right-hand-side computation, the lower-triangular sweep (jacld/blts,
// planes forward), the upper-triangular sweep (jacu/buts, planes
// backward), and the solution update — over the solution, residual,
// and four block-Jacobian arrays.
type applu struct {
	meter
	p          Params
	u, rsd     array
	a, b, c, d array
}

// Applu basic-block IDs.
const (
	appluBStep trace.BlockID = 300 + iota
	appluBRhsHead
	appluBRhsPlane
	appluBRhsRevisit
	appluBLowerHead
	appluBLowerPlane
	appluBUpperHead
	appluBUpperPlane
	appluBUpdateHead
	appluBUpdatePlane
	appluBExit
)

func newApplu(p Params) Program {
	a := &applu{p: p}
	var s space
	// Five unknowns per cell for u and rsd; one block row each for
	// the Jacobians (collapsed to one word per cell here — the access
	// pattern, not the algebra, is what matters).
	cells := p.N * p.N * p.N
	a.u = s.alloc(cells*5, 8)
	a.rsd = s.alloc(cells*5, 8)
	a.a = s.alloc(cells, 8)
	a.b = s.alloc(cells, 8)
	a.c = s.alloc(cells, 8)
	a.d = s.alloc(cells, 8)
	return a
}

func (a *applu) cell(i, j, k int) int { return (k*a.p.N+j)*a.p.N + i }

func (a *applu) Run(ins trace.Instrumenter) {
	a.begin(ins)
	n := a.p.N
	for step := 0; step < a.p.Steps; step++ {
		a.block(appluBStep, 4)

		// RHS: compute the steady-state residual from u.
		a.mark()
		a.block(appluBRhsHead, 3)
		for k := 1; k < n-1; k++ {
			a.block(appluBRhsPlane, 2+14*(n-2)*(n-2))
			for j := 1; j < n-1; j++ {
				for i := 1; i < n-1; i++ {
					c := a.cell(i, j, k)
					a.load(a.u.at(5 * c))
					a.load(a.u.at(5 * a.cell(i-1, j, k)))
					a.load(a.u.at(5 * a.cell(i+1, j, k)))
					a.load(a.u.at(5 * a.cell(i, j-1, k)))
					a.load(a.u.at(5 * a.cell(i, j+1, k)))
					a.load(a.u.at(5 * a.cell(i, j, k-1)))
					a.load(a.u.at(5 * a.cell(i, j, k+1)))
					a.load(a.rsd.at(5 * c))
				}
			}
			// Plane-dependent revisit of an earlier residual plane
			// (flux-limiter style correction); step-independent, so
			// phases repeat exactly.
			if h := rowHash(k); h%4 == 2 {
				back := 1 + int(h>>8)%6
				if back > k {
					back = k
				}
				a.block(appluBRhsRevisit, 2+(n-2)*(n-2))
				for j := 1; j < n-1; j++ {
					for i := 1; i < n-1; i++ {
						a.load(a.rsd.at(5 * a.cell(i, j, k-back)))
					}
				}
			}
		}

		// Lower-triangular sweep: jacld + blts, planes forward.
		a.mark()
		a.block(appluBLowerHead, 3)
		for k := 1; k < n-1; k++ {
			a.block(appluBLowerPlane, 2+12*(n-2)*(n-2))
			for j := 1; j < n-1; j++ {
				for i := 1; i < n-1; i++ {
					c := a.cell(i, j, k)
					a.load(a.a.at(c))
					a.load(a.b.at(c))
					a.load(a.c.at(c))
					a.load(a.d.at(c))
					a.load(a.rsd.at(5 * a.cell(i-1, j, k)))
					a.load(a.rsd.at(5 * a.cell(i, j-1, k)))
					a.load(a.rsd.at(5 * a.cell(i, j, k-1)))
					a.load(a.rsd.at(5 * c))
				}
			}
		}

		// Upper-triangular sweep: jacu + buts, planes backward.
		a.mark()
		a.block(appluBUpperHead, 3)
		for k := n - 2; k >= 1; k-- {
			a.block(appluBUpperPlane, 2+12*(n-2)*(n-2))
			for j := n - 2; j >= 1; j-- {
				for i := n - 2; i >= 1; i-- {
					c := a.cell(i, j, k)
					a.load(a.a.at(c))
					a.load(a.b.at(c))
					a.load(a.c.at(c))
					a.load(a.d.at(c))
					a.load(a.rsd.at(5 * a.cell(i+1, j, k)))
					a.load(a.rsd.at(5 * a.cell(i, j+1, k)))
					a.load(a.rsd.at(5 * a.cell(i, j, k+1)))
					a.load(a.rsd.at(5 * c))
				}
			}
		}

		// Update: u += ω·rsd.
		a.mark()
		a.block(appluBUpdateHead, 3)
		for k := 1; k < n-1; k++ {
			a.block(appluBUpdatePlane, 2+4*(n-2)*(n-2))
			for j := 1; j < n-1; j++ {
				for i := 1; i < n-1; i++ {
					c := a.cell(i, j, k)
					a.load(a.rsd.at(5 * c))
					a.load(a.u.at(5 * c))
				}
			}
		}
	}
	a.block(appluBExit, 2)
}
