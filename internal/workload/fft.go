package workload

import "lpp/internal/trace"

// fft is the textbook radix-2 fast Fourier transform of Table 1. Each
// outer step transforms a fresh signal of N complex points: an input
// fill, a bit-reversal permutation, and log2(N) butterfly passes whose
// stride doubles every pass, so the passes have equal length but
// shifting locality — the "varied behavior" that gives FFT lower
// resizing benefit in Section 3.2.
type fft struct {
	meter
	p      Params
	re, im array
	tw     array // twiddle factors, N/2 complex values
	logN   int
}

// FFT basic-block IDs.
const (
	fftBTransform trace.BlockID = 400 + iota
	fftBFillHead
	fftBFillChunk
	fftBBitrevHead
	fftBBitrevChunk
	fftBPassHead
	fftBPassChunk
	fftBExit
)

const fftChunk = 64 // inner iterations folded into one block event

func newFFT(p Params) Program {
	f := &fft{p: p}
	for 1<<f.logN < p.N {
		f.logN++
	}
	var s space
	f.re = s.alloc(p.N, 8)
	f.im = s.alloc(p.N, 8)
	f.tw = s.alloc(p.N, 8)
	return f
}

func (f *fft) Run(ins trace.Instrumenter) {
	f.begin(ins)
	n := f.p.N
	for step := 0; step < f.p.Steps; step++ {
		f.block(fftBTransform, 4)

		// Fill: write the next signal into re/im.
		f.mark()
		f.block(fftBFillHead, 3)
		for i := 0; i < n; i += fftChunk {
			f.block(fftBFillChunk, 2+3*fftChunk)
			for k := i; k < i+fftChunk && k < n; k++ {
				f.load(f.re.at(k))
				f.load(f.im.at(k))
			}
		}

		// Bit reversal: swap a[i] with a[rev(i)].
		f.mark()
		f.block(fftBBitrevHead, 3)
		for i := 0; i < n; i += fftChunk {
			f.block(fftBBitrevChunk, 2+5*fftChunk)
			for k := i; k < i+fftChunk && k < n; k++ {
				j := bitrev(k, f.logN)
				if j > k {
					f.load(f.re.at(k))
					f.load(f.re.at(j))
					f.load(f.im.at(k))
					f.load(f.im.at(j))
				}
			}
		}

		// Butterfly passes: stride doubles each pass.
		for pass := 0; pass < f.logN; pass++ {
			f.mark()
			f.block(fftBPassHead, 3)
			half := 1 << pass
			span := half << 1
			done := 0
			for base := 0; base < n; base += span {
				for k := 0; k < half; k++ {
					if done%fftChunk == 0 {
						f.block(fftBPassChunk, 2+7*fftChunk)
					}
					done++
					i, j := base+k, base+k+half
					f.load(f.tw.at(k * (n / span)))
					f.load(f.re.at(i))
					f.load(f.re.at(j))
					f.load(f.im.at(i))
					f.load(f.im.at(j))
				}
			}
		}
	}
	f.block(fftBExit, 2)
}

func bitrev(x, bits int) int {
	r := 0
	for b := 0; b < bits; b++ {
		r = (r << 1) | (x & 1)
		x >>= 1
	}
	return r
}
