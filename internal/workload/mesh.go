package workload

import (
	"sort"

	"lpp/internal/stats"
	"lpp/internal/trace"
)

// mesh models the CHAOS Mesh benchmark: relaxation over an unstructured
// mesh stored as an edge list, the classic irregular workload of the
// dynamic data-reorganization literature [11, 15, 25, 32]. Each time
// step sweeps the edge list (indirect accesses to both endpoint nodes)
// and then updates every node. Variant 1 sorts the edges by endpoint —
// the "same mesh with sorted edges" input the paper uses for Mesh's
// prediction run, which changes locality but not the trace length.
type mesh struct {
	meter
	p        Params
	nodeVal  array
	nodeAcc  array
	edgeData array
	edges    [][2]int32
}

// Mesh basic-block IDs.
const (
	meshBStep trace.BlockID = 700 + iota
	meshBEdgeHead
	meshBEdgeChunk
	meshBNodeHead
	meshBNodeChunk
	meshBExit
)

const meshChunk = 64

func newMesh(p Params) Program {
	m := &mesh{p: p}
	var s space
	m.nodeVal = s.alloc(p.N, 8)
	m.nodeAcc = s.alloc(p.N, 8)
	nEdges := p.N * 4
	m.edgeData = s.alloc(nEdges, 8)
	// A mesh-like graph: each node connects to near neighbors plus a
	// few random long links, in scattered order (as a mesh generator
	// would emit them).
	rng := stats.NewRNG(p.Seed)
	width := 64
	m.edges = make([][2]int32, 0, nEdges)
	for i := 0; i < p.N; i++ {
		for _, j := range []int{i + 1, i + width, i + width + 1} {
			if j < p.N {
				m.edges = append(m.edges, [2]int32{int32(i), int32(j)})
			}
		}
		if len(m.edges) < nEdges {
			m.edges = append(m.edges, [2]int32{int32(i), int32(rng.Intn(p.N))})
		}
	}
	// Scatter the edge order deterministically (Fisher–Yates).
	for i := len(m.edges) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		m.edges[i], m.edges[j] = m.edges[j], m.edges[i]
	}
	if p.Variant == 1 {
		// The prediction input: same mesh, edges sorted by their
		// first endpoint.
		sort.Slice(m.edges, func(a, b int) bool {
			if m.edges[a][0] != m.edges[b][0] {
				return m.edges[a][0] < m.edges[b][0]
			}
			return m.edges[a][1] < m.edges[b][1]
		})
	}
	return m
}

func (m *mesh) Run(ins trace.Instrumenter) {
	m.begin(ins)
	for step := 0; step < m.p.Steps; step++ {
		m.block(meshBStep, 4)

		// Edge sweep: indirect accesses through both endpoints.
		m.mark()
		m.block(meshBEdgeHead, 3)
		for e := 0; e < len(m.edges); e++ {
			if e%meshChunk == 0 {
				m.block(meshBEdgeChunk, 2+8*meshChunk)
			}
			a, b := int(m.edges[e][0]), int(m.edges[e][1])
			m.load(m.edgeData.at(e))
			m.load(m.nodeVal.at(a))
			m.load(m.nodeVal.at(b))
			m.load(m.nodeAcc.at(a))
			m.load(m.nodeAcc.at(b))
		}

		// Node update sweep.
		m.mark()
		m.block(meshBNodeHead, 3)
		for i := 0; i < m.p.N; i += meshChunk {
			m.block(meshBNodeChunk, 2+4*meshChunk)
			for k := i; k < i+meshChunk && k < m.p.N; k++ {
				m.load(m.nodeAcc.at(k))
				m.load(m.nodeVal.at(k))
			}
		}
	}
	m.block(meshBExit, 2)
}

// Edges exposes the mesh connectivity for the affinity experiments.
func (m *mesh) Edges() [][2]int32 { return m.edges }

// Arrays implements trace.HasArrays.
func (m *mesh) Arrays() []trace.ArraySpan {
	return []trace.ArraySpan{
		{Name: "nodeVal", Base: m.nodeVal.base, Elems: m.p.N, ElemSize: 8},
		{Name: "nodeAcc", Base: m.nodeAcc.base, Elems: m.p.N, ElemSize: 8},
		{Name: "edgeData", Base: m.edgeData.base, Elems: m.p.N * 4, ElemSize: 8},
	}
}
