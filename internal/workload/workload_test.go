package workload

import (
	"testing"

	"lpp/internal/trace"
)

func TestAllSpecsWellFormed(t *testing.T) {
	specs := All()
	if len(specs) != 9 {
		t.Fatalf("suite has %d benchmarks, want 9 (Table 1)", len(specs))
	}
	names := make(map[string]bool)
	for _, s := range specs {
		if names[s.Name] {
			t.Errorf("duplicate benchmark name %q", s.Name)
		}
		names[s.Name] = true
		if s.Make == nil || s.Description == "" || s.Source == "" {
			t.Errorf("%s: incomplete spec", s.Name)
		}
		if s.Train.N <= 0 || s.Train.Steps <= 0 {
			t.Errorf("%s: bad train params %+v", s.Name, s.Train)
		}
	}
	if len(Predictable()) != 7 {
		t.Errorf("predictable set has %d members, want 7", len(Predictable()))
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("tomcatv")
	if err != nil || s.Name != "tomcatv" {
		t.Errorf("ByName(tomcatv) = %v, %v", s.Name, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) should fail")
	}
}

// small returns shrunken params so every workload runs fast in tests.
func small(s Spec) Params {
	p := s.Train
	switch s.Name {
	case "fft":
		p.N = 1 << 8
		p.Steps = 3
	case "applu":
		p.N = 10
		p.Steps = 3
	case "compress", "vortex":
		p.N = 1 << 12
		p.Steps = 3
	case "gcc":
		p.N = 30
		p.Steps = 5
	case "mesh":
		p.N = 1 << 10
		p.Steps = 3
	case "moldyn":
		p.N = 150
		p.Steps = 4
	default: // tomcatv, swim
		p.N = 32
		p.Steps = 3
	}
	return p
}

func TestWorkloadsRunAndAreDeterministic(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			p := small(s)
			r1 := trace.NewRecorder(0, 0)
			prog1 := s.Make(p)
			prog1.Run(r1)
			r2 := trace.NewRecorder(0, 0)
			prog2 := s.Make(p)
			prog2.Run(r2)

			if len(r1.T.Accesses) == 0 || len(r1.T.Blocks) == 0 {
				t.Fatal("workload emitted no events")
			}
			if len(r1.T.Accesses) != len(r2.T.Accesses) {
				t.Fatalf("nondeterministic access count: %d vs %d",
					len(r1.T.Accesses), len(r2.T.Accesses))
			}
			for i := range r1.T.Accesses {
				if r1.T.Accesses[i] != r2.T.Accesses[i] {
					t.Fatalf("nondeterministic access at %d", i)
				}
			}
			if len(r1.T.Blocks) != len(r2.T.Blocks) {
				t.Fatal("nondeterministic block count")
			}
			m1, m2 := prog1.ManualMarks(), prog2.ManualMarks()
			if len(m1) != len(m2) || len(m1) == 0 {
				t.Fatalf("manual marks: %d vs %d (want equal, nonzero)", len(m1), len(m2))
			}
		})
	}
}

func TestManualMarksMonotonic(t *testing.T) {
	for _, s := range All() {
		p := small(s)
		prog := s.Make(p)
		var c trace.Counter
		prog.Run(&c)
		marks := prog.ManualMarks()
		for i := 1; i < len(marks); i++ {
			if marks[i] < marks[i-1] {
				t.Errorf("%s: marks not monotonic at %d", s.Name, i)
			}
		}
		if last := marks[len(marks)-1]; last > int64(c.Accesses) {
			t.Errorf("%s: mark %d beyond end of run %d", s.Name, last, c.Accesses)
		}
	}
}

func TestScalesWithN(t *testing.T) {
	for _, s := range All() {
		if s.Name == "mesh" || s.Name == "gcc" {
			continue // mesh's ref equals train; gcc scales with Steps
		}
		p1 := small(s)
		p2 := p1
		p2.N *= 2
		var c1, c2 trace.Counter
		s.Make(p1).Run(&c1)
		s.Make(p2).Run(&c2)
		if c2.Accesses <= c1.Accesses {
			t.Errorf("%s: doubling N did not increase accesses (%d vs %d)",
				s.Name, c1.Accesses, c2.Accesses)
		}
	}
}

func TestScalesWithSteps(t *testing.T) {
	for _, s := range All() {
		if s.Name == "vortex" {
			continue // build dominates at tiny sizes
		}
		p1 := small(s)
		p2 := p1
		p2.Steps *= 3
		var c1, c2 trace.Counter
		s.Make(p1).Run(&c1)
		s.Make(p2).Run(&c2)
		if c2.Accesses <= c1.Accesses {
			t.Errorf("%s: tripling Steps did not increase accesses", s.Name)
		}
	}
}

func TestSubstepHeaderFrequencies(t *testing.T) {
	// Marker selection depends on header blocks executing once per
	// time step. Check tomcatv's five substep headers and swim's
	// three.
	p := Params{N: 24, Steps: 5, Seed: 1}
	rec := trace.NewRecorder(0, 0)
	prog, _ := ByName("tomcatv")
	prog.Make(p).Run(rec)
	freq := rec.T.BlockFrequency()
	for _, id := range []trace.BlockID{tomBResidHead, tomBCoefHead, tomBForwardHead, tomBBackwardHead, tomBCorrectHead} {
		if freq[id] != p.Steps {
			t.Errorf("tomcatv header %d freq = %d, want %d", id, freq[id], p.Steps)
		}
	}
	if freq[tomBResidRow] <= p.Steps {
		t.Error("tomcatv row block should execute far more often than headers")
	}

	rec2 := trace.NewRecorder(0, 0)
	sw, _ := ByName("swim")
	sw.Make(p).Run(rec2)
	freq2 := rec2.T.BlockFrequency()
	for _, id := range []trace.BlockID{swimBCalc1Head, swimBCalc2Head, swimBCalc3Head} {
		if freq2[id] != p.Steps {
			t.Errorf("swim header %d freq = %d, want %d", id, freq2[id], p.Steps)
		}
	}
}

func TestMeshVariantSortedSameLength(t *testing.T) {
	p := Params{N: 1 << 10, Steps: 2, Seed: 1}
	ps := p
	ps.Variant = 1
	var c1, c2 trace.Counter
	m, _ := ByName("mesh")
	m.Make(p).Run(&c1)
	m.Make(ps).Run(&c2)
	if c1.Accesses != c2.Accesses {
		t.Errorf("sorted mesh changed trace length: %d vs %d", c1.Accesses, c2.Accesses)
	}
	// But the access order must differ (locality changes).
	r1, r2 := trace.NewRecorder(0, 0), trace.NewRecorder(0, 0)
	m.Make(p).Run(r1)
	m.Make(ps).Run(r2)
	same := true
	for i := range r1.T.Accesses {
		if r1.T.Accesses[i] != r2.T.Accesses[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("sorted mesh produced identical access order")
	}
}

func TestGccFunctionSizesVary(t *testing.T) {
	g, _ := ByName("gcc")
	prog := g.Make(Params{N: 30, Steps: 20, Seed: 3}).(*gcc)
	min, max := prog.funcSizes[0], prog.funcSizes[0]
	for _, s := range prog.funcSizes {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if max < 4*min {
		t.Errorf("gcc function sizes too uniform: min=%d max=%d", min, max)
	}
}

func TestMolDynManualCoarserThanSubsteps(t *testing.T) {
	// MolDyn's programmer marks whole time steps: exactly Steps marks.
	m, _ := ByName("moldyn")
	p := Params{N: 150, Steps: 4, Seed: 1}
	prog := m.Make(p)
	var c trace.Counter
	prog.Run(&c)
	if got := len(prog.ManualMarks()); got != p.Steps {
		t.Errorf("moldyn manual marks = %d, want %d", got, p.Steps)
	}
}

func TestTomcatvBlockTraceInstrAccounting(t *testing.T) {
	// Instruction counts must be plausible: at least one instruction
	// per access overall.
	p := Params{N: 24, Steps: 2, Seed: 1}
	var c trace.Counter
	prog, _ := ByName("tomcatv")
	prog.Make(p).Run(&c)
	if c.Instructions < c.Accesses {
		t.Errorf("instructions (%d) < accesses (%d)", c.Instructions, c.Accesses)
	}
}
