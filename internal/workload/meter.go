package workload

import "lpp/internal/trace"

// meter is the shared instrumentation plumbing every workload embeds:
// it forwards events to the run's Instrumenter, tracks logical time,
// and records the programmer's manual phase markers.
type meter struct {
	ins      trace.Instrumenter
	accesses int64
	marks    []int64
}

// begin resets the meter for a new run.
func (m *meter) begin(ins trace.Instrumenter) {
	m.ins = ins
	m.accesses = 0
	m.marks = m.marks[:0]
}

// block reports a basic-block entry executing instrs instructions.
func (m *meter) block(id trace.BlockID, instrs int) {
	m.ins.Block(id, instrs)
}

// load reports one data access.
func (m *meter) load(addr trace.Addr) {
	m.ins.Access(addr)
	m.accesses++
}

// mark records a manual phase marker at the current logical time.
func (m *meter) mark() {
	m.marks = append(m.marks, m.accesses)
}

// ManualMarks implements Program.
func (m *meter) ManualMarks() []int64 {
	out := make([]int64, len(m.marks))
	copy(out, m.marks)
	return out
}

// rowHash is a cheap deterministic hash used by the grid kernels to
// decide which rows perform extra "revisit" work — the fine-grain
// irregularity real codes have (boundary handling, convergence checks,
// corrections) that makes fixed-length windows irregular (Figure 3e)
// while leaving every execution of a phase identical, because the hash
// depends only on the row, not the time step.
func rowHash(j int) uint32 {
	x := uint32(j) * 2654435761
	x ^= x >> 16
	return x
}

// space is a bump allocator for the virtual address space of a
// workload. Arrays are page-aligned so distinct arrays never share a
// cache block.
type space struct {
	next trace.Addr
}

const pageSize = 4096

// array is a contiguous virtual array of fixed-size elements.
type array struct {
	base     trace.Addr
	elemSize trace.Addr
}

// alloc reserves a page-aligned array of elems elements of elemSize
// bytes each.
func (s *space) alloc(elems, elemSize int) array {
	if s.next == 0 {
		s.next = pageSize // keep address 0 unused
	}
	a := array{base: s.next, elemSize: trace.Addr(elemSize)}
	bytes := trace.Addr(elems) * a.elemSize
	s.next += (bytes + pageSize - 1) &^ (pageSize - 1)
	return a
}

// at returns the address of element i.
func (a array) at(i int) trace.Addr {
	return a.base + trace.Addr(i)*a.elemSize
}
