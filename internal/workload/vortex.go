package workload

import (
	"lpp/internal/stats"
	"lpp/internal/trace"
)

// vortex models SPEC95 Vortex, the object-oriented database of Section
// 3.1.2: the run first constructs a database (insertions into a hash
// index and an ordered index) and then processes query batches (random
// lookups). The transition from insertion to querying is visible in
// the reuse-distance trace, but because real inputs interleave builds
// and queries arbitrarily, the phase lengths are input-dependent and
// the paper does not predict them.
type vortex struct {
	meter
	p       Params
	objects array // object storage
	hashIdx array // hash index buckets
	treeIdx array // ordered index nodes
	keys    []uint32
}

// Vortex basic-block IDs.
const (
	vorBBuildHead trace.BlockID = 900 + iota
	vorBBuildChunk
	vorBQueryBatch
	vorBQueryChunk
	vorBExit
)

const (
	vorChunk    = 32
	vorHashSize = 1 << 13
)

func newVortex(p Params) Program {
	v := &vortex{p: p}
	var s space
	v.objects = s.alloc(p.N*8, 8) // 8 words per object
	v.hashIdx = s.alloc(vorHashSize, 8)
	v.treeIdx = s.alloc(2*p.N, 8)
	rng := stats.NewRNG(p.Seed)
	v.keys = make([]uint32, p.N)
	for i := range v.keys {
		v.keys[i] = uint32(rng.Uint64())
	}
	return v
}

func (v *vortex) Run(ins trace.Instrumenter) {
	v.begin(ins)
	n := v.p.N

	// Build: insert every object into both indexes.
	v.mark()
	v.block(vorBBuildHead, 3)
	for i := 0; i < n; i++ {
		if i%vorChunk == 0 {
			v.block(vorBBuildChunk, 2+12*vorChunk)
		}
		key := v.keys[i]
		// Write the object record.
		for w := 0; w < 8; w++ {
			v.load(v.objects.at(i*8 + w))
		}
		// Hash index insert.
		v.load(v.hashIdx.at(int(key) % vorHashSize))
		// Ordered index insert: walk ~log2(i) nodes.
		node := 0
		for d := 0; d < 16 && node < 2*n; d++ {
			v.load(v.treeIdx.at(node))
			if i>>(uint(d)%16)&1 == 1 {
				node = 2*node + 2
			} else {
				node = 2*node + 1
			}
			if d > log2i(i+1) {
				break
			}
		}
	}

	// Query batches: random lookups through the indexes.
	rng := stats.NewRNG(v.p.Seed + 99)
	queriesPerBatch := n / 4
	for batch := 0; batch < v.p.Steps; batch++ {
		v.mark()
		v.block(vorBQueryBatch, 4)
		for q := 0; q < queriesPerBatch; q++ {
			if q%vorChunk == 0 {
				v.block(vorBQueryChunk, 2+14*vorChunk)
			}
			i := rng.Intn(n)
			key := v.keys[i]
			v.load(v.hashIdx.at(int(key) % vorHashSize))
			node := 0
			for d := 0; d <= log2i(i+1) && node < 2*n; d++ {
				v.load(v.treeIdx.at(node))
				node = 2*node + 1 + (i>>uint(d%16))&1
			}
			// Touch the object found.
			for w := 0; w < 4; w++ {
				v.load(v.objects.at(i*8 + w))
			}
		}
	}
	v.block(vorBExit, 2)
}

func log2i(x int) int {
	n := 0
	for x > 1 {
		x >>= 1
		n++
	}
	return n
}
