// Package httpx holds the HTTP retry policy shared by every client in
// the system — the lppbench ingest/stream/cluster drivers, the
// checkpoint replicator, and the cluster router. The policy has two
// halves: capped exponential backoff with jitter for failures the
// server said nothing useful about, and server-paced waits for 429s
// that carry a Retry-After or X-Lpp-Retry-After-Ms hint. A hinted wait
// never grows the exponential backoff: the server already paced the
// client, so the next failure should not be punished for it.
package httpx

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// Backoff is a capped exponential backoff with jitter. The zero value
// is unusable; fill Min and Max (Next panics on Min <= 0). Backoff is
// not safe for concurrent use — give each retry loop its own.
type Backoff struct {
	// Min is the first delay; Max caps the growth.
	Min, Max time.Duration
	cur      time.Duration
}

// Next returns the current delay plus up to 50% jitter and doubles the
// base for the next call, capped at Max.
func (b *Backoff) Next() time.Duration {
	if b.cur <= 0 {
		b.cur = b.Min
	}
	if b.Max < b.Min {
		b.Max = b.Min
	}
	d := b.cur
	if b.cur *= 2; b.cur > b.Max {
		b.cur = b.Max
	}
	return d + time.Duration(rand.Int63n(int64(d)/2+1))
}

// Sleep waits Next(), or returns false immediately if stop closes
// first. A nil stop channel never interrupts the wait.
func (b *Backoff) Sleep(stop <-chan struct{}) bool {
	t := time.NewTimer(b.Next())
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-stop:
		return false
	}
}

// Reset restarts the growth at Min (call after a success).
func (b *Backoff) Reset() { b.cur = 0 }

// RetryAfter extracts the server's wait hint from a response:
// X-Lpp-Retry-After-Ms first (millisecond resolution), then the
// standard Retry-After delay-seconds form. Zero means no usable hint.
// Hints are clamped to max so a confused server can't stall the
// client; max <= 0 means 5s.
func RetryAfter(h http.Header, max time.Duration) time.Duration {
	if max <= 0 {
		max = 5 * time.Second
	}
	if v := h.Get("X-Lpp-Retry-After-Ms"); v != "" {
		if ms, err := strconv.ParseInt(v, 10, 64); err == nil && ms > 0 {
			if d := time.Duration(ms) * time.Millisecond; d < max {
				return d
			}
			return max
		}
	}
	if v := h.Get("Retry-After"); v != "" {
		if sec, err := strconv.ParseInt(v, 10, 64); err == nil && sec > 0 {
			if d := time.Duration(sec) * time.Second; d < max {
				return d
			}
			return max
		}
	}
	return 0
}

// RetryCounts tallies the transient failures a retry loop rode out.
type RetryCounts struct {
	// Status429 and Status5xx count retried HTTP failures; Conn counts
	// connection-level errors.
	Status429, Status5xx, Conn int
	// Hinted counts the retries that waited a server-provided interval
	// instead of blind exponential backoff.
	Hinted int
	// Replayed counts responses served from the server's idempotency
	// cache (X-Lpp-Replayed).
	Replayed int
}

// MaxChunkAttempts bounds the retry loop for one chunk; with the
// backoff below it spans roughly half a minute of unavailability.
const MaxChunkAttempts = 60

// PostChunk sends one seq-numbered chunk with the given Content-Type,
// retrying transient failures — 429 backpressure, 5xx, and connection
// errors — resending the same body under the same sequence number each
// time. The sequence number makes retries idempotent: a chunk the
// server already applied is answered from its response cache instead
// of being double-fed into the detector. Responses with any other
// status (including 409 sequence gaps) are returned to the caller
// unread.
func PostChunk(client *http.Client, url string, seq uint64, body []byte, contentType string, rc *RetryCounts) (*http.Response, error) {
	bo := Backoff{Min: 5 * time.Millisecond, Max: 500 * time.Millisecond}
	return postChunk(client, url, seq, body, contentType, rc, MaxChunkAttempts, bo)
}

// postChunk is PostChunk with the retry budget and backoff injectable,
// so tests can exhaust the loop without its half-minute of sleeps.
func postChunk(client *http.Client, url string, seq uint64, body []byte, contentType string, rc *RetryCounts, maxAttempts int, bo Backoff) (*http.Response, error) {
	var lastErr error
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		req, err := http.NewRequest("POST", url, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", contentType)
		req.Header.Set("X-Lpp-Seq", strconv.FormatUint(seq, 10))
		resp, err := client.Do(req)
		var hint time.Duration
		switch {
		case err != nil:
			rc.Conn++
			lastErr = err
		case resp.StatusCode == http.StatusTooManyRequests:
			rc.Status429++
			hint = RetryAfter(resp.Header, 5*time.Second)
			lastErr = fmt.Errorf("server answered %s", resp.Status)
		case resp.StatusCode >= 500:
			rc.Status5xx++
			lastErr = fmt.Errorf("server answered %s", resp.Status)
		default:
			if resp.Header.Get("X-Lpp-Replayed") == "true" {
				rc.Replayed++
			}
			return resp, nil
		}
		if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		if hint > 0 {
			rc.Hinted++
			time.Sleep(hint)
			continue
		}
		time.Sleep(bo.Next())
	}
	return nil, fmt.Errorf("seq %d: gave up after %d attempts: %w", seq, maxAttempts, lastErr)
}
