package httpx

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestBackoffGrowsAndCaps(t *testing.T) {
	b := Backoff{Min: 10 * time.Millisecond, Max: 40 * time.Millisecond}
	bases := []time.Duration{10, 20, 40, 40, 40}
	for i, want := range bases {
		want *= time.Millisecond
		got := b.Next()
		if got < want || got > want+want/2 {
			t.Fatalf("Next #%d = %v, want in [%v, %v]", i, got, want, want+want/2)
		}
	}
	b.Reset()
	if got := b.Next(); got < 10*time.Millisecond || got > 15*time.Millisecond {
		t.Fatalf("Next after Reset = %v, want in [10ms, 15ms]", got)
	}
}

func TestBackoffSleepStops(t *testing.T) {
	b := Backoff{Min: time.Hour, Max: time.Hour}
	stop := make(chan struct{})
	close(stop)
	start := time.Now()
	if b.Sleep(stop) {
		t.Fatal("Sleep returned true with stop closed")
	}
	if time.Since(start) > time.Second {
		t.Fatal("Sleep did not return promptly on stop")
	}
}

func TestRetryAfter(t *testing.T) {
	mk := func(kv ...string) http.Header {
		h := http.Header{}
		for i := 0; i < len(kv); i += 2 {
			h.Set(kv[i], kv[i+1])
		}
		return h
	}
	cases := []struct {
		name string
		h    http.Header
		max  time.Duration
		want time.Duration
	}{
		{"none", mk(), 0, 0},
		{"ms", mk("X-Lpp-Retry-After-Ms", "25"), 0, 25 * time.Millisecond},
		{"ms beats seconds", mk("X-Lpp-Retry-After-Ms", "25", "Retry-After", "3"), 0, 25 * time.Millisecond},
		{"seconds", mk("Retry-After", "2"), 0, 2 * time.Second},
		{"clamped default", mk("Retry-After", "3600"), 0, 5 * time.Second},
		{"clamped custom", mk("X-Lpp-Retry-After-Ms", "900"), 100 * time.Millisecond, 100 * time.Millisecond},
		{"garbage ms falls through", mk("X-Lpp-Retry-After-Ms", "soon", "Retry-After", "1"), 0, time.Second},
		{"zero ignored", mk("X-Lpp-Retry-After-Ms", "0", "Retry-After", "-1"), 0, 0},
		{"http-date form unsupported", mk("Retry-After", "Fri, 31 Dec 1999 23:59:59 GMT"), 0, 0},
	}
	for _, c := range cases {
		if got := RetryAfter(c.h, c.max); got != c.want {
			t.Errorf("%s: RetryAfter = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestPostChunkRetries drives the full loop: two 429s (one hinted), a
// 503, then success with the replay marker.
func TestPostChunkRetries(t *testing.T) {
	var calls atomic.Int64
	var lastSeq, lastBody atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		lastSeq.Store(r.Header.Get("X-Lpp-Seq"))
		body := make([]byte, 8)
		m, _ := r.Body.Read(body)
		lastBody.Store(string(body[:m]))
		switch n {
		case 1:
			w.Header().Set("X-Lpp-Retry-After-Ms", "1")
			w.WriteHeader(http.StatusTooManyRequests)
		case 2:
			w.WriteHeader(http.StatusTooManyRequests)
		case 3:
			w.WriteHeader(http.StatusBadGateway)
		default:
			w.Header().Set("X-Lpp-Replayed", "true")
			w.WriteHeader(http.StatusOK)
		}
	}))
	defer srv.Close()

	var rc RetryCounts
	resp, err := PostChunk(srv.Client(), srv.URL, 7, []byte("chunk"), "application/x-test", &rc)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if rc.Status429 != 2 || rc.Status5xx != 1 || rc.Hinted != 1 || rc.Replayed != 1 || rc.Conn != 0 {
		t.Fatalf("counts = %+v", rc)
	}
	if lastSeq.Load() != "7" {
		t.Fatalf("retries changed the sequence number: %v", lastSeq.Load())
	}
	if lastBody.Load() != "chunk" {
		t.Fatalf("retries changed the body: %q", lastBody.Load())
	}
}

// TestPostChunkReturnsConflictUnread: a 409 sequence gap is the
// caller's protocol business, not a transient failure.
func TestPostChunkReturnsConflict(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("X-Lpp-Want-Seq", "3")
		w.WriteHeader(http.StatusConflict)
	}))
	defer srv.Close()
	var rc RetryCounts
	resp, err := PostChunk(srv.Client(), srv.URL, 9, nil, "application/x-test", &rc)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || resp.Header.Get("X-Lpp-Want-Seq") != "3" {
		t.Fatalf("conflict not passed through: %d %q", resp.StatusCode, resp.Header.Get("X-Lpp-Want-Seq"))
	}
	if rc.Status429+rc.Status5xx+rc.Conn != 0 {
		t.Fatalf("conflict counted as a retry: %+v", rc)
	}
}

// TestPostChunkGivesUp: connection errors exhaust the attempt budget.
func TestPostChunkGivesUp(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	srv.Close() // nothing listens any more
	var rc RetryCounts
	client := &http.Client{Timeout: 50 * time.Millisecond}
	bo := Backoff{Min: time.Microsecond, Max: time.Microsecond}
	_, err := postChunk(client, srv.URL, 1, nil, "application/x-test", &rc, 4, bo)
	if err == nil {
		t.Fatal("postChunk succeeded against a closed server")
	}
	if rc.Conn != 4 {
		t.Fatalf("conn retries = %d, want 4", rc.Conn)
	}
}
