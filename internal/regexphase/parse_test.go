package regexphase

import (
	"testing"

	"lpp/internal/stats"
)

func TestParseKnownForms(t *testing.T) {
	cases := []struct {
		in   string
		want Expr
	}{
		{"7", Lit{7}},
		{"1 2 3", Seq(1, 2, 3)},
		{"(1 2 3 4 5)+", Repeat{Seq(1, 2, 3, 4, 5), 1}},
		{"9 (1 2)+", Concat{[]Expr{Lit{9}, Repeat{Seq(1, 2), 1}}}},
		{"5*", Repeat{Lit{5}, 0}},
		{"1{3,}", Repeat{Lit{1}, 3}},
		{"(1 | 2)", Alt{[]Expr{Lit{1}, Lit{2}}}},
		{"(0 (1 2)+)+", Repeat{Concat{[]Expr{Lit{0}, Repeat{Seq(1, 2), 1}}}, 1}},
		{"ε", Concat{}},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if !Equivalent(got, c.want) {
			t.Errorf("Parse(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"", "(", ")", "1 (", "(1", "|", "1 |", "a b", "1{,}", "1{x,}", "1{3}", "+",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	// Property: Parse(e.String()) is language-equivalent to e.
	rng := stats.NewRNG(41)
	for trial := 0; trial < 150; trial++ {
		e := randomExpr(rng, 3)
		parsed, err := Parse(e.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", e.String(), err)
		}
		if !Equivalent(e, parsed) {
			t.Fatalf("round trip changed the language: %v -> %v", e, parsed)
		}
	}
}

func TestParseHierarchyFromRealPipelineShape(t *testing.T) {
	// The shapes Detect actually produces.
	for _, s := range []string{
		"(0 1 2 3 4)+",
		"(0 (1 2)+)+",
		"0 1+",
		"(0 1 2+)+",
	} {
		e, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got := e.String(); got != s {
			// Rendering need not be byte-identical, but must be
			// re-parseable and equivalent.
			back, err := Parse(got)
			if err != nil || !Equivalent(back, e) {
				t.Errorf("unstable rendering %q -> %q", s, got)
			}
		}
	}
}
