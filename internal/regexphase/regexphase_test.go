package regexphase

import (
	"testing"

	"lpp/internal/sequitur"
	"lpp/internal/stats"
)

// refMatch is a brute-force reference matcher: can e match s exactly?
// Exponential, for tiny test inputs only.
func refMatch(e Expr, s []int) bool {
	switch v := e.(type) {
	case Lit:
		return len(s) == 1 && s[0] == v.Sym
	case Concat:
		return refMatchConcat(v.Parts, s)
	case Alt:
		for _, c := range v.Choices {
			if refMatch(c, s) {
				return true
			}
		}
		return false
	case Repeat:
		return refMatchRepeat(v, s)
	}
	return false
}

func refMatchConcat(parts []Expr, s []int) bool {
	if len(parts) == 0 {
		return len(s) == 0
	}
	for cut := 0; cut <= len(s); cut++ {
		if refMatch(parts[0], s[:cut]) && refMatchConcat(parts[1:], s[cut:]) {
			return true
		}
	}
	return false
}

func refMatchRepeat(r Repeat, s []int) bool {
	if len(s) == 0 {
		// X* matches empty; X+ matches empty iff X does.
		return r.Min == 0 || refMatch(r.E, nil)
	}
	min := r.Min
	if min == 0 {
		min = 1 // at least one copy needed for non-empty s
	}
	// Match min..len(s) copies via splitting.
	var try func(copies int, s []int) bool
	try = func(copies int, s []int) bool {
		if copies == 0 {
			return len(s) == 0
		}
		for cut := 1; cut <= len(s); cut++ {
			if refMatch(r.E, s[:cut]) && try(copies-1, s[cut:]) {
				return true
			}
		}
		// Also allow more copies than min by re-entering with the
		// same count after consuming one copy: handled by the
		// copies>=1 loop below.
		return false
	}
	for copies := min; copies <= len(s); copies++ {
		if try(copies, s) {
			return true
		}
	}
	return false
}

func TestExprString(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{Lit{3}, "3"},
		{Seq(1, 2, 3), "1 2 3"},
		{Repeat{Seq(1, 2), 1}, "(1 2)+"},
		{Repeat{Lit{5}, 0}, "5*"},
		{Repeat{Lit{1}, 3}, "1{3,}"},
		{Alt{[]Expr{Lit{1}, Lit{2}}}, "(1 | 2)"},
		{Concat{}, "ε"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestAlphabet(t *testing.T) {
	e := Concat{[]Expr{Repeat{Seq(3, 1), 1}, Alt{[]Expr{Lit{2}, Lit{1}}}}}
	got := Alphabet(e)
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("Alphabet = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Alphabet = %v, want %v", got, want)
		}
	}
}

func TestCompileMatchesBasics(t *testing.T) {
	e := Repeat{Seq(1, 2, 3, 4, 5), 1} // the Tomcatv hierarchy shape
	d := Compile(e)
	if !d.Matches([]int{1, 2, 3, 4, 5}) {
		t.Error("one time step should match")
	}
	if !d.Matches([]int{1, 2, 3, 4, 5, 1, 2, 3, 4, 5, 1, 2, 3, 4, 5}) {
		t.Error("three time steps should match")
	}
	if d.Matches([]int{1, 2, 3, 4}) {
		t.Error("partial step should not match")
	}
	if d.Matches(nil) {
		t.Error("empty should not match a plus")
	}
	if d.Matches([]int{1, 2, 3, 4, 5, 9}) {
		t.Error("unknown symbol should not match")
	}
}

func TestCompileAlt(t *testing.T) {
	e := Alt{[]Expr{Seq(1, 2), Seq(3)}}
	d := Compile(e)
	if !d.Matches([]int{1, 2}) || !d.Matches([]int{3}) {
		t.Error("alternatives should match")
	}
	if d.Matches([]int{1, 3}) || d.Matches([]int{1}) {
		t.Error("non-members should not match")
	}
}

func TestCompileStarMatchesEmpty(t *testing.T) {
	d := Compile(Repeat{Lit{1}, 0})
	if !d.Matches(nil) {
		t.Error("star should match empty")
	}
	if !d.Matches([]int{1, 1, 1}) {
		t.Error("star should match repetitions")
	}
}

func randomExpr(rng *stats.RNG, depth int) Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		return Lit{rng.Intn(3)}
	}
	switch rng.Intn(3) {
	case 0:
		return Concat{[]Expr{randomExpr(rng, depth-1), randomExpr(rng, depth-1)}}
	case 1:
		return Alt{[]Expr{randomExpr(rng, depth-1), randomExpr(rng, depth-1)}}
	default:
		return Repeat{randomExpr(rng, depth-1), rng.Intn(2)}
	}
}

func TestCompileAgainstReference(t *testing.T) {
	rng := stats.NewRNG(11)
	for trial := 0; trial < 200; trial++ {
		e := randomExpr(rng, 3)
		d := Compile(e)
		for s := 0; s < 20; s++ {
			n := rng.Intn(6)
			seq := make([]int, n)
			for i := range seq {
				seq[i] = rng.Intn(3)
			}
			if d.Matches(seq) != refMatch(e, seq) {
				t.Fatalf("mismatch for %v on %v: dfa=%v ref=%v",
					e, seq, d.Matches(seq), refMatch(e, seq))
			}
		}
	}
}

func TestMinimizePreservesLanguage(t *testing.T) {
	rng := stats.NewRNG(13)
	for trial := 0; trial < 100; trial++ {
		e := randomExpr(rng, 3)
		d := Compile(e)
		m := Minimize(d)
		if !EquivalentDFA(d, m) {
			t.Fatalf("Minimize changed the language of %v\nbefore:\n%s\nafter:\n%s", e, d, m)
		}
		if m.NumStates() > d.NumStates() {
			t.Fatalf("Minimize grew %d -> %d states for %v", d.NumStates(), m.NumStates(), e)
		}
		// Idempotence.
		m2 := Minimize(m)
		if m2.NumStates() != m.NumStates() {
			t.Fatalf("Minimize not idempotent for %v: %d -> %d", e, m.NumStates(), m2.NumStates())
		}
	}
}

func TestMinimizeKnownSize(t *testing.T) {
	// (1 2 3)+ has a minimal DFA of exactly 4 states: the rejecting
	// start plus one state per position in the step (the accepting
	// end-of-step state loops back on 1).
	m := Minimize(Compile(Repeat{Seq(1, 2, 3), 1}))
	if m.NumStates() != 4 {
		t.Errorf("minimal DFA for (1 2 3)+ has %d states, want 4\n%s", m.NumStates(), m)
	}
	// 1* is a single accepting state.
	m = Minimize(Compile(Repeat{Lit{1}, 0}))
	if m.NumStates() != 1 {
		t.Errorf("minimal DFA for 1* has %d states, want 1", m.NumStates())
	}
}

func TestEquivalentKnownPairs(t *testing.T) {
	equal := [][2]Expr{
		{Repeat{Seq(1, 2), 1}, Concat{[]Expr{Seq(1, 2), Repeat{Seq(1, 2), 0}}}}, // X+ == X X*
		{Alt{[]Expr{Lit{1}, Lit{2}}}, Alt{[]Expr{Lit{2}, Lit{1}}}},              // commutativity
		{Seq(1, 2, 3), Concat{[]Expr{Seq(1), Seq(2, 3)}}},                       // associativity
		{Repeat{Repeat{Lit{1}, 1}, 1}, Repeat{Lit{1}, 1}},                       // (X+)+ == X+
	}
	for _, p := range equal {
		if !Equivalent(p[0], p[1]) {
			t.Errorf("%v and %v should be equivalent", p[0], p[1])
		}
	}
	notEqual := [][2]Expr{
		{Repeat{Seq(1, 2), 1}, Repeat{Seq(1, 2), 0}}, // plus vs star
		{Seq(1, 2), Seq(2, 1)},
		{Lit{1}, Lit{2}},
		{Seq(1), Seq(1, 1)},
	}
	for _, p := range notEqual {
		if Equivalent(p[0], p[1]) {
			t.Errorf("%v and %v should differ", p[0], p[1])
		}
	}
}

func TestEquivalentDisjointAlphabets(t *testing.T) {
	if Equivalent(Lit{1}, Lit{9}) {
		t.Error("literals over different symbols should differ")
	}
}

func TestEquivalentAgainstReference(t *testing.T) {
	// Property: if the DFAs agree with refMatch (already tested),
	// Equivalent(a,b) must equal "same acceptance on all short
	// strings" for random pairs, modulo strings longer than probed —
	// use the DFA product to cross-check on all strings up to len 6.
	rng := stats.NewRNG(17)
	alphabet := []int{0, 1, 2}
	var seqs [][]int
	var gen func(prefix []int, n int)
	gen = func(prefix []int, n int) {
		cp := append([]int(nil), prefix...)
		seqs = append(seqs, cp)
		if n == 0 {
			return
		}
		for _, s := range alphabet {
			gen(append(prefix, s), n-1)
		}
	}
	gen(nil, 5)
	for trial := 0; trial < 60; trial++ {
		a, b := randomExpr(rng, 2), randomExpr(rng, 2)
		da, db := Compile(a), Compile(b)
		agree := true
		for _, s := range seqs {
			if da.Matches(s) != db.Matches(s) {
				agree = false
				break
			}
		}
		eq := Equivalent(a, b)
		if eq && !agree {
			t.Fatalf("Equivalent says equal but strings differ: %v vs %v", a, b)
		}
		// agree && !eq is possible only for differences beyond
		// length 5; with depth-2 expressions the pumping length is
		// small, so treat it as a failure too.
		if agree && !eq {
			t.Fatalf("Equivalent says different but all strings <=5 agree: %v vs %v", a, b)
		}
	}
}

func TestFromGrammarTimeSteps(t *testing.T) {
	// 20 Tomcatv-like time steps of 5 sub-phases compress to a
	// hierarchy equivalent to (1 2 3 4 5)+.
	var seq []int
	for i := 0; i < 20; i++ {
		seq = append(seq, 1, 2, 3, 4, 5)
	}
	h := BuildHierarchy(seq)
	want := Repeat{Seq(1, 2, 3, 4, 5), 1}
	if !Equivalent(h, want) {
		t.Errorf("hierarchy = %v, want equivalent to %v", h, want)
	}
}

func TestFromGrammarPowerOfTwoRepetition(t *testing.T) {
	// 2^k repetitions produce nested SEQUITUR rules; the hierarchy
	// must still collapse to a single plus.
	var seq []int
	for i := 0; i < 64; i++ {
		seq = append(seq, 7, 8)
	}
	h := BuildHierarchy(seq)
	want := Repeat{Seq(7, 8), 1}
	if !Equivalent(h, want) {
		t.Errorf("hierarchy = %v, want equivalent to %v", h, want)
	}
}

func TestFromGrammarPrefixAndSteps(t *testing.T) {
	// An initialization phase followed by repeated steps: 0 (1 2)+.
	seq := []int{0}
	for i := 0; i < 30; i++ {
		seq = append(seq, 1, 2)
	}
	h := BuildHierarchy(seq)
	if !Compile(h).Matches(seq) {
		t.Errorf("hierarchy %v does not match its own training sequence", h)
	}
	longer := append([]int{0}, seq[1:]...)
	longer = append(longer, 1, 2, 1, 2)
	if !Compile(h).Matches(longer) {
		t.Errorf("hierarchy %v should generalize to more steps", h)
	}
}

func TestHierarchyMatchesTrainingSequence(t *testing.T) {
	// Property: the hierarchy always matches the sequence it was
	// built from.
	rng := stats.NewRNG(23)
	for trial := 0; trial < 40; trial++ {
		n := 5 + rng.Intn(80)
		seq := make([]int, n)
		for i := range seq {
			seq[i] = rng.Intn(4)
		}
		h := BuildHierarchy(seq)
		if !Compile(h).Matches(seq) {
			g := sequitur.Build(seq)
			t.Fatalf("hierarchy %v does not match %v\ngrammar:\n%s", h, seq, g)
		}
	}
}

func TestMergeAdjacent(t *testing.T) {
	// X X -> X+
	m := MergeAdjacent([]Expr{Seq(1, 2), Seq(1, 2)})
	if !Equivalent(m, Repeat{Seq(1, 2), 1}) {
		t.Errorf("X X = %v, want (1 2)+", m)
	}
	// X+ X -> X+
	m = MergeAdjacent([]Expr{Repeat{Seq(1, 2), 1}, Seq(1, 2)})
	if !Equivalent(m, Repeat{Seq(1, 2), 1}) {
		t.Errorf("X+ X = %v, want (1 2)+", m)
	}
	// X Y stays a concat.
	m = MergeAdjacent([]Expr{Seq(1), Seq(2)})
	if !Equivalent(m, Seq(1, 2)) {
		t.Errorf("X Y = %v, want 1 2", m)
	}
	// Single part unwrapped.
	if _, ok := MergeAdjacent([]Expr{Lit{4}}).(Lit); !ok {
		t.Error("single part should be returned unwrapped")
	}
}

func TestLeaves(t *testing.T) {
	h := Repeat{Seq(3, 1, 2), 1}
	l := Leaves(h)
	if len(l) != 3 || l[0] != 1 || l[2] != 3 {
		t.Errorf("Leaves = %v", l)
	}
}

func BenchmarkBuildHierarchy(b *testing.B) {
	var seq []int
	for i := 0; i < 1000; i++ {
		seq = append(seq, 1, 2, 3, 4, 5)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildHierarchy(seq)
	}
}
