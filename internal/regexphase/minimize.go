package regexphase

// Minimize returns the minimal DFA equivalent to d, computed by
// Hopcroft's partition-refinement algorithm. The result contains only
// states reachable from the start and no explicit dead state (rejecting
// sink transitions are rendered as -1).
func Minimize(d *DFA) *DFA {
	n := d.NumStates()
	k := len(d.Alphabet)
	// Work on a total automaton: state n is the dead state.
	total := n + 1
	step := func(s, c int) int {
		if s == n {
			return n
		}
		t := d.Trans[s][c]
		if t < 0 {
			return n
		}
		return t
	}

	// Inverse transitions: inv[c][t] = states s with step(s,c)=t.
	inv := make([][][]int32, k)
	for c := 0; c < k; c++ {
		inv[c] = make([][]int32, total)
		for s := 0; s < total; s++ {
			t := step(s, c)
			inv[c][t] = append(inv[c][t], int32(s))
		}
	}

	// Partition structures: class[s], members per class.
	class := make([]int, total)
	var classes [][]int32
	var acc, rej []int32
	for s := 0; s < total; s++ {
		isAcc := s < n && d.Accept[s]
		if isAcc {
			acc = append(acc, int32(s))
		} else {
			rej = append(rej, int32(s))
		}
	}
	add := func(members []int32) int {
		id := len(classes)
		classes = append(classes, members)
		for _, s := range members {
			class[s] = id
		}
		return id
	}
	if len(acc) > 0 {
		add(acc)
	}
	if len(rej) > 0 {
		add(rej)
	}

	// Worklist of (class, symbol) splitters.
	type splitter struct{ cls, sym int }
	var work []splitter
	inWork := make(map[splitter]bool)
	push := func(cls, sym int) {
		sp := splitter{cls, sym}
		if !inWork[sp] {
			inWork[sp] = true
			work = append(work, sp)
		}
	}
	for cls := range classes {
		for c := 0; c < k; c++ {
			push(cls, c)
		}
	}

	touched := make([]int32, 0, total) // classes touched by the preimage
	hit := make(map[int][]int32, 8)    // class -> members in preimage
	for len(work) > 0 {
		sp := work[len(work)-1]
		work = work[:len(work)-1]
		delete(inWork, sp)

		// Preimage of the splitter class under symbol sp.sym.
		touched = touched[:0]
		for _, t := range classes[sp.cls] {
			for _, s := range inv[sp.sym][t] {
				cls := class[s]
				if _, ok := hit[cls]; !ok {
					touched = append(touched, int32(cls))
				}
				hit[cls] = append(hit[cls], s)
			}
		}
		for _, tc := range touched {
			cls := int(tc)
			in := hit[cls]
			delete(hit, cls)
			if len(in) == len(classes[cls]) {
				continue // class entirely inside the preimage
			}
			// Split: out = members not in the preimage.
			inSet := make(map[int32]bool, len(in))
			for _, s := range in {
				inSet[s] = true
			}
			var out []int32
			for _, s := range classes[cls] {
				if !inSet[s] {
					out = append(out, s)
				}
			}
			classes[cls] = in
			newID := add(out)
			// Hopcroft rule: requeue the smaller part for every
			// symbol; if (cls, c) is queued, both halves must be.
			for c := 0; c < k; c++ {
				if inWork[splitter{cls, c}] {
					push(newID, c)
				} else if len(in) <= len(out) {
					push(cls, c)
				} else {
					push(newID, c)
				}
			}
		}
	}

	// Rebuild a DFA over classes, dropping the dead class and any
	// class unreachable from the start.
	deadClass := class[n]
	// A class is "dead" only if it is exactly the sink behavior:
	// non-accepting and closed under all transitions. Hopcroft puts
	// the dead state in such a class by construction.
	remap := make([]int, len(classes))
	for i := range remap {
		remap[i] = -2 // unvisited
	}
	order := []int{class[d.Start]}
	remap[class[d.Start]] = 0
	count := 1
	for i := 0; i < len(order); i++ {
		cls := order[i]
		rep := int(classes[cls][0])
		for c := 0; c < k; c++ {
			t := step(rep, c)
			tc := class[t]
			if tc == deadClass {
				continue
			}
			if remap[tc] == -2 {
				remap[tc] = count
				count++
				order = append(order, tc)
			}
		}
	}

	out := &DFA{
		Alphabet: append([]int(nil), d.Alphabet...),
		Trans:    make([][]int, count),
		Accept:   make([]bool, count),
		Start:    0,
	}
	for i, cls := range order {
		rep := int(classes[cls][0])
		row := newRow(k)
		for c := 0; c < k; c++ {
			t := step(rep, c)
			tc := class[t]
			if tc != deadClass && remap[tc] >= 0 {
				row[c] = remap[tc]
			}
		}
		out.Trans[i] = row
		out.Accept[i] = rep < n && d.Accept[rep]
	}
	return out
}
