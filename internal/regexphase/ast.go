// Package regexphase builds the phase hierarchy of Section 2.4: it
// converts a SEQUITUR grammar of the detected phase sequence into a
// regular expression over phase IDs, merging adjacent equivalent
// sub-expressions into repetitions, and compiles the result into a
// deterministic finite automaton the run-time predictor walks. The
// regular-expression machinery — Thompson NFA construction, subset
// construction, Hopcroft minimization, and the Hopcroft–Karp
// equivalence test referenced in the paper [16] — is implemented from
// scratch over an integer alphabet.
package regexphase

import (
	"fmt"
	"strings"
)

// Expr is a regular expression over non-negative integer symbols
// (phase IDs).
type Expr interface {
	isExpr()
	String() string
}

// Lit matches exactly one symbol.
type Lit struct{ Sym int }

// Concat matches its parts in sequence. An empty Concat matches the
// empty string.
type Concat struct{ Parts []Expr }

// Alt matches any one of its choices. It must have at least one choice.
type Alt struct{ Choices []Expr }

// Repeat matches E repeated Min or more times (Min 0 is Kleene star,
// Min 1 is plus).
type Repeat struct {
	E   Expr
	Min int
}

func (Lit) isExpr()    {}
func (Concat) isExpr() {}
func (Alt) isExpr()    {}
func (Repeat) isExpr() {}

// String renders the expression in a conventional notation, e.g.
// "(1 2 3 4 5)+".
func (l Lit) String() string { return fmt.Sprintf("%d", l.Sym) }

func (c Concat) String() string {
	if len(c.Parts) == 0 {
		return "ε"
	}
	parts := make([]string, len(c.Parts))
	for i, p := range c.Parts {
		parts[i] = p.String()
	}
	return strings.Join(parts, " ")
}

func (a Alt) String() string {
	parts := make([]string, len(a.Choices))
	for i, c := range a.Choices {
		parts[i] = c.String()
	}
	return "(" + strings.Join(parts, " | ") + ")"
}

func (r Repeat) String() string {
	inner := r.E.String()
	if _, ok := r.E.(Lit); !ok {
		inner = "(" + inner + ")"
	}
	switch r.Min {
	case 0:
		return inner + "*"
	case 1:
		return inner + "+"
	default:
		return fmt.Sprintf("%s{%d,}", inner, r.Min)
	}
}

// Seq is shorthand for a Concat of literals.
func Seq(syms ...int) Expr {
	parts := make([]Expr, len(syms))
	for i, s := range syms {
		parts[i] = Lit{s}
	}
	return Concat{parts}
}

// Alphabet returns the sorted set of symbols appearing in e.
func Alphabet(e Expr) []int {
	set := make(map[int]bool)
	var walk func(Expr)
	walk = func(e Expr) {
		switch v := e.(type) {
		case Lit:
			set[v.Sym] = true
		case Concat:
			for _, p := range v.Parts {
				walk(p)
			}
		case Alt:
			for _, c := range v.Choices {
				walk(c)
			}
		case Repeat:
			walk(v.E)
		}
	}
	walk(e)
	out := make([]int, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sortInts(out)
	return out
}

func sortInts(xs []int) {
	// Insertion sort: alphabets here are tiny (phase counts).
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
