package regexphase

// nfa is a Thompson-construction NFA: numbered states, ε-transitions,
// and symbol transitions; exactly one accept state.
type nfa struct {
	eps    [][]int         // state -> ε-successors
	sym    []map[int][]int // state -> symbol -> successors
	start  int
	accept int
}

func (n *nfa) newState() int {
	n.eps = append(n.eps, nil)
	n.sym = append(n.sym, nil)
	return len(n.eps) - 1
}

func (n *nfa) addEps(from, to int) {
	n.eps[from] = append(n.eps[from], to)
}

func (n *nfa) addSym(from, s, to int) {
	if n.sym[from] == nil {
		n.sym[from] = make(map[int][]int)
	}
	n.sym[from][s] = append(n.sym[from][s], to)
}

// compileNFA builds an NFA for e by Thompson's construction.
func compileNFA(e Expr) *nfa {
	n := &nfa{}
	start, accept := n.build(e)
	n.start, n.accept = start, accept
	return n
}

// build returns the (start, accept) fragment for e.
func (n *nfa) build(e Expr) (int, int) {
	switch v := e.(type) {
	case Lit:
		s, a := n.newState(), n.newState()
		n.addSym(s, v.Sym, a)
		return s, a
	case Concat:
		if len(v.Parts) == 0 {
			s := n.newState()
			return s, s
		}
		s, a := n.build(v.Parts[0])
		for _, p := range v.Parts[1:] {
			ps, pa := n.build(p)
			n.addEps(a, ps)
			a = pa
		}
		return s, a
	case Alt:
		if len(v.Choices) == 0 {
			panic("regexphase: Alt needs at least one choice")
		}
		s, a := n.newState(), n.newState()
		for _, c := range v.Choices {
			cs, ca := n.build(c)
			n.addEps(s, cs)
			n.addEps(ca, a)
		}
		return s, a
	case Repeat:
		if v.Min < 0 {
			panic("regexphase: Repeat.Min must be non-negative")
		}
		// Mandatory prefix of Min copies, then a star.
		s := n.newState()
		a := s
		for i := 0; i < v.Min; i++ {
			cs, ca := n.build(v.E)
			n.addEps(a, cs)
			a = ca
		}
		// Star: loop fragment.
		ls, la := n.build(v.E)
		out := n.newState()
		n.addEps(a, ls)
		n.addEps(a, out)
		n.addEps(la, ls)
		n.addEps(la, out)
		return s, out
	default:
		panic("regexphase: unknown expression type")
	}
}

// closure expands a state set with ε-transitions, in place, returning
// the canonical sorted set.
func (n *nfa) closure(states []int) []int {
	seen := make(map[int]bool, len(states))
	stack := append([]int(nil), states...)
	for _, s := range states {
		seen[s] = true
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range n.eps[s] {
			if !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
	}
	out := make([]int, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sortInts(out)
	return out
}
