package regexphase

import "lpp/internal/sequitur"

// FromGrammar converts a SEQUITUR grammar of the phase sequence into a
// regular expression, the paper's novel hierarchy-extraction step
// (Section 2.4): each non-terminal is converted exactly once
// (memoized), and adjacent equivalent sub-expressions on a right-hand
// side are merged into repetitions, so "R R" where R derives one time
// step becomes "(time step)+" — the composite phase of the largest
// granularity.
func FromGrammar(g sequitur.Grammar) Expr {
	memo := make(map[int]Expr, len(g.Rules))
	var convert func(id int) Expr
	convert = func(id int) Expr {
		if e, ok := memo[id]; ok {
			return e
		}
		rhs := g.Rules[id]
		parts := make([]Expr, 0, len(rhs))
		for _, s := range rhs {
			if s.Terminal {
				parts = append(parts, Lit{s.Value})
			} else {
				parts = append(parts, convert(s.Value))
			}
		}
		e := MergeAdjacent(parts)
		memo[id] = e
		return e
	}
	return convert(0)
}

// BuildHierarchy compresses the phase-ID sequence with SEQUITUR and
// extracts the phase hierarchy as a regular expression.
func BuildHierarchy(phases []int) Expr {
	return FromGrammar(sequitur.Build(phases))
}

// MergeAdjacent collapses runs of equivalent adjacent expressions into
// repetitions. Because the number of repetitions scales with the
// program input (a prediction run executes far more time steps than
// the detection run), a merged run is represented as "one or more"
// rather than a fixed count. A single part is returned unwrapped.
func MergeAdjacent(parts []Expr) Expr {
	var out []Expr
	for _, e := range parts {
		if len(out) > 0 {
			if merged, ok := mergeTwo(out[len(out)-1], e); ok {
				out[len(out)-1] = merged
				continue
			}
		}
		out = append(out, e)
	}
	if len(out) == 1 {
		return out[0]
	}
	return Concat{out}
}

// mergeTwo merges two adjacent expressions when they repeat the same
// body: X X, X+ X, X X+, and X+ X+ all become X+.
func mergeTwo(a, b Expr) (Expr, bool) {
	base := body(a)
	if !Equivalent(base, body(b)) {
		return nil, false
	}
	return Repeat{E: base, Min: 1}, true
}

// body strips one level of repetition: the body of X+ or X* is X.
func body(e Expr) Expr {
	if r, ok := e.(Repeat); ok {
		return r.E
	}
	return e
}

// Leaves returns the distinct leaf phase IDs of the hierarchy, sorted.
func Leaves(e Expr) []int { return Alphabet(e) }

// LeafCount returns how many leaf-phase executions one pass through e
// takes, counting each repetition body once (Alt counts its longest
// choice).
func LeafCount(e Expr) int {
	switch v := e.(type) {
	case Lit:
		return 1
	case Concat:
		n := 0
		for _, p := range v.Parts {
			n += LeafCount(p)
		}
		return n
	case Alt:
		best := 0
		for _, c := range v.Choices {
			if n := LeafCount(c); n > best {
				best = n
			}
		}
		return best
	case Repeat:
		return LeafCount(v.E)
	}
	return 0
}

// FirstLeafOfLargestComposite returns the phase ID that begins the
// largest composite phase (the body of the biggest repetition) — the
// place to fire a once-per-time-step action. The second result is
// false when the hierarchy has no repetition or the body's first
// element is not determined (an alternation).
func FirstLeafOfLargestComposite(e Expr) (int, bool) {
	bestN := -1
	var bestBody Expr
	var walk func(Expr)
	walk = func(e Expr) {
		switch v := e.(type) {
		case Repeat:
			if n := LeafCount(v.E); n > bestN {
				bestN, bestBody = n, v.E
			}
			walk(v.E)
		case Concat:
			for _, p := range v.Parts {
				walk(p)
			}
		case Alt:
			for _, c := range v.Choices {
				walk(c)
			}
		}
	}
	walk(e)
	if bestBody == nil {
		bestBody = e
	}
	return firstLeaf(bestBody)
}

// firstLeaf returns the first literal a traversal of e must produce.
func firstLeaf(e Expr) (int, bool) {
	switch v := e.(type) {
	case Lit:
		return v.Sym, true
	case Concat:
		for _, p := range v.Parts {
			if s, ok := firstLeaf(p); ok {
				return s, ok
			}
		}
		return 0, false
	case Repeat:
		return firstLeaf(v.E)
	case Alt:
		// Determined only if all choices start with the same leaf.
		var first int
		set := false
		for _, c := range v.Choices {
			s, ok := firstLeaf(c)
			if !ok {
				return 0, false
			}
			if set && s != first {
				return 0, false
			}
			first, set = s, true
		}
		return first, set
	}
	return 0, false
}

// LargestComposite returns the leaf count of the largest composite
// phase in the hierarchy: the body of the biggest repetition (for
// Tomcatv, the five-substep time step). Without any repetition the
// whole expression is the composite.
func LargestComposite(e Expr) int {
	best := 0
	var walk func(Expr)
	walk = func(e Expr) {
		switch v := e.(type) {
		case Repeat:
			if n := LeafCount(v.E); n > best {
				best = n
			}
			walk(v.E)
		case Concat:
			for _, p := range v.Parts {
				walk(p)
			}
		case Alt:
			for _, c := range v.Choices {
				walk(c)
			}
		}
	}
	walk(e)
	if best == 0 {
		best = LeafCount(e)
	}
	return best
}
