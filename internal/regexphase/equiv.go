package regexphase

// Equivalent reports whether two regular expressions denote the same
// language. The paper's hierarchy construction merges two adjacent
// regular expressions when they are equivalent (citing the classic
// test of Hopcroft and Ullman [16]); this implementation uses the
// Hopcroft–Karp union-find algorithm on the two compiled DFAs, which
// decides equivalence in near-linear time without full minimization.
func Equivalent(a, b Expr) bool {
	return EquivalentDFA(Compile(a), Compile(b))
}

// EquivalentDFA reports whether two DFAs accept the same language.
func EquivalentDFA(a, b *DFA) bool {
	// Union alphabet: a symbol in only one machine leads the other
	// machine straight to its dead state.
	alpha := unionAlphabet(a.Alphabet, b.Alphabet)

	// State numbering: 0..na-1 = a's states, na..na+nb-1 = b's
	// states, na+nb = a's dead, na+nb+1 = b's dead.
	na, nb := a.NumStates(), b.NumStates()
	deadA, deadB := na+nb, na+nb+1
	uf := newUnionFind(na + nb + 2)

	idA := func(s int) int {
		if s < 0 {
			return deadA
		}
		return s
	}
	idB := func(s int) int {
		if s < 0 {
			return deadB
		}
		return na + s
	}
	acceptOf := func(id int) bool {
		switch {
		case id == deadA || id == deadB:
			return false
		case id < na:
			return a.Accept[id]
		default:
			return b.Accept[id-na]
		}
	}
	stepOf := func(id, sym int) int {
		switch {
		case id == deadA:
			return deadA
		case id == deadB:
			return deadB
		case id < na:
			return idA(a.Step(id, sym))
		default:
			return idB(b.Step(id-na, sym))
		}
	}

	type pair struct{ p, q int }
	start := pair{idA(a.Start), idB(b.Start)}
	if acceptOf(start.p) != acceptOf(start.q) {
		return false
	}
	uf.union(start.p, start.q)
	stack := []pair{start}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, sym := range alpha {
			p, q := stepOf(cur.p, sym), stepOf(cur.q, sym)
			if uf.find(p) == uf.find(q) {
				continue
			}
			if acceptOf(p) != acceptOf(q) {
				return false
			}
			uf.union(p, q)
			stack = append(stack, pair{p, q})
		}
	}
	return true
}

func unionAlphabet(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(x, y int) {
	rx, ry := u.find(x), u.find(y)
	if rx == ry {
		return
	}
	if u.rank[rx] < u.rank[ry] {
		rx, ry = ry, rx
	}
	u.parent[ry] = rx
	if u.rank[rx] == u.rank[ry] {
		u.rank[rx]++
	}
}
