package regexphase

import "fmt"

// DFA is a deterministic finite automaton over an integer alphabet.
// Transitions are total over Alphabet indices; the implicit dead state
// is -1 (missing transition means reject).
type DFA struct {
	Alphabet []int   // sorted symbol set
	Trans    [][]int // Trans[state][alphabetIndex] = next state or -1
	Accept   []bool
	Start    int

	symIndex map[int]int
}

// NumStates returns the number of explicit states.
func (d *DFA) NumStates() int { return len(d.Trans) }

// SymbolIndex returns the alphabet index of sym, or -1 if sym is not in
// the alphabet.
func (d *DFA) SymbolIndex(sym int) int {
	if d.symIndex == nil {
		d.symIndex = make(map[int]int, len(d.Alphabet))
		for i, s := range d.Alphabet {
			d.symIndex[s] = i
		}
	}
	if i, ok := d.symIndex[sym]; ok {
		return i
	}
	return -1
}

// Step returns the successor of state on sym, or -1 (dead).
func (d *DFA) Step(state, sym int) int {
	if state < 0 {
		return -1
	}
	i := d.SymbolIndex(sym)
	if i < 0 {
		return -1
	}
	return d.Trans[state][i]
}

// Matches reports whether the DFA accepts the sequence.
func (d *DFA) Matches(seq []int) bool {
	s := d.Start
	for _, sym := range seq {
		s = d.Step(s, sym)
		if s < 0 {
			return false
		}
	}
	return d.Accept[s]
}

// Compile converts a regular expression into a DFA by Thompson
// construction followed by subset construction.
func Compile(e Expr) *DFA {
	n := compileNFA(e)
	alphabet := Alphabet(e)
	index := make(map[int]int, len(alphabet))
	for i, s := range alphabet {
		index[s] = i
	}

	type stateSet string // canonical encoding of a sorted NFA state set
	encode := func(states []int) stateSet {
		b := make([]byte, 0, len(states)*3)
		for _, s := range states {
			b = append(b, byte(s), byte(s>>8), byte(s>>16))
		}
		return stateSet(b)
	}

	start := n.closure([]int{n.start})
	ids := map[stateSet]int{encode(start): 0}
	worklist := [][]int{start}
	var trans [][]int
	var accept []bool
	trans = append(trans, newRow(len(alphabet)))
	accept = append(accept, contains(start, n.accept))

	for len(worklist) > 0 {
		cur := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]
		curID := ids[encode(cur)]
		// Gather successors per symbol.
		succ := make(map[int][]int)
		for _, s := range cur {
			for sym, tos := range n.sym[s] {
				succ[sym] = append(succ[sym], tos...)
			}
		}
		for sym, raw := range succ {
			next := n.closure(raw)
			key := encode(next)
			id, ok := ids[key]
			if !ok {
				id = len(trans)
				ids[key] = id
				trans = append(trans, newRow(len(alphabet)))
				accept = append(accept, contains(next, n.accept))
				worklist = append(worklist, next)
			}
			trans[curID][index[sym]] = id
		}
	}
	return &DFA{Alphabet: alphabet, Trans: trans, Accept: accept, Start: 0}
}

func newRow(n int) []int {
	row := make([]int, n)
	for i := range row {
		row[i] = -1
	}
	return row
}

func contains(sorted []int, x int) bool {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case sorted[mid] < x:
			lo = mid + 1
		case sorted[mid] > x:
			hi = mid
		default:
			return true
		}
	}
	return false
}

// String renders the DFA for debugging.
func (d *DFA) String() string {
	out := fmt.Sprintf("DFA start=%d alphabet=%v\n", d.Start, d.Alphabet)
	for s, row := range d.Trans {
		mark := " "
		if d.Accept[s] {
			mark = "*"
		}
		out += fmt.Sprintf("%s%3d:", mark, s)
		for i, t := range row {
			if t >= 0 {
				out += fmt.Sprintf(" %d->%d", d.Alphabet[i], t)
			}
		}
		out += "\n"
	}
	return out
}
