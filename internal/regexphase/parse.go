package regexphase

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse reads the textual hierarchy notation produced by Expr.String —
// space-separated phase IDs, parenthesized groups, `|` alternation,
// and the `+`, `*`, `{n,}` repetition suffixes — so saved or
// hand-written hierarchies can be loaded back:
//
//	Parse("9 (1 2 3 4 5)+")
func Parse(s string) (Expr, error) {
	p := &parser{input: s}
	p.next()
	e, err := p.alt()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, fmt.Errorf("regexphase: unexpected %q at %d", p.tok.text, p.tok.pos)
	}
	return e, nil
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokNum
	tokLParen
	tokRParen
	tokPipe
	tokPlus
	tokStar
	tokLBrace
	tokEpsilon
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type parser struct {
	input string
	pos   int
	tok   token
}

func (p *parser) next() {
	for p.pos < len(p.input) && (p.input[p.pos] == ' ' || p.input[p.pos] == '\t' || p.input[p.pos] == '\n') {
		p.pos++
	}
	start := p.pos
	if p.pos >= len(p.input) {
		p.tok = token{tokEOF, "", start}
		return
	}
	c := p.input[p.pos]
	switch {
	case c == '(':
		p.pos++
		p.tok = token{tokLParen, "(", start}
	case c == ')':
		p.pos++
		p.tok = token{tokRParen, ")", start}
	case c == '|':
		p.pos++
		p.tok = token{tokPipe, "|", start}
	case c == '+':
		p.pos++
		p.tok = token{tokPlus, "+", start}
	case c == '*':
		p.pos++
		p.tok = token{tokStar, "*", start}
	case c == '{':
		p.pos++
		p.tok = token{tokLBrace, "{", start}
	case strings.HasPrefix(p.input[p.pos:], "ε"):
		p.pos += len("ε")
		p.tok = token{tokEpsilon, "ε", start}
	case unicode.IsDigit(rune(c)):
		end := p.pos
		for end < len(p.input) && unicode.IsDigit(rune(p.input[end])) {
			end++
		}
		p.tok = token{tokNum, p.input[p.pos:end], start}
		p.pos = end
	default:
		p.tok = token{tokEOF, string(c), start}
		p.pos = len(p.input) // force termination; alt() will error
	}
}

// alt := concat ('|' concat)*
func (p *parser) alt() (Expr, error) {
	first, err := p.concat()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokPipe {
		return first, nil
	}
	choices := []Expr{first}
	for p.tok.kind == tokPipe {
		p.next()
		c, err := p.concat()
		if err != nil {
			return nil, err
		}
		choices = append(choices, c)
	}
	return Alt{choices}, nil
}

// concat := term+
func (p *parser) concat() (Expr, error) {
	var parts []Expr
	for p.tok.kind == tokNum || p.tok.kind == tokLParen || p.tok.kind == tokEpsilon {
		t, err := p.term()
		if err != nil {
			return nil, err
		}
		parts = append(parts, t)
	}
	switch len(parts) {
	case 0:
		return nil, fmt.Errorf("regexphase: expected expression at %d, got %q", p.tok.pos, p.tok.text)
	case 1:
		return parts[0], nil
	default:
		return Concat{parts}, nil
	}
}

// term := atom quantifier*
func (p *parser) term() (Expr, error) {
	e, err := p.atom()
	if err != nil {
		return nil, err
	}
	for {
		switch p.tok.kind {
		case tokPlus:
			e = Repeat{E: e, Min: 1}
			p.next()
		case tokStar:
			e = Repeat{E: e, Min: 0}
			p.next()
		case tokLBrace:
			// Raw-parse "{digits,}" from the brace onward; the
			// lexer has no comma token.
			start := p.tok.pos
			rest := p.input[start:]
			if !strings.HasPrefix(rest, "{") {
				return nil, fmt.Errorf("regexphase: malformed quantifier at %d", start)
			}
			end := strings.Index(rest, ",}")
			if end < 2 {
				return nil, fmt.Errorf("regexphase: malformed {n,} at %d", start)
			}
			n, err := strconv.Atoi(rest[1:end])
			if err != nil {
				return nil, fmt.Errorf("regexphase: bad count in {n,} at %d: %v", start, err)
			}
			p.pos = start + end + 2
			p.next()
			e = Repeat{E: e, Min: n}
		default:
			return e, nil
		}
	}
}

// atom := NUMBER | 'ε' | '(' alt ')'
func (p *parser) atom() (Expr, error) {
	switch p.tok.kind {
	case tokNum:
		n, err := strconv.Atoi(p.tok.text)
		if err != nil {
			return nil, err
		}
		p.next()
		return Lit{n}, nil
	case tokEpsilon:
		p.next()
		return Concat{}, nil
	case tokLParen:
		p.next()
		e, err := p.alt()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, fmt.Errorf("regexphase: missing ')' at %d", p.tok.pos)
		}
		p.next()
		return e, nil
	default:
		return nil, fmt.Errorf("regexphase: unexpected %q at %d", p.tok.text, p.tok.pos)
	}
}
