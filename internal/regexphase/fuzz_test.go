package regexphase

import "testing"

// FuzzParse checks that arbitrary input never panics the parser, and
// that anything that parses renders back to an equivalent expression.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"(0 1 2 3 4)+", "9 (1 2)+", "1{3,}", "5*", "(1 | 2)", "ε",
		"((((", "1 2 | ", "{,}", "999999999999999999999999",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		e, err := Parse(s)
		if err != nil {
			return
		}
		back, err := Parse(e.String())
		if err != nil {
			t.Fatalf("rendering of %q (%v) does not re-parse: %v", s, e, err)
		}
		// Equivalence on small alphabets only; large literals make
		// DFA compilation expensive, so bound the check.
		if len(Alphabet(e)) <= 6 && exprSize(e) <= 30 {
			if !Equivalent(e, back) {
				t.Fatalf("round trip changed language: %v vs %v", e, back)
			}
		}
	})
}

func exprSize(e Expr) int {
	switch v := e.(type) {
	case Lit:
		return 1
	case Concat:
		n := 1
		for _, p := range v.Parts {
			n += exprSize(p)
		}
		return n
	case Alt:
		n := 1
		for _, c := range v.Choices {
			n += exprSize(c)
		}
		return n
	case Repeat:
		return 1 + exprSize(v.E)
	}
	return 1
}
