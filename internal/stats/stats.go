// Package stats provides the small statistical toolkit shared by the
// locality-phase pipeline: summary statistics, weighted aggregation,
// recall/precision for marker comparison, and a deterministic PRNG so
// every experiment in the repository is reproducible.
package stats

import "math"

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs, or 0 when xs
// has fewer than two elements.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	s := StdDev(xs)
	return s * s
}

// WeightedMean returns the mean of xs weighted by ws. The two slices
// must have equal length; a zero total weight yields 0.
func WeightedMean(xs, ws []float64) float64 {
	if len(xs) != len(ws) {
		panic("stats: WeightedMean length mismatch")
	}
	var sum, wsum float64
	for i, x := range xs {
		sum += x * ws[i]
		wsum += ws[i]
	}
	if wsum == 0 {
		return 0
	}
	return sum / wsum
}

// Min returns the smallest element of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// RecallPrecision compares two sets of event times the way Section 3.4
// of the paper compares automatic markers against manual markers: two
// times are "the same" if they differ by no more than tol. Each manual
// time may be matched by at most one automatic time and vice versa
// (greedy matching over sorted inputs). It returns
//
//	recall    = |M ∩ A| / |M|
//	precision = |M ∩ A| / |A|
//
// where M is manual and A is automatic. Empty inputs yield recall or
// precision of 1 for the empty side (a vacuous truth), matching the
// convention that no manual markers means nothing was missed.
func RecallPrecision(manual, auto []int64, tol int64) (recall, precision float64) {
	matched := 0
	i, j := 0, 0
	for i < len(manual) && j < len(auto) {
		d := manual[i] - auto[j]
		switch {
		case d > tol:
			j++
		case d < -tol:
			i++
		default:
			matched++
			i++
			j++
		}
	}
	recall, precision = 1, 1
	if len(manual) > 0 {
		recall = float64(matched) / float64(len(manual))
	}
	if len(auto) > 0 {
		precision = float64(matched) / float64(len(auto))
	}
	return recall, precision
}
