package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %g, want 5", m)
	}
	if s := StdDev(xs); math.Abs(s-2) > 1e-12 {
		t.Errorf("StdDev = %g, want 2", s)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{3}) != 0 {
		t.Error("empty/singleton cases should be 0")
	}
}

func TestVariance(t *testing.T) {
	xs := []float64{1, 3}
	if v := Variance(xs); math.Abs(v-1) > 1e-12 {
		t.Errorf("Variance = %g, want 1", v)
	}
}

func TestWeightedMean(t *testing.T) {
	got := WeightedMean([]float64{1, 10}, []float64{9, 1})
	if math.Abs(got-1.9) > 1e-12 {
		t.Errorf("WeightedMean = %g, want 1.9", got)
	}
	if WeightedMean(nil, nil) != 0 {
		t.Error("empty WeightedMean should be 0")
	}
}

func TestWeightedMeanMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	WeightedMean([]float64{1}, []float64{1, 2})
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %g/%g", Min(xs), Max(xs))
	}
}

func TestRecallPrecisionExact(t *testing.T) {
	manual := []int64{100, 200, 300}
	auto := []int64{100, 200, 300}
	r, p := RecallPrecision(manual, auto, 0)
	if r != 1 || p != 1 {
		t.Errorf("recall=%g precision=%g, want 1,1", r, p)
	}
}

func TestRecallPrecisionTolerance(t *testing.T) {
	manual := []int64{100, 200}
	auto := []int64{105, 500}
	r, p := RecallPrecision(manual, auto, 10)
	if r != 0.5 {
		t.Errorf("recall = %g, want 0.5", r)
	}
	if p != 0.5 {
		t.Errorf("precision = %g, want 0.5", p)
	}
}

func TestRecallPrecisionAutoFiner(t *testing.T) {
	// Automatic analysis finds more boundaries than manual (the
	// MolDyn case in Table 6): recall stays high, precision drops.
	manual := []int64{1000}
	auto := []int64{1000, 2000, 3000, 4000}
	r, p := RecallPrecision(manual, auto, 400)
	if r != 1 {
		t.Errorf("recall = %g, want 1", r)
	}
	if p != 0.25 {
		t.Errorf("precision = %g, want 0.25", p)
	}
}

func TestRecallPrecisionEmpty(t *testing.T) {
	r, p := RecallPrecision(nil, nil, 0)
	if r != 1 || p != 1 {
		t.Errorf("empty sets: recall=%g precision=%g, want 1,1", r, p)
	}
	r, p = RecallPrecision([]int64{5}, nil, 0)
	if r != 0 || p != 1 {
		t.Errorf("no auto: recall=%g precision=%g, want 0,1", r, p)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(123), NewRNG(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce same stream")
		}
	}
	c := NewRNG(124)
	same := 0
	a = NewRNG(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Errorf("different seeds produced %d identical values", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %g out of [0,1)", f)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		if n == 0 {
			return true
		}
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			v := r.Intn(int(n))
			if v < 0 || v >= int(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGNormFloat64Moments(t *testing.T) {
	r := NewRNG(77)
	const n = 200000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	if m := Mean(xs); math.Abs(m) > 0.02 {
		t.Errorf("normal mean = %g, want ~0", m)
	}
	if s := StdDev(xs); math.Abs(s-1) > 0.02 {
		t.Errorf("normal stddev = %g, want ~1", s)
	}
}
