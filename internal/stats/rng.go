package stats

import "math"

// RNG is a splitmix64 pseudo-random number generator. It is tiny, fast,
// and fully deterministic for a given seed, which keeps every table and
// figure in the repository reproducible without importing math/rand.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). It panics when n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the Box–Muller transform.
func (r *RNG) NormFloat64() float64 {
	// Box–Muller needs u1 in (0, 1]; the 1- shift avoids log(0).
	u1 := 1 - r.Float64()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
