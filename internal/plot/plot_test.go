package plot

import (
	"bytes"
	"strings"
	"testing"
)

func TestChartRenderBasics(t *testing.T) {
	c := Chart{
		Title:  "Reuse distance trace",
		XLabel: "logical time",
		YLabel: "reuse distance",
		Series: []Series{
			{Name: "samples", X: []float64{0, 1, 2}, Y: []float64{10, 20, 15}},
		},
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	for _, want := range []string{"<svg", "</svg>", "circle", "Reuse distance trace", "logical time"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if n := strings.Count(svg, "<circle"); n < 3 {
		t.Errorf("only %d circles for 3 points (+legend)", n)
	}
}

func TestChartEmptySeries(t *testing.T) {
	c := Chart{Title: "empty"}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "</svg>") {
		t.Error("empty chart should still be a complete document")
	}
}

func TestChartDegenerateRange(t *testing.T) {
	// All points identical: no division by zero, point lands in the
	// middle of the plot area.
	c := Chart{Series: []Series{{Name: "x", X: []float64{5, 5}, Y: []float64{3, 3}}}}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Error("degenerate range produced NaN coordinates")
	}
}

func TestChartEscapesMarkup(t *testing.T) {
	c := Chart{Title: "<script>alert(1)</script>", Series: []Series{{Name: "a&b", X: []float64{1}, Y: []float64{1}}}}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "<script>") {
		t.Error("title not escaped")
	}
	if !strings.Contains(buf.String(), "a&amp;b") {
		t.Error("series name not escaped")
	}
}

func TestBarsRender(t *testing.T) {
	b := Bars{
		Title:  "Average cache size",
		YLabel: "KB",
		Labels: []string{"tomcatv", "swim"},
		Names:  []string{"phase", "interval"},
		Values: [][]float64{{138, 230}, {135, 220}},
	}
	var buf bytes.Buffer
	if err := b.Render(&buf); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	if n := strings.Count(svg, "<rect"); n < 5 { // bg + 4 bars + legend
		t.Errorf("only %d rects", n)
	}
	for _, want := range []string{"tomcatv", "swim", "phase", "interval"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestBarsValidation(t *testing.T) {
	b := Bars{Labels: []string{"a"}, Names: []string{"x"}, Values: [][]float64{{1, 2}}}
	var buf bytes.Buffer
	if err := b.Render(&buf); err == nil {
		t.Error("mismatched group width should error")
	}
	b2 := Bars{Labels: []string{"a", "b"}, Values: [][]float64{{1}}}
	if err := b2.Render(&buf); err == nil {
		t.Error("label/value mismatch should error")
	}
}

func TestBarsAllZero(t *testing.T) {
	b := Bars{Labels: []string{"a"}, Names: []string{"x"}, Values: [][]float64{{0}}}
	var buf bytes.Buffer
	if err := b.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Error("all-zero bars produced NaN")
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{
		2500000: "2.5M",
		1500:    "1.5k",
		42:      "42",
		0.5:     "0.50",
	}
	for in, want := range cases {
		if got := formatTick(in); got != want {
			t.Errorf("formatTick(%g) = %q, want %q", in, got, want)
		}
	}
}
