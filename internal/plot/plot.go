// Package plot renders the repository's figures as standalone SVG
// files using nothing but the standard library: scatter plots for the
// reuse-distance traces (Figure 1, Figure 5) and the locality planes
// (Figure 3), and grouped bar charts for the cache-resizing comparison
// (Figure 6). It is deliberately small — axes, points, bars, labels —
// not a general plotting system.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named set of XY points.
type Series struct {
	Name   string
	X, Y   []float64
	Color  string
	Radius float64 // point radius; 0 takes a default
}

// Chart is a scatter chart with linear axes.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series

	Width, Height int
}

const (
	marginLeft   = 70
	marginRight  = 20
	marginTop    = 40
	marginBottom = 50
)

var defaultColors = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#e377c2"}

// Render writes the chart as an SVG document.
func (c *Chart) Render(w io.Writer) error {
	if c.Width == 0 {
		c.Width = 800
	}
	if c.Height == 0 {
		c.Height = 480
	}
	minX, maxX, minY, maxY := bounds(c.Series)
	sb := &strings.Builder{}
	header(sb, c.Width, c.Height, c.Title)
	axes(sb, c.Width, c.Height, minX, maxX, minY, maxY, c.XLabel, c.YLabel)

	plotW := float64(c.Width - marginLeft - marginRight)
	plotH := float64(c.Height - marginTop - marginBottom)
	sx := func(x float64) float64 {
		if maxX == minX {
			return marginLeft + plotW/2
		}
		return marginLeft + (x-minX)/(maxX-minX)*plotW
	}
	sy := func(y float64) float64 {
		if maxY == minY {
			return marginTop + plotH/2
		}
		return marginTop + plotH - (y-minY)/(maxY-minY)*plotH
	}

	for si, s := range c.Series {
		color := s.Color
		if color == "" {
			color = defaultColors[si%len(defaultColors)]
		}
		r := s.Radius
		if r == 0 {
			r = 2
		}
		for i := range s.X {
			fmt.Fprintf(sb, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s" fill-opacity="0.7"/>`+"\n",
				sx(s.X[i]), sy(s.Y[i]), r, color)
		}
		// Legend entry.
		ly := marginTop + 16*si
		fmt.Fprintf(sb, `<circle cx="%d" cy="%d" r="4" fill="%s"/>`+"\n", c.Width-marginRight-120, ly, color)
		fmt.Fprintf(sb, `<text x="%d" y="%d" font-size="12">%s</text>`+"\n",
			c.Width-marginRight-110, ly+4, escape(s.Name))
	}
	sb.WriteString("</svg>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// Bars is a grouped bar chart: one group per label, one bar per series.
type Bars struct {
	Title  string
	YLabel string
	Labels []string    // group labels (benchmarks)
	Names  []string    // series names (methods)
	Values [][]float64 // Values[group][series]

	Width, Height int
}

// Render writes the bar chart as an SVG document.
func (b *Bars) Render(w io.Writer) error {
	if b.Width == 0 {
		b.Width = 900
	}
	if b.Height == 0 {
		b.Height = 480
	}
	if len(b.Labels) != len(b.Values) {
		return fmt.Errorf("plot: %d labels for %d value groups", len(b.Labels), len(b.Values))
	}
	maxY := 0.0
	for _, group := range b.Values {
		if len(group) != len(b.Names) {
			return fmt.Errorf("plot: group has %d values for %d series", len(group), len(b.Names))
		}
		for _, v := range group {
			if v > maxY {
				maxY = v
			}
		}
	}
	if maxY == 0 {
		maxY = 1
	}
	sb := &strings.Builder{}
	header(sb, b.Width, b.Height, b.Title)
	axes(sb, b.Width, b.Height, 0, float64(len(b.Labels)), 0, maxY, "", b.YLabel)

	plotW := float64(b.Width - marginLeft - marginRight)
	plotH := float64(b.Height - marginTop - marginBottom)
	groupW := plotW / float64(len(b.Labels))
	barW := groupW * 0.8 / float64(len(b.Names))

	for gi, group := range b.Values {
		gx := float64(marginLeft) + groupW*float64(gi) + groupW*0.1
		for si, v := range group {
			h := v / maxY * plotH
			color := defaultColors[si%len(defaultColors)]
			fmt.Fprintf(sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
				gx+barW*float64(si), float64(marginTop)+plotH-h, barW, h, color)
		}
		fmt.Fprintf(sb, `<text x="%.1f" y="%d" font-size="11" text-anchor="middle">%s</text>`+"\n",
			gx+groupW*0.4, b.Height-marginBottom+16, escape(b.Labels[gi]))
	}
	for si, name := range b.Names {
		ly := marginTop + 16*si
		fmt.Fprintf(sb, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n",
			b.Width-marginRight-130, ly-8, defaultColors[si%len(defaultColors)])
		fmt.Fprintf(sb, `<text x="%d" y="%d" font-size="12">%s</text>`+"\n",
			b.Width-marginRight-115, ly+2, escape(name))
	}
	sb.WriteString("</svg>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

func header(sb *strings.Builder, w, h int, title string) {
	fmt.Fprintf(sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(sb, `<text x="%d" y="22" font-size="15" font-weight="bold">%s</text>`+"\n", marginLeft, escape(title))
}

func axes(sb *strings.Builder, w, h int, minX, maxX, minY, maxY float64, xLabel, yLabel string) {
	fmt.Fprintf(sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginLeft, h-marginBottom, w-marginRight, h-marginBottom)
	fmt.Fprintf(sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginLeft, marginTop, marginLeft, h-marginBottom)
	// Y ticks.
	for i := 0; i <= 4; i++ {
		v := minY + (maxY-minY)*float64(i)/4
		y := float64(h-marginBottom) - float64(h-marginTop-marginBottom)*float64(i)/4
		fmt.Fprintf(sb, `<text x="%d" y="%.1f" font-size="10" text-anchor="end">%s</text>`+"\n",
			marginLeft-6, y+3, formatTick(v))
		fmt.Fprintf(sb, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginLeft, y, w-marginRight, y)
	}
	// X ticks (skip when the caller labels groups itself).
	if xLabel != "" {
		for i := 0; i <= 4; i++ {
			v := minX + (maxX-minX)*float64(i)/4
			x := float64(marginLeft) + float64(w-marginLeft-marginRight)*float64(i)/4
			fmt.Fprintf(sb, `<text x="%.1f" y="%d" font-size="10" text-anchor="middle">%s</text>`+"\n",
				x, h-marginBottom+14, formatTick(v))
		}
		fmt.Fprintf(sb, `<text x="%d" y="%d" font-size="12" text-anchor="middle">%s</text>`+"\n",
			(w+marginLeft-marginRight)/2, h-10, escape(xLabel))
	}
	fmt.Fprintf(sb, `<text x="14" y="%d" font-size="12" transform="rotate(-90 14 %d)" text-anchor="middle">%s</text>`+"\n",
		(h-marginBottom+marginTop)/2, (h-marginBottom+marginTop)/2, escape(yLabel))
}

func bounds(series []Series) (minX, maxX, minY, maxY float64) {
	minX, minY = math.Inf(1), math.Inf(1)
	maxX, maxY = math.Inf(-1), math.Inf(-1)
	any := false
	for _, s := range series {
		for i := range s.X {
			any = true
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if !any {
		return 0, 1, 0, 1
	}
	return minX, maxX, minY, maxY
}

func formatTick(v float64) string {
	a := math.Abs(v)
	switch {
	case a >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case a >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	case a == math.Trunc(a):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
