package sequitur

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
)

// Compact is a canonical, order-independent digest of a grammar: the
// exact number of times each terminal — and each adjacent terminal
// pair — occurs in the grammar's full expansion, computed without
// expanding. Two Builders that arrive at the same expanded sequence
// produce the same Compact no matter how their rule IDs were assigned,
// so Compact is the form grammars are fingerprinted and compared in
// (the go-sequitur Compact/Importance/Similarity idiom).
type Compact struct {
	// Unigrams maps each terminal to its occurrence count in the full
	// expansion.
	Unigrams map[int]int64
	// Digrams maps each adjacent terminal pair (in expansion order) to
	// its occurrence count in the full expansion.
	Digrams map[[2]int]int64
	// Length is the expanded sequence length (the sum of Unigrams).
	Length int64
}

// Compact digests the grammar. An empty grammar yields a zero-length
// Compact with empty (non-nil) maps.
func (g Grammar) Compact() Compact {
	c := Compact{
		Unigrams: make(map[int]int64),
		Digrams:  make(map[[2]int]int64),
	}
	start, ok := g.Rules[0]
	if !ok || len(start) == 0 {
		return c
	}

	// uses[r] is how many times rule r's expansion appears in the full
	// expansion. Rules form a DAG rooted at 0 (SEQUITUR grammars are
	// acyclic and every live rule is reachable from the start rule), so
	// propagate uses in topological order from the root.
	order := g.topoOrder()
	uses := map[int]int64{0: 1}
	for _, id := range order {
		u := uses[id]
		for _, s := range g.Rules[id] {
			if !s.Terminal {
				uses[s.Value] += u
			}
		}
	}

	// first/last terminal of each rule's expansion, for the digrams
	// that straddle a rule reference.
	first := make(map[int]int, len(g.Rules))
	last := make(map[int]int, len(g.Rules))
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		rhs := g.Rules[id]
		if f := rhs[0]; f.Terminal {
			first[id] = f.Value
		} else {
			first[id] = first[f.Value]
		}
		if l := rhs[len(rhs)-1]; l.Terminal {
			last[id] = l.Value
		} else {
			last[id] = last[l.Value]
		}
	}

	termOf := func(s Symbol, edge map[int]int) int {
		if s.Terminal {
			return s.Value
		}
		return edge[s.Value]
	}
	for _, id := range order {
		u := uses[id]
		rhs := g.Rules[id]
		for i, s := range rhs {
			if s.Terminal {
				c.Unigrams[s.Value] += u
				c.Length += u
			}
			if i > 0 {
				pair := [2]int{termOf(rhs[i-1], last), termOf(s, first)}
				c.Digrams[pair] += u
			}
		}
	}
	return c
}

// topoOrder returns the rule IDs reachable from the start rule with
// every rule before the rules it references (parents first).
func (g Grammar) topoOrder() []int {
	var order []int
	state := make(map[int]int, len(g.Rules)) // 0 unseen, 1 visiting, 2 done
	var visit func(id int)
	visit = func(id int) {
		if state[id] != 0 {
			return
		}
		state[id] = 1
		for _, s := range g.Rules[id] {
			if !s.Terminal {
				visit(s.Value)
			}
		}
		state[id] = 2
		order = append(order, id)
	}
	visit(0)
	// Post-order puts children first; reverse for parents-first.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// Importance returns the terminal's share of the full expansion, in
// [0, 1]: how much of the sequence this terminal accounts for.
func (c Compact) Importance(term int) float64 {
	if c.Length == 0 {
		return 0
	}
	return float64(c.Unigrams[term]) / float64(c.Length)
}

// Terms returns the number of distinct terminals.
func (c Compact) Terms() int { return len(c.Unigrams) }

// sortedUnigrams returns the unigram terms ascending.
func (c Compact) sortedUnigrams() []int {
	terms := make([]int, 0, len(c.Unigrams))
	for t := range c.Unigrams {
		terms = append(terms, t)
	}
	sort.Ints(terms)
	return terms
}

// sortedDigrams returns the digram pairs in ascending (a, b) order.
func (c Compact) sortedDigrams() [][2]int {
	pairs := make([][2]int, 0, len(c.Digrams))
	for p := range c.Digrams {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	return pairs
}

// Fingerprint hashes the Compact's canonical serialization (sorted
// unigrams, sorted digrams, length) to a 64-bit value. Equal expanded
// sequences always collide; grammars differing in any count never do
// short of a hash collision.
func (c Compact) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [binary.MaxVarintLen64]byte
	num := func(v int64) {
		h.Write(buf[:binary.PutVarint(buf[:], v)])
	}
	num(c.Length)
	num(int64(len(c.Unigrams)))
	for _, t := range c.sortedUnigrams() {
		num(int64(t))
		num(c.Unigrams[t])
	}
	num(int64(len(c.Digrams)))
	for _, p := range c.sortedDigrams() {
		num(int64(p[0]))
		num(int64(p[1]))
		num(c.Digrams[p])
	}
	return h.Sum64()
}

// Similarity returns the Importance-weighted resemblance of two
// grammars in [0, 1]: the weighted Jaccard overlap of their normalized
// unigram distributions averaged with that of their digram
// distributions (unigrams alone when either side has no digrams).
// Identical expansions score 1; disjoint alphabets score 0.
func (c Compact) Similarity(other Compact) float64 {
	simU, okU := overlap(uniDist(c), uniDist(other), jaccard)
	simD, okD := overlap(digDist(c), digDist(other), jaccard)
	switch {
	case okU && okD:
		return (simU + simD) / 2
	case okU:
		return simU
	default:
		return 0
	}
}

// Containment returns how much of c's Importance mass the donor
// grammar covers, in [0, 1]. It is the asymmetric prefix-match score:
// the early grammar of a session is contained in the full-run grammar
// of the same program long before the two are symmetric-similar.
func (c Compact) Containment(donor Compact) float64 {
	simU, okU := overlap(uniDist(c), uniDist(donor), coverage)
	simD, okD := overlap(digDist(c), digDist(donor), coverage)
	switch {
	case okU && okD:
		return (simU + simD) / 2
	case okU:
		return simU
	default:
		return 0
	}
}

// uniDist normalizes the unigram counts to a distribution keyed by a
// canonical int64 (terminals are non-negative, so the key is direct).
func uniDist(c Compact) map[int64]float64 {
	if c.Length == 0 {
		return nil
	}
	d := make(map[int64]float64, len(c.Unigrams))
	for t, n := range c.Unigrams {
		d[int64(t)] = float64(n) / float64(c.Length)
	}
	return d
}

// digDist normalizes the digram counts to a distribution keyed by the
// packed pair (terminals fit comfortably in 31 bits each).
func digDist(c Compact) map[int64]float64 {
	total := int64(0)
	for _, n := range c.Digrams {
		total += n
	}
	if total == 0 {
		return nil
	}
	d := make(map[int64]float64, len(c.Digrams))
	for p, n := range c.Digrams {
		d[int64(p[0])<<32|int64(uint32(p[1]))] = float64(n) / float64(total)
	}
	return d
}

// jaccard is the weighted Jaccard overlap of two distributions.
func jaccard(a, b map[int64]float64) float64 {
	minSum, maxSum := 0.0, 0.0
	for k, av := range a {
		bv := b[k]
		if av < bv {
			minSum += av
			maxSum += bv
		} else {
			minSum += bv
			maxSum += av
		}
	}
	for k, bv := range b {
		if _, ok := a[k]; !ok {
			maxSum += bv
		}
	}
	if maxSum == 0 {
		return 0
	}
	return minSum / maxSum
}

// coverage is the fraction of a's mass present in b (both sides sum to
// 1, so this is simply the min-sum).
func coverage(a, b map[int64]float64) float64 {
	sum := 0.0
	for k, av := range a {
		if bv := b[k]; bv < av {
			sum += bv
		} else {
			sum += av
		}
	}
	return sum
}

// overlap applies a distribution comparison, reporting ok=false when
// either distribution is empty (nothing to compare).
func overlap(a, b map[int64]float64, f func(a, b map[int64]float64) float64) (float64, bool) {
	if len(a) == 0 || len(b) == 0 {
		return 0, false
	}
	return f(a, b), true
}
