package sequitur

import (
	"strings"
	"testing"
	"testing/quick"

	"lpp/internal/stats"
)

func expandEquals(t *testing.T, seq []int) {
	t.Helper()
	g := Build(seq)
	got := g.Expand()
	if len(got) != len(seq) {
		t.Fatalf("expanded length %d, want %d (grammar:\n%s)", len(got), len(seq), g)
	}
	for i := range seq {
		if got[i] != seq[i] {
			t.Fatalf("expansion differs at %d: %d vs %d", i, got[i], seq[i])
		}
	}
}

// checkInvariants verifies digram uniqueness and rule utility on a
// finished grammar.
func checkInvariants(t *testing.T, g Grammar) {
	t.Helper()
	// Digram uniqueness: no pair of adjacent symbols appears twice,
	// except overlapping occurrences (e.g. "aaa").
	type pair struct{ a, b Symbol }
	seen := make(map[pair][2]int) // pair -> (rule, position) of first sighting
	for id, rhs := range g.Rules {
		for i := 0; i+1 < len(rhs); i++ {
			p := pair{rhs[i], rhs[i+1]}
			if loc, ok := seen[p]; ok {
				overlapping := loc[0] == id && i-loc[1] == 1 && rhs[i] == rhs[i+1]
				if !overlapping {
					t.Errorf("digram %v appears at R%d:%d and R%d:%d\n%s", p, loc[0], loc[1], id, i, g)
				}
				continue
			}
			seen[p] = [2]int{id, i}
		}
	}
	// Rule utility: every non-start rule referenced at least twice.
	refs := make(map[int]int)
	for _, rhs := range g.Rules {
		for _, s := range rhs {
			if !s.Terminal {
				refs[s.Value]++
			}
		}
	}
	for id := range g.Rules {
		if id == 0 {
			continue
		}
		if refs[id] < 2 {
			t.Errorf("rule R%d used %d times, want >= 2\n%s", id, refs[id], g)
		}
	}
	// All references resolve.
	for id, n := range refs {
		if _, ok := g.Rules[id]; !ok {
			t.Errorf("dangling reference to R%d (%d uses)", id, n)
		}
	}
}

func TestBuildSimpleRepetition(t *testing.T) {
	// "abcabcabc" — classic SEQUITUR example: a rule for "abc" (built
	// from a sub-rule or directly) and a compressed start rule.
	seq := []int{1, 2, 3, 1, 2, 3, 1, 2, 3}
	g := Build(seq)
	expandEquals(t, seq)
	checkInvariants(t, g)
	if g.Size() >= len(seq) {
		t.Errorf("grammar size %d not smaller than input %d\n%s", g.Size(), len(seq), g)
	}
	if len(g.Rules) < 2 {
		t.Errorf("expected at least one derived rule\n%s", g)
	}
}

func TestBuildPaperExample(t *testing.T) {
	// Tomcatv-like phase sequence: five sub-phases per time step,
	// repeated. The grammar must compress the repetition.
	var seq []int
	for step := 0; step < 20; step++ {
		seq = append(seq, 1, 2, 3, 4, 5)
	}
	g := Build(seq)
	expandEquals(t, seq)
	checkInvariants(t, g)
	if g.Size() > 30 {
		t.Errorf("time-step repetition should compress well, size = %d\n%s", g.Size(), g)
	}
}

func TestBuildOverlappingDigrams(t *testing.T) {
	// "aaaa..." exercises the overlap guard.
	for n := 1; n <= 12; n++ {
		seq := make([]int, n)
		for i := range seq {
			seq[i] = 7
		}
		expandEquals(t, seq)
		checkInvariants(t, Build(seq))
	}
}

func TestBuildNoRepetition(t *testing.T) {
	seq := []int{1, 2, 3, 4, 5, 6, 7, 8}
	g := Build(seq)
	expandEquals(t, seq)
	checkInvariants(t, g)
	if len(g.Rules) != 1 {
		t.Errorf("no repetition should produce only the start rule\n%s", g)
	}
}

func TestBuildEmptyAndSingle(t *testing.T) {
	expandEquals(t, nil)
	expandEquals(t, []int{42})
}

func TestAppendNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for negative terminal")
		}
	}()
	NewBuilder().Append(-1)
}

func TestBuildRandomRoundTrip(t *testing.T) {
	f := func(raw []uint8) bool {
		seq := make([]int, len(raw))
		for i, r := range raw {
			seq[i] = int(r % 6) // small alphabet => lots of rules
		}
		g := Build(seq)
		got := g.Expand()
		if len(got) != len(seq) {
			return false
		}
		for i := range seq {
			if got[i] != seq[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBuildRandomInvariants(t *testing.T) {
	rng := stats.NewRNG(99)
	for trial := 0; trial < 50; trial++ {
		n := 20 + rng.Intn(400)
		seq := make([]int, n)
		for i := range seq {
			seq[i] = rng.Intn(4)
		}
		g := Build(seq)
		checkInvariants(t, g)
		got := g.Expand()
		for i := range seq {
			if got[i] != seq[i] {
				t.Fatalf("trial %d: expansion differs at %d", trial, i)
			}
		}
	}
}

func TestBuildLongPeriodicCompressesLogarithmically(t *testing.T) {
	// A long periodic sequence compresses to O(log n) grammar size.
	var seq []int
	for i := 0; i < 1024; i++ {
		seq = append(seq, 1, 2)
	}
	g := Build(seq)
	expandEquals(t, seq)
	if g.Size() > 64 {
		t.Errorf("periodic sequence of 2048 symbols compressed to %d, want <= 64", g.Size())
	}
}

func TestGrammarString(t *testing.T) {
	g := Build([]int{1, 2, 1, 2})
	s := g.String()
	if !strings.HasPrefix(s, "R0 ->") {
		t.Errorf("String should start with the start rule:\n%s", s)
	}
	if !strings.Contains(s, "R1") {
		t.Errorf("expected a derived rule in:\n%s", s)
	}
}

func BenchmarkBuild(b *testing.B) {
	rng := stats.NewRNG(1)
	seq := make([]int, 10000)
	for i := range seq {
		seq[i] = rng.Intn(8)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(seq)
	}
}

// TestIncrementalSize pins Builder.Size to Grammar().Size() after
// every Append on random streams, and across a State round trip, so
// the O(1) growth-cap check can never drift from the real grammar.
func TestIncrementalSize(t *testing.T) {
	rng := stats.NewRNG(11)
	for trial := 0; trial < 20; trial++ {
		b := NewBuilder()
		n := 50 + rng.Intn(300)
		alphabet := 2 + rng.Intn(6)
		for i := 0; i < n; i++ {
			b.Append(rng.Intn(alphabet))
			if got, want := b.Size(), b.Grammar().Size(); got != want {
				t.Fatalf("trial %d, append %d: incremental size %d, grammar size %d", trial, i, got, want)
			}
		}
		restored, err := NewBuilderFromState(b.State())
		if err != nil {
			t.Fatalf("trial %d: restore: %v", trial, err)
		}
		if restored.Size() != b.Size() {
			t.Fatalf("trial %d: restored size %d, original %d", trial, restored.Size(), b.Size())
		}
	}
}
