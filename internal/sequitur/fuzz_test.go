package sequitur

import "testing"

// FuzzBuild checks the SEQUITUR invariant that matters to every user:
// the grammar always expands back to exactly the input sequence.
func FuzzBuild(f *testing.F) {
	f.Add([]byte{1, 2, 3, 1, 2, 3})
	f.Add([]byte{7, 7, 7, 7, 7})
	f.Add([]byte{})
	f.Add([]byte{0, 1, 0, 1, 0, 1, 0, 1, 2, 2, 2})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		seq := make([]int, len(data))
		for i, b := range data {
			seq[i] = int(b % 8) // small alphabet stresses rule churn
		}
		g := Build(seq)
		got := g.Expand()
		if len(got) != len(seq) {
			t.Fatalf("expanded %d symbols, want %d", len(got), len(seq))
		}
		for i := range seq {
			if got[i] != seq[i] {
				t.Fatalf("expansion differs at %d", i)
			}
		}
		if len(seq) > 0 && g.Size() > 2*len(seq) {
			t.Fatalf("grammar size %d exceeds twice the input %d", g.Size(), len(seq))
		}
	})
}
