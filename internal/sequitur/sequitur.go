// Package sequitur implements the SEQUITUR on-line grammar compression
// algorithm of Nevill-Manning and Witten [26]: it incrementally builds
// a context-free grammar for a sequence while maintaining two
// invariants — digram uniqueness (no pair of adjacent symbols appears
// more than once in the grammar) and rule utility (every rule is used
// at least twice). The paper uses it to compress the detected phase
// sequence and then extracts the phase hierarchy from the grammar
// (Section 2.4).
package sequitur

import (
	"fmt"
	"sort"
	"strings"
)

// symbol is a node in a rule's doubly-linked body. Guard nodes (one per
// rule) close the circle and carry the owning rule in ruleOf.
type symbol struct {
	next, prev *symbol
	terminal   int   // valid when rule == nil
	rule       *rule // non-nil for a non-terminal occurrence
	ruleOf     *rule // non-nil for a guard node
}

func (s *symbol) isGuard() bool { return s.ruleOf != nil }

type rule struct {
	id    int
	guard *symbol
	count int // number of occurrences on right-hand sides
}

func newRule(id int) *rule {
	r := &rule{id: id}
	g := &symbol{ruleOf: r}
	g.next, g.prev = g, g
	r.guard = g
	return r
}

func (r *rule) first() *symbol { return r.guard.next }
func (r *rule) last() *symbol  { return r.guard.prev }

// digram is the hash key for a pair of adjacent symbols. Terminals use
// their value; non-terminals use ^rule.id (disjoint from terminals,
// which must be non-negative).
type digram struct{ a, b int }

func keyOf(s *symbol) int {
	if s.rule != nil {
		return ^s.rule.id
	}
	return s.terminal
}

func digramOf(s *symbol) digram { return digram{keyOf(s), keyOf(s.next)} }

// Builder constructs a SEQUITUR grammar incrementally.
type Builder struct {
	start   *rule
	digrams map[digram]*symbol
	rules   map[int]*rule
	nextID  int
	// size counts the symbols on all right-hand sides (guards
	// excluded), maintained incrementally so growth-cap checks do not
	// have to materialize the grammar.
	size int
}

// NewBuilder returns an empty Builder whose start rule has ID 0.
func NewBuilder() *Builder {
	b := &Builder{
		digrams: make(map[digram]*symbol),
		rules:   make(map[int]*rule),
		nextID:  1,
	}
	b.start = newRule(0)
	b.rules[0] = b.start
	return b
}

// Append feeds the next terminal of the sequence. Terminals must be
// non-negative.
func (b *Builder) Append(terminal int) {
	if terminal < 0 {
		panic("sequitur: terminals must be non-negative")
	}
	s := &symbol{terminal: terminal}
	b.insertAfter(b.start.last(), s)
	if !b.start.first().isGuard() && b.start.first() != s {
		b.check(s.prev)
	}
}

// insertAfter links n directly after pos (no digram bookkeeping).
func (b *Builder) insertAfter(pos, n *symbol) {
	n.prev = pos
	n.next = pos.next
	pos.next.prev = n
	pos.next = n
	if n.rule != nil {
		n.rule.count++
	}
	b.size++
}

// remove unlinks s (no digram bookkeeping).
func (b *Builder) remove(s *symbol) {
	s.prev.next = s.next
	s.next.prev = s.prev
	if s.rule != nil {
		s.rule.count--
	}
	b.size--
}

// forgetDigram removes the digram starting at s from the index if the
// index entry points at s itself.
func (b *Builder) forgetDigram(s *symbol) {
	if s.isGuard() || s.next.isGuard() {
		return
	}
	d := digramOf(s)
	if b.digrams[d] != s {
		return
	}
	delete(b.digrams, d)
	// Overlap healing: in a chain like "a a a" only the first (a,a)
	// occurrence is indexed; when it disappears, the overlapping
	// second occurrence must take over the index entry or it would
	// linger unindexed and silently break digram uniqueness.
	n := s.next
	if !n.isGuard() && !n.next.isGuard() && digramOf(n) == d {
		b.digrams[d] = n
	}
}

// check enforces digram uniqueness for the digram starting at s.
// It returns true if the grammar changed.
func (b *Builder) check(s *symbol) bool {
	if s.isGuard() || s.next.isGuard() {
		return false
	}
	d := digramOf(s)
	m, ok := b.digrams[d]
	if !ok {
		b.digrams[d] = s
		return false
	}
	if m == s || m.next == s || s.next == m {
		// Same occurrence or overlapping occurrences (aaa): leave.
		return false
	}
	b.match(s, m)
	return true
}

// match resolves a repeated digram: s and m are two non-overlapping
// occurrences of the same digram, with m the indexed (older) one.
func (b *Builder) match(s, m *symbol) {
	var r *rule
	if m.prev.isGuard() && m.next.next.isGuard() {
		// m's rule body is exactly this digram: reuse the rule.
		r = m.prev.ruleOf
		b.substitute(s, r)
	} else {
		// Create a new rule for the digram.
		r = newRule(b.nextID)
		b.nextID++
		b.rules[r.id] = r
		c1 := b.cloneSym(m)
		c2 := b.cloneSym(m.next)
		b.insertAfter(r.guard, c1)
		b.insertAfter(c1, c2)
		b.digrams[digramOf(c1)] = c1
		b.substitute(m, r)
		b.substitute(s, r)
	}
	// Rule utility: if the rule's first symbol is a rule used once,
	// inline it.
	if f := r.first(); f.rule != nil && f.rule.count == 1 {
		b.expand(f)
	}
}

func (b *Builder) cloneSym(s *symbol) *symbol {
	return &symbol{terminal: s.terminal, rule: s.rule}
}

// substitute replaces the digram starting at s with a reference to r.
func (b *Builder) substitute(s *symbol, r *rule) {
	prev := s.prev
	b.forgetDigram(prev)
	b.forgetDigram(s)
	b.forgetDigram(s.next)
	b.remove(s.next)
	b.remove(s)
	ref := &symbol{rule: r}
	b.insertAfter(prev, ref)
	if !b.check(prev) {
		b.check(ref)
	}
}

// expand inlines the body of the once-used rule referenced by s.
func (b *Builder) expand(s *symbol) {
	r := s.rule
	prev := s.prev
	next := s.next
	b.forgetDigram(prev)
	b.forgetDigram(s)
	b.remove(s)
	first, last := r.first(), r.last()
	if !first.isGuard() {
		prev.next = first
		first.prev = prev
		last.next = next
		next.prev = last
		b.digrams[digramOf(last)] = last
	}
	delete(b.rules, r.id)
	b.check(prev)
}

// Symbol is one element of a finished grammar rule: either a terminal
// value or a reference to another rule.
type Symbol struct {
	Terminal bool
	Value    int // terminal value, or rule ID when !Terminal
}

// Grammar is the finished, immutable product of a Builder.
type Grammar struct {
	// Rules maps rule ID to its right-hand side. Rule 0 is the start.
	Rules map[int][]Symbol
}

// Grammar freezes the Builder's current state.
func (b *Builder) Grammar() Grammar {
	g := Grammar{Rules: make(map[int][]Symbol, len(b.rules))}
	for id, r := range b.rules {
		var rhs []Symbol
		for s := r.first(); !s.isGuard(); s = s.next {
			if s.rule != nil {
				rhs = append(rhs, Symbol{Value: s.rule.id})
			} else {
				rhs = append(rhs, Symbol{Terminal: true, Value: s.terminal})
			}
		}
		g.Rules[id] = rhs
	}
	return g
}

// Size returns the current grammar size (total symbols on all
// right-hand sides) in O(1). It always equals Grammar().Size() but
// costs nothing, so callers can bound growth on every Append.
func (b *Builder) Size() int { return b.size }

// Build runs SEQUITUR over the whole sequence and returns the grammar.
func Build(seq []int) Grammar {
	b := NewBuilder()
	for _, t := range seq {
		b.Append(t)
	}
	return b.Grammar()
}

// Expand reproduces the original sequence from the grammar.
func (g Grammar) Expand() []int {
	var out []int
	var walk func(id int)
	walk = func(id int) {
		for _, s := range g.Rules[id] {
			if s.Terminal {
				out = append(out, s.Value)
			} else {
				walk(s.Value)
			}
		}
	}
	walk(0)
	return out
}

// Size returns the total number of symbols on all right-hand sides, the
// usual measure of grammar compression.
func (g Grammar) Size() int {
	n := 0
	for _, rhs := range g.Rules {
		n += len(rhs)
	}
	return n
}

// String renders the grammar with one rule per line, start rule first,
// in a stable order.
func (g Grammar) String() string {
	ids := make([]int, 0, len(g.Rules))
	for id := range g.Rules {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var sb strings.Builder
	for _, id := range ids {
		fmt.Fprintf(&sb, "R%d ->", id)
		for _, s := range g.Rules[id] {
			if s.Terminal {
				fmt.Fprintf(&sb, " %d", s.Value)
			} else {
				fmt.Fprintf(&sb, " R%d", s.Value)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
