package sequitur

import (
	"errors"
	"fmt"
	"sort"
)

// RuleState is one rule's right-hand side in a BuilderState.
type RuleState struct {
	ID   int
	Body []Symbol
}

// DigramState pins one entry of the digram index to a concrete symbol
// occurrence: position Pos (0-based) in rule Rule's body. The index
// must be captured explicitly because it is not a pure function of the
// rule bodies: in an overlapping chain like "a a a" only one of the two
// (a,a) occurrences is indexed, and which one depends on edit history.
// Restoring the wrong occurrence would make a future Append rewrite the
// grammar differently from the original builder.
type DigramState struct {
	Rule int
	Pos  int
}

// BuilderState is the complete serializable state of a Builder: a
// builder restored from it appends exactly as the original would have.
// Rules are sorted by ID and digrams by (rule, pos), so identical
// builders produce identical states.
type BuilderState struct {
	NextID  int
	Rules   []RuleState
	Digrams []DigramState
}

// State snapshots the builder.
func (b *Builder) State() BuilderState {
	st := BuilderState{NextID: b.nextID}
	ids := make([]int, 0, len(b.rules))
	for id := range b.rules {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		r := b.rules[id]
		rs := RuleState{ID: id}
		pos := 0
		for s := r.first(); !s.isGuard(); s = s.next {
			if s.rule != nil {
				rs.Body = append(rs.Body, Symbol{Value: s.rule.id})
			} else {
				rs.Body = append(rs.Body, Symbol{Terminal: true, Value: s.terminal})
			}
			// Record the digram index entry anchored at this symbol, if
			// this very occurrence is the indexed one.
			if !s.next.isGuard() {
				if m, ok := b.digrams[digramOf(s)]; ok && m == s {
					st.Digrams = append(st.Digrams, DigramState{Rule: id, Pos: pos})
				}
			}
			pos++
		}
		st.Rules = append(st.Rules, rs)
	}
	return st
}

var errBuilderState = errors.New("sequitur: invalid builder state")

// NewBuilderFromState reconstructs a Builder from a BuilderState,
// validating referential integrity so corrupt snapshots are rejected
// instead of panicking on a later Append.
func NewBuilderFromState(st BuilderState) (*Builder, error) {
	if st.NextID < 1 {
		return nil, fmt.Errorf("%w: next ID %d < 1", errBuilderState, st.NextID)
	}
	b := &Builder{
		digrams: make(map[digram]*symbol),
		rules:   make(map[int]*rule, len(st.Rules)),
		nextID:  st.NextID,
	}
	for _, rs := range st.Rules {
		if rs.ID < 0 {
			return nil, fmt.Errorf("%w: negative rule ID %d", errBuilderState, rs.ID)
		}
		if rs.ID >= st.NextID {
			return nil, fmt.Errorf("%w: rule ID %d >= next ID %d", errBuilderState, rs.ID, st.NextID)
		}
		if _, dup := b.rules[rs.ID]; dup {
			return nil, fmt.Errorf("%w: duplicate rule ID %d", errBuilderState, rs.ID)
		}
		b.rules[rs.ID] = newRule(rs.ID)
	}
	start, ok := b.rules[0]
	if !ok {
		return nil, fmt.Errorf("%w: no start rule", errBuilderState)
	}
	b.start = start
	for _, rs := range st.Rules {
		r := b.rules[rs.ID]
		for _, sym := range rs.Body {
			var s *symbol
			if sym.Terminal {
				if sym.Value < 0 {
					return nil, fmt.Errorf("%w: negative terminal %d", errBuilderState, sym.Value)
				}
				s = &symbol{terminal: sym.Value}
			} else {
				ref, ok := b.rules[sym.Value]
				if !ok || sym.Value == 0 {
					return nil, fmt.Errorf("%w: rule %d references missing rule %d", errBuilderState, rs.ID, sym.Value)
				}
				s = &symbol{rule: ref}
			}
			b.insertAfter(r.last(), s)
		}
	}
	for _, ds := range st.Digrams {
		r, ok := b.rules[ds.Rule]
		if !ok {
			return nil, fmt.Errorf("%w: digram in missing rule %d", errBuilderState, ds.Rule)
		}
		if ds.Pos < 0 {
			return nil, fmt.Errorf("%w: negative digram position", errBuilderState)
		}
		s := r.first()
		for i := 0; i < ds.Pos && !s.isGuard(); i++ {
			s = s.next
		}
		if s.isGuard() || s.next.isGuard() {
			return nil, fmt.Errorf("%w: digram position %d out of rule %d", errBuilderState, ds.Pos, ds.Rule)
		}
		d := digramOf(s)
		if _, dup := b.digrams[d]; dup {
			return nil, fmt.Errorf("%w: duplicate digram index entry", errBuilderState)
		}
		b.digrams[d] = s
	}
	return b, nil
}
