package sequitur

import (
	"math"
	"math/rand"
	"testing"
)

// naiveCompact computes the digest directly from the expanded sequence.
func naiveCompact(seq []int) Compact {
	c := Compact{
		Unigrams: make(map[int]int64),
		Digrams:  make(map[[2]int]int64),
		Length:   int64(len(seq)),
	}
	for i, t := range seq {
		c.Unigrams[t]++
		if i > 0 {
			c.Digrams[[2]int{seq[i-1], t}]++
		}
	}
	return c
}

func compactEquals(t *testing.T, got, want Compact) {
	t.Helper()
	if got.Length != want.Length {
		t.Fatalf("length %d, want %d", got.Length, want.Length)
	}
	if len(got.Unigrams) != len(want.Unigrams) || len(got.Digrams) != len(want.Digrams) {
		t.Fatalf("cardinality (%d uni, %d di), want (%d, %d)",
			len(got.Unigrams), len(got.Digrams), len(want.Unigrams), len(want.Digrams))
	}
	for k, v := range want.Unigrams {
		if got.Unigrams[k] != v {
			t.Fatalf("unigram %d = %d, want %d", k, got.Unigrams[k], v)
		}
	}
	for k, v := range want.Digrams {
		if got.Digrams[k] != v {
			t.Fatalf("digram %v = %d, want %d", k, got.Digrams[k], v)
		}
	}
}

// TestCompactMatchesExpansion checks that the grammar-walk digest equals
// the digest computed from the fully expanded sequence, across periodic,
// nested, and random inputs.
func TestCompactMatchesExpansion(t *testing.T) {
	seqs := [][]int{
		nil,
		{7},
		{1, 1, 1, 1, 1, 1, 1, 1},
		{1, 2, 1, 2, 1, 2, 1, 2, 3},
		{1, 2, 3, 1, 2, 3, 4, 1, 2, 3, 1, 2, 3, 4},
	}
	rng := rand.New(rand.NewSource(42))
	for n := 0; n < 20; n++ {
		seq := make([]int, 200+rng.Intn(800))
		for i := range seq {
			seq[i] = rng.Intn(6)
		}
		seqs = append(seqs, seq)
	}
	for _, seq := range seqs {
		g := Build(seq)
		compactEquals(t, g.Compact(), naiveCompact(seq))
	}
}

// TestCompactFingerprintCanonical checks that the fingerprint depends
// only on the expanded sequence, not on how the grammar was built: a
// grammar built in one pass and one built over the same sequence split
// differently (forcing different rule IDs via interleaved construction
// order) must collide, and different sequences must not.
func TestCompactFingerprintCanonical(t *testing.T) {
	seq := []int{1, 2, 3, 1, 2, 3, 4, 4, 1, 2, 3, 1, 2, 3, 4, 4}
	a := Build(seq).Compact()
	// Same expanded sequence, different construction: append through a
	// fresh builder (IDs can differ from a straight Build if rules are
	// created and inlined in another order — exercised by the reversed
	// tail below producing a distinct print).
	b := Build(seq).Compact()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("same sequence, different fingerprints")
	}
	other := append(append([]int{}, seq...), 9)
	if Build(other).Compact().Fingerprint() == a.Fingerprint() {
		t.Fatalf("different sequences, same fingerprint")
	}
}

// TestImportance checks the importance weights sum to 1 and reflect the
// terminal shares.
func TestImportance(t *testing.T) {
	seq := []int{1, 1, 1, 2}
	c := Build(seq).Compact()
	if got := c.Importance(1); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("Importance(1) = %v, want 0.75", got)
	}
	if got := c.Importance(2); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("Importance(2) = %v, want 0.25", got)
	}
	if got := c.Importance(3); got != 0 {
		t.Fatalf("Importance(3) = %v, want 0", got)
	}
}

// TestSimilarityProperties checks the headline properties: identity
// scores 1, disjoint alphabets score 0, symmetry, and graded response
// to partial overlap. Containment must score a prefix fully contained
// in its continuation at 1 on unigrams-and-digrams it shares.
func TestSimilarityProperties(t *testing.T) {
	period := []int{1, 2, 3, 4}
	var full []int
	for i := 0; i < 32; i++ {
		full = append(full, period...)
	}
	cFull := Build(full).Compact()
	cSame := Build(append([]int{}, full...)).Compact()
	if got := cFull.Similarity(cSame); math.Abs(got-1) > 1e-12 {
		t.Fatalf("self similarity = %v, want 1", got)
	}
	disjoint := Build([]int{9, 10, 9, 10, 9, 10}).Compact()
	if got := cFull.Similarity(disjoint); got != 0 {
		t.Fatalf("disjoint similarity = %v, want 0", got)
	}
	half := Build([]int{1, 2, 1, 2, 1, 2, 1, 2}).Compact()
	s1 := cFull.Similarity(half)
	s2 := half.Similarity(cFull)
	if math.Abs(s1-s2) > 1e-12 {
		t.Fatalf("similarity not symmetric: %v vs %v", s1, s2)
	}
	if s1 <= 0 || s1 >= 1 {
		t.Fatalf("partial overlap similarity = %v, want in (0, 1)", s1)
	}

	// An early prefix of a periodic run is contained in the full run's
	// grammar: every unigram and digram the prefix has, the full run
	// has with at least that share.
	prefix := Build(full[:9]).Compact()
	if got := prefix.Containment(cFull); got < 0.95 {
		t.Fatalf("prefix containment = %v, want >= 0.95", got)
	}
	if got := cFull.Containment(disjoint); got != 0 {
		t.Fatalf("disjoint containment = %v, want 0", got)
	}
}

// TestCompactEmpty checks zero-value behavior.
func TestCompactEmpty(t *testing.T) {
	c := Build(nil).Compact()
	if c.Length != 0 || c.Terms() != 0 {
		t.Fatalf("empty grammar digest not empty: %+v", c)
	}
	if got := c.Similarity(c); got != 0 {
		t.Fatalf("empty similarity = %v, want 0", got)
	}
	var fpZero = c.Fingerprint()
	if Build([]int{1}).Compact().Fingerprint() == fpZero {
		t.Fatalf("singleton fingerprint equals empty fingerprint")
	}
}
