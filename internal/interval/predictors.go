package interval

// Run-time predictors for interval methods. The paper's interval
// baselines classify past windows and predict the next one "using
// methods such as last-value and Markov models" [2, 9, 30]; these are
// the two standard predictors, generic over any integer behavior class
// (best cache size, BBV cluster, phase ID).

// LastValue predicts that the next window behaves like the current
// one.
type LastValue struct {
	cur    int
	primed bool

	predictions int64
	correct     int64
}

// Predict returns the predicted class of the next window.
func (l *LastValue) Predict() (int, bool) {
	return l.cur, l.primed
}

// Observe feeds the actual class of the next window.
func (l *LastValue) Observe(class int) {
	if l.primed {
		l.predictions++
		if class == l.cur {
			l.correct++
		}
	}
	l.cur = class
	l.primed = true
}

// Accuracy returns the fraction of correct predictions (1 if none).
func (l *LastValue) Accuracy() float64 {
	if l.predictions == 0 {
		return 1
	}
	return float64(l.correct) / float64(l.predictions)
}

// Markov is an order-k Markov predictor: the state is the last k
// classes, and the table remembers the class that followed that state
// most recently. Unseen states fall back to last-value.
type Markov struct {
	order int
	hist  []int
	table map[string]int

	predictions int64
	correct     int64
}

// NewMarkov returns an order-k Markov predictor (k >= 1).
func NewMarkov(order int) *Markov {
	if order < 1 {
		order = 1
	}
	return &Markov{order: order, table: make(map[string]int)}
}

func (m *Markov) key() string {
	b := make([]byte, 0, 4*len(m.hist))
	for _, c := range m.hist {
		b = append(b, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
	}
	return string(b)
}

// Predict returns the predicted class of the next window.
func (m *Markov) Predict() (int, bool) {
	if len(m.hist) == 0 {
		return 0, false
	}
	if len(m.hist) == m.order {
		if next, ok := m.table[m.key()]; ok {
			return next, true
		}
	}
	return m.hist[len(m.hist)-1], true // last-value fallback
}

// Observe feeds the actual class of the next window.
func (m *Markov) Observe(class int) {
	if pred, ok := m.Predict(); ok {
		m.predictions++
		if pred == class {
			m.correct++
		}
	}
	if len(m.hist) == m.order {
		m.table[m.key()] = class
		copy(m.hist, m.hist[1:])
		m.hist[m.order-1] = class
	} else {
		m.hist = append(m.hist, class)
	}
}

// Accuracy returns the fraction of correct predictions (1 if none).
func (m *Markov) Accuracy() float64 {
	if m.predictions == 0 {
		return 1
	}
	return float64(m.correct) / float64(m.predictions)
}
