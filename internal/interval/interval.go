// Package interval provides fixed-length-window profiling, the
// baseline analysis the paper contrasts with locality phases: an
// execution is cut into windows of a fixed number of memory accesses,
// and each window's locality vector is measured with the multi-size
// cache simulator (warm across windows, as in a real adaptive cache).
package interval

import (
	"lpp/internal/cache"
	"lpp/internal/trace"
)

// Window is one fixed-length (or externally delimited) execution
// window and its measured locality.
type Window struct {
	StartAccess, EndAccess int64
	StartInstr, EndInstr   int64
	Loc                    cache.Vector
}

// Len returns the window length in accesses.
func (w Window) Len() int64 { return w.EndAccess - w.StartAccess }

// Profiler measures per-window locality vectors over windows of a
// fixed number of data accesses. It implements trace.Instrumenter.
type Profiler struct {
	sim   *cache.MultiAssoc
	every int64

	accesses   int64
	instrs     int64
	startAcc   int64
	startInstr int64
	snap       cache.Snapshot

	windows []Window
}

// NewProfiler returns a Profiler with windows of `everyAccesses` data
// accesses, measuring locality with the paper's default cache
// geometry.
func NewProfiler(everyAccesses int64) *Profiler {
	if everyAccesses <= 0 {
		panic("interval: window length must be positive")
	}
	p := &Profiler{sim: cache.NewDefault(), every: everyAccesses}
	p.snap = p.sim.Snapshot()
	return p
}

// Block implements trace.Instrumenter.
func (p *Profiler) Block(_ trace.BlockID, instrs int) {
	p.instrs += int64(instrs)
}

// Access implements trace.Instrumenter.
func (p *Profiler) Access(addr trace.Addr) {
	p.sim.Access(addr)
	p.accesses++
	if p.accesses-p.startAcc >= p.every {
		p.close()
	}
}

func (p *Profiler) close() {
	loc, _ := p.sim.Since(p.snap)
	p.windows = append(p.windows, Window{
		StartAccess: p.startAcc,
		EndAccess:   p.accesses,
		StartInstr:  p.startInstr,
		EndInstr:    p.instrs,
		Loc:         loc,
	})
	p.startAcc = p.accesses
	p.startInstr = p.instrs
	p.snap = p.sim.Snapshot()
}

// Windows returns the completed windows; a trailing partial window is
// discarded, matching interval-based methods.
func (p *Profiler) Windows() []Window { return p.windows }

// Lengths are the interval lengths (in memory accesses) the paper
// evaluates for cache resizing, scaled down 10× to match this
// repository's scaled-down traces (the paper's runs are tens of
// billions of accesses; ours are tens of millions).
var Lengths = []int64{1_000, 100_000, 1_000_000, 4_000_000, 10_000_000}

// LengthNames labels Lengths in the paper's units for reporting.
var LengthNames = []string{"Intvl-10k", "Intvl-1M", "Intvl-10M", "Intvl-40M", "Intvl-100M"}
