package interval

import (
	"testing"

	"lpp/internal/trace"
)

func TestProfilerWindows(t *testing.T) {
	p := NewProfiler(100)
	for i := 0; i < 250; i++ {
		p.Block(1, 2)
		p.Access(trace.Addr(i) * 64)
	}
	ws := p.Windows()
	if len(ws) != 2 {
		t.Fatalf("windows = %d, want 2 (partial tail discarded)", len(ws))
	}
	if ws[0].Len() != 100 || ws[1].Len() != 100 {
		t.Errorf("window lengths = %d, %d", ws[0].Len(), ws[1].Len())
	}
	if ws[1].StartAccess != 100 {
		t.Errorf("second window starts at %d", ws[1].StartAccess)
	}
	if ws[0].EndInstr == 0 {
		t.Error("instruction extents not tracked")
	}
	// All-cold accesses: miss rate 1 at every size.
	if ws[0].Loc.MissAt(8) != 1 {
		t.Errorf("cold window miss rate = %g, want 1", ws[0].Loc.MissAt(8))
	}
}

func TestProfilerWarmAcrossWindows(t *testing.T) {
	p := NewProfiler(100)
	// Touch 50 blocks twice per window, same blocks every window:
	// the first window is cold, later windows hit.
	for w := 0; w < 3; w++ {
		for i := 0; i < 100; i++ {
			p.Access(trace.Addr(i%50) * 64)
		}
	}
	ws := p.Windows()
	if len(ws) != 3 {
		t.Fatalf("windows = %d", len(ws))
	}
	if ws[0].Loc.MissAt(8) <= ws[1].Loc.MissAt(8) {
		t.Error("first window should be colder than later ones")
	}
	if ws[2].Loc.MissAt(8) != 0 {
		t.Errorf("steady-state window miss rate = %g, want 0", ws[2].Loc.MissAt(8))
	}
}

func TestProfilerPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewProfiler(0)
}

func TestLengthsTable(t *testing.T) {
	if len(Lengths) != len(LengthNames) {
		t.Fatal("Lengths and LengthNames must align")
	}
	for i := 1; i < len(Lengths); i++ {
		if Lengths[i] <= Lengths[i-1] {
			t.Error("Lengths must ascend")
		}
	}
}
