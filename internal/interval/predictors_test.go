package interval

import "testing"

func TestLastValueSteadyState(t *testing.T) {
	var l LastValue
	if _, ok := l.Predict(); ok {
		t.Error("unprimed predictor must not predict")
	}
	for i := 0; i < 10; i++ {
		l.Observe(3)
	}
	if l.Accuracy() != 1 {
		t.Errorf("steady accuracy = %g", l.Accuracy())
	}
	l.Observe(4)
	if l.Accuracy() == 1 {
		t.Error("change must be mispredicted")
	}
}

func TestLastValueFailsOnAlternation(t *testing.T) {
	var l LastValue
	for i := 0; i < 20; i++ {
		l.Observe(i % 2)
	}
	if l.Accuracy() > 0.01 {
		t.Errorf("alternation accuracy = %g, want ~0", l.Accuracy())
	}
}

func TestMarkovLearnsAlternation(t *testing.T) {
	m := NewMarkov(1)
	for i := 0; i < 40; i++ {
		m.Observe(i % 2)
	}
	// After the first cycle the order-1 table knows 0->1 and 1->0.
	if m.Accuracy() < 0.9 {
		t.Errorf("markov alternation accuracy = %g", m.Accuracy())
	}
}

func TestMarkovOrder2BeatsOrder1(t *testing.T) {
	// Pattern 0 0 1: order-1 cannot disambiguate what follows 0.
	run := func(order int) float64 {
		m := NewMarkov(order)
		for i := 0; i < 60; i++ {
			for _, c := range []int{0, 0, 1} {
				m.Observe(c)
			}
		}
		return m.Accuracy()
	}
	a1, a2 := run(1), run(2)
	if a2 <= a1 {
		t.Errorf("order-2 (%g) should beat order-1 (%g) on 001 pattern", a2, a1)
	}
	if a2 < 0.9 {
		t.Errorf("order-2 accuracy = %g", a2)
	}
}

func TestMarkovFallback(t *testing.T) {
	m := NewMarkov(3)
	m.Observe(5)
	pred, ok := m.Predict()
	if !ok || pred != 5 {
		t.Errorf("fallback = %d,%v", pred, ok)
	}
}

func TestMarkovBadOrder(t *testing.T) {
	if NewMarkov(0).order != 1 {
		t.Error("order must clamp to 1")
	}
}

func TestVacuousAccuracies(t *testing.T) {
	if (&LastValue{}).Accuracy() != 1 || NewMarkov(1).Accuracy() != 1 {
		t.Error("vacuous accuracy should be 1")
	}
}
