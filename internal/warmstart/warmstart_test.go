package warmstart

import (
	"testing"

	"lpp/internal/knowledge"
	"lpp/internal/online"
	"lpp/internal/phase"
	"lpp/internal/sequitur"
	"lpp/internal/trace"
	"lpp/internal/workload"
)

// TestWarmVsColdAcceptance pins the subsystem's reason to exist: train
// a store on one run of each golden workload, replay the workload
// against the trained store, and require that on at least 7 of the 9
// workloads the warm-started session makes its first length prediction
// strictly earlier than the cold session — and that no workload where
// the cold session predicts at all loses accuracy from warm-starting.
//
// The measured per-workload outcomes (warm boundary vs cold boundary)
// are pinned exactly, parity-suite style, so a regression in matching
// or warm-start transfer shows up as a readable diff, not a flaky
// count.
func TestWarmVsColdAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("trains and replays all nine golden workloads")
	}
	// Per-workload expectations: first-prediction boundary warm/cold
	// (-1 = never predicted). Pinned from measurement; see EXPERIMENTS.md.
	// Matching needs two agreeing terms (one boundary-interval bucket
	// can collide across programs), so the earliest possible warm start
	// is the third boundary. tomcatv's warm session drops the cold
	// session's single wrong prediction entirely: accuracy up, first
	// prediction never.
	want := map[string][2]int64{
		"fft":      {3, 4},
		"applu":    {3, -1},
		"compress": {3, 4},
		"gcc":      {3, 4},
		"tomcatv":  {-1, 4},
		"swim":     {4, 4},
		"vortex":   {3, 4},
		"mesh":     {3, 4},
		"moldyn":   {3, 4},
	}
	earlier := 0
	for _, c := range Cases() {
		events, err := c.Events()
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Detector: c.Detector()}
		store := knowledge.NewStore(knowledge.Config{})
		Run(events, cfg, store, true)
		cold := Run(events, cfg, nil, false)
		warm := Run(events, cfg, store, false)

		if got := [2]int64{warm.FirstPredictionBoundary, cold.FirstPredictionBoundary}; got != want[c.Name] {
			t.Errorf("%s: first prediction boundary warm/cold = %v, want %v", c.Name, got, want[c.Name])
		}
		if warm.FirstPredictionBoundary >= 0 &&
			(cold.FirstPredictionBoundary < 0 || warm.FirstPredictionBoundary < cold.FirstPredictionBoundary) {
			earlier++
		}
		// No accuracy loss wherever the cold session predicts at all;
		// with zero cold predictions accuracy is vacuous and the warm
		// session's extra coverage is pure gain.
		if cold.Predictions > 0 && warm.Accuracy < cold.Accuracy-1e-9 {
			t.Errorf("%s: warm accuracy %.4f below cold %.4f", c.Name, warm.Accuracy, cold.Accuracy)
		}
		if !warm.WarmStarted {
			t.Errorf("%s: session did not warm-start", c.Name)
		}
		if st := store.Stats(); st.Hits != 1 {
			t.Errorf("%s: store hits = %d, want 1", c.Name, st.Hits)
		}
	}
	if earlier < 7 {
		t.Errorf("warm first prediction strictly earlier on %d/9 workloads, want >= 7", earlier)
	}
}

// TestFleetStoreDiscrimination trains ONE shared store on all nine
// golden workloads and replays each against it: every session must
// warm-start from its own program's entry, never a neighbor's. This is
// the multi-tenant shape a long-lived server sees, and it is where
// single-term coincidences (vortex's first boundary bucket equals
// fft's) would cross-match without the two-term prefix guard and the
// containment mass gate.
func TestFleetStoreDiscrimination(t *testing.T) {
	if testing.Short() {
		t.Skip("trains and replays all nine golden workloads")
	}
	store := knowledge.NewStore(knowledge.Config{})
	own := make(map[string]uint64)
	for _, c := range Cases() {
		events, err := c.Events()
		if err != nil {
			t.Fatal(err)
		}
		r := Run(events, Config{Detector: c.Detector()}, store, true)
		own[c.Name] = r.Fingerprint
	}
	if got := store.Len(); got != len(Cases()) {
		t.Fatalf("store holds %d entries after training nine workloads, want %d", got, len(Cases()))
	}
	for _, c := range Cases() {
		events, err := c.Events()
		if err != nil {
			t.Fatal(err)
		}
		warm := Run(events, Config{Detector: c.Detector()}, store, false)
		if !warm.WarmStarted {
			t.Errorf("%s: no warm start against the fleet store", c.Name)
			continue
		}
		if warm.Matched != own[c.Name] {
			name := "unknown"
			for n, fp := range own {
				if fp == warm.Matched {
					name = n
				}
			}
			t.Errorf("%s: warm-started from %s's entry (%#x), want own (%#x)",
				c.Name, name, warm.Matched, own[c.Name])
		}
	}
}

// fingerprintChunked streams a workload's trace through a detector in
// the given batch size and returns the knowledge consumer's grammar
// digest and fingerprint.
func fingerprintChunked(t *testing.T, c Case, events []trace.Event, chunk int) (sequitur.Compact, uint64) {
	t.Helper()
	kc := knowledge.NewConsumer(nil, nil)
	cfg := c.Detector()
	cfg.OnEvent = func(ev phase.Event) { _ = kc.Consume(ev) }
	d := online.NewDetector(cfg)
	for start := 0; start < len(events); start += chunk {
		end := start + chunk
		if end > len(events) {
			end = len(events)
		}
		d.AccessBatch(events[start:end])
	}
	d.Flush()
	return kc.Compact(), kc.Fingerprint()
}

// TestFingerprintStability pins the property warm-starting depends on:
// the grammar fingerprint identifies the workload, not the transport.
// The same trace fed in different batch sizes must produce identical
// fingerprints, and Similarity must rank every workload's own grammar
// first against the full nine-donor panel.
func TestFingerprintStability(t *testing.T) {
	if testing.Short() {
		t.Skip("traces all nine golden workloads")
	}
	chunks := []int{1, 509, 4096}
	type donor struct {
		name string
		g    sequitur.Compact
	}
	var donors []donor
	for _, c := range Cases() {
		events, err := c.Events()
		if err != nil {
			t.Fatal(err)
		}
		g0, fp0 := fingerprintChunked(t, c, events, chunks[0])
		if fp0 == 0 {
			t.Errorf("%s: zero fingerprint", c.Name)
		}
		for _, chunk := range chunks[1:] {
			if _, fp := fingerprintChunked(t, c, events, chunk); fp != fp0 {
				t.Errorf("%s: fingerprint %#x at chunk %d, want %#x (chunk %d)",
					c.Name, fp, chunk, fp0, chunks[0])
			}
		}
		donors = append(donors, donor{c.Name, g0})
	}
	for i, a := range donors {
		best, bestScore := -1, -1.0
		for j, b := range donors {
			if s := a.g.Similarity(b.g); s > bestScore {
				best, bestScore = j, s
			}
		}
		if best != i {
			t.Errorf("%s: Similarity ranks %s first (%.3f), want self", a.name, donors[best].name, bestScore)
		}
		if bestScore < 0.999 {
			t.Errorf("%s: self-similarity %.3f, want ~1", a.name, bestScore)
		}
	}
}

// TestInterleavedStreamDoesNotContaminate extends the fleet suite with
// the hostile multi-tenant shape: a store trained on the pure tenants
// (fft and moldyn) sees their time-sliced interleaving as one session.
// The mixed stream's grammar is neither tenant's, so it must not
// falsely warm-start from either entry — and after the mixed session
// contributes its own entry, the pure tenants must still warm-start
// from their own entries, not the hybrid's.
func TestInterleavedStreamDoesNotContaminate(t *testing.T) {
	if testing.Short() {
		t.Skip("trains two golden workloads and replays a hostile trace")
	}
	store := knowledge.NewStore(knowledge.Config{})
	own := make(map[string]uint64)
	tenants := []string{"fft", "moldyn"}
	for _, name := range tenants {
		c, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		events, err := c.Events()
		if err != nil {
			t.Fatal(err)
		}
		r := Run(events, Config{Detector: c.Detector()}, store, true)
		own[name] = r.Fingerprint
	}

	spec, err := workload.HostileByName("interleaved")
	if err != nil {
		t.Fatal(err)
	}
	// Pin the tenants explicitly so the mixed stream interleaves
	// exactly the two programs the store was trained on.
	p := spec.Params
	p.TenantA, p.TenantB = "fft", "moldyn"
	rec := trace.NewRecorder(1<<20, 1<<16)
	spec.Make(p).Run(rec)
	mixed := Run(Events(&rec.T), Config{Detector: online.DefaultConfig()}, store, true)
	if mixed.WarmStarted {
		name := "unknown"
		for n, fp := range own {
			if fp == mixed.Matched {
				name = n
			}
		}
		t.Errorf("interleaved stream warm-started from %s's entry (%#x, score %.3f); a mixed-tenant grammar must match no tenant",
			name, mixed.Matched, mixed.MatchScore)
	}

	// The hybrid entry contributed above must not hijack the pure
	// tenants' own matches.
	for _, name := range tenants {
		c, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		events, err := c.Events()
		if err != nil {
			t.Fatal(err)
		}
		warm := Run(events, Config{Detector: c.Detector()}, store, false)
		if !warm.WarmStarted {
			t.Errorf("%s: no warm start after the hybrid entry joined the store", name)
			continue
		}
		if warm.Matched != own[name] {
			t.Errorf("%s: warm-started from %#x, want own entry %#x (hybrid contamination)",
				name, warm.Matched, own[name])
		}
	}
}
