// Package warmstart drives warm-vs-cold session comparisons: it
// streams a recorded trace through the online detector with a
// predictor + knowledge consumer pair and reports when the first
// length prediction landed, with what accuracy and coverage. The same
// runner backs cmd/lpp's offline warm-start mode, lppbench -warmstart,
// the server's acceptance tests, and the fingerprint-stability suite —
// one code path, so the numbers they report are the numbers the tests
// pin.
package warmstart

import (
	"fmt"

	"lpp/internal/knowledge"
	"lpp/internal/online"
	"lpp/internal/phase"
	"lpp/internal/predictor"
	"lpp/internal/trace"
	"lpp/internal/workload"
)

// Config parameterizes one session run.
type Config struct {
	// Detector configures the online detector (OnEvent is overwritten).
	Detector online.Config
	// Policy is the prediction policy (default Strict).
	Policy predictor.Policy
}

// Result is one session's outcome.
type Result struct {
	Events     int64 `json:"events"`
	Boundaries int64 `json:"boundaries"`

	// FirstPredictionBoundary is the 1-based boundary index at which
	// the predictor issued its first length prediction; -1 if it never
	// predicted. FirstPredictionEvent is the 0-based index of the
	// trace event being processed at that moment (Events for
	// flush-time boundaries); the detector identifies early boundaries
	// retrospectively and can emit several at one event, so
	// FirstPredictionTime — the boundary's logical access time — is
	// the honest latency measure.
	FirstPredictionBoundary int64 `json:"first_prediction_boundary"`
	FirstPredictionEvent    int64 `json:"first_prediction_event"`
	FirstPredictionTime     int64 `json:"first_prediction_time"`

	Predictions int64   `json:"predictions"`
	Accuracy    float64 `json:"accuracy"`
	Coverage    float64 `json:"coverage"`

	WarmStarted bool    `json:"warm_started"`
	Matched     uint64  `json:"matched_fingerprint,omitempty"`
	MatchScore  float64 `json:"match_score,omitempty"`
	Fingerprint uint64  `json:"fingerprint"`
}

// Run streams events through a fresh detector and consumer pair. With
// a non-nil store the session attempts a warm start against it; with
// contribute set, the session's learned knowledge is folded into the
// store afterwards (training). Events are fed one at a time; chunked
// feeding detects identically (pinned by the golden parity suite), so
// per-event feeding only sharpens FirstPredictionEvent.
func Run(events []trace.Event, cfg Config, store *knowledge.Store, contribute bool) Result {
	pc := phase.NewPredictorConsumer(cfg.Policy)
	kc := knowledge.NewConsumer(store, pc)
	res := Result{FirstPredictionBoundary: -1, FirstPredictionEvent: -1, FirstPredictionTime: -1}
	cur := int64(0)
	dcfg := cfg.Detector
	// The knowledge consumer runs first so a warm start lands before
	// the predictor consumes the boundary that triggered it.
	dcfg.OnEvent = func(ev phase.Event) {
		_ = kc.Consume(ev)
		_ = pc.Consume(ev)
		if ev.Kind != phase.BoundaryDetected {
			return
		}
		res.Boundaries++
		if res.FirstPredictionBoundary < 0 && pc.Predictor().Predictions() > 0 {
			res.FirstPredictionBoundary = res.Boundaries
			res.FirstPredictionEvent = cur
			res.FirstPredictionTime = ev.Time
		}
	}
	d := online.NewDetector(dcfg)
	for i, ev := range events {
		cur = int64(i)
		if ev.Kind == trace.EventBlock {
			d.Block(ev.Block, ev.Instrs)
		} else {
			d.Access(ev.Addr)
		}
	}
	cur = int64(len(events))
	d.Flush()

	res.Events = int64(len(events))
	res.Predictions = pc.Predictor().Predictions()
	res.Accuracy = pc.Predictor().Accuracy()
	res.Coverage = pc.Predictor().Coverage(0)
	res.Fingerprint = kc.Fingerprint()
	res.Matched, res.MatchScore, res.WarmStarted = kc.WarmStarted()
	if contribute && store != nil {
		if entry, ok := kc.Entry(); ok {
			store.Contribute(entry)
		}
	}
	return res
}

// Case is one golden workload: the nine benchmarks the repo pins
// parity and golden fixtures on, with the same training parameters.
type Case struct {
	Name          string
	Params        workload.Params
	KeepIrregular bool
}

// Cases returns the nine golden workloads.
func Cases() []Case {
	return []Case{
		{"fft", workload.Params{N: 512, Steps: 6, Seed: 1}, false},
		{"applu", workload.Params{N: 14, Steps: 5, Seed: 1}, false},
		{"compress", workload.Params{N: 8192, Steps: 5, Seed: 1}, false},
		{"gcc", workload.Params{N: 60, Steps: 20, Seed: 1}, true},
		{"tomcatv", workload.Params{N: 48, Steps: 6, Seed: 1}, false},
		{"swim", workload.Params{N: 48, Steps: 6, Seed: 1}, false},
		{"vortex", workload.Params{N: 1 << 12, Steps: 6, Seed: 1}, true},
		{"mesh", workload.Params{N: 2048, Steps: 6, Seed: 1}, false},
		{"moldyn", workload.Params{N: 200, Steps: 6, Seed: 1}, false},
	}
}

// ByName returns the golden case with that name.
func ByName(name string) (Case, error) {
	for _, c := range Cases() {
		if c.Name == name {
			return c, nil
		}
	}
	return Case{}, fmt.Errorf("warmstart: unknown workload %q", name)
}

// Detector returns the case's detector configuration.
func (c Case) Detector() online.Config {
	cfg := online.DefaultConfig()
	cfg.KeepIrregular = c.KeepIrregular
	return cfg
}

// Events records the case's trace and flattens it to the event stream
// the server's decoder hands to AccessBatch, in Replay order.
func (c Case) Events() ([]trace.Event, error) {
	spec, err := workload.ByName(c.Name)
	if err != nil {
		return nil, err
	}
	rec := trace.NewRecorder(1<<20, 1<<16)
	spec.Make(c.Params).Run(rec)
	return Events(&rec.T), nil
}

// Events flattens a recorded trace into the flat event stream in
// Replay order.
func Events(rec *trace.Recorded) []trace.Event {
	events := make([]trace.Event, 0, len(rec.Accesses)+len(rec.Blocks))
	next := 0
	for i, b := range rec.Blocks {
		end := len(rec.Accesses)
		if i+1 < len(rec.Blocks) {
			end = int(rec.Blocks[i+1].AccessIndex)
		}
		events = append(events, trace.Event{Kind: trace.EventBlock, Block: b.ID, Instrs: int(b.Instrs)})
		for ; next < end; next++ {
			events = append(events, trace.Event{Kind: trace.EventAccess, Addr: rec.Accesses[next]})
		}
	}
	for ; next < len(rec.Accesses); next++ {
		events = append(events, trace.Event{Kind: trace.EventAccess, Addr: rec.Accesses[next]})
	}
	return events
}
