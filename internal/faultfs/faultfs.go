// Package faultfs abstracts the filesystem operations the durability
// layer performs, so tests can inject disk faults — write errors, sync
// failures, torn files — without touching the kernel. Production code
// uses OS; chaos tests wrap it in an Injector or corrupt files on disk
// with the helpers below.
package faultfs

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"sync"
)

// File is the subset of *os.File the durability layer writes through.
type File interface {
	io.Writer
	io.Closer
	Sync() error
}

// FS is the filesystem surface of the durability layer.
type FS interface {
	MkdirAll(path string, perm fs.FileMode) error
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	ReadFile(name string) ([]byte, error)
	ReadDir(name string) ([]fs.DirEntry, error)
	Stat(name string) (fs.FileInfo, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	RemoveAll(path string) error
}

// OS is the passthrough FS used in production.
type OS struct{}

// MkdirAll implements FS.
func (OS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

// OpenFile implements FS.
func (OS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// ReadFile implements FS.
func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// ReadDir implements FS.
func (OS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

// Stat implements FS.
func (OS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

// Rename implements FS.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// RemoveAll implements FS.
func (OS) RemoveAll(path string) error { return os.RemoveAll(path) }

// ErrInjected is the default error an armed Injector returns.
var ErrInjected = errors.New("faultfs: injected fault")

// Injector wraps an FS and injects failures into its write path. Arm it
// with FailWritesAfter: the next n Write/Sync/Rename calls succeed and
// every later one fails, modeling a disk that goes bad mid-operation.
// The zero state injects nothing.
type Injector struct {
	FS

	mu        sync.Mutex
	armed     bool
	remaining int
	err       error
	writes    int
}

// NewInjector wraps fsys (nil means OS).
func NewInjector(fsys FS) *Injector {
	if fsys == nil {
		fsys = OS{}
	}
	return &Injector{FS: fsys}
}

// FailWritesAfter arms the injector: the next n write-path operations
// succeed, all later ones return err (ErrInjected if nil).
func (i *Injector) FailWritesAfter(n int, err error) {
	if err == nil {
		err = ErrInjected
	}
	i.mu.Lock()
	i.armed, i.remaining, i.err = true, n, err
	i.mu.Unlock()
}

// Disarm stops injecting.
func (i *Injector) Disarm() {
	i.mu.Lock()
	i.armed = false
	i.mu.Unlock()
}

// Writes returns the number of write-path operations observed.
func (i *Injector) Writes() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.writes
}

// tick consumes one write-path operation and reports the injected
// error, if any.
func (i *Injector) tick() error {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.writes++
	if !i.armed {
		return nil
	}
	if i.remaining > 0 {
		i.remaining--
		return nil
	}
	return i.err
}

// OpenFile wraps the file so its writes consult the injector.
func (i *Injector) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if err := i.tick(); err != nil && flag&(os.O_WRONLY|os.O_RDWR|os.O_CREATE) != 0 {
		return nil, err
	}
	f, err := i.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: f, inj: i}, nil
}

// Rename consults the injector before delegating.
func (i *Injector) Rename(oldpath, newpath string) error {
	if err := i.tick(); err != nil {
		return err
	}
	return i.FS.Rename(oldpath, newpath)
}

type faultFile struct {
	File
	inj *Injector
}

func (f *faultFile) Write(p []byte) (int, error) {
	if err := f.inj.tick(); err != nil {
		return 0, err
	}
	return f.File.Write(p)
}

func (f *faultFile) Sync() error {
	if err := f.inj.tick(); err != nil {
		return err
	}
	return f.File.Sync()
}

// TruncateTail cuts the last n bytes off a file on the real filesystem,
// simulating a torn write after a crash.
func TruncateTail(path string, n int64) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	size := fi.Size() - n
	if size < 0 {
		size = 0
	}
	return os.Truncate(path, size)
}

// FlipBit XORs one bit of a file on the real filesystem, simulating
// media corruption.
func FlipBit(path string, byteOff int64, bit uint) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], byteOff); err != nil {
		return err
	}
	b[0] ^= 1 << (bit % 8)
	_, err = f.WriteAt(b[:], byteOff)
	return err
}
