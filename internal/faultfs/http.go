package faultfs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// HTTPFault is one scripted failure for an HTTPTransport. Fields
// compose in the order they are applied: Latency first, then Err, then
// Status, then TruncateBody. The zero value passes the request through
// untouched.
type HTTPFault struct {
	// Latency delays the request before anything else happens. A
	// request whose context expires during the delay fails with the
	// context's error, modeling a peer that is up but slow.
	Latency time.Duration
	// Err fails the request outright without reaching the inner
	// transport, modeling a refused connection or a mid-flight reset.
	Err error
	// Status short-circuits the request with a synthesized empty-body
	// response of this status, modeling a peer that answers but is
	// unhealthy (500) or overloaded (429/503).
	Status int
	// TruncateBody lets the real request through but cuts the response
	// body after this many bytes and fails the read, modeling a
	// connection dropped mid-response. 0 means no truncation.
	TruncateBody int
}

// HTTPTransport is an http.RoundTripper that injects scripted faults
// into a request stream — the HTTP counterpart of Injector. Arm it with
// Script: each request consumes the next fault in order; once the
// script is exhausted (or without one), requests pass straight through
// to the inner transport. Safe for concurrent use.
type HTTPTransport struct {
	inner http.RoundTripper

	mu       sync.Mutex
	script   []HTTPFault
	requests int
}

// NewHTTPTransport wraps inner (nil means http.DefaultTransport).
func NewHTTPTransport(inner http.RoundTripper) *HTTPTransport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &HTTPTransport{inner: inner}
}

// Script arms the transport: request i consumes faults[i]. It replaces
// any unconsumed script. Passing nothing disarms.
func (t *HTTPTransport) Script(faults ...HTTPFault) {
	t.mu.Lock()
	t.script = append([]HTTPFault(nil), faults...)
	t.mu.Unlock()
}

// Repeat arms the transport with n copies of f — shorthand for an
// outage that spans several requests.
func (t *HTTPTransport) Repeat(n int, f HTTPFault) {
	faults := make([]HTTPFault, n)
	for i := range faults {
		faults[i] = f
	}
	t.Script(faults...)
}

// Requests returns the number of requests observed.
func (t *HTTPTransport) Requests() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.requests
}

// next consumes the head of the script.
func (t *HTTPTransport) next() HTTPFault {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.requests++
	if len(t.script) == 0 {
		return HTTPFault{}
	}
	f := t.script[0]
	t.script = t.script[1:]
	return f
}

// RoundTrip implements http.RoundTripper.
func (t *HTTPTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	f := t.next()
	if f.Latency > 0 {
		timer := time.NewTimer(f.Latency)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		}
	}
	if f.Err != nil {
		return nil, f.Err
	}
	if f.Status != 0 {
		return &http.Response{
			Status:     fmt.Sprintf("%d %s", f.Status, http.StatusText(f.Status)),
			StatusCode: f.Status,
			Proto:      req.Proto,
			ProtoMajor: req.ProtoMajor,
			ProtoMinor: req.ProtoMinor,
			Header:     make(http.Header),
			Body:       io.NopCloser(strings.NewReader("")),
			Request:    req,
		}, nil
	}
	resp, err := t.inner.RoundTrip(req)
	if err == nil && f.TruncateBody > 0 && resp.Body != nil {
		resp.Body = &truncatedBody{inner: resp.Body, remaining: f.TruncateBody}
		resp.ContentLength = -1
	}
	return resp, err
}

// truncatedBody delivers the first remaining bytes, then fails the
// read the way a torn connection does.
type truncatedBody struct {
	inner     io.ReadCloser
	remaining int
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if len(p) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.inner.Read(p)
	b.remaining -= n
	if err == nil && b.remaining <= 0 {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.inner.Close() }
