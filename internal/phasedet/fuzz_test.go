package phasedet

import (
	"math"
	"testing"
)

func TestPartitionSpanLargerThanTrace(t *testing.T) {
	// A span bound beyond the trace length must behave exactly like
	// no bound at all.
	ids := []int{1, 2, 3, 1, 2, 3, 4, 5, 6}
	unbounded := Partition(ids, Config{Alpha: 0.5})
	bounded := Partition(ids, Config{Alpha: 0.5, MaxSpan: len(ids) * 10})
	if len(unbounded) != len(bounded) {
		t.Fatalf("span > n diverges: %v vs %v", bounded, unbounded)
	}
	for i := range unbounded {
		if unbounded[i] != bounded[i] {
			t.Fatalf("span > n diverges: %v vs %v", bounded, unbounded)
		}
	}
}

func TestPartitionSingleSample(t *testing.T) {
	if got := Partition([]int{7}, Config{Alpha: 0.5}); len(got) != 0 {
		t.Errorf("single-sample trace produced boundaries %v, want none", got)
	}
	if got := Partition(nil, Config{Alpha: 0.5}); got != nil {
		t.Errorf("empty trace produced boundaries %v, want nil", got)
	}
}

func TestPartitionAllIdenticalIDs(t *testing.T) {
	// Every access repeats one data sample. With a span bound the
	// optimal partition uses as few segments as the bound allows
	// (each extra segment costs 1-α > 0 net), i.e. ceil(n/span)
	// segments, and the total cost is α(n-k) + k.
	const n, span = 12, 4
	ids := make([]int, n)
	for i := range ids {
		ids[i] = 3
	}
	alpha := 0.5
	bounds := Partition(ids, Config{Alpha: alpha, MaxSpan: span})
	k := len(bounds) + 1
	if want := (n + span - 1) / span; k != want {
		t.Fatalf("identical IDs at span %d: %d segments (%v), want %d", span, k, bounds, want)
	}
	prev := 0
	for _, b := range bounds {
		if b <= prev || b >= n {
			t.Fatalf("boundary %d out of order or range in %v", b, bounds)
		}
		if b-prev > span {
			t.Fatalf("segment [%d,%d) exceeds span %d", prev, b, span)
		}
		prev = b
	}
	got := PartitionCost(ids, bounds, alpha)
	want := alpha*float64(n-k) + float64(k)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("cost %.6f, want %.6f", got, want)
	}
}

// bruteBestSpan enumerates every span-respecting partition of ids and
// returns the minimum cost (exponential: test-size traces only).
func bruteBestSpan(ids []int, alpha float64, span int) float64 {
	n := len(ids)
	if span <= 0 || span > n {
		span = n
	}
	best := math.Inf(1)
	var rec func(start int, bounds []int)
	rec = func(start int, bounds []int) {
		if n-start <= span {
			if c := PartitionCost(ids, bounds, alpha); c < best {
				best = c
			}
			if n-start == 0 {
				return
			}
		}
		for next := start + 1; next < n && next-start <= span; next++ {
			rec(next, append(bounds, next))
		}
	}
	rec(0, nil)
	return best
}

// FuzzPartition asserts, for arbitrary traces, that the partitioner's
// boundaries are strictly increasing, interior to the trace, respect
// the span bound, and cost no more (per PartitionCost) than the
// singleton partition, uniform-stride partitions, and — for traces
// small enough to enumerate — the true optimum.
func FuzzPartition(f *testing.F) {
	f.Add([]byte{1, 2, 3, 1, 2, 3}, uint8(50), uint8(0))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}, uint8(80), uint8(3))
	f.Add([]byte{9, 9, 1, 9, 9, 2, 9, 9, 3}, uint8(20), uint8(4))
	f.Add([]byte{5}, uint8(99), uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, alphaRaw, spanRaw uint8) {
		if len(data) > 64 {
			data = data[:64]
		}
		n := len(data)
		ids := make([]int, n)
		for i, b := range data {
			ids[i] = int(b % 16) // force recurrences
		}
		alpha := 0.05 + 0.9*float64(alphaRaw%100)/100
		span := int(spanRaw)
		cfg := Config{Alpha: alpha, MaxSpan: span}
		effSpan := span
		if effSpan <= 0 || effSpan > n {
			effSpan = n
		}

		bounds := Partition(ids, cfg)
		if n == 0 {
			if len(bounds) != 0 {
				t.Fatalf("empty trace produced boundaries %v", bounds)
			}
			return
		}
		prev := 0
		for _, b := range bounds {
			if b <= prev || b >= n {
				t.Fatalf("boundary %d invalid in %v (n=%d)", b, bounds, n)
			}
			if b-prev > effSpan {
				t.Fatalf("segment [%d,%d) exceeds span %d (bounds %v)", prev, b, effSpan, bounds)
			}
			prev = b
		}
		if n-prev > effSpan {
			t.Fatalf("final segment [%d,%d) exceeds span %d (bounds %v)", prev, n, effSpan, bounds)
		}

		cost := PartitionCost(ids, bounds, alpha)
		// Singleton partition: a boundary before every element.
		singleton := make([]int, 0, n-1)
		for i := 1; i < n; i++ {
			singleton = append(singleton, i)
		}
		if sc := PartitionCost(ids, singleton, alpha); cost > sc+1e-9 {
			t.Errorf("cost %.6f exceeds singleton partition cost %.6f", cost, sc)
		}
		// Uniform-stride partitions at every stride the span allows.
		for stride := 1; stride <= effSpan; stride++ {
			var alt []int
			for b := stride; b < n; b += stride {
				alt = append(alt, b)
			}
			if ac := PartitionCost(ids, alt, alpha); cost > ac+1e-9 {
				t.Errorf("cost %.6f exceeds stride-%d partition cost %.6f", cost, stride, ac)
			}
		}
		// Exhaustive check for small traces.
		if n <= 10 {
			if best := bruteBestSpan(ids, alpha, span); cost > best+1e-9 {
				t.Errorf("cost %.6f exceeds brute-force optimum %.6f (ids %v span %d alpha %.2f)",
					cost, best, ids, span, alpha)
			}
		}
	})
}
