// Package phasedet implements the optimal phase partitioning of
// Section 2.2.3. The wavelet-filtered sample trace consists mainly of
// accesses to different data samples clustered at phase boundaries; a
// good partition therefore (a) includes accesses to as many data
// samples as possible per phase and (b) avoids repeating a data sample
// within a phase. The filtered trace becomes a DAG — one node per
// remaining access plus a source and a sink — where the edge from a to
// b carries weight w = α·r + 1, r being the number of data-sample
// recurrences strictly between a and b. The shortest source→sink path
// is the minimum-penalty partition; each interior node on the path is
// a phase boundary.
package phasedet

// DefaultAlpha is the recurrence penalty the paper settles on after
// observing that partitions are stable for α between 0.2 and 0.8.
const DefaultAlpha = 0.5

// Config controls the partitioner.
type Config struct {
	// Alpha is the recurrence penalty factor (0 ≤ α ≤ 1). 1 forbids
	// any reuse inside a phase; 0 produces a single phase.
	Alpha float64
	// MaxSpan bounds the number of filtered accesses a single phase
	// may contain, which bounds the O(n·span) DP. Zero means
	// unlimited.
	MaxSpan int
}

// Partition returns the optimal phase boundaries for a filtered trace
// of data-sample IDs. The result holds indices into the trace: a
// boundary at index i means a new phase begins at element i. The
// source and sink are implicit, so a trace wholly within one phase
// yields no interior boundaries.
func Partition(ids []int, cfg Config) []int {
	n := len(ids)
	if n == 0 {
		return nil
	}
	alpha := cfg.Alpha
	if alpha == 0 {
		alpha = DefaultAlpha
	}
	span := cfg.MaxSpan
	if span <= 0 || span > n+1 {
		span = n + 1
	}

	// Dense re-numbering of data-sample IDs for O(1) counting.
	dense := make(map[int]int)
	seq := make([]int, n)
	for i, id := range ids {
		d, ok := dense[id]
		if !ok {
			d = len(dense)
			dense[id] = d
		}
		seq[i] = d
	}

	// Nodes 0..n-1 are trace elements; node n is the sink. dist[j]
	// is the least penalty of a path from the source to node j,
	// where arriving at node j means a phase boundary right before
	// element j. The source is "boundary before element 0" (dist[0]
	// via the virtual source edge).
	const inf = 1e18
	dist := make([]float64, n+1)
	prev := make([]int, n+1)
	for i := range dist {
		dist[i] = inf
		prev[i] = -1
	}

	counts := make([]int, len(dense))
	var touched []int

	// Source edges: source -> j covers segment [0, j). Weight
	// α·r(0..j-1) + 1.
	r := 0
	for j := 0; j <= n && j <= span; j++ {
		w := alpha*float64(r) + 1
		if w < dist[j] {
			dist[j] = w
			prev[j] = -1 // from source
		}
		if j < n {
			d := seq[j]
			if counts[d] > 0 {
				r++
			} else {
				touched = append(touched, d)
			}
			counts[d]++
		}
	}
	for _, d := range touched {
		counts[d] = 0
	}
	touched = touched[:0]

	// Edges i -> j (i < j ≤ n) cover segment [i, j): the phase that
	// starts at element i ends right before element j.
	for i := 0; i < n; i++ {
		if dist[i] >= inf {
			continue
		}
		r = 0
		limit := i + span
		if limit > n {
			limit = n
		}
		for j := i + 1; j <= limit; j++ {
			d := seq[j-1]
			if counts[d] > 0 {
				r++
			} else {
				touched = append(touched, d)
			}
			counts[d]++
			// Now [i, j) is accounted for.
			w := dist[i] + alpha*float64(r) + 1
			if w < dist[j] {
				dist[j] = w
				prev[j] = i
			}
		}
		for _, d := range touched {
			counts[d] = 0
		}
		touched = touched[:0]
	}

	// Walk back from the sink collecting boundaries.
	var bounds []int
	for v := prev[n]; v > 0; v = prev[v] {
		bounds = append(bounds, v)
	}
	// Reverse into ascending order.
	for l, r := 0, len(bounds)-1; l < r; l, r = l+1, r-1 {
		bounds[l], bounds[r] = bounds[r], bounds[l]
	}
	return bounds
}

// PartitionCost computes the total weight of a given partition of ids,
// using the same cost model as Partition — exposed for testing, for
// fuzzing (a partition returned by Partition must never cost more than
// any other valid partition of the same trace), and for the ablation
// benchmarks.
func PartitionCost(ids []int, bounds []int, alpha float64) float64 {
	if alpha == 0 {
		alpha = DefaultAlpha
	}
	total := 0.0
	start := 0
	segs := make([][2]int, 0, len(bounds)+1)
	for _, b := range bounds {
		segs = append(segs, [2]int{start, b})
		start = b
	}
	segs = append(segs, [2]int{start, len(ids)})
	for _, seg := range segs {
		counts := make(map[int]int)
		r := 0
		for i := seg[0]; i < seg[1]; i++ {
			if counts[ids[i]] > 0 {
				r++
			}
			counts[ids[i]]++
		}
		total += alpha*float64(r) + 1
	}
	return total
}

// Penalty is the historical name of PartitionCost.
func Penalty(ids []int, bounds []int, alpha float64) float64 {
	return PartitionCost(ids, bounds, alpha)
}
