package phasedet

import (
	"math"
	"testing"

	"lpp/internal/stats"
)

func TestPartitionClusteredBoundaries(t *testing.T) {
	// Three boundary clusters of three distinct data samples each —
	// the shape wavelet filtering produces. The optimal partition
	// cuts between the clusters.
	ids := []int{0, 1, 2, 0, 1, 2, 0, 1, 2}
	bounds := Partition(ids, Config{Alpha: 0.5})
	if len(bounds) != 2 || bounds[0] != 3 || bounds[1] != 6 {
		t.Errorf("bounds = %v, want [3 6]", bounds)
	}
}

func TestPartitionSinglePhase(t *testing.T) {
	// All distinct: no reuse penalty anywhere, so one phase wins
	// (every extra boundary costs 1).
	ids := []int{0, 1, 2, 3, 4, 5}
	bounds := Partition(ids, Config{Alpha: 0.5})
	if len(bounds) != 0 {
		t.Errorf("bounds = %v, want none", bounds)
	}
}

func TestPartitionAlphaExtremes(t *testing.T) {
	ids := []int{0, 0, 0, 0}
	// α = 1: reuse within a phase costs as much as a new phase, so
	// the minimum splits every element apart (penalty n) or any
	// equal-cost variant; crucially the optimum penalty is n.
	bounds := Partition(ids, Config{Alpha: 1})
	if got := Penalty(ids, bounds, 1); got != 4 {
		t.Errorf("alpha=1 penalty = %g, want 4", got)
	}
	// Tiny α: reuses are nearly free, one phase wins.
	bounds = Partition(ids, Config{Alpha: 0.01})
	if len(bounds) != 0 {
		t.Errorf("alpha=0.01 bounds = %v, want none", bounds)
	}
}

func TestPartitionStableAcrossAlphaRange(t *testing.T) {
	// The paper found partitions similar for α in [0.2, 0.8] on its
	// boundary-clustered traces; check that on a clean clustered
	// trace the boundaries are identical across the range.
	var ids []int
	for p := 0; p < 5; p++ {
		ids = append(ids, 0, 1, 2, 3, 4, 5, 6, 7)
	}
	want := Partition(ids, Config{Alpha: 0.5})
	for _, a := range []float64{0.2, 0.3, 0.6, 0.8} {
		got := Partition(ids, Config{Alpha: a})
		if len(got) != len(want) {
			t.Fatalf("alpha=%g: bounds %v differ from %v", a, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("alpha=%g: bounds %v differ from %v", a, got, want)
			}
		}
	}
}

func TestPenaltyPaperExample(t *testing.T) {
	// The trace "aceefgefbd" (Section 2.2.3): between c and b there
	// are two recurrences of e and one of f, so the segment weight
	// is 3α + 1.
	ids := []int{0, 1, 2, 2, 3, 4, 2, 3, 5, 6}
	// Partition with boundaries at c+1=2 and b=8: segments
	// [a c][e e f g e f][b d]: middle has r = 3.
	alpha := 0.5
	got := Penalty(ids, []int{2, 8}, alpha)
	want := (alpha*0 + 1) + (alpha*3 + 1) + (alpha*0 + 1)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("penalty = %g, want %g", got, want)
	}
}

// bruteBest enumerates all 2^(n-1) partitions and returns the least
// penalty.
func bruteBest(ids []int, alpha float64) float64 {
	n := len(ids)
	best := math.Inf(1)
	for mask := 0; mask < 1<<(n-1); mask++ {
		var bounds []int
		for b := 0; b < n-1; b++ {
			if mask>>b&1 == 1 {
				bounds = append(bounds, b+1)
			}
		}
		if p := Penalty(ids, bounds, alpha); p < best {
			best = p
		}
	}
	return best
}

func TestPartitionOptimalVsBruteForce(t *testing.T) {
	rng := stats.NewRNG(21)
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(10)
		ids := make([]int, n)
		for i := range ids {
			ids[i] = rng.Intn(4)
		}
		alpha := 0.1 + rng.Float64()*0.9
		bounds := Partition(ids, Config{Alpha: alpha})
		got := Penalty(ids, bounds, alpha)
		want := bruteBest(ids, alpha)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("ids=%v alpha=%g: Partition penalty %g, brute force %g (bounds %v)",
				ids, alpha, got, want, bounds)
		}
	}
}

func TestPartitionMaxSpan(t *testing.T) {
	// With MaxSpan 2, no segment may exceed 2 elements.
	ids := []int{0, 1, 2, 3, 4, 5, 6, 7}
	bounds := Partition(ids, Config{Alpha: 0.5, MaxSpan: 2})
	prevEnd := 0
	for _, b := range append(bounds, len(ids)) {
		if b-prevEnd > 2 {
			t.Fatalf("segment [%d,%d) exceeds MaxSpan", prevEnd, b)
		}
		prevEnd = b
	}
}

func TestPartitionEmpty(t *testing.T) {
	if got := Partition(nil, Config{}); got != nil {
		t.Errorf("empty trace bounds = %v", got)
	}
}

func TestPartitionBoundsAscendingAndInRange(t *testing.T) {
	rng := stats.NewRNG(31)
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(60)
		ids := make([]int, n)
		for i := range ids {
			ids[i] = rng.Intn(5)
		}
		bounds := Partition(ids, Config{Alpha: 0.5})
		for i, b := range bounds {
			if b <= 0 || b >= n {
				t.Fatalf("boundary %d out of range (n=%d)", b, n)
			}
			if i > 0 && bounds[i-1] >= b {
				t.Fatalf("bounds not ascending: %v", bounds)
			}
		}
	}
}

func BenchmarkPartition(b *testing.B) {
	rng := stats.NewRNG(1)
	ids := make([]int, 2000)
	for i := range ids {
		ids[i] = rng.Intn(50)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Partition(ids, Config{Alpha: 0.5, MaxSpan: 500})
	}
}
